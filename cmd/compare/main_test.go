package main

import (
	"context"
	"encoding/json"
	"flag"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opaquebench/internal/suite"
)

const specTemplate = `{
  "suite": "cli-gate",
  "workers": 4,
  "campaigns": [
    {"name": "mem", "engine": "membench", "seed": 7,
     "config": {"machine": "snowball", "sizes": [1024, 8192], "reps": 2},
     "out": "mem.csv"},
    {"name": "cpu", "engine": "cpubench", "seed": 7,
     "config": {"governor": "performance", %s"nloops": [200, 2000], "reps": 3},
     "out": "cpu.csv"}
  ]
}`

// runSuite executes a spec cold into a fresh cache directory and returns it.
func runSuite(t *testing.T, dutyField string) string {
	t.Helper()
	src := strings.Replace(specTemplate, "%s", dutyField, 1)
	spec, err := suite.Parse([]byte(src), "spec.json")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cacheDir := filepath.Join(t.TempDir(), "cache")
	if _, err := suite.Run(context.Background(), spec, suite.Options{
		CacheDir: cacheDir, BaseDir: t.TempDir(),
	}); err != nil {
		t.Fatalf("suite run: %v", err)
	}
	return cacheDir
}

func TestSelfComparisonExitsClean(t *testing.T) {
	cache := runSuite(t, "")
	dir := t.TempDir()
	verdicts := filepath.Join(dir, "verdicts.json")
	md := filepath.Join(dir, "report.md")

	var out strings.Builder
	if err := run([]string{"-o", verdicts, "-md", md, cache, cache}, &out); err != nil {
		t.Fatalf("self-comparison gated: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2 pass, 0 regressed") {
		t.Errorf("summary wrong:\n%s", out.String())
	}
	data, err := os.ReadFile(verdicts)
	if err != nil {
		t.Fatalf("verdict file not written: %v", err)
	}
	for _, want := range []string{`"verdict": "pass"`, `"identical": true`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("verdict file missing %s:\n%s", want, data)
		}
	}
	report, err := os.ReadFile(md)
	if err != nil {
		t.Fatalf("markdown report not written: %v", err)
	}
	if !strings.Contains(string(report), "| mem |") {
		t.Errorf("markdown report missing table row:\n%s", report)
	}
}

func TestRegressionGatesWithNonzeroExit(t *testing.T) {
	baseline := runSuite(t, "")
	candidate := runSuite(t, `"duty": 0.6, `)

	var out strings.Builder
	err := run([]string{baseline, candidate}, &out)
	if err == nil || !strings.Contains(err.Error(), "1 regressed") {
		t.Fatalf("regression did not gate: err=%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "regressed") || !strings.Contains(out.String(), "shift") {
		t.Errorf("verdict lines missing:\n%s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"onlyone"}, &out); err == nil || !strings.Contains(err.Error(), "two cache directory") {
		t.Fatalf("single argument accepted: %v", err)
	}
	if err := run([]string{"/nonexistent/a", "/nonexistent/b"}, &out); err == nil {
		t.Fatal("missing cache directories accepted")
	}
}

var update = flag.Bool("update", false, "regenerate golden files")

// TestGoldenMarkdownComparison pins the -md comparison report byte for
// byte: a deterministic baseline suite against a duty-0.6 candidate whose
// cpubench campaign regresses. Everything in the report — medians, shifts,
// bootstrap CIs — derives from fixed seeds, so the bytes are stable.
// Regenerate with: go test ./cmd/compare -run Golden -update
func TestGoldenMarkdownComparison(t *testing.T) {
	baseline := runSuite(t, "")
	candidate := runSuite(t, `"duty": 0.6, `)
	mdPath := filepath.Join(t.TempDir(), "compare.md")
	var out strings.Builder
	err := run([]string{"-q", "-md", mdPath, baseline, candidate}, &out)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("want regression gate failure, got %v", err)
	}
	got, rerr := os.ReadFile(mdPath)
	if rerr != nil {
		t.Fatal(rerr)
	}
	golden := filepath.Join("testdata", "compare.md.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o666); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", golden, len(got))
		return
	}
	want, rerr := os.ReadFile(golden)
	if rerr != nil {
		t.Fatalf("read golden (regenerate with -update): %v", rerr)
	}
	if string(got) != string(want) {
		t.Errorf("markdown comparison differs from %s (regenerate with -update):\n--- got ---\n%s", golden, got)
	}
}

// --- Trend mode ----------------------------------------------------------

// The trend fixture is three checked-in cache-run directories under
// testdata/trend/run{1,2,3}: a "cpu" campaign whose median decays run over
// run (a worsening drift on a higher-is-better metric) and a "mem"
// campaign cached byte-identically in every run. Keys are fixed strings —
// not live cache hashes, which move with the build — so the imported
// store, and with it the golden report, is stable. Regenerate fixture and
// golden together with: go test ./cmd/compare -run GoldenTrend -update

// goldenRecord and goldenEntry mirror the cache entry JSON schema.
type goldenRecord struct {
	Seq     int               `json:"seq"`
	Rep     int               `json:"rep"`
	Value   float64           `json:"value"`
	Seconds float64           `json:"seconds"`
	At      float64           `json:"at"`
	Point   map[string]string `json:"point,omitempty"`
}

type goldenEntry struct {
	Campaign string         `json:"campaign"`
	Engine   string         `json:"engine"`
	Seed     uint64         `json:"seed"`
	Env      any            `json:"env"`
	Records  []goldenRecord `json:"records"`
}

// writeTrendFixture regenerates the three run directories. All randomness
// is PCG-seeded, so regeneration is byte-stable.
func writeTrendFixture(t *testing.T, root string) {
	t.Helper()
	mem := trendEntry("mem", "membench", 900, 5, 30, 77)
	for i, center := range []float64{2600, 2450, 2300} {
		dir := filepath.Join(root, "run"+string(rune('1'+i)))
		if err := os.MkdirAll(dir, 0o777); err != nil {
			t.Fatal(err)
		}
		cpu := trendEntry("cpu", "cpubench", center, 12, 40, uint64(i+1))
		for key, e := range map[string]*goldenEntry{
			"cpu-run" + string(rune('1'+i)): cpu,
			"mem-shared":                    mem, // identical bytes in every run
		} {
			data, err := json.Marshal(e)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, key+".json"), data, 0o666); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func trendEntry(campaign, engine string, center, sigma float64, n int, seed uint64) *goldenEntry {
	r := rand.New(rand.NewPCG(seed, seed))
	e := &goldenEntry{Campaign: campaign, Engine: engine, Seed: seed}
	for i := 0; i < n; i++ {
		e.Records = append(e.Records, goldenRecord{
			Seq: i, Value: center + sigma*r.NormFloat64(), At: float64(i),
			Point: map[string]string{"nloops": "200"},
		})
	}
	return e
}

// importTrendFixture builds a store from the fixture's runs, pinning each
// in order, and returns the store path.
func importTrendFixture(t *testing.T, fixture string) string {
	t.Helper()
	storePath := filepath.Join(t.TempDir(), "history.store")
	cache, err := suite.OpenCacheStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Backing()
	for _, run := range []string{"run1", "run2", "run3"} {
		keys, err := suite.ImportDirToStore(filepath.Join(fixture, run), st)
		if err != nil {
			t.Fatalf("import %s: %v", run, err)
		}
		if err := st.Pin(run, keys...); err != nil {
			t.Fatal(err)
		}
	}
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}
	return storePath
}

// TestGoldenTrendReport is the acceptance fixture: -trend over three
// imported runs emits a byte-stable report flagging exactly the decaying
// campaign, and gates with a nonzero exit.
func TestGoldenTrendReport(t *testing.T) {
	fixture := filepath.Join("testdata", "trend")
	if *update {
		writeTrendFixture(t, fixture)
	}
	storePath := importTrendFixture(t, fixture)

	outPath := filepath.Join(t.TempDir(), "trend.json")
	var out strings.Builder
	err := run([]string{"-trend", "-o", outPath, storePath}, &out)
	if err == nil || !strings.Contains(err.Error(), "1 worsening") {
		t.Fatalf("worsening drift did not gate: err=%v\n%s", err, out.String())
	}
	for _, want := range []string{"drifting (worsening)", "identical records across 3 runs", "1 drifting, 1 stable, 0 unjudged"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("trend output missing %q:\n%s", want, out.String())
		}
	}
	got, rerr := os.ReadFile(outPath)
	if rerr != nil {
		t.Fatal(rerr)
	}
	golden := filepath.Join("testdata", "trend.json.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o666); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", golden, len(got))
		return
	}
	want, rerr := os.ReadFile(golden)
	if rerr != nil {
		t.Fatalf("read golden (regenerate with -update): %v", rerr)
	}
	if string(got) != string(want) {
		t.Errorf("trend report differs from %s (regenerate with -update):\n--- got ---\n%s", golden, got)
	}
}

// TestTrendLastWindow: -last 2 restricts the window to the newest runs —
// here runs 2 and 3, whose cpu medians still decay.
func TestTrendLastWindow(t *testing.T) {
	storePath := importTrendFixture(t, filepath.Join("testdata", "trend"))
	var out strings.Builder
	err := run([]string{"-trend", "-q", "-last", "2", storePath}, &out)
	if err == nil || !strings.Contains(err.Error(), "worsening") {
		t.Fatalf("2-run window did not gate: %v", err)
	}
	if !strings.Contains(out.String(), "over 2 runs") {
		t.Errorf("window not restricted:\n%s", out.String())
	}
	// And a degenerate window is a loud error, not an empty report.
	if err := run([]string{"-trend", "-q", "-last", "1", storePath}, &out); err == nil || !strings.Contains(err.Error(), "at least 2") {
		t.Fatalf("single-run window accepted: %v", err)
	}
}

func TestTrendUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-trend"}, &out); err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Fatalf("missing store argument accepted: %v", err)
	}
	if err := run([]string{"-trend", "-md", "x.md", "store"}, &out); err == nil || !strings.Contains(err.Error(), "-md") {
		t.Fatalf("-md with -trend accepted: %v", err)
	}
	if err := run([]string{"-trend", "/nonexistent/history.store"}, &out); err == nil {
		t.Fatal("missing store accepted")
	}
}
