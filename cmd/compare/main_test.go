package main

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opaquebench/internal/suite"
)

const specTemplate = `{
  "suite": "cli-gate",
  "workers": 4,
  "campaigns": [
    {"name": "mem", "engine": "membench", "seed": 7,
     "config": {"machine": "snowball", "sizes": [1024, 8192], "reps": 2},
     "out": "mem.csv"},
    {"name": "cpu", "engine": "cpubench", "seed": 7,
     "config": {"governor": "performance", %s"nloops": [200, 2000], "reps": 3},
     "out": "cpu.csv"}
  ]
}`

// runSuite executes a spec cold into a fresh cache directory and returns it.
func runSuite(t *testing.T, dutyField string) string {
	t.Helper()
	src := strings.Replace(specTemplate, "%s", dutyField, 1)
	spec, err := suite.Parse([]byte(src), "spec.json")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cacheDir := filepath.Join(t.TempDir(), "cache")
	if _, err := suite.Run(context.Background(), spec, suite.Options{
		CacheDir: cacheDir, BaseDir: t.TempDir(),
	}); err != nil {
		t.Fatalf("suite run: %v", err)
	}
	return cacheDir
}

func TestSelfComparisonExitsClean(t *testing.T) {
	cache := runSuite(t, "")
	dir := t.TempDir()
	verdicts := filepath.Join(dir, "verdicts.json")
	md := filepath.Join(dir, "report.md")

	var out strings.Builder
	if err := run([]string{"-o", verdicts, "-md", md, cache, cache}, &out); err != nil {
		t.Fatalf("self-comparison gated: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2 pass, 0 regressed") {
		t.Errorf("summary wrong:\n%s", out.String())
	}
	data, err := os.ReadFile(verdicts)
	if err != nil {
		t.Fatalf("verdict file not written: %v", err)
	}
	for _, want := range []string{`"verdict": "pass"`, `"identical": true`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("verdict file missing %s:\n%s", want, data)
		}
	}
	report, err := os.ReadFile(md)
	if err != nil {
		t.Fatalf("markdown report not written: %v", err)
	}
	if !strings.Contains(string(report), "| mem |") {
		t.Errorf("markdown report missing table row:\n%s", report)
	}
}

func TestRegressionGatesWithNonzeroExit(t *testing.T) {
	baseline := runSuite(t, "")
	candidate := runSuite(t, `"duty": 0.6, `)

	var out strings.Builder
	err := run([]string{baseline, candidate}, &out)
	if err == nil || !strings.Contains(err.Error(), "1 regressed") {
		t.Fatalf("regression did not gate: err=%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "regressed") || !strings.Contains(out.String(), "shift") {
		t.Errorf("verdict lines missing:\n%s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"onlyone"}, &out); err == nil || !strings.Contains(err.Error(), "two cache directory") {
		t.Fatalf("single argument accepted: %v", err)
	}
	if err := run([]string{"/nonexistent/a", "/nonexistent/b"}, &out); err == nil {
		t.Fatal("missing cache directories accepted")
	}
}

var update = flag.Bool("update", false, "regenerate golden files")

// TestGoldenMarkdownComparison pins the -md comparison report byte for
// byte: a deterministic baseline suite against a duty-0.6 candidate whose
// cpubench campaign regresses. Everything in the report — medians, shifts,
// bootstrap CIs — derives from fixed seeds, so the bytes are stable.
// Regenerate with: go test ./cmd/compare -run Golden -update
func TestGoldenMarkdownComparison(t *testing.T) {
	baseline := runSuite(t, "")
	candidate := runSuite(t, `"duty": 0.6, `)
	mdPath := filepath.Join(t.TempDir(), "compare.md")
	var out strings.Builder
	err := run([]string{"-q", "-md", mdPath, baseline, candidate}, &out)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("want regression gate failure, got %v", err)
	}
	got, rerr := os.ReadFile(mdPath)
	if rerr != nil {
		t.Fatal(rerr)
	}
	golden := filepath.Join("testdata", "compare.md.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o666); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", golden, len(got))
		return
	}
	want, rerr := os.ReadFile(golden)
	if rerr != nil {
		t.Fatalf("read golden (regenerate with -update): %v", rerr)
	}
	if string(got) != string(want) {
		t.Errorf("markdown comparison differs from %s (regenerate with -update):\n--- got ---\n%s", golden, got)
	}
}
