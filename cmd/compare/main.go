// Command compare is the differential campaign comparator: it loads two
// suite runs from their content-addressed cache directories, pairs the
// campaigns by name, and gates each pair statistically — a bootstrap
// confidence interval on the median shift, oriented by the engine's metric
// direction, with a practical-significance floor. The output is a
// deterministic machine-readable verdict file (pass / regressed / improved
// / incomparable per campaign, with effect sizes) and, optionally, a
// markdown report.
//
// The exit status is the gate: 0 when nothing regressed and every campaign
// was comparable, 1 otherwise — so a CI job can run a suite twice and fail
// the build on a statistically backed slowdown.
//
// With -trend the comparator switches from two runs to N: the argument is
// an embedded result store (internal/store) whose pinned runs form the
// history, and every campaign's per-run median trajectory is judged for
// sustained monotone drift — the slow decay a pairwise gate between
// adjacent runs never sees. Exit status 0 means nothing drifts in the
// worse direction and every campaign was judgeable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"opaquebench/internal/compare"
)

const usage = `Usage: compare [flags] <baseline-cache> <candidate-cache>
       compare -trend [flags] <result-store>

Compare two suite runs campaign by campaign (paired by name) and gate on
statistically backed regressions. Both arguments are suite result caches —
directories (cmd/suite run -cache-dir) or embedded store files (cmd/suite
run -cache-store), auto-detected; the comparison replays the cached raw
records in memory and touches neither cache.

Exit status 0 means every campaign passed or improved; any regressed or
incomparable campaign exits 1.

In -trend mode the single argument is an embedded result store whose
pinned runs (cmd/suite store import -run) form the history, oldest first.
Every campaign's per-run median trajectory is judged for sustained
monotone drift, with the same bootstrap CI and practical-significance
floor applied to the first-vs-last shift. Exit status 0 means nothing
drifts in the worse direction and every campaign was judgeable.
`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "compare:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), usage, "\nFlags:\n")
		fs.PrintDefaults()
	}
	out := fs.String("o", "", "write the machine-readable verdict JSON to this file")
	md := fs.String("md", "", "write a markdown comparison report to this file")
	level := fs.Float64("level", 0, "bootstrap confidence level (default 0.99)")
	reps := fs.Int("reps", 0, "bootstrap replications (default 2000)")
	seed := fs.Uint64("seed", 0, "bootstrap seed (default 1)")
	minShift := fs.Float64("min-shift", 0, "practical-significance floor on the relative median shift (default 0.01)")
	quiet := fs.Bool("q", false, "suppress the per-campaign verdict lines")
	trend := fs.Bool("trend", false, "judge the pinned runs of a result store for sustained drift instead of comparing two caches")
	last := fs.Int("last", 0, "with -trend, restrict the window to the most recent N runs (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	gate := compare.Gate{
		Level:       *level,
		Reps:        *reps,
		Seed:        *seed,
		MinRelShift: *minShift,
	}
	if *trend {
		if fs.NArg() != 1 {
			return fmt.Errorf("-trend wants exactly one result-store argument, got %d\n\n%s", fs.NArg(), usage)
		}
		if *md != "" {
			return fmt.Errorf("-md is not supported with -trend")
		}
		return runTrend(fs.Arg(0), *last, gate, *out, *quiet, stdout)
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("want exactly two cache directory arguments, got %d\n\n%s", fs.NArg(), usage)
	}
	baseline, err := compare.LoadCacheDir(fs.Arg(0))
	if err != nil {
		return err
	}
	candidate, err := compare.LoadCacheDir(fs.Arg(1))
	if err != nil {
		return err
	}
	cmp := compare.Compare(baseline, candidate, gate)

	if !*quiet {
		cmp.WriteText(stdout)
	}
	fmt.Fprintln(stdout, cmp.Summary())
	if *out != "" {
		if err := cmp.WriteJSONFile(*out); err != nil {
			return err
		}
	}
	if *md != "" {
		if err := cmp.WriteMarkdownFile(*md); err != nil {
			return err
		}
	}
	if !cmp.Clean() {
		return fmt.Errorf("%d regressed, %d incomparable", cmp.Regressed, cmp.Incomparable)
	}
	return nil
}

// runTrend is the -trend mode: load the store's pinned runs, judge every
// campaign's trajectory, and gate on worsening drift and unjudged
// campaigns.
func runTrend(storePath string, last int, gate compare.Gate, out string, quiet bool, stdout io.Writer) error {
	runs, err := compare.LoadStoreRuns(storePath)
	if err != nil {
		return err
	}
	if last > 0 && len(runs) > last {
		runs = runs[len(runs)-last:]
	}
	tr, err := compare.TrendAcrossRuns(runs, gate)
	if err != nil {
		return err
	}
	if !quiet {
		tr.WriteText(stdout)
	}
	fmt.Fprintln(stdout, tr.Summary())
	if out != "" {
		if err := tr.WriteJSONFile(out); err != nil {
			return err
		}
	}
	if !tr.Clean() {
		worsening := 0
		for _, ct := range tr.Campaigns {
			if ct.State == compare.TrendDrifting && ct.Direction == "worsening" {
				worsening++
			}
		}
		return fmt.Errorf("%d worsening, %d unjudged", worsening, tr.Unjudged)
	}
	return nil
}
