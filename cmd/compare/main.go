// Command compare is the differential campaign comparator: it loads two
// suite runs from their content-addressed cache directories, pairs the
// campaigns by name, and gates each pair statistically — a bootstrap
// confidence interval on the median shift, oriented by the engine's metric
// direction, with a practical-significance floor. The output is a
// deterministic machine-readable verdict file (pass / regressed / improved
// / incomparable per campaign, with effect sizes) and, optionally, a
// markdown report.
//
// The exit status is the gate: 0 when nothing regressed and every campaign
// was comparable, 1 otherwise — so a CI job can run a suite twice and fail
// the build on a statistically backed slowdown.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"opaquebench/internal/compare"
)

const usage = `Usage: compare [flags] <baseline-cache-dir> <candidate-cache-dir>

Compare two suite runs campaign by campaign (paired by name) and gate on
statistically backed regressions. Both arguments are suite result-cache
directories (cmd/suite run -cache-dir); the comparison replays the cached
raw records in memory and touches neither directory.

Exit status 0 means every campaign passed or improved; any regressed or
incomparable campaign exits 1.
`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "compare:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), usage, "\nFlags:\n")
		fs.PrintDefaults()
	}
	out := fs.String("o", "", "write the machine-readable verdict JSON to this file")
	md := fs.String("md", "", "write a markdown comparison report to this file")
	level := fs.Float64("level", 0, "bootstrap confidence level (default 0.99)")
	reps := fs.Int("reps", 0, "bootstrap replications (default 2000)")
	seed := fs.Uint64("seed", 0, "bootstrap seed (default 1)")
	minShift := fs.Float64("min-shift", 0, "practical-significance floor on the relative median shift (default 0.01)")
	quiet := fs.Bool("q", false, "suppress the per-campaign verdict lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("want exactly two cache directory arguments, got %d\n\n%s", fs.NArg(), usage)
	}
	baseline, err := compare.LoadCacheDir(fs.Arg(0))
	if err != nil {
		return err
	}
	candidate, err := compare.LoadCacheDir(fs.Arg(1))
	if err != nil {
		return err
	}
	cmp := compare.Compare(baseline, candidate, compare.Gate{
		Level:       *level,
		Reps:        *reps,
		Seed:        *seed,
		MinRelShift: *minShift,
	})

	if !*quiet {
		cmp.WriteText(stdout)
	}
	fmt.Fprintln(stdout, cmp.Summary())
	if *out != "" {
		if err := cmp.WriteJSONFile(*out); err != nil {
			return err
		}
	}
	if *md != "" {
		if err := cmp.WriteMarkdownFile(*md); err != nil {
			return err
		}
	}
	if !cmp.Clean() {
		return fmt.Errorf("%d regressed, %d incomparable", cmp.Regressed, cmp.Incomparable)
	}
	return nil
}
