package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
)

// writeResults creates a results CSV with a two-regime curve.
func writeResults(t *testing.T) string {
	t.Helper()
	res := &core.Results{}
	seq := 0
	for rep := 0; rep < 6; rep++ {
		for s := 1000; s <= 20000; s += 1000 {
			v := 1.0 + 0.001*float64(s)
			if s > 10000 {
				v = 1.0 + 0.001*10000 + 0.01*float64(s-10000)
			}
			rec := core.RawRecord{
				Seq:   seq,
				Rep:   rep,
				Point: doe.Point{"size": doe.Level(itoa(s)), "op": "pingpong"},
				Value: v, Seconds: v, At: float64(seq),
			}
			res.Records = append(res.Records, rec)
			seq++
		}
	}
	path := filepath.Join(t.TempDir(), "results.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := res.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func itoa(v int) string {
	b := []byte{}
	if v == 0 {
		return "0"
	}
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestSummaryAndSupervisedFit(t *testing.T) {
	path := writeResults(t)
	var buf bytes.Buffer
	if err := run([]string{"-i", path, "-x", "size", "-breaks", "10500", "-auto", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "summary by size") {
		t.Fatalf("missing summary:\n%s", out)
	}
	if !strings.Contains(out, "supervised piecewise fit") {
		t.Fatalf("missing supervised fit:\n%s", out)
	}
	if !strings.Contains(out, "neutral segmented search") {
		t.Fatalf("missing neutral search:\n%s", out)
	}
	if !strings.Contains(out, "mode diagnosis") {
		t.Fatalf("missing modes:\n%s", out)
	}
}

func TestFilter(t *testing.T) {
	path := writeResults(t)
	var buf bytes.Buffer
	if err := run([]string{"-i", path, "-filter", "op=pingpong"}, &buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run([]string{"-i", path, "-filter", "op=send"}, &buf); err == nil {
		t.Fatal("empty filter result accepted")
	}
	if err := run([]string{"-i", path, "-filter", "malformed"}, &buf); err == nil {
		t.Fatal("malformed filter accepted")
	}
}

func TestFullReport(t *testing.T) {
	path := writeResults(t)
	var buf bytes.Buffer
	if err := run([]string{"-i", path, "-report", "-auto", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "campaign report") {
		t.Fatalf("missing report header:\n%s", out)
	}
	if !strings.Contains(out, "bootstrap CI") {
		t.Fatalf("missing CI section:\n%s", out)
	}
}

func TestBadInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Fatal("missing -i accepted")
	}
	if err := run([]string{"-i", "/nonexistent.csv"}, &buf); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeResults(t)
	if err := run([]string{"-i", path, "-breaks", "xyz"}, &buf); err == nil {
		t.Fatal("bad breaks accepted")
	}
}

var update = flag.Bool("update", false, "regenerate golden files")

// TestGoldenMarkdownReport pins the -md markdown report byte-for-byte.
// Regenerate with: go test ./cmd/analyze -run Golden -update
func TestGoldenMarkdownReport(t *testing.T) {
	path := writeResults(t)
	mdPath := filepath.Join(t.TempDir(), "report.md")
	var out bytes.Buffer
	if err := run([]string{"-i", path, "-auto", "2", "-md", mdPath}, &out); err != nil {
		t.Fatalf("analyze -md: %v", err)
	}
	got, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report.md.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o666); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("markdown report differs from %s (regenerate with -update):\n--- got ---\n%s", golden, got)
	}
}
