// Command analyze performs the third methodology stage on a raw-results CSV
// produced by any of the benchmark engines (standalone or via cmd/suite):
// per-level summaries, supervised or neutral
// piecewise-linear fits, mode diagnosis with temporal contiguity, and
// per-group variability — everything computed offline from the complete
// raw record set.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"opaquebench/internal/core"
	"opaquebench/internal/report"
	"opaquebench/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	inPath := fs.String("i", "", "raw results CSV (required)")
	xFactor := fs.String("x", "size", "numeric factor for regressions and summaries")
	breaksCSV := fs.String("breaks", "", "comma-separated analyst breakpoints for the supervised fit")
	auto := fs.Int("auto", 0, "max breakpoints for the neutral segmented search (0 = off)")
	modes := fs.Bool("modes", true, "run the bimodality / temporal-contiguity diagnosis")
	filterKey := fs.String("filter", "", "only analyze records with factor=level, e.g. op=recv")
	fullReport := fs.Bool("report", false, "emit the full campaign report with pitfall warnings instead of the individual analyses")
	mdPath := fs.String("md", "", "also write the full campaign report as markdown to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("-i results.csv is required")
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	res, err := core.ReadCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	if *filterKey != "" {
		parts := strings.SplitN(*filterKey, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -filter %q, want factor=level", *filterKey)
		}
		res = res.Filter(func(r core.RawRecord) bool { return r.Point.Get(parts[0]) == parts[1] })
	}
	if res.Len() == 0 {
		return fmt.Errorf("no records after filtering")
	}
	if *fullReport || *mdPath != "" {
		rep, err := report.Build(res, report.Options{XFactor: *xFactor, MaxBreaks: *auto})
		if err != nil {
			return err
		}
		if *mdPath != "" {
			if err := os.WriteFile(*mdPath, []byte(rep.Markdown()), 0o666); err != nil {
				return err
			}
		}
		if *fullReport {
			_, err = fmt.Fprint(out, rep.Render())
			return err
		}
	}
	fmt.Fprintf(out, "records: %d\n\n", res.Len())

	fmt.Fprintf(out, "summary by %s:\n", *xFactor)
	fmt.Fprintf(out, "%12s %6s %12s %12s %12s %12s %8s\n", *xFactor, "n", "min", "median", "mean", "max", "cv")
	for _, g := range core.SummarizeBy(res, *xFactor) {
		cv := g.Summary.Stddev / g.Summary.Mean
		fmt.Fprintf(out, "%12s %6d %12.5g %12.5g %12.5g %12.5g %8.3f\n",
			g.Level, g.Summary.N, g.Summary.Min, g.Summary.Median, g.Summary.Mean, g.Summary.Max, cv)
	}
	fmt.Fprintln(out)

	if *breaksCSV != "" {
		var breaks []float64
		for _, tok := range strings.Split(*breaksCSV, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return fmt.Errorf("bad breakpoint %q: %w", tok, err)
			}
			breaks = append(breaks, v)
		}
		pf, err := core.FitPiecewise(res, *xFactor, breaks)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "supervised piecewise fit (breaks %v):\n%s\n", breaks, pf.String())
	}

	if *auto > 0 {
		xs, ys := res.XY(*xFactor)
		pf, err := stats.SelectSegmentedRelative(xs, ys, *auto, 10)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "neutral segmented search (up to %d breaks):\nbreaks: %v\n%s\n", *auto, pf.Breaks, pf.String())
	}

	if *modes {
		d, err := core.DiagnoseModes(res)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "mode diagnosis:\n%s\n", d.String())
	}

	cv := core.VariabilityByGroup(res, *xFactor)
	levels := make([]string, 0, len(cv))
	for k := range cv {
		levels = append(levels, k)
	}
	sort.Strings(levels)
	worst, worstLevel := 0.0, ""
	for _, k := range levels {
		if cv[k] > worst {
			worst, worstLevel = cv[k], k
		}
	}
	fmt.Fprintf(out, "highest per-level CV: %s = %.3f\n", worstLevel, worst)
	return nil
}
