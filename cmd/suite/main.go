// Command suite runs a declarative campaign suite: a JSON spec naming many
// campaigns across the registered benchmark engines (internal/engine),
// executed through the parallel runner under a global worker budget, with a
// content-addressed result cache — a campaign whose (engine, config,
// design, seed, module version) key is already cached is skipped and its
// records are replayed into the sinks byte-identically to a cold run.
//
// Subcommands: run (execute, honoring the cache; -baseline additionally
// gates the run against a prior cache directory through the differential
// comparator, failing on statistically backed regressions), list (print the
// resolved plan), hash (print the canonical spec hash and per-campaign
// cache keys), store (manage an embedded single-file result store: import
// legacy cache directories, query entries by metadata, pin named runs,
// garbage-collect, compact and verify).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"opaquebench/internal/compare"
	"opaquebench/internal/suite"
)

const topUsage = `Usage: suite <command> [flags] spec.json

Commands:
  run    execute the suite (cache-aware; -dry-run to preview verdicts,
         -baseline to gate against a prior run's cache)
  plan   print the round-by-round schedule, adaptive campaigns included,
         without touching any output file (cold adaptive rounds execute
         into the cache; a warm cache replays everything)
  list   print the resolved campaign plan without executing anything
  hash   print the canonical spec hash and per-campaign cache keys
  store  manage an embedded result store (import, ls, pin, unpin, runs,
         chain, gc, compact, verify)

Run "suite <command> -h" for the command's flags.
`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "suite:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("missing command\n\n%s", topUsage)
	}
	switch args[0] {
	case "run":
		return runRun(args[1:], stdout)
	case "plan":
		return runPlan(args[1:], stdout)
	case "list":
		return runList(args[1:], stdout)
	case "hash":
		return runHash(args[1:], stdout)
	case "store":
		return runStore(args[1:], stdout)
	case "help", "-h", "-help", "--help":
		fmt.Fprint(stdout, topUsage)
		return nil
	}
	return fmt.Errorf("unknown command %q\n\n%s", args[0], topUsage)
}

// subUsage installs the conventional usage text on a subcommand's flag
// set: every subcommand takes its flags followed by exactly one spec file.
func subUsage(fs *flag.FlagSet, name, summary string) {
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: suite %s [flags] spec.json\n\n%s\n", name, summary)
		var hasFlags bool
		fs.VisitAll(func(*flag.Flag) { hasFlags = true })
		if hasFlags {
			fmt.Fprint(fs.Output(), "\nFlags:\n")
			fs.PrintDefaults()
		}
	}
}

// loadSpec parses the positional spec argument of a subcommand.
func loadSpec(fs *flag.FlagSet) (*suite.Spec, string, error) {
	if fs.NArg() != 1 {
		return nil, "", fmt.Errorf("want exactly one spec file argument, got %d", fs.NArg())
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	spec, err := suite.Parse(data, path)
	return spec, path, err
}

func runRun(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("suite run", flag.ContinueOnError)
	cacheDir := fs.String("cache-dir", ".suite-cache", "content-addressed result cache directory (empty disables the cache)")
	cacheStore := fs.String("cache-store", "", "back the result cache with an embedded single-file store at this path instead of -cache-dir")
	pinRun := fs.String("run", "", "pin this run's cache entries in the store under the given run name (needs -cache-store); pinned runs survive gc and feed compare -trend")
	subUsage(fs, "run", "Execute every campaign of the suite, replaying cached ones byte-identically.")
	workers := fs.Int("workers", 0, "global worker budget across concurrent campaigns (0 = the spec's, else GOMAXPROCS)")
	dryRun := fs.Bool("dry-run", false, "print the plan with a hit/miss verdict per campaign; execute nothing, touch no output file")
	baseDir := fs.String("C", "", "directory campaign output paths resolve against (default: the spec file's directory)")
	envPath := fs.String("env", "", "suite-level environment JSON output: spec hash and per-campaign cache verdicts (optional)")
	baseline := fs.String("baseline", "", "prior result cache (directory or store file) to compare this run against; any statistically backed regression fails the run")
	verdicts := fs.String("verdicts", "", "write the comparator's machine-readable verdict JSON to this file (needs -baseline)")
	quiet := fs.Bool("q", false, "suppress per-campaign progress lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseline != "" {
		if *cacheDir == "" && *cacheStore == "" {
			return fmt.Errorf("-baseline needs -cache-dir or -cache-store: the comparison reads this run's records from its cache")
		}
		if *dryRun {
			return fmt.Errorf("-baseline and -dry-run are incompatible: a dry run produces no records to compare")
		}
	}
	if *verdicts != "" && *baseline == "" {
		return fmt.Errorf("-verdicts needs -baseline")
	}
	if *pinRun != "" && (*cacheStore == "" || *dryRun) {
		return fmt.Errorf("-run needs -cache-store and a real (non-dry) run: pins live in the store")
	}
	spec, specPath, err := loadSpec(fs)
	if err != nil {
		return err
	}
	base := *baseDir
	if base == "" {
		base = filepath.Dir(specPath)
	}
	opts := suite.Options{
		CacheDir: *cacheDir,
		Workers:  *workers,
		BaseDir:  base,
		DryRun:   *dryRun,
	}
	if *cacheStore != "" {
		// A dry run must create nothing: a store that does not exist yet is
		// simply all-miss, an existing one is opened read-only.
		if *dryRun {
			if _, statErr := os.Stat(*cacheStore); statErr == nil {
				cache, err := suite.ReadCacheStore(*cacheStore)
				if err != nil {
					return err
				}
				defer cache.Close()
				opts.Cache = cache
			}
		} else {
			cache, err := suite.OpenCacheStore(*cacheStore)
			if err != nil {
				return err
			}
			defer cache.Close()
			opts.Cache = cache
		}
		opts.CacheDir = ""
	}
	if !*quiet && !*dryRun {
		opts.Log = os.Stderr
	}
	res, runErr := suite.Run(context.Background(), spec, opts)
	if res == nil {
		return runErr
	}
	printResult(stdout, spec, res, *dryRun)
	if *pinRun != "" && runErr == nil {
		if err := pinResult(opts.Cache, *pinRun, res); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "pinned run %q (%d campaigns)\n", *pinRun, len(res.Campaigns))
	}
	var gateErr error
	if *baseline != "" && runErr == nil {
		cache := opts.Cache
		if cache == nil {
			if cache, err = suite.ReadCache(*cacheDir); err != nil {
				return err
			}
			defer cache.Close()
		}
		gateErr = compareRun(stdout, res, *baseline, cache, *verdicts)
	}
	if *envPath != "" {
		f, err := os.Create(*envPath)
		if err != nil {
			return err
		}
		if err := res.Env.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if runErr != nil {
		return runErr
	}
	return gateErr
}

// pinResult pins every cache key the finished run produced (adaptive
// rounds included) under the run name, making the run a named, GC-proof
// point in the store's history.
func pinResult(cache *suite.Cache, run string, res *suite.Result) error {
	st := cache.Backing()
	var keys []string
	for _, cr := range res.Campaigns {
		if len(cr.Rounds) > 0 {
			for _, rv := range cr.Rounds {
				keys = append(keys, rv.Key)
			}
			continue
		}
		keys = append(keys, cr.Key)
	}
	return st.Pin(run, keys...)
}

// compareRun gates the finished run against a baseline cache: this run's
// records are loaded back from its own (already open) cache by key, the
// baseline's by cache scan — a directory or a store file, auto-detected —
// and the comparator's verdicts are printed, stamped into the run's
// environment metadata, and optionally written as a verdict file. A
// regressed or incomparable campaign is the returned error.
func compareRun(stdout io.Writer, res *suite.Result, baselineDir string, cache *suite.Cache, verdictsPath string) error {
	baseline, err := compare.LoadCacheDir(baselineDir)
	if err != nil {
		return err
	}
	candidate := make(map[string][]compare.Sample, len(res.Campaigns))
	for _, cr := range res.Campaigns {
		// An adaptive campaign is cached one entry per round; reassemble
		// the chain into the single record stream its sinks saw.
		keys := []string{cr.Key}
		if len(cr.Rounds) > 0 {
			keys = keys[:0]
			for _, rv := range cr.Rounds {
				keys = append(keys, rv.Key)
			}
		}
		entries := make([]*suite.Entry, len(keys))
		for i, key := range keys {
			entry, err := cache.Load(key)
			if err != nil {
				return fmt.Errorf("load this run's campaign %q back from the cache: %w", cr.Name, err)
			}
			entries[i] = entry
		}
		s, err := compare.SampleFromRounds(keys, entries)
		if err != nil {
			return err
		}
		candidate[s.Campaign] = append(candidate[s.Campaign], s)
	}
	cmp := compare.Compare(baseline, candidate, compare.Gate{})
	cmp.Stamp(res.Env)
	fmt.Fprintf(stdout, "baseline comparison (%s):\n", baselineDir)
	cmp.WriteText(stdout)
	fmt.Fprintln(stdout, cmp.Summary())
	if verdictsPath != "" {
		if err := cmp.WriteJSONFile(verdictsPath); err != nil {
			return err
		}
	}
	if !cmp.Clean() {
		return fmt.Errorf("baseline comparison: %d regressed, %d incomparable", cmp.Regressed, cmp.Incomparable)
	}
	return nil
}

func printResult(w io.Writer, spec *suite.Spec, res *suite.Result, dry bool) {
	mode := "ran"
	if dry {
		mode = "planned"
	}
	fmt.Fprintf(w, "suite %q %s: %d campaigns, budget %d, spec %s\n",
		spec.Name, mode, len(res.Campaigns), res.Budget, short(res.SpecHash))
	for _, cr := range res.Campaigns {
		status := cr.Verdict()
		if cr.Err != nil {
			status = "error: " + cr.Err.Error()
		}
		fmt.Fprintf(w, "  %-20s %-9s %-5s key %s  trials %d\n",
			cr.Name, cr.Engine, status, short(cr.Key), cr.Trials)
	}
}

// runPlan prints the suite's round-by-round schedule: one line per static
// campaign, one block per adaptive campaign with the planner's per-round
// lines, the zoom containment intervals, and the stop reason. Adaptive
// rounds execute (into the cache) when cold, replay when warm; no campaign
// output file is touched either way.
func runPlan(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("suite plan", flag.ContinueOnError)
	cacheDir := fs.String("cache-dir", ".suite-cache", "content-addressed result cache directory (empty plans without a cache)")
	workers := fs.Int("workers", 0, "global worker budget for cold adaptive rounds (0 = the spec's, else GOMAXPROCS)")
	subUsage(fs, "plan", "Print the round-by-round schedule; adaptive rounds run cache-backed, outputs untouched.")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, _, err := loadSpec(fs)
	if err != nil {
		return err
	}
	scheds, err := suite.PlanSchedule(context.Background(), spec, suite.Options{
		CacheDir: *cacheDir,
		Workers:  *workers,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "suite %q plan: %d campaigns\n", spec.Name, len(scheds))
	for _, cs := range scheds {
		if !cs.Adaptive {
			verdict := "miss"
			if cs.Hit {
				verdict = "hit"
			}
			fmt.Fprintf(stdout, "%s (%s): static, %d trials, %s key %s\n",
				cs.Name, cs.Engine, cs.Trials, verdict, short(cs.Key))
			continue
		}
		fmt.Fprintf(stdout, "%s (%s): adaptive\n", cs.Name, cs.Engine)
		for i, rr := range cs.Outcome.Rounds {
			rv := cs.Rounds[i]
			verdict := "miss"
			if rv.Hit {
				verdict = "hit"
			}
			fmt.Fprintf(stdout, "  round %d: %d trials, %s key %s\n", rr.Round, rr.Design.Size(), verdict, short(rv.Key))
			if rr.Plan != nil && len(rr.Plan.Levels) > 0 {
				for _, br := range rr.Plan.Brackets {
					var inside []int
					for _, l := range rr.Plan.Levels {
						if br.Contains(float64(l)) {
							inside = append(inside, l)
						}
					}
					if len(inside) > 0 {
						fmt.Fprintf(stdout, "    zoom within (%.6g, %.6g): %v\n", br.Lo, br.Hi, inside)
					}
				}
			}
			if rr.Plan != nil && len(rr.Plan.Replicate) > 0 {
				fmt.Fprintf(stdout, "    replicate:")
				for _, pp := range rr.Plan.Replicate {
					fmt.Fprintf(stdout, " %s+%d", pp.Key, pp.Extra)
				}
				fmt.Fprintln(stdout)
			}
		}
		fmt.Fprintf(stdout, "  stop: %s (%d/%d trials, factor %s)\n",
			cs.Outcome.Stop, cs.Outcome.TotalTrials, cs.Outcome.Config.Budget, cs.Outcome.Config.Factor)
	}
	return nil
}

func runList(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("suite list", flag.ContinueOnError)
	subUsage(fs, "list", "Print the resolved campaign plan (engines, seeds, trial counts, sinks).")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, _, err := loadSpec(fs)
	if err != nil {
		return err
	}
	plans, err := suite.BuildPlans(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "suite %q: %d campaigns\n", spec.Name, len(plans))
	for _, p := range plans {
		c := p.Campaign
		sinks := c.Out
		if c.JSONL != "" {
			if sinks != "" {
				sinks += " + "
			}
			sinks += c.JSONL
		}
		fmt.Fprintf(stdout, "  %-20s %-9s seed %-12d workers %-3d %6d trials  -> %s\n",
			c.Name, c.Engine, c.Seed, max(c.Workers, 1), p.Design.Size(), sinks)
	}
	return nil
}

func runHash(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("suite hash", flag.ContinueOnError)
	subUsage(fs, "hash", "Print the canonical spec hash and the per-campaign cache keys.")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, _, err := loadSpec(fs)
	if err != nil {
		return err
	}
	hash, err := spec.Hash()
	if err != nil {
		return err
	}
	plans, err := suite.BuildPlans(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "spec %s\n", hash)
	for _, p := range plans {
		fmt.Fprintf(stdout, "campaign %s %s\n", p.Key, p.Campaign.Name)
	}
	return nil
}

func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}
