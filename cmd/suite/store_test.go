package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opaquebench/internal/compare"
	"opaquebench/internal/suite"
)

// TestRunWithCacheStoreWarmReplay: the -cache-store flag runs the suite
// against an embedded store and a second run replays every campaign
// byte-identically from it, exactly like the directory cache.
func TestRunWithCacheStoreWarmReplay(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	storePath := filepath.Join(dir, "results.store")

	var cold strings.Builder
	if err := run([]string{"run", "-q", "-cache-store", storePath, spec}, &cold); err != nil {
		t.Fatalf("cold run: %v\n%s", err, cold.String())
	}
	if !strings.Contains(cold.String(), "miss") {
		t.Errorf("cold run verdicts wrong:\n%s", cold.String())
	}
	mem1, err := os.ReadFile(filepath.Join(dir, "mem.csv"))
	if err != nil {
		t.Fatalf("cold run wrote no mem.csv: %v", err)
	}

	var warm strings.Builder
	if err := run([]string{"run", "-q", "-cache-store", storePath, spec}, &warm); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if strings.Contains(warm.String(), "miss") || !strings.Contains(warm.String(), "trials 0") {
		t.Errorf("warm run did not replay from the store:\n%s", warm.String())
	}
	mem2, err := os.ReadFile(filepath.Join(dir, "mem.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(mem1) != string(mem2) {
		t.Errorf("store replay not byte-identical: %d vs %d bytes", len(mem2), len(mem1))
	}

	// The store survives a verify pass and a baseline self-gate reads this
	// run's records back from it.
	var verify strings.Builder
	if err := run([]string{"store", "verify", storePath}, &verify); err != nil {
		t.Fatalf("store verify: %v", err)
	}
	if !strings.Contains(verify.String(), "ok:") || !strings.Contains(verify.String(), "3 live") {
		t.Errorf("verify report wrong:\n%s", verify.String())
	}
	var gated strings.Builder
	if err := run([]string{"run", "-q", "-cache-store", storePath, "-baseline", storePath, spec}, &gated); err != nil {
		t.Fatalf("store self-gate: %v\n%s", err, gated.String())
	}
	if !strings.Contains(gated.String(), "3 pass, 0 regressed") {
		t.Errorf("store self-gate not clean:\n%s", gated.String())
	}
}

// TestRunPinAndTrendWorkflow drives the full history workflow through the
// CLI: three pinned runs of a decaying campaign, queried with store
// subcommands, garbage-collected, compacted and trend-gated.
func TestRunPinAndTrendWorkflow(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	storePath := filepath.Join(dir, "history.store")

	src, err := os.ReadFile(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, duty := range []string{"", `"duty": 0.8, `, `"duty": 0.6, `} {
		edited := strings.Replace(string(src), `"governor": "performance", `,
			`"governor": "performance", `+duty, 1)
		if err := os.WriteFile(spec, []byte(edited), 0o666); err != nil {
			t.Fatal(err)
		}
		runName := "run" + string(rune('1'+i))
		var out strings.Builder
		if err := run([]string{"run", "-q", "-cache-store", storePath, "-run", runName, spec}, &out); err != nil {
			t.Fatalf("%s: %v\n%s", runName, err, out.String())
		}
		if !strings.Contains(out.String(), `pinned run "`+runName+`"`) {
			t.Errorf("%s not pinned:\n%s", runName, out.String())
		}
	}

	var runs strings.Builder
	if err := run([]string{"store", "runs", storePath}, &runs); err != nil {
		t.Fatalf("store runs: %v", err)
	}
	for _, want := range []string{"run1", "run2", "run3", "3 runs"} {
		if !strings.Contains(runs.String(), want) {
			t.Errorf("runs listing missing %q:\n%s", want, runs.String())
		}
	}

	// ls: all entries, then filtered by campaign and by pinning run. The
	// three runs share the unchanged mem and net entries, so 3 runs of 3
	// campaigns cost 5 distinct entries.
	var ls strings.Builder
	if err := run([]string{"store", "ls", storePath}, &ls); err != nil {
		t.Fatalf("store ls: %v", err)
	}
	if !strings.Contains(ls.String(), "5 entries") {
		t.Errorf("ls totals wrong (want content-address dedupe):\n%s", ls.String())
	}
	ls.Reset()
	if err := run([]string{"store", "ls", "-campaign", "cpu", storePath}, &ls); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ls.String(), "3 entries") {
		t.Errorf("campaign filter wrong:\n%s", ls.String())
	}
	ls.Reset()
	if err := run([]string{"store", "ls", "-pinned-by", "run2", storePath}, &ls); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ls.String(), "3 entries") {
		t.Errorf("pinned-by filter wrong:\n%s", ls.String())
	}

	// The pinned history feeds the trend analysis: cpu decays monotonically
	// across the three runs (duty 1.0 -> 0.8 -> 0.6), mem and net replay
	// identically.
	trendRuns, err := compare.LoadStoreRuns(storePath)
	if err != nil {
		t.Fatalf("LoadStoreRuns: %v", err)
	}
	tr, err := compare.TrendAcrossRuns(trendRuns, compare.Gate{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Drifting != 1 || tr.Unjudged != 0 || tr.Clean() {
		t.Fatalf("trend over pinned runs: %s", tr.Summary())
	}
	for _, ct := range tr.Campaigns {
		if ct.Campaign == "cpu" && (ct.State != compare.TrendDrifting || ct.Direction != "worsening") {
			t.Errorf("cpu trend: %s/%s, want drifting/worsening", ct.State, ct.Direction)
		}
	}

	// Unpinning run2 frees exactly its cpu entry (mem and net are shared
	// with the still-pinned runs); gc reclaims it and compact drops it.
	var out strings.Builder
	if err := run([]string{"store", "unpin", storePath, "run2"}, &out); err != nil {
		t.Fatalf("unpin: %v", err)
	}
	out.Reset()
	if err := run([]string{"store", "gc", storePath}, &out); err != nil {
		t.Fatalf("gc: %v", err)
	}
	if !strings.Contains(out.String(), "1 entries reclaimed, 4 live") {
		t.Errorf("gc totals wrong:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"store", "compact", storePath}, &out); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if !strings.Contains(out.String(), "4 live entries") {
		t.Errorf("compact totals wrong:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"store", "verify", storePath}, &out); err != nil {
		t.Fatalf("verify after compact: %v\n%s", err, out.String())
	}
}

// TestStoreImportMatchesDirCache: a directory-cache run imported with
// store import -run replays and gates identically to the original.
func TestStoreImportMatchesDirCache(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	cacheDir := filepath.Join(dir, "cache")
	if err := run([]string{"run", "-q", "-cache-dir", cacheDir, spec}, &strings.Builder{}); err != nil {
		t.Fatalf("dir run: %v", err)
	}
	storePath := filepath.Join(dir, "imported.store")
	var out strings.Builder
	if err := run([]string{"store", "import", "-run", "baseline", storePath, cacheDir}, &out); err != nil {
		t.Fatalf("import: %v", err)
	}
	if !strings.Contains(out.String(), "imported 3 entries") || !strings.Contains(out.String(), `pinned as "baseline"`) {
		t.Errorf("import summary wrong:\n%s", out.String())
	}

	// A warm run against the imported store executes nothing and writes
	// the same output bytes the directory-backed run wrote.
	mem1, err := os.ReadFile(filepath.Join(dir, "mem.csv"))
	if err != nil {
		t.Fatal(err)
	}
	var warm strings.Builder
	if err := run([]string{"run", "-q", "-cache-store", storePath, spec}, &warm); err != nil {
		t.Fatalf("warm run on import: %v", err)
	}
	if strings.Contains(warm.String(), "miss") {
		t.Errorf("import missed entries:\n%s", warm.String())
	}
	mem2, err := os.ReadFile(filepath.Join(dir, "mem.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(mem1) != string(mem2) {
		t.Error("imported store replay differs from directory-cache run")
	}

	// chain on a static entry is a single-link chain, addressed by prefix.
	keys, err := cacheKeys(storePath)
	if err != nil {
		t.Fatal(err)
	}
	var chain strings.Builder
	if err := run([]string{"store", "chain", storePath, keys[0][:12]}, &chain); err != nil {
		t.Fatalf("chain: %v", err)
	}
	if !strings.Contains(chain.String(), "round 0") {
		t.Errorf("chain output wrong:\n%s", chain.String())
	}
}

// cacheKeys lists a store's live keys via the suite cache API.
func cacheKeys(storePath string) ([]string, error) {
	cache, err := suite.ReadCacheStore(storePath)
	if err != nil {
		return nil, err
	}
	defer cache.Close()
	return cache.Keys()
}

func TestStoreUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"store"}, &out); err == nil || !strings.Contains(err.Error(), "missing store subcommand") {
		t.Fatalf("bare store accepted: %v", err)
	}
	if err := run([]string{"store", "frobnicate"}, &out); err == nil || !strings.Contains(err.Error(), "unknown store subcommand") {
		t.Fatalf("unknown subcommand accepted: %v", err)
	}
	if err := run([]string{"store", "verify", "/nonexistent/x.store"}, &out); err == nil {
		t.Fatal("missing store accepted")
	}
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	if err := run([]string{"run", "-run", "r1", "-cache-dir", filepath.Join(dir, "c"), spec}, &out); err == nil ||
		!strings.Contains(err.Error(), "-cache-store") {
		t.Fatalf("-run without -cache-store accepted: %v", err)
	}
}

// TestDryRunWithStoreCreatesNothing: a dry run against a store path that
// does not exist must not create the file, and against a warm store must
// report hits read-only.
func TestDryRunWithStoreCreatesNothing(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	storePath := filepath.Join(dir, "dry.store")

	var out strings.Builder
	if err := run([]string{"run", "-dry-run", "-cache-store", storePath, spec}, &out); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	if _, err := os.Stat(storePath); !os.IsNotExist(err) {
		t.Errorf("dry run created the store (stat err = %v)", err)
	}
	if !strings.Contains(out.String(), "miss") {
		t.Errorf("dry run against no store should be all-miss:\n%s", out.String())
	}

	if err := run([]string{"run", "-q", "-cache-store", storePath, spec}, &strings.Builder{}); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	fi, err := os.Stat(storePath)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"run", "-dry-run", "-cache-store", storePath, spec}, &out); err != nil {
		t.Fatalf("warm dry run: %v", err)
	}
	if strings.Contains(out.String(), "miss") {
		t.Errorf("warm dry run missed:\n%s", out.String())
	}
	fi2, err := os.Stat(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if fi2.Size() != fi.Size() || fi2.ModTime() != fi.ModTime() {
		t.Error("dry run mutated the store")
	}
}
