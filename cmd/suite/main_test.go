package main

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// writeSpec drops a small three-engine suite spec into dir and returns its
// path. Output paths are relative, so they land next to the spec.
func writeSpec(t *testing.T, dir string) string {
	t.Helper()
	spec := `{
  "suite": "cli-test",
  "workers": 4,
  "campaigns": [
    {"name": "mem", "engine": "membench", "seed": 7, "workers": 2,
     "config": {"machine": "snowball", "sizes": [1024, 8192], "reps": 2},
     "out": "mem.csv", "jsonl": "mem.jsonl", "env": "mem.env.json"},
    {"name": "net", "engine": "netbench", "seed": 7, "workers": 2,
     "config": {"profile": "taurus", "n": 10, "reps": 2},
     "out": "net.csv"},
    {"name": "cpu", "engine": "cpubench", "seed": 7, "workers": 2,
     "config": {"governor": "performance", "nloops": [20, 200], "reps": 2},
     "out": "cpu.csv"}
  ]
}`
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, []byte(spec), 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTwiceSecondRunHitsCache(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	cache := filepath.Join(dir, "cache")

	var cold strings.Builder
	if err := run([]string{"run", "-q", "-cache-dir", cache, spec}, &cold); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if strings.Contains(cold.String(), "hit") || !strings.Contains(cold.String(), "miss") {
		t.Errorf("cold run verdicts wrong:\n%s", cold.String())
	}
	mem1, err := os.ReadFile(filepath.Join(dir, "mem.csv"))
	if err != nil {
		t.Fatalf("cold run wrote no mem.csv: %v", err)
	}

	var warm strings.Builder
	if err := run([]string{"run", "-q", "-cache-dir", cache, spec}, &warm); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if strings.Contains(warm.String(), "miss") {
		t.Errorf("warm run missed:\n%s", warm.String())
	}
	if !strings.Contains(warm.String(), "trials 0") {
		t.Errorf("warm run executed trials:\n%s", warm.String())
	}
	mem2, err := os.ReadFile(filepath.Join(dir, "mem.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(mem1) != string(mem2) {
		t.Errorf("warm replay not byte-identical: %d vs %d bytes", len(mem2), len(mem1))
	}
}

// TestBaselineSelfComparisonPasses: running a suite with -baseline pointed
// at its own warm cache is the all-pass self-comparison — verdicts land on
// stdout, in the verdict file and in the environment metadata, and the
// command exits clean.
func TestBaselineSelfComparisonPasses(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	cache := filepath.Join(dir, "cache")
	if err := run([]string{"run", "-q", "-cache-dir", cache, spec}, &strings.Builder{}); err != nil {
		t.Fatalf("cold run: %v", err)
	}

	verdicts := filepath.Join(dir, "verdicts.json")
	envPath := filepath.Join(dir, "suite.env.json")
	var out strings.Builder
	err := run([]string{"run", "-q", "-cache-dir", cache, "-baseline", cache,
		"-verdicts", verdicts, "-env", envPath, spec}, &out)
	if err != nil {
		t.Fatalf("self-comparison gated: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "3 pass, 0 regressed") {
		t.Errorf("summary missing:\n%s", out.String())
	}
	data, err := os.ReadFile(verdicts)
	if err != nil {
		t.Fatalf("verdict file: %v", err)
	}
	if !strings.Contains(string(data), `"identical": true`) {
		t.Errorf("verdict file without identical fast path:\n%s", data)
	}
	env, err := os.ReadFile(envPath)
	if err != nil {
		t.Fatalf("env file: %v", err)
	}
	for _, want := range []string{`"compare/regressed": "0"`, `"compare/campaign/cpu/verdict": "pass"`} {
		if !strings.Contains(string(env), want) {
			t.Errorf("environment metadata missing %s:\n%s", want, env)
		}
	}
}

// TestBaselineCatchesInjectedSlowdown: editing the cpubench campaign to
// duty-cycle at 0.6 and re-running against the previous cache must fail
// the run with a regressed verdict.
func TestBaselineCatchesInjectedSlowdown(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	baseCache := filepath.Join(dir, "base-cache")
	if err := run([]string{"run", "-q", "-cache-dir", baseCache, spec}, &strings.Builder{}); err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	src, err := os.ReadFile(spec)
	if err != nil {
		t.Fatal(err)
	}
	slowed := strings.Replace(string(src), `"governor": "performance",`,
		`"governor": "performance", "duty": 0.6,`, 1)
	if slowed == string(src) {
		t.Fatal("fixture edit did not apply")
	}
	if err := os.WriteFile(spec, []byte(slowed), 0o666); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	err = run([]string{"run", "-q", "-cache-dir", filepath.Join(dir, "cand-cache"),
		"-baseline", baseCache, spec}, &out)
	if err == nil || !strings.Contains(err.Error(), "1 regressed") {
		t.Fatalf("injected slowdown not gated: err=%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "regressed") || !strings.Contains(out.String(), "shift") {
		t.Errorf("verdict lines missing:\n%s", out.String())
	}
}

func TestBaselineFlagValidation(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	var out strings.Builder
	if err := run([]string{"run", "-cache-dir", "", "-baseline", dir, spec}, &out); err == nil ||
		!strings.Contains(err.Error(), "-cache-dir") {
		t.Fatalf("baseline without cache accepted: %v", err)
	}
	if err := run([]string{"run", "-dry-run", "-baseline", dir, spec}, &out); err == nil ||
		!strings.Contains(err.Error(), "dry run") {
		t.Fatalf("baseline dry run accepted: %v", err)
	}
	if err := run([]string{"run", "-verdicts", "v.json", spec}, &out); err == nil ||
		!strings.Contains(err.Error(), "-baseline") {
		t.Fatalf("verdicts without baseline accepted: %v", err)
	}
}

func TestDryRunReportsPlanWithoutOutputs(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)

	var out strings.Builder
	if err := run([]string{"run", "-dry-run", "-cache-dir", filepath.Join(dir, "cache"), spec}, &out); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	for _, want := range []string{"mem", "net", "cpu", "miss", "planned"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("dry-run output missing %q:\n%s", want, out.String())
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "mem.csv")); !os.IsNotExist(err) {
		t.Errorf("dry run touched mem.csv")
	}
}

func TestListAndHash(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)

	var list strings.Builder
	if err := run([]string{"list", spec}, &list); err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, want := range []string{"cli-test", "membench", "netbench", "cpubench", "trials"} {
		if !strings.Contains(list.String(), want) {
			t.Errorf("list output missing %q:\n%s", want, list.String())
		}
	}

	var h1, h2 strings.Builder
	if err := run([]string{"hash", spec}, &h1); err != nil {
		t.Fatalf("hash: %v", err)
	}
	if err := run([]string{"hash", spec}, &h2); err != nil {
		t.Fatalf("hash again: %v", err)
	}
	if h1.String() != h2.String() {
		t.Errorf("hash not stable:\n%s\nvs\n%s", h1.String(), h2.String())
	}
	if lines := strings.Split(strings.TrimSpace(h1.String()), "\n"); len(lines) != 4 {
		t.Errorf("hash output: want spec line + 3 campaign lines, got %d:\n%s", len(lines), h1.String())
	}
}

// TestCheckedInExampleSpecStaysValid pins the repository's example suite
// (the README quickstart and the CI docs job both use it) to the parser.
func TestCheckedInExampleSpecStaysValid(t *testing.T) {
	spec := filepath.Join("..", "..", "examples", "suite", "suite.json")
	if _, err := os.Stat(spec); err != nil {
		t.Skipf("example spec not found: %v", err)
	}
	var out strings.Builder
	if err := run([]string{"run", "-dry-run", "-cache-dir", filepath.Join(t.TempDir(), "cache"), spec}, &out); err != nil {
		t.Fatalf("dry run on example spec: %v", err)
	}
	for _, want := range []string{"mem-i7", "net-taurus", "cpu-rt"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("example plan missing %q:\n%s", want, out.String())
		}
	}
}

func TestUnknownCommandFails(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"frobnicate"}, &out); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("want unknown command error, got %v", err)
	}
	if err := run(nil, &out); err == nil || !strings.Contains(err.Error(), "missing command") {
		t.Fatalf("want missing command error, got %v", err)
	}
}

// writeAdaptiveSpec drops a small adaptive membench fixture into dir: a
// stride-16 sweep with the i7's 32 KB L1 planted between the 16 KB and
// 64 KB grid levels.
func writeAdaptiveSpec(t *testing.T, dir string) string {
	t.Helper()
	spec := `{
  "suite": "cli-adaptive",
  "workers": 4,
  "campaigns": [
    {"name": "mem-zoom", "engine": "membench", "seed": 20170529, "workers": 4,
     "config": {"machine": "i7", "governor": "performance",
                "sizes": [4096, 16384, 65536, 262144, 1048576, 4194304],
                "strides": [16], "reps": 6},
     "adaptive": {"rounds": 2, "budget": 150, "target_rel_ci": 0.02,
                  "top_points": 3, "extra_reps": 4, "zoom_per_break": 4, "min_seg": 10},
     "out": "mem-zoom.csv"}
  ]
}`
	path := filepath.Join(dir, "adaptive.json")
	if err := os.WriteFile(path, []byte(spec), 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPlanPrintsAdaptiveSchedule: suite plan executes the adaptive rounds
// cache-backed, prints the zoom containment intervals and the stop reason,
// touches no output file, and replays deterministically on a warm cache.
func TestPlanPrintsAdaptiveSchedule(t *testing.T) {
	dir := t.TempDir()
	spec := writeAdaptiveSpec(t, dir)
	cache := filepath.Join(dir, "cache")

	var cold strings.Builder
	if err := run([]string{"plan", "-cache-dir", cache, spec}, &cold); err != nil {
		t.Fatalf("cold plan: %v\n%s", err, cold.String())
	}
	for _, want := range []string{"mem-zoom (membench): adaptive", "round 1:", "round 2:", "zoom within (", "stop: max-rounds"} {
		if !strings.Contains(cold.String(), want) {
			t.Errorf("cold plan missing %q:\n%s", want, cold.String())
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "mem-zoom.csv")); !os.IsNotExist(err) {
		t.Errorf("plan touched the campaign output (stat err = %v)", err)
	}

	var warm strings.Builder
	if err := run([]string{"plan", "-cache-dir", cache, spec}, &warm); err != nil {
		t.Fatalf("warm plan: %v", err)
	}
	if !strings.Contains(warm.String(), "hit key") {
		t.Errorf("warm plan shows no cache hits:\n%s", warm.String())
	}
	if strings.ReplaceAll(warm.String(), "hit key", "miss key") != cold.String() {
		t.Errorf("warm schedule differs from cold beyond verdicts:\n--- warm ---\n%s--- cold ---\n%s",
			warm.String(), cold.String())
	}
}

// TestRunAdaptiveSpecEndToEnd: suite run streams the whole multi-round
// campaign into one record stream and the second run replays it from the
// cache without executing a trial.
func TestRunAdaptiveSpecEndToEnd(t *testing.T) {
	dir := t.TempDir()
	spec := writeAdaptiveSpec(t, dir)
	cache := filepath.Join(dir, "cache")

	var first strings.Builder
	if err := run([]string{"run", "-q", "-cache-dir", cache, spec}, &first); err != nil {
		t.Fatalf("first run: %v\n%s", err, first.String())
	}
	cold, err := os.ReadFile(filepath.Join(dir, "mem-zoom.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(cold[:200]), "x_round") {
		t.Fatalf("record stream lacks the round column:\n%s", string(cold[:200]))
	}

	var second strings.Builder
	if err := run([]string{"run", "-q", "-cache-dir", cache, spec}, &second); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !strings.Contains(second.String(), "hit") || !strings.Contains(second.String(), "trials 0") {
		t.Errorf("second run did not replay from cache:\n%s", second.String())
	}
	warm, err := os.ReadFile(filepath.Join(dir, "mem-zoom.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(cold) != string(warm) {
		t.Errorf("warm replay differs from cold run (%d vs %d bytes)", len(warm), len(cold))
	}

	// Self-gating an adaptive campaign must reassemble its round chain
	// into one sample and pass through the identical-records fast path —
	// not report the per-round cache entries as ambiguous.
	var gated strings.Builder
	if err := run([]string{"run", "-q", "-cache-dir", cache, "-baseline", cache, spec}, &gated); err != nil {
		t.Fatalf("adaptive self-gate: %v\n%s", err, gated.String())
	}
	if !strings.Contains(gated.String(), "1 pass, 0 regressed, 0 improved, 0 incomparable") {
		t.Errorf("adaptive self-gate not clean:\n%s", gated.String())
	}
}

// TestCheckedInAdaptiveFixtureStaysValid pins the repository's adaptive
// example (the CI compare job runs it) to the parser and planner.
func TestCheckedInAdaptiveFixtureStaysValid(t *testing.T) {
	spec := filepath.Join("..", "..", "examples", "suite", "adaptive.json")
	if _, err := os.Stat(spec); err != nil {
		t.Skipf("adaptive fixture not found: %v", err)
	}
	var out strings.Builder
	if err := run([]string{"run", "-dry-run", "-cache-dir", filepath.Join(t.TempDir(), "cache"), spec}, &out); err != nil {
		t.Fatalf("dry run on adaptive fixture: %v", err)
	}
	if !strings.Contains(out.String(), "mem-zoom") {
		t.Errorf("fixture plan missing mem-zoom:\n%s", out.String())
	}
}

var update = flag.Bool("update", false, "regenerate golden files")

// keyRE matches the 12-hex short cache keys the plan prints. The full keys
// embed the module version — the executable hash on devel builds — so they
// move on every rebuild even though the schedule itself does not; the
// golden file pins everything but the key bytes.
var keyRE = regexp.MustCompile(`key [0-9a-f]{12}`)

// TestPlanGoldenAgainstAdaptiveFixture locks the exact plan rendering for
// the checked-in adaptive fixture: round sizes, trial counts, zoom
// containment intervals and the stop line are all byte-pinned.
// Regenerate with: go test ./cmd/suite -run PlanGolden -update
func TestPlanGoldenAgainstAdaptiveFixture(t *testing.T) {
	spec := filepath.Join("..", "..", "examples", "suite", "adaptive.json")
	if _, err := os.Stat(spec); err != nil {
		t.Skipf("adaptive fixture not found: %v", err)
	}
	var out strings.Builder
	if err := run([]string{"plan", "-cache-dir", filepath.Join(t.TempDir(), "cache"), spec}, &out); err != nil {
		t.Fatalf("plan on adaptive fixture: %v\n%s", err, out.String())
	}
	got := keyRE.ReplaceAll([]byte(out.String()), []byte("key KEY"))

	golden := filepath.Join("testdata", "plan.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o666); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", golden, len(got))
		return
	}
	want, rerr := os.ReadFile(golden)
	if rerr != nil {
		t.Fatalf("read golden (regenerate with -update): %v", rerr)
	}
	if !strings.Contains(string(want), "key KEY") || keyRE.Match(want) {
		t.Fatalf("golden file has un-normalized keys; regenerate with -update")
	}
	if string(got) != string(want) {
		t.Errorf("plan schedule differs from %s (regenerate with -update):\n--- got ---\n%s--- want ---\n%s",
			golden, got, want)
	}
}
