package main

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"opaquebench/internal/store"
	"opaquebench/internal/suite"
)

// The store subcommand is the CLI face of the embedded result store
// (internal/store): the single-file, crash-recoverable, queryable sibling
// of the cache directory. Everything here operates on metadata and frames;
// no subcommand ever rewrites an entry's payload bytes.

const storeUsage = `Usage: suite store <subcommand> [flags] <store-file> [args]

Subcommands:
  import   copy a legacy cache directory into the store byte-for-byte
           (-run pins the imported keys as a named run)
  ls       list live entries, filtered by metadata (suite, campaign,
           engine, key prefix, round, pinning run, time window, env)
  pin      pin keys (full or unique prefix) under a run name
  unpin    drop a run's pin, releasing its refcounts
  runs     list pinned runs in first-pin order
  chain    print the provenance chain (adaptive rounds) ending at a key
  gc       tombstone every entry no pinned run or round chain keeps alive
  compact  rewrite the log dropping superseded and tombstoned frames
  verify   re-read the whole log and re-verify every frame checksum

Run "suite store <subcommand> -h" for the subcommand's flags.
`

func runStore(args []string, stdout io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("missing store subcommand\n\n%s", storeUsage)
	}
	switch args[0] {
	case "import":
		return storeImport(args[1:], stdout)
	case "ls":
		return storeLs(args[1:], stdout)
	case "pin":
		return storePin(args[1:], stdout)
	case "unpin":
		return storeUnpin(args[1:], stdout)
	case "runs":
		return storeRuns(args[1:], stdout)
	case "chain":
		return storeChain(args[1:], stdout)
	case "gc":
		return storeGC(args[1:], stdout)
	case "compact":
		return storeCompact(args[1:], stdout)
	case "verify":
		return storeVerify(args[1:], stdout)
	case "help", "-h", "-help", "--help":
		fmt.Fprint(stdout, storeUsage)
		return nil
	}
	return fmt.Errorf("unknown store subcommand %q\n\n%s", args[0], storeUsage)
}

// storeFlags builds a subcommand flag set whose positional arguments start
// with the store path.
func storeFlags(name, args, summary string) *flag.FlagSet {
	fs := flag.NewFlagSet("suite store "+name, flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: suite store %s [flags] %s\n\n%s\n", name, args, summary)
		var hasFlags bool
		fs.VisitAll(func(*flag.Flag) { hasFlags = true })
		if hasFlags {
			fmt.Fprint(fs.Output(), "\nFlags:\n")
			fs.PrintDefaults()
		}
	}
	return fs
}

// openStore opens the subcommand's positional store, read-only for the
// inspection subcommands.
func openStore(fs *flag.FlagSet, minArgs, maxArgs int, readOnly bool) (*store.Store, error) {
	if fs.NArg() < minArgs || fs.NArg() > maxArgs {
		return nil, fmt.Errorf("want %d-%d arguments starting with the store file, got %d", minArgs, maxArgs, fs.NArg())
	}
	return store.Open(fs.Arg(0), store.Options{ReadOnly: readOnly})
}

// resolveKey expands a full key or unique prefix to the live entry's key.
func resolveKey(st *store.Store, arg string) (string, error) {
	if st.Has(arg) {
		return arg, nil
	}
	matches := st.Query(store.Query{KeyPrefix: arg})
	switch len(matches) {
	case 0:
		return "", fmt.Errorf("no live entry matches key %q", arg)
	case 1:
		return matches[0].Key, nil
	}
	return "", fmt.Errorf("key prefix %q is ambiguous (%d matches)", arg, len(matches))
}

func storeImport(args []string, stdout io.Writer) error {
	fs := storeFlags("import", "<store-file> <cache-dir>",
		"Copy every entry of a cache directory into the store, payload bytes preserved.")
	run := fs.String("run", "", "pin the imported keys as this named run (GC-proof, visible to compare -trend)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := openStore(fs, 2, 2, false)
	if err != nil {
		return err
	}
	defer st.Close()
	keys, err := suite.ImportDirToStore(fs.Arg(1), st)
	if err != nil {
		return err
	}
	if *run != "" {
		if err := st.Pin(*run, keys...); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "imported %d entries from %s", len(keys), fs.Arg(1))
	if *run != "" {
		fmt.Fprintf(stdout, ", pinned as %q", *run)
	}
	fmt.Fprintln(stdout)
	return nil
}

// envFilter collects repeatable -env key=value filters.
type envFilter map[string]string

func (f envFilter) String() string { return "" }
func (f envFilter) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("want key=value, got %q", s)
	}
	f[k] = v
	return nil
}

func storeLs(args []string, stdout io.Writer) error {
	fs := storeFlags("ls", "<store-file>",
		"List live entries in log (history) order, filtered by metadata.")
	var q store.Query
	env := envFilter{}
	fs.StringVar(&q.Suite, "suite", "", "match the suite name")
	fs.StringVar(&q.Campaign, "campaign", "", "match the campaign name")
	fs.StringVar(&q.Engine, "engine", "", "match the engine name")
	fs.StringVar(&q.KeyPrefix, "key", "", "match keys by prefix")
	fs.StringVar(&q.Run, "pinned-by", "", "restrict to keys pinned by this run")
	round := fs.Int("round", -1, "match the adaptive round index exactly (0 = static entries; -1 = any)")
	since := fs.String("since", "", "lower time-of-run bound, RFC 3339 (inclusive)")
	until := fs.String("until", "", "upper time-of-run bound, RFC 3339 (exclusive)")
	fs.Var(env, "env", "require an environment descriptor, key=value (repeatable)")
	long := fs.Bool("l", false, "print full keys and environment descriptors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(env) > 0 {
		q.Env = env
	}
	if *round >= 0 {
		q.Round = round
	}
	var err error
	if q.Since, err = parseTime(*since); err != nil {
		return fmt.Errorf("-since: %w", err)
	}
	if q.Until, err = parseTime(*until); err != nil {
		return fmt.Errorf("-until: %w", err)
	}
	st, err := openStore(fs, 1, 1, true)
	if err != nil {
		return err
	}
	defer st.Close()
	metas := st.Query(q)
	for _, m := range metas {
		key := short(m.Key)
		if *long {
			key = m.Key
		}
		when := "-"
		if !m.When().IsZero() {
			when = m.When().UTC().Format(time.RFC3339)
		}
		fmt.Fprintf(stdout, "%s  %-12s %-12s %-9s round %d  %s  %6d bytes\n",
			key, m.Suite, m.Campaign, m.Engine, m.Round, when, m.Size)
		if *long && len(m.Env) > 0 {
			envKeys := make([]string, 0, len(m.Env))
			for k := range m.Env {
				envKeys = append(envKeys, k)
			}
			sort.Strings(envKeys)
			for _, k := range envKeys {
				fmt.Fprintf(stdout, "    env %s=%s\n", k, m.Env[k])
			}
		}
	}
	fmt.Fprintf(stdout, "%d entries\n", len(metas))
	return nil
}

func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	return time.Parse(time.RFC3339, s)
}

func storePin(args []string, stdout io.Writer) error {
	fs := storeFlags("pin", "<store-file> <run> <key>...",
		"Pin keys (full or unique prefix) under a run name; repinning a run replaces its key set.")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := openStore(fs, 3, 1<<20, false)
	if err != nil {
		return err
	}
	defer st.Close()
	keys := make([]string, 0, fs.NArg()-2)
	for _, arg := range fs.Args()[2:] {
		key, err := resolveKey(st, arg)
		if err != nil {
			return err
		}
		keys = append(keys, key)
	}
	if err := st.Pin(fs.Arg(1), keys...); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "pinned %d keys as %q\n", len(keys), fs.Arg(1))
	return nil
}

func storeUnpin(args []string, stdout io.Writer) error {
	fs := storeFlags("unpin", "<store-file> <run>",
		"Drop a run's pin; its entries become reclaimable by gc unless another run holds them.")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := openStore(fs, 2, 2, false)
	if err != nil {
		return err
	}
	defer st.Close()
	if err := st.Unpin(fs.Arg(1)); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "unpinned %q\n", fs.Arg(1))
	return nil
}

func storeRuns(args []string, stdout io.Writer) error {
	fs := storeFlags("runs", "<store-file>",
		"List pinned runs in first-pin order — the history compare -trend walks.")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := openStore(fs, 1, 1, true)
	if err != nil {
		return err
	}
	defer st.Close()
	pins := st.Pins()
	for _, p := range pins {
		fmt.Fprintf(stdout, "%-20s %d keys\n", p.Run, len(p.Keys))
	}
	fmt.Fprintf(stdout, "%d runs\n", len(pins))
	return nil
}

func storeChain(args []string, stdout io.Writer) error {
	fs := storeFlags("chain", "<store-file> <key>",
		"Print the provenance chain ending at a key, seed round first.")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := openStore(fs, 2, 2, true)
	if err != nil {
		return err
	}
	defer st.Close()
	key, err := resolveKey(st, fs.Arg(1))
	if err != nil {
		return err
	}
	chain, err := st.Chain(key)
	if err != nil {
		return err
	}
	for _, m := range chain {
		fmt.Fprintf(stdout, "round %d  %s  %s/%s  %d bytes\n",
			m.Round, short(m.Key), m.Suite, m.Campaign, m.Size)
	}
	return nil
}

func storeGC(args []string, stdout io.Writer) error {
	fs := storeFlags("gc", "<store-file>",
		"Tombstone every entry no pinned run (or its provenance chain) keeps alive.")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := openStore(fs, 1, 1, false)
	if err != nil {
		return err
	}
	defer st.Close()
	dead, err := st.GC()
	if err != nil {
		return err
	}
	for _, key := range dead {
		fmt.Fprintf(stdout, "reclaimed %s\n", short(key))
	}
	fmt.Fprintf(stdout, "%d entries reclaimed, %d live\n", len(dead), st.Len())
	return nil
}

func storeCompact(args []string, stdout io.Writer) error {
	fs := storeFlags("compact", "<store-file>",
		"Rewrite the log atomically, dropping superseded and tombstoned frames.")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := openStore(fs, 1, 1, false)
	if err != nil {
		return err
	}
	defer st.Close()
	before := st.LogSize()
	if err := st.Compact(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "compacted %d -> %d bytes (%d live entries)\n", before, st.LogSize(), st.Len())
	return nil
}

func storeVerify(args []string, stdout io.Writer) error {
	fs := storeFlags("verify", "<store-file>",
		"Re-read the whole log, re-verify every frame checksum, cross-check the in-memory state.")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := openStore(fs, 1, 1, true)
	if err != nil {
		return err
	}
	defer st.Close()
	rep, err := st.Verify()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "ok: %d frames (%d entries, %d tombstones, %d pins, %d unpins), %d live, %d runs, %d bytes\n",
		rep.Frames, rep.Entries, rep.Tombstones, rep.PinFrames, rep.UnpinFrames, rep.Live, rep.Pinned, rep.Bytes)
	return nil
}
