// Command served is the campaign service daemon: it keeps the suite
// orchestrator resident behind an HTTP/JSON API so many clients share one
// worker budget and one content-addressed result cache. Suites are
// submitted as the exact JSON spec cmd/suite takes as a file:
//
//	curl -d @suite.json localhost:8080/v1/suites
//	curl localhost:8080/v1/jobs/j1
//	curl localhost:8080/v1/jobs/j1/events          # NDJSON live tail
//	curl localhost:8080/v1/jobs/j1/results/<name>  # byte-identical CSV
//
// SIGINT/SIGTERM trigger a graceful drain: new submissions get 503, queued
// jobs are canceled, running suites finish, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"opaquebench/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "served:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("served", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "listen address")
	dataDir := fs.String("data-dir", "served-data", "directory for per-job outputs and the shared cache")
	cacheDir := fs.String("cache-dir", "", "override the shared result cache directory (default data-dir/cache)")
	cacheStore := fs.String("cache-store", "", "back the shared result cache with an embedded single-file store at this path (overrides -cache-dir)")
	workers := fs.Int("workers", 0, "global worker budget across all running suites (0 = GOMAXPROCS)")
	slots := fs.Int("slots", 2, "suite jobs allowed to run concurrently")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Minute, "how long shutdown waits for running jobs")
	quiet := fs.Bool("q", false, "suppress log lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	logw := io.Writer(os.Stderr)
	if *quiet {
		logw = nil
	}
	srv := serve.New(serve.Config{
		Workers:    *workers,
		Slots:      *slots,
		DataDir:    *dataDir,
		CacheDir:   *cacheDir,
		CacheStore: *cacheStore,
		Log:        logw,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	cacheDesc := srv.CacheDir()
	if *cacheStore != "" {
		cacheDesc = "store " + *cacheStore
	}
	fmt.Fprintf(stdout, "served: listening on http://%s (workers %d, slots %d, cache %s)\n",
		ln.Addr(), srv.Budget().Cap(), *slots, cacheDesc)

	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	// Drain first so in-flight event streams see their jobs finish, then
	// close the listener and any remaining connections.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "served: drain: %v\n", err)
	}
	// The drain finished every running job, so the shared store-backed
	// cache (if any) can flush its index and close.
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "served: close cache: %v\n", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "served: shut down cleanly")
	return nil
}
