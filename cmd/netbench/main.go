// Command netbench runs a white-box network campaign against a simulated
// network profile: randomized log-uniform message sizes (Equation 1), the
// three Section V.A operations, raw per-measurement logging, and an optional
// temporal perturbation for pitfall studies. -collective switches to the
// mpisim collective engine (bcast, allreduce, barrier), -fit
// prints the supervised LogGP model after a point-to-point campaign, and
// -workers > 1 shards the design across trial-indexed engine instances with
// streamed, byte-identical output (see internal/runner); cmd/suite
// orchestrates many such campaigns with a result cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/netbench"
	"opaquebench/internal/netsim"
	"opaquebench/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("netbench", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), `Usage: netbench [flags]

Run a white-box network campaign (methodology stage 2): execute a randomized
design in exactly the designed order against a simulated network profile,
logging every raw measurement. Sharded runs stay byte-identical to serial
ones; see cmd/suite to orchestrate many campaigns with a result cache.

Flags:
`)
		fs.PrintDefaults()
	}
	profile := fs.String("profile", "taurus", "network profile: taurus, myrinet-openmpi, myrinet-gm")
	seed := fs.Uint64("seed", 1, "campaign seed")
	nSizes := fs.Int("n", 200, "number of log-uniform message sizes")
	minSize := fs.Int("min", 16, "minimum message size (bytes)")
	maxSize := fs.Int("max", 2<<20, "maximum message size (bytes)")
	reps := fs.Int("reps", 4, "replicates per (size, op)")
	randomize := fs.Bool("randomize", true, "randomize execution order")
	perturbFactor := fs.Float64("perturb-factor", 0, "temporal perturbation stretch factor (0 = none)")
	perturbStart := fs.Float64("perturb-start", 0, "perturbation window start (virtual seconds)")
	perturbEnd := fs.Float64("perturb-end", 0, "perturbation window end (virtual seconds)")
	workers := fs.Int("workers", 1, "parallel campaign workers; >1 shards the design across trial-indexed engines and streams records as they complete")
	outPath := fs.String("o", "", "raw results CSV (default stdout)")
	jsonlPath := fs.String("jsonl", "", "raw results JSONL output (optional, streamed)")
	envPath := fs.String("env", "", "environment JSON output (optional)")
	fitBreaks := fs.Bool("fit", false, "after the campaign, print the supervised LogGP fit using the profile's true breakpoints")
	collective := fs.Bool("collective", false, "measure collectives (bcast, allreduce, barrier) instead of point-to-point operations")
	ranks := fs.Int("ranks", 8, "communicator size for collective campaigns")
	allreduceSwitch := fs.Int("allreduce-switch", 0, "allreduce algorithm switchover in bytes: binomial tree below, ring at and above (0 = ring everywhere)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := netsim.ProfileByName(*profile)
	if err != nil {
		return err
	}
	var design *doe.Design
	var engine core.Engine
	var factory core.EngineFactory
	if *collective {
		design, err = netbench.CollectiveDesign(*seed, *nSizes, *minSize, *maxSize, *reps,
			[]string{netbench.OpBcast, netbench.OpAllreduce, netbench.OpBarrier}, *randomize)
		if err != nil {
			return err
		}
		ccfg := netbench.CollectiveConfig{
			Profile: p, Ranks: *ranks, Seed: *seed,
			AllreduceSwitchBytes: *allreduceSwitch,
		}
		// Collective engines are trial-indexed, so sharded runs stay
		// byte-identical to serial ones; workers > 1 just works.
		factory = netbench.CollectiveFactory(ccfg)
		if *workers <= 1 {
			if engine, err = netbench.NewCollectiveEngine(ccfg); err != nil {
				return err
			}
		}
	} else {
		// The flags lower into the same declarative spec a suite file
		// carries, so the CLI and the suite orchestrator build campaigns
		// through one code path (netbench.FromSpec; see internal/engine for
		// the registry the orchestration layers consume). Only the
		// -randomize=false escape hatch — inexpressible in a spec, since
		// suites never give up randomization — regenerates the design.
		var cfg netbench.Config
		cfg, design, err = netbench.FromSpec(netbench.Spec{
			Profile:       *profile,
			N:             *nSizes,
			Min:           *minSize,
			Max:           *maxSize,
			Reps:          *reps,
			PerturbFactor: *perturbFactor,
			PerturbStart:  *perturbStart,
			PerturbEnd:    *perturbEnd,
		}, *seed)
		if err != nil {
			return err
		}
		if !*randomize {
			design, err = netbench.Design(*seed, *nSizes, *minSize, *maxSize, *reps, nil, false)
			if err != nil {
				return err
			}
		}
		factory = netbench.Factory(cfg)
		if *workers <= 1 {
			engine, err = netbench.NewEngine(cfg)
			if err != nil {
				return err
			}
		}
	}

	// Output files open lazily: serial runs only touch them after the
	// campaign succeeds; parallel runs open them post-validation to stream.
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	openSinks := func() ([]runner.RecordSink, error) {
		sinks, cs, err := runner.FileSinks(stdout, *outPath, *jsonlPath)
		closers = cs
		return sinks, err
	}

	res, err := runner.RunOrSerial(context.Background(), design, factory,
		engine, *workers, openSinks)
	if err != nil {
		return err
	}
	if *envPath != "" {
		f, err := os.Create(*envPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Env.WriteJSON(f); err != nil {
			return err
		}
	}
	if *fitBreaks && !*collective {
		model, err := netbench.FitLogGP(res, p.Breakpoints())
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "LogGP model (breakpoints %v):\n%s", p.Breakpoints(), model.String())
	}
	return nil
}
