package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"opaquebench/internal/core"
)

func TestBasicCampaign(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-profile", "taurus", "-n", "20", "-reps", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	res, err := core.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("no records")
	}
	ops := res.GroupBy("op")
	for _, op := range []string{"send", "recv", "pingpong"} {
		if len(ops[op]) == 0 {
			t.Fatalf("missing op %s", op)
		}
	}
}

func TestPerturbedCampaignFlagsRecords(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-profile", "myrinet-gm", "-n", "40", "-reps", "3",
		"-perturb-factor", "4", "-perturb-start", "0", "-perturb-end", "0.01"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	res, err := core.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := 0
	for _, rec := range res.Records {
		if rec.Extra["perturbed"] == "true" {
			perturbed++
		}
	}
	if perturbed == 0 {
		t.Fatal("no record flagged inside the perturbation window")
	}
}

func TestOutputFilesAndFit(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "net.csv")
	envPath := filepath.Join(dir, "env.json")
	var buf bytes.Buffer
	args := []string{"-profile", "taurus", "-n", "60", "-reps", "3", "-fit",
		"-o", outPath, "-env", envPath}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{outPath, envPath} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("missing %s: %v", p, err)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"-profile", "infiniband"},
		{"-oops"},
	}
	for _, c := range cases {
		if err := run(c, &buf); err == nil {
			t.Fatalf("args %v accepted", c)
		}
	}
}

func TestCollectiveCampaignFlag(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-profile", "myrinet-gm", "-collective", "-ranks", "4", "-n", "20", "-reps", "1"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	res, err := core.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ops := res.GroupBy("op")
	for _, op := range []string{"bcast", "allreduce", "barrier"} {
		if len(ops[op]) == 0 {
			t.Fatalf("missing collective %s", op)
		}
	}
}

func TestParallelWorkersReproducible(t *testing.T) {
	base := []string{"-profile", "taurus", "-n", "30", "-reps", "2", "-seed", "5"}
	var w2, w6 bytes.Buffer
	if err := run(append(append([]string{}, base...), "-workers", "2"), &w2); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, base...), "-workers", "6"), &w6); err != nil {
		t.Fatal(err)
	}
	if w2.String() != w6.String() {
		t.Fatal("sharded campaign output depends on worker count")
	}
	res, err := core.ReadCSV(&w2)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range res.Records {
		if rec.Seq != i {
			t.Fatalf("record %d out of design order (seq %d)", i, rec.Seq)
		}
	}
}

func TestCollectiveWorkersReproducible(t *testing.T) {
	// The collective engine is trial-indexed, so sharded campaigns must be
	// byte-identical to serial ones — the property that used to be a
	// "collective campaigns run serially" refusal.
	base := []string{"-profile", "taurus", "-collective", "-ranks", "4",
		"-allreduce-switch", "16384", "-n", "20", "-reps", "2", "-seed", "5"}
	var serial, sharded bytes.Buffer
	if err := run(append(append([]string{}, base...), "-workers", "1"), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, base...), "-workers", "4"), &sharded); err != nil {
		t.Fatal(err)
	}
	if serial.String() != sharded.String() {
		t.Fatal("sharded collective campaign output differs from serial")
	}
}

func TestJSONLOutput(t *testing.T) {
	dir := t.TempDir()
	jsonlPath := filepath.Join(dir, "raw.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-profile", "taurus", "-n", "15", "-reps", "1", "-workers", "3", "-jsonl", jsonlPath}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(data, []byte("\n")); got != res.Len() {
		t.Fatalf("%d JSONL lines for %d records", got, res.Len())
	}
}
