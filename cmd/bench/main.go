// Command bench is the benchmark-trajectory summarizer and gate: it parses
// `go test -bench` output, condenses the run into one trajectory entry
// (ns/op, B/op, allocs/op, campaign trials/sec), and maintains the
// checked-in BENCH.json history — asserting the record-encode allocation
// budget and failing on throughput regressions against the recorded
// trajectory, exactly the self-measurement discipline the paper demands of
// benchmarks pointed at this repository's own hot path.
//
// Typical CI usage:
//
//	go test -bench 'Campaign10k|EncodeRecord' -benchtime=1x -benchmem -run '^$' . ./... |
//	  go run ./cmd/bench -label "$GITHUB_SHA" -gate -max-allocs 0 -append
//
// The exit status is the gate: 0 when the allocation budget holds and no
// gated benchmark regressed, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"time"

	"opaquebench/internal/benchtrack"
)

const usage = `Usage: bench [flags] [bench-output-file]

Summarize a go test -bench run into one BENCH.json trajectory entry, assert
the allocation budget, and gate campaign throughput against the recorded
history. Reads the benchmark output from the file argument or stdin.
`

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "bench:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), usage, "\nFlags:\n")
		fs.PrintDefaults()
	}
	label := fs.String("label", "local", "label for this trajectory entry (commit, PR tag)")
	when := fs.String("when", "", "entry date (default today, YYYY-MM-DD)")
	file := fs.String("file", "BENCH.json", "trajectory file (JSONL, one entry per line)")
	doAppend := fs.Bool("append", false, "append this run to the trajectory file")
	gate := fs.Bool("gate", false, "fail when a gated benchmark regresses against the trajectory")
	gateMatch := fs.String("gate-match", "Campaign10k", "regexp selecting the throughput-gated benchmarks")
	window := fs.Int("window", 5, "trajectory entries the gate baseline medians over")
	tolerance := fs.Float64("tolerance", 0.30, "allowed relative drop below the baseline median")
	trialsMatch := fs.String("trials-match", "Campaign10k", "regexp selecting campaign benchmarks measured in trials/op")
	trials := fs.Int("trials", 10000, "trials per op for -trials-match benchmarks")
	maxAllocs := fs.Int64("max-allocs", -1, "fail when a -max-allocs-match benchmark exceeds this allocs/op (-1 disables)")
	maxAllocsMatch := fs.String("max-allocs-match", "EncodeRecord", "regexp selecting the allocation-budgeted benchmarks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("want at most one input file, got %d args\n\n%s", fs.NArg(), usage)
	}

	entry, err := benchtrack.Parse(in)
	if err != nil {
		return err
	}
	entry.Label = *label
	entry.When = *when
	if entry.When == "" {
		entry.When = time.Now().UTC().Format("2006-01-02")
	}
	trialsRe, err := regexp.Compile(*trialsMatch)
	if err != nil {
		return fmt.Errorf("-trials-match: %w", err)
	}
	benchtrack.AttachTrialRate(entry, trialsRe, *trials)

	names := make([]string, 0, len(entry.Benchmarks))
	for name := range entry.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(stdout, "entry %s (%s):\n", entry.Label, entry.When)
	for _, name := range names {
		b := entry.Benchmarks[name]
		fmt.Fprintf(stdout, "  %-40s %14.0f ns/op", name, b.NsPerOp)
		if b.AllocsPerOp >= 0 {
			fmt.Fprintf(stdout, " %10d B/op %8d allocs/op", b.BytesPerOp, b.AllocsPerOp)
		}
		if b.TrialsPerSec > 0 {
			fmt.Fprintf(stdout, " %10.0f trials/sec", b.TrialsPerSec)
		}
		fmt.Fprintln(stdout)
	}

	var problems []string
	if *maxAllocs >= 0 {
		re, err := regexp.Compile(*maxAllocsMatch)
		if err != nil {
			return fmt.Errorf("-max-allocs-match: %w", err)
		}
		problems = append(problems, benchtrack.AssertMaxAllocs(entry, re, *maxAllocs)...)
	}
	if *gate {
		re, err := regexp.Compile(*gateMatch)
		if err != nil {
			return fmt.Errorf("-gate-match: %w", err)
		}
		traj, err := benchtrack.ReadTrajectory(*file)
		if err != nil {
			return err
		}
		problems = append(problems, benchtrack.Gate(traj, entry, re, *window, *tolerance)...)
	}
	for _, p := range problems {
		fmt.Fprintln(stdout, "GATE:", p)
	}

	if *doAppend && len(problems) == 0 {
		if err := benchtrack.AppendEntry(*file, entry); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "appended to %s\n", *file)
	}
	if len(problems) > 0 {
		return fmt.Errorf("%d gate failure(s)", len(problems))
	}
	return nil
}
