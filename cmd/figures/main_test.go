package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"fig03", "fig07", "fig12", "pitfall-III.1"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestSingleFigureToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "fig05"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Opteron") {
		t.Fatalf("fig05 output:\n%s", buf.String())
	}
}

func TestOutDir(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-id", "fig13", "-outdir", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig13.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Operating system") {
		t.Fatal("figure file incomplete")
	}
}

func TestUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "fig99"}, &buf); err == nil {
		t.Fatal("unknown id accepted")
	}
	if err := run([]string{"-zzz"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRobustSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "pitfall-III.3", "-robust", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "across 3 seeds") || !strings.Contains(out, "median") {
		t.Fatalf("sweep output:\n%s", out)
	}
	if !strings.Contains(out, "neutral_break_count") {
		t.Fatalf("missing check rows:\n%s", out)
	}
	if err := run([]string{"-robust", "2"}, &buf); err == nil {
		t.Fatal("-robust without -id accepted")
	}
}
