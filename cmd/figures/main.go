// Command figures regenerates the paper's tables and figures from the
// simulated substrate, rendering each as an ASCII chart plus the fitted
// models and check values recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"opaquebench/internal/figures"
	"opaquebench/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	id := fs.String("id", "", "single figure id (e.g. fig07); empty = all")
	seed := fs.Uint64("seed", 20170529, "base seed for all campaigns")
	outDir := fs.String("outdir", "", "write one .txt per figure into this directory")
	list := fs.Bool("list", false, "list available figure ids and exit")
	robust := fs.Int("robust", 0, "rerun the figure across N seeds and report per-check min/median/max (requires -id)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *robust > 0 {
		if *id == "" {
			return fmt.Errorf("-robust requires -id")
		}
		g, err := figures.ByID(*id)
		if err != nil {
			return err
		}
		return robustSweep(out, g, *seed, *robust)
	}

	gens := figures.All()
	if *list {
		for _, g := range gens {
			fmt.Fprintf(out, "%-18s %s\n", g.ID, g.Title)
		}
		return nil
	}
	if *id != "" {
		g, err := figures.ByID(*id)
		if err != nil {
			return err
		}
		gens = []figures.Generator{g}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	for _, g := range gens {
		fig, err := g.Make(*seed)
		if err != nil {
			return fmt.Errorf("%s: %w", g.ID, err)
		}
		text := fig.Render()
		if *outDir != "" {
			path := filepath.Join(*outDir, g.ID+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", path)
			continue
		}
		fmt.Fprintln(out, text)
	}
	return nil
}

// robustSweep reruns one figure across n consecutive seeds and prints, per
// check value, the min / median / max — the quantitative answer to "is this
// reproduction a lucky seed?". Checks tied to a single observed episode
// (e.g. whether an interference window fired) are expected to spread; the
// shape checks should stay tight.
func robustSweep(out io.Writer, g figures.Generator, baseSeed uint64, n int) error {
	values := map[string][]float64{}
	for i := 0; i < n; i++ {
		fig, err := g.Make(baseSeed + uint64(i))
		if err != nil {
			return fmt.Errorf("%s seed %d: %w", g.ID, baseSeed+uint64(i), err)
		}
		for k, v := range fig.Checks {
			values[k] = append(values[k], v)
		}
	}
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(out, "%s across %d seeds (base %d):\n", g.ID, n, baseSeed)
	fmt.Fprintf(out, "%-42s %12s %12s %12s\n", "check", "min", "median", "max")
	for _, k := range keys {
		vs := values[k]
		fmt.Fprintf(out, "%-42s %12.6g %12.6g %12.6g\n",
			k, stats.Min(vs), stats.Median(vs), stats.Max(vs))
	}
	return nil
}
