// Command designgen emits a randomized experimental design as CSV — the
// first methodology stage as a standalone artifact that can be inspected,
// versioned, and handed to a benchmark engine.
//
// Memory designs cross buffer sizes, strides, element widths, nloops and
// unrolling; network designs cross log-uniform message sizes (Equation 1)
// with the three Section V.A operations.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"opaquebench/internal/doe"
	"opaquebench/internal/membench"
	"opaquebench/internal/memsim"
	"opaquebench/internal/netbench"
	"opaquebench/internal/netsim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "designgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("designgen", flag.ContinueOnError)
	kind := fs.String("type", "mem", "design type: mem or net")
	seed := fs.Uint64("seed", 1, "randomization seed")
	reps := fs.Int("reps", 42, "replicates per factor combination")
	randomize := fs.Bool("randomize", true, "shuffle the execution order")
	outPath := fs.String("o", "", "output file (default stdout)")

	sizes := fs.String("sizes", "", "mem: comma-separated buffer sizes in bytes (default a 4KB-4MB ladder)")
	strides := fs.String("strides", "1", "mem: comma-separated strides")
	elems := fs.String("elems", "4", "mem: comma-separated element sizes in bytes")
	nloops := fs.String("nloops", "100", "mem: comma-separated nloops values")
	unroll := fs.Bool("unroll-levels", false, "mem: include both unroll levels")
	kernels := fs.String("kernels", "", "mem: comma-separated STREAM kernels (sum,copy,triad)")

	nSizes := fs.Int("n", 100, "net: number of log-uniform sizes")
	minSize := fs.Int("min", 16, "net: minimum message size")
	maxSize := fs.Int("max", 1<<20, "net: maximum message size")
	pow2 := fs.Bool("pow2", false, "net: use the biased power-of-two grid instead of Equation (1)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var design *doe.Design
	var err error
	switch *kind {
	case "mem":
		sz, err := parseInts(*sizes)
		if err != nil {
			return err
		}
		if len(sz) == 0 {
			for s := 4 << 10; s <= 4<<20; s *= 2 {
				sz = append(sz, s)
			}
		}
		st, err := parseInts(*strides)
		if err != nil {
			return err
		}
		el, err := parseInts(*elems)
		if err != nil {
			return err
		}
		nl, err := parseInts(*nloops)
		if err != nil {
			return err
		}
		var un []bool
		if *unroll {
			un = []bool{false, true}
		}
		factors := membench.Factors(sz, st, el, nl, un)
		if strings.TrimSpace(*kernels) != "" {
			var ks []string
			for _, k := range strings.Split(*kernels, ",") {
				k = strings.TrimSpace(k)
				if !memsim.StreamKind(k).Valid() {
					return fmt.Errorf("unknown kernel %q (sum, copy, triad)", k)
				}
				ks = append(ks, k)
			}
			factors = append(factors, doe.NewFactor(membench.FactorKernel, ks...))
		}
		design, err = doe.FullFactorial(factors, doe.Options{
			Replicates: *reps, Seed: *seed, Randomize: *randomize,
		})
		if err != nil {
			return err
		}
	case "net":
		if *pow2 {
			design, err = netbench.PowerOfTwoDesign(*minSize, *maxSize, *reps, nil)
		} else {
			design, err = netbench.Design(*seed, *nSizes, *minSize, *maxSize, *reps, []netsim.Op{
				netsim.OpSend, netsim.OpRecv, netsim.OpPingPong,
			}, *randomize)
		}
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown design type %q (mem or net)", *kind)
	}

	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return design.WriteCSV(w)
}

func parseInts(csv string) ([]int, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var out []int
	for _, tok := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", tok, err)
		}
		out = append(out, v)
	}
	return out, nil
}
