package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"opaquebench/internal/doe"
)

func TestMemDesignDefaults(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-type", "mem", "-reps", "2", "-seed", "9"}, &buf); err != nil {
		t.Fatal(err)
	}
	d, err := doe.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() == 0 {
		t.Fatal("empty design")
	}
	if _, err := d.Trials[0].Point.Int("size"); err != nil {
		t.Fatal("size factor missing")
	}
}

func TestMemDesignExplicitFactors(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-type", "mem", "-sizes", "1024,2048", "-strides", "1,2",
		"-elems", "4,8", "-nloops", "10", "-unroll-levels", "-reps", "1"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	d, err := doe.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 2*2*2*1*2 {
		t.Fatalf("size = %d, want 16", d.Size())
	}
}

func TestNetDesignLogUniform(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-type", "net", "-n", "30", "-reps", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	d, err := doe.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	nonPow2 := 0
	for _, tr := range d.Trials {
		if s, err := tr.Point.Int("size"); err == nil && s&(s-1) != 0 {
			nonPow2++
		}
	}
	if nonPow2 == 0 {
		t.Fatal("log-uniform design produced only powers of two")
	}
}

func TestNetDesignPow2(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-type", "net", "-pow2", "-min", "64", "-max", "1024", "-reps", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		cols := strings.Split(line, ",")
		size := cols[len(cols)-1]
		switch size {
		case "64", "128", "256", "512", "1024":
		default:
			t.Fatalf("unexpected size %q", size)
		}
	}
}

func TestWriteToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "design.csv")
	var buf bytes.Buffer
	if err := run([]string{"-type", "mem", "-sizes", "1024", "-reps", "1", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("wrote to stdout despite -o")
	}
}

func TestBadInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-type", "alien"}, &buf); err == nil {
		t.Fatal("bad type accepted")
	}
	if err := run([]string{"-type", "mem", "-sizes", "abc"}, &buf); err == nil {
		t.Fatal("bad sizes accepted")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestMemDesignKernels(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-type", "mem", "-sizes", "8192", "-kernels", "sum,copy,triad", "-reps", "1"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	d, err := doe.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 3 {
		t.Fatalf("size = %d, want 3", d.Size())
	}
	if err := run([]string{"-type", "mem", "-kernels", "saxpy"}, &buf); err == nil {
		t.Fatal("bad kernel accepted")
	}
}
