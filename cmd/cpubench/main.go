// Command cpubench runs a white-box CPU campaign against a simulated
// frequency table: it reads (or generates) a randomized design of busy-loop
// workloads, executes every trial in design order through the cpubench
// engine — DVFS governor and OS scheduling interference included — and
// writes the full raw results plus the captured environment. -workers > 1
// (or -indexed at -workers 1) runs trial-indexed with streamed,
// byte-identical output (see internal/runner); cmd/suite orchestrates many
// such campaigns with a result cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"opaquebench/internal/core"
	"opaquebench/internal/cpubench"
	"opaquebench/internal/cpusim"
	"opaquebench/internal/doe"
	"opaquebench/internal/ossim"
	"opaquebench/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cpubench:", err)
		os.Exit(1)
	}
}

// parseTable resolves the -table flag: a named Figure 5 ladder, or one or
// more comma-separated GHz values (e.g. "1.6,2.0,3.4").
func parseTable(spec string) (cpusim.FreqTable, error) {
	named, nameErr := cpubench.TableByName(spec)
	if nameErr == nil {
		return named, nil
	}
	var tab cpusim.FreqTable
	for _, part := range strings.Split(spec, ",") {
		ghz, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			if !strings.Contains(spec, ",") {
				// A single non-numeric token is a misspelled name, not a
				// malformed frequency list.
				return nil, nameErr
			}
			return nil, fmt.Errorf("bad frequency %q in table %q", part, spec)
		}
		tab = append(tab, ghz*1e9)
	}
	if err := tab.Validate(); err != nil {
		return nil, err
	}
	return tab, nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cpubench", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), `Usage: cpubench [flags]

Run a white-box CPU campaign (methodology stage 2): execute a randomized
design in exactly the designed order against a simulated frequency table —
DVFS governor and OS scheduling interference included — logging every raw
measurement. Sharded runs stay byte-identical to serial ones; see cmd/suite
to orchestrate many campaigns with a result cache.

Flags:
`)
		fs.PrintDefaults()
	}
	table := fs.String("table", "i7", "frequency table: i7, snowball, opteron, p4, or comma-separated GHz values")
	designPath := fs.String("design", "", "design CSV (from designgen); empty generates the default nloops ladder")
	seed := fs.Uint64("seed", 1, "campaign seed")
	governor := fs.String("governor", "performance", "DVFS governor: performance, powersave, ondemand, conservative, userspace")
	targetGHz := fs.Float64("target-ghz", 0, "pinned frequency for -governor userspace (GHz)")
	period := fs.Float64("period", 0.01, "governor sampling period (seconds)")
	policy := fs.String("policy", "other", "scheduling policy: other, rt")
	unpinned := fs.Bool("unpinned", false, "do not pin the benchmark to one core (adds migration noise)")
	gap := fs.Float64("gap", 0.005, "idle seconds between measurements; longer gaps let load-reactive governors ramp back down (the Figure 10 scenario uses 0.03)")
	duty := fs.Float64("duty", 1, "busy fraction per loop repetition, (0, 1]")
	reps := fs.Int("reps", 42, "replicates when generating the default design")
	indexed := fs.Bool("indexed", false, "trial-indexed execution even at -workers 1, so serial output is byte-identical to any sharded run (requires a load-oblivious governor and a pinned scheduler)")
	workers := fs.Int("workers", 1, "parallel campaign workers; >1 shards the design across trial-indexed engines (requires a load-oblivious governor and a pinned scheduler) and streams records as they complete")
	outPath := fs.String("o", "", "raw results CSV (default stdout)")
	jsonlPath := fs.String("jsonl", "", "raw results JSONL output (optional, streamed)")
	envPath := fs.String("env", "", "environment JSON output (optional)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tab, err := parseTable(*table)
	if err != nil {
		return err
	}
	gov, err := cpusim.GovernorByName(*governor, *targetGHz*1e9)
	if err != nil {
		return err
	}
	pol, err := ossim.PolicyByName(*policy)
	if err != nil {
		return err
	}
	if *duty <= 0 || *duty > 1 {
		return fmt.Errorf("duty must be in (0, 1], got %v", *duty)
	}
	if *designPath != "" && *duty != 1 {
		return fmt.Errorf("-duty shapes the generated design; with -design, add a duty column to the design CSV instead")
	}

	var design *doe.Design
	if *designPath != "" {
		f, err := os.Open(*designPath)
		if err != nil {
			return err
		}
		design, err = doe.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		// The default design comes from the same declarative-spec path a
		// suite file uses (the canonical Figure 10 ladder, crossed with the
		// duty level when one is requested); only the design is taken — the
		// engine config keeps the flag-only knobs (-unpinned, ad-hoc
		// -table ladders) a spec deliberately cannot express.
		_, design, err = cpubench.FromSpec(cpubench.Spec{Duty: *duty, Reps: *reps}, *seed)
		if err != nil {
			return err
		}
	}

	cfg := cpubench.Config{
		Table:             tab,
		Seed:              *seed,
		Governor:          gov,
		SamplingPeriodSec: *period,
		Sched:             ossim.Config{Policy: pol, Unpinned: *unpinned},
		GapSec:            *gap,
		Indexed:           *indexed,
	}
	var eng core.Engine
	if *workers <= 1 {
		if eng, err = cpubench.NewEngine(cfg); err != nil {
			return err
		}
	}

	// Output files open lazily: serial runs only touch them after the
	// campaign succeeds; parallel runs open them post-validation to stream.
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	openSinks := func() ([]runner.RecordSink, error) {
		sinks, cs, err := runner.FileSinks(stdout, *outPath, *jsonlPath)
		closers = cs
		return sinks, err
	}

	res, err := runner.RunOrSerial(context.Background(), design, cpubench.Factory(cfg),
		eng, *workers, openSinks)
	if err != nil {
		return err
	}
	if *envPath != "" {
		f, err := os.Create(*envPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Env.WriteJSON(f); err != nil {
			return err
		}
	}
	return nil
}
