package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/meta"
)

func TestDefaultCampaign(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-reps", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	res, err := core.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4*2 {
		t.Fatalf("records = %d, want 8 (4 ladder levels x 2 reps)", res.Len())
	}
	for _, rec := range res.Records {
		if rec.Value <= 0 {
			t.Fatalf("effective MHz %v", rec.Value)
		}
	}
}

func TestDesignFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	designPath := filepath.Join(dir, "design.csv")
	design := "seq,rep,nloops,loopcycles\n0,0,50,100000\n1,0,500,100000\n"
	if err := os.WriteFile(designPath, []byte(design), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.csv")
	envPath := filepath.Join(dir, "env.json")
	var buf bytes.Buffer
	err := run([]string{"-design", designPath, "-governor", "powersave", "-o", outPath, "-env", envPath}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := core.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("records = %d, want 2", res.Len())
	}
	ef, err := os.Open(envPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	env, err := meta.ReadJSON(ef)
	if err != nil {
		t.Fatal(err)
	}
	if env.Get("governor") != "powersave" {
		t.Fatalf("env governor = %q", env.Get("governor"))
	}
}

func TestGovernorPolicyAndTableFlags(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"-governor", "ondemand", "-policy", "rt", "-reps", "1"},
		{"-governor", "conservative", "-reps", "1"},
		{"-governor", "userspace", "-target-ghz", "2.6", "-reps", "1"},
		{"-table", "snowball", "-reps", "1"},
		{"-table", "1.2,2.4,3.6", "-reps", "1"},
		{"-duty", "0.5", "-reps", "1"},
		{"-unpinned", "-reps", "1"},
		{"-governor", "ondemand", "-gap", "0.03", "-reps", "1"},
	}
	for _, c := range cases {
		if err := run(c, &buf); err != nil {
			t.Fatalf("args %v: %v", c, err)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"-table", "cray"},
		{"-table", "i9"}, // misspelled name must get the unknown-table error, not a parse error
		{"-table", "3.4,1.6"},
		{"-table", "1.6,fast"},
		{"-governor", "warp"},
		{"-governor", "userspace"}, // no -target-ghz: would silently pin the minimum
		{"-policy", "fifo99"},
		{"-duty", "0"},
		{"-duty", "1.5"},
		{"-design", "/nonexistent/design.csv"},
		{"-design", "/nonexistent/design.csv", "-duty", "0.5"}, // -duty only shapes generated designs
		{"-wat"},
	}
	for _, c := range cases {
		if err := run(c, &buf); err == nil {
			t.Fatalf("args %v accepted", c)
		}
	}
}

// TestSerialIndexedMatchesWorkers8 is the acceptance criterion: a serial
// indexed run and a -workers 8 sharded run over the same design and seed
// produce byte-identical CSV.
func TestSerialIndexedMatchesWorkers8(t *testing.T) {
	base := []string{"-reps", "3", "-seed", "6"}
	var serial, sharded bytes.Buffer
	if err := run(append(append([]string{}, base...), "-indexed"), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, base...), "-workers", "8"), &sharded); err != nil {
		t.Fatal(err)
	}
	if serial.Len() == 0 {
		t.Fatal("no output")
	}
	if !bytes.Equal(serial.Bytes(), sharded.Bytes()) {
		t.Fatal("serial indexed CSV differs from -workers 8 CSV")
	}
}

func TestParallelWorkersReproducible(t *testing.T) {
	base := []string{"-reps", "1", "-seed", "3"}
	var first, second bytes.Buffer
	if err := run(append(append([]string{}, base...), "-workers", "4"), &first); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, base...), "-workers", "2"), &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("sharded campaign output depends on worker count")
	}
	res, err := core.ReadCSV(&first)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("no records")
	}
	for i, rec := range res.Records {
		if rec.Seq != i {
			t.Fatalf("record %d out of design order (seq %d)", i, rec.Seq)
		}
	}
}

func TestParallelRejectsSequentialOnlyConfig(t *testing.T) {
	var buf bytes.Buffer
	for _, c := range [][]string{
		{"-governor", "ondemand", "-reps", "1", "-workers", "4"},
		{"-governor", "conservative", "-reps", "1", "-workers", "4"},
		{"-unpinned", "-reps", "1", "-workers", "4"},
		{"-governor", "ondemand", "-reps", "1", "-indexed"},
	} {
		if err := run(c, &buf); err == nil {
			t.Fatalf("args %v accepted", c)
		}
	}
}

func TestJSONLOutput(t *testing.T) {
	dir := t.TempDir()
	jsonlPath := filepath.Join(dir, "raw.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-reps", "1", "-workers", "2", "-jsonl", jsonlPath}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(data, []byte("\n"))
	res, err := core.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if lines != res.Len() {
		t.Fatalf("%d JSONL lines for %d records", lines, res.Len())
	}
}

// TestFailedRunPreservesOutputFile feeds a design with a bad row and
// checks the -o target survives untouched: serial runs open outputs only
// after the campaign succeeds.
func TestFailedRunPreservesOutputFile(t *testing.T) {
	dir := t.TempDir()
	designPath := filepath.Join(dir, "design.csv")
	// Second row lacks a parseable nloops, so trial 1 fails mid-campaign.
	bad := "seq,rep,nloops\n0,0,100\n1,0,forever\n"
	if err := os.WriteFile(designPath, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(outPath, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-design", designPath, "-o", outPath}, &buf); err == nil {
		t.Fatal("campaign with a bad trial reported success")
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "precious" {
		t.Fatalf("failed run clobbered the output file: %q", data)
	}
}
