// Command membench runs a white-box memory campaign against one of the
// simulated Figure 5 machines: it reads (or generates) a randomized design,
// executes every trial in design order through the membench engine, and
// writes the full raw results plus the captured environment. -workers > 1
// shards the design across trial-indexed engine instances with streamed,
// byte-identical output (see internal/runner); cmd/suite orchestrates many
// such campaigns with a result cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/membench"
	"opaquebench/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "membench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("membench", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), `Usage: membench [flags]

Run a white-box memory campaign (methodology stage 2): execute a randomized
design in exactly the designed order against a simulated machine, logging
every raw measurement. Sharded runs stay byte-identical to serial ones; see
cmd/suite to orchestrate many campaigns with a result cache.

Flags:
`)
		fs.PrintDefaults()
	}
	machine := fs.String("machine", "i7", "machine: opteron, p4, i7, snowball")
	designPath := fs.String("design", "", "design CSV (from designgen); empty generates a default ladder")
	seed := fs.Uint64("seed", 1, "campaign seed")
	governor := fs.String("governor", "performance", "DVFS governor: performance, powersave, ondemand, conservative, userspace")
	targetGHz := fs.Float64("target-ghz", 0, "pinned frequency for -governor userspace (GHz)")
	alloc := fs.String("alloc", "contiguous", "allocation: contiguous, pool, arena")
	policy := fs.String("policy", "other", "scheduling policy: other, rt")
	reps := fs.Int("reps", 42, "replicates when generating the default design")
	workers := fs.Int("workers", 1, "parallel campaign workers; >1 shards the design across trial-indexed engines (requires a load-oblivious governor and contiguous allocation) and streams records as they complete")
	outPath := fs.String("o", "", "raw results CSV (default stdout)")
	jsonlPath := fs.String("jsonl", "", "raw results JSONL output (optional, streamed)")
	envPath := fs.String("env", "", "environment JSON output (optional)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The flags lower into the same declarative spec a suite file carries,
	// so the CLI and the suite orchestrator build campaigns through one
	// code path (membench.FromSpec; see internal/engine for the registry
	// the orchestration layers consume).
	cfg, design, err := membench.FromSpec(membench.Spec{
		Machine:   *machine,
		Governor:  *governor,
		TargetGHz: *targetGHz,
		Alloc:     *alloc,
		Policy:    *policy,
		Reps:      *reps,
	}, *seed)
	if err != nil {
		return err
	}
	if *designPath != "" {
		f, err := os.Open(*designPath)
		if err != nil {
			return err
		}
		design, err = doe.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	}

	var eng core.Engine
	if *workers <= 1 {
		if eng, err = membench.NewEngine(cfg); err != nil {
			return err
		}
	}

	// Output files open lazily: serial runs only touch them after the
	// campaign succeeds; parallel runs open them post-validation to stream.
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	openSinks := func() ([]runner.RecordSink, error) {
		sinks, cs, err := runner.FileSinks(stdout, *outPath, *jsonlPath)
		closers = cs
		return sinks, err
	}

	res, err := runner.RunOrSerial(context.Background(), design, membench.Factory(cfg),
		eng, *workers, openSinks)
	if err != nil {
		return err
	}
	if *envPath != "" {
		f, err := os.Create(*envPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Env.WriteJSON(f); err != nil {
			return err
		}
	}
	return nil
}
