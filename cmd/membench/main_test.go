package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/meta"
)

func TestDefaultCampaign(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-machine", "opteron", "-reps", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	res, err := core.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("no records")
	}
	for _, rec := range res.Records {
		if rec.Value <= 0 {
			t.Fatalf("bandwidth %v", rec.Value)
		}
	}
}

func TestDesignFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	designPath := filepath.Join(dir, "design.csv")
	design := "seq,rep,nloops,size,stride\n0,0,50,4096,1\n1,0,50,8192,1\n"
	if err := os.WriteFile(designPath, []byte(design), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.csv")
	envPath := filepath.Join(dir, "env.json")
	var buf bytes.Buffer
	err := run([]string{"-machine", "p4", "-design", designPath, "-o", outPath, "-env", envPath}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := core.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("records = %d, want 2", res.Len())
	}
	ef, err := os.Open(envPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	env, err := meta.ReadJSON(ef)
	if err != nil {
		t.Fatal(err)
	}
	if env.Get("machine") != "Pentium 4" {
		t.Fatalf("env machine = %q", env.Get("machine"))
	}
}

func TestGovernorAndPolicyFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-machine", "i7", "-governor", "ondemand", "-policy", "rt", "-reps", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-machine", "i7", "-governor", "powersave", "-reps", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"-machine", "cray"},
		{"-machine", "i7", "-governor", "warp"},
		{"-machine", "i7", "-policy", "fifo99"},
		{"-machine", "i7", "-alloc", "slab"},
		{"-design", "/nonexistent/design.csv"},
		{"-wat"},
	}
	for _, c := range cases {
		if err := run(c, &buf); err == nil {
			t.Fatalf("args %v accepted", c)
		}
	}
}

func TestParallelWorkersReproducible(t *testing.T) {
	base := []string{"-machine", "p4", "-reps", "1", "-seed", "3"}
	var first, second bytes.Buffer
	if err := run(append(append([]string{}, base...), "-workers", "4"), &first); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, base...), "-workers", "2"), &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("sharded campaign output depends on worker count")
	}
	res, err := core.ReadCSV(&first)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("no records")
	}
	for i, rec := range res.Records {
		if rec.Seq != i {
			t.Fatalf("record %d out of design order (seq %d)", i, rec.Seq)
		}
	}
}

func TestParallelRejectsSequentialOnlyConfig(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-machine", "i7", "-governor", "ondemand", "-reps", "1", "-workers", "4"}, &buf)
	if err == nil {
		t.Fatal("ondemand governor accepted with -workers 4")
	}
}

func TestJSONLOutput(t *testing.T) {
	dir := t.TempDir()
	jsonlPath := filepath.Join(dir, "raw.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-machine", "p4", "-reps", "1", "-workers", "2", "-jsonl", jsonlPath}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(data, []byte("\n"))
	res, err := core.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if lines != res.Len() {
		t.Fatalf("%d JSONL lines for %d records", lines, res.Len())
	}
}

// TestFailedRunPreservesOutputFile feeds a design with a bad row and
// checks the -o target survives untouched: serial runs open outputs only
// after the campaign succeeds.
func TestFailedRunPreservesOutputFile(t *testing.T) {
	dir := t.TempDir()
	designPath := filepath.Join(dir, "design.csv")
	// Second row lacks a parseable size, so trial 1 fails mid-campaign.
	bad := "seq,rep,size\n0,0,4096\n1,0,enormous\n"
	if err := os.WriteFile(designPath, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(outPath, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-machine", "p4", "-design", designPath, "-o", outPath}, &buf); err == nil {
		t.Fatal("campaign with a bad trial reported success")
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "precious" {
		t.Fatalf("failed run clobbered the output file: %q", data)
	}
}
