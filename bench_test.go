package opaquebench_test

import (
	"testing"

	"opaquebench/internal/figures"
)

// One benchmark per paper table/figure: each iteration regenerates the
// experiment end to end (design -> simulated campaign -> offline analysis)
// and reports its headline check values as custom metrics. Run with
//
//	go test -bench=. -benchmem
//
// The absolute bandwidths/latencies are properties of the simulated
// substrate, not of the host; the *shapes* are what EXPERIMENTS.md compares
// against the paper.

func benchFigure(b *testing.B, id string, metrics ...string) {
	g, err := figures.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var last *figures.Figure
	for i := 0; i < b.N; i++ {
		// Vary the seed across iterations so the benchmark measures the
		// generator, not one memoizable draw.
		f, err := g.Make(20170529 + uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	for _, m := range metrics {
		if v, ok := last.Checks[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

func BenchmarkFig03MyrinetPiecewise(b *testing.B) {
	benchFigure(b, "fig03", "openmpi/auto_breaks", "gm/auto_breaks")
}

func BenchmarkFig04TaurusLogGP(b *testing.B) {
	benchFigure(b, "fig04", "auto_break_count", "recv_cv_mid_max")
}

func BenchmarkFig05MachineTable(b *testing.B) {
	benchFigure(b, "fig05", "machines")
}

func BenchmarkFig07OpteronPlateaus(b *testing.B) {
	benchFigure(b, "fig07", "L2_stride2_over_stride4", "L1_stride2_over_stride8")
}

func BenchmarkFig08PentiumNoise(b *testing.B) {
	benchFigure(b, "fig08", "mean_per_size_cv")
}

func BenchmarkFig09VectorUnroll(b *testing.B) {
	benchFigure(b, "fig09", "width_8B_over_4B", "avx_anomaly_unroll_over_plain", "drop_4B_nounroll")
}

func BenchmarkFig10OndemandDVFS(b *testing.B) {
	benchFigure(b, "fig10", "low_plateau_over_high")
}

func BenchmarkFig11RTScheduling(b *testing.B) {
	benchFigure(b, "fig11", "mode_ratio", "low_mode_fraction", "contiguity")
}

func BenchmarkFig12ARMPaging(b *testing.B) {
	benchFigure(b, "fig12", "distinct_drop_points")
}

func BenchmarkFig13FactorDiagram(b *testing.B) {
	benchFigure(b, "fig13", "factor_groups")
}

func BenchmarkPitfallPerturbation(b *testing.B) {
	benchFigure(b, "pitfall-III.1", "opaque_spurious_breaks", "whitebox_breaks")
}

func BenchmarkPitfallSizeBias(b *testing.B) {
	benchFigure(b, "pitfall-III.2", "pow2_bias_factor", "detected_penalty")
}

func BenchmarkPitfallBreakAssumption(b *testing.B) {
	benchFigure(b, "pitfall-III.3", "neutral_break_count", "assumed_sse_over_neutral_sse")
}

func BenchmarkPagingFix(b *testing.B) {
	benchFigure(b, "pitfall-IV.4-fix", "pool_cross_run_cv", "arena_cross_run_cv")
}

// Ablation benches: each removes one ingredient of the methodology or the
// substrate and reports what it cost (see DESIGN.md).

func BenchmarkAblationRandomization(b *testing.B) {
	benchFigure(b, "ablation-randomization", "ordered_spread", "randomized_spread")
}

func BenchmarkAblationWeighting(b *testing.B) {
	benchFigure(b, "ablation-weighting", "unweighted_spurious_breaks", "weighted_spurious_breaks")
}

func BenchmarkAblationReplacement(b *testing.B) {
	benchFigure(b, "ablation-replacement", "lru_worst_slowdown", "random_worst_slowdown")
}

func BenchmarkAblationExtrapolation(b *testing.B) {
	benchFigure(b, "ablation-extrapolation", "max_rel_error")
}

func BenchmarkAblationTLB(b *testing.B) {
	benchFigure(b, "ablation-tlb", "stride1024_tlb_over_plain")
}

func BenchmarkExtStream(b *testing.B) {
	benchFigure(b, "ext-stream", "mem_copy_over_sum", "mem_triad_over_copy")
}
