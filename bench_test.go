package opaquebench_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/figures"
	"opaquebench/internal/membench"
	"opaquebench/internal/memsim"
	"opaquebench/internal/runner"
)

// One benchmark per paper table/figure: each iteration regenerates the
// experiment end to end (design -> simulated campaign -> offline analysis)
// and reports its headline check values as custom metrics. Run with
//
//	go test -bench=. -benchmem
//
// The absolute bandwidths/latencies are properties of the simulated
// substrate, not of the host; the *shapes* are what EXPERIMENTS.md compares
// against the paper.

func benchFigure(b *testing.B, id string, metrics ...string) {
	g, err := figures.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var last *figures.Figure
	for i := 0; i < b.N; i++ {
		// Vary the seed across iterations so the benchmark measures the
		// generator, not one memoizable draw.
		f, err := g.Make(20170529 + uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	for _, m := range metrics {
		if v, ok := last.Checks[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

func BenchmarkFig03MyrinetPiecewise(b *testing.B) {
	benchFigure(b, "fig03", "openmpi/auto_breaks", "gm/auto_breaks")
}

func BenchmarkFig04TaurusLogGP(b *testing.B) {
	benchFigure(b, "fig04", "auto_break_count", "recv_cv_mid_max")
}

func BenchmarkFig05MachineTable(b *testing.B) {
	benchFigure(b, "fig05", "machines")
}

func BenchmarkFig07OpteronPlateaus(b *testing.B) {
	benchFigure(b, "fig07", "L2_stride2_over_stride4", "L1_stride2_over_stride8")
}

func BenchmarkFig08PentiumNoise(b *testing.B) {
	benchFigure(b, "fig08", "mean_per_size_cv")
}

func BenchmarkFig09VectorUnroll(b *testing.B) {
	benchFigure(b, "fig09", "width_8B_over_4B", "avx_anomaly_unroll_over_plain", "drop_4B_nounroll")
}

func BenchmarkFig10OndemandDVFS(b *testing.B) {
	benchFigure(b, "fig10", "low_plateau_over_high")
}

func BenchmarkFig11RTScheduling(b *testing.B) {
	benchFigure(b, "fig11", "mode_ratio", "low_mode_fraction", "contiguity")
}

func BenchmarkFig12ARMPaging(b *testing.B) {
	benchFigure(b, "fig12", "distinct_drop_points")
}

func BenchmarkFig13FactorDiagram(b *testing.B) {
	benchFigure(b, "fig13", "factor_groups")
}

func BenchmarkPitfallPerturbation(b *testing.B) {
	benchFigure(b, "pitfall-III.1", "opaque_spurious_breaks", "whitebox_breaks")
}

func BenchmarkPitfallSizeBias(b *testing.B) {
	benchFigure(b, "pitfall-III.2", "pow2_bias_factor", "detected_penalty")
}

func BenchmarkPitfallBreakAssumption(b *testing.B) {
	benchFigure(b, "pitfall-III.3", "neutral_break_count", "assumed_sse_over_neutral_sse")
}

func BenchmarkPagingFix(b *testing.B) {
	benchFigure(b, "pitfall-IV.4-fix", "pool_cross_run_cv", "arena_cross_run_cv")
}

// Ablation benches: each removes one ingredient of the methodology or the
// substrate and reports what it cost (see DESIGN.md).

func BenchmarkAblationRandomization(b *testing.B) {
	benchFigure(b, "ablation-randomization", "ordered_spread", "randomized_spread")
}

func BenchmarkAblationWeighting(b *testing.B) {
	benchFigure(b, "ablation-weighting", "unweighted_spurious_breaks", "weighted_spurious_breaks")
}

func BenchmarkAblationReplacement(b *testing.B) {
	benchFigure(b, "ablation-replacement", "lru_worst_slowdown", "random_worst_slowdown")
}

func BenchmarkAblationExtrapolation(b *testing.B) {
	benchFigure(b, "ablation-extrapolation", "max_rel_error")
}

func BenchmarkAblationTLB(b *testing.B) {
	benchFigure(b, "ablation-tlb", "stride1024_tlb_over_plain")
}

func BenchmarkExtStream(b *testing.B) {
	benchFigure(b, "ext-stream", "mem_copy_over_sum", "mem_triad_over_copy")
}

// Campaign-execution benches: the same 10k-trial membench campaign through
// the serial core.Campaign loop and through the sharded runner. The records
// are identical by construction (trial-indexed engines; see DESIGN.md §6);
// only wall-clock differs. Compare with
//
//	go test -bench=Campaign10k -benchtime=1x
//
// On an N-core host the runner is expected to approach Nx for workers <= N
// (the ≥2x-at-4-workers target of the runner subsystem); on a single core
// it only pays the small sharding overhead.

func campaign10k(tb testing.TB) (*doe.Design, core.EngineFactory) {
	tb.Helper()
	d, err := doe.FullFactorial(
		membench.Factors(
			[]int{4 << 10, 16 << 10, 64 << 10, 256 << 10},
			[]int{1, 2, 4, 8}, nil, []int{200}, nil),
		doe.Options{Replicates: 625, Seed: 1, Randomize: true})
	if err != nil {
		tb.Fatal(err)
	}
	if d.Size() != 10000 {
		tb.Fatalf("design has %d trials, want 10000", d.Size())
	}
	return d, membench.Factory(membench.Config{Machine: memsim.CoreI7(), Seed: 1})
}

func BenchmarkCampaign10kSerial(b *testing.B) {
	d, factory := campaign10k(b)
	eng, err := factory.NewEngine()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&core.Campaign{Design: d, Engine: eng}).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCampaignParallel(b *testing.B, workers int) {
	d, factory := campaign10k(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(context.Background(), d, factory,
			runner.Config{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaign10kParallel2(b *testing.B) { benchCampaignParallel(b, 2) }
func BenchmarkCampaign10kParallel4(b *testing.B) { benchCampaignParallel(b, 4) }
func BenchmarkCampaign10kParallel8(b *testing.B) { benchCampaignParallel(b, 8) }

// TestParallelSpeedupAt4Workers measures the 10k-trial campaign serially
// and at 4 workers. Sibling test binaries share the host's cores, so a
// positive speedup target here would flake under contention; the test
// instead guards the regression direction — sharding must never make a
// campaign materially slower — and logs the measured ratio. The ≥2x
// speedup demonstration lives in the Campaign10k benchmarks, which run
// alone on a quiet host (`go test -bench=Campaign10k -benchtime=1x`).
func TestParallelSpeedupAt4Workers(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-trial campaign timing; skipped in -short")
	}
	if raceEnabled {
		t.Skip("wall-clock ratios are noise under the race detector's 5-15x slowdown")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a speedup measurement, have %d", runtime.NumCPU())
	}
	d, factory := campaign10k(t)
	eng, err := factory.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	serial, err := (&core.Campaign{Design: d, Engine: eng}).Run()
	if err != nil {
		t.Fatal(err)
	}
	serialDur := time.Since(t0)
	t0 = time.Now()
	parallel, err := runner.Run(context.Background(), d, factory, runner.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	parallelDur := time.Since(t0)
	if parallel.Len() != serial.Len() {
		t.Fatalf("parallel %d records, serial %d", parallel.Len(), serial.Len())
	}
	speedup := float64(serialDur) / float64(parallelDur)
	t.Logf("10k trials: serial %v, 4 workers %v, speedup %.2fx", serialDur, parallelDur, speedup)
	if speedup < 0.8 {
		t.Fatalf("4 workers ran %.2fx the serial speed — sharding made the campaign slower (serial %v, parallel %v)",
			speedup, serialDur, parallelDur)
	}
}
