// Package opaquebench is a Go reproduction of Stanisic, Schnorr, Degomme,
// Heinrich, Legrand and Videau, "Characterizing the Performance of Modern
// Architectures Through Opaque Benchmarks: Pitfalls Learned the Hard Way"
// (IPDPS 2017 RepPar workshop, hal-01470399).
//
// The repository builds, from scratch and on the standard library only:
//
//   - the paper's contribution — a three-stage white-box benchmarking
//     methodology: experimental design (internal/doe), engine orchestration
//     and raw-record logging (internal/core) with environment capture
//     (internal/meta), and offline statistical analysis (internal/stats:
//     descriptive statistics, LOESS, segmented regression, outlier/mode/
//     effect diagnostics, resampling);
//   - every substrate the paper's experiments ran on, as deterministic
//     seedable simulators: the Figure 5 machines with set-associative
//     physically-indexed caches and page allocation (internal/memsim), DVFS
//     governors over virtual time (internal/cpusim), OS scheduling and
//     interference (internal/ossim), LogGP-family piecewise network models
//     with protocol regimes and planted quirks (internal/netsim), a
//     protocol-level message-passing simulator with ring and binomial-tree
//     collectives on top of them (internal/mpisim), and NUMA topologies
//     with first-touch/interleave page placement, capacity spill and page
//     migration (internal/numasim);
//   - the benchmark engines that drive the substrate through designed
//     campaigns: memory (internal/membench), network point-to-point and
//     collective (internal/netbench), CPU/DVFS/interference
//     (internal/cpubench), NUMA page placement across the first-touch
//     spill crossover (internal/numabench), and MPI collectives across
//     the allreduce tree/ring switchover (internal/collbench);
//   - an engine registry (internal/engine) giving the orchestration layers
//     one uniform handle per engine — strict spec decoding, factory and
//     design construction, metric direction, adaptive-refinement hooks —
//     plus a conformance battery (internal/engine/enginetest) that every
//     registered engine must pass, with negative tests proving each check
//     can fail;
//   - the criticized opaque benchmarks — PMB, MultiMAPS, NetGauge's online
//     detector, PLogP's adaptive probe (internal/opaque);
//   - a generator per paper figure/table (internal/figures) with ASCII
//     chart rendering (internal/plot), exercised by the benchmarks in
//     bench_test.go and the cmd/figures tool;
//   - a parallel campaign runner (internal/runner) that shards a design
//     across trial-indexed engine instances and streams records to CSV/JSONL
//     sinks in design order, record-for-record identical to a serial run;
//   - a declarative suite orchestrator (internal/suite) that runs whole
//     studies of campaigns across the registered engines from one JSON spec,
//     concurrently under a global worker budget, with a content-addressed
//     result cache whose replay is byte-identical to a cold run;
//   - an embedded result store (internal/store) behind that cache: one
//     append-only checksummed frame log plus an advisory sidecar index,
//     recovering to the longest valid frame prefix after any crash, with
//     pinned named runs, refcount garbage collection, atomic compaction,
//     metadata queries and adaptive provenance chains — the suite cache
//     runs directory- or store-backed with byte-identical replay either
//     way;
//   - a campaign service (internal/serve, cmd/served) that keeps the
//     orchestrator resident behind an HTTP/JSON API: spec-hash deduped
//     job submission, prioritized FIFO scheduling over one shared worker
//     budget and cache, NDJSON event streaming, graceful drain;
//   - an adaptive campaign planner (internal/adapt) that closes the loop
//     round by round: extra replicates where bootstrap CIs are widest,
//     grid refinement inside detected breakpoint brackets, under hard
//     budget and convergence stop rules, every round cached and
//     reproducible byte for byte;
//   - a differential campaign comparator (internal/compare) that pairs two
//     suite runs and gates each campaign statistically — bootstrap
//     confidence intervals on the median shift of the raw records, with
//     mode-count and breakpoint-drift diagnosis flags — emitting
//     deterministic verdict files and markdown reports;
//   - the downstream consumers the methodology feeds: human-readable
//     campaign reports (internal/report) and a PMaC-style performance
//     predictor with trace replay (internal/predict);
//   - shared deterministic-randomness utilities — seed derivation, split
//     streams, log-uniform sampling (internal/xrand).
//
// The cmd tools compose the stages through file artifacts: cmd/designgen
// (stage 1), cmd/membench, cmd/netbench and cmd/cpubench (stage 2, with
// -workers for sharded execution and -jsonl for a second streamed sink),
// cmd/suite (whole cached studies of stage-2 campaigns, with adaptive
// multi-round campaigns, a plan subcommand for their schedules, -baseline
// as a regression gate against a prior run, and -cache-store/-run plus the
// store subcommands for pinned run history in an embedded store),
// cmd/compare (the standalone differential gate over two suite caches, with
// -trend gating a store's run history on monotone median drift),
// cmd/analyze (stage 3), and cmd/figures (end-to-end reproductions).
//
// See README.md for a quickstart and package map, DESIGN.md for the system
// inventory and the per-experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record.
package opaquebench
