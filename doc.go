// Package opaquebench is a Go reproduction of Stanisic, Schnorr, Degomme,
// Heinrich, Legrand and Videau, "Characterizing the Performance of Modern
// Architectures Through Opaque Benchmarks: Pitfalls Learned the Hard Way"
// (IPDPS 2017 RepPar workshop, hal-01470399).
//
// The repository builds, from scratch and on the standard library only:
//
//   - the paper's contribution — a three-stage white-box benchmarking
//     methodology (internal/doe design + internal/core engine orchestration
//     and raw-record logging + internal/stats offline analysis);
//   - every substrate the paper's experiments ran on, as deterministic
//     seedable simulators: the Figure 5 machines with set-associative
//     physically-indexed caches and page allocation (internal/memsim), DVFS
//     governors over virtual time (internal/cpusim), OS scheduling and
//     interference (internal/ossim), and LogGP-family piecewise network
//     models with protocol regimes and planted quirks (internal/netsim);
//   - the criticized opaque benchmarks — PMB, MultiMAPS, NetGauge's online
//     detector, PLogP's adaptive probe (internal/opaque);
//   - a generator per paper figure/table (internal/figures), exercised by
//     the benchmarks in bench_test.go and the cmd/figures tool;
//   - a parallel campaign runner (internal/runner) that shards a design
//     across trial-indexed engine instances and streams records to CSV/JSONL
//     sinks in design order, record-for-record identical to a serial run.
//
// See DESIGN.md for the system inventory and the per-experiment index, and
// EXPERIMENTS.md for the paper-vs-measured record.
package opaquebench
