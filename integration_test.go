package opaquebench_test

// End-to-end integration tests: the three methodology stages chained through
// their file artifacts (design CSV -> engine -> results CSV -> offline
// analysis -> report), exactly the way the cmd tools compose, plus the
// downstream Figure 1 prediction flow.

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/membench"
	"opaquebench/internal/memsim"
	"opaquebench/internal/netbench"
	"opaquebench/internal/netsim"
	"opaquebench/internal/ossim"
	"opaquebench/internal/predict"
	"opaquebench/internal/report"
	"opaquebench/internal/stats"
)

func TestMemoryPipelineThroughCSVArtifacts(t *testing.T) {
	// Stage 1: design, serialized and re-parsed as the CSV artifact.
	factors := membench.Factors(
		[]int{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10},
		[]int{1}, []int{16}, []int{200}, []bool{true})
	design, err := doe.FullFactorial(factors, doe.Options{Replicates: 8, Seed: 42, Randomize: true})
	if err != nil {
		t.Fatal(err)
	}
	var designCSV bytes.Buffer
	if err := design.WriteCSV(&designCSV); err != nil {
		t.Fatal(err)
	}
	design2, err := doe.ReadCSV(&designCSV)
	if err != nil {
		t.Fatal(err)
	}

	// Stage 2: engine executes the parsed design.
	eng, err := membench.NewEngine(membench.Config{Machine: memsim.CoreI7(), Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&core.Campaign{Design: design2, Engine: eng}).Run()
	if err != nil {
		t.Fatal(err)
	}
	var resultsCSV bytes.Buffer
	if err := res.WriteCSV(&resultsCSV); err != nil {
		t.Fatal(err)
	}
	res2, err := core.ReadCSV(&resultsCSV)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Len() != design.Size() {
		t.Fatalf("records = %d, want %d", res2.Len(), design.Size())
	}

	// Stage 3: the reloaded raw data supports the full analysis.
	groups := core.SummarizeBy(res2, membench.FactorSize)
	if len(groups) != 5 {
		t.Fatalf("groups = %d", len(groups))
	}
	// The i7's L1 step must survive the round trip: 16 KB >> 64 KB.
	var in, out float64
	for _, g := range groups {
		switch int(g.X) {
		case 16 << 10:
			in = g.Summary.Median
		case 64 << 10:
			out = g.Summary.Median
		}
	}
	if in < out*1.5 {
		t.Fatalf("L1 step lost through CSV: in=%v out=%v", in, out)
	}
}

func TestNetworkPipelineToPredictionFlow(t *testing.T) {
	// Characterize the simulated cluster.
	profile := netsim.Taurus()
	design, err := netbench.Design(7, 200, 16, 2<<20, 3, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := netbench.NewEngine(netbench.Config{Profile: profile, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	netRes, err := (&core.Campaign{Design: design, Engine: eng}).Run()
	if err != nil {
		t.Fatal(err)
	}
	netModel, err := netbench.FitLogGP(netRes, profile.Breakpoints())
	if err != nil {
		t.Fatal(err)
	}

	// Characterize the simulated machine's memory.
	var sizes []int
	for s := 8 << 10; s <= 4<<20; s *= 2 {
		sizes = append(sizes, s)
	}
	memDesign, err := doe.FullFactorial(
		membench.Factors(sizes, []int{1}, []int{8}, []int{300}, []bool{true}),
		doe.Options{Replicates: 3, Seed: 8, Randomize: true})
	if err != nil {
		t.Fatal(err)
	}
	memEng, err := membench.NewEngine(membench.Config{Machine: memsim.Opteron(), Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	memRes, err := (&core.Campaign{Design: memDesign, Engine: memEng}).Run()
	if err != nil {
		t.Fatal(err)
	}
	memSig, err := predict.ExtractMemorySignature(memRes, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Convolve both signatures with a synthetic 2-rank application.
	blk := predict.Block{Accesses: 2_000_000, ElemBytes: 8, WorkingSetBytes: 32 << 10}
	trace := []predict.Event{
		{Kind: predict.EvCompute, Rank: 0, Block: blk},
		{Kind: predict.EvCompute, Rank: 1, Block: blk},
		{Kind: predict.EvSend, Rank: 0, Peer: 1, Size: 100_000},
		{Kind: predict.EvRecv, Rank: 1, Peer: 0, Size: 100_000},
		{Kind: predict.EvSend, Rank: 1, Peer: 0, Size: 100_000},
		{Kind: predict.EvRecv, Rank: 0, Peer: 1, Size: 100_000},
	}
	pred, err := predict.Replay(memSig, netModel, 2, trace)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Makespan <= 0 {
		t.Fatalf("prediction = %+v", pred)
	}
	// Sanity bound: the makespan must cover one compute block plus one
	// ground-truth round trip, and not be wildly larger.
	truthRTT := profile.RegimeFor(100_000).RTT(100_000)
	lower := memSig.Seconds(blk) + truthRTT*0.5
	upper := memSig.Seconds(blk)*3 + truthRTT*3
	if pred.Makespan < lower || pred.Makespan > upper {
		t.Fatalf("makespan %v outside sanity bounds [%v, %v]", pred.Makespan, lower, upper)
	}
}

func TestReportFlagsInjectedPitfall(t *testing.T) {
	// An RT-policy ARM campaign must come back from the automated report
	// with the right warnings — end to end, no manual analysis.
	design, err := doe.FullFactorial(
		membench.Factors([]int{8 << 10, 16 << 10, 24 << 10}, nil, nil, []int{200}, nil),
		doe.Options{Replicates: 30, Seed: 27, Randomize: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := membench.NewEngine(membench.Config{
		Machine: memsim.ARMSnowball(),
		Seed:    27,
		Sched:   ossim.Config{Policy: ossim.PolicyRT, DaemonPeriodSec: 8, DaemonDuty: 0.25},
		GapSec:  0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&core.Campaign{Design: design, Engine: eng}).Run()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := report.Build(res, report.Options{})
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Render()
	for _, want := range []string{"real-time scheduling policy", "bimodal values"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
}

func TestOpaqueVsWhiteBoxHeadline(t *testing.T) {
	// The repository's one-sentence claim, as a test: on identical data,
	// the opaque summary (mean, stddev) is consistent with a unimodal
	// distribution 3x tighter than reality, while the white-box analysis
	// recovers the true two-mode structure.
	design, err := doe.FullFactorial(
		membench.Factors([]int{8 << 10}, nil, nil, []int{200}, nil),
		doe.Options{Replicates: 90, Seed: 27, Randomize: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := membench.NewEngine(membench.Config{
		Machine: memsim.ARMSnowball(),
		Seed:    27,
		Sched:   ossim.Config{Policy: ossim.PolicyRT, DaemonPeriodSec: 8, DaemonDuty: 0.25},
		GapSec:  0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&core.Campaign{Design: design, Engine: eng}).Run()
	if err != nil {
		t.Fatal(err)
	}
	vals := res.Values()
	mean, sd := stats.Mean(vals), stats.Stddev(vals)

	d, err := core.DiagnoseModes(res)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Split.Bimodal(0.05, 3) {
		t.Skipf("seed produced no second mode in this window (low frac %v)", d.LowModeFraction)
	}
	// The mean sits between the modes and describes neither.
	if math.Abs(mean-d.Split.HighMean) < 2*sd/3 && math.Abs(mean-d.Split.LowMean) < 2*sd/3 {
		t.Fatal("degenerate mode split")
	}
	if d.Split.Ratio() < 3 {
		t.Fatalf("mode ratio %v", d.Split.Ratio())
	}
}

func TestScreeningDesignFindsDominantFactors(t *testing.T) {
	// A Plackett-Burman screening campaign over five two-level factors of
	// the Figure 13 diagram; the main-effects analysis must rank the
	// genuinely dominant factors (working-set size, unrolling) above a
	// placebo factor (nloops 200 vs 201).
	factors := []doe.Factor{
		doe.IntFactor(membench.FactorSize, 8<<10, 4<<20),
		doe.IntFactor(membench.FactorStride, 1, 2),
		doe.IntFactor(membench.FactorElem, 4, 8),
		doe.IntFactor(membench.FactorUnroll, 0, 1),
		doe.IntFactor(membench.FactorNLoops, 200, 201),
	}
	design, err := doe.PlackettBurman(factors, doe.Options{Replicates: 4, Seed: 3, Randomize: true})
	if err != nil {
		t.Fatal(err)
	}
	if design.Size() != 8*4 {
		t.Fatalf("runs = %d, want 32 (PB-8 x 4 replicates)", design.Size())
	}
	eng, err := membench.NewEngine(membench.Config{Machine: memsim.Opteron(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&core.Campaign{Design: design, Engine: eng}).Run()
	if err != nil {
		t.Fatal(err)
	}
	effects, err := core.MainEffects(res)
	if err != nil {
		t.Fatal(err)
	}
	rank := map[string]int{}
	eta := map[string]float64{}
	for i, e := range effects {
		rank[e.Factor] = i
		eta[e.Factor] = e.EtaSquared
	}
	if rank[membench.FactorSize] > rank[membench.FactorNLoops] {
		t.Fatalf("size (eta2 %.3f) should outrank the placebo nloops (eta2 %.3f)",
			eta[membench.FactorSize], eta[membench.FactorNLoops])
	}
	if eta[membench.FactorNLoops] > 0.05 {
		t.Fatalf("placebo factor eta2 = %v, want ~0", eta[membench.FactorNLoops])
	}
	if eta[membench.FactorSize] < 0.1 {
		t.Fatalf("size eta2 = %v, want substantial", eta[membench.FactorSize])
	}
}
