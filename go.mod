module opaquebench

go 1.24
