package numasim

import (
	"fmt"
	"sort"
	"strings"
)

// topologies holds the named machines specs refer to. Free memory is kept
// deliberately small relative to real sockets so campaigns cross the
// first-touch spill threshold at simulated working-set sizes that cost
// nothing to model.
var topologies = map[string]Topology{
	// dual is a two-socket machine in the mold of the paper's Xeon testbeds:
	// symmetric QPI link, numactl distance 21, 64 MiB of free memory per
	// node. First-touch placement from node 0 spills past 64 MiB — the
	// planted local/remote crossover adaptive runs must localize.
	"dual": {
		Name:          "dual",
		Nodes:         2,
		NodeFreeBytes: 64 << 20,
		PageBytes:     4096,
		Distance: [][]int{
			{10, 21},
			{21, 10},
		},
		LocalBandwidthBps: 12e9,
		MigrateCostSec:    3e-6,
		NoiseSigma:        0.01,
	},
	// quad is a four-socket ring: neighbors at distance 16, the opposite
	// corner at 22 (two hops), 32 MiB free per node.
	"quad": {
		Name:          "quad",
		Nodes:         4,
		NodeFreeBytes: 32 << 20,
		PageBytes:     4096,
		Distance: [][]int{
			{10, 16, 22, 16},
			{16, 10, 16, 22},
			{22, 16, 10, 16},
			{16, 22, 16, 10},
		},
		LocalBandwidthBps: 10e9,
		MigrateCostSec:    3e-6,
		NoiseSigma:        0.01,
	},
}

// TopologyByName returns a copy of a named topology.
func TopologyByName(name string) (Topology, error) {
	t, ok := topologies[name]
	if !ok {
		return Topology{}, fmt.Errorf("numasim: unknown topology %q (%s)", name, strings.Join(TopologyNames(), ", "))
	}
	return t, nil
}

// TopologyNames lists the named topologies, sorted.
func TopologyNames() []string {
	names := make([]string, 0, len(topologies))
	for n := range topologies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
