package numasim

import (
	"math"
	"testing"
)

func mustTopo(t *testing.T, name string) Topology {
	t.Helper()
	topo, err := TopologyByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestNamedTopologiesValidate(t *testing.T) {
	for _, name := range TopologyNames() {
		mustTopo(t, name)
	}
	if _, err := TopologyByName("octo"); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestPolicyByName(t *testing.T) {
	if p, err := PolicyByName("firsttouch"); err != nil || p != PolicyFirstTouch {
		t.Fatalf("firsttouch -> %v, %v", p, err)
	}
	if p, err := PolicyByName("interleave"); err != nil || p != PolicyInterleave {
		t.Fatalf("interleave -> %v, %v", p, err)
	}
	if _, err := PolicyByName("membind"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestValidateRejectsBadDistances(t *testing.T) {
	topo := mustTopo(t, "dual")
	topo.Distance = [][]int{{10, 21}, {21, 11}}
	if err := topo.Validate(); err == nil {
		t.Fatal("off-spec diagonal accepted")
	}
	topo = mustTopo(t, "dual")
	topo.Distance = [][]int{{10, 9}, {9, 10}}
	if err := topo.Validate(); err == nil {
		t.Fatal("remote distance below local accepted")
	}
}

func TestFirstTouchStaysLocalUntilSpill(t *testing.T) {
	topo := mustTopo(t, "dual")
	pl, err := topo.Place(PolicyFirstTouch, 0, topo.NodeFreeBytes/2)
	if err != nil {
		t.Fatal(err)
	}
	if pl.OnNode(0) != 1 {
		t.Fatalf("half-capacity buffer not fully local: %+v", pl)
	}
}

func TestFirstTouchSpillsNearestFirst(t *testing.T) {
	topo := mustTopo(t, "quad")
	// 1.5x one node's capacity from node 0: the overflow must land on a
	// distance-16 neighbor (node 1, the lowest-indexed nearest), not the
	// distance-22 opposite corner.
	size := topo.NodeFreeBytes + topo.NodeFreeBytes/2
	pl, err := topo.Place(PolicyFirstTouch, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Pages[0] != topo.NodePages() {
		t.Fatalf("home node not filled: %+v", pl)
	}
	if pl.Pages[1] == 0 || pl.Pages[2] != 0 || pl.Pages[3] != 0 {
		t.Fatalf("spill skipped the nearest neighbor: %+v", pl)
	}
}

func TestInterleaveSpreadsEvenly(t *testing.T) {
	topo := mustTopo(t, "quad")
	pl, err := topo.Place(PolicyInterleave, 2, 4096*4*1000+4096) // 4001 pages
	if err != nil {
		t.Fatal(err)
	}
	if pl.Total() != 4001 {
		t.Fatalf("total pages = %d", pl.Total())
	}
	// 4001 = 4*1000 + 1; the extra page belongs to the toucher's node.
	for j, c := range pl.Pages {
		want := 1000
		if j == 2 {
			want = 1001
		}
		if c != want {
			t.Fatalf("node %d holds %d pages, want %d (%+v)", j, c, want, pl)
		}
	}
}

func TestPlaceRejectsOversizedBuffer(t *testing.T) {
	topo := mustTopo(t, "dual")
	if _, err := topo.Place(PolicyFirstTouch, 0, 2*topo.NodeFreeBytes+topo.PageBytes); err == nil {
		t.Fatal("buffer exceeding machine capacity accepted")
	}
}

func TestStreamLocalMatchesBandwidth(t *testing.T) {
	topo := mustTopo(t, "dual")
	size := topo.NodeFreeBytes / 2
	pl, err := topo.Place(PolicyFirstTouch, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	res, err := topo.Stream(0, pl, size, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * float64(size) / topo.LocalBandwidthBps
	if math.Abs(res.Seconds-want) > 1e-12*want {
		t.Fatalf("local stream = %v s, want %v", res.Seconds, want)
	}
	if res.RemoteFrac != 0 || res.MigratedPages != 0 {
		t.Fatalf("local stream reported remote traffic: %+v", res)
	}
}

func TestStreamRemotePenaltyTracksDistance(t *testing.T) {
	topo := mustTopo(t, "dual")
	size := topo.NodeFreeBytes / 2
	pl, err := topo.Place(PolicyFirstTouch, 1, size) // touched remotely
	if err != nil {
		t.Fatal(err)
	}
	res, err := topo.Stream(0, pl, size, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	local := float64(size) / topo.LocalBandwidthBps
	want := local * float64(topo.Distance[0][1]) / 10
	if math.Abs(res.Seconds-want) > 1e-12*want {
		t.Fatalf("remote stream = %v s, want %v (%.1fx local)", res.Seconds, want, want/local)
	}
	if res.RemoteFrac != 1 {
		t.Fatalf("remote frac = %v, want 1", res.RemoteFrac)
	}
}

// TestSpillCrossoverDegradesBandwidth is the planted breakpoint itself:
// effective bandwidth (size/sec) is flat below the node's free capacity and
// strictly worse above it.
func TestSpillCrossoverDegradesBandwidth(t *testing.T) {
	topo := mustTopo(t, "dual")
	bw := func(size int) float64 {
		pl, err := topo.Place(PolicyFirstTouch, 0, size)
		if err != nil {
			t.Fatal(err)
		}
		res, err := topo.Stream(0, pl, size, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		return float64(size) / res.Seconds
	}
	below, above := bw(topo.NodeFreeBytes/4), bw(topo.NodeFreeBytes/2)
	if math.Abs(below-above) > 1e-6*below {
		t.Fatalf("bandwidth not flat below capacity: %v vs %v", below, above)
	}
	spilled := bw(topo.NodeFreeBytes * 3 / 2)
	if spilled >= below*0.95 {
		t.Fatalf("spilled bandwidth %v not clearly below local %v", spilled, below)
	}
}

func TestMigrationRecoversLocalBandwidth(t *testing.T) {
	topo := mustTopo(t, "dual")
	size := topo.NodeFreeBytes / 2
	pl, err := topo.Place(PolicyFirstTouch, 1, size) // all pages remote
	if err != nil {
		t.Fatal(err)
	}
	const loops = 50
	still, err := topo.Stream(0, pl, size, loops, false)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := topo.Stream(0, pl, size, loops, true)
	if err != nil {
		t.Fatal(err)
	}
	if moved.MigratedPages != pl.Total() {
		t.Fatalf("migrated %d of %d pages", moved.MigratedPages, pl.Total())
	}
	if moved.RemoteFrac != 0 {
		t.Fatalf("post-migration remote frac = %v", moved.RemoteFrac)
	}
	if moved.Seconds >= still.Seconds {
		t.Fatalf("migration did not pay off over %d loops: %v >= %v", loops, moved.Seconds, still.Seconds)
	}
	// Accounting: first loop remote + per-page cost + (loops-1) local loops.
	want := float64(size)*float64(topo.Distance[0][1])/10/topo.LocalBandwidthBps +
		float64(pl.Total())*topo.MigrateCostSec +
		float64(loops-1)*float64(size)/topo.LocalBandwidthBps
	if math.Abs(moved.Seconds-want) > 1e-9*want {
		t.Fatalf("migration accounting: %v, want %v", moved.Seconds, want)
	}
}

func TestMigrationRespectsCapacity(t *testing.T) {
	topo := mustTopo(t, "dual")
	// Buffer larger than one node: even after migration the executing node
	// cannot hold everything, so some traffic stays remote.
	size := topo.NodeFreeBytes * 3 / 2
	pl, err := topo.Place(PolicyFirstTouch, 1, size)
	if err != nil {
		t.Fatal(err)
	}
	res, err := topo.Stream(0, pl, size, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteFrac <= 0 {
		t.Fatalf("oversized buffer became fully local: %+v", res)
	}
	// The executing node already holds the spill overflow; migration can
	// only fill its remaining room.
	if want := topo.NodePages() - pl.Pages[0]; res.MigratedPages != want {
		t.Fatalf("migrated %d pages, want the remaining room %d", res.MigratedPages, want)
	}
}

func TestStreamRejectsBadInputs(t *testing.T) {
	topo := mustTopo(t, "dual")
	pl, err := topo.Place(PolicyFirstTouch, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Stream(5, pl, 4096, 1, false); err == nil {
		t.Fatal("bad exec node accepted")
	}
	if _, err := topo.Stream(0, pl, 4096, 0, false); err == nil {
		t.Fatal("zero loops accepted")
	}
	if _, err := topo.Stream(0, Placement{Pages: []int{0, 0}}, 4096, 1, false); err == nil {
		t.Fatal("empty placement accepted")
	}
}
