// Package numasim models the paper's NUMA/page-placement pitfall: on a
// multi-socket machine the physical node a page lands on is decided by the
// OS placement policy at first touch, not by the thread that later streams
// it. A benchmark whose buffers are initialized by the master thread (or
// that overflows its node's free memory) silently measures a mix of local
// and remote accesses — bandwidth numbers that look stable but
// characterize the placement, not the machine. The simulator makes the
// effect explicit and deterministic: a topology of nodes with numactl-style
// distances, first-touch and interleave placement with capacity spill, and
// optional page migration toward the executing node, so campaigns can
// sweep working-set size across the local/remote crossover and adaptive
// refinement can localize it.
package numasim

import "fmt"

// localDistance is the numactl convention: a node's distance to itself is
// 10, and remote distances scale access cost proportionally.
const localDistance = 10

// Policy is the OS page-placement policy in effect when a buffer is first
// touched.
type Policy string

const (
	// PolicyFirstTouch places each page on the toucher's node while free
	// memory lasts, then spills to the remaining nodes nearest-first —
	// Linux's default.
	PolicyFirstTouch Policy = "firsttouch"
	// PolicyInterleave round-robins pages across all nodes, trading peak
	// local bandwidth for predictability.
	PolicyInterleave Policy = "interleave"
)

// PolicyByName resolves the policy names shared by specs and CLIs.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case string(PolicyFirstTouch):
		return PolicyFirstTouch, nil
	case string(PolicyInterleave):
		return PolicyInterleave, nil
	}
	return "", fmt.Errorf("numasim: unknown placement policy %q (firsttouch, interleave)", name)
}

// Topology is one simulated multi-socket machine.
type Topology struct {
	// Name labels the topology in specs and metadata.
	Name string
	// Nodes is the NUMA node count.
	Nodes int
	// NodeFreeBytes is the memory available to the benchmark on each node
	// (capacity minus resident kernel/daemon pages) — the spill threshold
	// of first-touch placement and the planted local/remote crossover.
	NodeFreeBytes int
	// PageBytes is the placement granularity.
	PageBytes int
	// Distance is the numactl-style node distance matrix: Distance[i][j]
	// scales the cost of node i accessing memory on node j, with 10 on
	// the diagonal.
	Distance [][]int
	// LocalBandwidthBps is the streaming bandwidth to node-local memory;
	// the bandwidth between nodes i and j is LocalBandwidthBps scaled by
	// 10/Distance[i][j].
	LocalBandwidthBps float64
	// MigrateCostSec is the one-time cost of migrating one page.
	MigrateCostSec float64
	// NoiseSigma is the log-normal sigma of multiplicative measurement
	// noise engines apply per trial.
	NoiseSigma float64
}

// Validate checks the topology description.
func (t *Topology) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("numasim: unnamed topology")
	}
	if t.Nodes < 2 {
		return fmt.Errorf("numasim: %s: a NUMA topology needs >= 2 nodes, got %d", t.Name, t.Nodes)
	}
	if t.NodeFreeBytes <= 0 {
		return fmt.Errorf("numasim: %s: non-positive node free memory", t.Name)
	}
	if t.PageBytes <= 0 {
		return fmt.Errorf("numasim: %s: non-positive page size", t.Name)
	}
	if t.LocalBandwidthBps <= 0 {
		return fmt.Errorf("numasim: %s: non-positive local bandwidth", t.Name)
	}
	if len(t.Distance) != t.Nodes {
		return fmt.Errorf("numasim: %s: distance matrix has %d rows for %d nodes", t.Name, len(t.Distance), t.Nodes)
	}
	for i, row := range t.Distance {
		if len(row) != t.Nodes {
			return fmt.Errorf("numasim: %s: distance row %d has %d entries for %d nodes", t.Name, i, len(row), t.Nodes)
		}
		for j, d := range row {
			if i == j && d != localDistance {
				return fmt.Errorf("numasim: %s: local distance [%d][%d] = %d, want %d", t.Name, i, j, d, localDistance)
			}
			if i != j && d <= localDistance {
				return fmt.Errorf("numasim: %s: remote distance [%d][%d] = %d must exceed the local %d", t.Name, i, j, d, localDistance)
			}
		}
	}
	if t.MigrateCostSec < 0 || t.NoiseSigma < 0 {
		return fmt.Errorf("numasim: %s: negative migrate cost or noise sigma", t.Name)
	}
	return nil
}

// Bandwidth returns the streaming bandwidth (bytes/sec) of node `from`
// accessing memory resident on node `to`.
func (t *Topology) Bandwidth(from, to int) float64 {
	return t.LocalBandwidthBps * localDistance / float64(t.Distance[from][to])
}

// NodePages returns a node's free capacity in pages.
func (t *Topology) NodePages() int { return t.NodeFreeBytes / t.PageBytes }

// Placement is the per-node page count of one allocated buffer.
type Placement struct {
	// Pages[j] is the number of the buffer's pages resident on node j.
	Pages []int
}

// Total returns the placement's page count.
func (p Placement) Total() int {
	n := 0
	for _, c := range p.Pages {
		n += c
	}
	return n
}

// OnNode returns the fraction of pages resident on the given node.
func (p Placement) OnNode(node int) float64 {
	total := p.Total()
	if total == 0 {
		return 0
	}
	return float64(p.Pages[node]) / float64(total)
}

// spillOrder returns the nodes ordered nearest-first from `from`, excluding
// `from` itself, ties broken by node index (deterministic).
func (t *Topology) spillOrder(from int) []int {
	order := make([]int, 0, t.Nodes-1)
	for j := 0; j < t.Nodes; j++ {
		if j != from {
			order = append(order, j)
		}
	}
	for i := 1; i < len(order); i++ {
		for k := i; k > 0; k-- {
			a, b := order[k-1], order[k]
			if t.Distance[from][b] < t.Distance[from][a] {
				order[k-1], order[k] = b, a
			}
		}
	}
	return order
}

// Place materializes the page placement of a size-byte buffer first
// touched from initNode under the given policy. First-touch fills the
// toucher's node to capacity and spills nearest-first; interleave
// round-robins starting at the toucher's node, redistributing overflow
// from full nodes to those with room. An allocation exceeding the
// machine's total free memory is an error.
func (t *Topology) Place(policy Policy, initNode, size int) (Placement, error) {
	if initNode < 0 || initNode >= t.Nodes {
		return Placement{}, fmt.Errorf("numasim: %s: bad node %d", t.Name, initNode)
	}
	if size <= 0 {
		return Placement{}, fmt.Errorf("numasim: non-positive buffer size %d", size)
	}
	pages := (size + t.PageBytes - 1) / t.PageBytes
	cap := t.NodePages()
	if pages > cap*t.Nodes {
		return Placement{}, fmt.Errorf("numasim: %s: %d pages exceed the machine's %d free pages", t.Name, pages, cap*t.Nodes)
	}
	pl := Placement{Pages: make([]int, t.Nodes)}
	switch policy {
	case PolicyFirstTouch:
		take := pages
		if take > cap {
			take = cap
		}
		pl.Pages[initNode] = take
		rest := pages - take
		for _, j := range t.spillOrder(initNode) {
			if rest == 0 {
				break
			}
			take := rest
			if take > cap {
				take = cap
			}
			pl.Pages[j] = take
			rest -= take
		}
	case PolicyInterleave:
		each := pages / t.Nodes
		rem := pages % t.Nodes
		for j := 0; j < t.Nodes; j++ {
			pl.Pages[j] = each
			// The first `rem` nodes in round-robin order from the toucher
			// carry one extra page.
			if ((j-initNode)%t.Nodes+t.Nodes)%t.Nodes < rem {
				pl.Pages[j]++
			}
		}
		// Redistribute overflow from full nodes nearest-first.
		over := 0
		for j := 0; j < t.Nodes; j++ {
			if pl.Pages[j] > cap {
				over += pl.Pages[j] - cap
				pl.Pages[j] = cap
			}
		}
		for _, j := range t.spillOrder(initNode) {
			if over == 0 {
				break
			}
			room := cap - pl.Pages[j]
			if room > over {
				room = over
			}
			pl.Pages[j] += room
			over -= room
		}
	default:
		return Placement{}, fmt.Errorf("numasim: unknown placement policy %q", policy)
	}
	return pl, nil
}

// StreamResult is one simulated streaming measurement.
type StreamResult struct {
	// Seconds is the noiseless wall time of the whole measurement,
	// migration cost included.
	Seconds float64
	// RemoteFrac is the fraction of traffic served from remote nodes
	// after any migration settled.
	RemoteFrac float64
	// MigratedPages is the number of pages migration moved to the
	// executing node.
	MigratedPages int
}

// Stream models a kernel on execNode streaming a size-byte buffer with the
// given placement nloops times. With migrate set and more than one loop,
// the OS moves remote pages onto the executing node — farthest-first, as
// automatic balancing prioritizes the costliest pages — up to that node's
// free capacity, charging MigrateCostSec per page once; the remaining
// loops then run at the improved placement.
func (t *Topology) Stream(execNode int, pl Placement, size, nloops int, migrate bool) (StreamResult, error) {
	if execNode < 0 || execNode >= t.Nodes {
		return StreamResult{}, fmt.Errorf("numasim: %s: bad node %d", t.Name, execNode)
	}
	if nloops < 1 {
		return StreamResult{}, fmt.Errorf("numasim: non-positive nloops %d", nloops)
	}
	total := pl.Total()
	if total == 0 {
		return StreamResult{}, fmt.Errorf("numasim: empty placement")
	}
	loopSec := func(p Placement) float64 {
		var sec float64
		for j, pages := range p.Pages {
			if pages == 0 {
				continue
			}
			bytes := float64(size) * float64(pages) / float64(total)
			sec += bytes / t.Bandwidth(execNode, j)
		}
		return sec
	}
	res := StreamResult{}
	if migrate && nloops > 1 {
		res.Seconds += loopSec(pl) // first traversal at the original placement
		improved := Placement{Pages: append([]int(nil), pl.Pages...)}
		room := t.NodePages() - improved.Pages[execNode]
		for _, j := range revInts(t.spillOrder(execNode)) {
			if room <= 0 {
				break
			}
			moved := improved.Pages[j]
			if moved > room {
				moved = room
			}
			improved.Pages[j] -= moved
			improved.Pages[execNode] += moved
			room -= moved
			res.MigratedPages += moved
		}
		res.Seconds += float64(res.MigratedPages) * t.MigrateCostSec
		res.Seconds += float64(nloops-1) * loopSec(improved)
		res.RemoteFrac = 1 - improved.OnNode(execNode)
	} else {
		res.Seconds = float64(nloops) * loopSec(pl)
		res.RemoteFrac = 1 - pl.OnNode(execNode)
	}
	return res, nil
}

// revInts returns a reversed copy of an int slice (farthest-first spill
// order for migration).
func revInts(in []int) []int {
	out := make([]int, len(in))
	for i, v := range in {
		out[len(in)-1-i] = v
	}
	return out
}
