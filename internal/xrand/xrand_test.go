package xrand

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"strconv"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d collisions between distinct seeds", same)
	}
}

func TestDeriveStable(t *testing.T) {
	if Derive(7, "noise") != Derive(7, "noise") {
		t.Fatal("Derive not deterministic")
	}
	if Derive(7, "noise") == Derive(7, "pages") {
		t.Fatal("distinct labels collided")
	}
	if Derive(7, "noise") == Derive(8, "noise") {
		t.Fatal("distinct seeds collided")
	}
}

func TestNewDerivedIndependentStreams(t *testing.T) {
	// Drawing extra values from one derived stream must not affect another.
	a1 := NewDerived(3, "a")
	b1 := NewDerived(3, "b")
	_ = a1.Uint64()
	firstB := b1.Uint64()

	b2 := NewDerived(3, "b")
	if got := b2.Uint64(); got != firstB {
		t.Fatal("stream b perturbed by stream a consumption")
	}
}

func TestLogUniformRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := LogUniform(r, 10, 10000)
		if v < 10 || v > 10000 {
			t.Fatalf("out of range: %v", v)
		}
	}
}

func TestLogUniformCoversDecades(t *testing.T) {
	// Equation (1): each decade should receive a similar share of draws.
	r := New(6)
	counts := [3]int{} // [10,100), [100,1000), [1000,10000]
	n := 30000
	for i := 0; i < n; i++ {
		v := LogUniform(r, 10, 10000)
		switch {
		case v < 100:
			counts[0]++
		case v < 1000:
			counts[1]++
		default:
			counts[2]++
		}
	}
	for _, c := range counts {
		frac := float64(c) / float64(n)
		if math.Abs(frac-1.0/3.0) > 0.02 {
			t.Fatalf("decade share %v, want ~1/3 (counts=%v)", frac, counts)
		}
	}
}

func TestLogUniformIntClamps(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		v := LogUniformInt(r, 1, 64)
		if v < 1 || v > 64 {
			t.Fatalf("out of range: %d", v)
		}
	}
	if got := LogUniformInt(r, 9, 9); got != 9 {
		t.Fatalf("degenerate range: %d", got)
	}
	if got := LogUniformInt(r, 10, 5); got != 10 {
		t.Fatalf("inverted range: %d", got)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(8)
	n := 20000
	var below int
	for i := 0; i < n; i++ {
		if LogNormal(r, 0, 0.5) < 1 {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("median fraction = %v, want ~0.5", frac)
	}
}

func TestJitterZeroSigma(t *testing.T) {
	r := New(9)
	if got := Jitter(r, 42, 0); got != 42 {
		t.Fatalf("Jitter sigma=0 changed value: %v", got)
	}
}

func TestJitterPositive(t *testing.T) {
	r := New(10)
	for i := 0; i < 100; i++ {
		if v := Jitter(r, 5, 0.3); v <= 0 {
			t.Fatalf("jittered value non-positive: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	p := Perm(r, 50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(12)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	Shuffle(r, len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(13)
	for i := 0; i < 100; i++ {
		if Bernoulli(r, 0) {
			t.Fatal("p=0 returned true")
		}
		if !Bernoulli(r, 1) {
			t.Fatal("p=1 returned false")
		}
	}
}

// Property: LogUniform stays within [a, b] for any valid bounds.
func TestLogUniformBoundsProperty(t *testing.T) {
	r := New(14)
	f := func(rawA, rawB float64) bool {
		a := 1 + math.Abs(math.Mod(rawA, 1000))
		b := a + math.Abs(math.Mod(rawB, 100000))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		v := LogUniform(r, a, b)
		return v >= a*(1-1e-9) && v <= b*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDeriveIndexedMatchesDerive pins the hot-path equivalence the indexed
// engines rely on: DeriveIndexed(seed, label, idx) must equal
// Derive(seed, label+strconv.Itoa(idx)) for every idx, including negatives.
func TestDeriveIndexedMatchesDerive(t *testing.T) {
	idxs := []int{0, 1, 9, 10, 42, 999, 10000, 1<<31 - 1, -1, -10000, math.MinInt64}
	for _, seed := range []uint64{0, 1, 7, math.MaxUint64} {
		for _, label := range []string{"", "membench/noise@", "netsim/indexed/tcp@"} {
			for _, idx := range idxs {
				want := Derive(seed, label+strconv.Itoa(idx))
				if got := DeriveIndexed(seed, label, idx); got != want {
					t.Errorf("DeriveIndexed(%d, %q, %d) = %d, want %d", seed, label, idx, got, want)
				}
			}
		}
	}
}

// TestDeriveMatchesFNV64a pins the hand-unrolled hash to the standard
// library's FNV-64a over the same bytes, so the unrolling can never silently
// change the derivation (which would change every campaign's records).
func TestDeriveMatchesFNV64a(t *testing.T) {
	for _, seed := range []uint64{0, 42, math.MaxUint64} {
		for _, label := range []string{"", "noise", "membench/pages"} {
			h := fnv.New64a()
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], seed)
			h.Write(b[:])
			h.Write([]byte(label))
			if got, want := Derive(seed, label), h.Sum64(); got != want {
				t.Errorf("Derive(%d, %q) = %d, want FNV-64a %d", seed, label, got, want)
			}
		}
	}
}

// TestReseedMatchesNew pins Reseed's contract: rewinding a reused PCG (and
// its enclosing rand.Rand) must reproduce the exact stream of a freshly
// constructed New(seed) — across value kinds, since NormFloat64 draws
// differently than Uint64.
func TestReseedMatchesNew(t *testing.T) {
	pcg := rand.NewPCG(0, 0)
	reused := rand.New(pcg)
	for _, seed := range []uint64{0, 1, 42, math.MaxUint64} {
		// Perturb the reused generator so Reseed has real state to rewind.
		_ = reused.Uint64()
		Reseed(pcg, seed)
		fresh := New(seed)
		for i := 0; i < 50; i++ {
			if g, w := reused.Uint64(), fresh.Uint64(); g != w {
				t.Fatalf("seed %d draw %d: Uint64 %d != %d", seed, i, g, w)
			}
		}
		Reseed(pcg, seed)
		fresh = New(seed)
		for i := 0; i < 50; i++ {
			if g, w := reused.NormFloat64(), fresh.NormFloat64(); g != w {
				t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, g, w)
			}
		}
	}
}

// TestDeriveIndexedAllocationFree guards the reason DeriveIndexed exists.
func TestDeriveIndexedAllocationFree(t *testing.T) {
	var sink uint64
	allocs := testing.AllocsPerRun(200, func() {
		sink += DeriveIndexed(1, "membench/noise@", 12345)
	})
	if allocs != 0 {
		t.Errorf("DeriveIndexed: %v allocs, want 0", allocs)
	}
	_ = sink
}
