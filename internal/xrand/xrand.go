// Package xrand provides deterministic, splittable random number utilities
// used throughout the benchmark simulators and the experimental-design layer.
//
// Reproducibility is a first-class requirement of the paper's methodology:
// every campaign is driven by an explicit seed, and independent subsystems
// (noise models, page allocators, design shufflers) derive their own streams
// from that seed so that adding a consumer never perturbs the draws seen by
// another consumer.
package xrand

import (
	"math"
	"math/rand/v2"
	"strconv"
)

// pcgStreamXor turns one 64-bit seed into the PCG's second state word; the
// golden-ratio constant keeps the two words decorrelated.
const pcgStreamXor = 0x9e3779b97f4a7c15

// New returns a deterministic generator for the given seed.
func New(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^pcgStreamXor))
}

// Reseed rewinds an existing PCG source to the exact state New(seed) would
// construct it with, so a hot path can reuse one generator (and its
// enclosing rand.Rand, which holds no stream state of its own) across
// trials instead of allocating a fresh pair per trial.
func Reseed(p *rand.PCG, seed uint64) {
	p.Seed(seed, seed^pcgStreamXor)
}

// FNV-64a, unrolled by hand so derivations stay allocation-free on the
// trial hot path (hash/fnv's Hash64 escapes to the heap).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvSeed(seed uint64) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(seed>>(8*i)))) * fnvPrime64
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// Derive deterministically derives a child seed from a parent seed and a
// textual label. Distinct labels yield independent streams, so subsystems can
// be added or removed without shifting each other's random sequences.
func Derive(seed uint64, label string) uint64 {
	return fnvString(fnvSeed(seed), label)
}

// DeriveIndexed is Derive(seed, label+strconv.Itoa(idx)) without building
// the concatenated string — the per-trial seed derivation of the indexed
// engines, which would otherwise allocate one label per trial.
func DeriveIndexed(seed uint64, label string, idx int) uint64 {
	h := fnvString(fnvSeed(seed), label)
	var buf [20]byte
	for _, c := range strconv.AppendInt(buf[:0], int64(idx), 10) {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// NewDerived is shorthand for New(Derive(seed, label)).
func NewDerived(seed uint64, label string) *rand.Rand {
	return New(Derive(seed, label))
}

// LogNormal draws from a log-normal distribution with the location mu and
// scale sigma of the underlying normal.
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}

// LogUniform draws 10^X with X ~ Uniform(log10(a), log10(b)), the message-size
// distribution of the paper's Equation (1). It requires 0 < a <= b.
func LogUniform(r *rand.Rand, a, b float64) float64 {
	la, lb := math.Log10(a), math.Log10(b)
	x := la + r.Float64()*(lb-la)
	return math.Pow(10, x)
}

// LogUniformInt draws an integer size from LogUniform(a, b), rounding to the
// nearest integer and clamping to [a, b].
func LogUniformInt(r *rand.Rand, a, b int) int {
	if a >= b {
		return a
	}
	v := int(math.Round(LogUniform(r, float64(a), float64(b))))
	if v < a {
		v = a
	}
	if v > b {
		v = b
	}
	return v
}

// Shuffle permutes the n elements addressed by swap using the generator r.
func Shuffle(r *rand.Rand, n int, swap func(i, j int)) {
	r.Shuffle(n, swap)
}

// Perm returns a random permutation of [0, n).
func Perm(r *rand.Rand, n int) []int {
	return r.Perm(n)
}

// Jitter returns v multiplied by a log-normal factor with median 1 and the
// given coefficient-of-variation-like sigma. sigma = 0 returns v unchanged.
func Jitter(r *rand.Rand, v, sigma float64) float64 {
	if sigma == 0 {
		return v
	}
	return v * LogNormal(r, 0, sigma)
}

// Bernoulli reports true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	return r.Float64() < p
}
