// Package xrand provides deterministic, splittable random number utilities
// used throughout the benchmark simulators and the experimental-design layer.
//
// Reproducibility is a first-class requirement of the paper's methodology:
// every campaign is driven by an explicit seed, and independent subsystems
// (noise models, page allocators, design shufflers) derive their own streams
// from that seed so that adding a consumer never perturbs the draws seen by
// another consumer.
package xrand

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// New returns a deterministic generator for the given seed.
func New(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Derive deterministically derives a child seed from a parent seed and a
// textual label. Distinct labels yield independent streams, so subsystems can
// be added or removed without shifting each other's random sequences.
func Derive(seed uint64, label string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(label))
	return h.Sum64()
}

// NewDerived is shorthand for New(Derive(seed, label)).
func NewDerived(seed uint64, label string) *rand.Rand {
	return New(Derive(seed, label))
}

// LogNormal draws from a log-normal distribution with the location mu and
// scale sigma of the underlying normal.
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}

// LogUniform draws 10^X with X ~ Uniform(log10(a), log10(b)), the message-size
// distribution of the paper's Equation (1). It requires 0 < a <= b.
func LogUniform(r *rand.Rand, a, b float64) float64 {
	la, lb := math.Log10(a), math.Log10(b)
	x := la + r.Float64()*(lb-la)
	return math.Pow(10, x)
}

// LogUniformInt draws an integer size from LogUniform(a, b), rounding to the
// nearest integer and clamping to [a, b].
func LogUniformInt(r *rand.Rand, a, b int) int {
	if a >= b {
		return a
	}
	v := int(math.Round(LogUniform(r, float64(a), float64(b))))
	if v < a {
		v = a
	}
	if v > b {
		v = b
	}
	return v
}

// Shuffle permutes the n elements addressed by swap using the generator r.
func Shuffle(r *rand.Rand, n int, swap func(i, j int)) {
	r.Shuffle(n, swap)
}

// Perm returns a random permutation of [0, n).
func Perm(r *rand.Rand, n int) []int {
	return r.Perm(n)
}

// Jitter returns v multiplied by a log-normal factor with median 1 and the
// given coefficient-of-variation-like sigma. sigma = 0 returns v unchanged.
func Jitter(r *rand.Rand, v, sigma float64) float64 {
	if sigma == 0 {
		return v
	}
	return v * LogNormal(r, 0, sigma)
}

// Bernoulli reports true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	return r.Float64() < p
}
