package netbench

import (
	"testing"

	"opaquebench/internal/doe"
	"opaquebench/internal/netsim"
)

// TestIndexedExecuteIgnoresHistory replays one trial around unrelated
// traffic and across engine instances; indexed records must not move.
func TestIndexedExecuteIgnoresHistory(t *testing.T) {
	cfg := Config{Profile: netsim.Taurus(), Seed: 3, Indexed: true}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := doe.Trial{Seq: 42, Point: doe.Point{
		FactorSize: doe.Level("8192"), FactorOp: doe.Level("send")}}
	fresh, err := eng.Execute(probe)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		noiseTrial := doe.Trial{Seq: 1000 + i, Point: doe.Point{
			FactorSize: doe.Level("65536"), FactorOp: doe.Level("pingpong")}}
		if _, err := eng.Execute(noiseTrial); err != nil {
			t.Fatal(err)
		}
	}
	again, err := eng.Execute(probe)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Value != again.Value || fresh.At != again.At {
		t.Fatalf("indexed record depends on history: %+v vs %+v", fresh, again)
	}
	eng2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	other, err := eng2.Execute(probe)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Value != other.Value {
		t.Fatalf("indexed record differs across engines: %v vs %v", fresh.Value, other.Value)
	}
}

// TestIndexedPerturbationFollowsVirtualTime plants a perturbation window
// and checks indexed trials are flagged exactly when their slot falls
// inside it — the ground-truth annotation the offline analysis relies on.
func TestIndexedPerturbationFollowsVirtualTime(t *testing.T) {
	window := netsim.Window{Start: 0.01, End: 0.02}
	cfg := Config{
		Profile:   netsim.MyrinetGM(),
		Seed:      9,
		Indexed:   true,
		Perturber: netsim.NewPerturber(4, window),
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slot := 250e-6 // netsim default SlotSec
	flagged := 0
	for seq := 0; seq < 120; seq++ {
		tr := doe.Trial{Seq: seq, Point: doe.Point{
			FactorSize: doe.Level("4096"), FactorOp: doe.Level("pingpong")}}
		rec, err := eng.Execute(tr)
		if err != nil {
			t.Fatal(err)
		}
		at := float64(seq) * slot
		inWindow := at >= window.Start && at < window.End
		if got := rec.Extra["perturbed"] == "true"; got != inWindow {
			t.Fatalf("seq %d (at %v): perturbed=%v, want %v", seq, at, got, inWindow)
		}
		if inWindow {
			flagged++
		}
	}
	if flagged == 0 {
		t.Fatal("no trial landed in the perturbation window; test is vacuous")
	}
}

func TestNetbenchFactoryForcesIndexed(t *testing.T) {
	eng, err := Factory(Config{Profile: netsim.Taurus(), Seed: 1}).NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if eng.Environment().Get("mode") != "indexed" {
		t.Fatal("factory engine not indexed")
	}
}
