package netbench

import (
	"fmt"
	"math/rand/v2"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/meta"
	"opaquebench/internal/mpisim"
	"opaquebench/internal/netsim"
	"opaquebench/internal/xrand"
)

// Collective operation factor levels. PMB — the suite of Section II.B —
// "provides a framework to measure a subset of MPI operations"; the
// white-box engine covers the same ground with randomized sizes and raw
// logging, executing each collective on the protocol-level mpisim.Group.
const (
	OpBcast     = "bcast"
	OpAllreduce = "allreduce"
	OpBarrier   = "barrier"
)

// CollectiveConfig describes a collective campaign's fixed environment.
type CollectiveConfig struct {
	// Profile is the simulated network. Required.
	Profile *netsim.Profile
	// Ranks is the communicator size (default 8).
	Ranks int
	// Seed drives the noise stream.
	Seed uint64
	// SkewSec is the per-measurement random start skew across ranks
	// (real collectives never start synchronized). Default 2 us.
	SkewSec float64
}

// CollectiveEngine implements core.Engine for collective campaigns. Each
// measurement runs on a fresh communicator (warm groups would entangle
// consecutive measurements through their rank clocks).
type CollectiveEngine struct {
	cfg   CollectiveConfig
	noise *rand.Rand
	seq   uint64
}

// NewCollectiveEngine builds the engine.
func NewCollectiveEngine(cfg CollectiveConfig) (*CollectiveEngine, error) {
	if cfg.Profile == nil {
		return nil, fmt.Errorf("netbench: collective config needs a profile")
	}
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if cfg.Ranks == 0 {
		cfg.Ranks = 8
	}
	if cfg.Ranks < 2 {
		return nil, fmt.Errorf("netbench: collectives need >= 2 ranks, got %d", cfg.Ranks)
	}
	if cfg.SkewSec <= 0 {
		cfg.SkewSec = 2e-6
	}
	return &CollectiveEngine{
		cfg:   cfg,
		noise: xrand.NewDerived(cfg.Seed, "netbench/collective"),
	}, nil
}

// Execute implements core.Engine: one timed collective.
func (e *CollectiveEngine) Execute(t doe.Trial) (core.RawRecord, error) {
	size, err := t.Point.Int(FactorSize)
	if err != nil {
		return core.RawRecord{}, err
	}
	op := t.Point.Get(FactorOp)
	g, err := mpisim.NewGroup(e.cfg.Profile, e.cfg.Ranks, xrand.Derive(e.cfg.Seed, fmt.Sprintf("grp/%d", e.seq)))
	if err != nil {
		return core.RawRecord{}, err
	}
	e.seq++
	g.Jitter(e.cfg.SkewSec)

	var dur float64
	switch op {
	case OpBcast:
		dur, err = g.Bcast(0, size)
	case OpAllreduce:
		dur, err = g.RingAllreduce(size)
	case OpBarrier:
		dur, err = g.Barrier()
	default:
		return core.RawRecord{}, fmt.Errorf("netbench: unknown collective %q", op)
	}
	if err != nil {
		return core.RawRecord{}, err
	}
	// The regime noise applies once to the whole collective: OS jitter and
	// stack variability scale with the end-to-end duration.
	dur = e.cfg.Profile.RegimeFor(size).RTTNoise.Apply(e.noise, dur)

	rec := core.RawRecord{Point: t.Point, Value: dur, Seconds: dur}
	rec.Annotate("ranks", fmt.Sprintf("%d", e.cfg.Ranks))
	return rec, nil
}

// Environment implements core.Engine.
func (e *CollectiveEngine) Environment() *meta.Environment {
	env := meta.New()
	env.Set("network", e.cfg.Profile.Name)
	env.Setf("ranks", "%d", e.cfg.Ranks)
	env.Setf("seed", "%d", e.cfg.Seed)
	env.Set("engine", "collective")
	return env
}

// CollectiveDesign builds a randomized collective campaign: log-uniform
// sizes crossed with the requested operations.
func CollectiveDesign(seed uint64, nSizes, minSize, maxSize, reps int, ops []string, randomize bool) (*doe.Design, error) {
	if len(ops) == 0 {
		ops = []string{OpBcast, OpAllreduce}
	}
	for _, op := range ops {
		switch op {
		case OpBcast, OpAllreduce, OpBarrier:
		default:
			return nil, fmt.Errorf("netbench: unknown collective %q", op)
		}
	}
	sizes := doe.RandomSizes(seed, nSizes, minSize, maxSize)
	factors := []doe.Factor{
		doe.SizeFactor(FactorSize, sizes),
		doe.NewFactor(FactorOp, ops...),
	}
	return doe.FullFactorial(factors, doe.Options{Replicates: reps, Seed: seed, Randomize: randomize})
}
