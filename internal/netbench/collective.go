package netbench

import (
	"fmt"
	"math/rand/v2"
	"strconv"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/meta"
	"opaquebench/internal/mpisim"
	"opaquebench/internal/netsim"
	"opaquebench/internal/xrand"
)

// Collective operation factor levels. PMB — the suite of Section II.B —
// "provides a framework to measure a subset of MPI operations"; the
// white-box engine covers the same ground with randomized sizes and raw
// logging, executing each collective on the protocol-level mpisim.Group.
const (
	OpBcast     = "bcast"
	OpAllreduce = "allreduce"
	OpBarrier   = "barrier"
)

// CollectiveConfig describes a collective campaign's fixed environment.
type CollectiveConfig struct {
	// Profile is the simulated network. Required.
	Profile *netsim.Profile
	// Ranks is the communicator size (default 8).
	Ranks int
	// Seed drives the noise stream.
	Seed uint64
	// SkewSec is the per-measurement random start skew across ranks
	// (real collectives never start synchronized). Default 2 us.
	SkewSec float64
	// AllreduceSwitchBytes is the algorithm switchover for allreduce:
	// binomial tree below it, ring at and above (mpisim.Allreduce). 0
	// disables the tree — every allreduce runs the ring.
	AllreduceSwitchBytes int
}

// CollectiveEngine implements core.Engine for collective campaigns. Each
// measurement runs on a fresh communicator (warm groups would entangle
// consecutive measurements through their rank clocks), and every stochastic
// input — the group's skew stream and the regime noise draw — derives from
// (cfg.Seed, Trial.Seq) alone, so a trial's record is independent of
// execution history: designs shard across runner workers and replay in any
// order byte-identically to a serial run.
type CollectiveEngine struct {
	cfg CollectiveConfig
	// noisePCG/noise are the engine-held generator reseeded per trial to
	// the exact state a fresh per-trial stream would start in, so the hot
	// path derives indexed noise without allocating.
	noisePCG *rand.PCG
	noise    *rand.Rand
	// ranksStr/extraRanks are the invariant annotation values, shared
	// between records; consumers treat Extra as read-only.
	ranksStr   string
	extraRanks map[string]string
}

// NewCollectiveEngine builds the engine.
func NewCollectiveEngine(cfg CollectiveConfig) (*CollectiveEngine, error) {
	if cfg.Profile == nil {
		return nil, fmt.Errorf("netbench: collective config needs a profile")
	}
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if cfg.Ranks == 0 {
		cfg.Ranks = 8
	}
	if cfg.Ranks < 2 {
		return nil, fmt.Errorf("netbench: collectives need >= 2 ranks, got %d", cfg.Ranks)
	}
	if cfg.SkewSec <= 0 {
		cfg.SkewSec = 2e-6
	}
	if cfg.AllreduceSwitchBytes < 0 {
		return nil, fmt.Errorf("netbench: negative allreduce switch %d", cfg.AllreduceSwitchBytes)
	}
	pcg := rand.NewPCG(0, 0)
	ranksStr := strconv.Itoa(cfg.Ranks)
	return &CollectiveEngine{
		cfg:        cfg,
		noisePCG:   pcg,
		noise:      rand.New(pcg),
		ranksStr:   ranksStr,
		extraRanks: map[string]string{"ranks": ranksStr},
	}, nil
}

// Execute implements core.Engine: one timed collective, trial-indexed —
// the communicator seed and the regime-noise stream are pure functions of
// (cfg.Seed, t.Seq), never of a mutating engine counter.
func (e *CollectiveEngine) Execute(t doe.Trial) (core.RawRecord, error) {
	size, err := t.Point.Int(FactorSize)
	if err != nil {
		return core.RawRecord{}, err
	}
	op := t.Point.Get(FactorOp)
	g, err := mpisim.NewGroup(e.cfg.Profile, e.cfg.Ranks,
		xrand.DeriveIndexed(e.cfg.Seed, "netbench/collective/grp@", t.Seq))
	if err != nil {
		return core.RawRecord{}, err
	}
	g.Jitter(e.cfg.SkewSec)

	// An allreduce below the rank count cannot split into non-empty ring
	// chunks; mpisim refuses to invent bytes, so the engine rounds the
	// payload up and records the effective size it actually measured.
	effSize := size
	if op == OpAllreduce && effSize < e.cfg.Ranks {
		effSize = e.cfg.Ranks
	}

	var dur float64
	switch op {
	case OpBcast:
		dur, err = g.Bcast(0, size)
	case OpAllreduce:
		dur, err = g.Allreduce(effSize, e.cfg.AllreduceSwitchBytes)
	case OpBarrier:
		dur, err = g.Barrier()
	default:
		return core.RawRecord{}, fmt.Errorf("netbench: unknown collective %q", op)
	}
	if err != nil {
		return core.RawRecord{}, err
	}
	// The regime noise applies once to the whole collective: OS jitter and
	// stack variability scale with the end-to-end duration.
	xrand.Reseed(e.noisePCG, xrand.DeriveIndexed(e.cfg.Seed, "netbench/collective/noise@", t.Seq))
	dur = e.cfg.Profile.RegimeFor(size).RTTNoise.Apply(e.noise, dur)

	rec := core.RawRecord{Point: t.Point, Value: dur, Seconds: dur}
	if effSize != size {
		rec.Annotate("ranks", e.ranksStr)
		rec.Annotate("allreduce_effective_size", strconv.Itoa(effSize))
	} else {
		rec.Extra = e.extraRanks
	}
	return rec, nil
}

// Environment implements core.Engine.
func (e *CollectiveEngine) Environment() *meta.Environment {
	env := meta.New()
	env.Set("network", e.cfg.Profile.Name)
	env.Setf("ranks", "%d", e.cfg.Ranks)
	env.Setf("seed", "%d", e.cfg.Seed)
	env.Set("engine", "collective")
	if e.cfg.AllreduceSwitchBytes > 0 {
		env.Setf("allreduce_switch_bytes", "%d", e.cfg.AllreduceSwitchBytes)
	}
	return env
}

// CollectiveFactory returns a core.EngineFactory producing independent
// collective engines for the configuration, one per runner worker — safe
// because the engine is trial-indexed by construction.
func CollectiveFactory(cfg CollectiveConfig) core.EngineFactory {
	return core.EngineFactoryFunc(func() (core.Engine, error) {
		return NewCollectiveEngine(cfg)
	})
}

// CollectiveDesign builds a randomized collective campaign: log-uniform
// sizes crossed with the requested operations.
func CollectiveDesign(seed uint64, nSizes, minSize, maxSize, reps int, ops []string, randomize bool) (*doe.Design, error) {
	if len(ops) == 0 {
		ops = []string{OpBcast, OpAllreduce}
	}
	for _, op := range ops {
		switch op {
		case OpBcast, OpAllreduce, OpBarrier:
		default:
			return nil, fmt.Errorf("netbench: unknown collective %q", op)
		}
	}
	sizes := doe.RandomSizes(seed, nSizes, minSize, maxSize)
	factors := []doe.Factor{
		doe.SizeFactor(FactorSize, sizes),
		doe.NewFactor(FactorOp, ops...),
	}
	return doe.FullFactorial(factors, doe.Options{Replicates: reps, Seed: seed, Randomize: randomize})
}
