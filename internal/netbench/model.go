package netbench

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"opaquebench/internal/core"
	"opaquebench/internal/netsim"
	"opaquebench/internal/stats"
)

// RegimeFit holds the LogGP-style parameters recovered for one size range.
type RegimeFit struct {
	// Lo and Hi bound the regime in bytes.
	Lo, Hi float64
	// SendBase/SendPerByte are the fitted software send overhead o_s(s).
	SendBase, SendPerByte float64
	// RecvBase/RecvPerByte are the fitted software receive overhead o_r(s).
	RecvBase, RecvPerByte float64
	// Latency is the recovered one-way latency L.
	Latency float64
	// GapPerByte is the recovered per-byte gap G.
	GapPerByte float64
	// BandwidthMBps is 1/G in MB/s (0 when G degenerates).
	BandwidthMBps float64
}

// LogGPModel is a piecewise LogGP instantiation: the deliverable a
// simulation framework (Section II.A) consumes.
type LogGPModel struct {
	// Breaks are the interior regime boundaries in bytes.
	Breaks []float64
	// Regimes are the per-range parameters.
	Regimes []RegimeFit
}

// RegimeFor returns the fitted regime governing a message size (the last
// regime for sizes beyond the campaign's range).
func (m LogGPModel) RegimeFor(size float64) RegimeFit {
	for i, r := range m.Regimes {
		if size < r.Hi || i == len(m.Regimes)-1 {
			return r
		}
	}
	return m.Regimes[len(m.Regimes)-1]
}

// SendOverhead evaluates the fitted o_s(s).
func (r RegimeFit) SendOverhead(size float64) float64 {
	return r.SendBase + r.SendPerByte*size
}

// RecvOverhead evaluates the fitted o_r(s).
func (r RegimeFit) RecvOverhead(size float64) float64 {
	return r.RecvBase + r.RecvPerByte*size
}

// Wire evaluates the fitted wire time L + G*s.
func (r RegimeFit) Wire(size float64) float64 {
	return r.Latency + r.GapPerByte*size
}

// String renders the model.
func (m LogGPModel) String() string {
	var b strings.Builder
	for _, r := range m.Regimes {
		fmt.Fprintf(&b, "[%8.0f, %8.0f): o_s=%.3gs+%.3g*s  o_r=%.3gs+%.3g*s  L=%.3gs  G=%.3gs/B (%.0f MB/s)\n",
			r.Lo, r.Hi, r.SendBase, r.SendPerByte, r.RecvBase, r.RecvPerByte,
			r.Latency, r.GapPerByte, r.BandwidthMBps)
	}
	return b.String()
}

// FitLogGP performs the supervised third-stage analysis of a network
// campaign: per-operation piecewise-linear regressions between the
// analyst-provided breakpoints, combined into LogGP parameters per regime:
//
//	RTT(s)  = 2*(o_s(s) + L + G*s + o_r(s))
//	=> L    = RTT_base/2 - o_s_base - o_r_base
//	=> G    = RTT_slope/2 - o_s_slope - o_r_slope
func FitLogGP(res *core.Results, breaks []float64) (LogGPModel, error) {
	fits := map[netsim.Op]stats.PiecewiseFit{}
	for _, op := range []netsim.Op{netsim.OpSend, netsim.OpRecv, netsim.OpPingPong} {
		sub := res.Filter(func(r core.RawRecord) bool {
			return r.Point.Get(FactorOp) == string(op)
		})
		if sub.Len() == 0 {
			return LogGPModel{}, fmt.Errorf("netbench: no %s records", op)
		}
		xs, ys := sub.XY(FactorSize)
		pf, err := stats.FitPiecewise(xs, ys, breaks)
		if err != nil {
			return LogGPModel{}, fmt.Errorf("netbench: fit %s: %w", op, err)
		}
		fits[op] = pf
	}
	send, recv, pp := fits[netsim.OpSend], fits[netsim.OpRecv], fits[netsim.OpPingPong]
	if len(send.Segments) != len(recv.Segments) || len(send.Segments) != len(pp.Segments) {
		return LogGPModel{}, fmt.Errorf("netbench: operations disagree on segment count (%d/%d/%d); provide explicit breakpoints",
			len(send.Segments), len(recv.Segments), len(pp.Segments))
	}
	model := LogGPModel{Breaks: append([]float64(nil), send.Breaks...)}
	for i := range send.Segments {
		s, r, p := send.Segments[i].Fit, recv.Segments[i].Fit, pp.Segments[i].Fit
		rf := RegimeFit{
			Lo:          send.Segments[i].Lo,
			Hi:          send.Segments[i].Hi,
			SendBase:    s.Intercept,
			SendPerByte: s.Slope,
			RecvBase:    r.Intercept,
			RecvPerByte: r.Slope,
			Latency:     p.Intercept/2 - s.Intercept - r.Intercept,
			GapPerByte:  p.Slope/2 - s.Slope - r.Slope,
		}
		if rf.GapPerByte > 0 {
			rf.BandwidthMBps = 1 / rf.GapPerByte / 1e6
		}
		model.Regimes = append(model.Regimes, rf)
	}
	return model, nil
}

// SpecialSizeReport quantifies the Section III.2 size bias: it compares the
// mean duration of quirk-aligned sizes against their non-aligned neighbours
// within [lo, hi), per operation.
type SpecialSizeReport struct {
	Op                   netsim.Op
	AlignedMean          float64
	UnalignedMean        float64
	AlignedN, UnalignedN int
}

// Penalty returns AlignedMean/UnalignedMean (>1 means aligned sizes are
// systematically slower).
func (s SpecialSizeReport) Penalty() float64 {
	if s.UnalignedMean == 0 {
		return math.NaN()
	}
	return s.AlignedMean / s.UnalignedMean
}

// DetectSpecialSizes compares aligned and unaligned message sizes within a
// size window. Only campaigns with randomized (log-uniform) sizes populate
// the unaligned side — power-of-two campaigns cannot run this analysis,
// which is exactly the paper's point.
func DetectSpecialSizes(res *core.Results, op netsim.Op, alignment, lo, hi int) (SpecialSizeReport, error) {
	rep := SpecialSizeReport{Op: op}
	var aligned, unaligned []float64
	for _, rec := range res.Records {
		if rec.Point.Get(FactorOp) != string(op) {
			continue
		}
		size, err := rec.Point.Int(FactorSize)
		if err != nil || size < lo || size >= hi {
			continue
		}
		if size%alignment == 0 {
			aligned = append(aligned, rec.Value)
		} else {
			unaligned = append(unaligned, rec.Value)
		}
	}
	if len(aligned) == 0 || len(unaligned) == 0 {
		return rep, fmt.Errorf("netbench: need both aligned (%d) and unaligned (%d) sizes in [%d, %d)",
			len(aligned), len(unaligned), lo, hi)
	}
	rep.AlignedMean = stats.Mean(aligned)
	rep.UnalignedMean = stats.Mean(unaligned)
	rep.AlignedN = len(aligned)
	rep.UnalignedN = len(unaligned)
	return rep, nil
}

// VariabilityBySizeDecile splits records of one operation into size deciles
// and returns the coefficient of variation per decile — the Figure 4
// heteroscedasticity diagnostic.
func VariabilityBySizeDecile(res *core.Results, op netsim.Op) []float64 {
	type pt struct{ size, val float64 }
	var pts []pt
	for _, rec := range res.Records {
		if rec.Point.Get(FactorOp) != string(op) {
			continue
		}
		s, err := rec.Point.Float(FactorSize)
		if err != nil {
			continue
		}
		pts = append(pts, pt{s, rec.Value})
	}
	if len(pts) < 10 {
		return nil
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].size < pts[j].size })
	out := make([]float64, 10)
	for d := 0; d < 10; d++ {
		lo := d * len(pts) / 10
		hi := (d + 1) * len(pts) / 10
		var vals []float64
		for _, p := range pts[lo:hi] {
			vals = append(vals, p.val)
		}
		out[d] = stats.CV(vals)
	}
	return out
}
