// Package netbench is the white-box network benchmark engine (second
// methodology stage) for the Section V.A operations: blocking receive,
// asynchronous send, and ping-pong — the three measurements sufficient "to
// calculate all the parameters for any LogP-based model".
//
// Message sizes come from the log-uniform distribution of Equation (1)
// rather than a power-of-two grid, and the execution order is randomized by
// the design, so temporal perturbations remain independent of the factors.
package netbench

import (
	"fmt"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/meta"
	"opaquebench/internal/netsim"
)

// Factor names understood by the engine.
const (
	FactorSize = "size" // message size in bytes
	FactorOp   = "op"   // send | recv | pingpong
)

// Config describes a network campaign's fixed environment.
type Config struct {
	// Profile is the simulated network. Required.
	Profile *netsim.Profile
	// Seed drives the noise streams.
	Seed uint64
	// Perturber optionally injects temporal perturbations (nil = quiet).
	Perturber *netsim.Perturber
	// Indexed selects trial-indexed execution (netsim.MeasureIndexed):
	// each trial's sample derives from (Seed, Trial.Seq) alone — noise
	// from a per-trial stream, start time from a fixed per-trial slot —
	// so records are independent of execution history and the campaign
	// can be sharded across runner workers while staying record-for-
	// record identical to a serial run.
	Indexed bool
}

// Engine implements core.Engine for network campaigns.
type Engine struct {
	cfg Config
	net *netsim.Network
	// extraTrue/extraFalse are the two possible annotation maps, shared
	// between records instead of allocated per trial; consumers treat a
	// record's Extra as read-only (the runner's round sink copies before
	// adding its own keys).
	extraTrue  map[string]string
	extraFalse map[string]string
}

// NewEngine builds the engine; the network's virtual clock persists across
// all trials.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Profile == nil {
		return nil, fmt.Errorf("netbench: config needs a profile")
	}
	net, err := netsim.New(cfg.Profile, cfg.Seed, cfg.Perturber)
	if err != nil {
		return nil, err
	}
	return &Engine{
		cfg:        cfg,
		net:        net,
		extraTrue:  map[string]string{"perturbed": "true"},
		extraFalse: map[string]string{"perturbed": "false"},
	}, nil
}

// ParseOp converts a design level into a netsim operation.
func ParseOp(level string) (netsim.Op, error) {
	switch netsim.Op(level) {
	case netsim.OpSend, netsim.OpRecv, netsim.OpPingPong:
		return netsim.Op(level), nil
	}
	return "", fmt.Errorf("netbench: unknown op %q", level)
}

// Execute implements core.Engine: one timed network operation.
func (e *Engine) Execute(t doe.Trial) (core.RawRecord, error) {
	size, err := t.Point.Int(FactorSize)
	if err != nil {
		return core.RawRecord{}, err
	}
	opLevel := t.Point.Get(FactorOp)
	if opLevel == "" {
		opLevel = string(netsim.OpPingPong)
	}
	op, err := ParseOp(opLevel)
	if err != nil {
		return core.RawRecord{}, err
	}
	var s netsim.Sample
	if e.cfg.Indexed {
		s, err = e.net.MeasureIndexed(op, size, t.Seq)
	} else {
		s, err = e.net.Measure(op, size)
	}
	if err != nil {
		return core.RawRecord{}, err
	}
	rec := core.RawRecord{
		Point:   t.Point,
		Value:   s.Seconds,
		Seconds: s.Seconds,
		At:      s.At,
	}
	if s.Perturbed {
		rec.Extra = e.extraTrue
	} else {
		rec.Extra = e.extraFalse
	}
	return rec, nil
}

// Environment implements core.Engine.
func (e *Engine) Environment() *meta.Environment {
	env := meta.New()
	env.Set("network", e.cfg.Profile.Name)
	env.Setf("network/regimes", "%d", len(e.cfg.Profile.Regimes))
	env.Setf("seed", "%d", e.cfg.Seed)
	env.Setf("perturbed", "%v", e.cfg.Perturber != nil)
	if e.cfg.Indexed {
		env.Set("mode", "indexed")
	}
	return env
}

// Factory returns a core.EngineFactory producing independent indexed-mode
// engines for the given configuration, one per runner worker.
func Factory(cfg Config) core.EngineFactory {
	return core.EngineFactoryFunc(func() (core.Engine, error) {
		cfg := cfg
		cfg.Indexed = true
		return NewEngine(cfg)
	})
}

// Design builds a randomized network campaign design: nSizes log-uniform
// sizes in [minSize, maxSize] (Equation 1), crossed with the given
// operations and replicated reps times. With randomize=false the schedule
// stays in the conventional ordered sweep (the pitfall configuration).
func Design(seed uint64, nSizes, minSize, maxSize, reps int, ops []netsim.Op, randomize bool) (*doe.Design, error) {
	if len(ops) == 0 {
		ops = []netsim.Op{netsim.OpSend, netsim.OpRecv, netsim.OpPingPong}
	}
	sizes := doe.RandomSizes(seed, nSizes, minSize, maxSize)
	opLevels := make([]string, len(ops))
	for i, op := range ops {
		opLevels[i] = string(op)
	}
	factors := []doe.Factor{
		doe.SizeFactor(FactorSize, sizes),
		doe.NewFactor(FactorOp, opLevels...),
	}
	return doe.FullFactorial(factors, doe.Options{
		Replicates: reps,
		Seed:       seed,
		Randomize:  randomize,
	})
}

// PowerOfTwoDesign builds the conventional biased design of Figure 2:
// power-of-two sizes in increasing order, no randomization.
func PowerOfTwoDesign(minSize, maxSize, reps int, ops []netsim.Op) (*doe.Design, error) {
	if len(ops) == 0 {
		ops = []netsim.Op{netsim.OpPingPong}
	}
	sizes := doe.PowersOfTwo(minSize, maxSize)
	opLevels := make([]string, len(ops))
	for i, op := range ops {
		opLevels[i] = string(op)
	}
	factors := []doe.Factor{
		doe.SizeFactor(FactorSize, sizes),
		doe.NewFactor(FactorOp, opLevels...),
	}
	return doe.FullFactorial(factors, doe.Options{Replicates: reps})
}
