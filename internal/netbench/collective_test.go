package netbench

import (
	"reflect"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/netsim"
	"opaquebench/internal/stats"
)

func collectiveCampaign(t *testing.T, cfg CollectiveConfig, nSizes, reps int, ops []string) *core.Results {
	t.Helper()
	d, err := CollectiveDesign(cfg.Seed, nSizes, 64, 1<<20, reps, ops, true)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewCollectiveEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&core.Campaign{Design: d, Engine: e}).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewCollectiveEngineValidates(t *testing.T) {
	if _, err := NewCollectiveEngine(CollectiveConfig{}); err == nil {
		t.Fatal("nil profile accepted")
	}
	if _, err := NewCollectiveEngine(CollectiveConfig{Profile: netsim.Taurus(), Ranks: 1}); err == nil {
		t.Fatal("1 rank accepted")
	}
	e, err := NewCollectiveEngine(CollectiveConfig{Profile: netsim.Taurus()})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.Ranks != 8 {
		t.Fatalf("default ranks = %d", e.cfg.Ranks)
	}
}

func TestCollectiveDesignRejectsUnknownOp(t *testing.T) {
	if _, err := CollectiveDesign(1, 10, 64, 1024, 1, []string{"alltoallw"}, true); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestCollectiveCampaignProducesBothOps(t *testing.T) {
	res := collectiveCampaign(t, CollectiveConfig{Profile: netsim.MyrinetGM(), Seed: 1}, 40, 2, nil)
	byOp := res.GroupBy(FactorOp)
	if len(byOp[OpBcast]) == 0 || len(byOp[OpAllreduce]) == 0 {
		t.Fatalf("ops = %v", len(byOp))
	}
	for _, rec := range res.Records {
		if rec.Value <= 0 {
			t.Fatalf("duration %v", rec.Value)
		}
		if rec.Extra["ranks"] != "8" {
			t.Fatalf("ranks annotation %q", rec.Extra["ranks"])
		}
	}
}

func TestBcastTimeGrowsWithSize(t *testing.T) {
	res := collectiveCampaign(t, CollectiveConfig{Profile: netsim.MyrinetGM(), Seed: 2}, 120, 2, []string{OpBcast})
	xs, ys := res.XY(FactorSize)
	fit, err := stats.FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope <= 0 {
		t.Fatalf("slope = %v", fit.Slope)
	}
	if fit.R2 < 0.8 {
		t.Fatalf("R2 = %v; bcast time should be strongly size-driven", fit.R2)
	}
}

func TestAllreduceCheaperPerByteThanNaive(t *testing.T) {
	// The ring algorithm's per-byte cost must be far below n sequential
	// point-to-point transfers of the full payload.
	profile := netsim.MyrinetGM()
	res := collectiveCampaign(t, CollectiveConfig{Profile: profile, Seed: 3, Ranks: 8}, 80, 2, []string{OpAllreduce})
	xs, ys := res.XY(FactorSize)
	fit, err := stats.FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	naivePerByte := 8 * profile.Regimes[0].GapPerByte
	if fit.Slope >= naivePerByte {
		t.Fatalf("allreduce per-byte %v should beat naive %v", fit.Slope, naivePerByte)
	}
}

func TestBarrierSizeInvariant(t *testing.T) {
	res := collectiveCampaign(t, CollectiveConfig{Profile: netsim.MyrinetGM(), Seed: 4}, 60, 2, []string{OpBarrier})
	xs, ys := res.XY(FactorSize)
	r, err := stats.Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r > 0.3 || r < -0.3 {
		t.Fatalf("barrier time correlates with size: r=%v", r)
	}
}

func TestCollectiveExecuteErrors(t *testing.T) {
	e, err := NewCollectiveEngine(CollectiveConfig{Profile: netsim.Taurus(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(doe.Trial{Point: doe.Point{"size": "abc"}}); err == nil {
		t.Fatal("bad size accepted")
	}
	if _, err := e.Execute(doe.Trial{Point: doe.Point{"size": "1024", "op": "gatherv"}}); err == nil {
		t.Fatal("bad op accepted")
	}
}

func TestCollectiveEngineTrialIndexed(t *testing.T) {
	// The group seed and the noise stream derive from (Seed, Trial.Seq),
	// so a fresh engine replaying the design in reverse order must
	// reproduce every record exactly — the property that lets collbench
	// shard collective campaigns across runner workers.
	cfg := CollectiveConfig{Profile: netsim.Taurus(), Seed: 7, AllreduceSwitchBytes: 16384}
	d, err := CollectiveDesign(7, 24, 4, 1<<20, 2, []string{OpBcast, OpAllreduce, OpBarrier}, true)
	if err != nil {
		t.Fatal(err)
	}
	forward, err := NewCollectiveEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]core.RawRecord, d.Size())
	for i, tr := range d.Trials {
		if recs[i], err = forward.Execute(tr); err != nil {
			t.Fatal(err)
		}
	}
	reversed, err := NewCollectiveEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := d.Size() - 1; i >= 0; i-- {
		rec, err := reversed.Execute(d.Trials[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rec, recs[i]) {
			t.Fatalf("trial %d depends on execution order:\nin-order %+v\nreverse  %+v", d.Trials[i].Seq, recs[i], rec)
		}
	}
}

func TestCollectiveAllreduceClampAnnotated(t *testing.T) {
	// An allreduce smaller than the communicator cannot split into ring
	// chunks: the engine rounds it up to one byte per rank and records the
	// effective size instead of silently measuring different bytes.
	e, err := NewCollectiveEngine(CollectiveConfig{Profile: netsim.Taurus(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := e.Execute(doe.Trial{Seq: 0, Point: doe.Point{"size": "3", "op": OpAllreduce}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Extra["allreduce_effective_size"] != "8" {
		t.Fatalf("clamped allreduce not annotated: %v", rec.Extra)
	}
	rec, err = e.Execute(doe.Trial{Seq: 1, Point: doe.Point{"size": "64", "op": OpAllreduce}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rec.Extra["allreduce_effective_size"]; ok {
		t.Fatalf("full-size allreduce wrongly annotated: %v", rec.Extra)
	}
}

func TestCollectiveEnvironment(t *testing.T) {
	e, err := NewCollectiveEngine(CollectiveConfig{Profile: netsim.Taurus(), Ranks: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	env := e.Environment()
	if env.Get("ranks") != "16" || env.Get("engine") != "collective" {
		t.Fatalf("env = %v", env.Fields)
	}
}
