package netbench

import (
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/netsim"
	"opaquebench/internal/stats"
)

func collectiveCampaign(t *testing.T, cfg CollectiveConfig, nSizes, reps int, ops []string) *core.Results {
	t.Helper()
	d, err := CollectiveDesign(cfg.Seed, nSizes, 64, 1<<20, reps, ops, true)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewCollectiveEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&core.Campaign{Design: d, Engine: e}).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewCollectiveEngineValidates(t *testing.T) {
	if _, err := NewCollectiveEngine(CollectiveConfig{}); err == nil {
		t.Fatal("nil profile accepted")
	}
	if _, err := NewCollectiveEngine(CollectiveConfig{Profile: netsim.Taurus(), Ranks: 1}); err == nil {
		t.Fatal("1 rank accepted")
	}
	e, err := NewCollectiveEngine(CollectiveConfig{Profile: netsim.Taurus()})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.Ranks != 8 {
		t.Fatalf("default ranks = %d", e.cfg.Ranks)
	}
}

func TestCollectiveDesignRejectsUnknownOp(t *testing.T) {
	if _, err := CollectiveDesign(1, 10, 64, 1024, 1, []string{"alltoallw"}, true); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestCollectiveCampaignProducesBothOps(t *testing.T) {
	res := collectiveCampaign(t, CollectiveConfig{Profile: netsim.MyrinetGM(), Seed: 1}, 40, 2, nil)
	byOp := res.GroupBy(FactorOp)
	if len(byOp[OpBcast]) == 0 || len(byOp[OpAllreduce]) == 0 {
		t.Fatalf("ops = %v", len(byOp))
	}
	for _, rec := range res.Records {
		if rec.Value <= 0 {
			t.Fatalf("duration %v", rec.Value)
		}
		if rec.Extra["ranks"] != "8" {
			t.Fatalf("ranks annotation %q", rec.Extra["ranks"])
		}
	}
}

func TestBcastTimeGrowsWithSize(t *testing.T) {
	res := collectiveCampaign(t, CollectiveConfig{Profile: netsim.MyrinetGM(), Seed: 2}, 120, 2, []string{OpBcast})
	xs, ys := res.XY(FactorSize)
	fit, err := stats.FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope <= 0 {
		t.Fatalf("slope = %v", fit.Slope)
	}
	if fit.R2 < 0.8 {
		t.Fatalf("R2 = %v; bcast time should be strongly size-driven", fit.R2)
	}
}

func TestAllreduceCheaperPerByteThanNaive(t *testing.T) {
	// The ring algorithm's per-byte cost must be far below n sequential
	// point-to-point transfers of the full payload.
	profile := netsim.MyrinetGM()
	res := collectiveCampaign(t, CollectiveConfig{Profile: profile, Seed: 3, Ranks: 8}, 80, 2, []string{OpAllreduce})
	xs, ys := res.XY(FactorSize)
	fit, err := stats.FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	naivePerByte := 8 * profile.Regimes[0].GapPerByte
	if fit.Slope >= naivePerByte {
		t.Fatalf("allreduce per-byte %v should beat naive %v", fit.Slope, naivePerByte)
	}
}

func TestBarrierSizeInvariant(t *testing.T) {
	res := collectiveCampaign(t, CollectiveConfig{Profile: netsim.MyrinetGM(), Seed: 4}, 60, 2, []string{OpBarrier})
	xs, ys := res.XY(FactorSize)
	r, err := stats.Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r > 0.3 || r < -0.3 {
		t.Fatalf("barrier time correlates with size: r=%v", r)
	}
}

func TestCollectiveExecuteErrors(t *testing.T) {
	e, err := NewCollectiveEngine(CollectiveConfig{Profile: netsim.Taurus(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(doe.Trial{Point: doe.Point{"size": "abc"}}); err == nil {
		t.Fatal("bad size accepted")
	}
	if _, err := e.Execute(doe.Trial{Point: doe.Point{"size": "1024", "op": "gatherv"}}); err == nil {
		t.Fatal("bad op accepted")
	}
}

func TestCollectiveEnvironment(t *testing.T) {
	e, err := NewCollectiveEngine(CollectiveConfig{Profile: netsim.Taurus(), Ranks: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	env := e.Environment()
	if env.Get("ranks") != "16" || env.Get("engine") != "collective" {
		t.Fatalf("env = %v", env.Fields)
	}
}
