package netbench

import (
	"math"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/netsim"
)

func campaign(t *testing.T, cfg Config, seed uint64, nSizes, minS, maxS, reps int, randomize bool) *core.Results {
	t.Helper()
	d, err := Design(seed, nSizes, minS, maxS, reps, nil, randomize)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&core.Campaign{Design: d, Engine: e}).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewEngineRequiresProfile(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Fatal("nil profile accepted")
	}
}

func TestParseOp(t *testing.T) {
	for _, good := range []string{"send", "recv", "pingpong"} {
		if _, err := ParseOp(good); err != nil {
			t.Fatalf("%s rejected: %v", good, err)
		}
	}
	if _, err := ParseOp("bcast"); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestDesignShape(t *testing.T) {
	d, err := Design(1, 50, 16, 1<<20, 3, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	// 50 sizes x 3 ops x 3 reps (duplicate random sizes may collapse levels).
	if d.Size() < 50*3*3/2 {
		t.Fatalf("design too small: %d", d.Size())
	}
	if !d.Randomized {
		t.Fatal("not randomized")
	}
}

func TestPowerOfTwoDesignOrdered(t *testing.T) {
	d, err := PowerOfTwoDesign(64, 1024, 2, []netsim.Op{netsim.OpPingPong})
	if err != nil {
		t.Fatal(err)
	}
	if d.Randomized {
		t.Fatal("pow2 design should stay ordered")
	}
	if d.Size() != 5*2 {
		t.Fatalf("size = %d", d.Size())
	}
}

func TestCampaignRecordsAllOps(t *testing.T) {
	res := campaign(t, Config{Profile: netsim.Taurus(), Seed: 2}, 2, 30, 16, 1<<20, 2, true)
	byOp := res.GroupBy(FactorOp)
	for _, op := range []string{"send", "recv", "pingpong"} {
		if len(byOp[op]) == 0 {
			t.Fatalf("no %s records", op)
		}
	}
}

func TestFitLogGPRecoversPlantedParameters(t *testing.T) {
	// The ground truth is the Taurus profile; the white-box analysis with
	// the true breakpoints must recover G and L within tolerance.
	profile := netsim.Taurus()
	res := campaign(t, Config{Profile: profile, Seed: 3}, 3, 250, 16, 1<<21, 4, true)
	model, err := FitLogGP(res, profile.Breakpoints())
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Regimes) != 3 {
		t.Fatalf("regimes = %d", len(model.Regimes))
	}
	// Check the rendezvous regime (best conditioned: widest size range).
	truth := profile.Regimes[2]
	got := model.Regimes[2]
	if relErr(got.GapPerByte, truth.GapPerByte) > 0.25 {
		t.Fatalf("G = %v, want ~%v", got.GapPerByte, truth.GapPerByte)
	}
	if got.BandwidthMBps <= 0 {
		t.Fatalf("bandwidth = %v", got.BandwidthMBps)
	}
	// Send overhead slope of the eager regime.
	if relErr(model.Regimes[0].SendPerByte, profile.Regimes[0].SendPerByte) > 0.5 {
		t.Fatalf("eager send slope = %v, want ~%v", model.Regimes[0].SendPerByte, profile.Regimes[0].SendPerByte)
	}
	if model.String() == "" {
		t.Fatal("empty model rendering")
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func TestFitLogGPLatencyPositive(t *testing.T) {
	profile := netsim.MyrinetGM()
	res := campaign(t, Config{Profile: profile, Seed: 4}, 4, 150, 16, 1<<20, 3, true)
	model, err := FitLogGP(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Regimes) != 1 {
		t.Fatalf("regimes = %d", len(model.Regimes))
	}
	if model.Regimes[0].Latency <= 0 {
		t.Fatalf("latency = %v", model.Regimes[0].Latency)
	}
	if relErr(model.Regimes[0].Latency, profile.Regimes[0].Latency) > 0.5 {
		t.Fatalf("latency = %v, want ~%v", model.Regimes[0].Latency, profile.Regimes[0].Latency)
	}
}

func TestFitLogGPMissingOp(t *testing.T) {
	d, err := Design(5, 20, 16, 65536, 1, []netsim.Op{netsim.OpPingPong}, true)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{Profile: netsim.Taurus(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&core.Campaign{Design: d, Engine: e}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FitLogGP(res, nil); err == nil {
		t.Fatal("want error when send/recv records are missing")
	}
}

func TestDetectSpecialSizes(t *testing.T) {
	// The planted Taurus quirk: 1024-aligned eager sends are ~25% slower.
	res := campaign(t, Config{Profile: netsim.Taurus(), Seed: 6}, 6, 400, 512, 12000, 4, true)

	// Log-uniform sampling rarely hits exact multiples of 1024, so add a
	// few aligned probes the way an analyst would.
	e, err := NewEngine(Config{Profile: netsim.Taurus(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	d, err := PowerOfTwoDesign(1024, 8192, 20, []netsim.Op{netsim.OpSend})
	if err != nil {
		t.Fatal(err)
	}
	aligned, err := (&core.Campaign{Design: d, Engine: e}).Run()
	if err != nil {
		t.Fatal(err)
	}
	res.Records = append(res.Records, aligned.Records...)

	rep, err := DetectSpecialSizes(res, netsim.OpSend, 1024, 1024, 12000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Penalty() < 1.1 {
		t.Fatalf("penalty = %v, want > 1.1 (planted 1.25)", rep.Penalty())
	}
}

func TestDetectSpecialSizesNeedsBothSides(t *testing.T) {
	// A pure power-of-two campaign cannot expose the quirk: every size is
	// aligned, so the comparison is impossible (pitfall III.2).
	e, err := NewEngine(Config{Profile: netsim.Taurus(), Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	d, err := PowerOfTwoDesign(1024, 8192, 10, []netsim.Op{netsim.OpSend})
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&core.Campaign{Design: d, Engine: e}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DetectSpecialSizes(res, netsim.OpSend, 1024, 1024, 12000); err == nil {
		t.Fatal("pow2-only campaign should fail the special-size analysis")
	}
}

func TestVariabilityBySizeDecile(t *testing.T) {
	res := campaign(t, Config{Profile: netsim.Taurus(), Seed: 9}, 9, 300, 64, 1<<21, 4, true)
	cv := VariabilityBySizeDecile(res, netsim.OpRecv)
	if len(cv) != 10 {
		t.Fatalf("deciles = %d", len(cv))
	}
	// The detached band (12 KB - 64 KB) must be more variable than the
	// largest sizes. With log-uniform sizes over [64, 2M] the detached band
	// sits roughly in deciles 7-8 and rendezvous in 9-10.
	maxMid := math.Max(cv[6], cv[7])
	if maxMid <= cv[9] {
		t.Fatalf("medium-size variability should dominate: mid=%v last=%v (all=%v)", maxMid, cv[9], cv)
	}
}

func TestEnvironmentCapture(t *testing.T) {
	e, err := NewEngine(Config{Profile: netsim.Taurus(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	env := e.Environment()
	if env.Get("network") != "taurus-openmpi-tcp-10g" {
		t.Fatalf("network = %q", env.Get("network"))
	}
	if env.Get("perturbed") != "false" {
		t.Fatalf("perturbed = %q", env.Get("perturbed"))
	}
}

func TestExecuteBadTrials(t *testing.T) {
	e, err := NewEngine(Config{Profile: netsim.Taurus(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(doe.Trial{Point: doe.Point{"size": "abc"}}); err == nil {
		t.Fatal("bad size accepted")
	}
	if _, err := e.Execute(doe.Trial{Point: doe.Point{"size": "1024", "op": "bcast"}}); err == nil {
		t.Fatal("bad op accepted")
	}
}
