package netbench

import (
	"fmt"

	"opaquebench/internal/doe"
	"opaquebench/internal/netsim"
)

// Spec is the declarative form of a point-to-point network campaign — the
// engine half of a suite file's campaign entry (see internal/suite). Field
// semantics and defaults match the cmd/netbench flags of the same names; a
// zero Spec is the default Taurus campaign. Collective campaigns carry
// rank-clock state and stay exclusive to cmd/netbench -collective.
type Spec struct {
	// Profile names the simulated network (default "taurus").
	Profile string `json:"profile,omitempty"`
	// N is the number of log-uniform message sizes (default 200).
	N int `json:"n,omitempty"`
	// Min is the minimum message size in bytes (default 16).
	Min int `json:"min,omitempty"`
	// Max is the maximum message size in bytes (default 2 MiB).
	Max int `json:"max,omitempty"`
	// Reps is the replicate count per (size, op) (default 4).
	Reps int `json:"reps,omitempty"`
	// PerturbFactor stretches durations inside the perturbation window:
	// 0 (the default) or 1 means no perturbation, values > 1 stretch;
	// negative values and values in (0, 1) are rejected.
	PerturbFactor float64 `json:"perturb_factor,omitempty"`
	// PerturbStart is the perturbation window start (virtual seconds).
	PerturbStart float64 `json:"perturb_start,omitempty"`
	// PerturbEnd is the perturbation window end (virtual seconds).
	PerturbEnd float64 `json:"perturb_end,omitempty"`
}

// FromSpec resolves a declarative campaign into the engine configuration
// and the materialized design, both fully determined by (spec, seed). It is
// how the suite orchestrator builds netbench campaigns without going
// through the cmd/netbench flag parser.
func FromSpec(s Spec, seed uint64) (Config, *doe.Design, error) {
	if s.Profile == "" {
		s.Profile = "taurus"
	}
	if s.N <= 0 {
		s.N = 200
	}
	if s.Min <= 0 {
		s.Min = 16
	}
	if s.Max <= 0 {
		s.Max = 2 << 20
	}
	if s.Reps <= 0 {
		s.Reps = 4
	}
	if s.PerturbFactor < 0 || (s.PerturbFactor > 0 && s.PerturbFactor < 1) {
		return Config{}, nil, fmt.Errorf("netbench: perturb_factor must be 0 (none) or >= 1, got %v", s.PerturbFactor)
	}
	p, err := netsim.ProfileByName(s.Profile)
	if err != nil {
		return Config{}, nil, err
	}
	design, err := Design(seed, s.N, s.Min, s.Max, s.Reps, nil, true)
	if err != nil {
		return Config{}, nil, err
	}
	cfg := Config{Profile: p, Seed: seed}
	if s.PerturbFactor > 1 {
		cfg.Perturber = netsim.NewPerturber(s.PerturbFactor,
			netsim.Window{Start: s.PerturbStart, End: s.PerturbEnd})
	}
	return cfg, design, nil
}
