package netbench

import (
	"fmt"

	"opaquebench/internal/doe"
	"opaquebench/internal/netsim"
)

// defaultReps is the replicate count of a zero Spec, shared by FromSpec
// and Refine so seed and zoom rounds can never drift.
const defaultReps = 4

// Spec is the declarative form of a point-to-point network campaign — the
// engine half of a suite file's campaign entry (see internal/suite). Field
// semantics and defaults match the cmd/netbench flags of the same names; a
// zero Spec is the default Taurus campaign. Collective campaigns carry
// rank-clock state and stay exclusive to cmd/netbench -collective.
type Spec struct {
	// Profile names the simulated network (default "taurus").
	Profile string `json:"profile,omitempty"`
	// N is the number of log-uniform message sizes (default 200).
	N int `json:"n,omitempty"`
	// Min is the minimum message size in bytes (default 16).
	Min int `json:"min,omitempty"`
	// Max is the maximum message size in bytes (default 2 MiB).
	Max int `json:"max,omitempty"`
	// Reps is the replicate count per (size, op) (default 4).
	Reps int `json:"reps,omitempty"`
	// PerturbFactor stretches durations inside the perturbation window:
	// 0 (the default) or 1 means no perturbation, values > 1 stretch;
	// negative values and values in (0, 1) are rejected.
	PerturbFactor float64 `json:"perturb_factor,omitempty"`
	// PerturbStart is the perturbation window start (virtual seconds).
	PerturbStart float64 `json:"perturb_start,omitempty"`
	// PerturbEnd is the perturbation window end (virtual seconds).
	PerturbEnd float64 `json:"perturb_end,omitempty"`
}

// FromSpec resolves a declarative campaign into the engine configuration
// and the materialized design, both fully determined by (spec, seed). It is
// how the suite orchestrator builds netbench campaigns without going
// through the cmd/netbench flag parser.
func FromSpec(s Spec, seed uint64) (Config, *doe.Design, error) {
	if s.Profile == "" {
		s.Profile = "taurus"
	}
	if s.N <= 0 {
		s.N = 200
	}
	if s.Min <= 0 {
		s.Min = 16
	}
	if s.Max <= 0 {
		s.Max = 2 << 20
	}
	if s.Reps <= 0 {
		s.Reps = defaultReps
	}
	if s.PerturbFactor < 0 || (s.PerturbFactor > 0 && s.PerturbFactor < 1) {
		return Config{}, nil, fmt.Errorf("netbench: perturb_factor must be 0 (none) or >= 1, got %v", s.PerturbFactor)
	}
	p, err := netsim.ProfileByName(s.Profile)
	if err != nil {
		return Config{}, nil, err
	}
	design, err := Design(seed, s.N, s.Min, s.Max, s.Reps, nil, true)
	if err != nil {
		return Config{}, nil, err
	}
	cfg := Config{Profile: p, Seed: seed}
	if s.PerturbFactor > 1 {
		cfg.Perturber = netsim.NewPerturber(s.PerturbFactor,
			netsim.Window{Start: s.PerturbStart, End: s.PerturbEnd})
	}
	return cfg, design, nil
}

// ZoomFactor names the numeric factor adaptive refinement zooms: the
// message size, whose protocol-change breakpoints (eager/rendezvous) are
// the engine's central phenomenon. Part of the adapt.Refiner hook set.
func (s Spec) ZoomFactor() string { return FactorSize }

// Refine materializes one adaptive refinement round's zoom design: the
// given refined message sizes crossed with the standard operation set,
// replicated (reps, or the spec's replicate count when reps <= 0),
// randomized under the round seed, every trial stamped doe.OriginZoom.
// Unlike the seed design's log-uniform random sizes, refined levels are
// explicit — the planner has already chosen where to look.
func (s Spec) Refine(seed uint64, levels []int, reps int) (*doe.Design, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("netbench: refine needs at least one size level")
	}
	for _, l := range levels {
		if l < 1 {
			return nil, fmt.Errorf("netbench: refine size %d is not positive", l)
		}
	}
	if reps <= 0 {
		reps = s.Reps
	}
	if reps <= 0 {
		reps = defaultReps
	}
	ops := []netsim.Op{netsim.OpSend, netsim.OpRecv, netsim.OpPingPong}
	opLevels := make([]string, len(ops))
	for i, op := range ops {
		opLevels[i] = string(op)
	}
	factors := []doe.Factor{
		doe.IntFactor(FactorSize, levels...),
		doe.NewFactor(FactorOp, opLevels...),
	}
	return doe.FullFactorial(factors,
		doe.Options{Replicates: reps, Seed: seed, Randomize: true, Origin: doe.OriginZoom})
}
