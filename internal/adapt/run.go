package adapt

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
)

// RoundRunner executes one round's design and returns its records in
// design order. The suite orchestrator backs it with the parallel runner
// plus the per-round content-addressed cache; tests back it with a direct
// runner.Run. The 1-based round index is advisory (logging, sink
// bookkeeping) — the records must depend only on the design.
type RoundRunner func(round int, d *doe.Design) ([]core.RawRecord, error)

// RoundResult is one executed round of an adaptive campaign.
type RoundResult struct {
	// Round is the 1-based round index.
	Round int
	// Design is the design the round executed (the seed design for round
	// 1, a planner-derived refinement otherwise).
	Design *doe.Design
	// Plan is the planner output that produced Design; nil for the seed
	// round.
	Plan *RoundPlan
	// Records are the round's raw records in design order.
	Records []core.RawRecord
	// Analysis is the planner's view of all records up to and including
	// this round.
	Analysis *Analysis
}

// Outcome is a completed adaptive campaign: every round in order, the
// final analysis, and why the campaign stopped.
type Outcome struct {
	// Config is the fully defaulted configuration the campaign ran under.
	Config Config
	// Rounds holds the executed rounds in order.
	Rounds []RoundResult
	// TotalTrials is the number of trials across all rounds.
	TotalTrials int
	// Stop is the stop reason (StopMaxRounds, StopBudget, StopConverged).
	Stop string
}

// Final returns the analysis after the last round.
func (o *Outcome) Final() *Analysis {
	if len(o.Rounds) == 0 {
		return nil
	}
	return o.Rounds[len(o.Rounds)-1].Analysis
}

// Run drives a whole adaptive campaign: execute the seed design, analyze,
// plan, execute the refinement, ... until a stop rule fires. The outcome
// is a pure function of (cfg, refiner, seed design, engine behavior); with
// trial-indexed engines behind exec, the schedule and every record are
// reproducible byte for byte.
func Run(cfg Config, r Refiner, seed *doe.Design, exec RoundRunner) (*Outcome, error) {
	if r == nil || seed == nil || exec == nil {
		return nil, fmt.Errorf("adapt: run needs a refiner, a seed design and a round runner")
	}
	cfg, err := cfg.withDefaults(r, seed)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Config: cfg}
	design := seed
	var all []core.RawRecord
	var plan *RoundPlan
	for round := 1; ; round++ {
		recs, err := exec(round, design)
		if err != nil {
			return nil, fmt.Errorf("adapt: round %d: %w", round, err)
		}
		if len(recs) != design.Size() {
			return nil, fmt.Errorf("adapt: round %d returned %d records for a %d-trial design", round, len(recs), design.Size())
		}
		all = append(all, recs...)
		analysis, err := Analyze(cfg, all)
		if err != nil {
			return nil, fmt.Errorf("adapt: round %d: %w", round, err)
		}
		out.Rounds = append(out.Rounds, RoundResult{
			Round: round, Design: design, Plan: plan, Records: recs, Analysis: analysis,
		})
		out.TotalTrials += len(recs)
		next, stop, err := PlanNext(cfg, r, round, out.TotalTrials, all, analysis)
		if err != nil {
			return nil, err
		}
		if next == nil {
			out.Stop = stop
			return out, nil
		}
		plan = next
		design = next.Design
	}
}

// WriteSchedule renders the round-by-round schedule as stable text — the
// artifact the determinism tests compare byte for byte and cmd/suite plan
// prints. One line per round plus a trailer:
//
//	round 1: 30 trials (seed), worst rel CI 0.31, brackets [40960 in (16384, 65536)]
//	round 2: 54 trials (24 zoom, 30 replicate), levels [21112 27554 ...], ...
//	stop: max-rounds (84/120 trials)
func (o *Outcome) WriteSchedule(w io.Writer) error {
	for _, rr := range o.Rounds {
		if _, err := io.WriteString(w, o.roundLine(rr)+"\n"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "stop: %s (%d/%d trials, factor %s)\n",
		o.Stop, o.TotalTrials, o.Config.Budget, o.Config.Factor)
	return err
}

// Schedule returns WriteSchedule's rendering as a string.
func (o *Outcome) Schedule() string {
	var b strings.Builder
	o.WriteSchedule(&b)
	return b.String()
}

func (o *Outcome) roundLine(rr RoundResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "round %d: %d trials", rr.Round, rr.Design.Size())
	if rr.Plan == nil {
		b.WriteString(" (seed)")
	} else {
		zoom, rep := originCounts(rr.Design)
		fmt.Fprintf(&b, " (%d zoom, %d replicate)", zoom, rep)
		if len(rr.Plan.Levels) > 0 {
			fmt.Fprintf(&b, ", levels %v", rr.Plan.Levels)
		}
		if len(rr.Plan.Replicate) > 0 {
			keys := make([]string, len(rr.Plan.Replicate))
			for i, p := range rr.Plan.Replicate {
				keys[i] = fmt.Sprintf("%s+%d", p.Key, p.Extra)
			}
			fmt.Fprintf(&b, ", replicate [%s]", strings.Join(keys, " "))
		}
	}
	if rr.Analysis != nil {
		fmt.Fprintf(&b, ", worst rel CI %.4g", rr.Analysis.WorstRelWidth)
		if len(rr.Analysis.Brackets) > 0 {
			parts := make([]string, len(rr.Analysis.Brackets))
			for i, br := range rr.Analysis.Brackets {
				parts[i] = fmt.Sprintf("%.6g in (%.6g, %.6g)", br.X, br.Lo, br.Hi)
			}
			fmt.Fprintf(&b, ", brackets [%s]", strings.Join(parts, "; "))
		}
	}
	return b.String()
}

// originCounts tallies a design's trials by provenance.
func originCounts(d *doe.Design) (zoom, replicate int) {
	for _, t := range d.Trials {
		switch t.Origin {
		case doe.OriginZoom:
			zoom++
		case doe.OriginReplicate:
			replicate++
		}
	}
	return zoom, replicate
}

// Combined merges every round's design into one design artifact — the
// whole study as a single schedule, trial provenance preserved, Seq
// numbering matching the round-scoped record stream (runner.RoundSink).
// Useful for auditing an adaptive campaign after the fact.
func (o *Outcome) Combined() (*doe.Design, error) {
	designs := make([]*doe.Design, len(o.Rounds))
	for i, rr := range o.Rounds {
		designs[i] = rr.Design
	}
	merged, err := doe.Merge(o.Config.Seed, designs...)
	if err != nil {
		return nil, err
	}
	// Merge reshuffles; the combined artifact must instead present the
	// executed order: rounds concatenated, design order within each.
	trials := make([]doe.Trial, 0, len(merged.Trials))
	seq := 0
	for _, rr := range o.Rounds {
		for _, t := range rr.Design.Trials {
			t.Point = t.Point.Clone()
			t.Seq = seq
			trials = append(trials, t)
			seq++
		}
	}
	merged.Trials = trials
	sortFactorLevels(merged)
	return merged, nil
}

// sortFactorLevels normalizes factor level order in the merged factor list
// (lexical), so Combined designs serialize deterministically regardless of
// the per-round level discovery order.
func sortFactorLevels(d *doe.Design) {
	for i := range d.Factors {
		levels := d.Factors[i].Levels
		sort.Slice(levels, func(a, b int) bool { return levels[a] < levels[b] })
	}
}
