package adapt_test

import (
	"testing"

	"opaquebench/internal/adapt"
	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/xrand"
)

// syntheticRound builds a noisy two-regime record set over n levels x reps
// replicates: the shape the planner sees after a seed round, with both
// work to replicate (noisy points) and structure to zoom (a breakpoint).
func syntheticRound(levels, reps int) []core.RawRecord {
	r := xrand.New(7)
	var recs []core.RawRecord
	seq := 0
	for rep := 0; rep < reps; rep++ {
		for i := 0; i < levels; i++ {
			x := 1000 * (i + 1)
			v := 5000.0
			if x > 1000*levels/2 {
				v = 1500
			}
			v *= 1 + 0.05*(r.Float64()-0.5)
			recs = append(recs, core.RawRecord{
				Seq: seq, Rep: rep,
				Point: doe.Point{"x": doe.Level(itoa(x))},
				Value: v,
			})
			seq++
		}
	}
	return recs
}

func itoa(v int) string {
	out := []byte{}
	for v > 0 {
		out = append([]byte{byte('0' + v%10)}, out...)
		v /= 10
	}
	return string(out)
}

// BenchmarkPlannerRound measures one full between-rounds planning pass:
// per-point bootstrap CIs, the BIC segmented search, and refined-design
// construction — the work the adaptive loop adds per round on top of the
// measurements themselves.
func BenchmarkPlannerRound(b *testing.B) {
	recs := syntheticRound(12, 10)
	seedDesign, err := flatRefiner{}.Refine(1, []int{1000}, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := adapt.Config{Rounds: 3, Budget: 10 * len(recs), Seed: 7}.Normalize(flatRefiner{}, seedDesign)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := adapt.Analyze(cfg, recs)
		if err != nil {
			b.Fatal(err)
		}
		plan, stop, err := adapt.PlanNext(cfg, flatRefiner{}, 1, len(recs), recs, a)
		if err != nil {
			b.Fatal(err)
		}
		if plan == nil {
			b.Fatalf("planner stopped (%s) instead of planning", stop)
		}
	}
}
