// Package adapt closes the methodology loop: it turns a one-shot campaign
// into a deterministic multi-round study that plans its own next round from
// observed statistics. The paper's central lesson is that fixed designs
// silently miss the phenomena that matter — cache-size breakpoints,
// governor bimodality, heteroscedastic noise; this package replicates and
// refines *where the data says to*:
//
//   - Variance-targeted replication: design points whose bootstrap CI for
//     the median is widest (relative to the median) receive extra
//     replicates in the next round, up to a per-round cap and the overall
//     trial budget.
//   - Breakpoint-zoom refinement: the neutral BIC-selected segmented
//     search (stats.SelectSegmentedRelative) localizes each detected
//     breakpoint between two adjacent grid levels, and the next round
//     inserts log-spaced levels inside that bracket — each round can
//     shrink the localization interval by a factor of ZoomPerBreak+1.
//
// Everything is deterministic: round r's design is a pure function of the
// campaign configuration and the records of rounds 1..r-1, with all
// randomization (bootstrap resampling, schedule shuffling) derived from
// the campaign seed and the round index. Re-planning the same campaign
// reproduces the same schedule byte for byte — which is what lets the
// suite orchestrator (internal/suite) cache each round content-addressed
// and replay a whole adaptive study without executing a single trial.
package adapt

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/stats"
	"opaquebench/internal/xrand"
)

// Refiner supplies the engine-specific half of planning: which numeric
// factor to zoom and how to materialize a zoom design for refined levels.
// Every registered engine's Spec type implements it (see internal/engine).
type Refiner interface {
	// ZoomFactor names the numeric factor refinement zooms.
	ZoomFactor() string
	// Refine materializes a zoom design measuring the given new factor
	// levels (crossed with the campaign's other factor levels), replicated
	// reps times (<= 0 means the spec's own replicate count), randomized
	// under seed, with every trial stamped doe.OriginZoom.
	Refine(seed uint64, levels []int, reps int) (*doe.Design, error)
}

// Config tunes an adaptive campaign. The zero value of every field means
// its default; Factor defaults to the Refiner's ZoomFactor.
type Config struct {
	// Factor is the numeric factor analyzed for breakpoints and zoomed.
	Factor string
	// Rounds is the maximum number of rounds, seed round included
	// (default 2; must be >= 1).
	Rounds int
	// Budget is the maximum total number of trials across all rounds
	// (default 4x the seed design; must cover the seed design).
	Budget int
	// TargetRelCI is the convergence target: a point whose median CI is
	// narrower than this fraction of its median needs no more replicates
	// (default 0.05).
	TargetRelCI float64
	// TopPoints caps how many wide points receive extra replicates per
	// round (default 3).
	TopPoints int
	// ExtraReps is the number of extra replicates each selected point
	// receives (default 4).
	ExtraReps int
	// ZoomPerBreak is the number of log-spaced levels inserted inside each
	// breakpoint bracket (default 4).
	ZoomPerBreak int
	// ZoomReps is the replicate count for zoomed levels (default 0: the
	// engine spec's own replicate count).
	ZoomReps int
	// MaxBreaks caps the segmented search (default 3).
	MaxBreaks int
	// MinSeg is the minimum number of observations per fitted segment
	// (default 10).
	MinSeg int
	// Level is the bootstrap confidence level (default 0.95).
	Level float64
	// BootReps is the bootstrap replication count (default 400).
	BootReps int
	// Seed is the campaign seed; every stochastic planner component
	// (bootstrap streams, round schedules) derives from it.
	Seed uint64
}

func (c Config) withDefaults(r Refiner, seed *doe.Design) (Config, error) {
	if c.Factor == "" {
		c.Factor = r.ZoomFactor()
	}
	if c.Rounds == 0 {
		c.Rounds = 2
	}
	if c.Rounds < 1 {
		return c, fmt.Errorf("adapt: rounds %d < 1", c.Rounds)
	}
	if c.Budget == 0 {
		c.Budget = 4 * seed.Size()
	}
	if c.Budget < seed.Size() {
		return c, fmt.Errorf("adapt: budget %d cannot cover the %d-trial seed design", c.Budget, seed.Size())
	}
	if c.TargetRelCI == 0 {
		c.TargetRelCI = 0.05
	}
	if c.TargetRelCI < 0 {
		return c, fmt.Errorf("adapt: negative target relative CI width %g", c.TargetRelCI)
	}
	if c.TopPoints == 0 {
		c.TopPoints = 3
	}
	if c.ExtraReps == 0 {
		c.ExtraReps = 4
	}
	if c.ZoomPerBreak == 0 {
		c.ZoomPerBreak = 4
	}
	if c.MaxBreaks == 0 {
		c.MaxBreaks = 3
	}
	if c.MinSeg == 0 {
		c.MinSeg = 10
	}
	if c.Level == 0 {
		c.Level = 0.95
	}
	if c.BootReps == 0 {
		c.BootReps = 400
	}
	for name, v := range map[string]int{
		"top_points": c.TopPoints, "extra_reps": c.ExtraReps,
		"zoom_per_break": c.ZoomPerBreak, "max_breaks": c.MaxBreaks,
		"min_seg": c.MinSeg, "boot_reps": c.BootReps,
	} {
		if v < 1 {
			return c, fmt.Errorf("adapt: %s %d < 1", name, v)
		}
	}
	if c.ZoomReps < 0 {
		return c, fmt.Errorf("adapt: negative zoom_reps %d", c.ZoomReps)
	}
	return c, nil
}

// Normalize fills in defaults and validates the configuration against the
// refiner and the seed design. Run does this internally; orchestrators
// (internal/suite) call it up front so a bad adaptive stanza fails at plan
// time, before any trial runs.
func (c Config) Normalize(r Refiner, seed *doe.Design) (Config, error) {
	return c.withDefaults(r, seed)
}

// RoundSeed derives the randomization seed of one (1-based) round. Round
// schedules and bootstrap streams never share a stream across rounds, so
// editing one round's plan cannot perturb another's.
func (c Config) RoundSeed(round int) uint64 {
	return xrand.Derive(c.Seed, "adapt/round/"+strconv.Itoa(round))
}

// Analysis is the planner's statistical view of the records accumulated so
// far: the per-point CI table and the breakpoint localization brackets.
type Analysis struct {
	// Factor is the zoomed numeric factor.
	Factor string
	// Points is the per-design-point CI table, sorted by point key.
	Points []stats.PointCI
	// WorstRelWidth is the largest relative CI width in Points.
	WorstRelWidth float64
	// Brackets localizes each detected breakpoint between adjacent
	// measured factor levels. Empty when the segmented search selects no
	// breakpoints or has too few observations to run.
	Brackets []stats.Bracket
}

// Analyze computes the planner's statistics over the accumulated records.
// It is a pure function of (cfg, records): bootstrap streams derive from
// the campaign seed and the point key. cfg must be normalized (Normalize);
// Run does this automatically.
func Analyze(cfg Config, recs []core.RawRecord) (*Analysis, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("adapt: no records to analyze")
	}
	groups := make(map[string][]float64)
	var xs, ys []float64
	for _, r := range recs {
		k := r.Point.Key()
		groups[k] = append(groups[k], r.Value)
		x, err := r.Point.Float(cfg.Factor)
		if err != nil {
			continue
		}
		xs = append(xs, x)
		ys = append(ys, r.Value)
	}
	points, err := stats.PointCIs(groups, cfg.Level, cfg.BootReps, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("adapt: point CIs: %w", err)
	}
	a := &Analysis{Factor: cfg.Factor, Points: points, WorstRelWidth: stats.WorstRelWidth(points)}
	if len(xs) >= 2*cfg.MinSeg {
		// With fewer observations not even a two-segment fit is feasible;
		// the bracket list simply stays empty until the data can support
		// structure detection.
		brackets, err := stats.BreakpointBrackets(xs, ys, cfg.MaxBreaks, cfg.MinSeg)
		if err != nil {
			return nil, fmt.Errorf("adapt: breakpoint search: %w", err)
		}
		a.Brackets = brackets
	}
	return a, nil
}

// PointPlan is one variance-targeted replication allocation.
type PointPlan struct {
	// Key identifies the design point.
	Key string
	// Point is the factor combination to re-measure.
	Point doe.Point
	// RelWidth is the point's relative CI width that earned the extra
	// replicates.
	RelWidth float64
	// Extra is the number of extra replicates allocated.
	Extra int
}

// RoundPlan is the planner's output for one refinement round: the merged
// design to execute plus the provenance of every part.
type RoundPlan struct {
	// Round is the 1-based index of the round the plan produces (>= 2).
	Round int
	// Seed is the round's derived randomization seed.
	Seed uint64
	// Replicate lists the variance-targeted replication allocations.
	Replicate []PointPlan
	// Brackets are the breakpoint localization intervals being zoomed.
	Brackets []stats.Bracket
	// Levels are the refined factor levels inserted inside the brackets.
	Levels []int
	// Design is the merged, randomized design for the round.
	Design *doe.Design
}

// Stop reasons reported by PlanNext and Outcome.Stop.
const (
	// StopMaxRounds: the configured round budget is exhausted.
	StopMaxRounds = "max-rounds"
	// StopBudget: the trial budget cannot fund another round.
	StopBudget = "budget-exhausted"
	// StopConverged: every point meets the CI target and no breakpoint
	// bracket can be narrowed further.
	StopConverged = "converged"
)

// PlanNext derives the round+1 design from the analysis of all records so
// far. It returns (nil, reason, nil) when the campaign should stop. used
// is the number of trials already executed across rounds 1..round. cfg
// must be normalized (Normalize); Run does this automatically.
//
// Budget policy: zoom is funded first — localizing structure beats
// polishing noise — and trimmed level by level (highest refined level
// first) if it cannot fit; replication takes the remainder, widest point
// first. The plan never exceeds Budget-used trials.
func PlanNext(cfg Config, r Refiner, round, used int, recs []core.RawRecord, a *Analysis) (*RoundPlan, string, error) {
	if round >= cfg.Rounds {
		return nil, StopMaxRounds, nil
	}
	remaining := cfg.Budget - used
	levels := zoomLevels(cfg, a.Brackets, measuredLevels(cfg.Factor, recs))
	wide := widePoints(cfg, a.Points)
	if len(levels) == 0 && len(wide) == 0 {
		return nil, StopConverged, nil
	}
	if remaining < 1 {
		return nil, StopBudget, nil
	}
	roundSeed := cfg.RoundSeed(round + 1)

	// Zoom design, trimmed to the budget by dropping refined levels from
	// the top of the ladder.
	var zoomD *doe.Design
	usedLevels := levels
	for len(usedLevels) > 0 {
		d, err := r.Refine(roundSeed, usedLevels, cfg.ZoomReps)
		if err != nil {
			return nil, "", fmt.Errorf("adapt: round %d zoom design: %w", round+1, err)
		}
		if d.Size() <= remaining {
			zoomD = d
			break
		}
		usedLevels = usedLevels[:len(usedLevels)-1]
	}
	if zoomD != nil {
		remaining -= zoomD.Size()
	} else {
		usedLevels = nil
	}

	// Replication plan, widest point first, within what remains.
	var repD *doe.Design
	var plans []PointPlan
	if remaining > 0 && len(wide) > 0 {
		baseReps := baseRepCounts(recs)
		var reqs []doe.PointReps
		for _, p := range wide {
			if remaining < 1 {
				break
			}
			extra := cfg.ExtraReps
			if extra > remaining {
				extra = remaining
			}
			plans = append(plans, PointPlan{Key: p.Key, Point: pointOf(p.Key, recs), RelWidth: p.RelWidth, Extra: extra})
			reqs = append(reqs, doe.PointReps{Point: plans[len(plans)-1].Point, Extra: extra, BaseRep: baseReps[p.Key]})
			remaining -= extra
		}
		if len(reqs) > 0 {
			var err error
			repD, err = doe.Replicated(factorsFromRecords(recs), reqs, roundSeed)
			if err != nil {
				return nil, "", fmt.Errorf("adapt: round %d replication design: %w", round+1, err)
			}
		}
	}

	if zoomD == nil && repD == nil {
		return nil, StopBudget, nil
	}
	merged, err := doe.Merge(roundSeed, zoomD, repD)
	if err != nil {
		return nil, "", fmt.Errorf("adapt: round %d merge: %w", round+1, err)
	}
	return &RoundPlan{
		Round:     round + 1,
		Seed:      roundSeed,
		Replicate: plans,
		Brackets:  a.Brackets,
		Levels:    usedLevels,
		Design:    merged,
	}, "", nil
}

// widePoints selects the points still above the CI target, widest first
// (ties broken by key), capped at TopPoints.
func widePoints(cfg Config, points []stats.PointCI) []stats.PointCI {
	var wide []stats.PointCI
	for _, p := range points {
		if p.RelWidth > cfg.TargetRelCI {
			wide = append(wide, p)
		}
	}
	sort.SliceStable(wide, func(i, j int) bool {
		if wide[i].RelWidth != wide[j].RelWidth {
			return wide[i].RelWidth > wide[j].RelWidth
		}
		return wide[i].Key < wide[j].Key
	})
	if len(wide) > cfg.TopPoints {
		wide = wide[:cfg.TopPoints]
	}
	return wide
}

// measuredLevels returns the distinct integer values of the zoom factor
// observed so far, sorted ascending.
func measuredLevels(factor string, recs []core.RawRecord) map[int]bool {
	seen := make(map[int]bool)
	for _, r := range recs {
		v, err := r.Point.Int(factor)
		if err != nil {
			continue
		}
		seen[v] = true
	}
	return seen
}

// zoomLevels generates the refined integer levels for the next round:
// ZoomPerBreak log-spaced values strictly inside each bracket, skipping
// values already measured, deduplicated and sorted ascending.
func zoomLevels(cfg Config, brackets []stats.Bracket, measured map[int]bool) []int {
	chosen := make(map[int]bool)
	for _, b := range brackets {
		if b.Lo <= 0 || b.Hi <= b.Lo {
			continue
		}
		z := cfg.ZoomPerBreak
		ratio := b.Hi / b.Lo
		for i := 1; i <= z; i++ {
			v := int(math.Round(b.Lo * math.Pow(ratio, float64(i)/float64(z+1))))
			if float64(v) <= b.Lo {
				v = int(b.Lo) + 1
			}
			if float64(v) >= b.Hi {
				v = int(math.Ceil(b.Hi)) - 1
			}
			if float64(v) <= b.Lo || float64(v) >= b.Hi || measured[v] {
				continue
			}
			chosen[v] = true
		}
	}
	out := make([]int, 0, len(chosen))
	for v := range chosen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// baseRepCounts returns, per point key, the next free replicate number
// (max observed Rep + 1), so extra replicates extend the numbering instead
// of colliding with measured trials.
func baseRepCounts(recs []core.RawRecord) map[string]int {
	out := make(map[string]int)
	for _, r := range recs {
		k := r.Point.Key()
		if r.Rep+1 > out[k] {
			out[k] = r.Rep + 1
		}
	}
	return out
}

// pointOf returns the doe.Point of the first record matching key.
func pointOf(key string, recs []core.RawRecord) doe.Point {
	for _, r := range recs {
		if r.Point.Key() == key {
			return r.Point.Clone()
		}
	}
	return nil
}

// factorsFromRecords reconstructs the campaign's factor list from the
// observed records: names from the first record's point, levels the
// lexically sorted observed values — deterministic regardless of record
// order, and structurally identical to what the engine's Refine hook
// produces, so replicate and zoom designs merge cleanly.
func factorsFromRecords(recs []core.RawRecord) []doe.Factor {
	if len(recs) == 0 {
		return nil
	}
	names := make([]string, 0, len(recs[0].Point))
	for name := range recs[0].Point {
		names = append(names, name)
	}
	sort.Strings(names)
	levelSets := make(map[string]map[string]bool, len(names))
	for _, name := range names {
		levelSets[name] = make(map[string]bool)
	}
	for _, r := range recs {
		for _, name := range names {
			levelSets[name][r.Point.Get(name)] = true
		}
	}
	factors := make([]doe.Factor, 0, len(names))
	for _, name := range names {
		levels := make([]string, 0, len(levelSets[name]))
		for l := range levelSets[name] {
			levels = append(levels, l)
		}
		sort.Strings(levels)
		factors = append(factors, doe.NewFactor(name, levels...))
	}
	return factors
}
