package adapt_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"opaquebench/internal/adapt"
	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/membench"
	"opaquebench/internal/runner"
)

// The planted-breakpoint fixture: an i7 stride-16 sweep whose coarse size
// ladder straddles the 32 KB L1 and 256 KB L2 — the working-set
// breakpoints the planner must localize. It mirrors the checked-in
// examples/suite/adaptive.json.
const (
	fixtureSeed = 20170529
	plantedL1   = 32 << 10
)

func fixtureSpec() membench.Spec {
	return membench.Spec{
		Machine:  "i7",
		Governor: "performance",
		Sizes:    []int{4096, 16384, 65536, 262144, 1048576, 4194304},
		Strides:  []int{16},
		Reps:     6,
	}
}

func fixtureConfig() adapt.Config {
	return adapt.Config{
		Rounds: 2, Budget: 150, TargetRelCI: 0.02,
		TopPoints: 3, ExtraReps: 4, ZoomPerBreak: 4, MinSeg: 10,
		Seed: fixtureSeed,
	}
}

// runFixture drives the full adaptive campaign through the parallel runner
// at the given worker count.
func runFixture(t *testing.T, workers int) *adapt.Outcome {
	t.Helper()
	spec := fixtureSpec()
	cfg, design, err := membench.FromSpec(spec, fixtureSeed)
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	factory := membench.Factory(cfg)
	exec := func(round int, d *doe.Design) ([]core.RawRecord, error) {
		res, err := runner.Run(context.Background(), d, factory, runner.Config{Workers: workers})
		if err != nil {
			return nil, err
		}
		return res.Records, nil
	}
	out, err := adapt.Run(fixtureConfig(), spec, design, exec)
	if err != nil {
		t.Fatalf("adapt.Run (workers %d): %v", workers, err)
	}
	return out
}

// designCSV serializes a round design for byte comparison.
func designCSV(t *testing.T, d *doe.Design) string {
	t.Helper()
	var b bytes.Buffer
	if err := d.WriteCSV(&b); err != nil {
		t.Fatalf("design CSV: %v", err)
	}
	return b.String()
}

// TestScheduleByteIdenticalAcrossWorkers is the planner determinism
// guarantee: the same adaptive campaign planned at workers 1, 4 and 8
// yields byte-identical round schedules — same rendered schedule, same
// per-round design CSVs, same stop verdict.
func TestScheduleByteIdenticalAcrossWorkers(t *testing.T) {
	ref := runFixture(t, 1)
	refSchedule := ref.Schedule()
	if len(ref.Rounds) != 2 {
		t.Fatalf("reference ran %d rounds, want 2:\n%s", len(ref.Rounds), refSchedule)
	}
	for _, workers := range []int{4, 8} {
		out := runFixture(t, workers)
		if got := out.Schedule(); got != refSchedule {
			t.Errorf("workers %d: schedule differs from workers 1:\n--- got ---\n%s--- want ---\n%s", workers, got, refSchedule)
		}
		if out.Stop != ref.Stop {
			t.Errorf("workers %d: stop %q, want %q", workers, out.Stop, ref.Stop)
		}
		for i := range ref.Rounds {
			want := designCSV(t, ref.Rounds[i].Design)
			got := designCSV(t, out.Rounds[i].Design)
			if got != want {
				t.Errorf("workers %d: round %d design CSV differs from workers 1", workers, i+1)
			}
		}
	}
}

// TestBreakpointLocalizedWithinOneZoomRound is the acceptance fixture: the
// planted L1 working-set breakpoint (32 KB) must be bracketed by the
// round-1 analysis, every round-2 zoom level must fall strictly inside a
// round-1 bracket, and the round-2 analysis must re-bracket the breakpoint
// strictly inside the round-1 bracket — localization tightens by a full
// zoom round while the total trial count stays within the budget.
func TestBreakpointLocalizedWithinOneZoomRound(t *testing.T) {
	out := runFixture(t, 4)
	if out.TotalTrials > out.Config.Budget {
		t.Fatalf("spent %d trials, budget %d", out.TotalTrials, out.Config.Budget)
	}
	if len(out.Rounds) != 2 {
		t.Fatalf("ran %d rounds, want 2:\n%s", len(out.Rounds), out.Schedule())
	}

	round1 := out.Rounds[0].Analysis
	var l1 *stubBracket
	for _, br := range round1.Brackets {
		if br.Contains(plantedL1) {
			l1 = &stubBracket{lo: br.Lo, hi: br.Hi}
		}
	}
	if l1 == nil {
		t.Fatalf("round 1 found no bracket containing the planted L1 %d: %+v", plantedL1, round1.Brackets)
	}

	plan := out.Rounds[1].Plan
	if plan == nil || len(plan.Levels) == 0 {
		t.Fatalf("round 2 has no zoom levels:\n%s", out.Schedule())
	}
	for _, level := range plan.Levels {
		inside := false
		for _, br := range plan.Brackets {
			if br.Contains(float64(level)) {
				inside = true
			}
		}
		if !inside {
			t.Errorf("round-2 level %d lies outside every round-1 bracket %+v", level, plan.Brackets)
		}
	}

	final := out.Final()
	var tightened bool
	for _, br := range final.Brackets {
		if !br.Contains(plantedL1) {
			continue
		}
		if br.Lo < l1.lo || br.Hi > l1.hi {
			t.Errorf("final bracket (%g, %g) not inside round-1 bracket (%g, %g)", br.Lo, br.Hi, l1.lo, l1.hi)
			continue
		}
		if br.Hi-br.Lo < l1.hi-l1.lo {
			tightened = true
		}
	}
	if !tightened {
		t.Errorf("round 2 did not tighten the L1 bracket (%g, %g); final brackets: %+v",
			l1.lo, l1.hi, final.Brackets)
	}

	// Round-2 provenance: every trial is a zoom or replicate trial.
	for _, tr := range out.Rounds[1].Design.Trials {
		if tr.Origin != doe.OriginZoom && tr.Origin != doe.OriginReplicate {
			t.Fatalf("round-2 trial %d has origin %q", tr.Seq, tr.Origin)
		}
	}
}

type stubBracket struct{ lo, hi float64 }

// TestBudgetIsAHardCap shrinks the budget so the planner must trim: the
// total trial count can never exceed it, whatever the data says.
func TestBudgetIsAHardCap(t *testing.T) {
	spec := fixtureSpec()
	cfg, design, err := membench.FromSpec(spec, fixtureSeed)
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	factory := membench.Factory(cfg)
	exec := func(round int, d *doe.Design) ([]core.RawRecord, error) {
		res, err := runner.Run(context.Background(), d, factory, runner.Config{Workers: 4})
		if err != nil {
			return nil, err
		}
		return res.Records, nil
	}
	acfg := fixtureConfig()
	acfg.Budget = design.Size() + 13 // room for a sliver of round 2
	acfg.Rounds = 3
	out, err := adapt.Run(acfg, spec, design, exec)
	if err != nil {
		t.Fatalf("adapt.Run: %v", err)
	}
	if out.TotalTrials > acfg.Budget {
		t.Fatalf("spent %d trials, budget %d:\n%s", out.TotalTrials, acfg.Budget, out.Schedule())
	}
	if len(out.Rounds) > 1 && out.Rounds[1].Design.Size() > 13 {
		t.Errorf("round 2 has %d trials, budget allowed 13", out.Rounds[1].Design.Size())
	}
}

// flatRefiner is a synthetic engine hook over a single integer factor.
type flatRefiner struct{}

func (flatRefiner) ZoomFactor() string { return "x" }

func (flatRefiner) Refine(seed uint64, levels []int, reps int) (*doe.Design, error) {
	if reps <= 0 {
		reps = 2
	}
	return doe.FullFactorial([]doe.Factor{doe.IntFactor("x", levels...)},
		doe.Options{Replicates: reps, Seed: seed, Randomize: true, Origin: doe.OriginZoom})
}

// flatExec measures a noiseless constant: every CI collapses to a point
// and no structure exists to zoom.
func flatExec(round int, d *doe.Design) ([]core.RawRecord, error) {
	recs := make([]core.RawRecord, d.Size())
	for i, tr := range d.Trials {
		recs[i] = core.RawRecord{Seq: tr.Seq, Rep: tr.Rep, Point: tr.Point, Value: 42}
	}
	return recs, nil
}

// TestConvergedStopsEarly: a campaign whose data is already resolved stops
// with StopConverged before exhausting its round budget.
func TestConvergedStopsEarly(t *testing.T) {
	seed, err := flatRefiner{}.Refine(1, []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}, 4)
	if err != nil {
		t.Fatalf("seed design: %v", err)
	}
	out, err := adapt.Run(adapt.Config{Rounds: 5, Seed: 1}, flatRefiner{}, seed, flatExec)
	if err != nil {
		t.Fatalf("adapt.Run: %v", err)
	}
	if out.Stop != adapt.StopConverged {
		t.Fatalf("stop = %q, want %q:\n%s", out.Stop, adapt.StopConverged, out.Schedule())
	}
	if len(out.Rounds) != 1 {
		t.Errorf("converged campaign ran %d rounds, want 1", len(out.Rounds))
	}
	if w := out.Final().WorstRelWidth; w != 0 {
		t.Errorf("worst relative CI width = %g, want 0", w)
	}
}

// TestNormalizeRejectsBadConfigs: validation fires before any trial runs.
func TestNormalizeRejectsBadConfigs(t *testing.T) {
	seed, err := flatRefiner{}.Refine(1, []int{10, 20}, 3)
	if err != nil {
		t.Fatalf("seed design: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*adapt.Config)
	}{
		{"budget below seed", func(c *adapt.Config) { c.Budget = seed.Size() - 1 }},
		{"negative rounds", func(c *adapt.Config) { c.Rounds = -1 }},
		{"negative target", func(c *adapt.Config) { c.TargetRelCI = -0.1 }},
		{"negative extra reps", func(c *adapt.Config) { c.ExtraReps = -2 }},
		{"negative zoom reps", func(c *adapt.Config) { c.ZoomReps = -1 }},
	}
	for _, tc := range cases {
		cfg := adapt.Config{Seed: 1}
		tc.mut(&cfg)
		if _, err := cfg.Normalize(flatRefiner{}, seed); err == nil {
			t.Errorf("%s: Normalize accepted %+v", tc.name, cfg)
		}
	}
	if _, err := (adapt.Config{Seed: 1}).Normalize(flatRefiner{}, seed); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// TestCombinedDesignMatchesRecordStream: the combined design artifact has
// one trial per streamed record, in stream order, with provenance intact.
func TestCombinedDesignMatchesRecordStream(t *testing.T) {
	out := runFixture(t, 4)
	combined, err := out.Combined()
	if err != nil {
		t.Fatalf("Combined: %v", err)
	}
	if combined.Size() != out.TotalTrials {
		t.Fatalf("combined design has %d trials, streamed %d", combined.Size(), out.TotalTrials)
	}
	seq := 0
	origins := map[string]int{}
	for _, tr := range combined.Trials {
		if tr.Seq != seq {
			t.Fatalf("combined trial %d has Seq %d", seq, tr.Seq)
		}
		origins[tr.Origin]++
		seq++
	}
	if origins[doe.OriginZoom] == 0 || origins[doe.OriginReplicate] == 0 {
		t.Errorf("combined design lost provenance: %v", origins)
	}
	if got := fmt.Sprint(origins[""]); got != fmt.Sprint(out.Rounds[0].Design.Size()) {
		t.Errorf("seed-origin trials %s, want %s", got, fmt.Sprint(out.Rounds[0].Design.Size()))
	}
}
