package memsim

import (
	"testing"
	"testing/quick"
)

func tinyCache(t *testing.T) *Cache {
	t.Helper()
	// 4 sets x 2 ways x 16B lines = 128 B.
	c, err := NewCache(CacheConfig{Name: "T", SizeBytes: 128, Ways: 2, LineBytes: 16, FillBytesPerCycle: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheConfigSets(t *testing.T) {
	cfg := CacheConfig{SizeBytes: 32 << 10, Ways: 4, LineBytes: 32}
	if got := cfg.Sets(); got != 256 {
		t.Fatalf("sets = %d, want 256", got)
	}
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{SizeBytes: 0, Ways: 1, LineBytes: 16, FillBytesPerCycle: 1},
		{SizeBytes: 100, Ways: 3, LineBytes: 16, FillBytesPerCycle: 1}, // not divisible
		{SizeBytes: 128, Ways: 2, LineBytes: 16, FillBytesPerCycle: 0},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %+v should be invalid", cfg)
		}
	}
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := tinyCache(t)
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("second access missed")
	}
	if !c.Access(15) {
		t.Fatal("same-line access missed")
	}
	if c.Access(16) {
		t.Fatal("next line should miss")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := tinyCache(t)
	// Set 0 holds lines with line%4==0: line addresses 0, 64, 128 bytes x4...
	// Lines mapping to set 0: byte addrs 0, 64, 128 (line = addr/16; set = line%4).
	c.Access(0)   // set 0, way A
	c.Access(64)  // set 0, way B
	c.Access(0)   // touch A (now B is LRU)
	c.Access(128) // evicts B (64)
	if !c.Contains(0) {
		t.Fatal("recently used line evicted")
	}
	if c.Contains(64) {
		t.Fatal("LRU line not evicted")
	}
	if !c.Contains(128) {
		t.Fatal("new line not installed")
	}
}

func TestCacheContainsDoesNotPerturb(t *testing.T) {
	c := tinyCache(t)
	c.Access(0)
	h, m := c.Hits(), c.Misses()
	c.Contains(0)
	c.Contains(999)
	if c.Hits() != h || c.Misses() != m {
		t.Fatal("Contains changed counters")
	}
}

func TestCacheFlush(t *testing.T) {
	c := tinyCache(t)
	c.Access(0)
	c.Flush()
	if c.Contains(0) {
		t.Fatal("flush kept a line")
	}
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("flush kept counters")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	c := tinyCache(t) // 128 B total
	// Touch all 8 lines twice; second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 128; a += 16 {
			c.Access(a)
		}
	}
	if c.Misses() != 8 {
		t.Fatalf("misses = %d, want 8 (cold only)", c.Misses())
	}
	if c.Hits() != 8 {
		t.Fatalf("hits = %d, want 8", c.Hits())
	}
}

func TestCacheThrashingSet(t *testing.T) {
	c := tinyCache(t)
	// Three lines mapping to the same 2-way set, accessed round-robin,
	// must miss every time (LRU worst case).
	addrs := []uint64{0, 64, 128}
	for i := 0; i < 9; i++ {
		c.Access(addrs[i%3])
	}
	if c.Hits() != 0 {
		t.Fatalf("hits = %d, want 0 under thrashing", c.Hits())
	}
}

func TestRandomReplacementBasics(t *testing.T) {
	c, err := NewCache(CacheConfig{Name: "R", SizeBytes: 128, Ways: 2, LineBytes: 16,
		FillBytesPerCycle: 1, Replacement: RandomReplacement})
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0) {
		t.Fatal("cold hit")
	}
	if !c.Access(0) {
		t.Fatal("warm miss")
	}
	if c.Hits()+c.Misses() != 2 {
		t.Fatal("counters")
	}
}

func TestRandomReplacementSoftensThrashing(t *testing.T) {
	// Round-robin over 3 lines in a 2-way set: LRU always misses, random
	// replacement hits sometimes.
	run := func(repl Replacement) uint64 {
		c, err := NewCache(CacheConfig{Name: "R", SizeBytes: 128, Ways: 2, LineBytes: 16,
			FillBytesPerCycle: 1, Replacement: repl})
		if err != nil {
			t.Fatal(err)
		}
		addrs := []uint64{0, 64, 128} // all map to set 0
		for i := 0; i < 300; i++ {
			c.Access(addrs[i%3])
		}
		return c.Hits()
	}
	if h := run(LRU); h != 0 {
		t.Fatalf("LRU hits = %d, want 0", h)
	}
	if h := run(RandomReplacement); h == 0 {
		t.Fatal("random replacement should break the LRU worst case")
	}
}

func TestRandomReplacementDeterministic(t *testing.T) {
	run := func() uint64 {
		c, err := NewCache(CacheConfig{Name: "R", SizeBytes: 128, Ways: 2, LineBytes: 16,
			FillBytesPerCycle: 1, Replacement: RandomReplacement})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			c.Access(uint64(i*48) % 512)
		}
		return c.Hits()
	}
	if run() != run() {
		t.Fatal("random replacement not reproducible")
	}
}

func TestHierarchyDepths(t *testing.T) {
	h, err := NewHierarchy([]CacheConfig{
		{Name: "L1", SizeBytes: 128, Ways: 2, LineBytes: 16, FillBytesPerCycle: 4},
		{Name: "L2", SizeBytes: 1024, Ways: 4, LineBytes: 16, FillBytesPerCycle: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := h.Access(0); d != 2 {
		t.Fatalf("cold depth = %d, want 2 (memory)", d)
	}
	if d := h.Access(0); d != 0 {
		t.Fatalf("warm depth = %d, want 0 (L1)", d)
	}
	// Evict from L1 by filling its sets, then re-access: should hit L2.
	for a := uint64(16); a <= 256; a += 16 {
		h.Access(a)
	}
	if d := h.Access(0); d != 1 {
		t.Fatalf("depth = %d, want 1 (L2)", d)
	}
}

func TestHierarchyFillsAccounting(t *testing.T) {
	h, err := NewHierarchy([]CacheConfig{
		{Name: "L1", SizeBytes: 128, Ways: 2, LineBytes: 16, FillBytesPerCycle: 4},
		{Name: "L2", SizeBytes: 1024, Ways: 4, LineBytes: 16, FillBytesPerCycle: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0) // misses both
	h.Access(0) // L1 hit
	fills := h.Fills()
	if fills[0] != 1 || fills[1] != 1 || fills[2] != 1 {
		t.Fatalf("fills = %v", fills)
	}
	if h.Accesses() != 2 {
		t.Fatalf("accesses = %d", h.Accesses())
	}
	h.ResetStats()
	if h.Accesses() != 0 || h.Fills()[0] != 0 {
		t.Fatal("reset failed")
	}
	// Contents survived the stats reset.
	if d := h.Access(0); d != 0 {
		t.Fatalf("depth after reset = %d, want 0", d)
	}
}

func TestHierarchyEmpty(t *testing.T) {
	if _, err := NewHierarchy(nil); err == nil {
		t.Fatal("want error")
	}
}

// Property: hits + misses == total accesses for any access sequence.
func TestCacheCountersProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := &Cache{}
		var err error
		c, err = NewCache(CacheConfig{Name: "q", SizeBytes: 256, Ways: 2, LineBytes: 16, FillBytesPerCycle: 1})
		if err != nil {
			return false
		}
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		return c.Hits()+c.Misses() == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: immediately re-accessing any address is always a hit.
func TestCacheRepeatHitProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c, err := NewCache(CacheConfig{Name: "q", SizeBytes: 256, Ways: 2, LineBytes: 16, FillBytesPerCycle: 1})
		if err != nil {
			return false
		}
		for _, a := range addrs {
			c.Access(uint64(a))
			if !c.Access(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
