package memsim

// TLB models a fully-associative translation lookaside buffer with LRU
// replacement over virtual page numbers. Strided kernels are TLB-sensitive
// in a way cache geometry alone cannot explain: once the stride reaches a
// page, every access touches a new page, and a buffer spanning more pages
// than the TLB holds pays a table walk per access.
//
// The Figure 5 machine models keep the TLB disabled (Entries == 0) so the
// calibrated figure reproductions are unaffected; the TLB ablation enables
// it explicitly.
type TLB struct {
	entries int
	pages   []uint64
	age     []uint64
	tick    uint64

	hits, misses uint64
}

// NewTLB builds a TLB with the given entry count; zero entries returns nil
// (translation is free).
func NewTLB(entries int) *TLB {
	if entries <= 0 {
		return nil
	}
	return &TLB{
		entries: entries,
		pages:   make([]uint64, entries),
		age:     make([]uint64, entries),
	}
}

// Access looks up a virtual page number, installing it on a miss (LRU
// eviction), and reports whether it hit. A nil TLB always hits.
func (t *TLB) Access(page uint64) bool {
	if t == nil {
		return true
	}
	t.tick++
	lru := 0
	lruAge := t.age[0]
	for i := 0; i < t.entries; i++ {
		if t.age[i] != 0 && t.pages[i] == page {
			t.age[i] = t.tick
			t.hits++
			return true
		}
		if t.age[i] < lruAge {
			lru = i
			lruAge = t.age[i]
		}
	}
	t.pages[lru] = page
	t.age[lru] = t.tick
	t.misses++
	return false
}

// Hits returns the hit count since Reset.
func (t *TLB) Hits() uint64 {
	if t == nil {
		return 0
	}
	return t.hits
}

// Misses returns the miss count since Reset.
func (t *TLB) Misses() uint64 {
	if t == nil {
		return 0
	}
	return t.misses
}

// Reset clears counters and contents.
func (t *TLB) Reset() {
	if t == nil {
		return
	}
	for i := range t.age {
		t.age[i] = 0
	}
	t.tick = 0
	t.hits, t.misses = 0, 0
}
