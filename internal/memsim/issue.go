package memsim

import "math"

// IssueModel captures how fast the core can issue loads, as a function of
// element width and loop unrolling — the Section IV.1 factors. Without
// unrolling, each access pays loop bookkeeping (index update, compare,
// branch); with unrolling that overhead amortizes away. Elements wider than
// the widest native load split into several load micro-operations.
type IssueModel struct {
	// LoadsPerCycle is the peak load issue rate (e.g. 2 on Sandy Bridge).
	LoadsPerCycle float64
	// MaxLoadBytes is the widest single load the core supports.
	MaxLoadBytes int
	// LoopOverheadCycles is the extra per-access cost without unrolling.
	LoopOverheadCycles float64
	// UnrolledOverheadCycles is the residual per-access cost with unrolling.
	UnrolledOverheadCycles float64
	// Quirks lists configuration-specific anomalies.
	Quirks []IssueQuirk
}

// IssueQuirk is a machine-specific anomaly: a multiplier applied to the
// issue cost of one (element size, unroll) configuration. The paper observed
// one on the i7-2600: four-double vectors *with* unrolling collapse instead
// of being fastest ("we did not fully investigate the reasons behind this
// anomaly").
type IssueQuirk struct {
	ElemBytes  int
	Unroll     bool
	Multiplier float64
	Reason     string
}

// CyclesPerAccess returns the average issue cycles for one element access.
func (m IssueModel) CyclesPerAccess(elemBytes int, unroll bool) float64 {
	if elemBytes <= 0 {
		elemBytes = 4
	}
	maxLoad := m.MaxLoadBytes
	if maxLoad <= 0 {
		maxLoad = 8
	}
	lpc := m.LoadsPerCycle
	if lpc <= 0 {
		lpc = 1
	}
	uops := math.Ceil(float64(elemBytes) / float64(maxLoad))
	c := uops / lpc
	if unroll {
		c += m.UnrolledOverheadCycles
	} else {
		c += m.LoopOverheadCycles
	}
	for _, q := range m.Quirks {
		if q.ElemBytes == elemBytes && q.Unroll == unroll && q.Multiplier > 0 {
			c *= q.Multiplier
		}
	}
	return c
}

// PeakBandwidthBytesPerCycle is the demand rate of the kernel for the given
// configuration, in useful bytes per cycle, before any cache limits.
func (m IssueModel) PeakBandwidthBytesPerCycle(elemBytes int, unroll bool) float64 {
	if elemBytes <= 0 {
		elemBytes = 4
	}
	return float64(elemBytes) / m.CyclesPerAccess(elemBytes, unroll)
}
