package memsim

import (
	"strings"
	"testing"
)

func TestAllMachinesValidate(t *testing.T) {
	for name, m := range Machines() {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestMachineByName(t *testing.T) {
	m, err := MachineByName("i7")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "Core i7-2600" {
		t.Fatalf("name = %q", m.Name)
	}
	if _, err := MachineByName("cray"); err == nil {
		t.Fatal("want error for unknown machine")
	}
}

func TestFigure5Geometry(t *testing.T) {
	// Paper's Figure 5 numbers.
	op := Opteron()
	if op.L1().SizeBytes != 64<<10 || op.L1().Ways != 2 {
		t.Fatalf("Opteron L1 = %+v", op.L1())
	}
	if op.Levels[1].SizeBytes != 1<<20 || op.Levels[1].Ways != 16 {
		t.Fatalf("Opteron L2 = %+v", op.Levels[1])
	}
	p4 := PentiumIV()
	if p4.L1().SizeBytes != 16<<10 || p4.L1().Ways != 8 {
		t.Fatalf("P4 L1 = %+v", p4.L1())
	}
	i7 := CoreI7()
	if len(i7.Levels) != 3 || i7.Levels[2].SizeBytes != 8<<20 {
		t.Fatalf("i7 levels = %+v", i7.Levels)
	}
	arm := ARMSnowball()
	if arm.L1().SizeBytes != 32<<10 || arm.L1().Ways != 4 || arm.WordBits != 32 {
		t.Fatalf("ARM L1 = %+v", arm.L1())
	}
	if !arm.PagedL1 {
		t.Fatal("ARM must be flagged PagedL1")
	}
}

func TestARMPagingGeometryIsCritical(t *testing.T) {
	// The Section IV.4 condition: way size (size/ways) spans more than one
	// page, so the page color selects the set group.
	arm := ARMSnowball()
	waySize := arm.L1().SizeBytes / arm.L1().Ways
	if waySize <= arm.PageBytes {
		t.Fatalf("way size %d must exceed page size %d for the paging pitfall", waySize, arm.PageBytes)
	}
}

func TestFigure5TableRendering(t *testing.T) {
	table := Figure5Table()
	for _, want := range []string{"Opteron", "Pentium 4", "Core i7-2600", "ARMv7 Snowball", "64KB 2-way", "8MB 16-way"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	if lines := strings.Count(table, "\n"); lines != 5 {
		t.Fatalf("table has %d lines, want 5", lines)
	}
}

func TestMachineValidateCatchesBadConfigs(t *testing.T) {
	m := Opteron()
	m.Name = ""
	if err := m.Validate(); err == nil {
		t.Fatal("unnamed machine accepted")
	}
	m = Opteron()
	m.Levels = nil
	if err := m.Validate(); err == nil {
		t.Fatal("levelless machine accepted")
	}
	m = Opteron()
	m.MemFillBytesPerCycle = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero memory bandwidth accepted")
	}
	m = Opteron()
	m.PageBytes = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero page size accepted")
	}
}

func TestIssueModelWidthScaling(t *testing.T) {
	im := CoreI7().Issue
	c4 := im.CyclesPerAccess(4, false)
	c8 := im.CyclesPerAccess(8, false)
	if c4 != c8 {
		t.Fatalf("4B and 8B loads should cost the same issue slots: %v vs %v", c4, c8)
	}
	c32 := im.CyclesPerAccess(32, false)
	if c32 <= c4 {
		t.Fatalf("32B loads must cost more: %v vs %v", c32, c4)
	}
}

func TestIssueModelUnrollLowersCost(t *testing.T) {
	im := Opteron().Issue
	if im.CyclesPerAccess(4, true) >= im.CyclesPerAccess(4, false) {
		t.Fatal("unroll should lower per-access cost")
	}
}

func TestIssueModelQuirkApplies(t *testing.T) {
	im := CoreI7().Issue
	normal := im.CyclesPerAccess(32, false)
	quirky := im.CyclesPerAccess(32, true)
	if quirky < normal*5 {
		t.Fatalf("quirk multiplier not applied: %v vs %v", quirky, normal)
	}
}

func TestIssueModelDefaults(t *testing.T) {
	im := IssueModel{}
	if got := im.CyclesPerAccess(0, false); got <= 0 {
		t.Fatalf("defaulted cost = %v", got)
	}
}

func TestPeakBandwidth(t *testing.T) {
	im := CoreI7().Issue
	b4 := im.PeakBandwidthBytesPerCycle(4, false)
	b8 := im.PeakBandwidthBytesPerCycle(8, false)
	if b8 <= b4 {
		t.Fatal("wider elements must raise peak demand")
	}
}
