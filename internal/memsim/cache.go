// Package memsim simulates the memory hierarchies of the paper's Figure 5
// machines: set-associative caches with LRU replacement indexed by physical
// address, a physical-page allocator, a load-issue model capturing
// vectorization and loop unrolling, and an executor for the MultiMAPS-style
// access kernel of Figure 6.
//
// Timing follows a streaming roofline: the cycles for a kernel run are the
// maximum of the load-issue time and the line-transfer time of each cache
// interface. This captures the paper's observation that the L1-size
// performance drop is invisible while the demand rate stays below the
// downstream bandwidth (Section IV.1) while still letting conflict misses —
// e.g. from unlucky physical page placement on ARM (Section IV.4) — emerge
// from genuine set-index collisions.
package memsim

import (
	"fmt"
	"math/bits"
)

// Replacement selects the victim-choice policy of a cache level.
type Replacement int

const (
	// LRU evicts the least-recently-used way (the default; what the
	// Figure 5 machines implement).
	LRU Replacement = iota
	// RandomReplacement evicts a pseudo-random way. Provided for the
	// ablation of Section IV.4: random replacement converts the sharp,
	// placement-dependent thrashing cliff into a gradual miss gradient.
	RandomReplacement
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	// Name is a human label such as "L1" or "L2".
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// LineBytes is the cache line size.
	LineBytes int
	// FillBytesPerCycle is the bandwidth of the interface that fills this
	// level from the next one down (or from memory for the last level).
	FillBytesPerCycle float64
	// Replacement selects the victim policy (default LRU).
	Replacement Replacement
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int {
	return c.SizeBytes / (c.Ways * c.LineBytes)
}

// Validate checks geometric consistency.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("memsim: %s: non-positive geometry %+v", c.Name, c)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("memsim: %s: size %d not divisible by ways*line (%d*%d)", c.Name, c.SizeBytes, c.Ways, c.LineBytes)
	}
	if c.FillBytesPerCycle <= 0 {
		return fmt.Errorf("memsim: %s: non-positive fill bandwidth", c.Name)
	}
	return nil
}

// replRNGSeed is the initial xorshift state for RandomReplacement victim
// draws; shared by NewCache and Flush so both start identical streams.
const replRNGSeed = 0x9e3779b97f4a7c15

// Cache is one set-associative cache level with LRU replacement.
type Cache struct {
	cfg  CacheConfig
	sets int
	// tags[set*ways+way]; valid[..] mirrors it.
	tags  []uint64
	valid []bool
	dirty []bool
	age   []uint64
	tick  uint64
	// rng is a tiny xorshift state for RandomReplacement victims; it is
	// deterministic so experiments stay reproducible.
	rng uint64

	// pow2 marks a geometry whose line size and set count are both powers
	// of two (every Figure 5 machine), letting the address split run as
	// shifts and masks instead of three integer divisions — the single
	// hottest operation of a simulated campaign.
	pow2      bool
	lineShift uint
	setShift  uint
	setMask   uint64

	// epoch/setEpoch implement O(1) Flush: Flush bumps epoch, and a set
	// whose setEpoch lags is cleared lazily on first touch. Indexed-mode
	// campaigns flush the whole hierarchy before every trial, so an eager
	// sweep over all lines (131072 for an 8 MB L3) would dominate small
	// kernels.
	epoch    uint64
	setEpoch []uint64

	// mruLine/mruIdx remember the last line hit or installed, giving
	// strided-sequential kernels — which touch one line several times
	// before moving on — a same-line fast path that skips the set scan.
	// The entry is consistent by construction: evicting the MRU line
	// installs its replacement into the same slot, which updates the MRU
	// to that replacement, and a Flush bumps epoch past mruEpoch.
	mruLine  uint64
	mruIdx   int
	mruEpoch uint64

	hits, misses, writebacks uint64
}

// NewCache builds a cache from a validated config.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	n := sets * cfg.Ways
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		tags:     make([]uint64, n),
		valid:    make([]bool, n),
		dirty:    make([]bool, n),
		age:      make([]uint64, n),
		rng:      replRNGSeed,
		setEpoch: make([]uint64, sets),
		mruEpoch: ^uint64(0), // no MRU entry yet
	}
	if lb, s := uint64(cfg.LineBytes), uint64(sets); lb&(lb-1) == 0 && s&(s-1) == 0 {
		c.pow2 = true
		c.lineShift = uint(bits.TrailingZeros64(lb))
		c.setShift = uint(bits.TrailingZeros64(s))
		c.setMask = s - 1
	}
	return c, nil
}

// locate splits a physical address into its line, set and tag. The pow2
// path is bit-for-bit identical to the division path: line/2^k == line>>k
// and line%2^k == line&(2^k-1) for non-negative integers.
func (c *Cache) locate(phys uint64) (set int, tag uint64) {
	if c.pow2 {
		line := phys >> c.lineShift
		return int(line & c.setMask), line >> c.setShift
	}
	line := phys / uint64(c.cfg.LineBytes)
	return int(line % uint64(c.sets)), line / uint64(c.sets)
}

// materialize lazily applies a pending Flush to one set: if the set was
// last touched in an earlier epoch, its ways are invalidated now.
func (c *Cache) materialize(set int) {
	if c.setEpoch[set] == c.epoch {
		return
	}
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		c.valid[base+w] = false
		c.dirty[base+w] = false
	}
	c.setEpoch[set] = c.epoch
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Access looks up the line containing physical address phys; on a miss the
// line is installed, evicting the LRU way. It reports whether the access hit.
func (c *Cache) Access(phys uint64) bool {
	hit, _, _ := c.AccessRW(phys, false)
	return hit
}

// AccessRW is Access with store semantics: a write marks the line dirty
// (write-allocate on a miss). When a dirty victim is evicted, the method
// reports it together with the victim's line address so the caller can
// propagate the writeback to the next level.
func (c *Cache) AccessRW(phys uint64, write bool) (hit bool, evictedDirty bool, evictedLine uint64) {
	if c.mruHit(phys, write) {
		return true, false, 0
	}
	set, tag := c.locate(phys)
	c.materialize(set)
	base := set * c.cfg.Ways
	c.tick++
	victim := base
	victimAge := ^uint64(0)
	hasInvalid := false
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.age[i] = c.tick
			if write {
				c.dirty[i] = true
			}
			c.hits++
			c.noteMRU(phys, i)
			return true, false, 0
		}
		if !c.valid[i] && !hasInvalid {
			victim = i
			hasInvalid = true
		} else if !hasInvalid && c.age[i] < victimAge {
			victim = i
			victimAge = c.age[i]
		}
	}
	if !hasInvalid && c.cfg.Replacement == RandomReplacement {
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		victim = base + int(c.rng%uint64(c.cfg.Ways))
	}
	if c.valid[victim] && c.dirty[victim] {
		evictedDirty = true
		evictedLine = (c.tags[victim]*uint64(c.sets) + uint64(set)) * uint64(c.cfg.LineBytes)
		c.writebacks++
	}
	c.tags[victim] = tag
	c.valid[victim] = true
	c.dirty[victim] = write
	c.age[victim] = c.tick
	c.misses++
	c.noteMRU(phys, victim)
	return false, evictedDirty, evictedLine
}

// mruHit services an access to the most recently touched line without the
// set scan. The bookkeeping is the exact hit path of the scan: LRU age
// refresh, dirty marking, hit count.
func (c *Cache) mruHit(phys uint64, write bool) bool {
	if c.mruEpoch != c.epoch || phys>>c.lineShift != c.mruLine || !c.pow2 {
		return false
	}
	c.tick++
	c.age[c.mruIdx] = c.tick
	if write {
		c.dirty[c.mruIdx] = true
	}
	c.hits++
	return true
}

// noteMRU records the line just hit or installed as the MRU entry.
func (c *Cache) noteMRU(phys uint64, idx int) {
	if c.pow2 {
		c.mruLine = phys >> c.lineShift
		c.mruIdx = idx
		c.mruEpoch = c.epoch
	}
}

// Contains reports whether the line holding phys is currently cached,
// without touching LRU state or counters.
func (c *Cache) Contains(phys uint64) bool {
	set, tag := c.locate(phys)
	if c.setEpoch[set] != c.epoch {
		return false // set invalidated by a Flush not yet materialized
	}
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			return true
		}
	}
	return false
}

// Hits returns the number of hits since the last ResetStats.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of misses since the last ResetStats.
func (c *Cache) Misses() uint64 { return c.misses }

// Writebacks returns the number of dirty evictions since the last
// ResetStats.
func (c *Cache) Writebacks() uint64 { return c.writebacks }

// ResetStats clears the hit/miss/writeback counters but keeps contents.
func (c *Cache) ResetStats() { c.hits, c.misses, c.writebacks = 0, 0, 0 }

// Flush invalidates all lines and clears counters, returning the cache to
// its freshly-constructed state (including the victim-choice rng, so a
// flushed cache replays exactly like a new one). It runs in O(1): the
// invalidation is recorded as an epoch bump and applied to each set lazily
// on its next access.
func (c *Cache) Flush() {
	c.epoch++
	c.tick = 0
	c.rng = replRNGSeed
	c.ResetStats()
}

// Hierarchy is an ordered stack of cache levels (L1 first) in front of
// memory. All levels of one hierarchy share the L1 line size for fills.
type Hierarchy struct {
	levels []*Cache
	// fills[i] counts lines installed into level i since ResetStats.
	fills []uint64
	// writeTraffic[i] counts dirty lines written OUT of level i (crossing
	// the same interface the fills use).
	writeTraffic []uint64
	// memFills counts lines fetched from memory.
	memFills uint64
	accesses uint64
}

// NewHierarchy builds a hierarchy from level configs (L1 first).
func NewHierarchy(cfgs []CacheConfig) (*Hierarchy, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("memsim: hierarchy needs at least one level")
	}
	h := &Hierarchy{
		fills:        make([]uint64, len(cfgs)),
		writeTraffic: make([]uint64, len(cfgs)),
	}
	for _, cfg := range cfgs {
		c, err := NewCache(cfg)
		if err != nil {
			return nil, err
		}
		h.levels = append(h.levels, c)
	}
	return h, nil
}

// Levels returns the cache levels, L1 first.
func (h *Hierarchy) Levels() []*Cache { return h.levels }

// Access performs one load at physical address phys and returns the depth at
// which it was satisfied: 0 for L1, 1 for L2, ..., len(levels) for memory.
func (h *Hierarchy) Access(phys uint64) int {
	return h.AccessRW(phys, false)
}

// AccessRW performs one load or store. Stores are write-allocate at L1;
// dirty victims are written back into the next level (possibly cascading),
// and each writeback is charged to the interface it crosses.
func (h *Hierarchy) AccessRW(phys uint64, write bool) int {
	h.accesses++
	// Same-line L1 hits — the bulk of a strided-sequential kernel — skip
	// the level walk entirely.
	if h.levels[0].mruHit(phys, write) {
		return 0
	}
	depth := len(h.levels)
	for i, c := range h.levels {
		hit, evDirty, evLine := c.AccessRW(phys, write && i == 0)
		if evDirty {
			h.writeTraffic[i]++
			h.writeback(i+1, evLine)
		}
		if hit {
			depth = i
			break
		}
		h.fills[i]++
	}
	if depth == len(h.levels) {
		h.memFills++
	}
	return depth
}

// writeback installs a dirty line into level j (or memory when j is past
// the last level), cascading any dirty victim it displaces.
func (h *Hierarchy) writeback(j int, lineAddr uint64) {
	if j >= len(h.levels) {
		return // absorbed by memory
	}
	_, evDirty, evLine := h.levels[j].AccessRW(lineAddr, true)
	if evDirty {
		h.writeTraffic[j]++
		h.writeback(j+1, evLine)
	}
}

// WriteTraffic returns a copy of the per-level dirty-eviction counters.
func (h *Hierarchy) WriteTraffic() []uint64 {
	return append([]uint64(nil), h.writeTraffic...)
}

// Accesses returns the number of accesses since the last ResetStats.
func (h *Hierarchy) Accesses() uint64 { return h.accesses }

// Fills returns a copy of the per-level fill counters; the extra final
// element counts fetches from memory.
func (h *Hierarchy) Fills() []uint64 {
	out := make([]uint64, len(h.fills)+1)
	copy(out, h.fills)
	out[len(h.fills)] = h.memFills
	return out
}

// ResetStats clears all counters but keeps cache contents.
func (h *Hierarchy) ResetStats() {
	h.accesses = 0
	h.memFills = 0
	for i := range h.fills {
		h.fills[i] = 0
		h.writeTraffic[i] = 0
	}
	for _, c := range h.levels {
		c.ResetStats()
	}
}

// Flush invalidates every level.
func (h *Hierarchy) Flush() {
	for _, c := range h.levels {
		c.Flush()
	}
	h.ResetStats()
}
