package memsim

import "fmt"

// StreamKind selects one of the STREAM-family kernels. MultiMAPS — the
// benchmark the paper dissects — "is derived from STREAM" (Section IV);
// providing the write-bearing variants completes the ancestry: stores are
// write-allocate and dirty evictions consume interface bandwidth, so copy
// and triad stress the hierarchy roughly twice and three times as hard as
// the read-only sum kernel per element.
type StreamKind string

const (
	// StreamSum is the Figure 6 read-only kernel: s += a[stride*i].
	StreamSum StreamKind = "sum"
	// StreamCopy is a[stride*i] = b[stride*i].
	StreamCopy StreamKind = "copy"
	// StreamTriad is a[stride*i] = b[stride*i] + q*c[stride*i].
	StreamTriad StreamKind = "triad"
)

// Buffers returns the number of distinct arrays the kernel touches.
func (k StreamKind) Buffers() int {
	switch k {
	case StreamCopy:
		return 2
	case StreamTriad:
		return 3
	default:
		return 1
	}
}

// accessesPerIteration returns (reads, writes) per loop iteration.
func (k StreamKind) accessesPerIteration() (reads, writes int) {
	switch k {
	case StreamCopy:
		return 1, 1
	case StreamTriad:
		return 2, 1
	default:
		return 1, 0
	}
}

// Valid reports whether k is a known kernel.
func (k StreamKind) Valid() bool {
	switch k {
	case StreamSum, StreamCopy, StreamTriad:
		return true
	}
	return false
}

// RunStream simulates a STREAM-family kernel over the buffers (destination
// first). Timing, steady-state extrapolation and the per-traversal roofline
// follow RunKernel, with stores adding write-allocate fills and writeback
// traffic to the interfaces they cross.
func RunStream(m *Machine, h *Hierarchy, bufs []*Buffer, p KernelParams, kind StreamKind) (KernelResult, error) {
	if !kind.Valid() {
		return KernelResult{}, fmt.Errorf("memsim: unknown stream kernel %q", kind)
	}
	if len(bufs) < kind.Buffers() {
		return KernelResult{}, fmt.Errorf("memsim: %s kernel needs %d buffers, got %d", kind, kind.Buffers(), len(bufs))
	}
	for bi := 0; bi < kind.Buffers(); bi++ {
		if err := p.Validate(bufs[bi]); err != nil {
			return KernelResult{}, err
		}
	}
	iters := p.SizeBytes / p.ElemBytes / p.Stride
	strideBytes := p.Stride * p.ElemBytes
	reads, writes := kind.accessesPerIteration()
	perIter := reads + writes

	simLoops := p.NLoops
	extrapolate := false
	if p.NLoops > 3 {
		simLoops = 3
		extrapolate = true
	}

	nLevels := len(h.Levels())
	cpa := m.Issue.CyclesPerAccess(p.ElemBytes, p.Unroll)
	issuePerLoop := float64(iters*perIter) * cpa
	tlb := NewTLB(m.TLBEntries)
	pageBytes := uint64(m.PageBytes)

	// One flat backing array holds every per-traversal counter; the 2D views
	// just slice it, so a traversal costs no allocations beyond this block.
	repCycles := make([]float64, simLoops)
	repBound := make([]string, simLoops)
	perLoopTraffic := make([][]uint64, simLoops) // fills + writebacks per level
	perLoopFills := make([][]uint64, simLoops)
	perLoopTLBMisses := make([]uint64, simLoops)
	flat := make([]uint64, simLoops*(2*nLevels+1))
	for rep := 0; rep < simLoops; rep++ {
		perLoopFills[rep], flat = flat[:nLevels+1:nLevels+1], flat[nLevels+1:]
		perLoopTraffic[rep], flat = flat[:nLevels:nLevels], flat[nLevels:]
	}

	// The hot path — no TLB model and physically linear buffers, which is
	// every trial-indexed campaign — streams raw physical addresses without
	// closures or per-access translation; the generic path keeps the TLB
	// and scattered-page behaviour. Both issue the identical access
	// sequence, so counters and timing match bit for bit.
	fast := tlb == nil
	for bi := 0; bi < kind.Buffers(); bi++ {
		fast = fast && bufs[bi].linear
	}
	for rep := 0; rep < simLoops; rep++ {
		h.ResetStats()
		tlbMissesBefore := tlb.Misses()
		if fast {
			sb := uint64(strideBytes)
			switch kind {
			case StreamSum:
				phys := bufs[0].base
				for i := 0; i < iters; i++ {
					h.AccessRW(phys, false)
					phys += sb
				}
			case StreamCopy:
				src, dst := bufs[1].base, bufs[0].base
				for i := 0; i < iters; i++ {
					h.AccessRW(src, false)
					h.AccessRW(dst, true)
					src += sb
					dst += sb
				}
			case StreamTriad:
				in1, in2, dst := bufs[1].base, bufs[2].base, bufs[0].base
				for i := 0; i < iters; i++ {
					h.AccessRW(in1, false)
					h.AccessRW(in2, false)
					h.AccessRW(dst, true)
					in1 += sb
					in2 += sb
					dst += sb
				}
			}
		} else {
			off := 0
			access := func(phys uint64, write bool) {
				tlb.Access(phys / pageBytes)
				h.AccessRW(phys, write)
			}
			if tlb == nil {
				access = func(phys uint64, write bool) { h.AccessRW(phys, write) }
			}
			for i := 0; i < iters; i++ {
				switch kind {
				case StreamSum:
					access(bufs[0].Translate(off), false)
				case StreamCopy:
					access(bufs[1].Translate(off), false)
					access(bufs[0].Translate(off), true)
				case StreamTriad:
					access(bufs[1].Translate(off), false)
					access(bufs[2].Translate(off), false)
					access(bufs[0].Translate(off), true)
				}
				off += strideBytes
			}
		}
		perLoopTLBMisses[rep] = tlb.Misses() - tlbMissesBefore
		fills := perLoopFills[rep]
		copy(fills, h.fills)
		fills[nLevels] = h.memFills
		traffic := perLoopTraffic[rep]
		for i := 0; i < nLevels; i++ {
			traffic[i] = h.fills[i] + h.writeTraffic[i]
		}

		repCycles[rep] = issuePerLoop + float64(perLoopTLBMisses[rep])*m.TLBMissCycles
		repBound[rep] = "issue"
		for i := 0; i < nLevels; i++ {
			cfg := h.Levels()[i].Config()
			tc := float64(traffic[i]) * float64(cfg.LineBytes) / cfg.FillBytesPerCycle
			if tc > repCycles[rep] {
				repCycles[rep] = tc
				repBound[rep] = cfg.Name
				if i == nLevels-1 {
					repBound[rep] = "mem"
				}
			}
		}
	}

	totalFills := make([]uint64, nLevels+1)
	totalTraffic := make([]uint64, nLevels)
	var totalCycles float64
	var totalTLBMisses uint64
	for rep := 0; rep < simLoops; rep++ {
		totalTLBMisses += perLoopTLBMisses[rep]
		for i := range perLoopFills[rep] {
			totalFills[i] += perLoopFills[rep][i]
		}
		for i := range perLoopTraffic[rep] {
			totalTraffic[i] += perLoopTraffic[rep][i]
		}
		totalCycles += repCycles[rep]
	}
	if extrapolate {
		extra := uint64(p.NLoops - simLoops)
		for i := range perLoopFills[simLoops-1] {
			totalFills[i] += perLoopFills[simLoops-1][i] * extra
		}
		for i := range perLoopTraffic[simLoops-1] {
			totalTraffic[i] += perLoopTraffic[simLoops-1][i] * extra
		}
		totalCycles += repCycles[simLoops-1] * float64(extra)
		totalTLBMisses += perLoopTLBMisses[simLoops-1] * extra
	}

	res := KernelResult{
		Accesses:    uint64(iters*perIter) * uint64(p.NLoops),
		Fills:       totalFills,
		Cycles:      totalCycles,
		BoundBy:     repBound[simLoops-1],
		IssueCycles: float64(iters*perIter) * float64(p.NLoops) * cpa,
		TLBMisses:   totalTLBMisses,
	}
	res.TransferCycles = make([]float64, nLevels)
	for i := 0; i < nLevels; i++ {
		cfg := h.Levels()[i].Config()
		res.TransferCycles[i] = float64(totalTraffic[i]) * float64(cfg.LineBytes) / cfg.FillBytesPerCycle
	}
	return res, nil
}
