package memsim

import "testing"

func TestNilTLBAlwaysHits(t *testing.T) {
	var tlb *TLB
	if !tlb.Access(5) {
		t.Fatal("nil TLB missed")
	}
	if tlb.Misses() != 0 || tlb.Hits() != 0 {
		t.Fatal("nil TLB counters")
	}
	tlb.Reset() // must not panic
	if NewTLB(0) != nil {
		t.Fatal("zero entries should return nil")
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(4)
	if tlb.Access(1) {
		t.Fatal("cold hit")
	}
	if !tlb.Access(1) {
		t.Fatal("warm miss")
	}
	if tlb.Hits() != 1 || tlb.Misses() != 1 {
		t.Fatalf("counters %d/%d", tlb.Hits(), tlb.Misses())
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Access(1)
	tlb.Access(2)
	tlb.Access(1) // 2 is now LRU
	tlb.Access(3) // evicts 2
	if !tlb.Access(1) {
		t.Fatal("recently used entry evicted")
	}
	if tlb.Access(2) {
		t.Fatal("LRU entry survived")
	}
}

func TestTLBWorkingSetFits(t *testing.T) {
	tlb := NewTLB(8)
	for pass := 0; pass < 3; pass++ {
		for p := uint64(0); p < 8; p++ {
			tlb.Access(p)
		}
	}
	if tlb.Misses() != 8 {
		t.Fatalf("misses = %d, want 8 (cold only)", tlb.Misses())
	}
}

func TestTLBThrashing(t *testing.T) {
	// Cyclic access to entries+1 pages with LRU misses every time.
	tlb := NewTLB(4)
	for i := 0; i < 50; i++ {
		tlb.Access(uint64(i % 5))
	}
	if tlb.Hits() != 0 {
		t.Fatalf("hits = %d, want 0", tlb.Hits())
	}
}

func TestTLBReset(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Access(1)
	tlb.Reset()
	if tlb.Hits() != 0 || tlb.Misses() != 0 {
		t.Fatal("counters survive reset")
	}
	if tlb.Access(1) {
		t.Fatal("contents survive reset")
	}
}

func TestStreamWithTLBPenalty(t *testing.T) {
	// A page-strided traversal over more pages than the TLB holds pays a
	// walk per access; the same machine without a TLB model does not.
	base := CoreI7()
	withTLB := CoreI7()
	withTLB.TLBEntries = 64
	withTLB.TLBMissCycles = 30

	run := func(m *Machine) KernelResult {
		h, err := m.NewHierarchy()
		if err != nil {
			t.Fatal(err)
		}
		// 1 MB buffer, stride of one page: 256 pages > 64 entries.
		buf, err := NewContiguousAllocator(m.PageBytes).Alloc(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		p := KernelParams{SizeBytes: 1 << 20, Stride: 1024, ElemBytes: 4, NLoops: 20}
		res, err := RunStream(m, h, []*Buffer{buf}, p, StreamSum)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(base)
	tlbed := run(withTLB)
	if plain.TLBMisses != 0 {
		t.Fatalf("disabled TLB reported %d misses", plain.TLBMisses)
	}
	if tlbed.TLBMisses == 0 {
		t.Fatal("TLB misses missing")
	}
	if tlbed.Cycles <= plain.Cycles {
		t.Fatalf("TLB penalty missing: %v <= %v", tlbed.Cycles, plain.Cycles)
	}
}

func TestStreamTLBResidentNoPenalty(t *testing.T) {
	m := CoreI7()
	m.TLBEntries = 64
	m.TLBMissCycles = 30
	h, err := m.NewHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	// 64 KB buffer = 16 pages: fits the TLB; only cold misses.
	buf, err := NewContiguousAllocator(m.PageBytes).Alloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	p := KernelParams{SizeBytes: 64 << 10, Stride: 1024, ElemBytes: 4, NLoops: 20}
	res, err := RunStream(m, h, []*Buffer{buf}, p, StreamSum)
	if err != nil {
		t.Fatal(err)
	}
	if res.TLBMisses != 16 {
		t.Fatalf("TLB misses = %d, want 16 cold misses", res.TLBMisses)
	}
}
