package memsim

import (
	"math"
	"testing"
)

// streamBufs allocates n contiguous buffers of the given size, padded apart
// by one page each, like real STREAM implementations: power-of-two array
// spacings would otherwise put a[i], b[i] and c[i] in the same cache set and
// thrash a 2-way L1 — itself a nice demonstration of how fragile "simple"
// kernels are.
func streamBufs(t *testing.T, m *Machine, n, size int) []*Buffer {
	t.Helper()
	a := NewContiguousAllocator(m.PageBytes)
	bufs := make([]*Buffer, n)
	for i := range bufs {
		b, err := a.Alloc(size)
		if err != nil {
			t.Fatal(err)
		}
		bufs[i] = b
		if _, err := a.Alloc((i + 1) * m.PageBytes); err != nil { // stagger pad
			t.Fatal(err)
		}
	}
	return bufs
}

func streamBW(t *testing.T, m *Machine, kind StreamKind, size int) float64 {
	t.Helper()
	h, err := m.NewHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	p := KernelParams{SizeBytes: size, Stride: 1, ElemBytes: 4, NLoops: 500}
	res, err := RunStream(m, h, streamBufs(t, m, kind.Buffers(), size), p, kind)
	if err != nil {
		t.Fatal(err)
	}
	return res.BandwidthMBps(p.ElemBytes, res.Seconds(m.FreqTable.Max()))
}

func TestStreamKindBuffers(t *testing.T) {
	if StreamSum.Buffers() != 1 || StreamCopy.Buffers() != 2 || StreamTriad.Buffers() != 3 {
		t.Fatal("buffer counts")
	}
	if !StreamSum.Valid() || StreamKind("saxpy").Valid() {
		t.Fatal("validity")
	}
}

func TestRunStreamValidation(t *testing.T) {
	m := Opteron()
	h, err := m.NewHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	p := KernelParams{SizeBytes: 4096, Stride: 1, ElemBytes: 4, NLoops: 1}
	if _, err := RunStream(m, h, streamBufs(t, m, 1, 4096), p, StreamCopy); err == nil {
		t.Fatal("copy with one buffer accepted")
	}
	if _, err := RunStream(m, h, streamBufs(t, m, 1, 4096), p, "saxpy"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestStreamSumMatchesRunKernel(t *testing.T) {
	m := Opteron()
	size := 32 << 10
	p := KernelParams{SizeBytes: size, Stride: 1, ElemBytes: 4, NLoops: 50}

	h1, err := m.NewHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	bufs := streamBufs(t, m, 1, size)
	viaStream, err := RunStream(m, h1, bufs, p, StreamSum)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := m.NewHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := NewContiguousAllocator(m.PageBytes).Alloc(size)
	if err != nil {
		t.Fatal(err)
	}
	viaKernel, err := RunKernel(m, h2, buf2, p)
	if err != nil {
		t.Fatal(err)
	}
	if viaStream.Accesses != viaKernel.Accesses {
		t.Fatalf("accesses %d vs %d", viaStream.Accesses, viaKernel.Accesses)
	}
	if math.Abs(viaStream.Cycles-viaKernel.Cycles)/viaKernel.Cycles > 1e-9 {
		t.Fatalf("cycles %v vs %v", viaStream.Cycles, viaKernel.Cycles)
	}
}

func TestWriteAllocate(t *testing.T) {
	// A store miss installs the line: the following load hits.
	m := Opteron()
	h, err := m.NewHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	if d := h.AccessRW(0, true); d != len(h.Levels()) {
		t.Fatalf("store depth = %d, want memory", d)
	}
	if d := h.AccessRW(0, false); d != 0 {
		t.Fatalf("load after store depth = %d, want L1", d)
	}
}

func TestDirtyEvictionGeneratesWriteTraffic(t *testing.T) {
	// Write a working set twice the L1, traverse again: dirty evictions
	// must show up as write traffic out of L1.
	m := Opteron()
	h, err := m.NewHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	span := m.L1().SizeBytes * 2
	for pass := 0; pass < 2; pass++ {
		for off := 0; off < span; off += m.L1().LineBytes {
			h.AccessRW(uint64(off), true)
		}
	}
	wt := h.WriteTraffic()
	if wt[0] == 0 {
		t.Fatal("no writeback traffic out of L1")
	}
}

func TestCleanEvictionNoWriteTraffic(t *testing.T) {
	m := Opteron()
	h, err := m.NewHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	span := m.L1().SizeBytes * 2
	for pass := 0; pass < 2; pass++ {
		for off := 0; off < span; off += m.L1().LineBytes {
			h.AccessRW(uint64(off), false)
		}
	}
	for i, w := range h.WriteTraffic() {
		if w != 0 {
			t.Fatalf("read-only traversal produced write traffic at level %d", i)
		}
	}
}

func TestStreamKernelsL1Resident(t *testing.T) {
	// Inside L1 everything is issue-bound: per-element bandwidth identical
	// across kernels (each access costs the same issue slot).
	m := Opteron()
	size := 8 << 10
	sum := streamBW(t, m, StreamSum, size)
	cp := streamBW(t, m, StreamCopy, size)
	tr := streamBW(t, m, StreamTriad, size)
	if math.Abs(sum-cp)/sum > 0.05 || math.Abs(sum-tr)/sum > 0.05 {
		t.Fatalf("L1-resident kernels should match: sum=%v copy=%v triad=%v", sum, cp, tr)
	}
}

func TestStreamCopySlowerThanSumOutOfCache(t *testing.T) {
	// Memory-resident copy moves read + write-allocate + writeback lines:
	// its useful bandwidth must fall below the read-only kernel's.
	m := Opteron()
	size := 4 << 20
	sum := streamBW(t, m, StreamSum, size)
	cp := streamBW(t, m, StreamCopy, size)
	if cp >= sum*0.9 {
		t.Fatalf("memory-resident copy should be slower: sum=%v copy=%v", sum, cp)
	}
}

func TestStreamTriadBetweenSumAndCopy(t *testing.T) {
	// Triad moves 3 useful accesses per 1 writeback; its useful bandwidth
	// sits between copy (1:1) and sum (no writes) out of cache.
	m := Opteron()
	size := 4 << 20
	sum := streamBW(t, m, StreamSum, size)
	cp := streamBW(t, m, StreamCopy, size)
	tr := streamBW(t, m, StreamTriad, size)
	if !(cp < tr && tr < sum) {
		t.Fatalf("ordering violated: sum=%v triad=%v copy=%v", sum, tr, cp)
	}
}

func TestStreamWritebackCounted(t *testing.T) {
	m := Opteron()
	h, err := m.NewHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	size := 1 << 20 // spans L1, fits L2
	p := KernelParams{SizeBytes: size, Stride: 1, ElemBytes: 4, NLoops: 5}
	res, err := RunStream(m, h, streamBufs(t, m, 2, size), p, StreamCopy)
	if err != nil {
		t.Fatal(err)
	}
	// Transfer time across the L1 interface must exceed the pure fill
	// time, because writebacks share it.
	fillsOnly := float64(res.Fills[0]) * float64(m.L1().LineBytes) / m.L1().FillBytesPerCycle
	if res.TransferCycles[0] <= fillsOnly {
		t.Fatalf("writeback traffic missing: transfer=%v fills-only=%v", res.TransferCycles[0], fillsOnly)
	}
}
