package memsim

import (
	"testing"
	"testing/quick"
)

func TestContiguousAllocatorSequentialPages(t *testing.T) {
	a := NewContiguousAllocator(4096)
	b1, err := a.Alloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	p := b1.PhysicalPages()
	if len(p) != 2 || p[0] != 0 || p[1] != 1 {
		t.Fatalf("pages = %v", p)
	}
	b2, err := a.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if b2.PhysicalPages()[0] != 2 {
		t.Fatalf("second alloc pages = %v", b2.PhysicalPages())
	}
}

func TestContiguousTranslate(t *testing.T) {
	a := NewContiguousAllocator(4096)
	b, err := a.Alloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Translate(0); got != 0 {
		t.Fatalf("Translate(0) = %d", got)
	}
	if got := b.Translate(4097); got != 4097 {
		t.Fatalf("Translate(4097) = %d", got)
	}
}

func TestTranslateOutOfRangePanics(t *testing.T) {
	a := NewContiguousAllocator(4096)
	b, _ := a.Alloc(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Translate(4096)
}

func TestAllocInvalidSize(t *testing.T) {
	a := NewContiguousAllocator(4096)
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("want error")
	}
	p, err := NewPoolAllocator(4096, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(-1); err == nil {
		t.Fatal("want error")
	}
}

func TestPoolAllocatorReusesFreedPages(t *testing.T) {
	a, err := NewPoolAllocator(4096, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := a.Alloc(3 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	first := b1.PhysicalPages()
	a.Free(b1)
	b2, err := a.Alloc(3 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	second := b2.PhysicalPages()
	same := map[uint64]bool{}
	for _, p := range first {
		same[p] = true
	}
	for _, p := range second {
		if !same[p] {
			t.Fatalf("alloc after free used fresh page %d (first=%v second=%v)", p, first, second)
		}
	}
}

func TestPoolAllocatorSeedChangesPages(t *testing.T) {
	pagesFor := func(seed uint64) []uint64 {
		a, err := NewPoolAllocator(4096, 256, seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := a.Alloc(6 * 4096)
		if err != nil {
			t.Fatal(err)
		}
		return b.PhysicalPages()
	}
	a := pagesFor(1)
	b := pagesFor(2)
	diff := false
	for i := range a {
		if a[i] != b[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical page placement")
	}
}

func TestPoolAllocatorExhaustion(t *testing.T) {
	a, err := NewPoolAllocator(4096, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(3 * 4096); err == nil {
		t.Fatal("want exhaustion error")
	}
}

func TestPoolAllocatorBadPool(t *testing.T) {
	if _, err := NewPoolAllocator(4096, 0, 1); err == nil {
		t.Fatal("want error")
	}
}

func TestArenaAllocatorOffsetsVary(t *testing.T) {
	a, err := NewArenaAllocator(4096, 2<<20, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := a.Alloc(24 << 10)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := a.Alloc(24 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Translate(0) == b2.Translate(0) {
		t.Fatal("two arena allocations started at the same physical address")
	}
}

func TestArenaAllocatorAligned(t *testing.T) {
	a, err := NewArenaAllocator(4096, 1<<20, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		b, err := a.Alloc(10 << 10)
		if err != nil {
			t.Fatal(err)
		}
		if b.Translate(0)%8 != 0 {
			t.Fatalf("allocation %d misaligned at %d", i, b.Translate(0))
		}
	}
}

func TestArenaAllocatorTooBig(t *testing.T) {
	a, err := NewArenaAllocator(4096, 64<<10, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(128 << 10); err == nil {
		t.Fatal("want error")
	}
}

func TestArenaAllocatorBadSize(t *testing.T) {
	if _, err := NewArenaAllocator(4096, 0, 4, 1); err == nil {
		t.Fatal("want error")
	}
}

func TestAllocatorNames(t *testing.T) {
	if NewContiguousAllocator(0).Name() != "contiguous" {
		t.Fatal("contiguous name")
	}
	p, _ := NewPoolAllocator(0, 4, 1)
	if p.Name() != "pool-reuse" {
		t.Fatal("pool name")
	}
	ar, _ := NewArenaAllocator(0, 64<<10, 4, 1)
	if ar.Name() != "arena-random-offset" {
		t.Fatal("arena name")
	}
}

// Property: Translate is injective within a buffer and consistent with page
// granularity (same page offset within a 4 KB window).
func TestTranslateConsistencyProperty(t *testing.T) {
	f := func(seed uint64, rawSize uint16) bool {
		size := 4096 + int(rawSize)%65536
		a, err := NewPoolAllocator(4096, 64, seed)
		if err != nil {
			return false
		}
		b, err := a.Alloc(size)
		if err != nil {
			return false
		}
		seen := map[uint64]bool{}
		for off := 0; off < size; off += 4096 {
			p := b.Translate(off)
			if p%4096 != uint64(off%4096) {
				return false
			}
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
