package memsim

import (
	"math"
	"testing"

	"opaquebench/internal/xrand"
)

// runOn is a test helper: cold hierarchy, contiguous buffer, fixed machine.
func runOn(t *testing.T, m *Machine, p KernelParams) KernelResult {
	t.Helper()
	h, err := m.NewHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := NewContiguousAllocator(m.PageBytes).Alloc(p.SizeBytes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunKernel(m, h, buf, p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func bandwidth(t *testing.T, m *Machine, p KernelParams) float64 {
	t.Helper()
	res := runOn(t, m, p)
	return res.BandwidthMBps(p.ElemBytes, res.Seconds(m.FreqTable.Max()))
}

func TestKernelParamsValidate(t *testing.T) {
	good := KernelParams{SizeBytes: 4096, Stride: 1, ElemBytes: 4, NLoops: 1}
	if err := good.Validate(nil); err != nil {
		t.Fatal(err)
	}
	bad := []KernelParams{
		{SizeBytes: 0, Stride: 1, ElemBytes: 4, NLoops: 1},
		{SizeBytes: 4096, Stride: 0, ElemBytes: 4, NLoops: 1},
		{SizeBytes: 4096, Stride: 1, ElemBytes: 0, NLoops: 1},
		{SizeBytes: 4096, Stride: 1, ElemBytes: 4, NLoops: 0},
		{SizeBytes: 4, Stride: 4, ElemBytes: 4, NLoops: 1},
	}
	for _, p := range bad {
		if err := p.Validate(nil); err == nil {
			t.Fatalf("params %+v should be invalid", p)
		}
	}
	big := KernelParams{SizeBytes: 8192, Stride: 1, ElemBytes: 4, NLoops: 1}
	a := NewContiguousAllocator(4096)
	buf, _ := a.Alloc(4096)
	if err := big.Validate(buf); err == nil {
		t.Fatal("kernel larger than buffer should be invalid")
	}
}

func TestKernelAccessCount(t *testing.T) {
	p := KernelParams{SizeBytes: 1024, Stride: 2, ElemBytes: 4, NLoops: 3}
	// 1024/4 = 256 elements, /2 stride = 128 iterations x 3 loops.
	if got := p.Accesses(); got != 384 {
		t.Fatalf("accesses = %d, want 384", got)
	}
	res := runOn(t, Opteron(), p)
	if res.Accesses != 384 {
		t.Fatalf("simulated accesses = %d, want 384", res.Accesses)
	}
}

func TestKernelL1ResidentIssueBound(t *testing.T) {
	m := Opteron()
	p := KernelParams{SizeBytes: 16 << 10, Stride: 1, ElemBytes: 4, NLoops: 500}
	res := runOn(t, m, p)
	if res.BoundBy != "issue" {
		t.Fatalf("L1-resident kernel bound by %q, want issue", res.BoundBy)
	}
}

func TestKernelPlateausOrdered(t *testing.T) {
	// Figure 7: bandwidth forms descending plateaus L1 > L2 > memory.
	m := Opteron()
	l1 := bandwidth(t, m, KernelParams{SizeBytes: 32 << 10, Stride: 2, ElemBytes: 4, NLoops: 500})
	l2 := bandwidth(t, m, KernelParams{SizeBytes: 256 << 10, Stride: 2, ElemBytes: 4, NLoops: 500})
	mem := bandwidth(t, m, KernelParams{SizeBytes: 4 << 20, Stride: 2, ElemBytes: 4, NLoops: 100})
	if !(l1 > l2*1.2 && l2 > mem*1.2) {
		t.Fatalf("plateaus not ordered: L1=%v L2=%v mem=%v", l1, l2, mem)
	}
}

func TestKernelStrideNoEffectInsideL1(t *testing.T) {
	// Figure 7: "Strides have no impact when all accesses are done inside L1."
	m := Opteron()
	b2 := bandwidth(t, m, KernelParams{SizeBytes: 32 << 10, Stride: 2, ElemBytes: 4, NLoops: 500})
	b8 := bandwidth(t, m, KernelParams{SizeBytes: 32 << 10, Stride: 8, ElemBytes: 4, NLoops: 500})
	if math.Abs(b2-b8)/b2 > 0.05 {
		t.Fatalf("stride changed L1 bandwidth: %v vs %v", b2, b8)
	}
}

func TestKernelStrideHalvesOutsideL1(t *testing.T) {
	// Figure 7: "bandwidth is almost reduced by a factor 2" per stride
	// doubling once the array exceeds L1.
	m := Opteron()
	b2 := bandwidth(t, m, KernelParams{SizeBytes: 256 << 10, Stride: 2, ElemBytes: 4, NLoops: 500})
	b4 := bandwidth(t, m, KernelParams{SizeBytes: 256 << 10, Stride: 4, ElemBytes: 4, NLoops: 500})
	b8 := bandwidth(t, m, KernelParams{SizeBytes: 256 << 10, Stride: 8, ElemBytes: 4, NLoops: 500})
	if r := b2 / b4; r < 1.6 || r > 2.4 {
		t.Fatalf("stride 2->4 ratio = %v, want ~2", r)
	}
	if r := b4 / b8; r < 1.6 || r > 2.4 {
		t.Fatalf("stride 4->8 ratio = %v, want ~2", r)
	}
}

func TestKernelElementWidthDoublesBandwidth(t *testing.T) {
	// Section IV.1: switching int -> long long int "essentially doubles the
	// bandwidth" for L1-resident buffers.
	m := CoreI7()
	b4 := bandwidth(t, m, KernelParams{SizeBytes: 16 << 10, Stride: 1, ElemBytes: 4, NLoops: 500})
	b8 := bandwidth(t, m, KernelParams{SizeBytes: 16 << 10, Stride: 1, ElemBytes: 8, NLoops: 500})
	if r := b8 / b4; r < 1.7 || r > 2.3 {
		t.Fatalf("8B/4B ratio = %v, want ~2", r)
	}
}

func TestKernelUnrollHelps(t *testing.T) {
	m := CoreI7()
	plain := bandwidth(t, m, KernelParams{SizeBytes: 16 << 10, Stride: 1, ElemBytes: 8, NLoops: 500})
	unrolled := bandwidth(t, m, KernelParams{SizeBytes: 16 << 10, Stride: 1, ElemBytes: 8, NLoops: 500, Unroll: true})
	if unrolled <= plain*1.5 {
		t.Fatalf("unrolling should help substantially: %v vs %v", unrolled, plain)
	}
}

func TestKernelAVXUnrollAnomaly(t *testing.T) {
	// Figure 9: the widest vector WITH unrolling collapses instead of being
	// fastest.
	m := CoreI7()
	noUnroll := bandwidth(t, m, KernelParams{SizeBytes: 16 << 10, Stride: 1, ElemBytes: 32, NLoops: 500})
	unrolled := bandwidth(t, m, KernelParams{SizeBytes: 16 << 10, Stride: 1, ElemBytes: 32, NLoops: 500, Unroll: true})
	if unrolled >= noUnroll/3 {
		t.Fatalf("AVX+unroll anomaly missing: unrolled=%v noUnroll=%v", unrolled, noUnroll)
	}
}

func TestKernelNoL1DropAtLowDemand(t *testing.T) {
	// Figure 9: "for the 4B element type there is no drop at all when buffer
	// size surpasses the cache size" (without unrolling, demand stays below
	// the L2 interface bandwidth).
	m := CoreI7()
	in := bandwidth(t, m, KernelParams{SizeBytes: 16 << 10, Stride: 1, ElemBytes: 4, NLoops: 500})
	out := bandwidth(t, m, KernelParams{SizeBytes: 96 << 10, Stride: 1, ElemBytes: 4, NLoops: 500})
	if math.Abs(in-out)/in > 0.05 {
		t.Fatalf("low-demand config should show no L1 drop: in=%v out=%v", in, out)
	}
}

func TestKernelL1DropAtHighDemand(t *testing.T) {
	// ...whereas the high-demand (wide element, unrolled) configuration
	// drops visibly past L1.
	m := CoreI7()
	in := bandwidth(t, m, KernelParams{SizeBytes: 16 << 10, Stride: 1, ElemBytes: 16, NLoops: 500, Unroll: true})
	out := bandwidth(t, m, KernelParams{SizeBytes: 96 << 10, Stride: 1, ElemBytes: 16, NLoops: 500, Unroll: true})
	if out > in*0.8 {
		t.Fatalf("high-demand config should drop past L1: in=%v out=%v", in, out)
	}
}

func TestKernelExtrapolationMatchesFullSimulation(t *testing.T) {
	// nloops > 3 uses steady-state extrapolation; verify it agrees with the
	// exact simulation on a case where we can afford both.
	m := Opteron()
	p := KernelParams{SizeBytes: 8 << 10, Stride: 1, ElemBytes: 4, NLoops: 8}

	extra := runOn(t, m, p)

	// Exact: simulate 8 separate single traversals on one hierarchy.
	h, err := m.NewHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := NewContiguousAllocator(m.PageBytes).Alloc(p.SizeBytes)
	if err != nil {
		t.Fatal(err)
	}
	var totalFills uint64
	for rep := 0; rep < p.NLoops; rep++ {
		single := p
		single.NLoops = 1
		res, err := RunKernel(m, h, buf, single)
		if err != nil {
			t.Fatal(err)
		}
		totalFills += res.Fills[0]
	}
	if extra.Fills[0] != totalFills {
		t.Fatalf("extrapolated fills = %d, exact = %d", extra.Fills[0], totalFills)
	}
}

func TestKernelARMPagingUnluckyVsLucky(t *testing.T) {
	// Section IV.4: on the ARM, pool-allocated physical pages sometimes
	// oversubscribe L1 sets for buffers between 50% and 100% of L1 size.
	// Across seeds (= reruns of the experiment) both behaviours must occur.
	m := ARMSnowball()
	p := KernelParams{SizeBytes: 24 << 10, Stride: 1, ElemBytes: 4, NLoops: 500}

	sawClean, sawThrash := false, false
	for seed := uint64(0); seed < 40 && !(sawClean && sawThrash); seed++ {
		alloc, err := NewPoolAllocator(m.PageBytes, 512, seed)
		if err != nil {
			t.Fatal(err)
		}
		h, err := m.NewHierarchy()
		if err != nil {
			t.Fatal(err)
		}
		buf, err := alloc.Alloc(p.SizeBytes)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunKernel(m, h, buf, p)
		if err != nil {
			t.Fatal(err)
		}
		// Steady-state L1 fills: subtract the cold traversal estimate.
		if res.BoundBy == "issue" {
			sawClean = true
		} else {
			sawThrash = true
		}
		alloc.Free(buf)
	}
	if !sawClean || !sawThrash {
		t.Fatalf("expected both clean and thrashing runs across seeds: clean=%v thrash=%v", sawClean, sawThrash)
	}
}

func TestKernelARMContiguousAlwaysClean(t *testing.T) {
	// Contiguous (color-balanced) pages never thrash at 24 KB.
	m := ARMSnowball()
	p := KernelParams{SizeBytes: 24 << 10, Stride: 1, ElemBytes: 4, NLoops: 500}
	res := runOn(t, m, p)
	if res.BoundBy != "issue" {
		t.Fatalf("contiguous 24KB buffer should be L1-resident, bound by %q", res.BoundBy)
	}
}

func TestKernelResultSecondsAndBandwidth(t *testing.T) {
	res := KernelResult{Accesses: 1000, Cycles: 2000}
	if got := res.Seconds(1000); got != 2 {
		t.Fatalf("seconds = %v", got)
	}
	if got := res.Seconds(0); got != 0 {
		t.Fatalf("seconds at 0 Hz = %v", got)
	}
	if got := res.BandwidthMBps(4, 2); got != 4000/2.0/1e6*1.0 {
		t.Fatalf("bandwidth = %v", got)
	}
	if got := res.BandwidthMBps(4, 0); got != 0 {
		t.Fatalf("bandwidth at 0s = %v", got)
	}
}

func TestApplyNoiseDeterministic(t *testing.T) {
	m := PentiumIV()
	r1 := xrand.New(5)
	r2 := xrand.New(5)
	a := m.ApplyNoise(r1, 1.0)
	b := m.ApplyNoise(r2, 1.0)
	if a != b {
		t.Fatal("noise not deterministic per seed")
	}
	if a <= 0 {
		t.Fatalf("noisy time non-positive: %v", a)
	}
}

func TestApplyNoiseSpread(t *testing.T) {
	// The P4 profile must be visibly noisier than the i7 profile (Fig. 8).
	r := xrand.New(6)
	spread := func(m *Machine) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 300; i++ {
			v := m.ApplyNoise(r, 1.0)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi / lo
	}
	if p4, i7 := spread(PentiumIV()), spread(CoreI7()); p4 < i7*2 {
		t.Fatalf("P4 spread %v should far exceed i7 spread %v", p4, i7)
	}
}

func BenchmarkKernelL1Resident(b *testing.B) {
	m := Opteron()
	h, err := m.NewHierarchy()
	if err != nil {
		b.Fatal(err)
	}
	buf, err := NewContiguousAllocator(m.PageBytes).Alloc(32 << 10)
	if err != nil {
		b.Fatal(err)
	}
	p := KernelParams{SizeBytes: 32 << 10, Stride: 1, ElemBytes: 4, NLoops: 500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunKernel(m, h, buf, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelMemoryBound(b *testing.B) {
	m := Opteron()
	h, err := m.NewHierarchy()
	if err != nil {
		b.Fatal(err)
	}
	buf, err := NewContiguousAllocator(m.PageBytes).Alloc(4 << 20)
	if err != nil {
		b.Fatal(err)
	}
	p := KernelParams{SizeBytes: 4 << 20, Stride: 2, ElemBytes: 4, NLoops: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunKernel(m, h, buf, p); err != nil {
			b.Fatal(err)
		}
	}
}
