package memsim

import (
	"fmt"
	"math/rand/v2"

	"opaquebench/internal/xrand"
)

// KernelParams parametrizes the Figure 6 access kernel:
//
//	for rep in (1..nloops)
//	    for i in (0..size/stride)
//	        access buffer[stride*i]
//
// Size is in bytes, Stride in elements, ElemBytes is the element width
// (the int vs long long int vs vector factor of Section IV.1), and Unroll
// selects the manually unrolled loop body.
type KernelParams struct {
	SizeBytes int
	Stride    int
	ElemBytes int
	NLoops    int
	Unroll    bool
}

// Validate checks the kernel parameters against the buffer.
func (p KernelParams) Validate(buf *Buffer) error {
	if p.SizeBytes <= 0 {
		return fmt.Errorf("memsim: kernel size %d", p.SizeBytes)
	}
	if buf != nil && p.SizeBytes > buf.Size() {
		return fmt.Errorf("memsim: kernel size %d exceeds buffer %d", p.SizeBytes, buf.Size())
	}
	if p.Stride < 1 {
		return fmt.Errorf("memsim: stride %d", p.Stride)
	}
	if p.ElemBytes < 1 {
		return fmt.Errorf("memsim: element size %d", p.ElemBytes)
	}
	if p.NLoops < 1 {
		return fmt.Errorf("memsim: nloops %d", p.NLoops)
	}
	if p.SizeBytes/p.ElemBytes/p.Stride < 1 {
		return fmt.Errorf("memsim: buffer of %d bytes holds no stride-%d element", p.SizeBytes, p.Stride)
	}
	return nil
}

// Accesses returns the total number of element accesses the kernel makes.
func (p KernelParams) Accesses() uint64 {
	iters := uint64(p.SizeBytes / p.ElemBytes / p.Stride)
	return iters * uint64(p.NLoops)
}

// KernelResult is the simulated outcome of one kernel execution.
type KernelResult struct {
	// Accesses is the number of element loads performed.
	Accesses uint64
	// Cycles is the total execution time in core cycles (roofline of the
	// issue time and every transfer interface).
	Cycles float64
	// IssueCycles is the pure load-issue component.
	IssueCycles float64
	// TransferCycles[i] is the line-transfer time of the interface that
	// fills cache level i.
	TransferCycles []float64
	// Fills[i] is the number of lines installed into level i; the final
	// entry counts lines fetched from memory.
	Fills []uint64
	// BoundBy names the binding resource: "issue", a level name, or "mem".
	BoundBy string
	// TLBMisses counts translation misses (0 when the machine's TLB model
	// is disabled).
	TLBMisses uint64
}

// Seconds converts the cycle count at a fixed core frequency.
func (r KernelResult) Seconds(freqHz float64) float64 {
	if freqHz <= 0 {
		return 0
	}
	return r.Cycles / freqHz
}

// BandwidthMBps returns the kernel-visible bandwidth — useful bytes moved
// per second, the metric of Figures 7-12 — given the elapsed seconds.
func (r KernelResult) BandwidthMBps(elemBytes int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(r.Accesses) * float64(elemBytes) / seconds / 1e6
}

// RunKernel simulates the kernel on machine m against hierarchy h and buffer
// buf. The hierarchy's pre-existing contents represent whatever the previous
// measurement left behind, exactly like a real benchmark process.
//
// Loop iterations beyond the third traversal are extrapolated from the
// steady-state traversal: the access pattern repeats identically, so with
// LRU replacement the per-traversal miss pattern is periodic after warm-up.
func RunKernel(m *Machine, h *Hierarchy, buf *Buffer, p KernelParams) (KernelResult, error) {
	if err := p.Validate(buf); err != nil {
		return KernelResult{}, err
	}
	iters := p.SizeBytes / p.ElemBytes / p.Stride
	strideBytes := p.Stride * p.ElemBytes

	simLoops := p.NLoops
	extrapolate := false
	if p.NLoops > 3 {
		simLoops = 3
		extrapolate = true
	}

	nLevels := len(h.Levels())
	cpa := m.Issue.CyclesPerAccess(p.ElemBytes, p.Unroll)
	issuePerLoop := float64(iters) * cpa

	// The roofline applies per traversal: the cold traversal may be bound by
	// the memory interface while steady-state traversals are issue-bound.
	repCycles := make([]float64, simLoops)
	repBound := make([]string, simLoops)
	perLoopFills := make([][]uint64, simLoops)
	for rep := 0; rep < simLoops; rep++ {
		h.ResetStats()
		off := 0
		for i := 0; i < iters; i++ {
			h.Access(buf.Translate(off))
			off += strideBytes
		}
		perLoopFills[rep] = h.Fills()
		repCycles[rep] = issuePerLoop
		repBound[rep] = "issue"
		for i := 0; i < nLevels; i++ {
			cfg := h.Levels()[i].Config()
			tc := float64(perLoopFills[rep][i]) * float64(cfg.LineBytes) / cfg.FillBytesPerCycle
			if tc > repCycles[rep] {
				repCycles[rep] = tc
				repBound[rep] = cfg.Name
				if i == nLevels-1 {
					repBound[rep] = "mem"
				}
			}
		}
	}

	totalFills := make([]uint64, nLevels+1)
	var totalCycles float64
	for rep := 0; rep < simLoops; rep++ {
		for i := range totalFills {
			totalFills[i] += perLoopFills[rep][i]
		}
		totalCycles += repCycles[rep]
	}
	if extrapolate {
		steady := perLoopFills[simLoops-1]
		extra := uint64(p.NLoops - simLoops)
		for i := range totalFills {
			totalFills[i] += steady[i] * extra
		}
		totalCycles += repCycles[simLoops-1] * float64(extra)
	}

	res := KernelResult{
		Accesses: uint64(iters) * uint64(p.NLoops),
		Fills:    totalFills,
		Cycles:   totalCycles,
		// BoundBy reports the steady-state traversal's binding resource,
		// which is what the bandwidth plateaus of Figure 7 reflect.
		BoundBy:     repBound[simLoops-1],
		IssueCycles: float64(iters) * float64(p.NLoops) * cpa,
	}
	res.TransferCycles = make([]float64, nLevels)
	for i := 0; i < nLevels; i++ {
		cfg := h.Levels()[i].Config()
		res.TransferCycles[i] = float64(totalFills[i]) * float64(cfg.LineBytes) / cfg.FillBytesPerCycle
	}
	return res, nil
}

// ApplyNoise perturbs a simulated duration with the machine's measurement
// noise profile: multiplicative log-normal jitter plus occasional spikes.
func (m *Machine) ApplyNoise(r *rand.Rand, seconds float64) float64 {
	out := xrand.Jitter(r, seconds, m.NoiseSigma)
	if m.SpikeProb > 0 && xrand.Bernoulli(r, m.SpikeProb) {
		out *= 1 + r.Float64()*m.SpikeAmp
	}
	return out
}
