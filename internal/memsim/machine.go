package memsim

import (
	"fmt"
	"sort"
	"strings"

	"opaquebench/internal/cpusim"
)

// Machine is a full simulated processor: Figure 5 geometry plus the issue
// model, frequency table, page size, and measurement-noise profile that the
// paper's pitfalls hinge on.
type Machine struct {
	// Name is the Figure 5 processor label.
	Name string
	// WordBits is the native word size (64 or 32).
	WordBits int
	// Cores is the core count (the kernels here are single-threaded; the
	// count matters for documentation and the interference model).
	Cores int
	// FreqTable lists the available P-states, ascending.
	FreqTable cpusim.FreqTable
	// Levels are the cache levels, L1 first.
	Levels []CacheConfig
	// MemFillBytesPerCycle is the memory interface bandwidth.
	MemFillBytesPerCycle float64
	// Issue is the load-issue model.
	Issue IssueModel
	// PageBytes is the MMU page size.
	PageBytes int
	// TLBEntries is the (fully associative) TLB size; 0 disables
	// translation modelling. The Figure 5 registry keeps it disabled; the
	// TLB ablation enables it on a copy.
	TLBEntries int
	// TLBMissCycles is the page-walk cost charged per TLB miss.
	TLBMissCycles float64
	// PagedL1 marks machines whose L1 way size exceeds the page size with
	// too little associativity, making physical page placement matter
	// (the ARM of Section IV.4).
	PagedL1 bool
	// NoiseSigma is the log-normal sigma of multiplicative measurement
	// noise (timer quality, front-side-bus arbitration...).
	NoiseSigma float64
	// SpikeProb and SpikeAmp describe occasional slow outlier
	// measurements: with probability SpikeProb a measurement is stretched
	// by a factor uniformly drawn from [1, 1+SpikeAmp].
	SpikeProb, SpikeAmp float64
}

// NewHierarchy instantiates a fresh cache hierarchy for the machine.
func (m *Machine) NewHierarchy() (*Hierarchy, error) {
	return NewHierarchy(m.Levels)
}

// L1 returns the first-level cache config.
func (m *Machine) L1() CacheConfig { return m.Levels[0] }

// Validate checks the machine description.
func (m *Machine) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("memsim: unnamed machine")
	}
	if len(m.Levels) == 0 {
		return fmt.Errorf("memsim: %s: no cache levels", m.Name)
	}
	for _, l := range m.Levels {
		if err := l.Validate(); err != nil {
			return err
		}
	}
	if err := m.FreqTable.Validate(); err != nil {
		return err
	}
	if m.MemFillBytesPerCycle <= 0 {
		return fmt.Errorf("memsim: %s: non-positive memory bandwidth", m.Name)
	}
	if m.PageBytes <= 0 {
		return fmt.Errorf("memsim: %s: non-positive page size", m.Name)
	}
	return nil
}

// Opteron models the dual-core 2.8 GHz AMD Opteron of Figure 5: 64 KB 2-way
// L1, 1 MB 16-way L2, no L3. The narrow downstream bandwidths reproduce the
// pronounced plateaus of Figure 7.
func Opteron() *Machine {
	return &Machine{
		Name:      "Opteron",
		WordBits:  64,
		Cores:     2,
		FreqTable: cpusim.FreqTable{2.8e9},
		Levels: []CacheConfig{
			{Name: "L1", SizeBytes: 64 << 10, Ways: 2, LineBytes: 64, FillBytesPerCycle: 2.0},
			{Name: "L2", SizeBytes: 1 << 20, Ways: 16, LineBytes: 64, FillBytesPerCycle: 0.7},
		},
		MemFillBytesPerCycle: 0.7,
		Issue: IssueModel{
			LoadsPerCycle:          1,
			MaxLoadBytes:           8,
			LoopOverheadCycles:     2.0,
			UnrolledOverheadCycles: 0.25,
		},
		PageBytes:  4096,
		NoiseSigma: 0.015,
	}
}

// PentiumIV models the 3.2 GHz Pentium 4 of Figure 5: 16 KB 8-way L1, 2 MB
// 8-way L2. Its long pipeline and aggressive clocking make measurements far
// noisier than on the other machines (Figure 8).
func PentiumIV() *Machine {
	return &Machine{
		Name:      "Pentium 4",
		WordBits:  64,
		Cores:     2,
		FreqTable: cpusim.FreqTable{3.2e9},
		Levels: []CacheConfig{
			{Name: "L1", SizeBytes: 16 << 10, Ways: 8, LineBytes: 64, FillBytesPerCycle: 1.5},
			{Name: "L2", SizeBytes: 2 << 20, Ways: 8, LineBytes: 64, FillBytesPerCycle: 0.6},
		},
		MemFillBytesPerCycle: 0.6,
		Issue: IssueModel{
			LoadsPerCycle:          1,
			MaxLoadBytes:           4,
			LoopOverheadCycles:     1.5,
			UnrolledOverheadCycles: 0.5,
		},
		PageBytes:  4096,
		NoiseSigma: 0.18,
		SpikeProb:  0.08,
		SpikeAmp:   1.2,
	}
}

// CoreI7 models the 3.4 GHz Intel Core i7-2600 (Sandy Bridge) of Figure 5:
// per-core 32 KB 8-way L1 and 256 KB 8-way L2, shared 8 MB 16-way L3, AVX
// 256-bit loads, and an ondemand-capable frequency ladder.
func CoreI7() *Machine {
	return &Machine{
		Name:      "Core i7-2600",
		WordBits:  64,
		Cores:     8,
		FreqTable: cpusim.FreqTable{1.6e9, 2.0e9, 2.6e9, 3.0e9, 3.4e9},
		Levels: []CacheConfig{
			{Name: "L1", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, FillBytesPerCycle: 8},
			{Name: "L2", SizeBytes: 256 << 10, Ways: 8, LineBytes: 64, FillBytesPerCycle: 4},
			{Name: "L3", SizeBytes: 8 << 20, Ways: 16, LineBytes: 64, FillBytesPerCycle: 2},
		},
		MemFillBytesPerCycle: 2,
		Issue: IssueModel{
			LoadsPerCycle:          2,
			MaxLoadBytes:           16,
			LoopOverheadCycles:     2.0,
			UnrolledOverheadCycles: 0.25,
			Quirks: []IssueQuirk{{
				ElemBytes:  32,
				Unroll:     true,
				Multiplier: 18,
				Reason:     "unexplained AVX 4xfloat64 + unrolling collapse observed in Figure 9",
			}},
		},
		PageBytes:  4096,
		NoiseSigma: 0.02,
	}
}

// ARMSnowball models the 1.0 GHz ARMv7 (ST-Ericsson Snowball) of Figure 5.
// Figure 5 lists the L1 as 32 KB 2-way; the Section IV.4 analysis uses the
// set-associativity 4 of that ARM generation, which we follow because the
// paging phenomenon depends on it: way size 8 KB = two 4 KB pages, so the
// physical page color decides the set group and four same-colored pages
// oversubscribe the ways.
func ARMSnowball() *Machine {
	return &Machine{
		Name:      "ARMv7 Snowball",
		WordBits:  32,
		Cores:     2,
		FreqTable: cpusim.FreqTable{2.0e8, 4.0e8, 8.0e8, 1.0e9},
		Levels: []CacheConfig{
			{Name: "L1", SizeBytes: 32 << 10, Ways: 4, LineBytes: 32, FillBytesPerCycle: 1.0},
			{Name: "L2", SizeBytes: 512 << 10, Ways: 8, LineBytes: 32, FillBytesPerCycle: 0.4},
		},
		MemFillBytesPerCycle: 0.4,
		Issue: IssueModel{
			LoadsPerCycle:          1,
			MaxLoadBytes:           4,
			LoopOverheadCycles:     1.5,
			UnrolledOverheadCycles: 0.5,
		},
		PageBytes:  4096,
		PagedL1:    true,
		NoiseSigma: 0.01,
	}
}

// Machines returns the Figure 5 registry keyed by short name.
func Machines() map[string]*Machine {
	return map[string]*Machine{
		"opteron":  Opteron(),
		"p4":       PentiumIV(),
		"i7":       CoreI7(),
		"snowball": ARMSnowball(),
	}
}

// MachineByName returns the named machine or an error listing valid names.
func MachineByName(name string) (*Machine, error) {
	ms := Machines()
	if m, ok := ms[name]; ok {
		return m, nil
	}
	names := make([]string, 0, len(ms))
	for k := range ms {
		names = append(names, k)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("memsim: unknown machine %q (have %s)", name, strings.Join(names, ", "))
}

// Figure5Table renders the CPU characteristics table of the paper's
// Figure 5 for the simulated registry.
func Figure5Table() string {
	keys := []string{"opteron", "p4", "i7", "snowball"}
	ms := Machines()
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-9s %-6s %-9s %-22s %-22s %s\n",
		"Processor", "Freq", "Cores", "Word", "L1 cache", "L2 cache", "L3 cache")
	for _, k := range keys {
		m := ms[k]
		l3 := "-"
		if len(m.Levels) > 2 {
			l3 = cacheDesc(m.Levels[2])
		}
		fmt.Fprintf(&b, "%-16s %-9s %-6d %-9d %-22s %-22s %s\n",
			m.Name,
			fmt.Sprintf("%.1fGHz", m.FreqTable.Max()/1e9),
			m.Cores, m.WordBits,
			cacheDesc(m.Levels[0]), cacheDesc(m.Levels[1]), l3)
	}
	return b.String()
}

func cacheDesc(c CacheConfig) string {
	size := fmt.Sprintf("%dKB", c.SizeBytes>>10)
	if c.SizeBytes >= 1<<20 {
		size = fmt.Sprintf("%dMB", c.SizeBytes>>20)
	}
	return fmt.Sprintf("%s %d-way s.a.", size, c.Ways)
}
