package memsim

import (
	"fmt"

	"opaquebench/internal/xrand"
)

// This file models physical page allocation, the mechanism behind the ARM
// pitfall of Section IV.4: "operating systems allocate nonconsecutive 4 KB
// physical memory pages, choosing them randomly from a pool of available
// pages"; with a 32 KB 4-way L1 and no page coloring, an unlucky draw makes
// some cache sets oversubscribed and the drop point of the bandwidth curve
// moves between reruns — while malloc/free page reuse makes each individual
// run eerily stable.

// Buffer is an allocated virtual buffer with its virtual-to-physical page
// mapping.
type Buffer struct {
	size      int
	pageBytes int
	// pages[i] is the physical page number backing virtual page i; nil for
	// linear buffers, whose pages are synthesized from firstPage on demand.
	pages []uint64
	// offset is the byte offset of the buffer start within its first page
	// (non-zero for arena sub-buffers).
	offset int
	// linear marks a buffer backed by physically consecutive pages starting
	// at offset zero, so Translate degenerates to base+off — the contiguous
	// allocator's case, which is also the only one indexed-mode campaigns
	// use, millions of times per trial.
	linear    bool
	base      uint64 // physical address of byte 0 when linear
	firstPage uint64 // first physical page number when linear
	numPages  int    // page count when linear
}

// Size returns the buffer length in bytes.
func (b *Buffer) Size() int { return b.size }

// Translate maps a byte offset within the buffer to a physical address.
// Offsets outside [0, Size) panic: the kernel executor must never wander.
func (b *Buffer) Translate(off int) uint64 {
	if uint(off) >= uint(b.size) {
		panic(fmt.Sprintf("memsim: offset %d out of buffer [0, %d)", off, b.size))
	}
	if b.linear {
		return b.base + uint64(off)
	}
	abs := off + b.offset
	page := abs / b.pageBytes
	return b.pages[page]*uint64(b.pageBytes) + uint64(abs%b.pageBytes)
}

// PhysicalPages returns a copy of the physical page numbers backing the
// buffer, in virtual order.
func (b *Buffer) PhysicalPages() []uint64 {
	if b.linear && b.pages == nil {
		out := make([]uint64, b.numPages)
		for i := range out {
			out[i] = b.firstPage + uint64(i)
		}
		return out
	}
	return append([]uint64(nil), b.pages...)
}

// Allocator hands out physical pages for buffers.
type Allocator interface {
	// Alloc returns a buffer of the given byte size.
	Alloc(size int) (*Buffer, error)
	// Free releases the buffer's pages back to the allocator.
	Free(*Buffer)
	// Name identifies the allocation strategy for metadata capture.
	Name() string
}

// ContiguousAllocator backs each buffer with physically contiguous pages —
// the idealized behaviour implicitly assumed by naive benchmarks, and a good
// model for large-page x86 setups where set indices never collide unluckily.
type ContiguousAllocator struct {
	pageBytes int
	next      uint64
}

// NewContiguousAllocator returns an allocator with the given page size.
func NewContiguousAllocator(pageBytes int) *ContiguousAllocator {
	if pageBytes <= 0 {
		pageBytes = 4096
	}
	return &ContiguousAllocator{pageBytes: pageBytes}
}

// Name implements Allocator.
func (a *ContiguousAllocator) Name() string { return "contiguous" }

// Alloc implements Allocator.
func (a *ContiguousAllocator) Alloc(size int) (*Buffer, error) {
	b := &Buffer{}
	if err := a.AllocInto(b, size); err != nil {
		return nil, err
	}
	return b, nil
}

// AllocInto fills a caller-owned Buffer instead of allocating one, so a
// trial-indexed engine can reuse the same handful of Buffer structs across
// millions of trials. The resulting buffer is identical to Alloc's.
func (a *ContiguousAllocator) AllocInto(b *Buffer, size int) error {
	if size <= 0 {
		return fmt.Errorf("memsim: invalid buffer size %d", size)
	}
	n := (size + a.pageBytes - 1) / a.pageBytes
	*b = Buffer{
		size:      size,
		pageBytes: a.pageBytes,
		linear:    true,
		base:      a.next * uint64(a.pageBytes),
		firstPage: a.next,
		numPages:  n,
	}
	a.next += uint64(n)
	return nil
}

// SkipPages advances the allocation cursor by n pages without producing a
// buffer — equivalent to allocating and leaking an n-page pad, the STREAM
// staggering trick, minus the throwaway Buffer.
func (a *ContiguousAllocator) SkipPages(n int) {
	if n > 0 {
		a.next += uint64(n)
	}
}

// Reset rewinds the allocator to its freshly-constructed state: the next
// Alloc sees the same address space a brand-new allocator would.
func (a *ContiguousAllocator) Reset() { a.next = 0 }

// Free implements Allocator. Contiguous pages are never reused.
func (a *ContiguousAllocator) Free(*Buffer) {}

// PoolAllocator models the OS behaviour of Section IV.4: physical pages are
// drawn from a randomly-ordered pool, and freed pages go back on top of the
// free list, so a malloc/free loop keeps reusing the same physical pages —
// each experiment run sees one fixed, randomly-drawn page set.
type PoolAllocator struct {
	pageBytes int
	free      []uint64 // LIFO free list
}

// NewPoolAllocator creates a pool of poolPages physical pages in an order
// randomized by seed (a fresh boot / fresh process gets a fresh seed).
func NewPoolAllocator(pageBytes, poolPages int, seed uint64) (*PoolAllocator, error) {
	if pageBytes <= 0 {
		pageBytes = 4096
	}
	if poolPages <= 0 {
		return nil, fmt.Errorf("memsim: pool needs pages, got %d", poolPages)
	}
	pages := make([]uint64, poolPages)
	for i := range pages {
		pages[i] = uint64(i)
	}
	r := xrand.NewDerived(seed, "memsim/pool")
	xrand.Shuffle(r, len(pages), func(i, j int) { pages[i], pages[j] = pages[j], pages[i] })
	return &PoolAllocator{pageBytes: pageBytes, free: pages}, nil
}

// Name implements Allocator.
func (a *PoolAllocator) Name() string { return "pool-reuse" }

// Alloc implements Allocator.
func (a *PoolAllocator) Alloc(size int) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("memsim: invalid buffer size %d", size)
	}
	n := (size + a.pageBytes - 1) / a.pageBytes
	if n > len(a.free) {
		return nil, fmt.Errorf("memsim: pool exhausted: need %d pages, have %d", n, len(a.free))
	}
	pages := make([]uint64, n)
	copy(pages, a.free[len(a.free)-n:])
	a.free = a.free[:len(a.free)-n]
	return &Buffer{size: size, pageBytes: a.pageBytes, pages: pages}, nil
}

// Free implements Allocator: pages return to the top of the free list, so
// the next Alloc of a similar size reuses exactly the same pages.
func (a *PoolAllocator) Free(b *Buffer) {
	a.free = append(a.free, b.pages...)
}

// ArenaAllocator implements the paper's corrective technique: one large
// block is allocated up-front from the (randomly ordered) page pool, and
// each experiment buffer is carved at a random element-aligned offset within
// it. Different measurements therefore exercise different physical pages,
// turning the hidden page-placement factor into visible, honest variability.
type ArenaAllocator struct {
	pageBytes int
	arena     []uint64
	r         interface{ IntN(int) int }
	align     int
}

// NewArenaAllocator builds an arena of arenaBytes backed by random pool
// pages. align is the alignment of carved buffers (e.g. the element size).
func NewArenaAllocator(pageBytes, arenaBytes, align int, seed uint64) (*ArenaAllocator, error) {
	if pageBytes <= 0 {
		pageBytes = 4096
	}
	if align <= 0 {
		align = 1
	}
	n := (arenaBytes + pageBytes - 1) / pageBytes
	if n <= 0 {
		return nil, fmt.Errorf("memsim: invalid arena size %d", arenaBytes)
	}
	pool, err := NewPoolAllocator(pageBytes, n, seed)
	if err != nil {
		return nil, err
	}
	block, err := pool.Alloc(n * pageBytes)
	if err != nil {
		return nil, err
	}
	return &ArenaAllocator{
		pageBytes: pageBytes,
		arena:     block.pages,
		r:         xrand.NewDerived(seed, "memsim/arena-offsets"),
		align:     align,
	}, nil
}

// Name implements Allocator.
func (a *ArenaAllocator) Name() string { return "arena-random-offset" }

// Alloc implements Allocator: the buffer is a window into the arena at a
// random aligned offset.
func (a *ArenaAllocator) Alloc(size int) (*Buffer, error) {
	arenaBytes := len(a.arena) * a.pageBytes
	if size <= 0 || size > arenaBytes {
		return nil, fmt.Errorf("memsim: buffer size %d exceeds arena %d", size, arenaBytes)
	}
	maxStart := arenaBytes - size
	start := 0
	if maxStart > 0 {
		start = a.r.IntN(maxStart/a.align+1) * a.align
	}
	firstPage := start / a.pageBytes
	lastPage := (start + size - 1) / a.pageBytes
	return &Buffer{
		size:      size,
		pageBytes: a.pageBytes,
		pages:     a.arena[firstPage : lastPage+1],
		offset:    start % a.pageBytes,
	}, nil
}

// Free implements Allocator. Arena windows need no release.
func (a *ArenaAllocator) Free(*Buffer) {}
