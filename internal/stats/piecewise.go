package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Segment is one piece of a piecewise-linear model, valid on [Lo, Hi).
type Segment struct {
	Lo, Hi float64
	Fit    LinearFit
}

// PiecewiseFit is a piecewise-linear regression: independent OLS lines fitted
// between analyst-provided (or automatically searched) breakpoints. The paper
// fits such models per synchronization regime (Section V.A).
type PiecewiseFit struct {
	Segments []Segment
	// Breaks are the interior breakpoints separating the segments.
	Breaks []float64
	// SSE is the total residual sum of squares across segments.
	SSE float64
	// N is the total number of observations.
	N int
}

// Eval evaluates the piecewise model at x, using the segment whose interval
// contains x (the last segment is closed on the right).
func (p PiecewiseFit) Eval(x float64) float64 {
	for i, s := range p.Segments {
		if x < s.Hi || i == len(p.Segments)-1 {
			return s.Fit.Predict(x)
		}
	}
	return math.NaN()
}

// String renders the model one segment per line.
func (p PiecewiseFit) String() string {
	var b strings.Builder
	for _, s := range p.Segments {
		fmt.Fprintf(&b, "[%.6g, %.6g): y = %.6g + %.6g*x (R2=%.3f, n=%d)\n",
			s.Lo, s.Hi, s.Fit.Intercept, s.Fit.Slope, s.Fit.R2, s.Fit.N)
	}
	return b.String()
}

type byX struct{ x, y []float64 }

func (s byX) Len() int           { return len(s.x) }
func (s byX) Less(i, j int) bool { return s.x[i] < s.x[j] }
func (s byX) Swap(i, j int) {
	s.x[i], s.x[j] = s.x[j], s.x[i]
	s.y[i], s.y[j] = s.y[j], s.y[i]
}

// sortedCopy returns copies of x,y sorted by x.
func sortedCopy(x, y []float64) ([]float64, []float64) {
	cx := make([]float64, len(x))
	cy := make([]float64, len(y))
	copy(cx, x)
	copy(cy, y)
	sort.Sort(byX{cx, cy})
	return cx, cy
}

type byX3 struct{ x, y, w []float64 }

func (s byX3) Len() int           { return len(s.x) }
func (s byX3) Less(i, j int) bool { return s.x[i] < s.x[j] }
func (s byX3) Swap(i, j int) {
	s.x[i], s.x[j] = s.x[j], s.x[i]
	s.y[i], s.y[j] = s.y[j], s.y[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// sortedCopy3 returns copies of x,y,w sorted by x.
func sortedCopy3(x, y, w []float64) ([]float64, []float64, []float64) {
	cx := make([]float64, len(x))
	cy := make([]float64, len(y))
	cw := make([]float64, len(w))
	copy(cx, x)
	copy(cy, y)
	copy(cw, w)
	sort.Sort(byX3{cx, cy, cw})
	return cx, cy, cw
}

// FitPiecewise fits independent OLS lines on the intervals delimited by the
// supplied interior breakpoints. Breakpoints are sorted and deduplicated;
// observations with x < breaks[0] form the first segment and so on. This is
// the "supervised analysis" of Section V.A where breakpoints are manually
// provided by the analyst.
func FitPiecewise(x, y []float64, breaks []float64) (PiecewiseFit, error) {
	if len(x) != len(y) || len(x) == 0 {
		return PiecewiseFit{}, ErrShape
	}
	cx, cy := sortedCopy(x, y)
	bs := append([]float64(nil), breaks...)
	sort.Float64s(bs)
	bs = dedupFloats(bs)

	edges := make([]float64, 0, len(bs)+2)
	edges = append(edges, math.Inf(-1))
	edges = append(edges, bs...)
	edges = append(edges, math.Inf(1))

	var pf PiecewiseFit
	pf.Breaks = bs
	pf.N = len(cx)
	i := 0
	for e := 0; e+1 < len(edges); e++ {
		lo, hi := edges[e], edges[e+1]
		j := i
		for j < len(cx) && cx[j] < hi {
			j++
		}
		if j == i {
			continue // empty segment
		}
		fit, err := FitLinear(cx[i:j], cy[i:j])
		if err != nil {
			return PiecewiseFit{}, err
		}
		segLo := lo
		if math.IsInf(segLo, -1) {
			segLo = cx[i]
		}
		segHi := hi
		if math.IsInf(segHi, 1) {
			segHi = cx[len(cx)-1]
		}
		pf.Segments = append(pf.Segments, Segment{Lo: segLo, Hi: segHi, Fit: fit})
		pf.SSE += fit.SSE
		i = j
	}
	if len(pf.Segments) == 0 {
		return PiecewiseFit{}, ErrShape
	}
	return pf, nil
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, v := range xs {
		if i == 0 || v != xs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// SegmentedSearch finds the optimal placement of k interior breakpoints
// minimizing total SSE, by dynamic programming over the sorted observations.
// minSeg is the minimum number of observations per segment (>= 2).
//
// This is the neutral, assumption-free search the paper advocates in §III.3
// as an alternative to assuming a fixed number of protocol changes: the
// caller can sweep k and use SelectSegmented to pick the count by BIC.
func SegmentedSearch(x, y []float64, k, minSeg int) (PiecewiseFit, error) {
	return SegmentedSearchWeighted(x, y, nil, k, minSeg)
}

// SegmentedSearchWeighted is SegmentedSearch with per-observation weights
// for the least-squares objective. Network and memory timings have
// multiplicative noise (the spread grows with the measured value), so an
// unweighted search over-fits the large-value region; weights 1/y^2 make
// the search operate on relative error. nil weights mean all ones.
func SegmentedSearchWeighted(x, y, w []float64, k, minSeg int) (PiecewiseFit, error) {
	if len(x) != len(y) || len(x) == 0 {
		return PiecewiseFit{}, ErrShape
	}
	if w != nil && len(w) != len(x) {
		return PiecewiseFit{}, ErrShape
	}
	if minSeg < 2 {
		minSeg = 2
	}
	n := len(x)
	if (k+1)*minSeg > n {
		return PiecewiseFit{}, fmt.Errorf("stats: %d segments of >=%d points need %d observations, have %d", k+1, minSeg, (k+1)*minSeg, n)
	}
	var cx, cy, cw []float64
	if w == nil {
		cx, cy = sortedCopy(x, y)
		cw = make([]float64, n)
		for i := range cw {
			cw[i] = 1
		}
	} else {
		cx, cy, cw = sortedCopy3(x, y, w)
	}

	// Weighted prefix sums for O(1) segment SSE.
	pw := make([]float64, n+1)
	px := make([]float64, n+1)
	py := make([]float64, n+1)
	pxx := make([]float64, n+1)
	pxy := make([]float64, n+1)
	pyy := make([]float64, n+1)
	for i := 0; i < n; i++ {
		wi := cw[i]
		pw[i+1] = pw[i] + wi
		px[i+1] = px[i] + wi*cx[i]
		py[i+1] = py[i] + wi*cy[i]
		pxx[i+1] = pxx[i] + wi*cx[i]*cx[i]
		pxy[i+1] = pxy[i] + wi*cx[i]*cy[i]
		pyy[i+1] = pyy[i] + wi*cy[i]*cy[i]
	}
	// segSSE returns the weighted residual sum of squares for points [i, j).
	segSSE := func(i, j int) float64 {
		m := pw[j] - pw[i]
		if m <= 0 {
			return 0
		}
		sx := px[j] - px[i]
		sy := py[j] - py[i]
		sxx := pxx[j] - pxx[i]
		sxy := pxy[j] - pxy[i]
		syy := pyy[j] - pyy[i]
		den := m*sxx - sx*sx
		if den <= 0 {
			// Vertical stack of points: best line is mean of y.
			return syy - sy*sy/m
		}
		b := (m*sxy - sx*sy) / den
		a := (sy - b*sx) / m
		sse := syy - 2*a*sy - 2*b*sxy + m*a*a + 2*a*b*sx + b*b*sxx
		if sse < 0 {
			sse = 0
		}
		return sse
	}

	const inf = math.MaxFloat64
	// dp[s][j]: best SSE covering [0, j) with s segments; choice[s][j]: split.
	segs := k + 1
	dp := make([][]float64, segs+1)
	choice := make([][]int, segs+1)
	for s := range dp {
		dp[s] = make([]float64, n+1)
		choice[s] = make([]int, n+1)
		for j := range dp[s] {
			dp[s][j] = inf
		}
	}
	dp[0][0] = 0
	for s := 1; s <= segs; s++ {
		for j := s * minSeg; j <= n; j++ {
			for i := (s - 1) * minSeg; i+minSeg <= j; i++ {
				if dp[s-1][i] == inf {
					continue
				}
				c := dp[s-1][i] + segSSE(i, j)
				if c < dp[s][j] {
					dp[s][j] = c
					choice[s][j] = i
				}
			}
		}
	}
	if dp[segs][n] == inf {
		return PiecewiseFit{}, fmt.Errorf("stats: no feasible segmentation")
	}
	// Backtrack split indices.
	cuts := make([]int, 0, k)
	j := n
	for s := segs; s >= 1; s-- {
		i := choice[s][j]
		if s > 1 {
			cuts = append(cuts, i)
		}
		j = i
	}
	sort.Ints(cuts)
	breaks := make([]float64, 0, len(cuts))
	for _, c := range cuts {
		// Break placed midway between the adjacent observations.
		breaks = append(breaks, (cx[c-1]+cx[c])/2)
	}
	return FitPiecewise(cx, cy, breaks)
}

// SelectSegmented sweeps the number of interior breakpoints from 0 to maxK
// and returns the fit minimizing the Bayesian information criterion. It is
// the automated "neutral look regarding the number of breakpoints" of Fig. 4.
func SelectSegmented(x, y []float64, maxK, minSeg int) (PiecewiseFit, error) {
	return selectSegmented(x, y, nil, maxK, minSeg)
}

// SelectSegmentedRelative is SelectSegmented under a relative-error
// objective: observations are weighted 1/y^2, which is the right noise model
// for timing data whose spread is proportional to the measured value.
func SelectSegmentedRelative(x, y []float64, maxK, minSeg int) (PiecewiseFit, error) {
	w := make([]float64, len(y))
	for i, v := range y {
		if v == 0 {
			w[i] = 0
			continue
		}
		w[i] = 1 / (v * v)
	}
	return selectSegmented(x, y, w, maxK, minSeg)
}

func selectSegmented(x, y, w []float64, maxK, minSeg int) (PiecewiseFit, error) {
	if len(x) != len(y) || len(x) == 0 {
		return PiecewiseFit{}, ErrShape
	}
	n := float64(len(x))
	best := PiecewiseFit{}
	bestBIC := math.Inf(1)
	found := false
	for k := 0; k <= maxK; k++ {
		pf, err := SegmentedSearchWeighted(x, y, w, k, minSeg)
		if err != nil {
			continue
		}
		sse := weightedSSE(pf, x, y, w)
		if sse <= 0 {
			sse = 1e-300
		}
		params := float64(3*(k+1) - 1) // slope+intercept per segment, plus breaks
		bic := n*math.Log(sse/n) + params*math.Log(n)
		if bic < bestBIC {
			bestBIC = bic
			best = pf
			found = true
		}
	}
	if !found {
		return PiecewiseFit{}, fmt.Errorf("stats: no feasible segmentation up to k=%d", maxK)
	}
	return best, nil
}

// weightedSSE evaluates a fit's residual sum of squares under the weights
// (all ones when w is nil).
func weightedSSE(pf PiecewiseFit, x, y, w []float64) float64 {
	if w == nil {
		return pf.SSE
	}
	var sse float64
	for i := range x {
		r := y[i] - pf.Eval(x[i])
		sse += w[i] * r * r
	}
	return sse
}
