package stats

import "math"

// This file implements the three online/offline protocol-change detection
// heuristics the paper describes in Section III (NetGauge, PLogP, LoOgGP).
// They are faithful re-implementations of the opaque procedures whose
// pitfalls the paper documents: they are provided so the repository can
// demonstrate, on controlled simulated data, exactly how temporal
// perturbations and biased size grids mislead them.

// NetGaugeDetector reproduces NetGauge's online rule: while linearly
// increasing the message size, track the least-squares slope since the last
// confirmed protocol change; if a new point changes the fitted slope by more
// than Factor, wait for Confirm further measurements before declaring a
// protocol change (the paper: "waits for five new measurements before
// confirming the protocol change").
type NetGaugeDetector struct {
	// Factor is the multiplicative lsq-deviation threshold (> 1).
	Factor float64
	// Confirm is the number of consecutive confirming points required.
	Confirm int

	xs, ys       []float64
	segLo        int     // first index of the current segment
	pending      int     // consecutive suspicious points observed
	pendingStart int     // index where the suspicious run began
	baseline     float64 // lsq deviation before the suspicious run
	breaks       []float64
}

// NewNetGaugeDetector returns a detector with the given threshold factor and
// confirmation count (the paper's defaults are factor ~2 and 5 confirmations).
func NewNetGaugeDetector(factor float64, confirm int) *NetGaugeDetector {
	if factor <= 1 {
		factor = 2
	}
	if confirm < 1 {
		confirm = 5
	}
	return &NetGaugeDetector{Factor: factor, Confirm: confirm}
}

// Observe feeds one (size, time) measurement in increasing-size order and
// reports whether a protocol change was confirmed ending at this point.
//
// The rule follows the paper's description of NetGauge: fit a least-squares
// line from the point that started the current slope to the latest
// measurement; if the mean squared residual deviation grows by more than
// Factor relative to its pre-suspicion baseline, the point is suspicious, and
// Confirm consecutive suspicious points confirm a protocol change.
func (d *NetGaugeDetector) Observe(x, y float64) bool {
	d.xs = append(d.xs, x)
	d.ys = append(d.ys, y)
	n := len(d.xs)
	if n-d.segLo < 3 {
		return false
	}
	fit, err := FitLinear(d.xs[d.segLo:n], d.ys[d.segLo:n])
	if err != nil {
		return false
	}
	dev := d.normalizedDev(fit, n)
	if d.baseline == 0 {
		d.baseline = dev
		return false
	}
	if dev > d.baseline*d.Factor {
		if d.pending == 0 {
			d.pendingStart = n - 1
		}
		d.pending++
		if d.pending >= d.Confirm {
			at := d.pendingStart
			if at < 1 {
				at = 1
			}
			d.breaks = append(d.breaks, (d.xs[at-1]+d.xs[at])/2)
			d.segLo = at
			d.pending = 0
			d.baseline = 0
			return true
		}
		return false
	}
	d.pending = 0
	d.baseline = dev
	return false
}

// normalizedDev returns the mean squared residual of the segment fit with a
// scale-relative floor, so that numerically-perfect fits do not produce
// unstable deviation ratios.
func (d *NetGaugeDetector) normalizedDev(fit LinearFit, n int) float64 {
	m := float64(n - d.segLo)
	dev := fit.SSE / m
	var scale float64
	for _, v := range d.ys[d.segLo:n] {
		scale += v * v
	}
	scale /= m
	floor := scale * 1e-9
	if floor <= 0 {
		floor = 1e-300
	}
	return math.Max(dev, floor)
}

// Breaks returns the confirmed protocol-change sizes so far.
func (d *NetGaugeDetector) Breaks() []float64 {
	return append([]float64(nil), d.breaks...)
}

// PLogPProbe reproduces PLogP's adaptive probing: sizes grow in powers of
// two; after each new measurement the two previous points are extrapolated
// linearly, and if the new measurement deviates from the extrapolation by
// more than Tolerance (relative), the interval is bisected and re-measured,
// halving until the extrapolation matches or MaxAttempts is reached.
type PLogPProbe struct {
	// Tolerance is the acceptable relative deviation from extrapolation.
	Tolerance float64
	// MaxAttempts bounds the number of halvings per suspicious interval.
	MaxAttempts int
}

// PLogPResult is the outcome of a PLogP-style sweep.
type PLogPResult struct {
	// Sizes and Times are every size probed, in probe order.
	Sizes []float64
	Times []float64
	// Breaks are the sizes where extrapolation kept failing (declared
	// protocol changes).
	Breaks []float64
	// Probes counts the total number of measurements taken.
	Probes int
}

// Sweep runs the adaptive probe over power-of-two sizes in [minSize,
// maxSize], calling measure for each probed size. measure may be stochastic;
// the pitfall is precisely that a single perturbed draw steers the probe.
func (p PLogPProbe) Sweep(minSize, maxSize float64, measure func(size float64) float64) PLogPResult {
	tol := p.Tolerance
	if tol <= 0 {
		tol = 0.25
	}
	maxAtt := p.MaxAttempts
	if maxAtt < 1 {
		maxAtt = 6
	}
	var res PLogPResult
	take := func(s float64) float64 {
		t := measure(s)
		res.Sizes = append(res.Sizes, s)
		res.Times = append(res.Times, t)
		res.Probes++
		return t
	}
	type pt struct{ x, y float64 }
	var hist []pt
	for s := minSize; s <= maxSize; s *= 2 {
		y := take(s)
		if len(hist) >= 2 {
			a, b := hist[len(hist)-2], hist[len(hist)-1]
			extrap := extrapolate(a.x, a.y, b.x, b.y, s)
			if relDev(y, extrap) > tol {
				// Bisect between the latest two sizes until matched.
				loX, hiX := b.x, s
				matched := false
				for att := 0; att < maxAtt; att++ {
					mid := (loX + hiX) / 2
					my := take(mid)
					mExtrap := extrapolate(a.x, a.y, b.x, b.y, mid)
					if relDev(my, mExtrap) <= tol {
						matched = true
						loX = mid
					} else {
						hiX = mid
					}
					if hiX-loX <= 1 {
						break
					}
				}
				if !matched {
					res.Breaks = append(res.Breaks, b.x)
				} else {
					res.Breaks = append(res.Breaks, (loX+hiX)/2)
				}
			}
		}
		hist = append(hist, pt{s, y})
	}
	return res
}

func extrapolate(x1, y1, x2, y2, x float64) float64 {
	if x2 == x1 {
		return y2
	}
	slope := (y2 - y1) / (x2 - x1)
	return y2 + slope*(x-x2)
}

func relDev(y, ref float64) float64 {
	den := math.Abs(ref)
	if den == 0 {
		den = 1
	}
	return math.Abs(y-ref) / den
}

// LoOgGPNeighborhood reproduces LoOgGP's offline rule: after removing
// outliers, a point is declared a protocol change if it is the maximum of a
// local neighborhood of the given half-width (the paper notes the mechanism
// "is sensitive to the neighborhood size and the message size steps").
//
// xs must be sorted by size; the returned slice holds the sizes flagged as
// protocol changes.
func LoOgGPNeighborhood(xs, ys []float64, halfWidth int, madCutoff float64) []float64 {
	if len(xs) != len(ys) || len(xs) == 0 || halfWidth < 1 {
		return nil
	}
	keep := FilterMAD(ys, madCutoff)
	fx := Select(xs, keep)
	fy := Select(ys, keep)
	var breaks []float64
	for i := range fx {
		lo := i - halfWidth
		if lo < 0 {
			lo = 0
		}
		hi := i + halfWidth + 1
		if hi > len(fx) {
			hi = len(fx)
		}
		isMax := true
		for j := lo; j < hi; j++ {
			if j != i && fy[j] >= fy[i] {
				isMax = false
				break
			}
		}
		if isMax && i > 0 && i < len(fx)-1 {
			breaks = append(breaks, fx[i])
		}
	}
	return breaks
}
