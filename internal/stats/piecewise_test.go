package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

// twoRegime generates data with a slope change at the given break.
func twoRegime(n int, brk float64, seed uint64, noise float64) (x, y []float64) {
	r := rand.New(rand.NewPCG(seed, seed))
	x = make([]float64, n)
	y = make([]float64, n)
	for i := range x {
		x[i] = r.Float64() * 100
		if x[i] < brk {
			y[i] = 5 + 1*x[i]
		} else {
			y[i] = 5 + 1*brk + 4*(x[i]-brk)
		}
		y[i] += r.NormFloat64() * noise
	}
	return
}

func TestFitPiecewiseTwoSegments(t *testing.T) {
	x, y := twoRegime(400, 50, 1, 0.1)
	pf, err := FitPiecewise(x, y, []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(pf.Segments))
	}
	if math.Abs(pf.Segments[0].Fit.Slope-1) > 0.05 {
		t.Fatalf("seg0 slope = %v, want ~1", pf.Segments[0].Fit.Slope)
	}
	if math.Abs(pf.Segments[1].Fit.Slope-4) > 0.05 {
		t.Fatalf("seg1 slope = %v, want ~4", pf.Segments[1].Fit.Slope)
	}
}

func TestFitPiecewiseNoBreaksIsGlobal(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{0, 2, 4, 6}
	pf, err := FitPiecewise(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Segments) != 1 {
		t.Fatalf("segments = %d, want 1", len(pf.Segments))
	}
	if !almostEq(pf.Segments[0].Fit.Slope, 2, 1e-12) {
		t.Fatalf("slope = %v", pf.Segments[0].Fit.Slope)
	}
}

func TestFitPiecewiseEmptySegmentSkipped(t *testing.T) {
	x := []float64{10, 11, 12, 13}
	y := []float64{1, 2, 3, 4}
	// Break at 5 leaves the first interval empty.
	pf, err := FitPiecewise(x, y, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Segments) != 1 {
		t.Fatalf("segments = %d, want 1", len(pf.Segments))
	}
}

func TestFitPiecewiseDuplicateBreaksDeduped(t *testing.T) {
	x, y := twoRegime(200, 50, 3, 0.1)
	pf, err := FitPiecewise(x, y, []float64{50, 50, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Breaks) != 1 {
		t.Fatalf("breaks = %v, want one", pf.Breaks)
	}
	if len(pf.Segments) != 2 {
		t.Fatalf("segments = %d", len(pf.Segments))
	}
}

func TestPiecewiseEval(t *testing.T) {
	x, y := twoRegime(400, 50, 4, 0)
	pf, err := FitPiecewise(x, y, []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	if got := pf.Eval(10); math.Abs(got-15) > 0.5 {
		t.Fatalf("Eval(10) = %v, want ~15", got)
	}
	if got := pf.Eval(80); math.Abs(got-(55+4*30)) > 1 {
		t.Fatalf("Eval(80) = %v, want ~175", got)
	}
}

func TestSegmentedSearchFindsPlantedBreak(t *testing.T) {
	x, y := twoRegime(300, 60, 5, 0.2)
	pf, err := SegmentedSearch(x, y, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Breaks) != 1 {
		t.Fatalf("breaks = %v", pf.Breaks)
	}
	if math.Abs(pf.Breaks[0]-60) > 3 {
		t.Fatalf("break = %v, want ~60", pf.Breaks[0])
	}
}

func TestSegmentedSearchZeroBreaks(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5}
	y := []float64{0, 1, 2, 3, 4, 5}
	pf, err := SegmentedSearch(x, y, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Segments) != 1 {
		t.Fatalf("segments = %d", len(pf.Segments))
	}
}

func TestSegmentedSearchInfeasible(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{1, 2, 3}
	if _, err := SegmentedSearch(x, y, 3, 2); err == nil {
		t.Fatal("want infeasibility error")
	}
}

func TestSegmentedSearchReducesSSE(t *testing.T) {
	x, y := twoRegime(300, 40, 6, 0.3)
	flat, err := SegmentedSearch(x, y, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := SegmentedSearch(x, y, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if seg.SSE > flat.SSE {
		t.Fatalf("adding a break increased SSE: %v > %v", seg.SSE, flat.SSE)
	}
	if seg.SSE > flat.SSE*0.2 {
		t.Fatalf("break should cut SSE drastically: %v vs %v", seg.SSE, flat.SSE)
	}
}

func TestSelectSegmentedPicksOneBreak(t *testing.T) {
	x, y := twoRegime(300, 55, 8, 0.2)
	pf, err := SelectSegmented(x, y, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Breaks) != 1 {
		t.Fatalf("BIC chose %d breaks (%v), want 1", len(pf.Breaks), pf.Breaks)
	}
	if math.Abs(pf.Breaks[0]-55) > 3 {
		t.Fatalf("break = %v, want ~55", pf.Breaks[0])
	}
}

func TestSelectSegmentedLinearDataNoBreak(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 11))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = 2 + 3*x[i] + r.NormFloat64()
	}
	pf, err := SelectSegmented(x, y, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Breaks) != 0 {
		t.Fatalf("BIC chose %d breaks on linear data (%v), want 0", len(pf.Breaks), pf.Breaks)
	}
}

func TestSelectSegmentedThreeRegimes(t *testing.T) {
	// Three plateaus, like a memory-hierarchy bandwidth curve.
	r := rand.New(rand.NewPCG(13, 13))
	var x, y []float64
	for i := 0; i < 600; i++ {
		v := r.Float64() * 300
		var level float64
		switch {
		case v < 100:
			level = 1000
		case v < 200:
			level = 500
		default:
			level = 100
		}
		x = append(x, v)
		y = append(y, level+r.NormFloat64()*10)
	}
	pf, err := SelectSegmented(x, y, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Breaks) != 2 {
		t.Fatalf("BIC chose %d breaks (%v), want 2", len(pf.Breaks), pf.Breaks)
	}
	if math.Abs(pf.Breaks[0]-100) > 10 || math.Abs(pf.Breaks[1]-200) > 10 {
		t.Fatalf("breaks = %v, want ~[100, 200]", pf.Breaks)
	}
}

func TestPiecewiseString(t *testing.T) {
	x, y := twoRegime(100, 50, 14, 0.1)
	pf, err := FitPiecewise(x, y, []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	if s := pf.String(); len(s) == 0 {
		t.Fatal("empty String()")
	}
}

func BenchmarkSegmentedSearch(b *testing.B) {
	x, y := twoRegime(400, 50, 2, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SegmentedSearch(x, y, 2, 5); err != nil {
			b.Fatal(err)
		}
	}
}
