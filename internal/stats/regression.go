package stats

import (
	"errors"
	"math"
)

// ErrShape is returned when paired samples have mismatched or insufficient
// lengths.
var ErrShape = errors.New("stats: mismatched or insufficient sample shape")

// LinearFit is an ordinary-least-squares fit y = Intercept + Slope*x.
type LinearFit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
	// SSE is the residual sum of squares.
	SSE float64
	// ResidualSE is the residual standard error sqrt(SSE/(n-2)).
	ResidualSE float64
	// N is the number of observations.
	N int
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 {
	return f.Intercept + f.Slope*x
}

// FitLinear fits y = a + b*x by ordinary least squares.
// With a single observation (or zero x-variance) the slope is zero and the
// intercept is the mean of y, mirroring a degenerate-segment fit.
func FitLinear(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) || len(x) == 0 {
		return LinearFit{}, ErrShape
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	fit := LinearFit{N: len(x)}
	denom := n*sxx - sx*sx
	if denom == 0 {
		fit.Slope = 0
		fit.Intercept = sy / n
	} else {
		fit.Slope = (n*sxy - sx*sy) / denom
		fit.Intercept = (sy - fit.Slope*sx) / n
	}
	var sse, sst float64
	ym := sy / n
	for i := range x {
		r := y[i] - fit.Predict(x[i])
		sse += r * r
		d := y[i] - ym
		sst += d * d
	}
	fit.SSE = sse
	if sst > 0 {
		fit.R2 = 1 - sse/sst
	} else {
		fit.R2 = 1
	}
	if len(x) > 2 {
		fit.ResidualSE = math.Sqrt(sse / (n - 2))
	}
	return fit, nil
}

// Residuals returns y[i] - f.Predict(x[i]) for each observation.
func (f LinearFit) Residuals(x, y []float64) []float64 {
	rs := make([]float64, len(x))
	for i := range x {
		rs[i] = y[i] - f.Predict(x[i])
	}
	return rs
}

// TheilSen fits a robust line using the median of pairwise slopes and the
// median of the implied intercepts. It tolerates heavy-tailed noise such as
// the temporal perturbations of Section III.1.
func TheilSen(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) || len(x) < 2 {
		return LinearFit{}, ErrShape
	}
	slopes := make([]float64, 0, len(x)*(len(x)-1)/2)
	for i := 0; i < len(x); i++ {
		for j := i + 1; j < len(x); j++ {
			dx := x[j] - x[i]
			if dx == 0 {
				continue
			}
			slopes = append(slopes, (y[j]-y[i])/dx)
		}
	}
	if len(slopes) == 0 {
		return LinearFit{}, ErrShape
	}
	slope := Median(slopes)
	inters := make([]float64, len(x))
	for i := range x {
		inters[i] = y[i] - slope*x[i]
	}
	fit := LinearFit{Slope: slope, Intercept: Median(inters), N: len(x)}
	var sse, sst float64
	ym := Mean(y)
	for i := range x {
		r := y[i] - fit.Predict(x[i])
		sse += r * r
		d := y[i] - ym
		sst += d * d
	}
	fit.SSE = sse
	if sst > 0 {
		fit.R2 = 1 - sse/sst
	}
	if len(x) > 2 {
		fit.ResidualSE = math.Sqrt(sse / float64(len(x)-2))
	}
	return fit, nil
}

// Pearson returns the Pearson correlation coefficient of the paired samples.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, ErrShape
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, ErrShape
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
