package stats

import (
	"math"

	"opaquebench/internal/xrand"
)

// CI is a two-sided confidence interval.
type CI struct {
	Lo, Hi float64
	// Level is the nominal coverage, e.g. 0.95.
	Level float64
}

// Contains reports whether v lies in the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// Width returns Hi - Lo.
func (c CI) Width() float64 { return c.Hi - c.Lo }

// bootstrapDefaults normalizes the shared bootstrap knobs.
func bootstrapDefaults(level float64, reps int) (float64, int) {
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	if reps < 10 {
		reps = 1000
	}
	return level, reps
}

// percentileCI extracts the two-sided percentile interval from a set of
// bootstrap estimates.
func percentileCI(estimates []float64, level float64) CI {
	alpha := (1 - level) / 2
	return CI{
		Lo:    Quantile(estimates, alpha),
		Hi:    Quantile(estimates, 1-alpha),
		Level: level,
	}
}

// BootstrapCI estimates a percentile-bootstrap confidence interval for an
// arbitrary statistic. Keeping the raw data (stage 3 of the methodology)
// is what makes resampling possible at all — an aggregate-only report
// cannot be bootstrapped.
func BootstrapCI(xs []float64, stat func([]float64) float64, level float64, reps int, seed uint64) (CI, error) {
	if len(xs) == 0 {
		return CI{}, ErrEmpty
	}
	level, reps = bootstrapDefaults(level, reps)
	r := xrand.NewDerived(seed, "stats/bootstrap")
	resample := make([]float64, len(xs))
	estimates := make([]float64, reps)
	for b := 0; b < reps; b++ {
		for i := range resample {
			resample[i] = xs[r.IntN(len(xs))]
		}
		estimates[b] = stat(resample)
	}
	return percentileCI(estimates, level), nil
}

// ShiftCI estimates a percentile-bootstrap confidence interval for the
// location shift stat(after) - stat(before) between two independent
// samples. It is the statistical core of the differential campaign
// comparator (internal/compare): a CI that excludes zero is evidence the
// candidate run genuinely moved the metric, not just resampling noise.
//
// Degenerate samples stay degenerate: with n=1 or all-tied values on both
// sides every resample reproduces the originals, so the interval collapses
// to a point instead of going NaN.
func ShiftCI(before, after []float64, stat func([]float64) float64, level float64, reps int, seed uint64) (CI, error) {
	if len(before) == 0 || len(after) == 0 {
		return CI{}, ErrEmpty
	}
	level, reps = bootstrapDefaults(level, reps)
	r := xrand.NewDerived(seed, "stats/bootstrap-shift")
	ra := make([]float64, len(before))
	rb := make([]float64, len(after))
	estimates := make([]float64, reps)
	for b := 0; b < reps; b++ {
		for i := range ra {
			ra[i] = before[r.IntN(len(before))]
		}
		for i := range rb {
			rb[i] = after[r.IntN(len(after))]
		}
		estimates[b] = stat(rb) - stat(ra)
	}
	return percentileCI(estimates, level), nil
}

// MedianShiftCI is ShiftCI for the shift of medians — robust against the
// multimodal and heavy-tailed value distributions benchmark campaigns
// produce, where a mean shift can be driven entirely by a few outliers.
func MedianShiftCI(before, after []float64, level float64, reps int, seed uint64) (CI, error) {
	return ShiftCI(before, after, Median, level, reps, seed)
}

// MeanCI is BootstrapCI for the mean.
func MeanCI(xs []float64, level float64, reps int, seed uint64) (CI, error) {
	return BootstrapCI(xs, Mean, level, reps, seed)
}

// MedianCI is BootstrapCI for the median.
func MedianCI(xs []float64, level float64, reps int, seed uint64) (CI, error) {
	return BootstrapCI(xs, Median, level, reps, seed)
}

// Autocorr returns the lag-k sample autocorrelation of xs in its given
// (execution) order. Under a properly randomized design the values should
// be exchangeable; significant positive lag-1 autocorrelation flags a
// temporal effect — a perturbation window, a governor ramp, an intruding
// process — exactly the anomalies Sections III.1 and IV.3 document.
func Autocorr(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 1 || n <= lag+1 {
		return math.NaN()
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
		if i+lag < n {
			num += d * (xs[i+lag] - m)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// TemporalAnomaly reports whether the sequence-ordered values show
// significant lag-1 autocorrelation, using the conventional 2/sqrt(n)
// threshold for a white-noise null.
func TemporalAnomaly(xs []float64) bool {
	r := Autocorr(xs, 1)
	if math.IsNaN(r) {
		return false
	}
	return r > 2/math.Sqrt(float64(len(xs)))
}
