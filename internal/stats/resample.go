package stats

import (
	"math"

	"opaquebench/internal/xrand"
)

// CI is a two-sided confidence interval.
type CI struct {
	Lo, Hi float64
	// Level is the nominal coverage, e.g. 0.95.
	Level float64
}

// Contains reports whether v lies in the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// Width returns Hi - Lo.
func (c CI) Width() float64 { return c.Hi - c.Lo }

// BootstrapCI estimates a percentile-bootstrap confidence interval for an
// arbitrary statistic. Keeping the raw data (stage 3 of the methodology)
// is what makes resampling possible at all — an aggregate-only report
// cannot be bootstrapped.
func BootstrapCI(xs []float64, stat func([]float64) float64, level float64, reps int, seed uint64) (CI, error) {
	if len(xs) == 0 {
		return CI{}, ErrEmpty
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	if reps < 10 {
		reps = 1000
	}
	r := xrand.NewDerived(seed, "stats/bootstrap")
	resample := make([]float64, len(xs))
	estimates := make([]float64, reps)
	for b := 0; b < reps; b++ {
		for i := range resample {
			resample[i] = xs[r.IntN(len(xs))]
		}
		estimates[b] = stat(resample)
	}
	alpha := (1 - level) / 2
	return CI{
		Lo:    Quantile(estimates, alpha),
		Hi:    Quantile(estimates, 1-alpha),
		Level: level,
	}, nil
}

// MeanCI is BootstrapCI for the mean.
func MeanCI(xs []float64, level float64, reps int, seed uint64) (CI, error) {
	return BootstrapCI(xs, Mean, level, reps, seed)
}

// MedianCI is BootstrapCI for the median.
func MedianCI(xs []float64, level float64, reps int, seed uint64) (CI, error) {
	return BootstrapCI(xs, Median, level, reps, seed)
}

// Autocorr returns the lag-k sample autocorrelation of xs in its given
// (execution) order. Under a properly randomized design the values should
// be exchangeable; significant positive lag-1 autocorrelation flags a
// temporal effect — a perturbation window, a governor ramp, an intruding
// process — exactly the anomalies Sections III.1 and IV.3 document.
func Autocorr(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 1 || n <= lag+1 {
		return math.NaN()
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
		if i+lag < n {
			num += d * (xs[i+lag] - m)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// TemporalAnomaly reports whether the sequence-ordered values show
// significant lag-1 autocorrelation, using the conventional 2/sqrt(n)
// threshold for a white-noise null.
func TemporalAnomaly(xs []float64) bool {
	r := Autocorr(xs, 1)
	if math.IsNaN(r) {
		return false
	}
	return r > 2/math.Sqrt(float64(len(xs)))
}
