package stats

import (
	"math"
	"sort"
)

// ModeSplit describes a two-cluster decomposition of one sample, used to
// expose the bimodal behaviour of Figures 10 and 11 that "is completely
// hidden" when only means and variances are reported.
type ModeSplit struct {
	// LowMean and HighMean are the means of the two clusters.
	LowMean, HighMean float64
	// LowN and HighN are the cluster sizes.
	LowN, HighN int
	// Separation is (HighMean-LowMean) / pooled within-cluster stddev;
	// large values (>~2) indicate genuinely distinct modes.
	Separation float64
	// Boundary is the split threshold between the clusters.
	Boundary float64
}

// Ratio returns HighMean / LowMean (the paper's "almost 5 times lower"
// statement corresponds to a ratio near 5). It returns NaN when LowMean is 0.
func (m ModeSplit) Ratio() float64 {
	if m.LowMean == 0 {
		return math.NaN()
	}
	return m.HighMean / m.LowMean
}

// Bimodal reports whether the split looks like two genuine modes: both
// clusters non-trivial (>= minFrac of the sample each) and well separated.
func (m ModeSplit) Bimodal(minFrac, minSeparation float64) bool {
	n := float64(m.LowN + m.HighN)
	if n == 0 {
		return false
	}
	fl := float64(m.LowN) / n
	fh := float64(m.HighN) / n
	return fl >= minFrac && fh >= minFrac && m.Separation >= minSeparation
}

// SplitModes clusters xs into two groups by exact 1-D 2-means: it scans every
// threshold between consecutive sorted values and keeps the one minimizing
// within-cluster sum of squares. This is the offline diagnosis the paper's
// methodology enables by keeping raw data.
func SplitModes(xs []float64) (ModeSplit, error) {
	if len(xs) < 2 {
		return ModeSplit{}, ErrEmpty
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	n := len(s)

	// Prefix sums for O(1) cluster statistics.
	ps := make([]float64, n+1)
	pss := make([]float64, n+1)
	for i, v := range s {
		ps[i+1] = ps[i] + v
		pss[i+1] = pss[i] + v*v
	}
	wss := func(i, j int) float64 { // within-SS of s[i:j]
		m := float64(j - i)
		if m == 0 {
			return 0
		}
		sum := ps[j] - ps[i]
		ss := pss[j] - pss[i]
		w := ss - sum*sum/m
		if w < 0 {
			w = 0
		}
		return w
	}

	bestCut, bestW := 1, math.Inf(1)
	for c := 1; c < n; c++ {
		if w := wss(0, c) + wss(c, n); w < bestW {
			bestW = w
			bestCut = c
		}
	}
	lowN := bestCut
	highN := n - bestCut
	lowMean := ps[bestCut] / float64(lowN)
	highMean := (ps[n] - ps[bestCut]) / float64(highN)

	pooledVar := bestW / float64(n)
	sep := math.Inf(1)
	if pooledVar > 0 {
		sep = (highMean - lowMean) / math.Sqrt(pooledVar)
	} else if highMean == lowMean {
		sep = 0
	}
	return ModeSplit{
		LowMean:    lowMean,
		HighMean:   highMean,
		LowN:       lowN,
		HighN:      highN,
		Separation: sep,
		Boundary:   (s[bestCut-1] + s[bestCut]) / 2,
	}, nil
}

// LongestRun returns the start index and length of the longest consecutive
// run of true values. It quantifies the temporal contiguity of Figure 11's
// second mode: anomalies caused by an external process cluster in sequence
// order, unlike independent noise.
func LongestRun(flags []bool) (start, length int) {
	bestStart, bestLen := 0, 0
	curStart, curLen := 0, 0
	for i, f := range flags {
		if f {
			if curLen == 0 {
				curStart = i
			}
			curLen++
			if curLen > bestLen {
				bestLen = curLen
				bestStart = curStart
			}
		} else {
			curLen = 0
		}
	}
	return bestStart, bestLen
}

// RunsContiguity returns the fraction of flagged observations contained in
// the single longest run. Values near 1 indicate one contiguous temporal
// anomaly; values near 1/k indicate k scattered episodes.
func RunsContiguity(flags []bool) float64 {
	total := 0
	for _, f := range flags {
		if f {
			total++
		}
	}
	if total == 0 {
		return 0
	}
	_, l := LongestRun(flags)
	return float64(l) / float64(total)
}
