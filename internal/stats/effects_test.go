package stats

import (
	"math"
	"strings"
	"testing"

	"opaquebench/internal/xrand"
)

// effectsData builds a 2-factor dataset where "big" drives the response and
// "null" does not.
func effectsData(n int) []Observation {
	r := xrand.New(61)
	var obs []Observation
	for i := 0; i < n; i++ {
		big := "lo"
		base := 10.0
		if i%2 == 0 {
			big = "hi"
			base = 20.0
		}
		nullLevel := []string{"a", "b", "c"}[i%3]
		obs = append(obs, Observation{
			Levels: map[string]string{"big": big, "null": nullLevel},
			Value:  base + r.NormFloat64()*0.5,
		})
	}
	return obs
}

func TestMainEffectsRanking(t *testing.T) {
	effects, err := MainEffects(effectsData(300))
	if err != nil {
		t.Fatal(err)
	}
	if len(effects) != 2 {
		t.Fatalf("effects = %d", len(effects))
	}
	if effects[0].Factor != "big" {
		t.Fatalf("strongest factor = %s, want big", effects[0].Factor)
	}
	if effects[0].EtaSquared < 0.8 {
		t.Fatalf("big eta2 = %v, want > 0.8", effects[0].EtaSquared)
	}
	if effects[1].EtaSquared > 0.1 {
		t.Fatalf("null eta2 = %v, want ~0", effects[1].EtaSquared)
	}
	if math.Abs(effects[0].Range-10) > 1 {
		t.Fatalf("big range = %v, want ~10", effects[0].Range)
	}
}

func TestMainEffectsLevelMeans(t *testing.T) {
	effects, err := MainEffects(effectsData(300))
	if err != nil {
		t.Fatal(err)
	}
	big := effects[0]
	if math.Abs(big.Levels["hi"]-20) > 0.5 || math.Abs(big.Levels["lo"]-10) > 0.5 {
		t.Fatalf("level means = %v", big.Levels)
	}
}

func TestMainEffectsSingleLevelSkipped(t *testing.T) {
	obs := []Observation{
		{Levels: map[string]string{"fixed": "x", "var": "a"}, Value: 1},
		{Levels: map[string]string{"fixed": "x", "var": "b"}, Value: 2},
	}
	effects, err := MainEffects(obs)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range effects {
		if e.Factor == "fixed" {
			t.Fatal("single-level factor not skipped")
		}
	}
}

func TestMainEffectsErrors(t *testing.T) {
	if _, err := MainEffects(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := MainEffects([]Observation{{Value: 1}}); err == nil {
		t.Fatal("singleton accepted")
	}
}

func TestMainEffectsConstantResponse(t *testing.T) {
	obs := []Observation{
		{Levels: map[string]string{"f": "a"}, Value: 5},
		{Levels: map[string]string{"f": "b"}, Value: 5},
	}
	effects, err := MainEffects(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(effects) != 1 || effects[0].EtaSquared != 0 {
		t.Fatalf("effects = %+v", effects)
	}
}

func TestRenderEffects(t *testing.T) {
	effects, err := MainEffects(effectsData(60))
	if err != nil {
		t.Fatal(err)
	}
	out := RenderEffects(effects)
	if !strings.Contains(out, "big") || !strings.Contains(out, "eta2") {
		t.Fatalf("render:\n%s", out)
	}
}

// Property: eta-squared always lies in [0, 1] and effects are sorted.
func TestEffectsBoundsProperty(t *testing.T) {
	r := xrand.New(62)
	for trial := 0; trial < 50; trial++ {
		var obs []Observation
		n := 10 + r.IntN(50)
		for i := 0; i < n; i++ {
			obs = append(obs, Observation{
				Levels: map[string]string{
					"f1": []string{"a", "b"}[r.IntN(2)],
					"f2": []string{"x", "y", "z"}[r.IntN(3)],
				},
				Value: r.NormFloat64() * float64(1+r.IntN(10)),
			})
		}
		effects, err := MainEffects(obs)
		if err != nil {
			t.Fatal(err)
		}
		prev := math.Inf(1)
		for _, e := range effects {
			if e.EtaSquared < -1e-9 || e.EtaSquared > 1+1e-9 {
				t.Fatalf("eta2 = %v", e.EtaSquared)
			}
			if e.EtaSquared > prev+1e-9 {
				t.Fatal("not sorted")
			}
			prev = e.EtaSquared
		}
	}
}
