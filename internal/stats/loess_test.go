package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestLoessRecoversSmoothTrend(t *testing.T) {
	r := rand.New(rand.NewPCG(31, 31))
	n := 400
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) / 10
		y[i] = math.Sin(x[i]/5)*10 + r.NormFloat64()*0.5
	}
	sm, err := Loess(x, y, 0.2, x)
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i := 20; i < n-20; i++ { // ignore edges
		truth := math.Sin(x[i]/5) * 10
		if e := math.Abs(sm[i] - truth); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1.0 {
		t.Fatalf("max interior error %v too large", maxErr)
	}
}

func TestLoessLinearDataIsExactish(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 2*x[i] + 1
	}
	sm, err := Loess(x, y, 0.5, []float64{4.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sm[0]-10) > 1e-6 {
		t.Fatalf("Loess(4.5) = %v, want 10", sm[0])
	}
}

func TestLoessBadSpanDefaults(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{0, 1, 2, 3}
	if _, err := Loess(x, y, -1, x); err != nil {
		t.Fatal(err)
	}
}

func TestLoessErrShape(t *testing.T) {
	if _, err := Loess(nil, nil, 0.5, nil); err != ErrShape {
		t.Fatalf("err = %v", err)
	}
	if _, err := Loess([]float64{1}, []float64{1, 2}, 0.5, nil); err != ErrShape {
		t.Fatalf("err = %v", err)
	}
}

func TestLoessSelf(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{0, 1, 2, 3, 4}
	sm, err := LoessSelf(x, y, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sm) != len(x) {
		t.Fatalf("len = %d", len(sm))
	}
}

func TestLoessDuplicateX(t *testing.T) {
	x := []float64{1, 1, 1, 2, 2, 2}
	y := []float64{1, 2, 3, 4, 5, 6}
	sm, err := Loess(x, y, 1, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sm {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("unstable smooth: %v", sm)
		}
	}
}

func BenchmarkLoess(b *testing.B) {
	n := 2000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = math.Sin(float64(i) / 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Loess(x, y, 0.3, x[:50]); err != nil {
			b.Fatal(err)
		}
	}
}
