package stats

import (
	"math"
	"sort"

	"opaquebench/internal/xrand"
)

// Summaries feeding the adaptive campaign planner (internal/adapt): the
// planner decides where to spend the next round's measurement budget from
// (a) per-design-point bootstrap CI widths — replication goes where the
// data is noisiest — and (b) breakpoint localization brackets — grid
// refinement goes where the piecewise structure is least resolved.

// PointCI summarizes the replicate sample of one design point: its median,
// a bootstrap CI for the median, and the CI's width relative to the median.
type PointCI struct {
	// Key identifies the design point (doe.Point.Key form).
	Key string
	// N is the number of observations.
	N int
	// Median is the sample median.
	Median float64
	// CI is the percentile-bootstrap confidence interval for the median.
	CI CI
	// RelWidth is CI.Width() / |Median| — the scale-free noise measure the
	// planner ranks points by. A zero median with a nonzero width reports
	// +Inf (maximally unresolved); a degenerate point interval reports 0.
	RelWidth float64
}

// PointCIs computes a PointCI for every group, sorted by key. Each group's
// bootstrap stream derives from (seed, key), so adding or removing a point
// never perturbs another point's interval — the same isolation discipline
// the simulators use (package xrand) — and the whole table is reproducible
// byte-for-byte from the campaign seed.
func PointCIs(groups map[string][]float64, level float64, reps int, seed uint64) ([]PointCI, error) {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]PointCI, 0, len(keys))
	for _, k := range keys {
		xs := groups[k]
		ci, err := MedianCI(xs, level, reps, xrand.Derive(seed, "stats/pointci/"+k))
		if err != nil {
			return nil, err
		}
		p := PointCI{Key: k, N: len(xs), Median: Median(xs), CI: ci}
		switch {
		case ci.Width() == 0:
			p.RelWidth = 0
		case p.Median == 0:
			p.RelWidth = math.Inf(1)
		default:
			p.RelWidth = ci.Width() / math.Abs(p.Median)
		}
		out = append(out, p)
	}
	return out, nil
}

// WorstRelWidth returns the largest relative CI width in the table, or 0
// for an empty table. It is the planner's convergence measure: a campaign
// has resolved its noise when the worst point is below the target.
func WorstRelWidth(points []PointCI) float64 {
	worst := 0.0
	for _, p := range points {
		if p.RelWidth > worst {
			worst = p.RelWidth
		}
	}
	return worst
}

// Bracket is one detected breakpoint together with its localization
// interval: the breakpoint estimate X lies strictly between the adjacent
// observed x values Lo and Hi, and no observation inside (Lo, Hi) exists —
// so the data cannot place the breakpoint more precisely than this
// bracket. Refinement inserts new grid levels inside it.
type Bracket struct {
	// X is the breakpoint estimate (midway between Lo and Hi, as
	// SegmentedSearch places it).
	X float64
	// Lo and Hi are the observed x values bracketing the breakpoint.
	Lo, Hi float64
}

// Width returns Hi - Lo, the localization uncertainty.
func (b Bracket) Width() float64 { return b.Hi - b.Lo }

// Contains reports whether v lies strictly inside the bracket.
func (b Bracket) Contains(v float64) bool { return v > b.Lo && v < b.Hi }

// BreakpointBrackets runs the neutral BIC-selected segmented search under
// the relative-error objective (SelectSegmentedRelative) and localizes each
// selected breakpoint between the nearest observed x values on either
// side. A fit selecting zero breakpoints returns an empty slice and no
// error; an infeasible search (too few observations) is an error.
func BreakpointBrackets(x, y []float64, maxK, minSeg int) ([]Bracket, error) {
	pf, err := SelectSegmentedRelative(x, y, maxK, minSeg)
	if err != nil {
		return nil, err
	}
	if len(pf.Breaks) == 0 {
		return nil, nil
	}
	// Distinct sorted x values: the design grid as observed.
	grid := append([]float64(nil), x...)
	sort.Float64s(grid)
	grid = dedupFloats(grid)
	out := make([]Bracket, 0, len(pf.Breaks))
	for _, b := range pf.Breaks {
		// The break usually sits between two adjacent grid values; find
		// them. A search cut placed between replicates of one level makes
		// the break coincide with that measured level — the slope change
		// is at the level itself, so it localizes between the level's
		// distinct neighbors instead.
		i := sort.SearchFloat64s(grid, b)
		switch {
		case i < len(grid) && grid[i] == b:
			if i == 0 || i+1 >= len(grid) {
				continue
			}
			out = append(out, Bracket{X: b, Lo: grid[i-1], Hi: grid[i+1]})
		case i == 0 || i >= len(grid):
			// A break outside the observed span cannot be bracketed;
			// SegmentedSearch never produces one, but stay defensive.
			continue
		default:
			out = append(out, Bracket{X: b, Lo: grid[i-1], Hi: grid[i]})
		}
	}
	return out, nil
}
