package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

// protocolCurve simulates a clean two-regime time curve.
func protocolCurve(s float64) float64 {
	if s < 1000 {
		return 10 + 0.01*s
	}
	return 10 + 0.01*1000 + 0.1*(s-1000)
}

func TestNetGaugeDetectsCleanBreak(t *testing.T) {
	d := NewNetGaugeDetector(2, 5)
	for s := 100.0; s <= 3000; s += 50 {
		d.Observe(s, protocolCurve(s))
	}
	breaks := d.Breaks()
	if len(breaks) == 0 {
		t.Fatal("no break detected on clean two-regime data")
	}
	if math.Abs(breaks[0]-1000) > 400 {
		t.Fatalf("first break = %v, want near 1000", breaks[0])
	}
}

func TestNetGaugeNoBreakOnLinear(t *testing.T) {
	d := NewNetGaugeDetector(2, 5)
	for s := 100.0; s <= 3000; s += 50 {
		d.Observe(s, 5+0.02*s)
	}
	if got := d.Breaks(); len(got) != 0 {
		t.Fatalf("breaks on linear data: %v", got)
	}
}

func TestNetGaugeMisledByPerturbation(t *testing.T) {
	// The paper's pitfall III.1: a temporal perturbation window can fake a
	// protocol change. Verify that a sustained perturbation injects a break
	// on data that is truly linear.
	d := NewNetGaugeDetector(2, 5)
	r := rand.New(rand.NewPCG(41, 41))
	i := 0
	for s := 100.0; s <= 6000; s += 50 {
		y := 5 + 0.02*s
		if i >= 60 && i < 90 { // perturbation window
			y *= 4
		}
		y += r.NormFloat64() * 0.01
		d.Observe(s, y)
		i++
	}
	if got := d.Breaks(); len(got) == 0 {
		t.Fatal("perturbation should have misled the online detector (pitfall III.1)")
	}
}

func TestNetGaugeDefaults(t *testing.T) {
	d := NewNetGaugeDetector(0, 0)
	if d.Factor != 2 || d.Confirm != 5 {
		t.Fatalf("defaults = %v/%v", d.Factor, d.Confirm)
	}
}

func TestPLogPSweepCleanBreak(t *testing.T) {
	p := PLogPProbe{Tolerance: 0.2, MaxAttempts: 8}
	res := p.Sweep(64, 65536, protocolCurve)
	if len(res.Breaks) == 0 {
		t.Fatal("no break found")
	}
	found := false
	for _, b := range res.Breaks {
		if b >= 256 && b <= 2048 {
			found = true
		}
	}
	if !found {
		t.Fatalf("breaks = %v, want one near 1000", res.Breaks)
	}
	if res.Probes <= 11 {
		t.Fatalf("expected extra bisection probes, got %d", res.Probes)
	}
}

func TestPLogPSweepLinearNoBreaks(t *testing.T) {
	p := PLogPProbe{Tolerance: 0.2}
	res := p.Sweep(64, 65536, func(s float64) float64 { return 3 + 0.05*s })
	if len(res.Breaks) != 0 {
		t.Fatalf("breaks on linear data: %v", res.Breaks)
	}
}

func TestPLogPMisledByNoiseSpike(t *testing.T) {
	// A single anomalous measurement at one probe is enough to trigger a
	// spurious bisection cascade — the paper's pitfall III.1 for PLogP.
	calls := 0
	measure := func(s float64) float64 {
		calls++
		y := 3 + 0.05*s
		if calls == 6 { // one-off glitch
			y *= 10
		}
		return y
	}
	p := PLogPProbe{Tolerance: 0.2, MaxAttempts: 4}
	res := p.Sweep(64, 65536, measure)
	if len(res.Breaks) == 0 {
		t.Fatal("noise spike should have produced a spurious break")
	}
}

func TestPLogPDefaultsApplied(t *testing.T) {
	p := PLogPProbe{}
	res := p.Sweep(64, 1024, func(s float64) float64 { return s })
	if res.Probes == 0 {
		t.Fatal("no probes taken")
	}
}

func TestLoOgGPNeighborhoodFindsLocalMax(t *testing.T) {
	var xs, ys []float64
	for i := 0; i < 50; i++ {
		xs = append(xs, float64(i))
		y := float64(i) * 0.1
		if i == 25 {
			y += 5 // pronounced local maximum
		}
		ys = append(ys, y)
	}
	breaks := LoOgGPNeighborhood(xs, ys, 3, 100) // generous MAD cutoff keeps the peak
	found := false
	for _, b := range breaks {
		if b == 25 {
			found = true
		}
	}
	if !found {
		t.Fatalf("breaks = %v, want to include 25", breaks)
	}
}

func TestLoOgGPOutlierRemovalHidesBreak(t *testing.T) {
	// With a strict MAD cutoff the genuine local max is filtered away as an
	// outlier before detection — the sensitivity the paper warns about.
	var xs, ys []float64
	for i := 0; i < 50; i++ {
		xs = append(xs, float64(i))
		y := 1.0
		if i == 25 {
			y = 50
		}
		ys = append(ys, y)
	}
	breaks := LoOgGPNeighborhood(xs, ys, 3, 3)
	for _, b := range breaks {
		if b == 25 {
			t.Fatal("strict outlier removal should have hidden the peak")
		}
	}
}

func TestLoOgGPNeighborhoodSensitivity(t *testing.T) {
	// Same data, two neighborhood sizes, different verdicts (paper: the
	// mechanism "is sensitive to the neighborhood size").
	var xs, ys []float64
	for i := 0; i < 60; i++ {
		xs = append(xs, float64(i))
		y := 1.0
		if i == 20 {
			y = 3
		}
		if i == 23 {
			y = 4
		}
		ys = append(ys, y)
	}
	narrow := LoOgGPNeighborhood(xs, ys, 1, 1e9)
	wide := LoOgGPNeighborhood(xs, ys, 5, 1e9)
	if len(narrow) == len(wide) {
		t.Fatalf("expected neighborhood size to change the verdict: narrow=%v wide=%v", narrow, wide)
	}
}

func TestLoOgGPDegenerate(t *testing.T) {
	if got := LoOgGPNeighborhood(nil, nil, 3, 3); got != nil {
		t.Fatalf("got %v", got)
	}
	if got := LoOgGPNeighborhood([]float64{1}, []float64{1}, 0, 3); got != nil {
		t.Fatalf("got %v", got)
	}
}
