// Package stats implements the statistical toolbox of the paper's third
// methodology stage: descriptive statistics, ordinary least squares,
// piecewise-linear and segmented regression, LOESS smoothing, outlier
// filtering, and multimodality diagnostics.
//
// The package mirrors the analyses the paper performs in R after a campaign
// has finished; nothing here aggregates on the fly.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. It returns NaN on an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance (denominator n-1).
// It returns NaN for samples with fewer than two observations.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Stddev returns the sample standard deviation.
func Stddev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CV returns the coefficient of variation (stddev / mean).
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return math.NaN()
	}
	return Stddev(xs) / m
}

// Min returns the smallest element of xs, or NaN on an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN on an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the sample median.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the p-quantile of xs (0 <= p <= 1) using linear
// interpolation between order statistics (R type-7, the R default the paper's
// scripts would have used). It returns NaN on an empty sample.
func Quantile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, p)
}

// quantileSorted computes a type-7 quantile on already-sorted data.
func quantileSorted(s []float64, p float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[n-1]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	frac := h - float64(lo)
	if hi >= n {
		return s[n-1]
	}
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary is a five-number-plus summary of one sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	sum := Summary{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		sum.Mean, sum.Stddev = nan, nan
		sum.Min, sum.Q1, sum.Median, sum.Q3, sum.Max = nan, nan, nan, nan, nan
		return sum
	}
	sum.Mean = Mean(xs)
	sum.Stddev = Stddev(xs)
	sum.Min = s[0]
	sum.Q1 = quantileSorted(s, 0.25)
	sum.Median = quantileSorted(s, 0.5)
	sum.Q3 = quantileSorted(s, 0.75)
	sum.Max = s[len(s)-1]
	return sum
}

// Boxplot describes the Tukey boxplot of one sample: quartiles, whiskers at
// the last observation within 1.5 IQR of the box, and points beyond them.
type Boxplot struct {
	Q1, Median, Q3          float64
	LowWhisker, HighWhisker float64
	Outliers                []float64
}

// BoxplotStats computes Tukey boxplot statistics for xs.
func BoxplotStats(xs []float64) (Boxplot, error) {
	if len(xs) == 0 {
		return Boxplot{}, ErrEmpty
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	b := Boxplot{
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.LowWhisker, b.HighWhisker = s[0], s[len(s)-1]
	for _, v := range s {
		if v >= loFence {
			b.LowWhisker = v
			break
		}
	}
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] <= hiFence {
			b.HighWhisker = s[i]
			break
		}
	}
	for _, v := range s {
		if v < loFence || v > hiFence {
			b.Outliers = append(b.Outliers, v)
		}
	}
	return b, nil
}

// GeometricMean returns the geometric mean of strictly positive xs; it
// returns NaN if the sample is empty or contains non-positive values.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sl float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sl += math.Log(x)
	}
	return math.Exp(sl / float64(len(xs)))
}
