package stats

import (
	"math"
	"testing"
)

func TestPointCIsSortedDeterministicAndScaleFree(t *testing.T) {
	groups := map[string][]float64{
		"size=100": {10, 11, 9, 10.5, 9.5, 10},
		"size=200": {100, 140, 80, 120, 60, 110},
		"size=50":  {5, 5, 5, 5},
	}
	a, err := PointCIs(groups, 0.95, 400, 7)
	if err != nil {
		t.Fatalf("PointCIs: %v", err)
	}
	b, err := PointCIs(groups, 0.95, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 {
		t.Fatalf("got %d points, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d not deterministic: %+v vs %+v", i, a[i], b[i])
		}
	}
	wantOrder := []string{"size=100", "size=200", "size=50"}
	for i, p := range a {
		if p.Key != wantOrder[i] {
			t.Errorf("point %d key %q, want %q (sorted)", i, p.Key, wantOrder[i])
		}
	}
	// The tied sample has a degenerate point interval, not NaN.
	for _, p := range a {
		if p.Key != "size=50" {
			continue
		}
		if p.RelWidth != 0 || p.CI.Width() != 0 {
			t.Errorf("tied sample: RelWidth %g, CI width %g, want 0", p.RelWidth, p.CI.Width())
		}
	}
	// The noisy wide group must rank above the tight one.
	rel := map[string]float64{}
	for _, p := range a {
		rel[p.Key] = p.RelWidth
	}
	if rel["size=200"] <= rel["size=100"] {
		t.Errorf("relative widths not ordered by noise: %v", rel)
	}
	if w := WorstRelWidth(a); w != rel["size=200"] {
		t.Errorf("WorstRelWidth = %g, want %g", w, rel["size=200"])
	}
	if WorstRelWidth(nil) != 0 {
		t.Error("WorstRelWidth(nil) != 0")
	}
}

func TestPointCIsZeroMedianIsMaximallyUnresolved(t *testing.T) {
	a, err := PointCIs(map[string][]float64{"x=1": {-1, 0, 1, 0, -1, 1, 0, 0}}, 0.95, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(a[0].RelWidth, 1) {
		t.Errorf("zero-median noisy point RelWidth = %g, want +Inf", a[0].RelWidth)
	}
}

// twoRegimeGrid builds reps noisy observations per level with a planted
// slope change between 160 and 640.
func twoRegimeGrid(levels []float64, reps int) (xs, ys []float64) {
	for _, x := range levels {
		for r := 0; r < reps; r++ {
			y := 1000.0
			if x > 300 {
				y = 250
			}
			// Deterministic per-observation jitter, scale-proportional.
			y *= 1 + 0.01*float64(r%3-1)
			xs = append(xs, x)
			ys = append(ys, y)
		}
	}
	return xs, ys
}

func TestBreakpointBracketsLocalizeBetweenGridLevels(t *testing.T) {
	xs, ys := twoRegimeGrid([]float64{10, 40, 160, 640, 2560}, 6)
	brackets, err := BreakpointBrackets(xs, ys, 3, 6)
	if err != nil {
		t.Fatalf("BreakpointBrackets: %v", err)
	}
	if len(brackets) == 0 {
		t.Fatal("no bracket found for a planted regime change")
	}
	found := false
	for _, b := range brackets {
		if b.Lo == 160 && b.Hi == 640 {
			found = true
			if !b.Contains(b.X) {
				t.Errorf("bracket (%g, %g) does not contain its own break %g", b.Lo, b.Hi, b.X)
			}
			if b.Contains(160) || b.Contains(640) {
				t.Error("bracket endpoints must be exclusive")
			}
			if b.Width() != 480 {
				t.Errorf("bracket width %g, want 480", b.Width())
			}
		}
	}
	if !found {
		t.Fatalf("planted change between 160 and 640 not bracketed: %+v", brackets)
	}
}

func TestBreakpointBracketsFlatDataFindsNothing(t *testing.T) {
	var xs, ys []float64
	for _, x := range []float64{10, 20, 30, 40, 50} {
		for r := 0; r < 5; r++ {
			xs = append(xs, x)
			ys = append(ys, 100)
		}
	}
	brackets, err := BreakpointBrackets(xs, ys, 3, 5)
	if err != nil {
		t.Fatalf("BreakpointBrackets: %v", err)
	}
	if len(brackets) != 0 {
		t.Errorf("flat data produced brackets: %+v", brackets)
	}
}
