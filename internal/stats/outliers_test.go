package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMAD(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 4, 6, 9}
	// median=2, abs devs = {1,1,0,0,2,4,7}, median dev = 1 -> MAD = 1.4826
	if got := MAD(xs); !almostEq(got, 1.4826, 1e-9) {
		t.Fatalf("MAD = %v, want 1.4826", got)
	}
}

func TestMADEmpty(t *testing.T) {
	if got := MAD(nil); !math.IsNaN(got) {
		t.Fatalf("MAD(nil) = %v", got)
	}
}

func TestMADScoresZeroMAD(t *testing.T) {
	scores := MADScores([]float64{3, 3, 3})
	for _, s := range scores {
		if s != 0 {
			t.Fatalf("scores = %v, want zeros", scores)
		}
	}
}

func TestFilterMAD(t *testing.T) {
	xs := []float64{10, 10, 10, 11, 9, 10, 1000}
	keep := FilterMAD(xs, 3.5)
	for _, i := range keep {
		if xs[i] == 1000 {
			t.Fatal("outlier survived MAD filter")
		}
	}
	if len(keep) != 6 {
		t.Fatalf("kept %d, want 6", len(keep))
	}
}

func TestFilterIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 100}
	keep := FilterIQR(xs, 1.5)
	if len(keep) != 5 {
		t.Fatalf("kept %d, want 5", len(keep))
	}
	for _, i := range keep {
		if xs[i] == 100 {
			t.Fatal("outlier survived IQR filter")
		}
	}
}

func TestFilterIQREmpty(t *testing.T) {
	if keep := FilterIQR(nil, 1.5); keep != nil {
		t.Fatalf("keep = %v, want nil", keep)
	}
}

func TestSelect(t *testing.T) {
	xs := []float64{10, 20, 30}
	got := Select(xs, []int{2, 0})
	if len(got) != 2 || got[0] != 30 || got[1] != 10 {
		t.Fatalf("Select = %v", got)
	}
}

// Property: filters only ever keep valid indices, in increasing order.
func TestFilterIndicesValidProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		keep := FilterMAD(xs, 3)
		prev := -1
		for _, i := range keep {
			if i < 0 || i >= len(xs) || i <= prev {
				return false
			}
			prev = i
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: widening the IQR fence never keeps fewer points.
func TestIQRMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		narrow := FilterIQR(xs, 1.0)
		wide := FilterIQR(xs, 3.0)
		return len(wide) >= len(narrow)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}
