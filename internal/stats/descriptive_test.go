package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMeanSimple(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestMeanEmptyIsNaN(t *testing.T) {
	if got := Mean(nil); !math.IsNaN(got) {
		t.Fatalf("Mean(nil) = %v, want NaN", got)
	}
}

func TestVariance(t *testing.T) {
	// Known sample: variance of {2,4,4,4,5,5,7,9} with n-1 denominator.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEq(got, want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
}

func TestVarianceSingletonNaN(t *testing.T) {
	if got := Variance([]float64{1}); !math.IsNaN(got) {
		t.Fatalf("Variance singleton = %v, want NaN", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
}

func TestQuantileType7(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	// R: quantile(1:4, .25, type=7) == 1.75
	if got := Quantile(xs, 0.25); !almostEq(got, 1.75, 1e-12) {
		t.Fatalf("Q1 = %v, want 1.75", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("Q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("Q1.0 = %v, want 4", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad summary %+v", s)
	}
	if !almostEq(s.Mean, 3, 1e-12) {
		t.Fatalf("mean %v", s.Mean)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Mean) || !math.IsNaN(s.Max) {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestBoxplotStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 100}
	b, err := BoxplotStats(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("outliers = %v, want [100]", b.Outliers)
	}
	if b.HighWhisker != 5 {
		t.Fatalf("high whisker = %v, want 5", b.HighWhisker)
	}
	if b.LowWhisker != 1 {
		t.Fatalf("low whisker = %v, want 1", b.LowWhisker)
	}
}

func TestBoxplotEmpty(t *testing.T) {
	if _, err := BoxplotStats(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestGeometricMean(t *testing.T) {
	if got := GeometricMean([]float64{1, 100}); !almostEq(got, 10, 1e-9) {
		t.Fatalf("geom mean = %v, want 10", got)
	}
	if got := GeometricMean([]float64{1, -1}); !math.IsNaN(got) {
		t.Fatalf("geom mean with negatives = %v, want NaN", got)
	}
}

func TestCV(t *testing.T) {
	xs := []float64{10, 10, 10}
	if got := CV(xs); got != 0 {
		t.Fatalf("CV of constants = %v, want 0", got)
	}
}

// Property: mean is translation-equivariant and within [min, max].
func TestMeanPropertyBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in p.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		a := clamp01(p1)
		b := clamp01(p2)
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)+1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is non-negative.
func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) < 2 {
			return true
		}
		return Variance(xs) >= -1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// sanitize clamps quick-generated floats into a well-behaved range.
func sanitize(raw []float64) []float64 {
	out := make([]float64, 0, len(raw))
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out = append(out, math.Mod(v, 1e6))
	}
	return out
}

func clamp01(p float64) float64 {
	if math.IsNaN(p) {
		return 0.5
	}
	p = math.Abs(math.Mod(p, 1))
	return p
}

func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 200,
		Rand:     nil,
	}
}

func BenchmarkSummarize(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(xs)
	}
}
