package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSplitModesBimodal(t *testing.T) {
	r := rand.New(rand.NewPCG(21, 21))
	var xs []float64
	for i := 0; i < 80; i++ {
		xs = append(xs, 1000+r.NormFloat64()*20)
	}
	for i := 0; i < 20; i++ {
		xs = append(xs, 200+r.NormFloat64()*10)
	}
	m, err := SplitModes(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Bimodal(0.1, 3) {
		t.Fatalf("should detect bimodality: %+v", m)
	}
	if math.Abs(m.Ratio()-5) > 0.5 {
		t.Fatalf("ratio = %v, want ~5", m.Ratio())
	}
	if m.LowN != 20 || m.HighN != 80 {
		t.Fatalf("cluster sizes = %d/%d, want 20/80", m.LowN, m.HighN)
	}
}

func TestSplitModesUnimodal(t *testing.T) {
	r := rand.New(rand.NewPCG(22, 22))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 100 + r.NormFloat64()*5
	}
	m, err := SplitModes(xs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Bimodal(0.15, 3) {
		t.Fatalf("unimodal data flagged bimodal: %+v", m)
	}
}

func TestSplitModesTooSmall(t *testing.T) {
	if _, err := SplitModes([]float64{1}); err == nil {
		t.Fatal("want error for singleton")
	}
}

func TestSplitModesConstant(t *testing.T) {
	m, err := SplitModes([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Bimodal(0.1, 2) {
		t.Fatalf("constant data flagged bimodal: %+v", m)
	}
}

// Property: the two cluster means bracket the overall mean.
func TestSplitModesBracketProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) < 2 {
			return true
		}
		m, err := SplitModes(xs)
		if err != nil {
			return true
		}
		overall := Mean(xs)
		return m.LowMean <= overall+1e-6 && m.HighMean >= overall-1e-6
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: cluster sizes partition the sample.
func TestSplitModesPartitionProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) < 2 {
			return true
		}
		m, err := SplitModes(xs)
		if err != nil {
			return true
		}
		return m.LowN+m.HighN == len(xs) && m.LowN >= 1 && m.HighN >= 1
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestLongestRun(t *testing.T) {
	flags := []bool{false, true, true, false, true, true, true, false}
	start, length := LongestRun(flags)
	if start != 4 || length != 3 {
		t.Fatalf("run = (%d, %d), want (4, 3)", start, length)
	}
}

func TestLongestRunEmpty(t *testing.T) {
	if _, l := LongestRun(nil); l != 0 {
		t.Fatalf("length = %d, want 0", l)
	}
	if _, l := LongestRun([]bool{false, false}); l != 0 {
		t.Fatalf("length = %d, want 0", l)
	}
}

func TestRunsContiguity(t *testing.T) {
	contiguous := []bool{false, true, true, true, true, false, false, false}
	if got := RunsContiguity(contiguous); got != 1 {
		t.Fatalf("contiguity = %v, want 1", got)
	}
	scattered := []bool{true, false, true, false, true, false, true, false}
	if got := RunsContiguity(scattered); got != 0.25 {
		t.Fatalf("contiguity = %v, want 0.25", got)
	}
	if got := RunsContiguity([]bool{false}); got != 0 {
		t.Fatalf("contiguity = %v, want 0", got)
	}
}
