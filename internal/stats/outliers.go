package stats

import (
	"math"
	"sort"
)

// MAD returns the median absolute deviation of xs, scaled by 1.4826 so that
// it estimates the standard deviation under normality.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - m)
	}
	return 1.4826 * Median(devs)
}

// MADScores returns the robust z-score of each observation:
// |x - median| / MAD. When the MAD degenerates to zero (more than half the
// sample identical), the scale falls back to 1.2533 times the mean absolute
// deviation; if that is also zero, all scores are zero.
func MADScores(xs []float64) []float64 {
	scores := make([]float64, len(xs))
	if len(xs) == 0 {
		return scores
	}
	m := Median(xs)
	scale := MAD(xs)
	if scale == 0 {
		var mad float64
		for _, x := range xs {
			mad += math.Abs(x - m)
		}
		scale = 1.2533 * mad / float64(len(xs))
	}
	for i, x := range xs {
		if scale == 0 {
			scores[i] = 0
			continue
		}
		scores[i] = math.Abs(x-m) / scale
	}
	return scores
}

// FilterMAD returns the indices of observations whose robust z-score is at
// most cutoff (conventionally 3 or 3.5), i.e. the inliers.
func FilterMAD(xs []float64, cutoff float64) []int {
	scores := MADScores(xs)
	keep := make([]int, 0, len(xs))
	for i, s := range scores {
		if s <= cutoff {
			keep = append(keep, i)
		}
	}
	return keep
}

// FilterIQR returns the indices of observations within the Tukey fences
// [Q1 - k*IQR, Q3 + k*IQR] (conventionally k = 1.5).
func FilterIQR(xs []float64, k float64) []int {
	if len(xs) == 0 {
		return nil
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	q1 := quantileSorted(s, 0.25)
	q3 := quantileSorted(s, 0.75)
	iqr := q3 - q1
	lo, hi := q1-k*iqr, q3+k*iqr
	keep := make([]int, 0, len(xs))
	for i, x := range xs {
		if x >= lo && x <= hi {
			keep = append(keep, i)
		}
	}
	return keep
}

// Select returns the elements of xs at the given indices.
func Select(xs []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}
