package stats

import (
	"strings"
	"testing"
)

func TestNewHistogramCounts(t *testing.T) {
	xs := []float64{0, 0.1, 0.9, 1.0, 1.9, 2.0}
	h, err := NewHistogram(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("total = %d, want %d", total, len(xs))
	}
}

func TestNewHistogramEmpty(t *testing.T) {
	if _, err := NewHistogram(nil, 3); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
}

func TestNewHistogramConstantSample(t *testing.T) {
	h, err := NewHistogram([]float64{5, 5, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("total = %d", total)
	}
}

func TestPeakCountBimodal(t *testing.T) {
	var xs []float64
	for i := 0; i < 50; i++ {
		xs = append(xs, 1)
	}
	for i := 0; i < 50; i++ {
		xs = append(xs, 10)
	}
	h, err := NewHistogram(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.PeakCount(0.3); got != 2 {
		t.Fatalf("peaks = %d, want 2", got)
	}
}

func TestPeakCountUnimodal(t *testing.T) {
	var xs []float64
	for i := 0; i < 100; i++ {
		xs = append(xs, float64(i%7)) // flat-ish block
	}
	h, err := NewHistogram(xs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.PeakCount(0.3); got != 1 {
		t.Fatalf("peaks = %d, want 1", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Fatalf("render missing bars:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Fatalf("lines = %d, want 3", lines)
	}
}

func TestHistogramRenderDefaultWidth(t *testing.T) {
	h, _ := NewHistogram([]float64{1, 2}, 2)
	if out := h.Render(0); out == "" {
		t.Fatal("empty render")
	}
}
