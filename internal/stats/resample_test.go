package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestBootstrapCICoversTruth(t *testing.T) {
	r := rand.New(rand.NewPCG(51, 51))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = 10 + r.NormFloat64()
	}
	ci, err := MeanCI(xs, 0.95, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(Mean(xs)) {
		t.Fatalf("CI %+v does not contain the sample mean %v", ci, Mean(xs))
	}
	if !ci.Contains(10) && math.Abs(ci.Lo-10) > 0.3 {
		t.Fatalf("CI %+v far from truth 10", ci)
	}
	if ci.Width() <= 0 || ci.Width() > 1 {
		t.Fatalf("width = %v", ci.Width())
	}
}

func TestBootstrapCIShrinksWithN(t *testing.T) {
	r := rand.New(rand.NewPCG(52, 52))
	gen := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		return xs
	}
	small, err := MeanCI(gen(30), 0.95, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	large, err := MeanCI(gen(3000), 0.95, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if large.Width() >= small.Width() {
		t.Fatalf("CI did not shrink: %v -> %v", small.Width(), large.Width())
	}
}

func TestBootstrapCIEmpty(t *testing.T) {
	if _, err := MeanCI(nil, 0.95, 100, 1); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
}

func TestMedianCIDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a, err := MedianCI(xs, 0.9, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MedianCI(xs, 0.9, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed gave %+v vs %+v", a, b)
	}
}

func TestBootstrapDefaults(t *testing.T) {
	xs := []float64{1, 2, 3}
	ci, err := BootstrapCI(xs, Mean, -1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Level != 0.95 {
		t.Fatalf("level = %v", ci.Level)
	}
}

// TestBootstrapCIDegenerateSamples pins the edge cases the differential
// comparator leans on: single-observation, all-tied and constant-series
// campaigns must bootstrap to a *degenerate* interval — a point, never NaN
// — because every resample of such a sample reproduces it exactly.
func TestBootstrapCIDegenerateSamples(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		stat func([]float64) float64
		at   float64 // the point the CI must collapse to
	}{
		{"n=1 mean", []float64{42.5}, Mean, 42.5},
		{"n=1 median", []float64{-7}, Median, -7},
		{"all ties mean", []float64{3, 3, 3, 3, 3}, Mean, 3},
		{"all ties median", []float64{1.25, 1.25, 1.25}, Median, 1.25},
		{"constant series median", make([]float64, 100), Median, 0},
		{"constant negative", []float64{-2, -2, -2, -2}, Mean, -2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ci, err := BootstrapCI(tc.xs, tc.stat, 0.95, 400, 9)
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(ci.Lo) || math.IsNaN(ci.Hi) {
				t.Fatalf("degenerate sample bootstrapped to NaN: %+v", ci)
			}
			if ci.Lo != tc.at || ci.Hi != tc.at {
				t.Fatalf("CI = [%v, %v], want the point %v", ci.Lo, ci.Hi, tc.at)
			}
			if ci.Width() != 0 {
				t.Fatalf("width = %v, want 0", ci.Width())
			}
		})
	}
}

// TestShiftCIDegenerateSamples: the two-sample shift bootstrap inherits the
// same degeneracy guarantee — identical constant samples give exactly
// [0, 0], shifted constants give exactly [shift, shift].
func TestShiftCIDegenerateSamples(t *testing.T) {
	cases := []struct {
		name          string
		before, after []float64
		atLo, atHi    float64
	}{
		{"n=1 both, no shift", []float64{5}, []float64{5}, 0, 0},
		{"n=1 both, shifted", []float64{5}, []float64{3}, -2, -2},
		{"ties vs ties", []float64{2, 2, 2}, []float64{2.5, 2.5}, 0.5, 0.5},
		{"constant vs itself", []float64{9, 9, 9, 9}, []float64{9, 9, 9, 9}, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ci, err := MedianShiftCI(tc.before, tc.after, 0.99, 400, 9)
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(ci.Lo) || math.IsNaN(ci.Hi) {
				t.Fatalf("degenerate shift bootstrapped to NaN: %+v", ci)
			}
			if ci.Lo != tc.atLo || ci.Hi != tc.atHi {
				t.Fatalf("CI = [%v, %v], want [%v, %v]", ci.Lo, ci.Hi, tc.atLo, tc.atHi)
			}
		})
	}
}

func TestShiftCIDetectsShift(t *testing.T) {
	r := rand.New(rand.NewPCG(54, 54))
	before := make([]float64, 200)
	after := make([]float64, 200)
	for i := range before {
		before[i] = 100 + r.NormFloat64()
		after[i] = 90 + r.NormFloat64() // a genuine -10 shift
	}
	ci, err := MedianShiftCI(before, after, 0.99, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Hi >= 0 {
		t.Fatalf("CI %+v does not exclude zero for a -10 shift", ci)
	}
	if !ci.Contains(-10) {
		t.Fatalf("CI %+v does not contain the true shift -10", ci)
	}
	// No-shift control: the CI must straddle zero.
	null, err := MedianShiftCI(before, before, 0.99, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !null.Contains(0) {
		t.Fatalf("self-shift CI %+v excludes zero", null)
	}
}

func TestShiftCIDeterministicAndValidated(t *testing.T) {
	before := []float64{1, 2, 3, 4, 5}
	after := []float64{2, 3, 4, 5, 6}
	a, err := MedianShiftCI(before, after, 0.95, 500, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MedianShiftCI(before, after, 0.95, 500, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed gave %+v vs %+v", a, b)
	}
	if _, err := ShiftCI(nil, after, Median, 0.95, 100, 1); err != ErrEmpty {
		t.Fatalf("empty before: err = %v", err)
	}
	if _, err := ShiftCI(before, nil, Median, 0.95, 100, 1); err != ErrEmpty {
		t.Fatalf("empty after: err = %v", err)
	}
}

func TestAutocorrWhiteNoise(t *testing.T) {
	r := rand.New(rand.NewPCG(53, 53))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	if got := Autocorr(xs, 1); math.Abs(got) > 0.06 {
		t.Fatalf("white noise lag-1 = %v", got)
	}
	if TemporalAnomaly(xs) {
		t.Fatal("white noise flagged as anomaly")
	}
}

func TestAutocorrBlockStructure(t *testing.T) {
	// A contiguous low block (Figure 11) has strong lag-1 autocorrelation.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 1500
		if i >= 80 && i < 130 {
			xs[i] = 300
		}
	}
	if got := Autocorr(xs, 1); got < 0.5 {
		t.Fatalf("block structure lag-1 = %v, want > 0.5", got)
	}
	if !TemporalAnomaly(xs) {
		t.Fatal("block anomaly not flagged")
	}
}

func TestAutocorrDegenerate(t *testing.T) {
	if !math.IsNaN(Autocorr([]float64{1, 2}, 5)) {
		t.Fatal("short series should be NaN")
	}
	if got := Autocorr([]float64{3, 3, 3, 3}, 1); got != 0 {
		t.Fatalf("constant series = %v", got)
	}
	if TemporalAnomaly([]float64{1}) {
		t.Fatal("singleton flagged")
	}
}
