package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestBootstrapCICoversTruth(t *testing.T) {
	r := rand.New(rand.NewPCG(51, 51))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = 10 + r.NormFloat64()
	}
	ci, err := MeanCI(xs, 0.95, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(Mean(xs)) {
		t.Fatalf("CI %+v does not contain the sample mean %v", ci, Mean(xs))
	}
	if !ci.Contains(10) && math.Abs(ci.Lo-10) > 0.3 {
		t.Fatalf("CI %+v far from truth 10", ci)
	}
	if ci.Width() <= 0 || ci.Width() > 1 {
		t.Fatalf("width = %v", ci.Width())
	}
}

func TestBootstrapCIShrinksWithN(t *testing.T) {
	r := rand.New(rand.NewPCG(52, 52))
	gen := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		return xs
	}
	small, err := MeanCI(gen(30), 0.95, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	large, err := MeanCI(gen(3000), 0.95, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if large.Width() >= small.Width() {
		t.Fatalf("CI did not shrink: %v -> %v", small.Width(), large.Width())
	}
}

func TestBootstrapCIEmpty(t *testing.T) {
	if _, err := MeanCI(nil, 0.95, 100, 1); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
}

func TestMedianCIDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a, err := MedianCI(xs, 0.9, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MedianCI(xs, 0.9, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed gave %+v vs %+v", a, b)
	}
}

func TestBootstrapDefaults(t *testing.T) {
	xs := []float64{1, 2, 3}
	ci, err := BootstrapCI(xs, Mean, -1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Level != 0.95 {
		t.Fatalf("level = %v", ci.Level)
	}
}

func TestAutocorrWhiteNoise(t *testing.T) {
	r := rand.New(rand.NewPCG(53, 53))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	if got := Autocorr(xs, 1); math.Abs(got) > 0.06 {
		t.Fatalf("white noise lag-1 = %v", got)
	}
	if TemporalAnomaly(xs) {
		t.Fatal("white noise flagged as anomaly")
	}
}

func TestAutocorrBlockStructure(t *testing.T) {
	// A contiguous low block (Figure 11) has strong lag-1 autocorrelation.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 1500
		if i >= 80 && i < 130 {
			xs[i] = 300
		}
	}
	if got := Autocorr(xs, 1); got < 0.5 {
		t.Fatalf("block structure lag-1 = %v, want > 0.5", got)
	}
	if !TemporalAnomaly(xs) {
		t.Fatal("block anomaly not flagged")
	}
}

func TestAutocorrDegenerate(t *testing.T) {
	if !math.IsNaN(Autocorr([]float64{1, 2}, 5)) {
		t.Fatal("short series should be NaN")
	}
	if got := Autocorr([]float64{3, 3, 3, 3}, 1); got != 0 {
		t.Fatalf("constant series = %v", got)
	}
	if TemporalAnomaly([]float64{1}) {
		t.Fatal("singleton flagged")
	}
}
