package stats

import (
	"math"
	"sort"
)

// Loess performs locally-weighted linear regression (LOESS, degree 1) with a
// tricube kernel, the smoother drawn as "solid lines" in the paper's Figure 8.
//
// span is the fraction of observations used per local fit (0 < span <= 1).
// The function returns the smoothed value at each of the query points xq.
func Loess(x, y []float64, span float64, xq []float64) ([]float64, error) {
	if len(x) != len(y) || len(x) == 0 {
		return nil, ErrShape
	}
	if span <= 0 || span > 1 {
		span = 0.75
	}
	cx, cy := sortedCopy(x, y)
	n := len(cx)
	window := int(math.Ceil(span * float64(n)))
	if window < 2 {
		window = 2
	}
	if window > n {
		window = n
	}
	out := make([]float64, len(xq))
	for qi, q := range xq {
		// Find the window of the `window` nearest x-neighbours of q.
		lo := sort.SearchFloat64s(cx, q)
		if lo > 0 {
			lo--
		}
		hi := lo + 1
		for hi-lo < window {
			switch {
			case lo == 0:
				hi++
			case hi == n:
				lo--
			case q-cx[lo-1] <= cx[hi]-q:
				lo--
			default:
				hi++
			}
		}
		// Tricube weights over the window.
		maxd := 0.0
		for i := lo; i < hi; i++ {
			if d := math.Abs(cx[i] - q); d > maxd {
				maxd = d
			}
		}
		if maxd == 0 {
			maxd = 1
		}
		var sw, swx, swy, swxx, swxy float64
		for i := lo; i < hi; i++ {
			u := math.Abs(cx[i]-q) / maxd
			if u >= 1 {
				u = 1
			}
			t := 1 - u*u*u
			w := t * t * t
			sw += w
			swx += w * cx[i]
			swy += w * cy[i]
			swxx += w * cx[i] * cx[i]
			swxy += w * cx[i] * cy[i]
		}
		den := sw*swxx - swx*swx
		if den == 0 || sw == 0 {
			out[qi] = swy / math.Max(sw, 1e-300)
			continue
		}
		b := (sw*swxy - swx*swy) / den
		a := (swy - b*swx) / sw
		out[qi] = a + b*q
	}
	return out, nil
}

// LoessSelf smooths y at the observation points themselves.
func LoessSelf(x, y []float64, span float64) ([]float64, error) {
	return Loess(x, y, span, x)
}
