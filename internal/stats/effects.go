package stats

import (
	"fmt"
	"sort"
	"strings"
)

// FactorEffect summarizes how much of the response variance one factor's
// levels explain — the classic fixed-effects ANOVA decomposition over a
// (possibly fractional) factorial campaign. It is the quantitative form of
// the paper's Figure 13 question: which of the declared factors actually
// drive the bandwidth?
type FactorEffect struct {
	// Factor is the factor name.
	Factor string
	// EtaSquared is SS_between / SS_total in [0, 1].
	EtaSquared float64
	// Levels holds the per-level means, keyed by level.
	Levels map[string]float64
	// Range is max(level mean) - min(level mean).
	Range float64
}

// String renders one effect line.
func (e FactorEffect) String() string {
	return fmt.Sprintf("%-10s eta2=%.3f range=%.4g", e.Factor, e.EtaSquared, e.Range)
}

// Observation is one (factor levels, response) pair for effect estimation.
type Observation struct {
	Levels map[string]string
	Value  float64
}

// MainEffects computes the one-way ANOVA decomposition for every factor
// present in the observations, sorted by descending eta-squared. Factors
// with a single observed level are skipped.
func MainEffects(obs []Observation) ([]FactorEffect, error) {
	if len(obs) < 2 {
		return nil, ErrShape
	}
	var values []float64
	factorSet := map[string]bool{}
	for _, o := range obs {
		values = append(values, o.Value)
		for f := range o.Levels {
			factorSet[f] = true
		}
	}
	grand := Mean(values)
	var ssTotal float64
	for _, v := range values {
		d := v - grand
		ssTotal += d * d
	}

	var out []FactorEffect
	for f := range factorSet {
		groups := map[string][]float64{}
		for _, o := range obs {
			l, ok := o.Levels[f]
			if !ok {
				continue
			}
			groups[l] = append(groups[l], o.Value)
		}
		if len(groups) < 2 {
			continue
		}
		eff := FactorEffect{Factor: f, Levels: map[string]float64{}}
		var ssBetween float64
		minM, maxM := 0.0, 0.0
		first := true
		for l, vs := range groups {
			m := Mean(vs)
			eff.Levels[l] = m
			d := m - grand
			ssBetween += float64(len(vs)) * d * d
			if first {
				minM, maxM = m, m
				first = false
			} else {
				if m < minM {
					minM = m
				}
				if m > maxM {
					maxM = m
				}
			}
		}
		eff.Range = maxM - minM
		if ssTotal > 0 {
			eff.EtaSquared = ssBetween / ssTotal
		}
		out = append(out, eff)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EtaSquared != out[j].EtaSquared {
			return out[i].EtaSquared > out[j].EtaSquared
		}
		return out[i].Factor < out[j].Factor
	})
	return out, nil
}

// RenderEffects formats an effect table.
func RenderEffects(effects []FactorEffect) string {
	var b strings.Builder
	for _, e := range effects {
		fmt.Fprintf(&b, "%s\n", e.String())
	}
	return b.String()
}
