package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width binned view of one sample.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Width  float64
}

// NewHistogram bins xs into `bins` equal-width bins spanning [min, max].
func NewHistogram(xs []float64, bins int) (Histogram, error) {
	if len(xs) == 0 {
		return Histogram{}, ErrEmpty
	}
	if bins < 1 {
		bins = 1
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		hi = lo + 1
	}
	h := Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins), Width: (hi - lo) / float64(bins)}
	for _, x := range xs {
		b := int((x - lo) / h.Width)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
	}
	return h, nil
}

// PeakCount returns the number of local maxima in the histogram after
// ignoring bins below frac*maxCount; two or more indicates multimodality.
func (h Histogram) PeakCount(frac float64) int {
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		return 0
	}
	thresh := int(math.Ceil(frac * float64(maxC)))
	peaks := 0
	inPeak := false
	for _, c := range h.Counts {
		if c >= thresh {
			if !inPeak {
				peaks++
				inPeak = true
			}
		} else {
			inPeak = false
		}
	}
	return peaks
}

// Render draws a vertical ASCII bar chart (one row per bin), suitable for the
// textual figure output of cmd/figures.
func (h Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		lo := h.Lo + float64(i)*h.Width
		n := 0
		if maxC > 0 {
			n = c * width / maxC
		}
		fmt.Fprintf(&b, "%12.4g | %s %d\n", lo, strings.Repeat("#", n), c)
	}
	return b.String()
}
