package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFitLinearExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	f, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Slope, 2, 1e-12) || !almostEq(f.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v", f)
	}
	if !almostEq(f.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", f.R2)
	}
	if !almostEq(f.SSE, 0, 1e-12) {
		t.Fatalf("SSE = %v, want 0", f.SSE)
	}
}

func TestFitLinearDegenerateX(t *testing.T) {
	x := []float64{5, 5, 5}
	y := []float64{1, 2, 3}
	f, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if f.Slope != 0 || !almostEq(f.Intercept, 2, 1e-12) {
		t.Fatalf("degenerate fit = %+v", f)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear(nil, nil); err == nil {
		t.Fatal("want error on empty")
	}
	if _, err := FitLinear([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want error on mismatched lengths")
	}
}

func TestFitLinearNoisyRecovery(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = 10 + 0.5*x[i] + r.NormFloat64()*2
	}
	f, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-0.5) > 0.01 {
		t.Fatalf("slope = %v, want ~0.5", f.Slope)
	}
	if math.Abs(f.Intercept-10) > 1 {
		t.Fatalf("intercept = %v, want ~10", f.Intercept)
	}
}

func TestTheilSenRobustToOutliers(t *testing.T) {
	// 20% wild outliers should barely move Theil-Sen.
	r := rand.New(rand.NewPCG(9, 9))
	n := 100
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = 3 + 2*x[i]
		if i%5 == 0 {
			y[i] += 500 + r.Float64()*500
		}
	}
	f, err := TheilSen(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > 0.1 {
		t.Fatalf("TheilSen slope = %v, want ~2", f.Slope)
	}
	ols, _ := FitLinear(x, y)
	if math.Abs(ols.Intercept-3) < math.Abs(f.Intercept-3) {
		t.Fatalf("OLS intercept (%v) should be more biased than Theil-Sen (%v)", ols.Intercept, f.Intercept)
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Fatalf("r = %v, want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(x, neg)
	if !almostEq(r, -1, 1e-12) {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestResiduals(t *testing.T) {
	f := LinearFit{Slope: 1, Intercept: 0}
	rs := f.Residuals([]float64{1, 2}, []float64{2, 2})
	if rs[0] != 1 || rs[1] != 0 {
		t.Fatalf("residuals = %v", rs)
	}
}

// Property: OLS residuals sum to ~0 when an intercept is fitted.
func TestOLSResidualSumProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) < 3 {
			return true
		}
		n := len(xs)
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i)
		}
		fit, err := FitLinear(x, xs)
		if err != nil {
			return true
		}
		sum := 0.0
		for _, r := range fit.Residuals(x, xs) {
			sum += r
		}
		scale := math.Max(1, math.Abs(Sum(xs)))
		return math.Abs(sum)/scale < 1e-6
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: R2 lies in [0, 1] for OLS with intercept (numerically tolerant).
func TestOLSR2RangeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) < 3 {
			return true
		}
		x := make([]float64, len(xs))
		for i := range x {
			x[i] = float64(i)
		}
		fit, err := FitLinear(x, xs)
		if err != nil {
			return true
		}
		return fit.R2 >= -1e-6 && fit.R2 <= 1+1e-6
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFitLinear(b *testing.B) {
	n := 10_000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = 2*x[i] + 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitLinear(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
