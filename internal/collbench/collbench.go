// Package collbench is the registered engine form of the MPI collective
// campaigns in internal/netbench: timed bcast/allreduce/barrier operations
// on the protocol-level mpisim.Group, with log-uniform randomized sizes
// and raw logging. Its central phenomenon is the allreduce algorithm
// switchover — binomial tree below switch_bytes, ring at and above — the
// collective analogue of the point-to-point protocol breakpoints, which
// adaptive refinement localizes by zooming the size factor.
//
// The execution machinery lives in netbench (CollectiveEngine,
// CollectiveFactory, CollectiveDesign); this package contributes only the
// declarative Spec and the adapt.Refiner hooks that make the campaigns
// buildable through the engine registry.
package collbench

import (
	"fmt"

	"opaquebench/internal/doe"
	"opaquebench/internal/netbench"
	"opaquebench/internal/netsim"
)

// Defaults of a zero Spec, shared by FromSpec and Refine so seed and zoom
// rounds can never drift.
const (
	defaultReps = 4
	// defaultSwitchBytes is the allreduce tree/ring switchover, placed at
	// the taurus eager/detached protocol boundary so the two breakpoint
	// families can be told apart by operation.
	defaultSwitchBytes = 16384
)

// defaultOps lists the collective operations of a zero Spec. Barrier is
// excluded by default: it carries no size dependence to refine.
func defaultOps() []string { return []string{netbench.OpBcast, netbench.OpAllreduce} }

// Spec is the declarative form of a collective campaign — the engine half
// of a suite file's campaign entry (see internal/suite). A zero Spec is an
// 8-rank Taurus campaign over bcast and allreduce with the tree/ring
// switchover at 16 KiB.
type Spec struct {
	// Profile names the simulated network (default "taurus").
	Profile string `json:"profile,omitempty"`
	// Ranks is the communicator size (default 8).
	Ranks int `json:"ranks,omitempty"`
	// N is the number of log-uniform message sizes (default 100).
	N int `json:"n,omitempty"`
	// Min is the minimum message size in bytes (default 16).
	Min int `json:"min,omitempty"`
	// Max is the maximum message size in bytes (default 1 MiB).
	Max int `json:"max,omitempty"`
	// Reps is the replicate count per (size, op) (default 4).
	Reps int `json:"reps,omitempty"`
	// Ops lists the collective operations (default bcast, allreduce).
	Ops []string `json:"ops,omitempty"`
	// SwitchBytes is the allreduce tree/ring switchover; 0 means the
	// 16 KiB default, negative disables the tree (ring everywhere).
	SwitchBytes int `json:"switch_bytes,omitempty"`
}

func (s Spec) withDefaults() Spec {
	if s.Profile == "" {
		s.Profile = "taurus"
	}
	if s.Ranks == 0 {
		s.Ranks = 8
	}
	if s.N <= 0 {
		s.N = 100
	}
	if s.Min <= 0 {
		s.Min = 16
	}
	if s.Max <= 0 {
		s.Max = 1 << 20
	}
	if s.Reps <= 0 {
		s.Reps = defaultReps
	}
	if len(s.Ops) == 0 {
		s.Ops = defaultOps()
	}
	if s.SwitchBytes == 0 {
		s.SwitchBytes = defaultSwitchBytes
	}
	return s
}

// FromSpec resolves a declarative campaign into the engine configuration
// and the materialized design, both fully determined by (spec, seed).
func FromSpec(s Spec, seed uint64) (netbench.CollectiveConfig, *doe.Design, error) {
	s = s.withDefaults()
	p, err := netsim.ProfileByName(s.Profile)
	if err != nil {
		return netbench.CollectiveConfig{}, nil, err
	}
	design, err := netbench.CollectiveDesign(seed, s.N, s.Min, s.Max, s.Reps, s.Ops, true)
	if err != nil {
		return netbench.CollectiveConfig{}, nil, err
	}
	cfg := netbench.CollectiveConfig{
		Profile: p,
		Ranks:   s.Ranks,
		Seed:    seed,
	}
	if s.SwitchBytes > 0 {
		cfg.AllreduceSwitchBytes = s.SwitchBytes
	}
	// Validate the rest (rank count) eagerly, not at first worker start.
	if _, err := netbench.NewCollectiveEngine(cfg); err != nil {
		return netbench.CollectiveConfig{}, nil, err
	}
	return cfg, design, nil
}

// ZoomFactor names the numeric factor adaptive refinement zooms: the
// message size, whose algorithm-switchover breakpoints (tree/ring, plus
// the underlying point-to-point protocol changes) are the engine's central
// phenomenon. Part of the adapt.Refiner hook set.
func (s Spec) ZoomFactor() string { return netbench.FactorSize }

// Refine materializes one adaptive refinement round's zoom design: the
// given refined message sizes crossed with the campaign's operation set,
// replicated (reps, or the spec's replicate count when reps <= 0),
// randomized under the round seed, every trial stamped doe.OriginZoom.
func (s Spec) Refine(seed uint64, levels []int, reps int) (*doe.Design, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("collbench: refine needs at least one size level")
	}
	for _, l := range levels {
		if l < 1 {
			return nil, fmt.Errorf("collbench: refine size %d is not positive", l)
		}
	}
	if reps <= 0 {
		reps = s.Reps
	}
	if reps <= 0 {
		reps = defaultReps
	}
	ops := s.Ops
	if len(ops) == 0 {
		ops = defaultOps()
	}
	for _, op := range ops {
		switch op {
		case netbench.OpBcast, netbench.OpAllreduce, netbench.OpBarrier:
		default:
			return nil, fmt.Errorf("collbench: unknown collective %q", op)
		}
	}
	factors := []doe.Factor{
		doe.IntFactor(netbench.FactorSize, levels...),
		doe.NewFactor(netbench.FactorOp, ops...),
	}
	return doe.FullFactorial(factors,
		doe.Options{Replicates: reps, Seed: seed, Randomize: true, Origin: doe.OriginZoom})
}
