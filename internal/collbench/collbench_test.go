package collbench

import (
	"reflect"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/netbench"
)

func TestFromSpecDefaults(t *testing.T) {
	cfg, design, err := FromSpec(Spec{}, 21)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Profile.Name != "taurus-openmpi-tcp-10g" || cfg.Ranks != 8 {
		t.Fatalf("defaults: profile=%q ranks=%d", cfg.Profile.Name, cfg.Ranks)
	}
	if cfg.AllreduceSwitchBytes != 16384 {
		t.Fatalf("default switchover = %d", cfg.AllreduceSwitchBytes)
	}
	// 100 sizes x 2 ops x 4 reps.
	if got := design.Size(); got != 100*2*4 {
		t.Fatalf("default design size = %d", got)
	}
}

func TestFromSpecSwitchDisabled(t *testing.T) {
	cfg, _, err := FromSpec(Spec{SwitchBytes: -1}, 21)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.AllreduceSwitchBytes != 0 {
		t.Fatalf("negative switch_bytes should disable the tree, got %d", cfg.AllreduceSwitchBytes)
	}
}

func TestFromSpecRejectsBadInputs(t *testing.T) {
	if _, _, err := FromSpec(Spec{Profile: "carrier-pigeon"}, 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, _, err := FromSpec(Spec{Ops: []string{"gather"}}, 1); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, _, err := FromSpec(Spec{Ranks: 1}, 1); err == nil {
		t.Fatal("single-rank communicator accepted")
	}
}

// TestFactoryTrialIndexed ties the spec to the netbench machinery: engines
// built from the resolved config replay the design in reverse order
// byte-identically to a forward pass.
func TestFactoryTrialIndexed(t *testing.T) {
	cfg, design, err := FromSpec(Spec{N: 16, Reps: 2, Ops: []string{netbench.OpBcast, netbench.OpAllreduce, netbench.OpBarrier}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	factory := netbench.CollectiveFactory(cfg)
	fwd, err := factory.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	forward := make([]core.RawRecord, design.Size())
	for i, tr := range design.Trials {
		if forward[i], err = fwd.Execute(tr); err != nil {
			t.Fatal(err)
		}
	}
	rev, err := factory.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	for i := design.Size() - 1; i >= 0; i-- {
		rec, err := rev.Execute(design.Trials[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rec, forward[i]) {
			t.Fatalf("trial %d replayed differently:\n fwd %+v\n rev %+v", i, forward[i], rec)
		}
	}
}

func TestRefineContract(t *testing.T) {
	spec := Spec{Reps: 3}
	if spec.ZoomFactor() != netbench.FactorSize {
		t.Fatalf("zoom factor = %q", spec.ZoomFactor())
	}
	design, err := spec.Refine(99, []int{4096, 16384, 65536}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 3 sizes x 2 default ops x 2 reps.
	if got := design.Size(); got != 3*2*2 {
		t.Fatalf("refined design size = %d", got)
	}
	for _, tr := range design.Trials {
		if tr.Origin != doe.OriginZoom {
			t.Fatalf("trial not stamped OriginZoom: %+v", tr)
		}
	}
	if _, err := spec.Refine(99, nil, 2); err == nil {
		t.Fatal("empty refine levels accepted")
	}
	if _, err := spec.Refine(99, []int{-4}, 2); err == nil {
		t.Fatal("negative refine level accepted")
	}
	if _, err := (Spec{Ops: []string{"gather"}}).Refine(99, []int{64}, 2); err == nil {
		t.Fatal("unknown op accepted in refine")
	}
}

// TestSwitchoverVisibleInDuration plants the breakpoint the adaptive
// fixture localizes: with the tree/ring switchover enabled, allreduce
// duration jumps between the sizes bracketing switch_bytes.
func TestSwitchoverVisibleInDuration(t *testing.T) {
	cfg, _, err := FromSpec(Spec{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := netbench.NewCollectiveEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(size int) float64 {
		d, err := doe.FullFactorial([]doe.Factor{
			doe.IntFactor(netbench.FactorSize, size),
			doe.NewFactor(netbench.FactorOp, netbench.OpAllreduce),
		}, doe.Options{Replicates: 1})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := eng.Execute(d.Trials[0])
		if err != nil {
			t.Fatal(err)
		}
		return rec.Value
	}
	below, above := run(cfg.AllreduceSwitchBytes-1), run(cfg.AllreduceSwitchBytes)
	rel := (below - above) / above
	if rel < 0 {
		rel = -rel
	}
	if rel < 0.2 {
		t.Fatalf("no switchover step: tree %v s at %d vs ring %v s at %d",
			below, cfg.AllreduceSwitchBytes-1, above, cfg.AllreduceSwitchBytes)
	}
}
