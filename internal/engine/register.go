package engine

import (
	"encoding/json"
	"fmt"

	"opaquebench/internal/collbench"
	"opaquebench/internal/core"
	"opaquebench/internal/cpubench"
	"opaquebench/internal/doe"
	"opaquebench/internal/membench"
	"opaquebench/internal/netbench"
	"opaquebench/internal/numabench"
)

// def adapts an engine package's conventional Spec/FromSpec/Factory trio to
// the Definition interface. The Spec type parameter is the engine package's
// declarative config struct; Decode produces it via StrictDecode, so every
// registered engine inherits the same decoding discipline.
type def[S Spec] struct {
	name   string
	higher bool
	build  func(spec S, seed uint64) (core.EngineFactory, *doe.Design, error)
}

func (d def[S]) Name() string         { return d.name }
func (d def[S]) HigherIsBetter() bool { return d.higher }

func (d def[S]) Decode(raw json.RawMessage) (Spec, error) {
	var s S
	if err := StrictDecode(raw, &s); err != nil {
		return nil, err
	}
	return s, nil
}

func (d def[S]) Build(spec Spec, seed uint64) (core.EngineFactory, *doe.Design, error) {
	s, ok := spec.(S)
	if !ok {
		return nil, nil, fmt.Errorf("engine: %s: spec is %T, not this engine's", d.name, spec)
	}
	return d.build(s, seed)
}

func init() {
	// Direction follows each engine's primary metric: membench reports
	// bandwidth (MB/s) and cpubench effective MHz — more is better;
	// netbench reports operation duration in seconds — less is better.
	Register(def[membench.Spec]{name: "membench", higher: true,
		build: func(s membench.Spec, seed uint64) (core.EngineFactory, *doe.Design, error) {
			cfg, design, err := membench.FromSpec(s, seed)
			if err != nil {
				return nil, nil, err
			}
			return membench.Factory(cfg), design, nil
		}})
	Register(def[netbench.Spec]{name: "netbench", higher: false,
		build: func(s netbench.Spec, seed uint64) (core.EngineFactory, *doe.Design, error) {
			cfg, design, err := netbench.FromSpec(s, seed)
			if err != nil {
				return nil, nil, err
			}
			return netbench.Factory(cfg), design, nil
		}})
	Register(def[cpubench.Spec]{name: "cpubench", higher: true,
		build: func(s cpubench.Spec, seed uint64) (core.EngineFactory, *doe.Design, error) {
			cfg, design, err := cpubench.FromSpec(s, seed)
			if err != nil {
				return nil, nil, err
			}
			return cpubench.Factory(cfg), design, nil
		}})
	// numabench reports streaming bandwidth (MB/s) — more is better;
	// collbench reports collective duration in seconds — less is better.
	Register(def[numabench.Spec]{name: "numabench", higher: true,
		build: func(s numabench.Spec, seed uint64) (core.EngineFactory, *doe.Design, error) {
			cfg, design, err := numabench.FromSpec(s, seed)
			if err != nil {
				return nil, nil, err
			}
			return numabench.Factory(cfg), design, nil
		}})
	Register(def[collbench.Spec]{name: "collbench", higher: false,
		build: func(s collbench.Spec, seed uint64) (core.EngineFactory, *doe.Design, error) {
			cfg, design, err := collbench.FromSpec(s, seed)
			if err != nil {
				return nil, nil, err
			}
			return netbench.CollectiveFactory(cfg), design, nil
		}})
}
