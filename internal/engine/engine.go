// Package engine is the campaign-engine registry: the one place where the
// benchmark engines are enumerated and the one contract every engine must
// satisfy to be orchestrated. A Definition captures everything the
// orchestration layers need per engine — the name, strict declarative-spec
// decoding, resolution of a spec into an engine factory plus a materialized
// design, the primary metric's direction, and (through Spec) the adaptive
// planner's refinement hooks — so the suite orchestrator, the differential
// comparator and the CLIs consume engines generically instead of switching
// on engine names. Adding an engine is one package plus one Register call
// (see DESIGN.md, "Adding an engine"); internal/engine/enginetest proves the
// contract for every registered engine automatically.
package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"opaquebench/internal/adapt"
	"opaquebench/internal/core"
	"opaquebench/internal/doe"
)

// Spec is a decoded engine configuration: a plain-data value whose canonical
// JSON form (Canonical) is the engine half of the campaign's identity, and
// which doubles as the engine's adaptive refinement hook (adapt.Refiner).
type Spec interface {
	adapt.Refiner
}

// Definition adapts one benchmark engine to the orchestration layers.
// Implementations must be stateless: every method is a pure function of its
// arguments, so decoded specs, built designs and the declared direction can
// never drift between calls — the properties enginetest asserts.
type Definition interface {
	// Name is the engine's registry key, as written in suite specs.
	Name() string
	// Decode strictly decodes a raw engine config (unknown fields and
	// trailing data rejected; empty raw means the engine's defaults) into
	// the engine's Spec. Decoding must be idempotent: re-decoding the
	// canonical form of a decoded spec yields an equal spec.
	Decode(raw json.RawMessage) (Spec, error)
	// Build resolves a decoded spec into the engine factory and the
	// materialized design, both fully determined by (spec, seed).
	Build(spec Spec, seed uint64) (core.EngineFactory, *doe.Design, error)
	// HigherIsBetter declares the primary metric's direction: true when
	// more is better (bandwidth, effective MHz), false when less is
	// (operation latency).
	HigherIsBetter() bool
}

// Canonical re-marshals a decoded spec into its canonical JSON form — the
// engine-config component of spec hashes and cache keys. Formatting, key
// order and implicit defaults of the original raw config do not survive it;
// semantic content does.
func Canonical(spec Spec) ([]byte, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("engine: canonical config marshal: %w", err)
	}
	return b, nil
}

// StrictDecode unmarshals raw into v rejecting unknown fields and trailing
// data. An empty raw decodes as the zero value. This is the decoding
// discipline every Definition.Decode must apply, shared here so engine
// definitions and the suite spec parser cannot diverge on strictness.
func StrictDecode(raw json.RawMessage, v any) error {
	if len(raw) == 0 {
		raw = []byte("{}")
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data")
	}
	return nil
}

// registry holds the registered definitions by name. Registration happens in
// this package's init only, so reads never race and need no lock.
var registry = map[string]Definition{}

// Register adds a definition under its name. It panics on an empty name or a
// duplicate registration: both are programming errors in an engine package,
// and letting a second registration silently win would give two engines the
// same identity in every cache key and spec hash.
func Register(def Definition) {
	name := def.Name()
	if name == "" {
		panic("engine: Register: definition has an empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: Register: engine %q already registered", name))
	}
	registry[name] = def
}

// Lookup returns the definition registered under name.
func Lookup(name string) (Definition, bool) {
	def, ok := registry[name]
	return def, ok
}

// Names lists the registered engine names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
