package engine

import (
	"sort"
	"testing"
)

// TestRegisteredNames asserts the three shipped engines are registered and
// that Names is sorted and duplicate-free. Containment, not equality: other
// tests in this binary may register throwaway definitions.
func TestRegisteredNames(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("Names() repeats %q: %v", n, names)
		}
		seen[n] = true
	}
	for _, want := range []string{"membench", "netbench", "cpubench"} {
		if !seen[want] {
			t.Fatalf("engine %q not registered; have %v", want, names)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, name := range Names() {
		def, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missed an engine Names() listed", name)
		}
		if def.Name() != name {
			t.Fatalf("Lookup(%q) returned definition named %q", name, def.Name())
		}
	}
	if _, ok := Lookup("no-such-engine"); ok {
		t.Fatal("Lookup invented an engine")
	}
}

// namedDef is a minimal definition for registration-guard tests.
type namedDef struct {
	Definition
	name string
}

func (d namedDef) Name() string { return d.name }

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(namedDef{name: "engine-test-dup"})
	mustPanic(t, "duplicate Register", func() {
		Register(namedDef{name: "engine-test-dup"})
	})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	mustPanic(t, "empty-name Register", func() {
		Register(namedDef{name: ""})
	})
}

func TestStrictDecode(t *testing.T) {
	type cfg struct {
		Reps int `json:"reps,omitempty"`
	}
	var c cfg
	if err := StrictDecode(nil, &c); err != nil || c.Reps != 0 {
		t.Fatalf("empty raw: got %+v, %v; want zero value, nil", c, err)
	}
	if err := StrictDecode([]byte(`{"reps": 3}`), &c); err != nil || c.Reps != 3 {
		t.Fatalf("plain decode: got %+v, %v", c, err)
	}
	if err := StrictDecode([]byte(`{"repz": 3}`), &c); err == nil {
		t.Fatal("unknown field accepted")
	}
	if err := StrictDecode([]byte(`{"reps": 3} {}`), &c); err == nil {
		t.Fatal("trailing data accepted")
	}
}
