package enginetest_test

import (
	"encoding/json"
	"testing"

	"opaquebench/internal/engine"
	"opaquebench/internal/engine/enginetest"
)

// smallConfigs keeps the battery fast: each registered engine gets a
// reduced but representative config (few levels, few replicates) whose
// design still has room for the refine check to zoom into. An engine
// missing from this map runs with its defaults — correct, just slower.
var smallConfigs = map[string]json.RawMessage{
	"membench":  json.RawMessage(`{"sizes": [1024, 16384, 262144], "reps": 3}`),
	"netbench":  json.RawMessage(`{"n": 12, "reps": 2}`),
	"cpubench":  json.RawMessage(`{"nloops": [20, 200, 2000], "reps": 3}`),
	"numabench": json.RawMessage(`{"n": 12, "reps": 2, "policies": ["firsttouch", "interleave"]}`),
	"collbench": json.RawMessage(`{"n": 12, "reps": 2}`),
}

// TestRegisteredEnginesConformance runs the full six-check battery against
// every engine in the registry — the gate that makes "registered" mean
// "inherits the determinism/replay discipline", automatically including
// engines added after this test was written.
func TestRegisteredEnginesConformance(t *testing.T) {
	names := engine.Names()
	if len(names) == 0 {
		t.Fatal("no engines registered")
	}
	for _, name := range names {
		def, ok := engine.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missed an engine Names() listed", name)
		}
		t.Run(name, func(t *testing.T) {
			enginetest.Conformance(t, def, smallConfigs[name])
		})
	}
}
