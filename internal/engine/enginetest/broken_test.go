package enginetest_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/engine"
	"opaquebench/internal/engine/enginetest"
	"opaquebench/internal/meta"
	"opaquebench/internal/xrand"
)

// The toy engine: a minimal, fully in-contract Definition whose single
// breakage knob (mode) violates exactly one clause of the engine contract
// at a time. It is deliberately never registered — the global registry must
// hold only real engines — so the battery exercises it directly.
const (
	breakNothing   = ""          // in contract: the positive control
	breakHistory   = "history"   // records depend on prior Execute calls
	breakCanonical = "canonical" // Decode is not idempotent
	breakBuild     = "build"     // Build varies between same-seed calls
	breakRefine    = "refine"    // Refine ignores levels/bracket/origin
	breakDirection = "direction" // HigherIsBetter flip-flops
)

type toySpec struct {
	Levels []int `json:"levels,omitempty"`
	Reps   int   `json:"reps,omitempty"`

	mode string
}

func (s toySpec) levels() []int {
	if len(s.Levels) == 0 {
		return []int{10, 100, 1000}
	}
	return s.Levels
}

func (s toySpec) reps() int {
	if s.Reps <= 0 {
		return 2
	}
	return s.Reps
}

func (s toySpec) ZoomFactor() string { return "x" }

func (s toySpec) Refine(seed uint64, levels []int, reps int) (*doe.Design, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("toy: refine needs at least one level")
	}
	if reps <= 0 {
		reps = s.reps()
	}
	origin := doe.OriginZoom
	if s.mode == breakRefine {
		// Smuggle in a level far outside any bracket and drop the zoom
		// provenance — two distinct contract violations at once.
		levels = append(append([]int(nil), levels...), 1<<30)
		origin = ""
	}
	return doe.FullFactorial([]doe.Factor{doe.IntFactor("x", levels...)},
		doe.Options{Replicates: reps, Seed: seed, Randomize: true, Origin: origin})
}

type toyDef struct {
	mode   string
	builds int  // Build call counter, driving the breakBuild drift
	dirPar bool // flip-flop state for breakDirection
}

func (d *toyDef) Name() string { return "toybench" }

func (d *toyDef) HigherIsBetter() bool {
	if d.mode == breakDirection {
		d.dirPar = !d.dirPar
		return d.dirPar
	}
	return true
}

func (d *toyDef) Decode(raw json.RawMessage) (engine.Spec, error) {
	var s toySpec
	if err := engine.StrictDecode(raw, &s); err != nil {
		return nil, err
	}
	if d.mode == breakCanonical {
		// Every decode shifts the spec, so canonicalize → re-decode never
		// reaches a fixed point.
		s.Reps = s.reps() + 1
	}
	s.mode = d.mode
	return s, nil
}

func (d *toyDef) Build(spec engine.Spec, seed uint64) (core.EngineFactory, *doe.Design, error) {
	s, ok := spec.(toySpec)
	if !ok {
		return nil, nil, fmt.Errorf("toy: spec is %T", spec)
	}
	if d.mode == breakBuild {
		d.builds++
		seed += uint64(d.builds) // a different design every call
	}
	design, err := doe.FullFactorial([]doe.Factor{doe.IntFactor("x", s.levels()...)},
		doe.Options{Replicates: s.reps(), Seed: seed, Randomize: true})
	if err != nil {
		return nil, nil, err
	}
	history := d.mode == breakHistory
	factory := core.EngineFactoryFunc(func() (core.Engine, error) {
		return &toyEngine{seed: seed, history: history}, nil
	})
	return factory, design, nil
}

type toyEngine struct {
	seed    uint64
	history bool
	calls   int
}

func (e *toyEngine) Environment() *meta.Environment { return meta.New() }

func (e *toyEngine) Execute(t doe.Trial) (core.RawRecord, error) {
	x, err := t.Point.Float("x")
	if err != nil {
		return core.RawRecord{}, err
	}
	// Trial-indexed by construction: everything derives from (seed, Seq).
	v := x + float64(xrand.DeriveIndexed(e.seed, "toy", t.Seq)%1000)/1000
	if e.history {
		// The classic violation: state accumulated across Execute calls
		// leaks into the record, so records depend on execution order.
		v += float64(e.calls)
		e.calls++
	}
	return core.RawRecord{Value: v, Seconds: v * 1e-6, At: float64(t.Seq)}, nil
}

// TestToyPassesBattery is the positive control: the unbroken toy satisfies
// every check, so the negative tests below fail for the injected reason and
// not for some unrelated contract gap in the toy itself.
func TestToyPassesBattery(t *testing.T) {
	enginetest.Conformance(t, &toyDef{}, nil)
}

// TestBrokenToyFailsEachCheck proves every check has teeth: for each check
// of the battery there is a breakage mode that makes exactly that
// violation, and the check must reject it.
func TestBrokenToyFailsEachCheck(t *testing.T) {
	breaks := map[string]string{
		"parallel-determinism":  breakHistory,
		"indexed-vs-sequential": breakHistory,
		"canonical-fixed-point": breakCanonical,
		"build-determinism":     breakBuild,
		"refine-contract":       breakRefine,
		"direction":             breakDirection,
	}
	checks := enginetest.Checks()
	if len(checks) != len(breaks) {
		t.Fatalf("battery has %d checks, negative table covers %d — extend the table", len(checks), len(breaks))
	}
	for _, c := range checks {
		mode, ok := breaks[c.Name]
		if !ok {
			t.Fatalf("no breakage mode for check %q — extend the table", c.Name)
		}
		t.Run(c.Name, func(t *testing.T) {
			err := c.Fn(&toyDef{mode: mode}, nil)
			if err == nil {
				t.Fatalf("check %q passed a toy engine broken via %q", c.Name, mode)
			}
			t.Logf("correctly rejected: %v", err)
		})
	}
}
