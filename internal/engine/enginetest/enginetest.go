// Package enginetest is the conformance battery for engine.Definition
// implementations: six executable checks covering the determinism and
// replay discipline every registered engine must uphold — byte-identical
// serial-vs-parallel output, trial-indexed (history-independent) records,
// idempotent spec decoding, same-seed build determinism, the adaptive
// refine-hook contract, and a stable metric direction. New engines run the
// whole battery with one Conformance call; the package's own tests prove
// each check catches its violation by feeding it a deliberately broken toy
// engine.
package enginetest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/engine"
	"opaquebench/internal/runner"
)

// checkSeed is the campaign seed the battery runs under, and refineSeed the
// round seed fed to the refine hook. Arbitrary but fixed: every contract
// here must hold for any seed, so one suffices.
const (
	checkSeed  uint64 = 77
	refineSeed uint64 = 78
	refineReps        = 2
)

// workerCounts are the worker counts the parallel-determinism check
// compares, mirroring the repository-wide 1/4/8 convention.
var workerCounts = []int{1, 4, 8}

// Check is one named conformance assertion over an engine definition.
type Check struct {
	// Name identifies the check in test output.
	Name string
	// Fn runs the check against def configured by config (nil means the
	// engine's defaults) and returns nil iff the contract holds.
	Fn func(def engine.Definition, config json.RawMessage) error
}

// Checks returns the full battery in run order.
func Checks() []Check {
	return []Check{
		{"parallel-determinism", CheckParallelDeterminism},
		{"indexed-vs-sequential", CheckIndexedSequential},
		{"canonical-fixed-point", CheckCanonicalFixedPoint},
		{"build-determinism", CheckBuildDeterminism},
		{"refine-contract", CheckRefineContract},
		{"direction", CheckDirection},
	}
}

// Conformance runs the whole battery against one engine definition, each
// check as a subtest. config is the raw engine config the battery builds
// campaigns from; nil exercises the engine's defaults. Prefer a small
// config: the battery executes the design several times over.
func Conformance(t *testing.T, def engine.Definition, config json.RawMessage) {
	t.Helper()
	for _, c := range Checks() {
		t.Run(c.Name, func(t *testing.T) {
			if err := c.Fn(def, config); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// decodeAndBuild is the common front half of the execution checks.
func decodeAndBuild(def engine.Definition, config json.RawMessage) (engine.Spec, core.EngineFactory, *doe.Design, error) {
	spec, err := def.Decode(config)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("decode config: %w", err)
	}
	factory, design, err := def.Build(spec, checkSeed)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("build: %w", err)
	}
	if factory == nil || design == nil {
		return nil, nil, nil, fmt.Errorf("build returned factory %v, design %v", factory, design)
	}
	if design.Size() == 0 {
		return nil, nil, nil, fmt.Errorf("build produced an empty design")
	}
	return spec, factory, design, nil
}

// runToSinks executes the design through the parallel runner, capturing the
// streamed CSV and JSONL bytes.
func runToSinks(design *doe.Design, factory core.EngineFactory, workers int) (csv, jsonl []byte, err error) {
	var csvBuf, jsonlBuf bytes.Buffer
	_, err = runner.Run(context.Background(), design, factory, runner.Config{
		Workers: workers,
		Sinks:   []runner.RecordSink{runner.NewCSVSink(&csvBuf), runner.NewJSONLSink(&jsonlBuf)},
	})
	return csvBuf.Bytes(), jsonlBuf.Bytes(), err
}

// CheckParallelDeterminism asserts the engine's streamed campaign output is
// byte-identical across worker counts 1, 4 and 8 — the sharded-equals-
// serial guarantee the whole cache/replay stack rests on.
func CheckParallelDeterminism(def engine.Definition, config json.RawMessage) error {
	_, factory, design, err := decodeAndBuild(def, config)
	if err != nil {
		return err
	}
	var refCSV, refJSONL []byte
	for i, w := range workerCounts {
		csv, jsonl, err := runToSinks(design, factory, w)
		if err != nil {
			return fmt.Errorf("workers %d: %w", w, err)
		}
		if i == 0 {
			refCSV, refJSONL = csv, jsonl
			continue
		}
		if !bytes.Equal(csv, refCSV) {
			return fmt.Errorf("CSV output differs between workers %d and workers %d", workerCounts[0], w)
		}
		if !bytes.Equal(jsonl, refJSONL) {
			return fmt.Errorf("JSONL output differs between workers %d and workers %d", workerCounts[0], w)
		}
	}
	return nil
}

// CheckIndexedSequential asserts factory-made engines are trial-indexed: a
// serial core.Campaign.Run with one engine, a sharded runner.Run, and a
// fresh engine executing the design in reverse order all produce identical
// records. Any history dependence — state carried from one Execute to the
// next that leaks into a record — breaks at least one of the three.
func CheckIndexedSequential(def engine.Definition, config json.RawMessage) error {
	_, factory, design, err := decodeAndBuild(def, config)
	if err != nil {
		return err
	}
	eng, err := factory.NewEngine()
	if err != nil {
		return fmt.Errorf("new engine: %w", err)
	}
	camp := core.Campaign{Design: design, Engine: eng}
	serial, err := camp.Run()
	if err != nil {
		return fmt.Errorf("sequential run: %w", err)
	}
	sharded, err := runner.Run(context.Background(), design, factory, runner.Config{Workers: 4})
	if err != nil {
		return fmt.Errorf("sharded run: %w", err)
	}
	for i := range serial.Records {
		if !reflect.DeepEqual(serial.Records[i], sharded.Records[i]) {
			return fmt.Errorf("trial %d: sequential record %+v != sharded record %+v",
				i, serial.Records[i], sharded.Records[i])
		}
	}
	reversed, err := factory.NewEngine()
	if err != nil {
		return fmt.Errorf("new engine: %w", err)
	}
	for i := design.Size() - 1; i >= 0; i-- {
		t := design.Trials[i]
		rec, err := reversed.Execute(t)
		if err != nil {
			return fmt.Errorf("reverse-order trial %d: %w", t.Seq, err)
		}
		rec.Seq, rec.Rep = t.Seq, t.Rep
		if rec.Point == nil {
			rec.Point = t.Point
		}
		if !reflect.DeepEqual(rec, serial.Records[i]) {
			return fmt.Errorf("trial %d record depends on execution order: in-order %+v, reverse-order %+v",
				t.Seq, serial.Records[i], rec)
		}
	}
	return nil
}

// CheckCanonicalFixedPoint asserts decoding is idempotent: decode →
// canonicalize → re-decode → re-canonicalize reaches a fixed point in one
// step, for both the given config and the engine's defaults (nil). Without
// it the same study could hash two ways.
func CheckCanonicalFixedPoint(def engine.Definition, config json.RawMessage) error {
	for _, raw := range []json.RawMessage{config, nil} {
		spec, err := def.Decode(raw)
		if err != nil {
			return fmt.Errorf("decode %q: %w", raw, err)
		}
		canon, err := engine.Canonical(spec)
		if err != nil {
			return fmt.Errorf("canonicalize: %w", err)
		}
		again, err := def.Decode(canon)
		if err != nil {
			return fmt.Errorf("canonical form %s rejected: %w", canon, err)
		}
		canon2, err := engine.Canonical(again)
		if err != nil {
			return fmt.Errorf("re-canonicalize: %w", err)
		}
		if !bytes.Equal(canon, canon2) {
			return fmt.Errorf("canonicalization is not a fixed point:\nfirst:  %s\nsecond: %s", canon, canon2)
		}
		if !reflect.DeepEqual(spec, again) {
			return fmt.Errorf("re-decoded spec differs: %+v vs %+v", spec, again)
		}
	}
	return nil
}

// CheckBuildDeterminism asserts Build is a pure function of (spec, seed):
// two builds yield byte-identical design CSVs and engines whose executed
// records agree trial for trial.
func CheckBuildDeterminism(def engine.Definition, config json.RawMessage) error {
	spec, err := def.Decode(config)
	if err != nil {
		return fmt.Errorf("decode config: %w", err)
	}
	f1, d1, err := def.Build(spec, checkSeed)
	if err != nil {
		return fmt.Errorf("first build: %w", err)
	}
	f2, d2, err := def.Build(spec, checkSeed)
	if err != nil {
		return fmt.Errorf("second build: %w", err)
	}
	csv1, err := designCSV(d1)
	if err != nil {
		return err
	}
	csv2, err := designCSV(d2)
	if err != nil {
		return err
	}
	if !bytes.Equal(csv1, csv2) {
		return fmt.Errorf("two same-seed builds materialized different designs")
	}
	e1, err := f1.NewEngine()
	if err != nil {
		return fmt.Errorf("new engine: %w", err)
	}
	e2, err := f2.NewEngine()
	if err != nil {
		return fmt.Errorf("new engine: %w", err)
	}
	n := d1.Size()
	if n > 16 {
		n = 16
	}
	for i := 0; i < n; i++ {
		t := d1.Trials[i]
		r1, err1 := e1.Execute(t)
		r2, err2 := e2.Execute(t)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("trial %d: execute errors %v / %v", t.Seq, err1, err2)
		}
		if !reflect.DeepEqual(r1, r2) {
			return fmt.Errorf("trial %d: two same-seed builds disagree: %+v vs %+v", t.Seq, r1, r2)
		}
	}
	return nil
}

// CheckRefineContract asserts the engine's adaptive refine hook honors the
// planner's interface: the zoom factor names a numeric factor of the seed
// design, a refined design carries exactly the requested levels (all
// strictly inside the chosen bracket), every trial is stamped
// doe.OriginZoom and replicated the requested number of times, refinement
// is deterministic in its seed, and an empty level set is an error.
func CheckRefineContract(def engine.Definition, config json.RawMessage) error {
	spec, _, design, err := decodeAndBuild(def, config)
	if err != nil {
		return err
	}
	factor := spec.ZoomFactor()
	if factor == "" {
		return fmt.Errorf("ZoomFactor is empty")
	}
	levels, err := factorLevels(design, factor)
	if err != nil {
		return err
	}
	if len(levels) < 2 {
		return fmt.Errorf("seed design has %d distinct %q levels; the refine contract needs at least 2", len(levels), factor)
	}
	lo, hi := widestBracket(levels)
	zoom := insideLevels(lo, hi, 3)
	if len(zoom) == 0 {
		return fmt.Errorf("bracket (%d, %d) of factor %q leaves no room to zoom; use a config with wider-spaced levels", lo, hi, factor)
	}

	refined, err := spec.Refine(refineSeed, zoom, refineReps)
	if err != nil {
		return fmt.Errorf("refine: %w", err)
	}
	if refined == nil || refined.Size() == 0 {
		return fmt.Errorf("refine returned an empty design")
	}
	perPoint := map[string]int{}
	for _, t := range refined.Trials {
		if t.Origin != doe.OriginZoom {
			return fmt.Errorf("refined trial %d has origin %q, want %q", t.Seq, t.Origin, doe.OriginZoom)
		}
		perPoint[t.Point.Key()]++
	}
	for key, n := range perPoint {
		if n != refineReps {
			return fmt.Errorf("refined point %s replicated %d times, want %d", key, n, refineReps)
		}
	}
	got, err := factorLevels(refined, factor)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(got, zoom) {
		return fmt.Errorf("refined design carries %q levels %v, want exactly the requested %v", factor, got, zoom)
	}
	for _, l := range got {
		if l <= lo || l >= hi {
			return fmt.Errorf("refined level %d escapes the bracket (%d, %d)", l, lo, hi)
		}
	}

	again, err := spec.Refine(refineSeed, zoom, refineReps)
	if err != nil {
		return fmt.Errorf("second refine: %w", err)
	}
	csv1, err := designCSV(refined)
	if err != nil {
		return err
	}
	csv2, err := designCSV(again)
	if err != nil {
		return err
	}
	if !bytes.Equal(csv1, csv2) {
		return fmt.Errorf("two same-seed refinements materialized different designs")
	}

	if _, err := spec.Refine(refineSeed, nil, refineReps); err == nil {
		return fmt.Errorf("refine accepted an empty level set")
	}
	return nil
}

// CheckDirection asserts the definition declares a metric direction and
// that repeated queries agree — the comparator consults it once per
// campaign pair, so a flip-flopping answer would make verdicts depend on
// evaluation order.
func CheckDirection(def engine.Definition, config json.RawMessage) error {
	first := def.HigherIsBetter()
	for i := 0; i < 4; i++ {
		if def.HigherIsBetter() != first {
			return fmt.Errorf("HigherIsBetter flip-flops between calls")
		}
	}
	return nil
}

// designCSV materializes a design for byte comparison.
func designCSV(d *doe.Design) ([]byte, error) {
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		return nil, fmt.Errorf("materialize design: %w", err)
	}
	return buf.Bytes(), nil
}

// factorLevels collects the distinct integer levels of the named factor
// across the design's trials, sorted ascending.
func factorLevels(d *doe.Design, factor string) ([]int, error) {
	seen := map[int]bool{}
	for _, t := range d.Trials {
		v, err := t.Point.Int(factor)
		if err != nil {
			return nil, fmt.Errorf("trial %d: factor %q: %w", t.Seq, factor, err)
		}
		seen[v] = true
	}
	levels := make([]int, 0, len(seen))
	for v := range seen {
		levels = append(levels, v)
	}
	sort.Ints(levels)
	return levels, nil
}

// widestBracket picks the adjacent level pair with the largest ratio — the
// bracket with the most interior room on the log scale engines grid over.
func widestBracket(levels []int) (lo, hi int) {
	lo, hi = levels[0], levels[1]
	best := float64(hi) / float64(lo)
	for i := 1; i+1 < len(levels); i++ {
		if r := float64(levels[i+1]) / float64(levels[i]); r > best {
			best, lo, hi = r, levels[i], levels[i+1]
		}
	}
	return lo, hi
}

// insideLevels generates up to k log-spaced integer levels strictly inside
// (lo, hi), deduplicated — the shape adapt's zoom planner requests.
func insideLevels(lo, hi, k int) []int {
	var out []int
	last := lo
	for j := 1; j <= k; j++ {
		frac := float64(j) / float64(k+1)
		v := int(float64(lo)*math.Pow(float64(hi)/float64(lo), frac) + 0.5)
		if v <= last || v >= hi {
			continue
		}
		out = append(out, v)
		last = v
	}
	return out
}
