package membench

import (
	"math"
	"strings"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/cpusim"
	"opaquebench/internal/doe"
	"opaquebench/internal/memsim"
	"opaquebench/internal/ossim"
	"opaquebench/internal/stats"
)

func mustEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func sizesKB(ks ...int) []int {
	out := make([]int, len(ks))
	for i, k := range ks {
		out[i] = k << 10
	}
	return out
}

func runMem(t *testing.T, cfg Config, factors []doe.Factor, reps int) *core.Results {
	t.Helper()
	d, err := doe.FullFactorial(factors, doe.Options{Replicates: reps, Seed: cfg.Seed, Randomize: true})
	if err != nil {
		t.Fatal(err)
	}
	c := core.Campaign{Design: d, Engine: mustEngine(t, cfg)}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Fatal("nil machine accepted")
	}
	if _, err := NewEngine(Config{Machine: memsim.Opteron(), Allocation: "slab"}); err == nil {
		t.Fatal("bad allocation accepted")
	}
}

func TestParseParams(t *testing.T) {
	p := doe.Point{"size": "4096", "stride": "2", "elem": "8", "nloops": "50", "unroll": "1"}
	kp, err := ParseParams(p)
	if err != nil {
		t.Fatal(err)
	}
	if kp.SizeBytes != 4096 || kp.Stride != 2 || kp.ElemBytes != 8 || kp.NLoops != 50 || !kp.Unroll {
		t.Fatalf("params = %+v", kp)
	}
}

func TestParseParamsDefaults(t *testing.T) {
	kp, err := ParseParams(doe.Point{"size": "1024"})
	if err != nil {
		t.Fatal(err)
	}
	if kp.Stride != 1 || kp.ElemBytes != 4 || kp.NLoops != 100 || kp.Unroll {
		t.Fatalf("defaults = %+v", kp)
	}
	if _, err := ParseParams(doe.Point{}); err == nil {
		t.Fatal("missing size accepted")
	}
	if _, err := ParseParams(doe.Point{"size": "4096", "stride": "x"}); err == nil {
		t.Fatal("bad stride accepted")
	}
}

func TestEngineProducesPositiveBandwidth(t *testing.T) {
	cfg := Config{Machine: memsim.Opteron(), Seed: 1}
	res := runMem(t, cfg, Factors(sizesKB(8, 16, 32), []int{1, 2}, nil, []int{100}, nil), 2)
	if res.Len() != 12 {
		t.Fatalf("records = %d", res.Len())
	}
	for _, r := range res.Records {
		if r.Value <= 0 || math.IsNaN(r.Value) {
			t.Fatalf("bandwidth = %v", r.Value)
		}
		if r.Extra["bound_by"] == "" {
			t.Fatal("missing bound_by annotation")
		}
	}
}

func TestEngineDeterministicPerSeed(t *testing.T) {
	cfg := Config{Machine: memsim.PentiumIV(), Seed: 9}
	factors := Factors(sizesKB(4, 8), nil, nil, []int{50}, nil)
	a := runMem(t, cfg, factors, 3)
	b := runMem(t, cfg, factors, 3)
	for i := range a.Records {
		if a.Records[i].Value != b.Records[i].Value {
			t.Fatal("same seed diverged")
		}
	}
}

func TestEngineEnvironmentCapture(t *testing.T) {
	cfg := Config{Machine: memsim.CoreI7(), Seed: 2, Governor: cpusim.Ondemand{}, Allocation: AllocArena}
	env := mustEngine(t, cfg).Environment()
	if env.Get("machine") != "Core i7-2600" {
		t.Fatalf("machine = %q", env.Get("machine"))
	}
	if env.Get("governor") != "ondemand" {
		t.Fatalf("governor = %q", env.Get("governor"))
	}
	if env.Get("alloc") != "arena-random-offset" {
		t.Fatalf("alloc = %q", env.Get("alloc"))
	}
}

func TestDVFSNLoopsMatters(t *testing.T) {
	// Section IV.2: under ondemand, nloops — which "should not have any
	// influence on the final bandwidth" — separates low and high plateaus.
	bandwidthFor := func(nloops int) float64 {
		cfg := Config{
			Machine:           memsim.CoreI7(),
			Seed:              3,
			Governor:          cpusim.Ondemand{},
			SamplingPeriodSec: 0.01,
		}
		res := runMem(t, cfg, Factors(sizesKB(16), nil, nil, []int{nloops}, nil), 20)
		return stats.Median(res.Values())
	}
	small := bandwidthFor(20)
	large := bandwidthFor(20000)
	if large < small*1.5 {
		t.Fatalf("ondemand should separate nloops plateaus: small=%v large=%v", small, large)
	}
}

func TestDVFSPerformanceGovernorImmune(t *testing.T) {
	bandwidthFor := func(nloops int) float64 {
		cfg := Config{Machine: memsim.CoreI7(), Seed: 4, Governor: cpusim.Performance{}}
		res := runMem(t, cfg, Factors(sizesKB(16), nil, nil, []int{nloops}, nil), 10)
		return stats.Median(res.Values())
	}
	small := bandwidthFor(20)
	large := bandwidthFor(20000)
	if math.Abs(large-small)/small > 0.05 {
		t.Fatalf("performance governor should be nloops-invariant: %v vs %v", small, large)
	}
}

func TestRTPolicyCreatesSecondMode(t *testing.T) {
	// Section IV.3 on the simulated ARM: RT scheduling policy yields a
	// bimodal, temporally contiguous second mode.
	cfg := Config{
		Machine: memsim.ARMSnowball(),
		Seed:    6,
		Sched: ossim.Config{
			Policy:          ossim.PolicyRT,
			DaemonPeriodSec: 8,
		},
		GapSec: 0.2,
	}
	res := runMem(t, cfg, Factors(sizesKB(2, 4, 8), nil, nil, []int{200}, nil), 30)
	d, err := core.DiagnoseModes(res)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Split.Bimodal(0.05, 2) {
		t.Fatalf("RT policy should produce two modes: %+v", d.Split)
	}
	if d.Split.Ratio() < 3 {
		t.Fatalf("mode ratio = %v, want >= 3", d.Split.Ratio())
	}
	if d.Contiguity < 0.4 {
		t.Fatalf("low mode should be temporally clustered: contiguity=%v", d.Contiguity)
	}
}

func TestOtherPolicyUnimodal(t *testing.T) {
	cfg := Config{
		Machine: memsim.ARMSnowball(),
		Seed:    6,
		Sched:   ossim.Config{Policy: ossim.PolicyOther},
		GapSec:  0.02,
	}
	res := runMem(t, cfg, Factors(sizesKB(2, 4, 8), nil, nil, []int{200}, nil), 30)
	d, err := core.DiagnoseModes(res)
	if err != nil {
		t.Fatal(err)
	}
	if d.Split.Bimodal(0.15, 10) {
		t.Fatalf("default policy should not be strongly bimodal: %+v", d.Split)
	}
}

func TestPoolAllocationMovesDropPoint(t *testing.T) {
	// Section IV.4: rerunning the identical campaign with a fresh page pool
	// (different seed = different random physical pages) moves the drop
	// point within [50%, 100%] of L1.
	dropSizeFor := func(seed uint64) int {
		cfg := Config{
			Machine:    memsim.ARMSnowball(),
			Seed:       seed,
			Allocation: AllocPool,
			PoolPages:  1024,
		}
		res := runMem(t, cfg, Factors(sizesKB(4, 8, 12, 16, 20, 24, 28, 32), nil, nil, []int{300}, nil), 3)
		groups := core.SummarizeBy(res, FactorSize)
		peak := groups[0].Summary.Median
		for _, g := range groups {
			if g.Summary.Median < peak*0.7 {
				return int(g.X)
			}
		}
		return 1 << 30 // no drop observed
	}
	seen := map[int]bool{}
	for seed := uint64(0); seed < 8; seed++ {
		seen[dropSizeFor(seed)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("drop point should move across reruns, got %v", seen)
	}
}

func TestArenaAllocationReproducible(t *testing.T) {
	// The paper's fix: random-offset arena allocation makes campaigns
	// reproducible in distribution — median bandwidth per size is stable
	// across seeds (no more frozen unlucky page draw).
	medianCurve := func(seed uint64) []float64 {
		cfg := Config{
			Machine:    memsim.ARMSnowball(),
			Seed:       seed,
			Allocation: AllocArena,
			ArenaBytes: 2 << 20,
		}
		res := runMem(t, cfg, Factors(sizesKB(8, 16, 24, 32), nil, nil, []int{300}, nil), 15)
		groups := core.SummarizeBy(res, FactorSize)
		out := make([]float64, len(groups))
		for i, g := range groups {
			out[i] = g.Summary.Median
		}
		return out
	}
	a := medianCurve(100)
	b := medianCurve(200)
	for i := range a {
		if math.Abs(a[i]-b[i])/a[i] > 0.25 {
			t.Fatalf("arena medians unstable at point %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFactorsHelper(t *testing.T) {
	fs := Factors([]int{1024}, []int{1, 2}, []int{4, 8}, []int{10}, []bool{false, true})
	if len(fs) != 5 {
		t.Fatalf("factors = %d", len(fs))
	}
	names := map[string]bool{}
	for _, f := range fs {
		names[f.Name] = true
	}
	for _, want := range []string{FactorSize, FactorStride, FactorElem, FactorNLoops, FactorUnroll} {
		if !names[want] {
			t.Fatalf("missing factor %s", want)
		}
	}
}

func TestFactorDiagramMentionsAllGroups(t *testing.T) {
	d := FactorDiagram()
	for _, want := range []string{"Experiment plan", "Memory allocation", "Operating system", "Compilation", "Architecture", "Bandwidth"} {
		if !strings.Contains(d, want) {
			t.Fatalf("diagram missing %q:\n%s", want, d)
		}
	}
}

func TestStreamKernelFactor(t *testing.T) {
	cfg := Config{Machine: memsim.Opteron(), Seed: 31}
	factors := append(Factors(sizesKB(8, 4096), nil, nil, []int{200}, nil),
		doe.NewFactor(FactorKernel, "sum", "copy", "triad"))
	res := runMem(t, cfg, factors, 3)
	if res.Len() != 2*3*3 {
		t.Fatalf("records = %d", res.Len())
	}
	median := func(kernel string, size int) float64 {
		sub := res.Filter(func(r core.RawRecord) bool {
			s, err := r.Point.Int(FactorSize)
			return err == nil && s == size && r.Point.Get(FactorKernel) == kernel
		})
		return stats.Median(sub.Values())
	}
	// L1-resident: all kernels issue-bound and equal-ish.
	small := 8 << 10
	if s, c := median("sum", small), median("copy", small); math.Abs(s-c)/s > 0.1 {
		t.Fatalf("L1-resident sum %v vs copy %v", s, c)
	}
	// Memory-resident: writes cost extra traffic.
	big := 4096 << 10
	if s, c := median("sum", big), median("copy", big); c >= s*0.9 {
		t.Fatalf("memory-resident copy %v should trail sum %v", c, s)
	}
}

func TestParseKind(t *testing.T) {
	if k, err := ParseKind(doe.Point{}); err != nil || k != memsim.StreamSum {
		t.Fatalf("default kind = %v, %v", k, err)
	}
	if k, err := ParseKind(doe.Point{FactorKernel: "triad"}); err != nil || k != memsim.StreamTriad {
		t.Fatalf("triad = %v, %v", k, err)
	}
	if _, err := ParseKind(doe.Point{FactorKernel: "saxpy"}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestExecuteBadPoint(t *testing.T) {
	e := mustEngine(t, Config{Machine: memsim.Opteron(), Seed: 1})
	_, err := e.Execute(doe.Trial{Point: doe.Point{"size": "-5"}})
	if err == nil {
		t.Fatal("negative size accepted")
	}
}
