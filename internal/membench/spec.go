package membench

import (
	"fmt"

	"opaquebench/internal/cpusim"
	"opaquebench/internal/doe"
	"opaquebench/internal/memsim"
	"opaquebench/internal/ossim"
)

// defaultReps is the replicate count of a zero Spec (the paper uses 42),
// shared by FromSpec and Refine so seed and zoom rounds can never drift.
const defaultReps = 42

// Spec is the declarative form of a memory campaign — the engine half of a
// suite file's campaign entry (see internal/suite). Field semantics and
// defaults match the cmd/membench flags of the same names; a zero Spec is
// the default i7 campaign.
type Spec struct {
	// Machine names the simulated processor (default "i7").
	Machine string `json:"machine,omitempty"`
	// Governor names the DVFS governor (default "performance").
	Governor string `json:"governor,omitempty"`
	// TargetGHz pins the frequency for the userspace governor.
	TargetGHz float64 `json:"target_ghz,omitempty"`
	// Alloc selects the allocation strategy (default "contiguous").
	Alloc string `json:"alloc,omitempty"`
	// Policy selects the scheduling policy (default "other").
	Policy string `json:"policy,omitempty"`
	// Sizes overrides the generated buffer-size ladder (bytes); empty means
	// the default ladder from 1 KB to 4x the machine's last cache level.
	Sizes []int `json:"sizes,omitempty"`
	// Strides overrides the access-stride ladder (elements); empty means
	// {1}. Strides spanning at least a cache line defeat spatial locality
	// and expose the working-set breakpoints at the cache boundaries.
	Strides []int `json:"strides,omitempty"`
	// Reps is the replicate count of the generated design (default 42).
	Reps int `json:"reps,omitempty"`
}

// FromSpec resolves a declarative campaign into the engine configuration
// and the materialized design, both fully determined by (spec, seed). It is
// how the suite orchestrator builds membench campaigns without going
// through the cmd/membench flag parser.
func FromSpec(s Spec, seed uint64) (Config, *doe.Design, error) {
	if s.Machine == "" {
		s.Machine = "i7"
	}
	if s.Governor == "" {
		s.Governor = "performance"
	}
	if s.Policy == "" {
		s.Policy = "other"
	}
	if s.Reps <= 0 {
		s.Reps = defaultReps
	}
	m, err := memsim.MachineByName(s.Machine)
	if err != nil {
		return Config{}, nil, err
	}
	gov, err := cpusim.GovernorByName(s.Governor, s.TargetGHz*1e9)
	if err != nil {
		return Config{}, nil, err
	}
	pol, err := ossim.PolicyByName(s.Policy)
	if err != nil {
		return Config{}, nil, err
	}
	sizes := s.Sizes
	if len(sizes) == 0 {
		for sz := 1 << 10; sz <= m.Levels[len(m.Levels)-1].SizeBytes*4; sz *= 2 {
			sizes = append(sizes, sz)
		}
	}
	design, err := doe.FullFactorial(Factors(sizes, s.Strides, nil, []int{100}, nil),
		doe.Options{Replicates: s.Reps, Seed: seed, Randomize: true})
	if err != nil {
		return Config{}, nil, err
	}
	cfg := Config{
		Machine:    m,
		Seed:       seed,
		Governor:   gov,
		Allocation: s.Alloc,
		Sched:      ossim.Config{Policy: pol},
	}
	return cfg, design, nil
}

// ZoomFactor names the numeric factor adaptive refinement zooms: the
// working-set (buffer) size, whose cache-boundary breakpoints are the
// engine's central phenomenon. Part of the adapt.Refiner hook set.
func (s Spec) ZoomFactor() string { return FactorSize }

// Refine materializes one adaptive refinement round's zoom design: the
// given refined buffer sizes crossed with the campaign's fixed factor
// levels, replicated (reps, or the spec's replicate count when reps <= 0),
// randomized under the round seed, every trial stamped doe.OriginZoom.
// The engine configuration is untouched — refined rounds run through the
// same factory as the seed round.
func (s Spec) Refine(seed uint64, levels []int, reps int) (*doe.Design, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("membench: refine needs at least one size level")
	}
	for _, l := range levels {
		if l < 1 {
			return nil, fmt.Errorf("membench: refine size %d is not positive", l)
		}
	}
	if reps <= 0 {
		reps = s.Reps
	}
	if reps <= 0 {
		reps = defaultReps
	}
	return doe.FullFactorial(Factors(levels, s.Strides, nil, []int{100}, nil),
		doe.Options{Replicates: reps, Seed: seed, Randomize: true, Origin: doe.OriginZoom})
}
