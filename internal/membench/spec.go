package membench

import (
	"opaquebench/internal/cpusim"
	"opaquebench/internal/doe"
	"opaquebench/internal/memsim"
	"opaquebench/internal/ossim"
)

// Spec is the declarative form of a memory campaign — the engine half of a
// suite file's campaign entry (see internal/suite). Field semantics and
// defaults match the cmd/membench flags of the same names; a zero Spec is
// the default i7 campaign.
type Spec struct {
	// Machine names the simulated processor (default "i7").
	Machine string `json:"machine,omitempty"`
	// Governor names the DVFS governor (default "performance").
	Governor string `json:"governor,omitempty"`
	// TargetGHz pins the frequency for the userspace governor.
	TargetGHz float64 `json:"target_ghz,omitempty"`
	// Alloc selects the allocation strategy (default "contiguous").
	Alloc string `json:"alloc,omitempty"`
	// Policy selects the scheduling policy (default "other").
	Policy string `json:"policy,omitempty"`
	// Sizes overrides the generated buffer-size ladder (bytes); empty means
	// the default ladder from 1 KB to 4x the machine's last cache level.
	Sizes []int `json:"sizes,omitempty"`
	// Reps is the replicate count of the generated design (default 42).
	Reps int `json:"reps,omitempty"`
}

// FromSpec resolves a declarative campaign into the engine configuration
// and the materialized design, both fully determined by (spec, seed). It is
// how the suite orchestrator builds membench campaigns without going
// through the cmd/membench flag parser.
func FromSpec(s Spec, seed uint64) (Config, *doe.Design, error) {
	if s.Machine == "" {
		s.Machine = "i7"
	}
	if s.Governor == "" {
		s.Governor = "performance"
	}
	if s.Policy == "" {
		s.Policy = "other"
	}
	if s.Reps <= 0 {
		s.Reps = 42
	}
	m, err := memsim.MachineByName(s.Machine)
	if err != nil {
		return Config{}, nil, err
	}
	gov, err := cpusim.GovernorByName(s.Governor, s.TargetGHz*1e9)
	if err != nil {
		return Config{}, nil, err
	}
	pol, err := ossim.PolicyByName(s.Policy)
	if err != nil {
		return Config{}, nil, err
	}
	sizes := s.Sizes
	if len(sizes) == 0 {
		for sz := 1 << 10; sz <= m.Levels[len(m.Levels)-1].SizeBytes*4; sz *= 2 {
			sizes = append(sizes, sz)
		}
	}
	design, err := doe.FullFactorial(Factors(sizes, nil, nil, []int{100}, nil),
		doe.Options{Replicates: s.Reps, Seed: seed, Randomize: true})
	if err != nil {
		return Config{}, nil, err
	}
	cfg := Config{
		Machine:    m,
		Seed:       seed,
		Governor:   gov,
		Allocation: s.Alloc,
		Sched:      ossim.Config{Policy: pol},
	}
	return cfg, design, nil
}
