// Package membench is the white-box memory benchmark engine (second
// methodology stage) for the Figure 6 kernel. It executes trials from a
// doe.Design against the simulated substrate — cache hierarchy (memsim),
// DVFS clock (cpusim), and OS scheduler (ossim) — in exactly the designed
// order, logging one raw record per measurement.
//
// The factor set is the cause-and-effect diagram of Figure 13: experiment
// plan (size, stride, cycles/nloops, repetitions, sequence order), memory
// allocation (element type, allocation technique), operating system
// (scheduling priority, CPU frequency governor, core pinning, dedication),
// compilation (loop unrolling), and architecture (the machine).
package membench

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"opaquebench/internal/core"
	"opaquebench/internal/cpusim"
	"opaquebench/internal/doe"
	"opaquebench/internal/memsim"
	"opaquebench/internal/meta"
	"opaquebench/internal/ossim"
	"opaquebench/internal/xrand"
)

// Factor names understood by the engine.
const (
	FactorSize   = "size"   // buffer size in bytes
	FactorStride = "stride" // access stride in elements
	FactorElem   = "elem"   // element size in bytes
	FactorNLoops = "nloops" // kernel repetition count
	FactorUnroll = "unroll" // 0 or 1
	FactorKernel = "kernel" // sum | copy | triad (STREAM family)
)

// Allocation strategies.
const (
	AllocContiguous = "contiguous"
	AllocPool       = "pool"
	AllocArena      = "arena"
)

// Config describes a memory campaign's fixed environment (everything not
// varied by the design).
type Config struct {
	// Machine is the simulated processor. Required.
	Machine *memsim.Machine
	// Seed drives every stochastic component.
	Seed uint64
	// Governor is the DVFS governor; nil means cpusim.Performance.
	Governor cpusim.Governor
	// SamplingPeriodSec is the governor sampling period (default 10 ms).
	SamplingPeriodSec float64
	// Sched configures the OS scheduler model; the zero value is a pinned
	// run under the default policy on a dedicated machine.
	Sched ossim.Config
	// Allocation selects the buffer allocation strategy (default
	// AllocContiguous).
	Allocation string
	// PoolPages is the physical page pool size for AllocPool (default
	// 4096 pages = 16 MB).
	PoolPages int
	// ArenaBytes is the arena size for AllocArena (default 2 MB).
	ArenaBytes int
	// GapSec is the idle time between measurements (logging, allocation
	// — default 5 ms); it lets the ondemand governor ramp down and the
	// virtual timeline advance.
	GapSec float64
	// Indexed selects trial-indexed execution: every stochastic and
	// temporal quantity of a trial derives from (Seed, Trial.Seq) instead
	// of accumulated engine state, so a trial's record is independent of
	// which trials ran before it. This is what lets the parallel runner
	// shard a design across workers and still reproduce a serial campaign
	// record for record. It requires the history-free subset of the
	// substrate: a load-oblivious governor (performance, powersave,
	// userspace), the contiguous allocation strategy, and a pinned
	// scheduler configuration; load-reactive governors, pool/arena
	// allocation and migration noise are inherently sequential and stay
	// exclusive to the default stateful mode.
	Indexed bool
	// SlotSec is the virtual-time slot per trial in indexed mode: trial
	// Seq starts at Seq*SlotSec. Default GapSec. Ignored when !Indexed.
	SlotSec float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Machine == nil {
		return c, fmt.Errorf("membench: config needs a machine")
	}
	if err := c.Machine.Validate(); err != nil {
		return c, err
	}
	if c.Governor == nil {
		c.Governor = cpusim.Performance{}
	}
	if c.SamplingPeriodSec <= 0 {
		c.SamplingPeriodSec = 0.01
	}
	if c.Allocation == "" {
		c.Allocation = AllocContiguous
	}
	if c.PoolPages <= 0 {
		c.PoolPages = 4096
	}
	if c.ArenaBytes <= 0 {
		c.ArenaBytes = 2 << 20
	}
	if c.GapSec <= 0 {
		c.GapSec = 0.005
	}
	if c.SlotSec <= 0 {
		c.SlotSec = c.GapSec
	}
	if c.Indexed {
		if _, ok := cpusim.SteadyHz(c.Governor, c.Machine.FreqTable); !ok {
			return c, fmt.Errorf("membench: indexed mode needs a load-oblivious governor, not %q", c.Governor.Name())
		}
		if c.Allocation != AllocContiguous {
			return c, fmt.Errorf("membench: indexed mode needs contiguous allocation, not %q", c.Allocation)
		}
		if c.Sched.Unpinned {
			return c, fmt.Errorf("membench: indexed mode needs a pinned scheduler configuration")
		}
	}
	c.Sched.Seed = xrand.Derive(c.Seed, "membench/sched")
	return c, nil
}

// Engine implements core.Engine for memory campaigns.
type Engine struct {
	cfg       Config
	hierarchy *memsim.Hierarchy
	clock     *cpusim.Clock
	sched     *ossim.Scheduler
	alloc     memsim.Allocator
	noise     *rand.Rand
	phase     *rand.Rand
	// steadyHz is the governor's constant frequency in indexed mode.
	steadyHz float64

	// Indexed-mode trial scratch, reused across trials so the per-trial
	// hot path allocates nothing: the fresh-address-space allocator is
	// Reset() instead of reconstructed, the buffer structs and the noise
	// generator are engine-held, the constant frequency annotation is
	// pre-rendered, and annotation maps are shared between the (many)
	// trials whose annotations coincide.
	idxAlloc   *memsim.ContiguousAllocator
	idxBufs    [3]memsim.Buffer
	idxPtrs    [3]*memsim.Buffer
	idxPCG     *rand.PCG
	idxNoise   *rand.Rand
	freqStr    string
	extraCache map[extraKey]map[string]string
}

// extraKey identifies one distinct annotation set of an indexed trial.
type extraKey struct {
	bound    string
	slowdown float64
}

// NewEngine builds an engine; the substrate state (caches, clock, page
// pool) persists across all trials of the campaign, as it would in a real
// process.
func NewEngine(cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	h, err := cfg.Machine.NewHierarchy()
	if err != nil {
		return nil, err
	}
	phase := xrand.NewDerived(cfg.Seed, "membench/phase")
	clock, err := cpusim.NewClock(cfg.Machine.FreqTable, cfg.Governor,
		cfg.SamplingPeriodSec, phase.Float64()*cfg.SamplingPeriodSec)
	if err != nil {
		return nil, err
	}
	var alloc memsim.Allocator
	switch cfg.Allocation {
	case AllocContiguous:
		alloc = memsim.NewContiguousAllocator(cfg.Machine.PageBytes)
	case AllocPool:
		alloc, err = memsim.NewPoolAllocator(cfg.Machine.PageBytes, cfg.PoolPages,
			xrand.Derive(cfg.Seed, "membench/pool"))
	case AllocArena:
		alloc, err = memsim.NewArenaAllocator(cfg.Machine.PageBytes, cfg.ArenaBytes, 8,
			xrand.Derive(cfg.Seed, "membench/arena"))
	default:
		return nil, fmt.Errorf("membench: unknown allocation strategy %q", cfg.Allocation)
	}
	if err != nil {
		return nil, err
	}
	steadyHz, _ := cpusim.SteadyHz(cfg.Governor, cfg.Machine.FreqTable)
	e := &Engine{
		cfg:       cfg,
		hierarchy: h,
		clock:     clock,
		sched:     ossim.New(cfg.Sched),
		alloc:     alloc,
		noise:     xrand.NewDerived(cfg.Seed, "membench/noise"),
		phase:     phase,
		steadyHz:  steadyHz,
	}
	if cfg.Indexed {
		e.idxAlloc = memsim.NewContiguousAllocator(cfg.Machine.PageBytes)
		for i := range e.idxPtrs {
			e.idxPtrs[i] = &e.idxBufs[i]
		}
		e.idxPCG = rand.NewPCG(0, 0)
		e.idxNoise = rand.New(e.idxPCG)
		e.freqStr = fmt.Sprintf("%.0f", steadyHz)
		e.extraCache = map[extraKey]map[string]string{}
	}
	return e, nil
}

// sharedExtra returns the annotation map for one indexed trial, cached per
// distinct (bound_by, slowdown) pair: most trials of a campaign share one
// immutable map instead of each allocating a three-entry copy. Sharing is
// safe because consumers treat a record's Extra as read-only — the runner's
// round sink copies before adding its own keys.
func (e *Engine) sharedExtra(bound string, slowdown float64) map[string]string {
	k := extraKey{bound, slowdown}
	if m, ok := e.extraCache[k]; ok {
		return m
	}
	m := map[string]string{
		"bound_by":      bound,
		"freq_start_hz": e.freqStr,
		"slowdown":      fmt.Sprintf("%.3g", slowdown),
	}
	e.extraCache[k] = m
	return m
}

// Factory returns a core.EngineFactory producing independent indexed-mode
// engines for the given configuration, one per runner worker. The returned
// factory forces Indexed on; the first NewEngine call reports any
// configuration that cannot run trial-indexed (load-reactive governor,
// pool/arena allocation, unpinned scheduler).
func Factory(cfg Config) core.EngineFactory {
	return core.EngineFactoryFunc(func() (core.Engine, error) {
		cfg := cfg
		cfg.Indexed = true
		return NewEngine(cfg)
	})
}

// ParseParams extracts kernel parameters from a design point. Missing
// factors default to stride 1, 4-byte elements, 100 loops, no unrolling;
// size is required.
func ParseParams(p doe.Point) (memsim.KernelParams, error) {
	kp := memsim.KernelParams{Stride: 1, ElemBytes: 4, NLoops: 100}
	size, err := p.Int(FactorSize)
	if err != nil {
		return kp, err
	}
	kp.SizeBytes = size
	if _, ok := p[FactorStride]; ok {
		if kp.Stride, err = p.Int(FactorStride); err != nil {
			return kp, err
		}
	}
	if _, ok := p[FactorElem]; ok {
		if kp.ElemBytes, err = p.Int(FactorElem); err != nil {
			return kp, err
		}
	}
	if _, ok := p[FactorNLoops]; ok {
		if kp.NLoops, err = p.Int(FactorNLoops); err != nil {
			return kp, err
		}
	}
	if v, ok := p[FactorUnroll]; ok {
		kp.Unroll = v == "1" || strings.EqualFold(string(v), "true")
	}
	return kp, nil
}

// ParseKind extracts the STREAM kernel kind from a design point; missing
// means the Figure 6 read-only sum kernel.
func ParseKind(p doe.Point) (memsim.StreamKind, error) {
	v, ok := p[FactorKernel]
	if !ok || v == "" {
		return memsim.StreamSum, nil
	}
	k := memsim.StreamKind(v)
	if !k.Valid() {
		return "", fmt.Errorf("membench: unknown kernel %q", string(v))
	}
	return k, nil
}

// Execute implements core.Engine: one measurement of the Figure 6 kernel
// (or a STREAM-family variant when the design carries a kernel factor).
func (e *Engine) Execute(t doe.Trial) (core.RawRecord, error) {
	kp, err := ParseParams(t.Point)
	if err != nil {
		return core.RawRecord{}, err
	}
	kind, err := ParseKind(t.Point)
	if err != nil {
		return core.RawRecord{}, err
	}
	var bufs []*memsim.Buffer
	if e.cfg.Indexed {
		// Per-trial substrate: a fresh address space and a cold hierarchy,
		// so the measurement replays identically wherever the trial lands
		// in the (possibly sharded) execution. The allocator rewind and
		// engine-held buffer structs reproduce exactly the addresses a
		// fresh allocator would hand out, without allocating.
		e.idxAlloc.Reset()
		e.hierarchy.Flush()
		bufs = e.idxPtrs[:kind.Buffers()]
		for i := range bufs {
			if err := e.idxAlloc.AllocInto(bufs[i], kp.SizeBytes); err != nil {
				return core.RawRecord{}, err
			}
			if i+1 < len(bufs) {
				// Stagger multi-array kernels by one page, as real STREAM
				// implementations pad, to avoid power-of-two set collisions.
				e.idxAlloc.SkipPages(i + 1)
			}
		}
	} else {
		alloc := e.alloc
		bufs = make([]*memsim.Buffer, kind.Buffers())
		for i := range bufs {
			if bufs[i], err = alloc.Alloc(kp.SizeBytes); err != nil {
				return core.RawRecord{}, err
			}
			if e.cfg.Allocation == AllocContiguous && i+1 < len(bufs) {
				// Stagger multi-array kernels by one page, as real STREAM
				// implementations pad, to avoid power-of-two set collisions.
				pad, err := alloc.Alloc(e.cfg.Machine.PageBytes * (i + 1))
				if err != nil {
					return core.RawRecord{}, err
				}
				defer alloc.Free(pad)
			}
		}
		defer func() {
			for _, b := range bufs {
				alloc.Free(b)
			}
		}()
	}

	res, err := memsim.RunStream(e.cfg.Machine, e.hierarchy, bufs, kp, kind)
	if err != nil {
		return core.RawRecord{}, err
	}

	var at, freqStart, seconds float64
	if e.cfg.Indexed {
		at = float64(t.Seq) * e.cfg.SlotSec
		freqStart = e.steadyHz
		seconds = res.Cycles / freqStart
	} else {
		at = e.clock.Now()
		freqStart = e.clock.FreqHz()
		seconds = e.clock.ExecuteCycles(res.Cycles)
	}

	slowdown := e.sched.SlowdownAt(at)
	if !e.cfg.Indexed {
		// The virtual clock only advances, so scheduler windows behind it
		// are dead: release them to keep long campaigns' memory bounded.
		e.sched.Release(at)
	}
	seconds *= slowdown
	noise := e.noise
	if e.cfg.Indexed {
		// Reseed the engine-held generator to the exact state a fresh
		// NewDerived(seed, "membench/noise@"+seq) would start in.
		xrand.Reseed(e.idxPCG, xrand.DeriveIndexed(e.cfg.Seed, "membench/noise@", t.Seq))
		noise = e.idxNoise
	}
	seconds = e.cfg.Machine.ApplyNoise(noise, seconds)

	if !e.cfg.Indexed {
		// Idle gap before the next measurement (allocation, logging).
		e.clock.Idle(e.cfg.GapSec)
	}

	rec := core.RawRecord{
		Point:   t.Point,
		Value:   res.BandwidthMBps(kp.ElemBytes, seconds),
		Seconds: seconds,
		At:      at,
	}
	if e.cfg.Indexed {
		rec.Extra = e.sharedExtra(res.BoundBy, slowdown)
	} else {
		rec.Annotate("bound_by", res.BoundBy)
		rec.Annotate("freq_start_hz", fmt.Sprintf("%.0f", freqStart))
		rec.Annotate("slowdown", fmt.Sprintf("%.3g", slowdown))
	}
	return rec, nil
}

// Environment implements core.Engine.
func (e *Engine) Environment() *meta.Environment {
	env := meta.New()
	env.Set("machine", e.cfg.Machine.Name)
	env.Setf("machine/l1_bytes", "%d", e.cfg.Machine.L1().SizeBytes)
	env.Setf("machine/page_bytes", "%d", e.cfg.Machine.PageBytes)
	env.Set("governor", e.cfg.Governor.Name())
	env.Setf("governor/period_s", "%g", e.cfg.SamplingPeriodSec)
	env.Set("alloc", e.alloc.Name())
	env.Set("sched", e.sched.String())
	env.Setf("seed", "%d", e.cfg.Seed)
	if e.cfg.Indexed {
		env.Set("mode", "indexed")
		env.Setf("slot_s", "%g", e.cfg.SlotSec)
	}
	return env
}

// Factors builds the standard factor list for a memory campaign from
// explicit level sets; nil slices get a single default level.
func Factors(sizes, strides, elems, nloops []int, unrolls []bool) []doe.Factor {
	if len(strides) == 0 {
		strides = []int{1}
	}
	if len(elems) == 0 {
		elems = []int{4}
	}
	if len(nloops) == 0 {
		nloops = []int{100}
	}
	fs := []doe.Factor{
		doe.IntFactor(FactorSize, sizes...),
		doe.IntFactor(FactorStride, strides...),
		doe.IntFactor(FactorElem, elems...),
		doe.IntFactor(FactorNLoops, nloops...),
	}
	if len(unrolls) > 0 {
		levels := make([]int, len(unrolls))
		for i, u := range unrolls {
			if u {
				levels[i] = 1
			}
		}
		fs = append(fs, doe.IntFactor(FactorUnroll, levels...))
	}
	return fs
}

// FactorDiagram renders the Figure 13 cause-and-effect diagram of the
// factors the engine controls.
func FactorDiagram() string {
	var b strings.Builder
	b.WriteString("Influential factors (Figure 13):\n")
	groups := []struct {
		name    string
		factors []string
	}{
		{"Experiment plan", []string{"size", "stride", "cycles (nloops)", "repetitions", "sequence order"}},
		{"Memory allocation", []string{"element type", "allocation technique"}},
		{"Operating system", []string{"scheduling priority", "CPU frequency governor", "core pinning", "dedication"}},
		{"Compilation", []string{"optimization", "loop unrolling"}},
		{"Architecture", []string{"Intel", "ARM", "word size"}},
	}
	for _, g := range groups {
		fmt.Fprintf(&b, "  %-18s -> %s\n", g.name, strings.Join(g.factors, ", "))
	}
	b.WriteString("  all of the above   -> Time / Bandwidth\n")
	return b.String()
}
