package predict

import (
	"fmt"

	"opaquebench/internal/netbench"
)

// EventKind discriminates trace events.
type EventKind string

const (
	// EvCompute is a computation block on one rank.
	EvCompute EventKind = "compute"
	// EvSend is an asynchronous send from Rank to Peer.
	EvSend EventKind = "send"
	// EvRecv is a blocking receive on Rank.
	EvRecv EventKind = "recv"
)

// Event is one entry of the application's per-rank trace (the MPIDtrace
// role). Events are listed in program order per rank; the replayer respects
// message causality between ranks.
type Event struct {
	Kind EventKind
	// Rank executes the event.
	Rank int
	// Peer is the other endpoint for send events.
	Peer int
	// Block is the computation signature for EvCompute.
	Block Block
	// Size is the message size for EvSend/EvRecv.
	Size int
}

// Prediction is the replay outcome.
type Prediction struct {
	// Makespan is the predicted end-to-end runtime.
	Makespan float64
	// RankSeconds is each rank's finish time.
	RankSeconds []float64
	// ComputeSeconds and NetworkSeconds decompose the critical path's
	// aggregate (summed over ranks).
	ComputeSeconds, NetworkSeconds float64
}

// Replay convolves the trace with the machine signatures on per-rank
// virtual clocks — the DIMEMAS role. Messages are matched FIFO per
// (sender, receiver) pair.
func Replay(mem MemorySignature, net netbench.LogGPModel, ranks int, trace []Event) (Prediction, error) {
	if err := mem.Validate(); err != nil {
		return Prediction{}, err
	}
	if len(net.Regimes) == 0 {
		return Prediction{}, fmt.Errorf("predict: empty network model")
	}
	if ranks < 1 {
		return Prediction{}, fmt.Errorf("predict: ranks = %d", ranks)
	}
	clock := make([]float64, ranks)
	type channel struct{ arrivals []float64 }
	channels := map[[2]int]*channel{}
	chanFor := func(from, to int) *channel {
		k := [2]int{from, to}
		if channels[k] == nil {
			channels[k] = &channel{}
		}
		return channels[k]
	}

	var p Prediction
	for i, ev := range trace {
		if ev.Rank < 0 || ev.Rank >= ranks {
			return Prediction{}, fmt.Errorf("predict: event %d rank %d out of range", i, ev.Rank)
		}
		switch ev.Kind {
		case EvCompute:
			d := mem.Seconds(ev.Block)
			clock[ev.Rank] += d
			p.ComputeSeconds += d
		case EvSend:
			if ev.Peer < 0 || ev.Peer >= ranks || ev.Peer == ev.Rank {
				return Prediction{}, fmt.Errorf("predict: event %d peer %d invalid", i, ev.Peer)
			}
			reg := net.RegimeFor(float64(ev.Size))
			os := reg.SendOverhead(float64(ev.Size))
			clock[ev.Rank] += os
			p.NetworkSeconds += os
			ch := chanFor(ev.Rank, ev.Peer)
			ch.arrivals = append(ch.arrivals, clock[ev.Rank]+reg.Wire(float64(ev.Size)))
		case EvRecv:
			if ev.Peer < 0 || ev.Peer >= ranks || ev.Peer == ev.Rank {
				return Prediction{}, fmt.Errorf("predict: event %d peer %d invalid", i, ev.Peer)
			}
			ch := chanFor(ev.Peer, ev.Rank)
			if len(ch.arrivals) == 0 {
				return Prediction{}, fmt.Errorf("predict: event %d: recv on rank %d with no matching send from %d (trace causality)", i, ev.Rank, ev.Peer)
			}
			arrive := ch.arrivals[0]
			ch.arrivals = ch.arrivals[1:]
			if arrive > clock[ev.Rank] {
				clock[ev.Rank] = arrive
			}
			reg := net.RegimeFor(float64(ev.Size))
			or := reg.RecvOverhead(float64(ev.Size))
			clock[ev.Rank] += or
			p.NetworkSeconds += or
		default:
			return Prediction{}, fmt.Errorf("predict: event %d: unknown kind %q", i, ev.Kind)
		}
	}
	p.RankSeconds = clock
	for _, c := range clock {
		if c > p.Makespan {
			p.Makespan = c
		}
	}
	return p, nil
}
