// Package predict implements the end use the paper's benchmarks feed
// (Section II.A, Figure 1): a PMaC-style performance predictor that
// convolves an application signature with a machine signature.
//
//   - The machine's memory signature (plateau bandwidths per working-set
//     range) is extracted from a white-box membench campaign — the MAPS role.
//   - The machine's network signature is the piecewise LogGP model fitted by
//     netbench — the PMB role.
//   - The application signature is a list of computation blocks (accesses,
//     element width, working set) and communication events — the MetaSim /
//     MPIDtrace role.
//   - The convolver replays the trace on per-rank virtual clocks — the
//     DIMEMAS role — and predicts the application's makespan.
//
// The package exists to make the paper's argument executable: predictions
// are only as good as the measurements behind the signatures, so a signature
// taken under an uncontrolled governor (Section IV.2) visibly corrupts the
// prediction, while a white-box signature tracks the ground truth.
package predict

import (
	"fmt"
	"math"
	"strings"

	"opaquebench/internal/core"
	"opaquebench/internal/membench"
	"opaquebench/internal/stats"
)

// MemorySignature is the machine-side memory characterization: bandwidth
// plateaus per working-set range, as a MAPS/MultiMAPS campaign provides.
type MemorySignature struct {
	// UpperBytes[i] is the exclusive upper working-set bound of plateau i;
	// the last plateau is unbounded (UpperBytes[last] == 0).
	UpperBytes []int
	// BandwidthMBps[i] is the sustained bandwidth of plateau i.
	BandwidthMBps []float64
}

// Validate checks structural consistency.
func (s MemorySignature) Validate() error {
	if len(s.UpperBytes) == 0 || len(s.UpperBytes) != len(s.BandwidthMBps) {
		return fmt.Errorf("predict: malformed signature (%d bounds, %d bandwidths)",
			len(s.UpperBytes), len(s.BandwidthMBps))
	}
	for i, b := range s.BandwidthMBps {
		if b <= 0 {
			return fmt.Errorf("predict: plateau %d has bandwidth %v", i, b)
		}
	}
	for i := 0; i+1 < len(s.UpperBytes); i++ {
		if s.UpperBytes[i] <= 0 || (s.UpperBytes[i+1] != 0 && s.UpperBytes[i+1] <= s.UpperBytes[i]) {
			return fmt.Errorf("predict: plateau bounds not increasing: %v", s.UpperBytes)
		}
	}
	if s.UpperBytes[len(s.UpperBytes)-1] != 0 {
		return fmt.Errorf("predict: last plateau must be unbounded")
	}
	return nil
}

// BandwidthFor returns the plateau bandwidth serving a working set.
func (s MemorySignature) BandwidthFor(workingSetBytes int) float64 {
	for i, up := range s.UpperBytes {
		if up == 0 || workingSetBytes < up {
			return s.BandwidthMBps[i]
		}
	}
	return s.BandwidthMBps[len(s.BandwidthMBps)-1]
}

// String renders the signature.
func (s MemorySignature) String() string {
	var b strings.Builder
	lo := 0
	for i, up := range s.UpperBytes {
		if up == 0 {
			fmt.Fprintf(&b, "[%8d,      inf): %8.0f MB/s\n", lo, s.BandwidthMBps[i])
		} else {
			fmt.Fprintf(&b, "[%8d, %8d): %8.0f MB/s\n", lo, up, s.BandwidthMBps[i])
		}
		lo = up
	}
	return b.String()
}

// ExtractMemorySignature builds a signature from white-box campaign results:
// per-size median bandwidths, plateau boundaries found by the relative
// segmented search, and per-plateau median bandwidth.
func ExtractMemorySignature(res *core.Results, maxPlateaus int) (MemorySignature, error) {
	groups := core.SummarizeBy(res, membench.FactorSize)
	if len(groups) < 3 {
		return MemorySignature{}, fmt.Errorf("predict: need >= 3 sizes, have %d", len(groups))
	}
	var xs, ys []float64
	for _, g := range groups {
		xs = append(xs, g.X)
		ys = append(ys, g.Summary.Median)
	}
	if maxPlateaus < 1 {
		maxPlateaus = 3
	}
	minSeg := len(xs) / (maxPlateaus + 2)
	if minSeg < 2 {
		minSeg = 2
	}
	pf, err := stats.SelectSegmentedRelative(xs, ys, maxPlateaus-1, minSeg)
	if err != nil {
		return MemorySignature{}, err
	}
	var sig MemorySignature
	edges := append(append([]float64(nil), pf.Breaks...), math.Inf(1))
	lo := math.Inf(-1)
	for _, hi := range edges {
		var vals []float64
		for i, x := range xs {
			if x >= lo && x < hi {
				vals = append(vals, ys[i])
			}
		}
		if len(vals) == 0 {
			lo = hi
			continue
		}
		up := 0
		if !math.IsInf(hi, 1) {
			up = int(hi)
		}
		sig.UpperBytes = append(sig.UpperBytes, up)
		sig.BandwidthMBps = append(sig.BandwidthMBps, stats.Median(vals))
		lo = hi
	}
	if err := sig.Validate(); err != nil {
		return MemorySignature{}, err
	}
	return sig, nil
}

// Block is one computation block of the application signature.
type Block struct {
	// Name labels the block in reports.
	Name string
	// Accesses is the number of element loads the block performs.
	Accesses uint64
	// ElemBytes is the element width.
	ElemBytes int
	// WorkingSetBytes is the block's resident working set, which selects
	// the serving memory plateau.
	WorkingSetBytes int
}

// Seconds predicts the block's duration under the signature: the classic
// convolution bytes / bandwidth(working set).
func (s MemorySignature) Seconds(b Block) float64 {
	bw := s.BandwidthFor(b.WorkingSetBytes) * 1e6 // bytes/s
	return float64(b.Accesses) * float64(b.ElemBytes) / bw
}
