package predict

import (
	"math"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/cpusim"
	"opaquebench/internal/doe"
	"opaquebench/internal/membench"
	"opaquebench/internal/memsim"
	"opaquebench/internal/netbench"
	"opaquebench/internal/netsim"
)

func validSig() MemorySignature {
	return MemorySignature{
		UpperBytes:    []int{64 << 10, 1 << 20, 0},
		BandwidthMBps: []float64{4000, 2000, 800},
	}
}

func TestSignatureValidate(t *testing.T) {
	if err := validSig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MemorySignature{
		{},
		{UpperBytes: []int{0}, BandwidthMBps: []float64{0}},
		{UpperBytes: []int{100, 50, 0}, BandwidthMBps: []float64{1, 1, 1}},
		{UpperBytes: []int{100, 200}, BandwidthMBps: []float64{1, 1}}, // bounded last
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("signature %d should be invalid", i)
		}
	}
}

func TestBandwidthFor(t *testing.T) {
	s := validSig()
	if got := s.BandwidthFor(10 << 10); got != 4000 {
		t.Fatalf("L1 range = %v", got)
	}
	if got := s.BandwidthFor(64 << 10); got != 2000 {
		t.Fatalf("boundary = %v", got)
	}
	if got := s.BandwidthFor(100 << 20); got != 800 {
		t.Fatalf("memory range = %v", got)
	}
}

func TestBlockSeconds(t *testing.T) {
	s := validSig()
	b := Block{Accesses: 1_000_000, ElemBytes: 4, WorkingSetBytes: 10 << 10}
	want := 4e6 / (4000 * 1e6)
	if got := s.Seconds(b); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("seconds = %v, want %v", got, want)
	}
}

func TestSignatureString(t *testing.T) {
	if validSig().String() == "" {
		t.Fatal("empty rendering")
	}
}

// opteronCampaign runs a white-box campaign suited for signature extraction.
func opteronCampaign(t *testing.T, gov cpusim.Governor, nloops int) *core.Results {
	t.Helper()
	var sizes []int
	for s := 8 << 10; s <= 4<<20; s *= 2 {
		sizes = append(sizes, s, s+s/2)
	}
	d, err := doe.FullFactorial(
		membench.Factors(sizes, []int{1}, []int{8}, []int{nloops}, []bool{true}),
		doe.Options{Replicates: 3, Seed: 5, Randomize: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := membench.NewEngine(membench.Config{
		Machine:           memsim.Opteron(),
		Seed:              5,
		Governor:          gov,
		SamplingPeriodSec: 0.01,
		GapSec:            0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&core.Campaign{Design: d, Engine: eng}).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExtractMemorySignatureFindsPlateaus(t *testing.T) {
	res := opteronCampaign(t, cpusim.Performance{}, 300)
	sig, err := ExtractMemorySignature(res, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.BandwidthMBps) != 3 {
		t.Fatalf("plateaus = %d (%v), want 3", len(sig.BandwidthMBps), sig.UpperBytes)
	}
	// Bandwidths strictly descending.
	for i := 0; i+1 < len(sig.BandwidthMBps); i++ {
		if sig.BandwidthMBps[i] <= sig.BandwidthMBps[i+1] {
			t.Fatalf("plateaus not descending: %v", sig.BandwidthMBps)
		}
	}
	// First boundary near the Opteron's 64 KB L1.
	if b := float64(sig.UpperBytes[0]); b < 48<<10 || b > 128<<10 {
		t.Fatalf("first boundary = %v, want near 64 KB", b)
	}
}

func TestExtractNeedsEnoughSizes(t *testing.T) {
	res := &core.Results{Records: []core.RawRecord{
		{Point: doe.Point{"size": "1024"}, Value: 1},
	}}
	if _, err := ExtractMemorySignature(res, 3); err == nil {
		t.Fatal("want error")
	}
}

// The headline validation: a prediction built from a white-box signature
// tracks direct simulation of an unseen block, while a signature taken
// under an uncontrolled ondemand governor with short runs (the Section IV.2
// pitfall) is badly biased.
func TestPredictionAccuracyDependsOnSignatureQuality(t *testing.T) {
	// Ground truth: direct simulation of a 48 KB-working-set block.
	m := memsim.Opteron()
	h, err := m.NewHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	kp := memsim.KernelParams{SizeBytes: 48 << 10, Stride: 1, ElemBytes: 8, NLoops: 400, Unroll: true}
	buf, err := memsim.NewContiguousAllocator(m.PageBytes).Alloc(kp.SizeBytes)
	if err != nil {
		t.Fatal(err)
	}
	resKernel, err := memsim.RunKernel(m, h, buf, kp)
	if err != nil {
		t.Fatal(err)
	}
	truth := resKernel.Seconds(m.FreqTable.Max())

	block := Block{
		Accesses:        kp.Accesses(),
		ElemBytes:       kp.ElemBytes,
		WorkingSetBytes: kp.SizeBytes,
	}

	good, err := ExtractMemorySignature(opteronCampaign(t, cpusim.Performance{}, 300), 3)
	if err != nil {
		t.Fatal(err)
	}
	goodErr := math.Abs(good.Seconds(block)-truth) / truth

	// Pitfall signature: ondemand governor, tiny nloops — every
	// measurement ran at the idle frequency.
	bad, err := ExtractMemorySignature(opteronCampaign(t, cpusim.Ondemand{}, 300), 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = bad
	badRes := opteronCampaign(t, cpusim.Ondemand{}, 2)
	badSig, err := ExtractMemorySignature(badRes, 3)
	if err != nil {
		t.Fatal(err)
	}
	badErr := math.Abs(badSig.Seconds(block)-truth) / truth

	if goodErr > 0.25 {
		t.Fatalf("white-box prediction error %.2f too large (truth %.4g, predicted %.4g)",
			goodErr, truth, good.Seconds(block))
	}
	if badErr < goodErr*2 {
		t.Fatalf("pitfall signature should be far worse: good=%.3f bad=%.3f", goodErr, badErr)
	}
}

// fittedNet returns a LogGP model fitted on a Taurus campaign.
func fittedNet(t *testing.T) netbench.LogGPModel {
	t.Helper()
	profile := netsim.Taurus()
	d, err := netbench.Design(7, 200, 16, 2<<20, 3, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := netbench.NewEngine(netbench.Config{Profile: profile, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&core.Campaign{Design: d, Engine: eng}).Run()
	if err != nil {
		t.Fatal(err)
	}
	model, err := netbench.FitLogGP(res, profile.Breakpoints())
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func TestReplaySimpleExchange(t *testing.T) {
	net := fittedNet(t)
	mem := validSig()
	blk := Block{Accesses: 1_000_000, ElemBytes: 4, WorkingSetBytes: 10 << 10}
	trace := []Event{
		{Kind: EvCompute, Rank: 0, Block: blk},
		{Kind: EvCompute, Rank: 1, Block: blk},
		{Kind: EvSend, Rank: 0, Peer: 1, Size: 4096},
		{Kind: EvRecv, Rank: 1, Peer: 0, Size: 4096},
		{Kind: EvSend, Rank: 1, Peer: 0, Size: 4096},
		{Kind: EvRecv, Rank: 0, Peer: 1, Size: 4096},
	}
	p, err := Replay(mem, net, 2, trace)
	if err != nil {
		t.Fatal(err)
	}
	compute := mem.Seconds(blk)
	reg := net.RegimeFor(4096)
	wantRank0 := compute +
		reg.SendOverhead(4096) + // its own send
		0 + // overlap with rank1's work
		reg.RecvOverhead(4096)
	if p.Makespan < wantRank0 {
		t.Fatalf("makespan %v below a lower bound %v", p.Makespan, wantRank0)
	}
	// The round trip must show up: makespan exceeds compute + one overhead.
	if p.Makespan < compute+2*reg.Wire(4096) {
		t.Fatalf("makespan %v misses the wire time", p.Makespan)
	}
	if p.ComputeSeconds <= 0 || p.NetworkSeconds <= 0 {
		t.Fatalf("decomposition empty: %+v", p)
	}
}

func TestReplayRecvWaitsForSend(t *testing.T) {
	net := fittedNet(t)
	mem := validSig()
	heavy := Block{Accesses: 100_000_000, ElemBytes: 4, WorkingSetBytes: 10 << 10}
	trace := []Event{
		{Kind: EvCompute, Rank: 0, Block: heavy}, // sender is late
		{Kind: EvSend, Rank: 0, Peer: 1, Size: 1024},
		{Kind: EvRecv, Rank: 1, Peer: 0, Size: 1024},
	}
	p, err := Replay(mem, net, 2, trace)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1 must have waited for rank 0's compute.
	if p.RankSeconds[1] < mem.Seconds(heavy) {
		t.Fatalf("receiver did not wait: %v < %v", p.RankSeconds[1], mem.Seconds(heavy))
	}
}

func TestReplayErrors(t *testing.T) {
	net := fittedNet(t)
	mem := validSig()
	cases := [][]Event{
		{{Kind: EvRecv, Rank: 1, Peer: 0, Size: 10}},  // recv before send
		{{Kind: EvSend, Rank: 0, Peer: 0, Size: 10}},  // self-send
		{{Kind: EvSend, Rank: 5, Peer: 0, Size: 10}},  // bad rank
		{{Kind: "barrier", Rank: 0}},                  // unknown kind
		{{Kind: EvSend, Rank: 0, Peer: 7, Size: 10}},  // bad peer
		{{Kind: EvRecv, Rank: 0, Peer: -1, Size: 10}}, // bad peer
	}
	for i, tr := range cases {
		if _, err := Replay(mem, net, 2, tr); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
	if _, err := Replay(MemorySignature{}, net, 2, nil); err == nil {
		t.Fatal("invalid signature accepted")
	}
	if _, err := Replay(mem, netbench.LogGPModel{}, 2, nil); err == nil {
		t.Fatal("empty network model accepted")
	}
	if _, err := Replay(mem, net, 0, nil); err == nil {
		t.Fatal("zero ranks accepted")
	}
}

func TestReplayPingPongMatchesRegimeRTT(t *testing.T) {
	// A pure ping-pong trace must predict ~ the fitted RTT.
	net := fittedNet(t)
	mem := validSig()
	size := 200000
	trace := []Event{
		{Kind: EvSend, Rank: 0, Peer: 1, Size: size},
		{Kind: EvRecv, Rank: 1, Peer: 0, Size: size},
		{Kind: EvSend, Rank: 1, Peer: 0, Size: size},
		{Kind: EvRecv, Rank: 0, Peer: 1, Size: size},
	}
	p, err := Replay(mem, net, 2, trace)
	if err != nil {
		t.Fatal(err)
	}
	reg := net.RegimeFor(float64(size))
	wantRTT := 2 * (reg.SendOverhead(float64(size)) + reg.Wire(float64(size)) + reg.RecvOverhead(float64(size)))
	if math.Abs(p.Makespan-wantRTT)/wantRTT > 1e-9 {
		t.Fatalf("replayed RTT %v, model RTT %v", p.Makespan, wantRTT)
	}
	// And the fitted RTT tracks the simulator's ground truth.
	truth := netsim.Taurus().RegimeFor(size).RTT(size)
	if math.Abs(p.Makespan-truth)/truth > 0.15 {
		t.Fatalf("replayed RTT %v vs ground truth %v", p.Makespan, truth)
	}
}
