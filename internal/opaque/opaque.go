// Package opaque re-implements the aggregation and online-analysis logic of
// the "opaque" benchmarks the paper studies (Figure 2, Sections III-IV):
// Pallas PMB, MultiMAPS, NetGauge's online protocol-change detector, and
// PLogP's adaptive probe.
//
// These implementations are deliberately faithful to the criticized design:
// they measure in a fixed (non-randomized) order, compute statistics on the
// fly, and return only aggregated summaries — the raw observations are
// discarded, exactly as the paper describes ("No intermediary data is kept
// after the benchmark has finished"). The repository's examples and tests
// run them side-by-side with the white-box methodology to demonstrate each
// documented failure mode.
package opaque

import (
	"fmt"
	"math"

	"opaquebench/internal/doe"
	"opaquebench/internal/membench"
	"opaquebench/internal/mpisim"
	"opaquebench/internal/netsim"
)

// PMBRow is one line of a PMB-style report: aggregates only.
type PMBRow struct {
	Op          netsim.Op
	SizeBytes   int
	Repetitions int
	MeanSec     float64
	MinSec      float64
	MaxSec      float64
	// MBps is the PMB-style throughput column, size/mean.
	MBps float64
}

// RunPMB reproduces the Pallas MPI Benchmarks procedure: power-of-two sizes
// in increasing order, N repetitions each, reporting only per-size summary
// rows ("PMB only reports mean values for each requested message size").
func RunPMB(net *netsim.Network, minSize, maxSize, reps int, ops []netsim.Op) ([]PMBRow, error) {
	if reps < 1 {
		return nil, fmt.Errorf("opaque: reps must be >= 1")
	}
	if len(ops) == 0 {
		ops = []netsim.Op{netsim.OpPingPong}
	}
	var rows []PMBRow
	for _, op := range ops {
		for size := minSize; size <= maxSize; size *= 2 {
			row := PMBRow{Op: op, SizeBytes: size, Repetitions: reps,
				MinSec: math.Inf(1), MaxSec: math.Inf(-1)}
			var sum float64
			for r := 0; r < reps; r++ {
				s, err := net.Measure(op, size)
				if err != nil {
					return nil, err
				}
				sum += s.Seconds
				row.MinSec = math.Min(row.MinSec, s.Seconds)
				row.MaxSec = math.Max(row.MaxSec, s.Seconds)
				// The raw sample goes out of scope here: discarded.
			}
			row.MeanSec = sum / float64(reps)
			if row.MeanSec > 0 {
				row.MBps = float64(size) / row.MeanSec / 1e6
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// MultiMAPSRow is one line of a MultiMAPS-style report: per-configuration
// mean and standard deviation of bandwidth, nothing else.
type MultiMAPSRow struct {
	SizeBytes, Stride int
	Repetitions       int
	MeanMBps          float64
	StddevMBps        float64
}

// RunMultiMAPS reproduces the MultiMAPS procedure against the simulated
// substrate: sizes ascending, strides inner, repetitions back-to-back (the
// "commonly used sequential order"), on-the-fly mean/stddev, raw data
// discarded. The engine provides the machine/OS substrate; this function
// deliberately bypasses the design stage.
func RunMultiMAPS(eng *membench.Engine, sizes, strides []int, reps int) ([]MultiMAPSRow, error) {
	if reps < 1 {
		return nil, fmt.Errorf("opaque: reps must be >= 1")
	}
	if len(strides) == 0 {
		strides = []int{1}
	}
	var rows []MultiMAPSRow
	for _, size := range sizes {
		for _, stride := range strides {
			var sum, sumSq float64
			for r := 0; r < reps; r++ {
				point := doe.Point{
					membench.FactorSize:   doe.Level(fmt.Sprintf("%d", size)),
					membench.FactorStride: doe.Level(fmt.Sprintf("%d", stride)),
				}
				rec, err := eng.Execute(doe.Trial{Point: point, Rep: r})
				if err != nil {
					return nil, err
				}
				sum += rec.Value
				sumSq += rec.Value * rec.Value
				// Raw record discarded.
			}
			n := float64(reps)
			mean := sum / n
			varr := 0.0
			if reps > 1 {
				varr = (sumSq - sum*sum/n) / (n - 1)
				if varr < 0 {
					varr = 0
				}
			}
			rows = append(rows, MultiMAPSRow{
				SizeBytes: size, Stride: stride, Repetitions: reps,
				MeanMBps: mean, StddevMBps: math.Sqrt(varr),
			})
		}
	}
	return rows, nil
}

// PMBCollectiveRow is one line of a PMB-style collective report.
type PMBCollectiveRow struct {
	Op          string
	SizeBytes   int
	Ranks       int
	Repetitions int
	MeanSec     float64
	MinSec      float64
	MaxSec      float64
}

// RunPMBCollectives reproduces PMB's collective procedure: power-of-two
// sizes in increasing order, N back-to-back repetitions per size on a warm
// communicator, mean/min/max only. The same aggregation blindness applies:
// a skewed rank or a temporal anomaly during one size's repetitions is
// averaged into that size's row and lost.
func RunPMBCollectives(g *mpisim.Group, op string, minSize, maxSize, reps int) ([]PMBCollectiveRow, error) {
	if reps < 1 {
		return nil, fmt.Errorf("opaque: reps must be >= 1")
	}
	var rows []PMBCollectiveRow
	for size := minSize; size <= maxSize; size *= 2 {
		row := PMBCollectiveRow{Op: op, SizeBytes: size, Ranks: g.Size(), Repetitions: reps,
			MinSec: math.Inf(1), MaxSec: math.Inf(-1)}
		var sum float64
		for r := 0; r < reps; r++ {
			var d float64
			var err error
			switch op {
			case "bcast":
				d, err = g.Bcast(0, size)
			case "allreduce":
				d, err = g.RingAllreduce(size)
			case "barrier":
				d, err = g.Barrier()
			default:
				return nil, fmt.Errorf("opaque: unknown collective %q", op)
			}
			if err != nil {
				return nil, err
			}
			sum += d
			row.MinSec = math.Min(row.MinSec, d)
			row.MaxSec = math.Max(row.MaxSec, d)
		}
		row.MeanSec = sum / float64(reps)
		rows = append(rows, row)
	}
	return rows, nil
}
