package opaque

import (
	"fmt"

	"opaquebench/internal/netsim"
	"opaquebench/internal/stats"
)

// NetGaugeReport is the output of a NetGauge-style run: the fitted segments
// and detected protocol changes, with the raw measurements discarded.
type NetGaugeReport struct {
	// Breaks are the confirmed protocol-change sizes.
	Breaks []float64
	// Probes is the number of measurements taken.
	Probes int
}

// RunNetGauge reproduces NetGauge's procedure: linearly increasing message
// sizes measured in order, with the online least-squares-deviation detector
// deciding protocol changes as the sweep progresses. A temporal perturbation
// during the sweep lands on a contiguous block of *sizes* and is
// indistinguishable from a protocol change (pitfall III.1).
func RunNetGauge(net *netsim.Network, op netsim.Op, minSize, maxSize, step int, factor float64, confirm int) (NetGaugeReport, error) {
	if step <= 0 {
		return NetGaugeReport{}, fmt.Errorf("opaque: step must be positive")
	}
	det := stats.NewNetGaugeDetector(factor, confirm)
	rep := NetGaugeReport{}
	for size := minSize; size <= maxSize; size += step {
		s, err := net.Measure(op, size)
		if err != nil {
			return NetGaugeReport{}, err
		}
		rep.Probes++
		det.Observe(float64(size), s.Seconds)
		// Raw sample discarded.
	}
	rep.Breaks = det.Breaks()
	return rep, nil
}

// PLogPReport is the output of a PLogP-style adaptive probe.
type PLogPReport struct {
	Breaks []float64
	Probes int
}

// RunPLogP reproduces PLogP's adaptive procedure: power-of-two sizes with
// linear extrapolation of the previous two points and interval halving on
// deviation (Section III). A single perturbed measurement steers the whole
// probe.
func RunPLogP(net *netsim.Network, op netsim.Op, minSize, maxSize int, tolerance float64) (PLogPReport, error) {
	var measureErr error
	probe := stats.PLogPProbe{Tolerance: tolerance}
	res := probe.Sweep(float64(minSize), float64(maxSize), func(size float64) float64 {
		s, err := net.Measure(op, int(size))
		if err != nil {
			measureErr = err
			return 0
		}
		return s.Seconds
	})
	if measureErr != nil {
		return PLogPReport{}, measureErr
	}
	return PLogPReport{Breaks: res.Breaks, Probes: res.Probes}, nil
}

// LoOgGPReport is the output of a LoOgGP-style offline analysis.
type LoOgGPReport struct {
	// Breaks are the sizes flagged as protocol changes.
	Breaks []float64
	// Probes is the number of measurements taken.
	Probes int
}

// RunLoOgGP reproduces the LoOgGP procedure: linearly increasing message
// sizes, offline outlier removal, then the neighborhood-maximum rule. The
// paper notes the mechanism "is sensitive to the neighborhood size and the
// message size steps during the measurement stage" — callers can observe
// exactly that by varying halfWidth and step.
func RunLoOgGP(net *netsim.Network, op netsim.Op, minSize, maxSize, step, halfWidth int, madCutoff float64) (LoOgGPReport, error) {
	if step <= 0 {
		return LoOgGPReport{}, fmt.Errorf("opaque: step must be positive")
	}
	var xs, ys []float64
	rep := LoOgGPReport{}
	for size := minSize; size <= maxSize; size += step {
		s, err := net.Measure(op, size)
		if err != nil {
			return LoOgGPReport{}, err
		}
		rep.Probes++
		xs = append(xs, float64(size))
		ys = append(ys, s.Seconds)
	}
	rep.Breaks = stats.LoOgGPNeighborhood(xs, ys, halfWidth, madCutoff)
	return rep, nil
}
