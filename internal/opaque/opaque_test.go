package opaque

import (
	"math"
	"testing"

	"opaquebench/internal/membench"
	"opaquebench/internal/memsim"
	"opaquebench/internal/mpisim"
	"opaquebench/internal/netsim"
	"opaquebench/internal/ossim"
)

func quietNet(t *testing.T, seed uint64) *netsim.Network {
	t.Helper()
	n, err := netsim.New(netsim.Taurus(), seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRunPMBRows(t *testing.T) {
	rows, err := RunPMB(quietNet(t, 1), 64, 4096, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 (64..4096)", len(rows))
	}
	for _, r := range rows {
		if r.MeanSec <= 0 || r.MinSec > r.MeanSec || r.MaxSec < r.MeanSec {
			t.Fatalf("inconsistent row %+v", r)
		}
		if r.MBps <= 0 {
			t.Fatalf("throughput missing: %+v", r)
		}
	}
}

func TestRunPMBErrors(t *testing.T) {
	if _, err := RunPMB(quietNet(t, 2), 64, 128, 0, nil); err == nil {
		t.Fatal("zero reps accepted")
	}
}

func TestPMBHitsOnlyAlignedSizes(t *testing.T) {
	// Pitfall III.2 demonstrated structurally: every size PMB measures on
	// Taurus falls on the planted 1024-aligned slow path once >= 1024, so
	// the report cannot reveal that those sizes are special.
	rows, err := RunPMB(quietNet(t, 3), 1024, 8192, 5, []netsim.Op{netsim.OpSend})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SizeBytes%1024 != 0 {
			t.Fatalf("unexpected unaligned size %d", r.SizeBytes)
		}
	}
}

func TestRunMultiMAPSAggregatesOnly(t *testing.T) {
	eng, err := membench.NewEngine(membench.Config{Machine: memsim.Opteron(), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunMultiMAPS(eng, []int{8 << 10, 32 << 10}, []int{1, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanMBps <= 0 {
			t.Fatalf("bad mean in %+v", r)
		}
		if r.StddevMBps < 0 || math.IsNaN(r.StddevMBps) {
			t.Fatalf("bad stddev in %+v", r)
		}
	}
}

func TestRunMultiMAPSZeroReps(t *testing.T) {
	eng, err := membench.NewEngine(membench.Config{Machine: memsim.Opteron(), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunMultiMAPS(eng, []int{1024}, nil, 0); err == nil {
		t.Fatal("zero reps accepted")
	}
}

func TestMultiMAPSSequentialOrderMisattributesInterference(t *testing.T) {
	// Pitfall IV.3: measurements run in sequential size order, so a
	// temporal interference window lands on a contiguous block of sizes and
	// the opaque per-size means "wrongly suggest poor performance for a
	// specific subset of buffer sizes".
	eng, err := membench.NewEngine(membench.Config{
		Machine: memsim.ARMSnowball(),
		Seed:    11,
		Sched: ossim.Config{
			Policy:          ossim.PolicyRT,
			DaemonPeriodSec: 6,
			DaemonDuty:      0.3,
		},
		GapSec: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int, 12)
	for i := range sizes {
		sizes[i] = (i + 1) << 10
	}
	rows, err := RunMultiMAPS(eng, sizes, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	// All sizes are L1-resident, so the truth is a flat curve; the artifact
	// shows up as some sizes appearing far slower than others.
	minMean, maxMean := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		minMean = math.Min(minMean, r.MeanMBps)
		maxMean = math.Max(maxMean, r.MeanMBps)
	}
	if maxMean/minMean < 1.5 {
		t.Fatalf("sequential order should misattribute interference to sizes: spread=%v", maxMean/minMean)
	}
}

func TestRunNetGaugeCleanTwoRegimes(t *testing.T) {
	net, err := netsim.New(netsim.MyrinetOpenMPI(), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunNetGauge(net, netsim.OpPingPong, 1024, 65536, 512, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Probes != (65536-1024)/512+1 {
		t.Fatalf("probes = %d", rep.Probes)
	}
	if len(rep.Breaks) == 0 {
		t.Fatal("no protocol change found on a profile with planted breaks")
	}
}

func TestRunNetGaugePerturbationFakesBreak(t *testing.T) {
	// Pitfall III.1: a perturbation window during the ordered sweep is
	// reported as a protocol change on a single-regime network.
	perturb := netsim.NewPerturber(4, netsim.Window{Start: 0.004, End: 0.02})
	net, err := netsim.New(netsim.MyrinetGM(), 6, perturb)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunNetGauge(net, netsim.OpPingPong, 1024, 65536, 512, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Breaks) == 0 {
		t.Fatal("perturbation should have faked a protocol change on the single-regime GM profile")
	}
}

func TestRunNetGaugeBadStep(t *testing.T) {
	if _, err := RunNetGauge(quietNet(t, 7), netsim.OpSend, 1, 10, 0, 2, 5); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestRunPLogPFindsPlantedBreak(t *testing.T) {
	net, err := netsim.New(netsim.MyrinetOpenMPI(), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunPLogP(net, netsim.OpPingPong, 256, 262144, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Probes == 0 {
		t.Fatal("no probes")
	}
	if len(rep.Breaks) == 0 {
		t.Fatal("no break found across the rendezvous switch")
	}
}

func TestRunPLogPQuietLinearProfileNoBreaks(t *testing.T) {
	net, err := netsim.New(netsim.MyrinetGM(), 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunPLogP(net, netsim.OpPingPong, 4096, 262144, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Breaks) != 0 {
		t.Fatalf("spurious breaks on a single-regime profile: %v", rep.Breaks)
	}
}

func TestRunPMBCollectives(t *testing.T) {
	g, err := mpisim.NewGroup(netsim.MyrinetGM(), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunPMBCollectives(g, "bcast", 64, 4096, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanSec <= 0 || r.MinSec > r.MeanSec || r.MaxSec < r.MeanSec {
			t.Fatalf("bad row %+v", r)
		}
		if r.Ranks != 8 {
			t.Fatalf("ranks = %d", r.Ranks)
		}
	}
	// Size must dominate over the sweep (adjacent tiny sizes can overlap
	// through warm-communicator pipelining, so compare the extremes).
	if rows[len(rows)-1].MeanSec <= rows[0].MeanSec {
		t.Fatalf("bcast mean not size-driven: %v vs %v", rows[0].MeanSec, rows[len(rows)-1].MeanSec)
	}
	if _, err := RunPMBCollectives(g, "allreduce", 64, 256, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := RunPMBCollectives(g, "barrier", 64, 64, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := RunPMBCollectives(g, "scan", 64, 64, 2); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := RunPMBCollectives(g, "bcast", 64, 64, 0); err == nil {
		t.Fatal("zero reps accepted")
	}
}

func TestRunLoOgGPSensitivity(t *testing.T) {
	// The same profile, two neighborhood sizes: different verdicts — the
	// paper's stated weakness of the method.
	run := func(halfWidth int) int {
		net, err := netsim.New(netsim.MyrinetOpenMPI(), 12, nil)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunLoOgGP(net, netsim.OpPingPong, 1024, 65536, 512, halfWidth, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Probes == 0 {
			t.Fatal("no probes")
		}
		return len(rep.Breaks)
	}
	narrow := run(1)
	wide := run(20)
	if narrow == wide {
		t.Fatalf("neighborhood size should change the verdict: narrow=%d wide=%d", narrow, wide)
	}
}

func TestRunLoOgGPBadStep(t *testing.T) {
	if _, err := RunLoOgGP(quietNet(t, 13), netsim.OpSend, 1, 10, 0, 3, 3); err == nil {
		t.Fatal("zero step accepted")
	}
}
