package suite

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/meta"
	"opaquebench/internal/runner"
	"opaquebench/internal/store"
)

// The cache is content-addressed: a campaign's key is a canonical hash of
// everything that determines its records — the engine name, the canonical
// engine config, the materialized design CSV (which captures factors,
// levels, replication and the randomized schedule), the campaign seed, and
// the module version. Anything outside that set (output paths, worker
// counts, suite membership) deliberately does not contribute: engines are
// trial-indexed, so those choices cannot change a single byte of output.

// ModuleVersion reports the running module's build identity. It is a
// cache-key component so entries never survive a change of the simulators:
// a release version (clean VCS state) identifies the code exactly, but a
// development build — "(devel)", or any build from a modified tree — does
// not, so those fall back to the executable's own content hash, which
// moves with every code edit. The fallback is conservative: two binaries
// of identical source built by different toolchains miss each other's
// entries, which costs a re-run, never a stale replay.
var ModuleVersion = sync.OnceValue(func() string {
	version, modified := "", false
	if bi, ok := debug.ReadBuildInfo(); ok {
		version = bi.Main.Version
		for _, s := range bi.Settings {
			if s.Key == "vcs.modified" && s.Value == "true" {
				modified = true
			}
		}
	}
	if version != "" && version != "(devel)" && !modified {
		return version
	}
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			return "devel-" + hex.EncodeToString(sum[:8])
		}
	}
	return "unknown"
})

// cacheKey computes a campaign's content address. config must already be
// canonical (see engine.Canonical).
func cacheKey(engine string, config []byte, design *doe.Design, seed uint64, version string) (string, error) {
	var csv bytes.Buffer
	if err := design.WriteCSV(&csv); err != nil {
		return "", fmt.Errorf("suite: materialize design: %w", err)
	}
	h := sha256.New()
	for _, part := range [][]byte{
		[]byte(engine),
		config,
		csv.Bytes(),
		[]byte(strconv.FormatUint(seed, 10)),
		[]byte(version),
	} {
		// Length-prefix every section so no concatenation of different
		// sections can collide.
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(part)))
		h.Write(n[:])
		h.Write(part)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Entry is one cached campaign result: the full raw record set in design
// order plus the captured environment, exactly as a cold run produced them.
type Entry struct {
	// Suite and Campaign record provenance for humans browsing the cache;
	// they are not part of the key.
	Suite    string `json:"suite,omitempty"`
	Campaign string `json:"campaign,omitempty"`
	// Engine is the engine that produced the records.
	Engine string `json:"engine"`
	// Round is the 1-based round index for entries of an adaptive
	// campaign (one cache entry per round); 0 for static campaigns.
	// Provenance only — never part of the key — but it lets consumers
	// (the differential comparator) reassemble a campaign's rounds
	// instead of mistaking them for an ambiguous cache.
	Round int `json:"round,omitempty"`
	// Parent is the cache key of the previous adaptive round's entry —
	// the provenance link that chains round N to the records it was
	// planned from. Empty for round 1 and static campaigns. Like Round it
	// is provenance only, never part of the key.
	Parent string `json:"parent,omitempty"`
	// Seed is the campaign seed.
	Seed uint64 `json:"seed"`
	// Env is the cold run's captured environment, without suite
	// annotations (verdicts are stamped per run onto a clone).
	Env *meta.Environment `json:"env"`
	// Records is the full raw record set in design order.
	Records []cachedRecord `json:"records"`
}

// cachedRecord fixes the cache schema independently of the core.RawRecord
// Go struct. encoding/json round-trips float64 exactly (shortest-form
// encoding), so replayed records are bit-equal to the cold run's.
type cachedRecord struct {
	Seq     int               `json:"seq"`
	Rep     int               `json:"rep"`
	Value   float64           `json:"value"`
	Seconds float64           `json:"seconds"`
	At      float64           `json:"at"`
	Point   map[string]string `json:"point,omitempty"`
	Extra   map[string]string `json:"extra,omitempty"`
}

func toCached(recs []core.RawRecord) []cachedRecord {
	out := make([]cachedRecord, len(recs))
	for i, r := range recs {
		c := cachedRecord{Seq: r.Seq, Rep: r.Rep, Value: r.Value, Seconds: r.Seconds, At: r.At, Extra: r.Extra}
		if len(r.Point) > 0 {
			c.Point = make(map[string]string, len(r.Point))
			for k, v := range r.Point {
				c.Point[k] = string(v)
			}
		}
		out[i] = c
	}
	return out
}

// Replay drains the entry's records into the sinks — record for record the
// sequence a cold run streams, in design order, each sink flushed after its
// last record. The suite's byte-identical file replay and the differential
// comparator's replay-to-memory reads (via runner.MemorySink) are the same
// operation pointed at different sinks.
func (e *Entry) Replay(sinks ...runner.RecordSink) error {
	records := e.records()
	for _, s := range sinks {
		for _, rec := range records {
			if err := s.Write(rec); err != nil {
				return err
			}
		}
		if err := s.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// records rebuilds the raw record set for sink replay.
func (e *Entry) records() []core.RawRecord {
	out := make([]core.RawRecord, len(e.Records))
	for i, c := range e.Records {
		r := core.RawRecord{Seq: c.Seq, Rep: c.Rep, Value: c.Value, Seconds: c.Seconds, At: c.At, Extra: c.Extra}
		if len(c.Point) > 0 {
			r.Point = make(doe.Point, len(c.Point))
			for k, v := range c.Point {
				r.Point[k] = doe.Level(v)
			}
		}
		out[i] = r
	}
	return out
}

// Cache is a content-addressed cache of entries keyed by campaign key. It
// has two interchangeable backends with identical semantics — atomic
// last-write-wins stores, JSON entry payloads, sorted Keys — so everything
// above it (suite runs, the serve daemon, the comparator) is
// backend-agnostic:
//
//   - a directory of <key>.json files (one file per entry, temp+rename
//     atomicity), the original layout;
//   - a single-file embedded store (internal/store: append-only
//     checksummed log + sidecar index), which adds queryable metadata,
//     pinned runs and GC on top of the same entry bytes.
type Cache struct {
	dir string       // directory backend; "" when store-backed
	st  *store.Store // store backend; nil when directory-backed
}

// OpenCache opens (creating if needed) a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("suite: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// ReadCache opens an existing cache for reading without creating or
// modifying anything — the form consumers like the differential comparator
// use on baselines they must not touch. The backend is auto-detected: a
// directory is the classic per-entry layout, a file is an embedded store
// log (opened read-only). A missing path is an error, not an empty cache: a
// comparison against a mistyped path should fail loudly.
func ReadCache(path string) (*Cache, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("suite: read cache: %w", err)
	}
	if !fi.IsDir() {
		return ReadCacheStore(path)
	}
	return &Cache{dir: path}, nil
}

// Close releases the backend. Directory caches hold no resources; closing
// a store-backed cache closes the underlying store (flushing its index).
func (c *Cache) Close() error {
	if c.st != nil {
		return c.st.Close()
	}
	return nil
}

// Keys lists the key of every entry in the cache, sorted. In-flight
// temporary files from concurrent Stores are skipped.
func (c *Cache) Keys() ([]string, error) {
	if c.st != nil {
		return c.st.Keys(), nil
	}
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, fmt.Errorf("suite: list cache: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.Contains(name, ".tmp") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(keys)
	return keys, nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Lookup reports whether an entry exists for key.
func (c *Cache) Lookup(key string) bool {
	if c.st != nil {
		return c.st.Has(key)
	}
	_, err := os.Stat(c.path(key))
	return err == nil
}

// Load reads the entry for key.
func (c *Cache) Load(key string) (*Entry, error) {
	var data []byte
	var err error
	if c.st != nil {
		data, err = c.st.Get(key)
	} else {
		data, err = os.ReadFile(c.path(key))
	}
	if err != nil {
		return nil, fmt.Errorf("suite: cache load: %w", err)
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("suite: cache entry %s: %w", key, err)
	}
	return &e, nil
}

// Store writes the entry for key atomically, replacing any previous entry
// (last write wins on both backends). The directory backend writes a temp
// file and renames it, so a crashed or concurrent writer can never leave a
// torn entry behind; the store backend appends one checksummed frame, whose
// recovery rule gives the same guarantee.
func (c *Cache) Store(key string, e *Entry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("suite: cache encode: %w", err)
	}
	if c.st != nil {
		if err := c.st.Put(key, data, entryMeta(e)); err != nil {
			return fmt.Errorf("suite: cache store: %w", err)
		}
		return nil
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("suite: cache store: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("suite: cache store: %w", errorsFirst(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("suite: cache store: %w", err)
	}
	return nil
}

func errorsFirst(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
