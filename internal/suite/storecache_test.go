package suite

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"opaquebench/internal/meta"
	"opaquebench/internal/runner"
	"opaquebench/internal/store"
)

// openTestStoreCache opens a store-backed cache at a fresh path.
func openTestStoreCache(t *testing.T) (*Cache, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cache.store")
	c, err := OpenCacheStore(path)
	if err != nil {
		t.Fatalf("OpenCacheStore: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c, path
}

// TestStoreBackendByteIdentical is the dual-backend half of the suite
// determinism guarantee: the same suite runs cold and warm through a
// store-backed cache at workers 1, 4 and 8, and every sink file is
// byte-identical to the serial reference — and to the directory-backed
// warm run, verdict JSON included, when the store was imported from that
// directory cache.
func TestStoreBackendByteIdentical(t *testing.T) {
	ref := parseTestSpec(t)
	refDir := t.TempDir()
	serialReference(t, ref, refDir)

	for _, workers := range []int{1, 4, 8} {
		// Cold then warm through a fresh store-backed cache.
		spec := parseTestSpec(t)
		for i := range spec.Campaigns {
			spec.Campaigns[i].Workers = workers
		}
		cache, _ := openTestStoreCache(t)
		coldDir := t.TempDir()
		cold, err := Run(context.Background(), spec, Options{Cache: cache, BaseDir: coldDir, Workers: workers})
		if err != nil {
			t.Fatalf("workers %d: cold store run: %v", workers, err)
		}
		for _, cr := range cold.Campaigns {
			if cr.Hit || cr.Trials == 0 {
				t.Errorf("workers %d: cold %s: verdict %s, %d trials", workers, cr.Name, cr.Verdict(), cr.Trials)
			}
		}
		compareSinks(t, spec, refDir, coldDir, "store cold")

		warmDir := t.TempDir()
		warm, err := Run(context.Background(), spec, Options{Cache: cache, BaseDir: warmDir, Workers: workers})
		if err != nil {
			t.Fatalf("workers %d: warm store run: %v", workers, err)
		}
		for _, cr := range warm.Campaigns {
			if !cr.Hit || cr.Trials != 0 {
				t.Errorf("workers %d: warm %s: verdict %s, %d trials", workers, cr.Name, cr.Verdict(), cr.Trials)
			}
		}
		compareSinks(t, spec, refDir, warmDir, "store warm")

		// Cross-backend: a directory cache warmed by its own cold run,
		// imported into a store — the two warm replays must agree byte for
		// byte on every output, the campaign verdict JSON included (same
		// cached environment, same verdict annotations).
		cacheDir := t.TempDir()
		if _, err := Run(context.Background(), spec, Options{CacheDir: cacheDir, BaseDir: t.TempDir(), Workers: workers}); err != nil {
			t.Fatalf("workers %d: cold dir run: %v", workers, err)
		}
		warmFromDir := t.TempDir()
		dirRes, err := Run(context.Background(), spec, Options{CacheDir: cacheDir, BaseDir: warmFromDir, Workers: workers})
		if err != nil {
			t.Fatalf("workers %d: warm dir run: %v", workers, err)
		}

		imported, importedPath := openTestStoreCache(t)
		if _, err := ImportDirToStore(cacheDir, imported.Backing()); err != nil {
			t.Fatalf("workers %d: import: %v", workers, err)
		}
		warmFromStore := t.TempDir()
		stRes, err := Run(context.Background(), spec, Options{Cache: imported, BaseDir: warmFromStore, Workers: workers})
		if err != nil {
			t.Fatalf("workers %d: warm imported-store run: %v", workers, err)
		}

		for i := range dirRes.Campaigns {
			d, s := dirRes.Campaigns[i], stRes.Campaigns[i]
			if d.Name != s.Name || d.Key != s.Key || d.Hit != s.Hit || d.Trials != s.Trials || d.Records != s.Records {
				t.Errorf("workers %d: verdicts diverge between backends: dir %+v store %+v", workers, d, s)
			}
		}
		for _, c := range spec.Campaigns {
			for _, name := range []string{c.Out, c.JSONL, c.Env} {
				if name == "" {
					continue
				}
				want := readFile(t, filepath.Join(warmFromDir, name))
				got := readFile(t, filepath.Join(warmFromStore, name))
				if !bytes.Equal(want, got) {
					t.Errorf("workers %d: %s/%s differs between dir and store backends (%d vs %d bytes)",
						workers, c.Name, name, len(want), len(got))
				}
			}
		}

		// The imported store must also survive its own integrity check.
		if _, err := imported.Backing().Verify(); err != nil {
			t.Errorf("workers %d: imported store Verify: %v", workers, err)
		}
		_ = importedPath
	}
}

// randomEntry builds one seeded pseudo-random cache entry — the property
// test's unit of comparison.
func randomEntry(r *rand.Rand, i int) (string, *Entry) {
	var kb [32]byte
	r.Read(kb[:])
	key := fmt.Sprintf("%x", kb)
	env := &meta.Environment{
		CapturedAt: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
		Fields: map[string]string{
			"machine": []string{"i7", "arm", "snowball"}[r.Intn(3)],
			"run":     fmt.Sprintf("%d", r.Intn(1000)),
		},
	}
	e := &Entry{
		Suite:    []string{"alpha", "beta", ""}[r.Intn(3)],
		Campaign: fmt.Sprintf("c%03d", r.Intn(40)),
		Engine:   []string{"membench", "cpubench", "netbench"}[r.Intn(3)],
		Round:    r.Intn(4),
		Seed:     r.Uint64(),
		Env:      env,
	}
	n := r.Intn(20)
	// The CSV sink requires a homogeneous record schema, so point and extra
	// shape is a per-entry choice (as it is for real campaigns), not
	// per-record.
	hasPoint, hasExtra := r.Intn(2) == 0, r.Intn(4) == 0
	at := 0.0
	for s := 0; s < n; s++ {
		at += r.Float64()
		rec := cachedRecord{
			Seq: s, Rep: r.Intn(6),
			Value:   r.NormFloat64() * 1e3,
			Seconds: r.Float64() / 1e3,
			At:      at,
		}
		if hasPoint {
			rec.Point = map[string]string{"size": fmt.Sprintf("%d", 1<<r.Intn(20)), "stride": fmt.Sprintf("%d", 1+r.Intn(64))}
		}
		if hasExtra {
			rec.Extra = map[string]string{"round": fmt.Sprintf("%d", e.Round)}
		}
		e.Records = append(e.Records, rec)
	}
	return key, e
}

// replayStreams renders an entry's CSV and JSONL replay byte streams.
func replayStreams(t *testing.T, e *Entry) ([]byte, []byte) {
	t.Helper()
	var csv, jsonl bytes.Buffer
	if err := e.Replay(runner.NewCSVSink(&csv), runner.NewJSONLSink(&jsonl)); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return csv.Bytes(), jsonl.Bytes()
}

// TestStoreImportPropertyRoundTrip is the property test over the three
// write paths: ~200 seeded random entries written to a cache directory and
// to a store directly, plus an import of the directory into a third store —
// Keys() and every entry's CSV/JSONL replay byte stream must be identical
// across all backends.
func TestStoreImportPropertyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(20170529))
	dirCache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	directCache, _ := openTestStoreCache(t)
	const cases = 200
	keys := make([]string, 0, cases)
	for i := 0; i < cases; i++ {
		key, e := randomEntry(r, i)
		if err := dirCache.Store(key, e); err != nil {
			t.Fatalf("case %d: dir store: %v", i, err)
		}
		if err := directCache.Store(key, e); err != nil {
			t.Fatalf("case %d: store store: %v", i, err)
		}
		keys = append(keys, key)
	}

	importedCache, _ := openTestStoreCache(t)
	impKeys, err := ImportDirToStore(dirOfCache(t, dirCache), importedCache.Backing())
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if len(impKeys) != cases {
		t.Fatalf("imported %d entries, want %d", len(impKeys), cases)
	}

	dirKeys, err := dirCache.Keys()
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []struct {
		name string
		c    *Cache
	}{{"direct store", directCache}, {"imported store", importedCache}} {
		bk, err := backend.c.Keys()
		if err != nil {
			t.Fatalf("%s: Keys: %v", backend.name, err)
		}
		if len(bk) != len(dirKeys) {
			t.Fatalf("%s: %d keys, dir has %d", backend.name, len(bk), len(dirKeys))
		}
		for i := range bk {
			if bk[i] != dirKeys[i] {
				t.Fatalf("%s: key order diverges at %d: %s vs %s", backend.name, i, bk[i], dirKeys[i])
			}
		}
	}

	for _, key := range keys {
		want, err := dirCache.Load(key)
		if err != nil {
			t.Fatalf("dir load %s: %v", key, err)
		}
		wantCSV, wantJSONL := replayStreams(t, want)
		for _, backend := range []struct {
			name string
			c    *Cache
		}{{"direct store", directCache}, {"imported store", importedCache}} {
			got, err := backend.c.Load(key)
			if err != nil {
				t.Fatalf("%s: load %s: %v", backend.name, key, err)
			}
			gotCSV, gotJSONL := replayStreams(t, got)
			if !bytes.Equal(gotCSV, wantCSV) {
				t.Errorf("%s: %s: CSV replay stream differs (%d vs %d bytes)", backend.name, key, len(gotCSV), len(wantCSV))
			}
			if !bytes.Equal(gotJSONL, wantJSONL) {
				t.Errorf("%s: %s: JSONL replay stream differs (%d vs %d bytes)", backend.name, key, len(gotJSONL), len(wantJSONL))
			}
		}
	}

	// The imported store's queryable metadata reflects the entries, not
	// just their bytes: every entry is findable by its engine.
	st := importedCache.Backing()
	total := 0
	for _, eng := range []string{"membench", "cpubench", "netbench"} {
		total += len(st.Query(store.Query{Engine: eng}))
	}
	if total != cases {
		t.Errorf("engine queries cover %d of %d imported entries", total, cases)
	}
}

// dirOfCache recovers a directory cache's path for import.
func dirOfCache(t *testing.T, c *Cache) string {
	t.Helper()
	if c.dir == "" {
		t.Fatal("not a directory cache")
	}
	return c.dir
}

// TestAdaptiveStoreProvenanceChain: an adaptive campaign through the store
// backend replays warm all-hit, and the store's provenance chain links each
// round to the one it was planned from.
func TestAdaptiveStoreProvenanceChain(t *testing.T) {
	spec := parseAdaptiveSpec(t)
	cache, _ := openTestStoreCache(t)
	cold, err := Run(context.Background(), spec, Options{Cache: cache, BaseDir: t.TempDir(), Workers: 4})
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	rounds := cold.Campaigns[0].Rounds
	if len(rounds) < 2 {
		t.Fatalf("adaptive plan produced %d rounds, want ≥ 2", len(rounds))
	}

	warm, err := Run(context.Background(), spec, Options{Cache: cache, BaseDir: t.TempDir(), Workers: 4})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if !warm.Campaigns[0].Hit || warm.Campaigns[0].Trials != 0 {
		t.Fatalf("warm adaptive run: verdict %s, %d trials", warm.Campaigns[0].Verdict(), warm.Campaigns[0].Trials)
	}

	st := cache.Backing()
	last := rounds[len(rounds)-1]
	chain, err := st.Chain(last.Key)
	if err != nil {
		t.Fatalf("Chain(%s): %v", last.Key, err)
	}
	if len(chain) != len(rounds) {
		t.Fatalf("chain length %d, want %d rounds", len(chain), len(rounds))
	}
	for i, m := range chain {
		if m.Key != rounds[i].Key {
			t.Errorf("chain[%d] = %s, want round %d key %s", i, m.Key, rounds[i].Round, rounds[i].Key)
		}
		if m.Round != rounds[i].Round {
			t.Errorf("chain[%d] round %d, want %d", i, m.Round, rounds[i].Round)
		}
		if i == 0 && m.Parent != "" {
			t.Errorf("seed round has parent %q", m.Parent)
		}
		if i > 0 && m.Parent != rounds[i-1].Key {
			t.Errorf("round %d parent %s, want %s", rounds[i].Round, m.Parent, rounds[i-1].Key)
		}
	}
}
