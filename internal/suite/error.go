package suite

import "fmt"

// CampaignError is one campaign's failure with the campaign's identity
// attached as structured fields, so API consumers can report which campaign
// failed — and under which cache key and spec hash — without parsing error
// strings. Run joins one CampaignError per failed campaign; unwrap with
// errors.As (and reach the cause through Unwrap/errors.Is).
type CampaignError struct {
	// Campaign and Engine identify the failed campaign.
	Campaign string
	Engine   string
	// Key is the campaign's content-addressed cache key (the seed round's
	// key for adaptive campaigns).
	Key string
	// SpecHash is the canonical hash of the suite spec the campaign
	// belongs to.
	SpecHash string
	// Err is the underlying failure.
	Err error
}

// Error keeps the historical message shape ("suite: campaign %q: ...");
// the structured fields exist so nothing needs to parse it.
func (e *CampaignError) Error() string {
	return fmt.Sprintf("suite: campaign %q: %v", e.Campaign, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/errors.As.
func (e *CampaignError) Unwrap() error { return e.Err }
