package suite

import (
	"strings"
	"testing"

	"opaquebench/internal/engine"
)

const specJSON = `{
  "suite": "t",
  "workers": 4,
  "campaigns": [
    {
      "name": "mem",
      "engine": "membench",
      "seed": 7,
      "config": { "machine": "snowball", "sizes": [1024, 8192], "reps": 2 },
      "out": "mem.csv",
      "jsonl": "mem.jsonl",
      "env": "mem.env.json"
    },
    {
      "name": "net",
      "engine": "netbench",
      "seed": 7,
      "config": { "profile": "taurus", "n": 12, "reps": 2, "perturb_factor": 3, "perturb_end": 1 },
      "out": "net.csv",
      "jsonl": "net.jsonl"
    },
    {
      "name": "cpu",
      "engine": "cpubench",
      "seed": 7,
      "config": { "governor": "performance", "policy": "rt", "nloops": [20, 200], "reps": 3 },
      "out": "cpu.csv",
      "jsonl": "cpu.jsonl"
    }
  ]
}`

func parseTestSpec(t *testing.T) *Spec {
	t.Helper()
	spec, err := Parse([]byte(specJSON), "spec.json")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return spec
}

func TestParseResolvesCampaigns(t *testing.T) {
	spec := parseTestSpec(t)
	if spec.Name != "t" || spec.Workers != 4 {
		t.Fatalf("header: %q workers %d", spec.Name, spec.Workers)
	}
	if len(spec.Campaigns) != 3 {
		t.Fatalf("campaigns: %d", len(spec.Campaigns))
	}
	plans, err := BuildPlans(spec)
	if err != nil {
		t.Fatalf("BuildPlans: %v", err)
	}
	wantTrials := []int{4, 72, 6}
	for i, p := range plans {
		if p.Design.Size() != wantTrials[i] {
			t.Errorf("campaign %s: %d trials, want %d", p.Campaign.Name, p.Design.Size(), wantTrials[i])
		}
		if len(p.Key) != 64 {
			t.Errorf("campaign %s: bad key %q", p.Campaign.Name, p.Key)
		}
	}
}

func TestParseErrorsArePositioned(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // all must appear in the error
	}{
		{"syntax", "{\n  \"suite\": \"t\",,\n}", []string{"spec.json:2"}},
		{"top type", "{\n  \"workers\": \"many\"\n}", []string{"spec.json:2", "cannot use"}},
		{"unknown top key", "{\n  \"sweet\": \"t\"\n}", []string{"spec.json:2", `unknown key "sweet"`}},
		{"not an object", "[1]", []string{"spec.json:1", "JSON object"}},
		{"no campaigns", `{"suite": "t"}`, []string{"no campaigns"}},
		{"unknown engine", "{\"campaigns\": [\n  {\"name\": \"x\", \"engine\": \"gpubench\", \"out\": \"x.csv\"}\n]}",
			[]string{"spec.json:2", `unknown engine "gpubench"`,
				"registered engines: " + strings.Join(engine.Names(), ", ")}},
		// The enumeration is sorted, so the message is stable across
		// registration order and greppable in bug reports.
		{"unknown engine enumeration sorted", "{\"campaigns\": [\n  {\"name\": \"x\", \"engine\": \"gpubench\", \"out\": \"x.csv\"}\n]}",
			[]string{"registered engines: collbench, cpubench, membench, netbench, numabench"}},
		{"missing name", "{\"campaigns\": [\n  {\"engine\": \"membench\", \"out\": \"x.csv\"}\n]}",
			[]string{"spec.json:2", `needs a "name"`}},
		{"no sink", "{\"campaigns\": [\n  {\"name\": \"x\", \"engine\": \"membench\"}\n]}",
			[]string{"spec.json:2", "no output sink"}},
		{"unknown campaign field", "{\"campaigns\": [\n  {\"name\": \"x\", \"engine\": \"membench\", \"out\": \"x.csv\", \"sede\": 1}\n]}",
			[]string{"spec.json:2", `"sede"`}},
		{"unknown config field", "{\"campaigns\": [\n  {\"name\": \"x\", \"engine\": \"membench\", \"out\": \"x.csv\",\n   \"config\": {\"machina\": \"i7\"}}\n]}",
			[]string{"spec.json:2", `"machina"`}},
		{"duplicate name", "{\"campaigns\": [\n  {\"name\": \"x\", \"engine\": \"membench\", \"out\": \"a.csv\"},\n  {\"name\": \"x\", \"engine\": \"membench\", \"out\": \"b.csv\"}\n]}",
			[]string{"spec.json:3", `"x" already declared`}},
		{"duplicate sink path", "{\"campaigns\": [\n  {\"name\": \"x\", \"engine\": \"membench\", \"out\": \"a.csv\"},\n  {\"name\": \"y\", \"engine\": \"membench\", \"jsonl\": \"a.csv\"}\n]}",
			[]string{"spec.json:3", `"a.csv" already used by campaign "x"`}},
		{"sink path used twice in one campaign", "{\"campaigns\": [\n  {\"name\": \"x\", \"engine\": \"membench\", \"out\": \"a.csv\", \"jsonl\": \"a.csv\"}\n]}",
			[]string{"spec.json:2", `"a.csv" used twice`}},
		{"sink path aliased by spelling", "{\"campaigns\": [\n  {\"name\": \"x\", \"engine\": \"membench\", \"out\": \"out/a.csv\"},\n  {\"name\": \"y\", \"engine\": \"membench\", \"out\": \"./out/a.csv\"}\n]}",
			[]string{"spec.json:3", `already used by campaign "x"`}},
		{"duplicate campaign key", "{\"campaigns\": [\n  {\"name\": \"x\", \"engine\": \"membench\", \"out\": \"a.csv\", \"seed\": 1, \"seed\": 2}\n]}",
			[]string{"spec.json:2", `duplicate key "seed"`}},
		{"duplicate config key", "{\"campaigns\": [\n  {\"name\": \"x\", \"engine\": \"membench\", \"out\": \"a.csv\",\n   \"config\": {\"machine\": \"i7\", \"machine\": \"p4\"}}\n]}",
			[]string{"spec.json:2", `duplicate key "machine"`}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src), "spec.json")
			if err == nil {
				t.Fatalf("no error for %s", tc.src)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}

func TestBuildPlansRejectsCollidingSpecs(t *testing.T) {
	// Hand-constructed specs bypass Parse; BuildPlans must still refuse
	// campaigns that would race on one output file.
	spec := parseTestSpec(t)
	spec.Campaigns[1].Out = spec.Campaigns[0].Out
	if _, err := BuildPlans(spec); err == nil || !strings.Contains(err.Error(), "already used") {
		t.Errorf("shared output path not rejected: %v", err)
	}

	spec = parseTestSpec(t)
	spec.Campaigns[1].Name = spec.Campaigns[0].Name
	if _, err := BuildPlans(spec); err == nil || !strings.Contains(err.Error(), "declared twice") {
		t.Errorf("duplicate name not rejected: %v", err)
	}
}

func TestBuildPlansRejectsBadPerturbFactor(t *testing.T) {
	src := `{"campaigns": [
  {"name": "x", "engine": "netbench", "out": "x.csv",
   "config": {"n": 10, "reps": 2, "perturb_factor": 0.5}}
]}`
	spec, err := Parse([]byte(src), "spec.json")
	if err == nil {
		_, err = BuildPlans(spec)
	}
	if err == nil || !strings.Contains(err.Error(), "perturb_factor") {
		t.Fatalf("want perturb_factor rejection, got %v", err)
	}
}

func TestModuleVersionIsStableAndNonEmpty(t *testing.T) {
	v := ModuleVersion()
	if v == "" {
		t.Fatal("empty module version")
	}
	// A development build must not collapse to the constant "(devel)",
	// which would let cache entries survive simulator edits.
	if v == "(devel)" {
		t.Fatalf("module version is the constant %q", v)
	}
	if ModuleVersion() != v {
		t.Fatalf("module version not stable within a process")
	}
}

func TestBuildPlansRejectsHistoryDependentConfigs(t *testing.T) {
	src := `{"campaigns": [
  {"name": "x", "engine": "cpubench", "out": "x.csv",
   "config": {"governor": "ondemand", "reps": 2}}
]}`
	spec, err := Parse([]byte(src), "spec.json")
	if err == nil {
		_, err = BuildPlans(spec)
	}
	if err == nil || !strings.Contains(err.Error(), "load-oblivious") {
		t.Fatalf("want load-oblivious governor rejection, got %v", err)
	}
}

func TestHashIsCanonical(t *testing.T) {
	spec := parseTestSpec(t)
	h1, err := spec.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	// Reformatting must not move the hash.
	compact := strings.NewReplacer("\n", "", "  ", "").Replace(specJSON)
	spec2, err := Parse([]byte(compact), "spec.json")
	if err != nil {
		t.Fatalf("Parse compact: %v", err)
	}
	if h2, _ := spec2.Hash(); h2 != h1 {
		t.Errorf("hash moved under reformatting: %s vs %s", h1, h2)
	}
	// A semantic edit must move it.
	spec2.Campaigns[0].Seed++
	if h3, _ := spec2.Hash(); h3 == h1 {
		t.Errorf("hash ignored a seed change")
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	base := parseTestSpec(t)
	plans, err := BuildPlans(base)
	if err != nil {
		t.Fatalf("BuildPlans: %v", err)
	}
	keys := map[string]string{}
	for _, p := range plans {
		if prev, ok := keys[p.Key]; ok {
			t.Fatalf("campaigns %s and %s share a key", prev, p.Campaign.Name)
		}
		keys[p.Key] = p.Campaign.Name
	}

	// Changing the seed changes the design and the key.
	edited := parseTestSpec(t)
	edited.Campaigns[0].Seed = 8
	editedPlans, err := BuildPlans(edited)
	if err != nil {
		t.Fatalf("BuildPlans edited: %v", err)
	}
	if editedPlans[0].Key == plans[0].Key {
		t.Errorf("seed change did not move campaign key")
	}
	for i := 1; i < 3; i++ {
		if editedPlans[i].Key != plans[i].Key {
			t.Errorf("campaign %s key moved without an edit", edited.Campaigns[i].Name)
		}
	}

	// Changing only the output paths must NOT move the cache key (results
	// are identical wherever they are written) but must move the spec hash.
	moved := parseTestSpec(t)
	moved.Campaigns[0].Out = "elsewhere.csv"
	movedPlans, err := BuildPlans(moved)
	if err != nil {
		t.Fatalf("BuildPlans moved: %v", err)
	}
	if movedPlans[0].Key != plans[0].Key {
		t.Errorf("output path moved the cache key")
	}
	h1, _ := base.Hash()
	h2, _ := moved.Hash()
	if h1 == h2 {
		t.Errorf("output path did not move the spec hash")
	}
}
