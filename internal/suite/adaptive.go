package suite

import (
	"context"
	"fmt"
	"runtime"

	"opaquebench/internal/adapt"
	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/meta"
	"opaquebench/internal/runner"
)

// Adaptive campaigns close the plan→measure→analyze loop inside one suite
// run: the engine config's design seeds round 1, and internal/adapt derives
// each subsequent round from the records so far — extra replicates where
// bootstrap CIs are widest, refined grid levels inside detected breakpoint
// brackets.
//
// Caching is per round and purely content-addressed: a round's key is the
// ordinary campaign key over (engine, canonical config, that round's
// materialized design CSV, seed, module version). No stored schedule is
// needed — because planning is a deterministic function of the cached
// records, a warm run replays round 1, re-derives the identical round-2
// design, finds it cached too, and so on down the chain. The round index
// deliberately does not contribute to the key: records are a pure function
// of (engine, config, design, seed), so identical content means identical
// records wherever it appears.
//
// All rounds stream through one runner.RoundSink into the campaign's
// sinks: sequence numbers re-base past earlier rounds and every record
// carries a "round" extra, so the multi-round raw stream stays a single
// well-formed record stream.

// roundExec runs the adapt loop for one campaign plan: each round is
// replayed from the cache when its key is present, executed through the
// parallel runner (and stored) otherwise. rs may be nil (plan mode: no
// output sinks). beforeCold, when non-nil, runs once before the first
// cold round — the suite uses it to acquire the campaign's worker
// allotment lazily, so a fully warm campaign never consumes the budget.
// The returned verdicts and environment describe what happened per round;
// env is the first round's captured environment.
func roundExec(ctx context.Context, suiteName string, p Plan, workers int, cache *Cache, rs *runner.RoundSink, beforeCold func() error, progress func(done, total int)) (*adapt.Outcome, []RoundVerdict, *meta.Environment, error) {
	version := ModuleVersion()
	var verdicts []RoundVerdict
	var env *meta.Environment
	// prevKey chains each round to the one it was planned from: round N's
	// entry records round N-1's key as its Parent, the provenance link the
	// store's Chain query walks.
	prevKey := ""
	exec := func(round int, d *doe.Design) ([]core.RawRecord, error) {
		if rs != nil && round > rs.Round() {
			rs.NextRound()
		}
		key, err := cacheKey(p.Campaign.Engine, p.canon, d, p.Campaign.Seed, version)
		if err != nil {
			return nil, err
		}
		parent := prevKey
		if cache != nil && cache.Lookup(key) {
			entry, err := cache.Load(key)
			if err == nil && len(entry.Records) == d.Size() {
				if rs != nil {
					if err := entry.Replay(rs); err != nil {
						return nil, err
					}
				}
				if entry.Round != round || entry.Parent != parent {
					// The same content can enter the cache under another
					// round position (typically a static run of the seed
					// design, stored with round 0). Records are identical
					// by content-addressing, but the round index and the
					// parent link are what let the comparator reassemble
					// the chain — refresh them in place.
					entry.Round = round
					entry.Parent = parent
					if err := cache.Store(key, entry); err != nil {
						return nil, err
					}
				}
				if env == nil {
					env = entry.Env
				}
				verdicts = append(verdicts, RoundVerdict{Round: round, Key: key, Hit: true, Records: len(entry.Records)})
				prevKey = key
				return entry.records(), nil
			}
			// A torn or stale entry must not kill the study: fall through
			// to a cold round, which overwrites it.
		}
		if beforeCold != nil {
			if err := beforeCold(); err != nil {
				return nil, err
			}
			beforeCold = nil
		}
		var sinks []runner.RecordSink
		if rs != nil {
			sinks = []runner.RecordSink{rs}
		}
		run, err := runner.Run(ctx, d, p.Factory, runner.Config{Workers: workers, Sinks: sinks, Progress: progress})
		if err != nil {
			return nil, err
		}
		if env == nil {
			env = run.Env
		}
		if cache != nil {
			if err := cache.Store(key, &Entry{
				Suite: suiteName, Campaign: p.Campaign.Name, Engine: p.Campaign.Engine,
				Round: round, Parent: parent, Seed: p.Campaign.Seed, Env: run.Env, Records: toCached(run.Records),
			}); err != nil {
				return nil, err
			}
		}
		verdicts = append(verdicts, RoundVerdict{Round: round, Key: key, Trials: len(run.Records), Records: len(run.Records)})
		prevKey = key
		return run.Records, nil
	}
	outcome, err := adapt.Run(*p.Adaptive, p.Refiner, p.Design, exec)
	if err != nil {
		return nil, verdicts, env, err
	}
	return outcome, verdicts, env, nil
}

// runAdaptive executes one adaptive campaign inside a suite run, streaming
// every round into the campaign's sinks and filling cr with the per-round
// verdicts. beforeCold is forwarded to roundExec (lazy worker
// acquisition).
func runAdaptive(ctx context.Context, suiteName string, p Plan, workers int, cache *Cache, cr *CampaignResult, specHash, baseDir string, beforeCold func() error, progress func(done, total int), logf func(string, ...any)) error {
	sinks, closers, err := openSinks(p.Campaign, baseDir)
	if err != nil {
		return err
	}
	defer closeAll(closers)
	rs := runner.NewRoundSink(sinks...)
	logf("suite: %s: adaptive, %d seed trials on %d workers (budget %d trials, %d rounds max)",
		p.Campaign.Name, p.Design.Size(), workers, p.Adaptive.Budget, p.Adaptive.Rounds)
	outcome, verdicts, env, err := roundExec(ctx, suiteName, p, workers, cache, rs, beforeCold, progress)
	cr.Rounds = verdicts
	for _, rv := range verdicts {
		cr.Trials += rv.Trials
		cr.Records += rv.Records
	}
	if err != nil {
		return err
	}
	cr.Stop = outcome.Stop
	cr.Hit = true
	for _, rv := range verdicts {
		if !rv.Hit {
			cr.Hit = false
		}
	}
	logf("suite: %s: %s — %d rounds, %d records (%d executed), stop: %s",
		p.Campaign.Name, cr.Verdict(), len(verdicts), cr.Records, cr.Trials, outcome.Stop)
	if env == nil {
		env = meta.New()
	}
	env = env.Clone()
	env.Setf("adapt/rounds", "%d", len(outcome.Rounds))
	env.Set("adapt/stop", outcome.Stop)
	env.Setf("adapt/trials", "%d", outcome.TotalTrials)
	env.Setf("adapt/budget", "%d", outcome.Config.Budget)
	env.Set("adapt/factor", outcome.Config.Factor)
	return writeCampaignEnv(p, env, cr.Verdict(), specHash, baseDir)
}

// CampaignSchedule is one campaign's resolved round-by-round schedule, as
// computed by PlanSchedule.
type CampaignSchedule struct {
	// Name and Engine identify the campaign.
	Name   string
	Engine string
	// Adaptive reports whether the campaign carries an adaptive stanza.
	Adaptive bool
	// Key is the campaign's (seed round's) cache key.
	Key string
	// Hit is the seed round's (static: the campaign's) cache verdict.
	Hit bool
	// Trials is the total number of trials the schedule measures.
	Trials int
	// Rounds holds the per-round outcomes (adaptive campaigns only).
	Rounds []RoundVerdict
	// Outcome is the full planner outcome (adaptive campaigns only).
	Outcome *adapt.Outcome
}

// PlanSchedule materializes the suite's round-by-round schedule without
// touching any output sink. Static campaigns only report their design size
// and cache verdict. Adaptive campaigns must execute to plan — each round's
// design depends on the previous rounds' records — so their rounds are
// replayed from the cache when present and executed (and stored) when not:
// planning a cold adaptive suite warms its cache, and re-planning a warm
// one executes nothing.
func PlanSchedule(ctx context.Context, spec *Spec, opts Options) ([]CampaignSchedule, error) {
	plans, err := BuildPlans(spec)
	if err != nil {
		return nil, err
	}
	cache := opts.Cache
	if cache == nil && opts.CacheDir != "" {
		if cache, err = OpenCache(opts.CacheDir); err != nil {
			return nil, err
		}
	}
	budget := opts.Workers
	if budget < 1 {
		budget = spec.Workers
	}
	if budget < 1 {
		budget = runtime.GOMAXPROCS(0)
	}
	out := make([]CampaignSchedule, 0, len(plans))
	for _, p := range plans {
		cs := CampaignSchedule{
			Name: p.Campaign.Name, Engine: p.Campaign.Engine,
			Key: p.Key, Hit: cache != nil && cache.Lookup(p.Key),
		}
		if p.Adaptive == nil {
			cs.Trials = p.Design.Size()
			out = append(out, cs)
			continue
		}
		cs.Adaptive = true
		workers := p.Campaign.Workers
		if workers < 1 {
			workers = 1
		}
		if workers > budget {
			workers = budget
		}
		outcome, verdicts, _, err := roundExec(ctx, spec.Name, p, workers, cache, nil, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("suite: campaign %q: %w", p.Campaign.Name, err)
		}
		cs.Rounds = verdicts
		cs.Outcome = outcome
		cs.Trials = outcome.TotalTrials
		out = append(out, cs)
	}
	return out, nil
}
