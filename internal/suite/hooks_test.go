package suite

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestCampaignErrorCarriesIdentity: a failing campaign surfaces as a
// CampaignError whose structured fields identify the campaign, its cache
// key and the spec hash — no string parsing — and whose Unwrap chain
// reaches the underlying cause.
func TestCampaignErrorCarriesIdentity(t *testing.T) {
	spec := parseTestSpec(t)
	baseDir := t.TempDir()
	// A directory where the first campaign's CSV should go makes its sink
	// open fail while the other campaigns stay healthy.
	if err := os.MkdirAll(filepath.Join(baseDir, spec.Campaigns[0].Out), 0o777); err != nil {
		t.Fatal(err)
	}
	plans, err := BuildPlans(spec)
	if err != nil {
		t.Fatalf("BuildPlans: %v", err)
	}

	res, err := Run(context.Background(), spec, Options{BaseDir: baseDir})
	if err == nil {
		t.Fatal("run with an unopenable sink succeeded")
	}
	var ce *CampaignError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T does not unwrap to *CampaignError: %v", err, err)
	}
	if ce.Campaign != spec.Campaigns[0].Name || ce.Engine != spec.Campaigns[0].Engine {
		t.Errorf("CampaignError identifies %q/%q, want %q/%q",
			ce.Campaign, ce.Engine, spec.Campaigns[0].Name, spec.Campaigns[0].Engine)
	}
	if ce.Key != plans[0].Key {
		t.Errorf("CampaignError key %q, want %q", ce.Key, plans[0].Key)
	}
	if ce.SpecHash != res.SpecHash || ce.SpecHash == "" {
		t.Errorf("CampaignError spec hash %q, want %q", ce.SpecHash, res.SpecHash)
	}
	var pe *fs.PathError
	if !errors.As(err, &pe) {
		t.Errorf("CampaignError does not unwrap to the underlying *fs.PathError: %v", ce.Err)
	}
	// The campaign result mirrors the same error.
	var crErr *CampaignError
	if !errors.As(res.Campaigns[0].Err, &crErr) || crErr.Campaign != ce.Campaign {
		t.Errorf("CampaignResult.Err %v does not carry the CampaignError", res.Campaigns[0].Err)
	}
}

// TestCampaignErrorWrapsCancellation: a canceled run reports per-campaign
// CampaignErrors through which errors.Is still sees context.Canceled.
func TestCampaignErrorWrapsCancellation(t *testing.T) {
	spec := parseTestSpec(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, spec, Options{BaseDir: t.TempDir()})
	if err == nil {
		t.Fatal("pre-canceled run succeeded")
	}
	var ce *CampaignError
	if !errors.As(err, &ce) {
		t.Fatalf("canceled run error %T is not a *CampaignError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) is false through the CampaignError: %v", err)
	}
}

// TestSharedBudgetCapsConcurrentRuns: two suite runs sharing one Budget
// never hold more workers than its capacity between them, and both report
// the shared capacity as their resolved budget.
func TestSharedBudgetCapsConcurrentRuns(t *testing.T) {
	shared := NewBudget(2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	budgets := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := parseTestSpec(t)
			for j := range spec.Campaigns {
				spec.Campaigns[j].Workers = 4 // deliberately over the shared cap
			}
			res, err := Run(context.Background(), spec, Options{BaseDir: t.TempDir(), Budget: shared})
			errs[i] = err
			if res != nil {
				budgets[i] = res.Budget
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if budgets[i] != 2 {
			t.Errorf("run %d resolved budget %d, want the shared cap 2", i, budgets[i])
		}
	}
	if peak := shared.Peak(); peak < 1 || peak > 2 {
		t.Errorf("shared budget peak %d outside [1, 2]", peak)
	}
	if inUse := shared.InUse(); inUse != 0 {
		t.Errorf("budget leaks %d slots after both runs finished", inUse)
	}
}

// TestProgressAndOnCampaignHooks: the per-campaign hooks fire — progress for
// every executed campaign up to its design size, OnCampaign exactly once per
// campaign with the final verdict — and a warm replay reports no trial
// progress but still completes every campaign.
func TestProgressAndOnCampaignHooks(t *testing.T) {
	spec := parseTestSpec(t)
	cacheDir := t.TempDir()

	var mu sync.Mutex
	final := map[string]ProgressSnapshot{}
	completed := map[string]CampaignResult{}
	opts := Options{
		CacheDir: cacheDir,
		BaseDir:  t.TempDir(),
		Progress: func(campaign string, done, total int) {
			mu.Lock()
			final[campaign] = ProgressSnapshot{Done: done, Total: total}
			mu.Unlock()
		},
		OnCampaign: func(cr CampaignResult) {
			mu.Lock()
			if _, dup := completed[cr.Name]; dup {
				t.Errorf("OnCampaign fired twice for %q", cr.Name)
			}
			completed[cr.Name] = cr
			mu.Unlock()
		},
	}
	if _, err := Run(context.Background(), spec, opts); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	plans, err := BuildPlans(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		got, ok := final[p.Campaign.Name]
		if !ok {
			t.Errorf("no progress reported for %q", p.Campaign.Name)
			continue
		}
		if got.Done != p.Design.Size() || got.Total != p.Design.Size() {
			t.Errorf("%q final progress %d/%d, want %d/%d",
				p.Campaign.Name, got.Done, got.Total, p.Design.Size(), p.Design.Size())
		}
		if cr, ok := completed[p.Campaign.Name]; !ok || cr.Hit || cr.Trials == 0 {
			t.Errorf("%q OnCampaign result %+v, want a cold miss with trials", p.Campaign.Name, cr)
		}
	}

	// Warm: replays report completion without trial progress.
	mu.Lock()
	final = map[string]ProgressSnapshot{}
	completed = map[string]CampaignResult{}
	mu.Unlock()
	opts.BaseDir = t.TempDir()
	if _, err := Run(context.Background(), spec, opts); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if len(final) != 0 {
		t.Errorf("warm replay reported trial progress: %v", final)
	}
	if len(completed) != len(spec.Campaigns) {
		t.Errorf("warm OnCampaign fired for %d campaigns, want %d", len(completed), len(spec.Campaigns))
	}
	for name, cr := range completed {
		if !cr.Hit || cr.Trials != 0 {
			t.Errorf("warm %q: verdict %s with %d trials, want hit/0", name, cr.Verdict(), cr.Trials)
		}
	}
}

// ProgressSnapshot is a test-local (done, total) pair.
type ProgressSnapshot struct{ Done, Total int }
