package suite

import (
	"encoding/json"
	"fmt"
	"os"

	"opaquebench/internal/store"
)

// The store backend keeps the cache contract — identical keys, identical
// entry JSON bytes, last write wins — and adds what a directory of files
// cannot: queryable per-entry metadata (suite, campaign, engine, round,
// environment, time of run), named pinned runs with refcount GC, provenance
// chains across adaptive rounds, and a crash-recovery proof per entry (each
// is one checksummed frame in the append-only log). Suite runs are
// byte-identical on either backend because both serve the same JSON payload
// through the same Entry.Replay path.

// OpenCacheStore opens (creating if needed) a store-backed cache at path —
// a single log file, not a directory.
func OpenCacheStore(path string) (*Cache, error) {
	st, err := store.Open(path, store.Options{})
	if err != nil {
		return nil, fmt.Errorf("suite: open cache store: %w", err)
	}
	return &Cache{st: st}, nil
}

// ReadCacheStore opens an existing store-backed cache read-only: no file
// creation, no torn-tail repair, and every Store refuses.
func ReadCacheStore(path string) (*Cache, error) {
	st, err := store.Open(path, store.Options{ReadOnly: true})
	if err != nil {
		return nil, fmt.Errorf("suite: read cache store: %w", err)
	}
	return &Cache{st: st}, nil
}

// NewStoreCache wraps an already-open store as a cache. The caller keeps
// ownership of the store's lifetime (Close on the cache closes it).
func NewStoreCache(st *store.Store) *Cache {
	return &Cache{st: st}
}

// Backing exposes the underlying store of a store-backed cache, nil for a
// directory cache — the hook the CLI's query/pin/gc surface and the
// comparator's run loader use.
func (c *Cache) Backing() *store.Store { return c.st }

// entryMeta derives the store's queryable metadata from a cache entry. The
// environment's capture time is the entry's time of run; its descriptor
// fields become the store's flat Env map.
func entryMeta(e *Entry) store.Meta {
	m := store.Meta{
		Suite:    e.Suite,
		Campaign: e.Campaign,
		Engine:   e.Engine,
		Round:    e.Round,
		Seed:     e.Seed,
		Parent:   e.Parent,
	}
	if e.Env != nil {
		m.RanAt = e.Env.CapturedAt
		if len(e.Env.Fields) > 0 {
			m.Env = make(map[string]string, len(e.Env.Fields))
			for k, v := range e.Env.Fields {
				m.Env[k] = v
			}
		}
	}
	return m
}

// ImportDirToStore copies every entry of a legacy cache directory into the
// store, preserving the exact payload bytes (the on-disk file is stored
// verbatim, so a replay through the store is byte-identical to one through
// the directory) and deriving the queryable metadata from the decoded
// entry. Existing keys are overwritten — last write wins, matching both
// backends' semantics. It returns the imported keys in directory (sorted
// key) order.
func ImportDirToStore(dir string, st *store.Store) ([]string, error) {
	src, err := ReadCache(dir)
	if err != nil {
		return nil, err
	}
	if src.st != nil {
		return nil, fmt.Errorf("suite: import: %s is a store log, not a cache directory", dir)
	}
	keys, err := src.Keys()
	if err != nil {
		return nil, err
	}
	for _, key := range keys {
		data, err := os.ReadFile(src.path(key))
		if err != nil {
			return nil, fmt.Errorf("suite: import %s: %w", key, err)
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil {
			return nil, fmt.Errorf("suite: import %s: %w", key, err)
		}
		if err := st.Put(key, data, entryMeta(&e)); err != nil {
			return nil, fmt.Errorf("suite: import %s: %w", key, err)
		}
	}
	return keys, nil
}
