package suite

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
)

// adaptiveSpecJSON mirrors the checked-in examples/suite/adaptive.json: a
// membench stride-16 sweep over a coarse size ladder straddling the i7's
// 32 KB L1 — the planted working-set breakpoint the adaptive planner must
// localize.
const adaptiveSpecJSON = `{
  "suite": "adaptive-test",
  "workers": 4,
  "campaigns": [
    {
      "name": "mem-zoom",
      "engine": "membench",
      "seed": 20170529,
      "workers": 4,
      "config": {
        "machine": "i7",
        "governor": "performance",
        "sizes": [4096, 16384, 65536, 262144, 1048576, 4194304],
        "strides": [16],
        "reps": 6
      },
      "adaptive": {
        "rounds": 2,
        "budget": 150,
        "target_rel_ci": 0.02,
        "top_points": 3,
        "extra_reps": 4,
        "zoom_per_break": 4,
        "min_seg": 10
      },
      "out": "out/mem-zoom.csv",
      "jsonl": "out/mem-zoom.jsonl"
    }
  ]
}`

const plantedL1 = 32 << 10

func parseAdaptiveSpec(t *testing.T) *Spec {
	t.Helper()
	spec, err := Parse([]byte(adaptiveSpecJSON), "adaptive-test.json")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return spec
}

// TestAdaptiveReplayByteIdentical is the acceptance fixture's determinism
// half: the full multi-round plan runs cold at workers 1 and replays from
// the suite cache at workers 1, 4 and 8 — every sink file byte-identical,
// every round a cache hit, zero trials executed warm.
func TestAdaptiveReplayByteIdentical(t *testing.T) {
	cacheDir := t.TempDir()
	refDir := t.TempDir()
	spec := parseAdaptiveSpec(t)
	cold, err := Run(context.Background(), spec, Options{
		CacheDir: cacheDir, BaseDir: refDir, Workers: 1,
	})
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	cr := cold.Campaigns[0]
	if cr.Hit || cr.Trials == 0 || len(cr.Rounds) != 2 {
		t.Fatalf("cold: verdict %s, %d trials, %d rounds", cr.Verdict(), cr.Trials, len(cr.Rounds))
	}
	if cr.Trials > 150 {
		t.Fatalf("cold run executed %d trials, budget 150", cr.Trials)
	}

	for _, workers := range []int{1, 4, 8} {
		warmDir := t.TempDir()
		warm, err := Run(context.Background(), parseAdaptiveSpec(t), Options{
			CacheDir: cacheDir, BaseDir: warmDir, Workers: workers,
		})
		if err != nil {
			t.Fatalf("warm run (workers %d): %v", workers, err)
		}
		wr := warm.Campaigns[0]
		if !wr.Hit || wr.Trials != 0 {
			t.Errorf("workers %d: warm verdict %s, %d trials executed", workers, wr.Verdict(), wr.Trials)
		}
		for _, rv := range wr.Rounds {
			if !rv.Hit {
				t.Errorf("workers %d: round %d missed the cache", workers, rv.Round)
			}
		}
		for _, name := range []string{"out/mem-zoom.csv", "out/mem-zoom.jsonl"} {
			want := readFile(t, filepath.Join(refDir, name))
			got := readFile(t, filepath.Join(warmDir, name))
			if string(want) != string(got) {
				t.Errorf("workers %d: %s differs from the cold run (%d vs %d bytes)", workers, name, len(got), len(want))
			}
		}
	}
}

// TestAdaptiveScheduleConverges is the acceptance fixture's localization
// half, at the suite level: PlanSchedule materializes the round-by-round
// schedule, the round-1 analysis brackets the planted L1 breakpoint, and
// every round-2 zoom level falls strictly inside a round-1 bracket — the
// refined grid is strictly inside the coarse one. A second PlanSchedule
// over the same cache replays with every round a hit.
func TestAdaptiveScheduleConverges(t *testing.T) {
	cacheDir := t.TempDir()
	scheds, err := PlanSchedule(context.Background(), parseAdaptiveSpec(t), Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatalf("PlanSchedule: %v", err)
	}
	cs := scheds[0]
	if !cs.Adaptive || cs.Outcome == nil || len(cs.Outcome.Rounds) != 2 {
		t.Fatalf("schedule: adaptive=%v rounds=%d", cs.Adaptive, len(cs.Rounds))
	}
	if cs.Trials > 150 {
		t.Fatalf("schedule spends %d trials, budget 150", cs.Trials)
	}

	round1 := cs.Outcome.Rounds[0].Analysis
	foundL1 := false
	for _, br := range round1.Brackets {
		if br.Contains(plantedL1) {
			foundL1 = true
		}
	}
	if !foundL1 {
		t.Fatalf("round 1 did not bracket the planted L1 %d: %+v", plantedL1, round1.Brackets)
	}
	plan := cs.Outcome.Rounds[1].Plan
	if plan == nil || len(plan.Levels) == 0 {
		t.Fatalf("round 2 has no zoom levels")
	}
	for _, level := range plan.Levels {
		inside := false
		for _, br := range plan.Brackets {
			if br.Contains(float64(level)) {
				inside = true
			}
		}
		if !inside {
			t.Errorf("round-2 level %d outside every round-1 bracket %+v", level, plan.Brackets)
		}
	}

	warm, err := PlanSchedule(context.Background(), parseAdaptiveSpec(t), Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatalf("warm PlanSchedule: %v", err)
	}
	for _, rv := range warm[0].Rounds {
		if !rv.Hit || rv.Trials != 0 {
			t.Errorf("warm plan round %d: hit=%v trials=%d", rv.Round, rv.Hit, rv.Trials)
		}
	}
	if warm[0].Outcome.Schedule() != cs.Outcome.Schedule() {
		t.Errorf("warm schedule differs from cold:\n--- warm ---\n%s--- cold ---\n%s",
			warm[0].Outcome.Schedule(), cs.Outcome.Schedule())
	}
}

// TestAdaptiveStanzaInSpecHash: the adaptive stanza is part of the study's
// identity — editing it must change the canonical spec hash.
func TestAdaptiveStanzaInSpecHash(t *testing.T) {
	a := parseAdaptiveSpec(t)
	b, err := Parse([]byte(strings.Replace(adaptiveSpecJSON, `"budget": 150`, `"budget": 200`, 1)), "b.json")
	if err != nil {
		t.Fatalf("Parse b: %v", err)
	}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha == hb {
		t.Fatal("editing the adaptive stanza did not change the spec hash")
	}
}

// TestAdaptiveSpecValidation: malformed adaptive stanzas fail at parse
// time with the campaign's position, and a budget that cannot cover the
// seed design fails at plan time.
func TestAdaptiveSpecValidation(t *testing.T) {
	bad := strings.Replace(adaptiveSpecJSON, `"rounds": 2`, `"rounds": -1`, 1)
	if _, err := Parse([]byte(bad), "bad.json"); err == nil || !strings.Contains(err.Error(), "rounds") {
		t.Errorf("negative rounds: err = %v", err)
	}
	unknown := strings.Replace(adaptiveSpecJSON, `"rounds": 2`, `"rnds": 2`, 1)
	if _, err := Parse([]byte(unknown), "bad.json"); err == nil {
		t.Error("unknown adaptive key accepted")
	}
	tiny := strings.Replace(adaptiveSpecJSON, `"budget": 150`, `"budget": 10`, 1)
	spec, err := Parse([]byte(tiny), "tiny.json")
	if err != nil {
		t.Fatalf("Parse tiny: %v", err)
	}
	if _, err := BuildPlans(spec); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("undersized budget: err = %v", err)
	}
}

// TestAdaptiveDryRunTouchesNothing: -dry-run on an adaptive suite reports
// the seed round's verdict and creates no output files.
func TestAdaptiveDryRunTouchesNothing(t *testing.T) {
	baseDir := t.TempDir()
	res, err := Run(context.Background(), parseAdaptiveSpec(t), Options{
		CacheDir: filepath.Join(baseDir, "cache"), BaseDir: baseDir, DryRun: true,
	})
	if err != nil {
		t.Fatalf("dry run: %v", err)
	}
	if res.Campaigns[0].Trials != 0 {
		t.Errorf("dry run executed %d trials", res.Campaigns[0].Trials)
	}
	if _, err := filepath.Glob(filepath.Join(baseDir, "out", "*")); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(baseDir, "*"))
	for _, m := range matches {
		t.Errorf("dry run created %s", m)
	}
}
