// Package suite is the declarative campaign-suite orchestrator: it turns a
// JSON spec naming many campaigns — engine, engine config, design
// parameters, seed, workers, output sinks — into one reproducible study run
// through the parallel runner, concurrently across campaigns under a
// global worker budget.
//
// The package adds one guarantee on top of the runner's (see
// internal/runner): a content-addressed result cache. Every campaign has a
// canonical key over (engine, canonical config, materialized design CSV,
// seed, module version); a key already present in the cache skips
// execution entirely and replays the cached records into the campaign's
// sinks byte-identically to a cold run. Re-running a suite after editing
// one campaign therefore re-executes exactly that campaign — the property
// that makes a many-campaign study cheap to iterate on. Cache replay
// inherits the runner's determinism: because trial-indexed engines make
// output a pure function of (design, seed, config), replayed bytes and
// cold-run bytes cannot differ.
//
// History-dependent configurations (load-reactive governors, pool/arena
// allocation, unpinned scheduling, collectives) are the subject of the
// pitfall experiments and cannot be trial-indexed; the engine factories
// reject them, so suites stay within the deterministic subset and such
// campaigns keep using the engine CLIs' sequential mode.
//
// Every suite run records the spec hash and the per-campaign cache
// verdicts in its environment metadata (internal/meta), so a study's
// provenance — which campaigns were replayed, from what identity — is part
// of the artifact record. cmd/suite is the command-line face.
package suite

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"opaquebench/internal/adapt"
	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/engine"
	"opaquebench/internal/meta"
	"opaquebench/internal/runner"
)

// Plan is one campaign resolved against its engine: the materialized
// design, the engine factory, and the content-addressed cache key. For
// adaptive campaigns, Design is the seed round's design, Key the seed
// round's cache key, and Adaptive/Refiner carry the normalized planner
// configuration and the engine's grid-refinement hook.
type Plan struct {
	Campaign Campaign
	Design   *doe.Design
	Factory  core.EngineFactory
	Key      string
	// Adaptive is the normalized planner configuration; nil for static
	// campaigns.
	Adaptive *adapt.Config
	// Refiner is the engine's refinement hook; nil for static campaigns.
	Refiner adapt.Refiner

	// canon is the canonical engine config, kept for per-round cache keys.
	canon []byte
}

// BuildPlans resolves every campaign of the spec: engine configs are
// decoded, designs materialized, factories probed (so a configuration the
// engine rejects — e.g. a load-reactive governor, which cannot run
// trial-indexed — fails here, before any output file is touched), and
// cache keys computed against the running module version.
func BuildPlans(spec *Spec) ([]Plan, error) {
	version := ModuleVersion()
	plans := make([]Plan, 0, len(spec.Campaigns))
	names := map[string]bool{}
	paths := map[string]string{}
	for i := range spec.Campaigns {
		c := spec.Campaigns[i]
		if err := c.validate(); err != nil {
			return nil, c.at(fmt.Errorf("suite: %w", err))
		}
		// Re-checked here (Parse also checks) so hand-constructed specs
		// cannot smuggle in colliding names or racing sink paths.
		if names[c.Name] {
			return nil, c.at(fmt.Errorf("suite: campaign %q declared twice", c.Name))
		}
		names[c.Name] = true
		if err := claimPaths(paths, &c); err != nil {
			return nil, c.at(fmt.Errorf("suite: %w", err))
		}
		def, _ := engine.Lookup(c.Engine) // validate() vouched for the name
		decoded, err := def.Decode(c.Config)
		if err != nil {
			return nil, c.at(fmt.Errorf("suite: campaign %q: %s config: %w", c.Name, c.Engine, err))
		}
		canon, err := engine.Canonical(decoded)
		if err != nil {
			return nil, c.at(fmt.Errorf("suite: campaign %q: %w", c.Name, err))
		}
		factory, design, err := def.Build(decoded, c.Seed)
		if err != nil {
			return nil, c.at(fmt.Errorf("suite: campaign %q: %w", c.Name, err))
		}
		if _, err := factory.NewEngine(); err != nil {
			return nil, c.at(fmt.Errorf("suite: campaign %q: %w", c.Name, err))
		}
		key, err := cacheKey(c.Engine, canon, design, c.Seed, version)
		if err != nil {
			return nil, c.at(fmt.Errorf("suite: campaign %q: %w", c.Name, err))
		}
		p := Plan{Campaign: c, Design: design, Factory: factory, Key: key, canon: canon}
		if c.Adaptive != nil {
			// A decoded engine spec is the engine's refinement hook.
			ref := adapt.Refiner(decoded)
			acfg, err := c.Adaptive.config(c.Seed).Normalize(ref, design)
			if err != nil {
				return nil, c.at(fmt.Errorf("suite: campaign %q: %w", c.Name, err))
			}
			p.Adaptive = &acfg
			p.Refiner = ref
		}
		plans = append(plans, p)
	}
	return plans, nil
}

// Options tunes a suite run.
type Options struct {
	// Cache, when non-nil, is the content-addressed cache the run uses —
	// directory-backed or store-backed, the run cannot tell the
	// difference. It takes precedence over CacheDir; the caller keeps
	// ownership (the run never closes it), which is how many concurrent
	// runs share one embedded store.
	Cache *Cache
	// CacheDir is the content-addressed cache directory; empty (with no
	// Cache either) disables caching (every campaign runs cold, nothing
	// is stored).
	CacheDir string
	// Workers overrides the spec's global worker budget when > 0. A
	// resolved budget < 1 means runtime.GOMAXPROCS(0).
	Workers int
	// BaseDir anchors the campaigns' relative output paths; empty means
	// the current directory.
	BaseDir string
	// DryRun plans and reports cache verdicts without executing trials or
	// touching any output file.
	DryRun bool
	// Log, when non-nil, receives one progress line per campaign.
	Log io.Writer
	// Budget, when non-nil, replaces the run's own worker semaphore with a
	// shared one, so many concurrent Run calls never exceed one global
	// worker budget between them. It takes precedence over Workers and the
	// spec's budget; the resolved budget is Budget.Cap().
	Budget *Budget
	// Progress, when non-nil, receives per-trial progress for every
	// executing campaign (replayed campaigns report no trial progress).
	// It is called from each campaign's collector goroutine, concurrently
	// across campaigns, so it must be safe for concurrent use and — like
	// runner.Config.Progress, whose contract it inherits — must never
	// block; bridge slow consumers through runner.ProgressChan.
	Progress func(campaign string, done, total int)
	// OnCampaign, when non-nil, is called once per campaign as its outcome
	// is final — cache verdict, trial counts and error included. Calls
	// arrive from the campaigns' own goroutines, concurrently; the hook
	// must be safe for concurrent use and should not block.
	OnCampaign func(CampaignResult)
}

// CampaignResult reports one campaign's outcome.
type CampaignResult struct {
	// Name and Engine identify the campaign.
	Name   string
	Engine string
	// Key is the content-addressed cache key (the seed round's key for
	// adaptive campaigns).
	Key string
	// Hit reports whether the campaign was replayed from the cache (every
	// round, for adaptive campaigns).
	Hit bool
	// Trials is the number of trials actually executed: the design size on
	// a cold run, 0 on a cache hit (and on a dry run).
	Trials int
	// Records is the number of records delivered to the sinks.
	Records int
	// Rounds reports the per-round outcomes of an adaptive campaign; nil
	// for static campaigns.
	Rounds []RoundVerdict
	// Stop is the adaptive stop reason; empty for static campaigns.
	Stop string
	// Err is the campaign's failure, if any.
	Err error
}

// RoundVerdict reports one adaptive round's cache outcome.
type RoundVerdict struct {
	// Round is the 1-based round index.
	Round int
	// Key is the round's content-addressed cache key.
	Key string
	// Hit reports whether the round replayed from the cache.
	Hit bool
	// Trials is the number of trials executed (0 on a hit).
	Trials int
	// Records is the number of records the round contributed.
	Records int
}

// Verdict renders the cache outcome as "hit" or "miss".
func (r CampaignResult) Verdict() string {
	if r.Hit {
		return "hit"
	}
	return "miss"
}

// Result is the outcome of a whole suite run.
type Result struct {
	// SpecHash is the canonical spec hash.
	SpecHash string
	// Budget is the resolved global worker budget.
	Budget int
	// Campaigns holds per-campaign outcomes in spec order.
	Campaigns []CampaignResult
	// Env is the suite-level environment metadata: the spec hash, the
	// budget, and every campaign's cache key and verdict.
	Env *meta.Environment
}

// Run executes the suite: every campaign whose key is cached is replayed
// byte-identically into its sinks; the rest run through the parallel
// runner, concurrently across campaigns, with at most the budget's worth
// of workers in flight suite-wide. The Result reports per-campaign
// verdicts even when some campaigns fail; the returned error joins all
// campaign failures.
func Run(ctx context.Context, spec *Spec, opts Options) (*Result, error) {
	plans, err := BuildPlans(spec)
	if err != nil {
		return nil, err
	}
	specHash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	cache := opts.Cache
	if cache == nil && opts.CacheDir != "" {
		if opts.DryRun {
			// Lookup-only: a dry run must create nothing, and Lookup
			// against a directory that does not exist is simply all-miss.
			cache = &Cache{dir: opts.CacheDir}
		} else if cache, err = OpenCache(opts.CacheDir); err != nil {
			return nil, err
		}
	}
	budget := opts.Budget
	if budget == nil {
		n := opts.Workers
		if n < 1 {
			n = spec.Workers
		}
		budget = NewBudget(n)
	}

	res := &Result{SpecHash: specHash, Budget: budget.Cap(), Campaigns: make([]CampaignResult, len(plans))}
	var logMu sync.Mutex
	logf := func(format string, args ...any) {
		if opts.Log == nil {
			return
		}
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(opts.Log, format+"\n", args...)
	}

	if opts.DryRun {
		for i, p := range plans {
			cr := CampaignResult{Name: p.Campaign.Name, Engine: p.Campaign.Engine, Key: p.Key,
				Hit: cache != nil && cache.Lookup(p.Key)}
			res.Campaigns[i] = cr
			if opts.OnCampaign != nil {
				opts.OnCampaign(cr)
			}
			if p.Adaptive != nil {
				// Later rounds depend on the seed round's records, so a dry
				// run can only report the seed design; "suite plan" prints
				// the full schedule.
				logf("suite: %s: %s (adaptive, %d seed trials planned; see suite plan)", cr.Name, cr.Verdict(), p.Design.Size())
			} else {
				logf("suite: %s: %s (%d trials planned)", cr.Name, cr.Verdict(), p.Design.Size())
			}
		}
		res.Env = suiteEnv(spec, res)
		return res, nil
	}

	// The budget (shared or run-local) is the global worker cap. Campaigns
	// acquire their whole worker allotment at once — see Budget for the
	// no-deadlock argument.
	acquire := func(n int) error { return budget.Acquire(ctx, n) }
	release := budget.Release

	// campErr attaches the campaign's identity to a failure; the API layer
	// unwraps the fields instead of parsing the message.
	campErr := func(p Plan, err error) error {
		return &CampaignError{Campaign: p.Campaign.Name, Engine: p.Campaign.Engine,
			Key: p.Key, SpecHash: specHash, Err: err}
	}
	// progressFor narrows the suite-level progress hook to one campaign's
	// runner callback.
	progressFor := func(name string) func(done, total int) {
		if opts.Progress == nil {
			return nil
		}
		return func(done, total int) { opts.Progress(name, done, total) }
	}

	var wg sync.WaitGroup
	for i := range plans {
		p := plans[i]
		workers := p.Campaign.Workers
		if workers < 1 {
			workers = 1
		}
		if workers > budget.Cap() {
			workers = budget.Cap()
		}
		wg.Add(1)
		go func(i int, p Plan, workers int) {
			defer wg.Done()
			cr := CampaignResult{Name: p.Campaign.Name, Engine: p.Campaign.Engine, Key: p.Key}
			defer func() {
				res.Campaigns[i] = cr
				if opts.OnCampaign != nil {
					opts.OnCampaign(cr)
				}
			}()

			if p.Adaptive != nil {
				// Workers are acquired lazily, on the first round that
				// actually executes: a fully warm campaign replays from
				// the cache without consuming the budget, matching the
				// static path's replay-before-acquire behavior.
				acquired := false
				defer func() {
					if acquired {
						release(workers)
					}
				}()
				beforeCold := func() error {
					if err := acquire(workers); err != nil {
						return err
					}
					acquired = true
					return nil
				}
				if err := runAdaptive(ctx, spec.Name, p, workers, cache, &cr, specHash, opts.BaseDir, beforeCold, progressFor(p.Campaign.Name), logf); err != nil {
					cr.Err = campErr(p, err)
				}
				return
			}

			if cache != nil && cache.Lookup(p.Key) {
				entry, err := cache.Load(p.Key)
				if err == nil {
					if err = replay(entry, p, specHash, opts.BaseDir); err == nil {
						cr.Hit = true
						cr.Records = len(entry.Records)
						logf("suite: %s: hit — %d records replayed", cr.Name, cr.Records)
						return
					}
				}
				// A torn or stale entry must not kill the study: fall
				// through to a cold run, which overwrites it.
				logf("suite: %s: cache entry unusable (%v), running cold", cr.Name, err)
			}

			if err := acquire(workers); err != nil {
				cr.Err = campErr(p, err)
				return
			}
			defer release(workers)
			logf("suite: %s: miss — running %d trials on %d workers", cr.Name, p.Design.Size(), workers)
			run, err := execute(ctx, p, workers, specHash, opts.BaseDir, progressFor(p.Campaign.Name))
			if err != nil {
				cr.Err = campErr(p, err)
				return
			}
			cr.Trials = len(run.Records)
			cr.Records = len(run.Records)
			if cache != nil {
				if err := cache.Store(p.Key, &Entry{
					Suite: spec.Name, Campaign: p.Campaign.Name, Engine: p.Campaign.Engine,
					Seed: p.Campaign.Seed, Env: run.Env, Records: toCached(run.Records),
				}); err != nil {
					cr.Err = campErr(p, err)
				}
			}
		}(i, p, workers)
	}
	wg.Wait()

	var errs []error
	for _, cr := range res.Campaigns {
		if cr.Err != nil {
			errs = append(errs, cr.Err)
		}
	}
	res.Env = suiteEnv(spec, res)
	return res, errors.Join(errs...)
}

// suiteEnv builds the suite-level environment record: spec hash, budget,
// and per-campaign cache verdicts.
func suiteEnv(spec *Spec, res *Result) *meta.Environment {
	env := meta.New()
	env.Set("suite", spec.Name)
	env.Set("suite/spec_hash", res.SpecHash)
	env.Setf("suite/budget", "%d", res.Budget)
	env.Setf("suite/campaigns", "%d", len(res.Campaigns))
	for _, cr := range res.Campaigns {
		env.Set("suite/campaign/"+cr.Name+"/key", cr.Key)
		env.Set("suite/campaign/"+cr.Name+"/verdict", cr.Verdict())
		env.Setf("suite/campaign/"+cr.Name+"/trials", "%d", cr.Trials)
		if len(cr.Rounds) > 0 {
			env.Setf("suite/campaign/"+cr.Name+"/rounds", "%d", len(cr.Rounds))
			env.Set("suite/campaign/"+cr.Name+"/stop", cr.Stop)
			for _, rv := range cr.Rounds {
				prefix := fmt.Sprintf("suite/campaign/%s/round/%d/", cr.Name, rv.Round)
				env.Set(prefix+"key", rv.Key)
				verdict := "miss"
				if rv.Hit {
					verdict = "hit"
				}
				env.Set(prefix+"verdict", verdict)
				env.Setf(prefix+"trials", "%d", rv.Trials)
			}
		}
	}
	return env
}

// execute runs one campaign cold through the parallel runner, streaming
// into its sinks.
func execute(ctx context.Context, p Plan, workers int, specHash, baseDir string, progress func(done, total int)) (*core.Results, error) {
	sinks, closers, err := openSinks(p.Campaign, baseDir)
	if err != nil {
		return nil, err
	}
	defer closeAll(closers)
	run, err := runner.Run(ctx, p.Design, p.Factory, runner.Config{Workers: workers, Sinks: sinks, Progress: progress})
	if err != nil {
		return nil, err
	}
	if err := writeCampaignEnv(p, run.Env, "miss", specHash, baseDir); err != nil {
		return nil, err
	}
	return run, nil
}

// replay drains a cached entry into the campaign's sinks. The sinks see
// the identical record sequence a cold run streams, so the files come out
// byte-identical.
func replay(entry *Entry, p Plan, specHash, baseDir string) error {
	sinks, closers, err := openSinks(p.Campaign, baseDir)
	if err != nil {
		return err
	}
	defer closeAll(closers)
	if err := entry.Replay(sinks...); err != nil {
		return err
	}
	env := entry.Env
	if env == nil {
		env = meta.New()
	}
	return writeCampaignEnv(p, env, "hit", specHash, baseDir)
}

// openSinks opens the campaign's CSV/JSONL files (creating parent
// directories), reusing the runner's preservation guarantees. A campaign
// with no CSV path still gets a CSV sink draining to io.Discard, which
// keeps the record path uniform.
func openSinks(c Campaign, baseDir string) ([]runner.RecordSink, []io.Closer, error) {
	out := resolvePath(baseDir, c.Out)
	jsonl := resolvePath(baseDir, c.JSONL)
	for _, path := range []string{out, jsonl, resolvePath(baseDir, c.Env)} {
		if path == "" {
			continue
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			return nil, nil, err
		}
	}
	return runner.FileSinks(io.Discard, out, jsonl)
}

// writeCampaignEnv writes the campaign's environment JSON (when requested)
// annotated with the suite run's cache verdict. The cached original is
// cloned first so stored entries never accumulate verdicts.
func writeCampaignEnv(p Plan, env *meta.Environment, verdict, specHash, baseDir string) error {
	path := resolvePath(baseDir, p.Campaign.Env)
	if path == "" {
		return nil
	}
	env = env.Clone()
	env.Set("suite/cache", verdict)
	env.Set("suite/cache_key", p.Key)
	env.Set("suite/spec_hash", specHash)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := env.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func resolvePath(base, path string) string {
	if path == "" || base == "" || filepath.IsAbs(path) {
		return path
	}
	return filepath.Join(base, path)
}

func closeAll(closers []io.Closer) {
	for _, c := range closers {
		c.Close()
	}
}
