package suite

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzParseCanonicalFixedPoint fuzzes the suite spec parser with two
// invariants: no input may panic it, and canonicalization must be a fixed
// point — re-marshaling an accepted spec parses again, to a spec whose
// canonical form, validation outcome and hash are unchanged. The fixed
// point is what makes the spec hash an identity: if canonicalize →
// re-parse could drift, the same study could hash two ways.
func FuzzParseCanonicalFixedPoint(f *testing.F) {
	f.Add([]byte(specJSON))
	f.Add([]byte(`{"suite": "s", "campaigns": [
	  {"name": "x", "engine": "membench", "out": "a.csv"}]}`))
	f.Add([]byte(`{"suite": "s", "workers": 3, "campaigns": [
	  {"name": "x", "engine": "cpubench", "seed": 18446744073709551615,
	   "config": {"nloops": [20], "duty": 0.25, "reps": 2}, "jsonl": "x.jsonl"}]}`))
	f.Add([]byte(`{"campaigns": [{"name": "", "engine": "?"}]}`))
	f.Add([]byte(`{"suite": "s",,}`))
	f.Add([]byte(`[1, 2, 3]`))
	f.Add([]byte(`{"campaigns": [{"name": "x", "engine": "netbench", "out": "a.csv",
	  "config": null}]}`))
	// Registry lookups: an unregistered engine and a case-mangled spelling
	// of a registered one must both be rejected (lookups are exact and
	// case-sensitive), never panic or fall through to a default engine.
	f.Add([]byte(`{"suite": "s", "campaigns": [
	  {"name": "x", "engine": "quantumbench", "out": "a.csv"}]}`))
	f.Add([]byte(`{"suite": "s", "campaigns": [
	  {"name": "x", "engine": "MemBench", "out": "a.csv"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data, "fuzz.json")
		if err != nil {
			return // rejected inputs only need to not panic
		}
		canon, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not re-marshal: %v", err)
		}
		again, err := Parse(canon, "canon.json")
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ncanonical: %s\noriginal: %q", err, canon, data)
		}
		canon2, err := json.Marshal(again)
		if err != nil {
			t.Fatalf("re-parsed spec does not re-marshal: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonicalization is not a fixed point:\nfirst:  %s\nsecond: %s", canon, canon2)
		}
		h1, err1 := spec.Hash()
		h2, err2 := again.Hash()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("hashability changed across the round trip: %v vs %v", err1, err2)
		}
		if h1 != h2 {
			t.Fatalf("spec hash moved across the round trip: %s vs %s", h1, h2)
		}
	})
}
