package suite

import (
	"context"
	"testing"
)

// BenchmarkSuiteWarmReplay measures a fully warm adaptive suite run: every
// round's key found in the cache, records replayed into the sinks, and the
// planner re-deriving the identical round chain from the replayed data —
// the steady-state cost of iterating on a cached study.
func BenchmarkSuiteWarmReplay(b *testing.B) {
	spec, err := Parse([]byte(adaptiveSpecJSON), "bench.json")
	if err != nil {
		b.Fatal(err)
	}
	cacheDir := b.TempDir()
	if _, err := Run(context.Background(), spec, Options{
		CacheDir: cacheDir, BaseDir: b.TempDir(), Workers: 4,
	}); err != nil {
		b.Fatalf("cold run: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), spec, Options{
			CacheDir: cacheDir, BaseDir: b.TempDir(), Workers: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Campaigns[0].Hit {
			b.Fatal("warm run missed the cache")
		}
	}
}
