package suite

import (
	"context"
	"runtime"
	"sync"
)

// Budget is a global worker budget: a counted set of worker slots that
// campaigns acquire whole allotments from before executing and release
// afterwards. A single Budget can be shared across many concurrent Run
// calls (Options.Budget), which is how a long-running service multiplexes
// any number of in-flight suites without ever exceeding one machine-wide
// worker limit.
//
// Acquisition is all-or-nothing under an internal mutex: a campaign either
// holds its full allotment or none of it, and two campaigns' partial
// acquisitions can never interleave — the property that makes the budget
// deadlock-free no matter how many suites contend.
//
// The budget is instrumented: InUse reports the currently held slots and
// Peak the high-water mark, so a scheduler (or a test under -race) can
// prove the cap was never exceeded.
type Budget struct {
	slots chan struct{}
	acqMu sync.Mutex // serializes whole-allotment acquisition

	mu    sync.Mutex
	inUse int
	peak  int
}

// NewBudget returns a budget of n worker slots; n < 1 means
// runtime.GOMAXPROCS(0).
func NewBudget(n int) *Budget {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Budget{slots: make(chan struct{}, n)}
}

// Cap is the budget's total slot count.
func (b *Budget) Cap() int { return cap(b.slots) }

// Acquire blocks until n slots are held or ctx is done, in which case it
// holds nothing and returns the cancellation cause. Acquisitions are
// serialized: a blocked Acquire holds no slots but does hold the
// acquisition lock, so waiters queue instead of deadlocking on fragments.
func (b *Budget) Acquire(ctx context.Context, n int) error {
	b.acqMu.Lock()
	defer b.acqMu.Unlock()
	for i := 0; i < n; i++ {
		select {
		case b.slots <- struct{}{}:
		case <-ctx.Done():
			for j := 0; j < i; j++ {
				<-b.slots
			}
			return context.Cause(ctx)
		}
	}
	b.mu.Lock()
	b.inUse += n
	if b.inUse > b.peak {
		b.peak = b.inUse
	}
	b.mu.Unlock()
	return nil
}

// Release returns n previously acquired slots.
func (b *Budget) Release(n int) {
	b.mu.Lock()
	b.inUse -= n
	b.mu.Unlock()
	for i := 0; i < n; i++ {
		<-b.slots
	}
}

// InUse reports the currently held slot count.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}

// Peak reports the highest slot count ever held simultaneously — the
// number a worker-budget invariant test compares against Cap.
func (b *Budget) Peak() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}
