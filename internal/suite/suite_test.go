package suite

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/runner"
)

// serialReference runs every campaign of the spec cold and serially — the
// classic core.Campaign loop over one factory-made engine — and writes the
// sink files the suite is expected to reproduce byte for byte.
func serialReference(t *testing.T, spec *Spec, dir string) {
	t.Helper()
	plans, err := BuildPlans(spec)
	if err != nil {
		t.Fatalf("BuildPlans: %v", err)
	}
	for _, p := range plans {
		eng, err := p.Factory.NewEngine()
		if err != nil {
			t.Fatalf("%s: engine: %v", p.Campaign.Name, err)
		}
		res, err := (&core.Campaign{Design: p.Design, Engine: eng}).Run()
		if err != nil {
			t.Fatalf("%s: serial run: %v", p.Campaign.Name, err)
		}
		sinks, closers, err := runner.FileSinks(io.Discard,
			filepath.Join(dir, p.Campaign.Out), filepath.Join(dir, p.Campaign.JSONL))
		if err != nil {
			t.Fatalf("%s: sinks: %v", p.Campaign.Name, err)
		}
		for _, s := range sinks {
			if err := runner.WriteAll(res, s); err != nil {
				t.Fatalf("%s: write: %v", p.Campaign.Name, err)
			}
		}
		for _, c := range closers {
			c.Close()
		}
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}

// compareSinks asserts every campaign CSV/JSONL under dir is byte-identical
// to the serial reference.
func compareSinks(t *testing.T, spec *Spec, refDir, dir, label string) {
	t.Helper()
	for _, c := range spec.Campaigns {
		for _, name := range []string{c.Out, c.JSONL} {
			if name == "" {
				continue
			}
			want := readFile(t, filepath.Join(refDir, name))
			got := readFile(t, filepath.Join(dir, name))
			if string(want) != string(got) {
				t.Errorf("%s: %s/%s differs from the serial reference (%d vs %d bytes)",
					label, c.Name, name, len(got), len(want))
			}
		}
	}
}

// TestCacheReplayByteIdentical is the suite determinism guarantee: a suite
// of three campaigns (one per engine) runs cold at workers 1, 4 and 8 and
// then warm from the cache, and every CSV/JSONL file — cold, warm, any
// worker count — is byte-identical to a cold serial core.Campaign run,
// with the warm run executing zero trials.
func TestCacheReplayByteIdentical(t *testing.T) {
	spec := parseTestSpec(t)
	refDir := t.TempDir()
	serialReference(t, spec, refDir)

	for _, workers := range []int{1, 4, 8} {
		spec := parseTestSpec(t)
		for i := range spec.Campaigns {
			spec.Campaigns[i].Workers = workers
		}
		cacheDir := t.TempDir()
		coldDir := t.TempDir()
		warmDir := t.TempDir()

		cold, err := Run(context.Background(), spec, Options{
			CacheDir: cacheDir, BaseDir: coldDir, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers %d: cold run: %v", workers, err)
		}
		for _, cr := range cold.Campaigns {
			if cr.Hit || cr.Trials == 0 {
				t.Errorf("workers %d: cold %s: verdict %s, %d trials", workers, cr.Name, cr.Verdict(), cr.Trials)
			}
		}
		compareSinks(t, spec, refDir, coldDir, "cold")

		warm, err := Run(context.Background(), spec, Options{
			CacheDir: cacheDir, BaseDir: warmDir, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers %d: warm run: %v", workers, err)
		}
		for _, cr := range warm.Campaigns {
			if !cr.Hit {
				t.Errorf("workers %d: warm %s: verdict %s", workers, cr.Name, cr.Verdict())
			}
			if cr.Trials != 0 {
				t.Errorf("workers %d: warm %s executed %d trials, want 0", workers, cr.Name, cr.Trials)
			}
		}
		compareSinks(t, spec, refDir, warmDir, "warm")

		if cold.SpecHash != warm.SpecHash {
			t.Errorf("workers %d: spec hash moved between runs", workers)
		}
	}
}

// TestEditingOneCampaignReexecutesOnlyIt: after a warm cache, editing one
// campaign re-runs exactly that campaign; the others replay.
func TestEditingOneCampaignReexecutesOnlyIt(t *testing.T) {
	spec := parseTestSpec(t)
	cacheDir := t.TempDir()
	if _, err := Run(context.Background(), spec, Options{CacheDir: cacheDir, BaseDir: t.TempDir()}); err != nil {
		t.Fatalf("cold run: %v", err)
	}

	edited := parseTestSpec(t)
	edited.Campaigns[2].Seed = 99
	res, err := Run(context.Background(), edited, Options{CacheDir: cacheDir, BaseDir: t.TempDir()})
	if err != nil {
		t.Fatalf("edited run: %v", err)
	}
	wantHit := []bool{true, true, false}
	for i, cr := range res.Campaigns {
		if cr.Hit != wantHit[i] {
			t.Errorf("%s: verdict %s, want hit=%v", cr.Name, cr.Verdict(), wantHit[i])
		}
	}
}

// TestCorruptCacheEntryFallsBackToColdRun: a torn entry must not kill the
// study or poison the output.
func TestCorruptCacheEntryFallsBackToColdRun(t *testing.T) {
	spec := parseTestSpec(t)
	refDir := t.TempDir()
	serialReference(t, spec, refDir)

	cacheDir := t.TempDir()
	if _, err := Run(context.Background(), spec, Options{CacheDir: cacheDir, BaseDir: t.TempDir()}); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	plans, err := BuildPlans(spec)
	if err != nil {
		t.Fatalf("BuildPlans: %v", err)
	}
	if err := os.WriteFile(filepath.Join(cacheDir, plans[0].Key+".json"), []byte("{torn"), 0o666); err != nil {
		t.Fatal(err)
	}

	outDir := t.TempDir()
	res, err := Run(context.Background(), spec, Options{CacheDir: cacheDir, BaseDir: outDir})
	if err != nil {
		t.Fatalf("run over torn cache: %v", err)
	}
	if res.Campaigns[0].Hit {
		t.Errorf("torn entry reported as hit")
	}
	if !res.Campaigns[1].Hit || !res.Campaigns[2].Hit {
		t.Errorf("intact entries did not replay")
	}
	compareSinks(t, spec, refDir, outDir, "post-corruption")

	// The cold rerun must have repaired the entry.
	if entry, err := (&Cache{dir: cacheDir}).Load(plans[0].Key); err != nil || len(entry.Records) == 0 {
		t.Errorf("entry not repaired: %v", err)
	}
}

// TestSuiteEnvRecordsVerdicts: the suite-level environment metadata carries
// the spec hash and a per-campaign key and verdict.
func TestSuiteEnvRecordsVerdicts(t *testing.T) {
	spec := parseTestSpec(t)
	cacheDir := t.TempDir()
	baseDir := t.TempDir()
	res, err := Run(context.Background(), spec, Options{CacheDir: cacheDir, BaseDir: baseDir})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Env.Get("suite/spec_hash") != res.SpecHash || res.SpecHash == "" {
		t.Errorf("suite env spec hash %q vs %q", res.Env.Get("suite/spec_hash"), res.SpecHash)
	}
	for _, cr := range res.Campaigns {
		if got := res.Env.Get("suite/campaign/" + cr.Name + "/verdict"); got != "miss" {
			t.Errorf("%s: suite env verdict %q, want miss", cr.Name, got)
		}
		if got := res.Env.Get("suite/campaign/" + cr.Name + "/key"); got != cr.Key {
			t.Errorf("%s: suite env key %q, want %q", cr.Name, got, cr.Key)
		}
	}

	// The per-campaign env file carries the verdict too.
	env := readFile(t, filepath.Join(baseDir, "mem.env.json"))
	for _, want := range []string{`"suite/cache": "miss"`, `"suite/spec_hash"`, `"suite/cache_key"`} {
		if !strings.Contains(string(env), want) {
			t.Errorf("campaign env missing %s", want)
		}
	}

	warm, err := Run(context.Background(), spec, Options{CacheDir: cacheDir, BaseDir: t.TempDir()})
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	for _, cr := range warm.Campaigns {
		if got := warm.Env.Get("suite/campaign/" + cr.Name + "/verdict"); got != "hit" {
			t.Errorf("%s: warm suite env verdict %q, want hit", cr.Name, got)
		}
	}
}

// TestDryRunTouchesNothing: -dry-run reports verdicts without creating a
// single output file.
func TestDryRunTouchesNothing(t *testing.T) {
	spec := parseTestSpec(t)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	baseDir := t.TempDir()
	res, err := Run(context.Background(), spec, Options{CacheDir: cacheDir, BaseDir: baseDir, DryRun: true})
	if err != nil {
		t.Fatalf("dry run: %v", err)
	}
	for _, cr := range res.Campaigns {
		if cr.Hit || cr.Trials != 0 {
			t.Errorf("%s: dry run verdict %s, %d trials", cr.Name, cr.Verdict(), cr.Trials)
		}
	}
	entries, err := os.ReadDir(baseDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("dry run created %d files under the base dir", len(entries))
	}
	if _, err := os.Stat(cacheDir); !os.IsNotExist(err) {
		t.Errorf("dry run created the cache directory")
	}
}
