package suite

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"

	"opaquebench/internal/adapt"
	"opaquebench/internal/engine"
)

// Spec is a declarative suite: a named study of many campaigns across the
// three benchmark engines, materialized from one JSON artifact so the whole
// study can be versioned, hashed and re-run exactly.
type Spec struct {
	// Name identifies the study ("suite" in JSON).
	Name string `json:"suite"`
	// Workers is the default global worker budget: the maximum number of
	// runner workers in flight across all concurrently executing
	// campaigns. 0 means GOMAXPROCS at run time.
	Workers int `json:"workers,omitempty"`
	// Campaigns lists the member campaigns in spec order.
	Campaigns []Campaign `json:"campaigns"`
}

// Campaign is one suite member: an engine, its declarative configuration,
// the campaign seed, a worker request, and the output sinks.
type Campaign struct {
	// Name identifies the campaign within the suite (unique, required).
	Name string `json:"name"`
	// Engine selects the benchmark engine by its registry name (see
	// internal/engine; engine.Names() lists what is available).
	Engine string `json:"engine"`
	// Seed is the campaign seed; it drives the design randomization and
	// every stochastic component of the engine.
	Seed uint64 `json:"seed"`
	// Workers is the number of runner workers for this campaign (default
	// 1); the orchestrator clamps it to the global budget.
	Workers int `json:"workers,omitempty"`
	// Config is the engine-specific declarative configuration (the engine
	// package's Spec type); empty means that engine's defaults.
	Config json.RawMessage `json:"config,omitempty"`
	// Out is the raw-results CSV path; relative paths resolve against the
	// run's base directory.
	Out string `json:"out,omitempty"`
	// JSONL is the optional raw-results JSON-Lines path.
	JSONL string `json:"jsonl,omitempty"`
	// Env is the optional per-campaign environment JSON path.
	Env string `json:"env,omitempty"`
	// Adaptive, when present, turns the campaign into a multi-round
	// adaptive study (internal/adapt): the engine config's design becomes
	// the seed round, and subsequent rounds replicate the noisiest points
	// and zoom the grid around detected breakpoints, under the stanza's
	// budget and stop rules. Every round is cached under its own
	// content-addressed key.
	Adaptive *AdaptiveSpec `json:"adaptive,omitempty"`

	// pos is the "file:line:col" of the campaign object in the parsed
	// spec, for error anchoring; empty on hand-constructed specs.
	pos string
}

// AdaptiveSpec is the declarative adaptive-planning stanza of a campaign.
// Field semantics and defaults match adapt.Config; zero values mean the
// defaults.
type AdaptiveSpec struct {
	// Rounds is the maximum number of rounds, seed round included
	// (default 2).
	Rounds int `json:"rounds,omitempty"`
	// Budget is the maximum total trials across all rounds (default 4x
	// the seed design).
	Budget int `json:"budget,omitempty"`
	// TargetRelCI is the per-point convergence target on the relative
	// median-CI width (default 0.05).
	TargetRelCI float64 `json:"target_rel_ci,omitempty"`
	// TopPoints caps replication targets per round (default 3).
	TopPoints int `json:"top_points,omitempty"`
	// ExtraReps is the extra replicate count per selected point (default 4).
	ExtraReps int `json:"extra_reps,omitempty"`
	// ZoomPerBreak is the refined level count per breakpoint bracket
	// (default 4).
	ZoomPerBreak int `json:"zoom_per_break,omitempty"`
	// ZoomReps is the replicate count for zoomed levels (default: the
	// engine spec's replicate count).
	ZoomReps int `json:"zoom_reps,omitempty"`
	// MaxBreaks caps the segmented breakpoint search (default 3).
	MaxBreaks int `json:"max_breaks,omitempty"`
	// MinSeg is the minimum observations per fitted segment (default 10).
	MinSeg int `json:"min_seg,omitempty"`
	// Level is the bootstrap confidence level (default 0.95).
	Level float64 `json:"level,omitempty"`
	// BootReps is the bootstrap replication count (default 400).
	BootReps int `json:"boot_reps,omitempty"`
	// Factor overrides the zoomed numeric factor (default: the engine
	// spec's ZoomFactor).
	Factor string `json:"factor,omitempty"`
}

// validate checks the stanza's engine-independent invariants; the full
// check (budget vs seed design, factor existence) runs at plan time
// through adapt.Config.Normalize.
func (a *AdaptiveSpec) validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"rounds", a.Rounds}, {"budget", a.Budget}, {"top_points", a.TopPoints},
		{"extra_reps", a.ExtraReps}, {"zoom_per_break", a.ZoomPerBreak},
		{"zoom_reps", a.ZoomReps}, {"max_breaks", a.MaxBreaks},
		{"min_seg", a.MinSeg}, {"boot_reps", a.BootReps},
	} {
		if f.v < 0 {
			return fmt.Errorf("adaptive %s %d is negative", f.name, f.v)
		}
	}
	if a.TargetRelCI < 0 {
		return fmt.Errorf("adaptive target_rel_ci %g is negative", a.TargetRelCI)
	}
	if a.Level < 0 || a.Level >= 1 {
		return fmt.Errorf("adaptive level %g outside [0, 1)", a.Level)
	}
	return nil
}

// config lowers the stanza into the planner configuration.
func (a *AdaptiveSpec) config(seed uint64) adapt.Config {
	return adapt.Config{
		Factor:       a.Factor,
		Rounds:       a.Rounds,
		Budget:       a.Budget,
		TargetRelCI:  a.TargetRelCI,
		TopPoints:    a.TopPoints,
		ExtraReps:    a.ExtraReps,
		ZoomPerBreak: a.ZoomPerBreak,
		ZoomReps:     a.ZoomReps,
		MaxBreaks:    a.MaxBreaks,
		MinSeg:       a.MinSeg,
		Level:        a.Level,
		BootReps:     a.BootReps,
		Seed:         seed,
	}
}

// validate checks the campaign's engine-independent invariants.
func (c *Campaign) validate() error {
	if c.Name == "" {
		return fmt.Errorf(`campaign needs a "name"`)
	}
	if _, ok := engine.Lookup(c.Engine); !ok {
		return fmt.Errorf("campaign %q: unknown engine %q (registered engines: %s)",
			c.Name, c.Engine, strings.Join(engine.Names(), ", "))
	}
	if c.Workers < 0 {
		return fmt.Errorf("campaign %q: negative workers %d", c.Name, c.Workers)
	}
	if c.Out == "" && c.JSONL == "" {
		return fmt.Errorf(`campaign %q: names no output sink (set "out" and/or "jsonl")`, c.Name)
	}
	if c.Adaptive != nil {
		if err := c.Adaptive.validate(); err != nil {
			return fmt.Errorf("campaign %q: %w", c.Name, err)
		}
	}
	return nil
}

// claimPaths registers the campaign's sink paths in seen (path -> owning
// campaign). Two campaigns writing the same file would race and silently
// corrupt each other's output, so any reuse — across campaigns or within
// one — is a spec error.
func claimPaths(seen map[string]string, c *Campaign) error {
	for _, p := range []string{c.Out, c.JSONL, c.Env} {
		if p == "" {
			continue
		}
		// Clean so equivalent spellings ("out/a.csv" vs "./out/a.csv")
		// cannot sneak past the guard.
		p = filepath.Clean(p)
		if prev, ok := seen[p]; ok {
			if prev == c.Name {
				return fmt.Errorf("campaign %q: output path %q used twice", c.Name, p)
			}
			return fmt.Errorf("campaign %q: output path %q already used by campaign %q", c.Name, p, prev)
		}
		seen[p] = c.Name
	}
	return nil
}

// at prefixes err with the campaign's spec position when one is known.
func (c *Campaign) at(err error) error {
	if err == nil || c.pos == "" {
		return err
	}
	return fmt.Errorf("%s: %w", c.pos, err)
}

// lineCol converts a byte offset into 1-based line and column numbers.
func lineCol(data []byte, off int64) (line, col int) {
	line, col = 1, 1
	for i := int64(0); i < off && i < int64(len(data)); i++ {
		if data[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// Parse reads a suite spec from JSON, validating as it goes. Errors are
// anchored to the spec text: syntax and type errors carry the exact
// filename:line:col, and every campaign-level validation error carries the
// position of the offending campaign object.
func Parse(data []byte, filename string) (*Spec, error) {
	pos := func(off int64) string {
		line, col := lineCol(data, off)
		return fmt.Sprintf("%s:%d:%d", filename, line, col)
	}
	fail := func(off int64, format string, args ...any) error {
		return fmt.Errorf("%s: %s", pos(off), fmt.Sprintf(format, args...))
	}
	// locate translates the offset buried in a decoder error, falling back
	// to the decoder's current position.
	locate := func(err error, dec *json.Decoder) error {
		var se *json.SyntaxError
		if errors.As(err, &se) {
			return fail(se.Offset, "%s", se.Error())
		}
		var te *json.UnmarshalTypeError
		if errors.As(err, &te) {
			return fail(te.Offset, "cannot use %s as %s", te.Value, te.Type)
		}
		return fail(dec.InputOffset(), "%s", err.Error())
	}

	dec := json.NewDecoder(bytes.NewReader(data))
	tok, err := dec.Token()
	if err != nil {
		return nil, locate(err, dec)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, fail(0, "suite spec must be a JSON object")
	}

	spec := &Spec{}
	names := map[string]string{} // campaign name -> pos
	paths := map[string]string{} // sink path -> campaign name
	seen := map[string]bool{}    // top-level keys
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return nil, locate(err, dec)
		}
		key, _ := tok.(string)
		keyOff := dec.InputOffset() - int64(len(key)) - 2
		if seen[key] {
			return nil, fail(keyOff, "duplicate key %q", key)
		}
		seen[key] = true
		switch key {
		case "suite":
			if err := dec.Decode(&spec.Name); err != nil {
				return nil, locate(err, dec)
			}
		case "workers":
			if err := dec.Decode(&spec.Workers); err != nil {
				return nil, locate(err, dec)
			}
			if spec.Workers < 0 {
				return nil, fail(keyOff, "negative workers %d", spec.Workers)
			}
		case "campaigns":
			tok, err := dec.Token()
			if err != nil {
				return nil, locate(err, dec)
			}
			if d, ok := tok.(json.Delim); !ok || d != '[' {
				return nil, fail(keyOff, `"campaigns" must be an array`)
			}
			for dec.More() {
				var raw json.RawMessage
				if err := dec.Decode(&raw); err != nil {
					return nil, locate(err, dec)
				}
				// Decode into RawMessage preserves the exact value text,
				// so the campaign's start offset is recoverable.
				off := dec.InputOffset() - int64(len(raw))
				c, err := parseCampaign(raw)
				if err != nil {
					return nil, fail(off, "campaign %d: %s", len(spec.Campaigns), err.Error())
				}
				c.pos = pos(off)
				if prev, dup := names[c.Name]; dup {
					return nil, fail(off, "campaign %q already declared at %s", c.Name, prev)
				}
				names[c.Name] = c.pos
				if err := claimPaths(paths, &c); err != nil {
					return nil, fail(off, "%s", err.Error())
				}
				spec.Campaigns = append(spec.Campaigns, c)
			}
			if _, err := dec.Token(); err != nil { // consume ']'
				return nil, locate(err, dec)
			}
		default:
			return nil, fail(keyOff, "unknown key %q (want suite, workers, campaigns)", key)
		}
	}
	if _, err := dec.Token(); err != nil { // consume '}'
		return nil, locate(err, dec)
	}
	if dec.More() {
		return nil, fail(dec.InputOffset(), "trailing data after suite spec")
	}
	if len(spec.Campaigns) == 0 {
		return nil, fmt.Errorf(`%s: spec declares no campaigns (want a non-empty "campaigns" array)`, filename)
	}
	return spec, nil
}

// parseCampaign strictly decodes one campaign object and validates it, both
// the engine-independent fields and — through the engine registry — the
// engine-specific config.
func parseCampaign(raw json.RawMessage) (Campaign, error) {
	var c Campaign
	if err := checkDupKeys(raw); err != nil {
		return c, err
	}
	if err := engine.StrictDecode(raw, &c); err != nil {
		return c, err
	}
	if err := c.validate(); err != nil {
		return c, err
	}
	def, _ := engine.Lookup(c.Engine) // validate() vouched for the name
	if _, err := def.Decode(c.Config); err != nil {
		return c, fmt.Errorf("campaign %q: %s config: %w", c.Name, c.Engine, err)
	}
	return c, nil
}

// checkDupKeys rejects duplicate keys at every object level of raw.
// encoding/json silently lets the last duplicate win, which would give a
// campaign a different identity than its first declaration with no
// diagnostic; the top-level Parse walk already rejects duplicates, and this
// extends the same strictness into campaign objects and engine configs.
func checkDupKeys(raw json.RawMessage) error {
	if len(raw) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	var walk func() error
	walk = func() error {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		d, ok := tok.(json.Delim)
		if !ok {
			return nil
		}
		switch d {
		case '{':
			seen := map[string]bool{}
			for dec.More() {
				kt, err := dec.Token()
				if err != nil {
					return err
				}
				key, _ := kt.(string)
				if seen[key] {
					return fmt.Errorf("duplicate key %q", key)
				}
				seen[key] = true
				if err := walk(); err != nil {
					return err
				}
			}
			_, err = dec.Token() // consume '}'
			return err
		case '[':
			for dec.More() {
				if err := walk(); err != nil {
					return err
				}
			}
			_, err = dec.Token() // consume ']'
			return err
		}
		return nil
	}
	return walk()
}

// Hash returns the canonical spec hash (hex SHA-256): the identity of the
// study as a whole, recorded in every suite run's environment metadata.
// Hashing happens over a canonical re-marshal — engine configs are decoded
// and re-encoded with defaults left implicit — so formatting, key order and
// whitespace do not affect it, while any semantic edit does. Output paths
// are part of the spec hash (they are part of the study) but not of the
// per-campaign cache keys (moving outputs must not invalidate results).
func (s *Spec) Hash() (string, error) {
	type canonCampaign struct {
		Name     string          `json:"name"`
		Engine   string          `json:"engine"`
		Seed     uint64          `json:"seed"`
		Workers  int             `json:"workers"`
		Config   json.RawMessage `json:"config"`
		Out      string          `json:"out"`
		JSONL    string          `json:"jsonl"`
		Env      string          `json:"env"`
		Adaptive *AdaptiveSpec   `json:"adaptive,omitempty"`
	}
	canon := struct {
		Name      string          `json:"suite"`
		Workers   int             `json:"workers"`
		Campaigns []canonCampaign `json:"campaigns"`
	}{Name: s.Name, Workers: s.Workers}
	for _, c := range s.Campaigns {
		def, ok := engine.Lookup(c.Engine)
		if !ok {
			return "", fmt.Errorf("suite: campaign %q: unknown engine %q", c.Name, c.Engine)
		}
		decoded, err := def.Decode(c.Config)
		if err != nil {
			return "", c.at(fmt.Errorf("suite: campaign %q: %s config: %w", c.Name, c.Engine, err))
		}
		cfg, err := engine.Canonical(decoded)
		if err != nil {
			return "", c.at(fmt.Errorf("suite: campaign %q: %w", c.Name, err))
		}
		canon.Campaigns = append(canon.Campaigns, canonCampaign{
			Name: c.Name, Engine: c.Engine, Seed: c.Seed, Workers: c.Workers,
			Config: cfg, Out: c.Out, JSONL: c.JSONL, Env: c.Env,
			Adaptive: c.Adaptive,
		})
	}
	payload, err := json.Marshal(canon)
	if err != nil {
		return "", fmt.Errorf("suite: hash spec: %w", err)
	}
	return hashBytes(payload), nil
}
