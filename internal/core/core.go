// Package core implements the paper's primary contribution (Section V): a
// three-stage white-box benchmarking methodology with a strict separation of
// concerns between
//
//  1. the experimental design (package doe) — factors, randomization,
//     replication, materialized as a schedule;
//  2. the benchmark running engine — a dumb executor that takes measurements
//     in exactly the designed order and logs every raw observation together
//     with environment metadata (package meta);
//  3. the offline statistical analysis (package stats) — performed only
//     after the campaign, on the full raw data.
//
// Nothing in this package aggregates on the fly; that is the point. The
// opaque benchmarks of package opaque exist to demonstrate what goes wrong
// when stages are fused and raw data is discarded.
package core

import (
	"fmt"

	"opaquebench/internal/doe"
	"opaquebench/internal/meta"
)

// RawRecord is one raw measurement, the unit the methodology refuses to
// discard. Value is the primary metric (bandwidth in MB/s for memory
// campaigns, duration in seconds for network campaigns).
type RawRecord struct {
	// Seq is the execution-order index (the x-axis of Figure 11 right).
	Seq int
	// Rep is the replicate number of the factor combination.
	Rep int
	// Point is the factor combination measured.
	Point doe.Point
	// Value is the primary metric.
	Value float64
	// Seconds is the raw measured duration.
	Seconds float64
	// At is the virtual time at which the measurement started.
	At float64
	// Extra carries engine-specific annotations (binding resource,
	// frequency, ground-truth perturbation flags, ...).
	Extra map[string]string
}

// Annotate sets an extra key, allocating the map on first use.
func (r *RawRecord) Annotate(key, value string) {
	if r.Extra == nil {
		r.Extra = make(map[string]string)
	}
	r.Extra[key] = value
}

// Engine is the second methodology stage: it executes exactly one trial and
// reports the raw measurement. Engines must perform no aggregation and no
// reordering; the design dictates the schedule.
type Engine interface {
	// Execute performs the trial's measurement.
	Execute(t doe.Trial) (RawRecord, error)
	// Environment captures the engine's execution environment for the
	// campaign metadata.
	Environment() *meta.Environment
}

// EngineFactory creates independent engine instances. The parallel runner
// (package runner) asks for one engine per worker, because simulator engines
// carry per-campaign substrate state (caches, clocks, allocators) that must
// not be shared between concurrently executing trials.
//
// Engines produced by a factory are expected to be trial-indexed: every
// stochastic and temporal quantity of a trial's record must derive from the
// campaign seed and the trial's Seq alone, never from which trials ran
// before it on the same engine. That property is what makes a sharded
// campaign's output record-for-record identical to a serial Campaign.Run
// with one factory-made engine.
type EngineFactory interface {
	// NewEngine returns a fresh, independent engine.
	NewEngine() (Engine, error)
}

// EngineFactoryFunc adapts a function to the EngineFactory interface.
type EngineFactoryFunc func() (Engine, error)

// NewEngine implements EngineFactory.
func (f EngineFactoryFunc) NewEngine() (Engine, error) { return f() }

// Campaign binds a design to an engine.
type Campaign struct {
	Design *doe.Design
	Engine Engine
}

// Results is the full raw output of a campaign: every record, in execution
// order, plus the captured environment.
type Results struct {
	Design  *doe.Design
	Records []RawRecord
	Env     *meta.Environment
}

// NewResults builds an empty result set for a campaign: the environment is
// captured from the engine and stamped with the design metadata. Shared by
// the serial Campaign.Run and the parallel runner so serial and sharded
// campaigns emit identical environment schemas.
func NewResults(design *doe.Design, engine Engine) *Results {
	res := &Results{Design: design, Env: engine.Environment()}
	if res.Env == nil {
		res.Env = meta.New()
	}
	res.Env.Setf("design/trials", "%d", design.Size())
	res.Env.Setf("design/seed", "%d", design.Seed)
	res.Env.Setf("design/randomized", "%v", design.Randomized)
	return res
}

// Run executes the campaign: every trial, in design order, logging every raw
// record.
func (c *Campaign) Run() (*Results, error) {
	if c.Design == nil || c.Engine == nil {
		return nil, fmt.Errorf("core: campaign needs both a design and an engine")
	}
	res := NewResults(c.Design, c.Engine)
	for _, t := range c.Design.Trials {
		rec, err := c.Engine.Execute(t)
		if err != nil {
			return nil, fmt.Errorf("core: trial %d (%s): %w", t.Seq, t.Point.Key(), err)
		}
		rec.Seq = t.Seq
		rec.Rep = t.Rep
		if rec.Point == nil {
			rec.Point = t.Point
		}
		res.Records = append(res.Records, rec)
	}
	return res, nil
}

// Len returns the number of records.
func (r *Results) Len() int { return len(r.Records) }

// Values returns the primary metric of every record in execution order.
func (r *Results) Values() []float64 {
	out := make([]float64, len(r.Records))
	for i, rec := range r.Records {
		out[i] = rec.Value
	}
	return out
}

// Filter returns the records satisfying keep, preserving order.
func (r *Results) Filter(keep func(RawRecord) bool) *Results {
	out := &Results{Design: r.Design, Env: r.Env}
	for _, rec := range r.Records {
		if keep(rec) {
			out.Records = append(out.Records, rec)
		}
	}
	return out
}

// GroupBy groups primary-metric values by the level of one factor.
func (r *Results) GroupBy(factor string) map[string][]float64 {
	out := make(map[string][]float64)
	for _, rec := range r.Records {
		k := rec.Point.Get(factor)
		out[k] = append(out[k], rec.Value)
	}
	return out
}

// XY extracts (numeric factor level, value) pairs for regression, skipping
// records whose level does not parse.
func (r *Results) XY(factor string) (xs, ys []float64) {
	for _, rec := range r.Records {
		x, err := rec.Point.Float(factor)
		if err != nil {
			continue
		}
		xs = append(xs, x)
		ys = append(ys, rec.Value)
	}
	return xs, ys
}
