package core

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV exercises the raw-results parser with arbitrary input: never
// panic, and accepted inputs must round-trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("seq,rep,value,seconds,at\n0,0,1.5,0.001,0\n")
	f.Add("seq,rep,value,seconds,at,size,x_note\n0,0,1,1,1,1024,hello\n")
	f.Add("")
	f.Add("seq,rep,value,seconds,at\nNaN,x,y,z,w\n")
	f.Add("a,b\n1,2\n")
	f.Add("seq,rep,value,seconds,at\n0,0,1e309,0,0\n")
	// x_-prefixed columns are always extras, even ambiguous ones like
	// a bare "x_"; factor columns may never carry the prefix.
	f.Add("seq,rep,value,seconds,at,x_,x_flag\n0,0,1,1,1,a,b\n")
	// Empty cells mean the key is absent from that record, not present
	// with an empty value — the round trip must preserve the distinction.
	f.Add("seq,rep,value,seconds,at,size,x_note\n0,0,1,1,1,,\n1,0,2,1,2,64,\n")

	f.Fuzz(func(t *testing.T, input string) {
		res, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted results failed to serialize: %v", err)
		}
		res2, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if res2.Len() != res.Len() {
			t.Fatalf("round trip changed length: %d -> %d", res.Len(), res2.Len())
		}
	})
}
