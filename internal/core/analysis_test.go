package core

import (
	"math"
	"testing"

	"opaquebench/internal/doe"
	"opaquebench/internal/xrand"
)

// synthetic builds results with value = f(x) + noise for factor "size".
func synthetic(t *testing.T, sizes []int, reps int, f func(x float64, rep int) float64) *Results {
	t.Helper()
	res := &Results{}
	seq := 0
	for rep := 0; rep < reps; rep++ {
		for _, s := range sizes {
			res.Records = append(res.Records, RawRecord{
				Seq:   seq,
				Rep:   rep,
				Point: doe.Point{"size": doe.Level(itoa(s))},
				Value: f(float64(s), rep),
			})
			seq++
		}
	}
	return res
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func TestSummarizeBySortedNumerically(t *testing.T) {
	res := synthetic(t, []int{100, 2, 30}, 3, func(x float64, _ int) float64 { return x })
	gs := SummarizeBy(res, "size")
	if len(gs) != 3 {
		t.Fatalf("groups = %d", len(gs))
	}
	if gs[0].X != 2 || gs[1].X != 30 || gs[2].X != 100 {
		t.Fatalf("order = %v %v %v", gs[0].X, gs[1].X, gs[2].X)
	}
	if gs[0].Summary.N != 3 {
		t.Fatalf("group size = %d", gs[0].Summary.N)
	}
	if len(gs[0].Values) != 3 {
		t.Fatal("raw values not retained")
	}
}

func TestFitPiecewiseSupervised(t *testing.T) {
	sizes := make([]int, 50)
	for i := range sizes {
		sizes[i] = (i + 1) * 10
	}
	res := synthetic(t, sizes, 2, func(x float64, _ int) float64 {
		if x < 250 {
			return 1 + 0.1*x
		}
		return 1 + 0.1*250 + 0.5*(x-250)
	})
	pf, err := FitPiecewise(res, "size", []float64{250})
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Segments) != 2 {
		t.Fatalf("segments = %d", len(pf.Segments))
	}
	if math.Abs(pf.Segments[0].Fit.Slope-0.1) > 0.01 {
		t.Fatalf("slope0 = %v", pf.Segments[0].Fit.Slope)
	}
	if math.Abs(pf.Segments[1].Fit.Slope-0.5) > 0.01 {
		t.Fatalf("slope1 = %v", pf.Segments[1].Fit.Slope)
	}
}

func TestFitSegmentedAuto(t *testing.T) {
	sizes := make([]int, 80)
	for i := range sizes {
		sizes[i] = (i + 1) * 10
	}
	r := xrand.New(3)
	res := synthetic(t, sizes, 2, func(x float64, _ int) float64 {
		y := 1 + 0.1*x
		if x >= 400 {
			y = 1 + 0.1*400 + 0.9*(x-400)
		}
		return y + r.NormFloat64()*0.5
	})
	pf, err := FitSegmented(res, "size", 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Breaks) != 1 {
		t.Fatalf("breaks = %v, want one", pf.Breaks)
	}
	if math.Abs(pf.Breaks[0]-400) > 30 {
		t.Fatalf("break = %v, want ~400", pf.Breaks[0])
	}
}

func TestFitErrorsOnNonNumericFactor(t *testing.T) {
	res := &Results{Records: []RawRecord{{Point: doe.Point{"op": "send"}, Value: 1}}}
	if _, err := FitPiecewise(res, "op", nil); err == nil {
		t.Fatal("want error")
	}
	if _, err := FitSegmented(res, "op", 2, 2); err == nil {
		t.Fatal("want error")
	}
}

func TestDiagnoseModesBimodalContiguous(t *testing.T) {
	// 100 measurements; a contiguous block [40, 65) runs 5x slower —
	// the Figure 11 scenario.
	res := &Results{}
	for i := 0; i < 100; i++ {
		v := 1500.0
		if i >= 40 && i < 65 {
			v = 300
		}
		res.Records = append(res.Records, RawRecord{Seq: i, Value: v, Point: doe.Point{}})
	}
	d, err := DiagnoseModes(res)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Split.Bimodal(0.1, 3) {
		t.Fatalf("bimodality missed: %+v", d.Split)
	}
	if math.Abs(d.Split.Ratio()-5) > 0.5 {
		t.Fatalf("ratio = %v, want ~5", d.Split.Ratio())
	}
	if d.Contiguity != 1 {
		t.Fatalf("contiguity = %v, want 1", d.Contiguity)
	}
	if d.LowRunStart != 40 || d.LowRunLength != 25 {
		t.Fatalf("run = [%d, +%d)", d.LowRunStart, d.LowRunLength)
	}
	if d.String() == "" {
		t.Fatal("empty diagnosis string")
	}
}

func TestDiagnoseModesScatteredNoise(t *testing.T) {
	// Independent scattered lows have low contiguity.
	res := &Results{}
	for i := 0; i < 100; i++ {
		v := 1500.0
		if i%10 == 0 {
			v = 300
		}
		res.Records = append(res.Records, RawRecord{Seq: i, Value: v, Point: doe.Point{}})
	}
	d, err := DiagnoseModes(res)
	if err != nil {
		t.Fatal(err)
	}
	if d.Contiguity > 0.3 {
		t.Fatalf("scattered noise should have low contiguity: %v", d.Contiguity)
	}
}

func TestDiagnoseModesEmpty(t *testing.T) {
	if _, err := DiagnoseModes(&Results{}); err == nil {
		t.Fatal("want error")
	}
}

func TestVariabilityByGroup(t *testing.T) {
	res := &Results{}
	// Group "a": constant; group "b": spread.
	for i := 0; i < 10; i++ {
		res.Records = append(res.Records,
			RawRecord{Point: doe.Point{"g": "a"}, Value: 5},
			RawRecord{Point: doe.Point{"g": "b"}, Value: float64(1 + i)},
		)
	}
	cv := VariabilityByGroup(res, "g")
	if cv["a"] != 0 {
		t.Fatalf("cv[a] = %v", cv["a"])
	}
	if cv["b"] <= 0.3 {
		t.Fatalf("cv[b] = %v, want substantial", cv["b"])
	}
}

func TestMainEffectsFromResults(t *testing.T) {
	// "size" drives the value; "rep-ish" factor does not.
	res := &Results{}
	r := xrand.New(71)
	for i := 0; i < 200; i++ {
		size := []string{"1024", "65536"}[i%2]
		v := 100.0
		if size == "65536" {
			v = 50
		}
		res.Records = append(res.Records, RawRecord{
			Point: doe.Point{"size": doe.Level(size), "noise": doe.Level([]string{"a", "b"}[r.IntN(2)])},
			Value: v + r.NormFloat64(),
		})
	}
	effects, err := MainEffects(res)
	if err != nil {
		t.Fatal(err)
	}
	if effects[0].Factor != "size" || effects[0].EtaSquared < 0.9 {
		t.Fatalf("effects = %+v", effects)
	}
}
