package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"opaquebench/internal/doe"
	"opaquebench/internal/meta"
)

// fakeEngine returns value = size*2 + rep, annotated.
type fakeEngine struct {
	calls int
	fail  bool
}

func (f *fakeEngine) Execute(t doe.Trial) (RawRecord, error) {
	f.calls++
	if f.fail {
		return RawRecord{}, fmt.Errorf("boom")
	}
	size, err := t.Point.Int("size")
	if err != nil {
		return RawRecord{}, err
	}
	rec := RawRecord{Value: float64(size*2 + t.Rep), Seconds: 0.001, At: float64(f.calls)}
	rec.Annotate("note", "ok")
	return rec, nil
}

func (f *fakeEngine) Environment() *meta.Environment {
	return meta.New().Set("engine", "fake")
}

func testDesign(t *testing.T, reps int) *doe.Design {
	t.Helper()
	d, err := doe.FullFactorial([]doe.Factor{
		doe.IntFactor("size", 10, 20, 30),
		doe.IntFactor("stride", 1, 2),
	}, doe.Options{Replicates: reps, Seed: 42, Randomize: true})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func runCampaign(t *testing.T, reps int) *Results {
	t.Helper()
	c := Campaign{Design: testDesign(t, reps), Engine: &fakeEngine{}}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCampaignRunsAllTrialsInOrder(t *testing.T) {
	res := runCampaign(t, 3)
	if res.Len() != 18 {
		t.Fatalf("records = %d, want 18", res.Len())
	}
	for i, rec := range res.Records {
		if rec.Seq != i {
			t.Fatalf("record %d has Seq %d: execution order broken", i, rec.Seq)
		}
	}
}

func TestCampaignCapturesEnvironment(t *testing.T) {
	res := runCampaign(t, 1)
	if res.Env.Get("engine") != "fake" {
		t.Fatal("engine environment lost")
	}
	if res.Env.Get("design/trials") != "6" {
		t.Fatalf("trials = %q", res.Env.Get("design/trials"))
	}
	if res.Env.Get("design/randomized") != "true" {
		t.Fatal("randomization flag not captured")
	}
}

func TestCampaignPropagatesErrors(t *testing.T) {
	c := Campaign{Design: testDesign(t, 1), Engine: &fakeEngine{fail: true}}
	if _, err := c.Run(); err == nil {
		t.Fatal("want error")
	}
}

func TestCampaignNilParts(t *testing.T) {
	if _, err := (&Campaign{}).Run(); err == nil {
		t.Fatal("want error for empty campaign")
	}
}

func TestResultsGroupBy(t *testing.T) {
	res := runCampaign(t, 2)
	groups := res.GroupBy("size")
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	// size 10 -> values 20 + rep for both strides and 2 reps = 4 records.
	if len(groups["10"]) != 4 {
		t.Fatalf("size-10 group = %d records", len(groups["10"]))
	}
}

func TestResultsXY(t *testing.T) {
	res := runCampaign(t, 1)
	xs, ys := res.XY("size")
	if len(xs) != res.Len() || len(ys) != res.Len() {
		t.Fatal("XY dropped records")
	}
}

func TestResultsFilter(t *testing.T) {
	res := runCampaign(t, 1)
	sub := res.Filter(func(r RawRecord) bool { return r.Point.Get("stride") == "1" })
	if sub.Len() != 3 {
		t.Fatalf("filtered = %d, want 3", sub.Len())
	}
}

func TestResultsValuesOrder(t *testing.T) {
	res := runCampaign(t, 1)
	vals := res.Values()
	if len(vals) != res.Len() {
		t.Fatal("values length")
	}
	for i, rec := range res.Records {
		if vals[i] != rec.Value {
			t.Fatal("values out of order")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	res := runCampaign(t, 2)
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != res.Len() {
		t.Fatalf("round trip %d != %d", got.Len(), res.Len())
	}
	for i := range res.Records {
		a, b := res.Records[i], got.Records[i]
		if a.Seq != b.Seq || a.Value != b.Value || a.Point.Key() != b.Point.Key() {
			t.Fatalf("record %d mismatch:\n%+v\n%+v", i, a, b)
		}
		if b.Extra["note"] != "ok" {
			t.Fatalf("extras lost: %+v", b.Extra)
		}
	}
}

func TestReadCSVBadInput(t *testing.T) {
	cases := []string{
		"",
		"a,b,c\n",
		"seq,rep,value,seconds,at\nx,0,1,1,1\n",
		"seq,rep,value,seconds,at\n0,0,notanumber,1,1\n",
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("want error for %q", c)
		}
	}
}

func TestAnnotateNilMap(t *testing.T) {
	var r RawRecord
	r.Annotate("k", "v")
	if r.Extra["k"] != "v" {
		t.Fatal("annotate on zero record failed")
	}
}
