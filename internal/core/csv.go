package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"opaquebench/internal/doe"
)

// Raw results travel as CSV so the analysis stage (and any external tool)
// can consume them long after the campaign: columns seq, rep, value,
// seconds, at, then factors (sorted), then extras (sorted, prefixed "x_").

// CSVHeader returns the header row for records carrying the given factor
// and extra keys (sorted by the caller): the fixed columns, then factors,
// then extras prefixed "x_". Shared by WriteCSV and the streaming CSV sink
// so the schema lives in exactly one place.
//
// Factor names starting with the reserved "x_" prefix are rejected: such a
// column would be read back as an extra, so the written record and the
// re-read record would disagree — the raw data would silently change shape
// on its way through the file.
func CSVHeader(factors, extras []string) ([]string, error) {
	header := []string{"seq", "rep", "value", "seconds", "at"}
	for _, f := range factors {
		if strings.HasPrefix(f, "x_") {
			return nil, fmt.Errorf("core: factor name %q collides with the reserved x_ extra-column prefix", f)
		}
		header = append(header, f)
	}
	for _, e := range extras {
		header = append(header, "x_"+e)
	}
	return header, nil
}

// CSVRow serializes one record under the given factor/extra columns.
func CSVRow(rec RawRecord, factors, extras []string) []string {
	row := []string{
		strconv.Itoa(rec.Seq),
		strconv.Itoa(rec.Rep),
		strconv.FormatFloat(rec.Value, 'g', -1, 64),
		strconv.FormatFloat(rec.Seconds, 'g', -1, 64),
		strconv.FormatFloat(rec.At, 'g', -1, 64),
	}
	for _, f := range factors {
		row = append(row, rec.Point.Get(f))
	}
	for _, e := range extras {
		row = append(row, rec.Extra[e])
	}
	return row
}

// AppendCSVRow appends one record, encoded exactly as encoding/csv would
// write CSVRow (comma separator, "\n" line ending, standard quoting), to
// dst and returns the extended slice. It allocates nothing beyond dst's
// growth, which amortizes to zero when the caller reuses the buffer — this
// is the campaign hot path's row encoder.
func AppendCSVRow(dst []byte, rec RawRecord, factors, extras []string) []byte {
	dst = strconv.AppendInt(dst, int64(rec.Seq), 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(rec.Rep), 10)
	dst = append(dst, ',')
	dst = strconv.AppendFloat(dst, rec.Value, 'g', -1, 64)
	dst = append(dst, ',')
	dst = strconv.AppendFloat(dst, rec.Seconds, 'g', -1, 64)
	dst = append(dst, ',')
	dst = strconv.AppendFloat(dst, rec.At, 'g', -1, 64)
	for _, f := range factors {
		dst = append(dst, ',')
		dst = AppendCSVField(dst, rec.Point.Get(f))
	}
	for _, e := range extras {
		dst = append(dst, ',')
		dst = AppendCSVField(dst, rec.Extra[e])
	}
	return append(dst, '\n')
}

// AppendCSVStrings appends one row of pre-rendered fields (e.g. a header
// from CSVHeader) encoded exactly as encoding/csv would write it.
func AppendCSVStrings(dst []byte, row []string) []byte {
	for i, f := range row {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = AppendCSVField(dst, f)
	}
	return append(dst, '\n')
}

// AppendCSVField appends one field with encoding/csv's quoting rules
// (Comma ',', UseCRLF false): a field is quoted when it contains a comma,
// a quote, or a line break, begins with white space, or is the PostgreSQL
// end-of-data marker `\.`; inside quotes, quotes double and everything
// else passes through.
func AppendCSVField(dst []byte, field string) []byte {
	if !csvFieldNeedsQuotes(field) {
		return append(dst, field...)
	}
	dst = append(dst, '"')
	for i := 0; i < len(field); i++ {
		if field[i] == '"' {
			dst = append(dst, '"', '"')
		} else {
			dst = append(dst, field[i])
		}
	}
	return append(dst, '"')
}

// csvFieldNeedsQuotes mirrors encoding/csv.Writer.fieldNeedsQuotes for the
// default comma separator with UseCRLF false.
func csvFieldNeedsQuotes(field string) bool {
	if field == "" {
		return false
	}
	if field == `\.` {
		return true
	}
	for i := 0; i < len(field); i++ {
		switch field[i] {
		case ',', '"', '\r', '\n':
			return true
		}
	}
	r, _ := utf8.DecodeRuneInString(field)
	return unicode.IsSpace(r)
}

// WriteCSV serializes the raw records.
func (r *Results) WriteCSV(w io.Writer) error {
	factorSet := map[string]bool{}
	extraSet := map[string]bool{}
	for _, rec := range r.Records {
		for k := range rec.Point {
			factorSet[k] = true
		}
		for k := range rec.Extra {
			extraSet[k] = true
		}
	}
	factors := sortedKeys(factorSet)
	extras := sortedKeys(extraSet)

	header, err := CSVHeader(factors, extras)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("core: write header: %w", err)
	}
	for _, rec := range r.Records {
		if err := cw.Write(CSVRow(rec, factors, extras)); err != nil {
			return fmt.Errorf("core: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses results written by WriteCSV. Empty factor and extra cells
// mean the record never carried that key — WriteCSV serializes an absent
// key as an empty cell, so materializing it on the way back in would make
// the re-read record differ from the one measured. A column whose name
// starts with "x_" is always an extra; everything after the five fixed
// columns that doesn't is a factor.
func ReadCSV(r io.Reader) (*Results, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("core: read csv: %w", err)
	}
	if len(rows) < 1 {
		return nil, fmt.Errorf("core: empty csv")
	}
	header := rows[0]
	if len(header) < 5 || header[0] != "seq" || header[1] != "rep" || header[2] != "value" ||
		header[3] != "seconds" || header[4] != "at" {
		return nil, fmt.Errorf("core: bad header %v (want seq,rep,value,seconds,at,...)", header)
	}
	res := &Results{}
	for ri, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("core: row %d has %d columns, want %d", ri+1, len(row), len(header))
		}
		var rec RawRecord
		var err error
		if rec.Seq, err = strconv.Atoi(row[0]); err != nil {
			return nil, fmt.Errorf("core: row %d seq: %w", ri+1, err)
		}
		if rec.Rep, err = strconv.Atoi(row[1]); err != nil {
			return nil, fmt.Errorf("core: row %d rep: %w", ri+1, err)
		}
		if rec.Value, err = strconv.ParseFloat(row[2], 64); err != nil {
			return nil, fmt.Errorf("core: row %d value: %w", ri+1, err)
		}
		if rec.Seconds, err = strconv.ParseFloat(row[3], 64); err != nil {
			return nil, fmt.Errorf("core: row %d seconds: %w", ri+1, err)
		}
		if rec.At, err = strconv.ParseFloat(row[4], 64); err != nil {
			return nil, fmt.Errorf("core: row %d at: %w", ri+1, err)
		}
		for ci := 5; ci < len(header); ci++ {
			if row[ci] == "" {
				continue // absent key, not a present key with an empty value
			}
			name := header[ci]
			if strings.HasPrefix(name, "x_") {
				rec.Annotate(name[2:], row[ci])
			} else {
				if rec.Point == nil {
					rec.Point = make(doe.Point)
				}
				rec.Point[name] = doe.Level(row[ci])
			}
		}
		res.Records = append(res.Records, rec)
	}
	return res, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
