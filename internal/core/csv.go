package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"opaquebench/internal/doe"
)

// Raw results travel as CSV so the analysis stage (and any external tool)
// can consume them long after the campaign: columns seq, rep, value,
// seconds, at, then factors (sorted), then extras (sorted, prefixed "x_").

// CSVHeader returns the header row for records carrying the given factor
// and extra keys (sorted by the caller): the fixed columns, then factors,
// then extras prefixed "x_". Shared by WriteCSV and the streaming CSV sink
// so the schema lives in exactly one place.
func CSVHeader(factors, extras []string) []string {
	header := []string{"seq", "rep", "value", "seconds", "at"}
	header = append(header, factors...)
	for _, e := range extras {
		header = append(header, "x_"+e)
	}
	return header
}

// CSVRow serializes one record under the given factor/extra columns.
func CSVRow(rec RawRecord, factors, extras []string) []string {
	row := []string{
		strconv.Itoa(rec.Seq),
		strconv.Itoa(rec.Rep),
		strconv.FormatFloat(rec.Value, 'g', -1, 64),
		strconv.FormatFloat(rec.Seconds, 'g', -1, 64),
		strconv.FormatFloat(rec.At, 'g', -1, 64),
	}
	for _, f := range factors {
		row = append(row, rec.Point.Get(f))
	}
	for _, e := range extras {
		row = append(row, rec.Extra[e])
	}
	return row
}

// WriteCSV serializes the raw records.
func (r *Results) WriteCSV(w io.Writer) error {
	factorSet := map[string]bool{}
	extraSet := map[string]bool{}
	for _, rec := range r.Records {
		for k := range rec.Point {
			factorSet[k] = true
		}
		for k := range rec.Extra {
			extraSet[k] = true
		}
	}
	factors := sortedKeys(factorSet)
	extras := sortedKeys(extraSet)

	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader(factors, extras)); err != nil {
		return fmt.Errorf("core: write header: %w", err)
	}
	for _, rec := range r.Records {
		if err := cw.Write(CSVRow(rec, factors, extras)); err != nil {
			return fmt.Errorf("core: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses results written by WriteCSV.
func ReadCSV(r io.Reader) (*Results, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("core: read csv: %w", err)
	}
	if len(rows) < 1 {
		return nil, fmt.Errorf("core: empty csv")
	}
	header := rows[0]
	if len(header) < 5 || header[0] != "seq" || header[1] != "rep" || header[2] != "value" {
		return nil, fmt.Errorf("core: bad header %v", header)
	}
	res := &Results{}
	for ri, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("core: row %d has %d columns, want %d", ri+1, len(row), len(header))
		}
		var rec RawRecord
		var err error
		if rec.Seq, err = strconv.Atoi(row[0]); err != nil {
			return nil, fmt.Errorf("core: row %d seq: %w", ri+1, err)
		}
		if rec.Rep, err = strconv.Atoi(row[1]); err != nil {
			return nil, fmt.Errorf("core: row %d rep: %w", ri+1, err)
		}
		if rec.Value, err = strconv.ParseFloat(row[2], 64); err != nil {
			return nil, fmt.Errorf("core: row %d value: %w", ri+1, err)
		}
		if rec.Seconds, err = strconv.ParseFloat(row[3], 64); err != nil {
			return nil, fmt.Errorf("core: row %d seconds: %w", ri+1, err)
		}
		if rec.At, err = strconv.ParseFloat(row[4], 64); err != nil {
			return nil, fmt.Errorf("core: row %d at: %w", ri+1, err)
		}
		rec.Point = make(doe.Point)
		for ci := 5; ci < len(header); ci++ {
			name := header[ci]
			if len(name) > 2 && name[:2] == "x_" {
				rec.Annotate(name[2:], row[ci])
			} else {
				rec.Point[name] = doe.Level(row[ci])
			}
		}
		res.Records = append(res.Records, rec)
	}
	return res, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
