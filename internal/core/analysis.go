package core

import (
	"fmt"
	"sort"
	"strings"

	"opaquebench/internal/stats"
)

// This file is the third methodology stage: supervised offline analysis of
// raw campaign results. Everything operates on the complete record set —
// mode detection, temporal-contiguity diagnosis, and piecewise fits with
// analyst-provided or automatically searched breakpoints.

// GroupSummary is the per-level summary of one factor, with the raw values
// retained alongside the aggregates (the aggregates never replace them).
type GroupSummary struct {
	// Level is the factor level (textual).
	Level string
	// X is the numeric value of the level, NaN when non-numeric.
	X float64
	// Summary holds descriptive statistics.
	Summary stats.Summary
	// Values are the raw observations of the group.
	Values []float64
}

// SummarizeBy groups values by a factor and summarizes each group, sorted by
// numeric level where possible.
func SummarizeBy(r *Results, factor string) []GroupSummary {
	groups := map[string][]float64{}
	xs := map[string]float64{}
	for _, rec := range r.Records {
		k := rec.Point.Get(factor)
		groups[k] = append(groups[k], rec.Value)
		if x, err := rec.Point.Float(factor); err == nil {
			xs[k] = x
		}
	}
	out := make([]GroupSummary, 0, len(groups))
	for k, vs := range groups {
		g := GroupSummary{Level: k, Summary: stats.Summarize(vs), Values: vs}
		if x, ok := xs[k]; ok {
			g.X = x
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Level < out[j].Level
	})
	return out
}

// FitPiecewise fits a piecewise-linear model of value against a numeric
// factor with analyst-provided breakpoints — the supervised fit of
// Section V.A.
func FitPiecewise(r *Results, factor string, breaks []float64) (stats.PiecewiseFit, error) {
	xs, ys := r.XY(factor)
	if len(xs) == 0 {
		return stats.PiecewiseFit{}, fmt.Errorf("core: factor %q has no numeric levels", factor)
	}
	return stats.FitPiecewise(xs, ys, breaks)
}

// FitSegmented searches for up to maxBreaks breakpoints with BIC selection —
// the "initial neutral look regarding the number of breakpoints" of
// Figure 4.
func FitSegmented(r *Results, factor string, maxBreaks, minSeg int) (stats.PiecewiseFit, error) {
	xs, ys := r.XY(factor)
	if len(xs) == 0 {
		return stats.PiecewiseFit{}, fmt.Errorf("core: factor %q has no numeric levels", factor)
	}
	return stats.SelectSegmented(xs, ys, maxBreaks, minSeg)
}

// ModeDiagnosis is the offline bimodality analysis that exposed the
// scheduler pitfall of Figure 11.
type ModeDiagnosis struct {
	// Split is the two-cluster decomposition of all values.
	Split stats.ModeSplit
	// LowModeFraction is the share of observations in the low cluster.
	LowModeFraction float64
	// Contiguity is the fraction of low-mode observations contained in
	// the single longest run of execution order; values near 1 implicate
	// one temporal episode (an external process), values near 0 suggest
	// independent noise.
	Contiguity float64
	// LowRunStart and LowRunLength locate the longest low-mode run in
	// execution order.
	LowRunStart, LowRunLength int
}

// DiagnoseModes clusters all values into two modes and measures how
// temporally contiguous the low mode is. Records must be in execution order
// (as Run produces them).
func DiagnoseModes(r *Results) (ModeDiagnosis, error) {
	vals := r.Values()
	split, err := stats.SplitModes(vals)
	if err != nil {
		return ModeDiagnosis{}, err
	}
	flags := make([]bool, len(vals))
	for i, v := range vals {
		flags[i] = v <= split.Boundary
	}
	start, length := stats.LongestRun(flags)
	d := ModeDiagnosis{
		Split:           split,
		LowModeFraction: float64(split.LowN) / float64(len(vals)),
		Contiguity:      stats.RunsContiguity(flags),
		LowRunStart:     start,
		LowRunLength:    length,
	}
	return d, nil
}

// String renders the diagnosis.
func (d ModeDiagnosis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "modes: low=%.4g (n=%d) high=%.4g (n=%d) ratio=%.2f sep=%.1f\n",
		d.Split.LowMean, d.Split.LowN, d.Split.HighMean, d.Split.HighN, d.Split.Ratio(), d.Split.Separation)
	fmt.Fprintf(&b, "low-mode fraction=%.2f contiguity=%.2f longest-run=[%d, +%d)\n",
		d.LowModeFraction, d.Contiguity, d.LowRunStart, d.LowRunLength)
	return b.String()
}

// VariabilityByGroup returns, per level of the grouping factor, the
// coefficient of variation of the group — the Figure 4 diagnostic that
// flagged the medium-size receive variability.
func VariabilityByGroup(r *Results, factor string) map[string]float64 {
	out := map[string]float64{}
	for k, vs := range r.GroupBy(factor) {
		out[k] = stats.CV(vs)
	}
	return out
}

// MainEffects ranks the campaign's factors by how much response variance
// their levels explain (one-way ANOVA eta-squared) — the quantitative form
// of the Figure 13 cause-and-effect question.
func MainEffects(r *Results) ([]stats.FactorEffect, error) {
	obs := make([]stats.Observation, 0, len(r.Records))
	for _, rec := range r.Records {
		levels := make(map[string]string, len(rec.Point))
		for k, v := range rec.Point {
			levels[k] = string(v)
		}
		obs = append(obs, stats.Observation{Levels: levels, Value: rec.Value})
	}
	return stats.MainEffects(obs)
}
