package core

import (
	"reflect"
	"testing"

	"opaquebench/internal/doe"
)

// Table-driven coverage of the Results helpers, with the edge cases the
// analysis stage meets in practice: empty campaigns, factors with
// non-numeric levels (skipped by XY), and records missing a factor.

func resultsFrom(rows []RawRecord) *Results {
	return &Results{Records: rows}
}

func rec(value float64, point doe.Point) RawRecord {
	return RawRecord{Value: value, Point: point}
}

func TestResultsFilterTable(t *testing.T) {
	base := []RawRecord{
		rec(1, doe.Point{"op": "send"}),
		rec(2, doe.Point{"op": "recv"}),
		rec(3, doe.Point{"op": "send"}),
	}
	cases := []struct {
		name string
		in   []RawRecord
		keep func(RawRecord) bool
		want []float64
	}{
		{"empty results", nil, func(RawRecord) bool { return true }, nil},
		{"keep all", base, func(RawRecord) bool { return true }, []float64{1, 2, 3}},
		{"drop all", base, func(RawRecord) bool { return false }, nil},
		{"by factor preserving order", base,
			func(r RawRecord) bool { return r.Point.Get("op") == "send" },
			[]float64{1, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := resultsFrom(tc.in).Filter(tc.keep)
			if !reflect.DeepEqual(got.Values(), append([]float64(nil), tc.want...)) &&
				!(len(got.Values()) == 0 && len(tc.want) == 0) {
				t.Fatalf("Filter values = %v, want %v", got.Values(), tc.want)
			}
			if got.Len() != len(tc.want) {
				t.Fatalf("Len = %d, want %d", got.Len(), len(tc.want))
			}
		})
	}
}

func TestResultsGroupByTable(t *testing.T) {
	cases := []struct {
		name   string
		in     []RawRecord
		factor string
		want   map[string][]float64
	}{
		{"empty results", nil, "size", map[string][]float64{}},
		{"two levels", []RawRecord{
			rec(10, doe.Point{"size": "1024"}),
			rec(20, doe.Point{"size": "2048"}),
			rec(30, doe.Point{"size": "1024"}),
		}, "size", map[string][]float64{"1024": {10, 30}, "2048": {20}}},
		{"missing factor groups under empty level", []RawRecord{
			rec(5, doe.Point{"other": "x"}),
		}, "size", map[string][]float64{"": {5}}},
		{"non-numeric levels group fine", []RawRecord{
			rec(1, doe.Point{"op": "send"}),
			rec(2, doe.Point{"op": "recv"}),
		}, "op", map[string][]float64{"send": {1}, "recv": {2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := resultsFrom(tc.in).GroupBy(tc.factor)
			if len(got) != len(tc.want) {
				t.Fatalf("GroupBy = %v, want %v", got, tc.want)
			}
			for k, vs := range tc.want {
				if !reflect.DeepEqual(got[k], vs) {
					t.Fatalf("group %q = %v, want %v", k, got[k], vs)
				}
			}
		})
	}
}

func TestResultsXYTable(t *testing.T) {
	cases := []struct {
		name   string
		in     []RawRecord
		factor string
		wantX  []float64
		wantY  []float64
	}{
		{"empty results", nil, "size", nil, nil},
		{"numeric levels", []RawRecord{
			rec(1, doe.Point{"size": "1024"}),
			rec(2, doe.Point{"size": "4096"}),
		}, "size", []float64{1024, 4096}, []float64{1, 2}},
		{"non-numeric levels skipped", []RawRecord{
			rec(1, doe.Point{"op": "send", "size": "1024"}),
			rec(2, doe.Point{"op": "recv", "size": "2048"}),
		}, "op", nil, nil},
		{"mixed numeric and not", []RawRecord{
			rec(1, doe.Point{"size": "10"}),
			rec(2, doe.Point{"size": "lots"}),
			rec(3, doe.Point{"size": "30"}),
		}, "size", []float64{10, 30}, []float64{1, 3}},
		{"missing factor skipped", []RawRecord{
			rec(1, doe.Point{"other": "1"}),
			rec(2, doe.Point{"size": "64"}),
		}, "size", []float64{64}, []float64{2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			xs, ys := resultsFrom(tc.in).XY(tc.factor)
			if !reflect.DeepEqual(xs, tc.wantX) || !reflect.DeepEqual(ys, tc.wantY) {
				t.Fatalf("XY = (%v, %v), want (%v, %v)", xs, ys, tc.wantX, tc.wantY)
			}
		})
	}
}
