package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"opaquebench/internal/doe"
)

// TestCSVRoundTripProperty pins the serialization fidelity contract:
// WriteCSV → ReadCSV → WriteCSV must be byte-identical on the second write,
// and the re-read records must be deeply equal to the originals — including
// the absent-vs-empty distinction (a key missing from a record stays
// missing; it must not come back as a present key with an empty value).
func TestCSVRoundTripProperty(t *testing.T) {
	res := &Results{Records: []RawRecord{
		// Full record: every factor and extra present.
		{
			Seq: 0, Rep: 0, Value: 1234.5, Seconds: 0.001, At: 0,
			Point: doe.Point{"size_bytes": "4096", "stride": "1"},
			Extra: map[string]string{"bound_by": "L1", "x_note": "quoted,comma"},
		},
		// Sparse record: factor "stride" and extra "x_note" absent. They
		// serialize as empty cells and must stay absent after a round trip.
		{
			Seq: 1, Rep: 1, Value: -0.25, Seconds: 12345.678, At: 1.5e-7,
			Point: doe.Point{"size_bytes": "65536"},
			Extra: map[string]string{"bound_by": "dram"},
		},
		// No extras at all, value needing full float64 precision.
		{
			Seq: 2, Rep: 0, Value: math.Pi, Seconds: 1.0 / 3.0, At: 99,
			Point: doe.Point{"size_bytes": "4096", "stride": "8"},
		},
		// Extra whose value contains a newline and a quote — the CSV
		// quoting worst case.
		{
			Seq: 3, Rep: 2, Value: 0, Seconds: 0, At: 0,
			Point: doe.Point{"size_bytes": "4096", "stride": "1"},
			Extra: map[string]string{"bound_by": "L2", "x_note": "line1\nline2 \"q\""},
		},
	}}

	var first bytes.Buffer
	if err := res.WriteCSV(&first); err != nil {
		t.Fatalf("first WriteCSV: %v", err)
	}
	got, err := ReadCSV(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	var second bytes.Buffer
	if err := got.WriteCSV(&second); err != nil {
		t.Fatalf("second WriteCSV: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("round trip is not byte-identical:\nfirst:\n%s\nsecond:\n%s",
			first.String(), second.String())
	}

	if got.Len() != res.Len() {
		t.Fatalf("round trip changed length: %d -> %d", res.Len(), got.Len())
	}
	for i, want := range res.Records {
		rec := got.Records[i]
		if !reflect.DeepEqual(rec.Point, want.Point) {
			t.Errorf("record %d: Point = %v, want %v", i, rec.Point, want.Point)
		}
		// Extra maps: nil and empty are interchangeable in the contract,
		// but a key absent before the trip must be absent after it.
		if len(rec.Extra) != len(want.Extra) || (len(want.Extra) > 0 && !reflect.DeepEqual(rec.Extra, want.Extra)) {
			t.Errorf("record %d: Extra = %v, want %v", i, rec.Extra, want.Extra)
		}
		if rec.Seq != want.Seq || rec.Rep != want.Rep ||
			rec.Value != want.Value || rec.Seconds != want.Seconds || rec.At != want.At {
			t.Errorf("record %d: fixed columns %+v, want %+v", i, rec, want)
		}
	}

	// The sparse record's absent keys specifically: present-with-empty
	// would satisfy DeepEqual only by accident, so check membership.
	if _, ok := got.Records[1].Point["stride"]; ok {
		t.Errorf("record 1: absent factor \"stride\" came back present: %q", got.Records[1].Point["stride"])
	}
	if _, ok := got.Records[1].Extra["x_note"]; ok {
		t.Errorf("record 1: absent extra \"x_note\" came back present: %q", got.Records[1].Extra["x_note"])
	}
}
