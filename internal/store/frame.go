package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// The log is a flat sequence of self-checking frames after an 8-byte file
// header. Each frame is
//
//	magic   [4]byte  "FRME"
//	type    byte     'E' entry · 'P' pin · 'U' unpin · 'T' tombstone
//	metaLen uint32   little-endian
//	bodyLen uint32   little-endian
//	meta    [metaLen]byte   JSON (Meta for 'E', pinRecord for 'P'/'U',
//	                        tombRecord for 'T')
//	body    [bodyLen]byte   the entry payload ('E' only; empty otherwise)
//	sum     [32]byte        sha256 over every preceding frame byte
//
// The trailing checksum covers the header too, so a frame whose lengths,
// type or magic were corrupted in place fails exactly like one whose body
// was torn: nothing short of a fully intact frame is ever surfaced. Readers
// stop at the first frame that does not verify, which defines the store's
// recovery rule — the longest valid frame prefix is the store.

const (
	logMagic  = "obstore1"    // file header
	logHeader = len(logMagic) // 8 bytes
	frameSize = 4 + 1 + 4 + 4 // fixed frame header bytes
	sumSize   = sha256.Size   // 32
)

var frameMagic = [4]byte{'F', 'R', 'M', 'E'}

// Frame types.
const (
	frameEntry     = byte('E')
	framePin       = byte('P')
	frameUnpin     = byte('U')
	frameTombstone = byte('T')
)

func validType(t byte) bool {
	switch t {
	case frameEntry, framePin, frameUnpin, frameTombstone:
		return true
	}
	return false
}

// maxMetaLen bounds the metadata section. Entry metadata is a small JSON
// object (environment descriptors included); a megabyte is far beyond any
// legitimate frame and keeps a corrupted length field from driving a huge
// allocation before the checksum gets its chance to reject the frame.
const maxMetaLen = 1 << 20

// pinRecord is the metadata of 'P' and 'U' frames.
type pinRecord struct {
	Run  string   `json:"run"`
	Keys []string `json:"keys,omitempty"`
}

// tombRecord is the metadata of 'T' frames.
type tombRecord struct {
	Key string `json:"key"`
}

// appendFrame encodes one frame onto dst and returns the extended slice.
func appendFrame(dst []byte, typ byte, meta, body []byte) []byte {
	start := len(dst)
	dst = append(dst, frameMagic[:]...)
	dst = append(dst, typ)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(meta)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = append(dst, meta...)
	dst = append(dst, body...)
	sum := sha256.Sum256(dst[start:])
	return append(dst, sum[:]...)
}

// encodeFrame encodes one frame with a JSON-marshaled metadata record.
func encodeFrame(typ byte, metaRec any, body []byte) ([]byte, error) {
	meta, err := json.Marshal(metaRec)
	if err != nil {
		return nil, fmt.Errorf("store: encode frame meta: %w", err)
	}
	return appendFrame(nil, typ, meta, body), nil
}

// frameInfo describes one decoded frame's position inside the log.
type frameInfo struct {
	off     int64 // frame start (the magic)
	typ     byte
	metaLen uint32
	bodyLen uint32
}

// end returns the offset one past the frame's checksum.
func (f frameInfo) end() int64 {
	return f.off + int64(frameSize) + int64(f.metaLen) + int64(f.bodyLen) + int64(sumSize)
}

// metaOff and bodyOff locate the frame's sections.
func (f frameInfo) metaOff() int64 { return f.off + int64(frameSize) }
func (f frameInfo) bodyOff() int64 { return f.metaOff() + int64(f.metaLen) }

// decodeFrame parses and verifies the frame starting at off in buf (the
// whole log, header included). It returns ok=false — never an invalid
// partial result — when the bytes at off are not one fully intact frame:
// short buffer, bad magic, unknown type, oversized metadata, lengths
// overrunning the buffer, or a checksum mismatch.
func decodeFrame(buf []byte, off int64) (frameInfo, bool) {
	if off < 0 || int64(len(buf))-off < int64(frameSize)+int64(sumSize) {
		return frameInfo{}, false
	}
	b := buf[off:]
	if [4]byte(b[:4]) != frameMagic || !validType(b[4]) {
		return frameInfo{}, false
	}
	f := frameInfo{
		off:     off,
		typ:     b[4],
		metaLen: binary.LittleEndian.Uint32(b[5:9]),
		bodyLen: binary.LittleEndian.Uint32(b[9:13]),
	}
	if f.metaLen > maxMetaLen {
		return frameInfo{}, false
	}
	if f.end() > int64(len(buf)) || f.end() < f.off {
		return frameInfo{}, false
	}
	sumAt := f.bodyOff() + int64(f.bodyLen)
	sum := sha256.Sum256(buf[f.off:sumAt])
	if [sumSize]byte(buf[sumAt:f.end()]) != sum {
		return frameInfo{}, false
	}
	return f, true
}
