package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestRefcountPinUnpin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.store")
	s := openTest(t, path)
	var keys []string
	for i := 0; i < 3; i++ {
		key, payload, m := testEntry(i)
		if err := s.Put(key, payload, m); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	if err := s.Pin("run-a", keys[0], keys[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Pin("run-b", keys[1], keys[2]); err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{1, 2, 1} {
		if got := s.Refcount(keys[i]); got != want {
			t.Errorf("Refcount(keys[%d]) = %d, want %d", i, got, want)
		}
	}

	// Everything is pinned: GC must reclaim nothing.
	dead, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 0 {
		t.Fatalf("GC reclaimed pinned entries: %v", dead)
	}

	// Dropping run-a leaves keys[1] held by run-b; only keys[0] dies.
	if err := s.Unpin("run-a"); err != nil {
		t.Fatal(err)
	}
	if got := s.Refcount(keys[1]); got != 1 {
		t.Errorf("after Unpin: Refcount(keys[1]) = %d, want 1", got)
	}
	dead, err = s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 || dead[0] != keys[0] {
		t.Fatalf("GC reclaimed %v, want [%s]", dead, keys[0])
	}
	if s.Has(keys[0]) || !s.Has(keys[1]) || !s.Has(keys[2]) {
		t.Fatalf("live set wrong after GC: %v", s.Keys())
	}

	// Re-pinning a run replaces its key set, it does not accumulate.
	if err := s.Pin("run-b", keys[2]); err != nil {
		t.Fatal(err)
	}
	if got := s.Refcount(keys[1]); got != 0 {
		t.Errorf("re-pin did not replace: Refcount(keys[1]) = %d, want 0", got)
	}
}

// TestGCKeepsRoundChainAncestors: an entry referenced only through a pinned
// descendant's provenance chain must survive GC.
func TestGCKeepsRoundChainAncestors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.store")
	s := openTest(t, path)

	// seed ← round2 ← round3 via Parent links, plus one unrelated entry.
	chain := make([]string, 3)
	for i := range chain {
		chain[i] = fmt.Sprintf("%064x", 0xa0+i)
	}
	for i, key := range chain {
		m := Meta{Campaign: "adaptive", Round: i + 1}
		if i > 0 {
			m.Parent = chain[i-1]
		}
		if err := s.Put(key, []byte(fmt.Sprintf(`{"round":%d}`, i+1)), m); err != nil {
			t.Fatal(err)
		}
	}
	loner, payload, lm := testEntry(9)
	if err := s.Put(loner, payload, lm); err != nil {
		t.Fatal(err)
	}

	// Pin only the final round: the whole chain must survive, the loner not.
	if err := s.Pin("final", chain[2]); err != nil {
		t.Fatal(err)
	}
	dead, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 || dead[0] != loner {
		t.Fatalf("GC reclaimed %v, want only the unchained entry %s", dead, loner)
	}
	for i, key := range chain {
		if !s.Has(key) {
			t.Errorf("round %d entry reclaimed despite pinned descendant", i+1)
		}
	}
	got, err := s.Chain(chain[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Key != chain[0] || got[2].Key != chain[2] {
		t.Fatalf("chain broken after GC: %+v", got)
	}
}

// snapshot captures everything a reader can observe: all live metadata in
// query order, every payload, and the pin table.
func snapshot(t *testing.T, s *Store) ([]Meta, map[string][]byte, []Pin) {
	t.Helper()
	metas := s.Query(Query{})
	payloads := map[string][]byte{}
	for _, k := range s.Keys() {
		b, err := s.Get(k)
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		payloads[k] = b
	}
	return metas, payloads, s.Pins()
}

func TestCompactPreservesStateByteForByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.store")
	s := openTest(t, path)
	var keys []string
	for i := 0; i < 6; i++ {
		key, payload, m := testEntry(i)
		if i >= 3 {
			m.Parent = keys[i-3] // some provenance links survive compaction too
		}
		if err := s.Put(key, payload, m); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	// Overwrite one entry (superseded frame → dead bytes), pin some, kill
	// the rest, so the compaction actually has garbage to drop.
	if err := s.Put(keys[1], []byte(`{"records":[],"v":2}`), Meta{Campaign: "rewritten"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Pin("keep", keys[0], keys[1], keys[3], keys[4]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}

	wantMetas, wantPayloads, wantPins := snapshot(t, s)
	sizeBefore := s.LogSize()

	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if s.LogSize() >= sizeBefore {
		t.Errorf("compaction did not shrink the log: %d -> %d", sizeBefore, s.LogSize())
	}
	if _, err := s.Verify(); err != nil {
		t.Fatalf("Verify after compact: %v", err)
	}
	gotMetas, gotPayloads, gotPins := snapshot(t, s)
	if !reflect.DeepEqual(gotMetas, wantMetas) {
		t.Errorf("query results changed across compaction:\n pre %+v\npost %+v", wantMetas, gotMetas)
	}
	if !reflect.DeepEqual(gotPayloads, wantPayloads) {
		t.Error("payload bytes changed across compaction")
	}
	if !reflect.DeepEqual(gotPins, wantPins) {
		t.Errorf("pins changed across compaction: pre %+v post %+v", wantPins, gotPins)
	}

	// And the same state must come back from a cold reopen of the new log.
	s.Close()
	s2 := openTest(t, filepath.Join(filepath.Dir(path), "r.store"))
	if _, err := s2.Verify(); err != nil {
		t.Fatalf("Verify after reopen: %v", err)
	}
	gotMetas, gotPayloads, gotPins = snapshot(t, s2)
	if !reflect.DeepEqual(gotMetas, wantMetas) || !reflect.DeepEqual(gotPayloads, wantPayloads) || !reflect.DeepEqual(gotPins, wantPins) {
		t.Error("state changed across compaction + reopen")
	}
}

// TestInterruptedCompactionLeavesOldLogReadable: if the atomic rename never
// happens, the old log must be untouched and fully usable — no torn state,
// no leftover temp file blocking anything.
func TestInterruptedCompactionLeavesOldLogReadable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.store")
	s := openTest(t, path)
	var keys []string
	for i := 0; i < 4; i++ {
		key, payload, m := testEntry(i)
		if err := s.Put(key, payload, m); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	if err := s.Pin("keep", keys[0], keys[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	wantMetas, wantPayloads, wantPins := snapshot(t, s)
	logBefore, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("simulated crash at rename")
	compactRename = func(old, new string) error { return boom }
	defer func() { compactRename = os.Rename }()

	if err := s.Compact(); !errors.Is(err, boom) {
		t.Fatalf("Compact = %v, want the injected rename failure", err)
	}

	// The old log's bytes are exactly what they were.
	logAfter, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(logBefore, logAfter) {
		t.Error("interrupted compaction modified the old log")
	}
	// No temp litter.
	tmps, _ := filepath.Glob(filepath.Join(filepath.Dir(path), ".compact.tmp*"))
	if len(tmps) != 0 {
		t.Errorf("temp files left behind: %v", tmps)
	}
	// The open store keeps working against the old log...
	gotMetas, gotPayloads, gotPins := snapshot(t, s)
	if !reflect.DeepEqual(gotMetas, wantMetas) || !reflect.DeepEqual(gotPayloads, wantPayloads) || !reflect.DeepEqual(gotPins, wantPins) {
		t.Error("state diverged after interrupted compaction")
	}
	key, payload, m := testEntry(8)
	if err := s.Put(key, payload, m); err != nil {
		t.Fatalf("append after interrupted compaction: %v", err)
	}
	if _, err := s.Verify(); err != nil {
		t.Fatalf("Verify after interrupted compaction: %v", err)
	}
	// ...and so does a second, uninterrupted compaction.
	compactRename = os.Rename
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact after recovery: %v", err)
	}
	if !s.Has(key) {
		t.Error("entry appended after interrupted compaction lost by the successful one")
	}
}
