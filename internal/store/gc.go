package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Pin marks the given keys as belonging to the named run, replacing the
// run's previous key set if it was already pinned. A key's refcount is the
// number of runs pinning it; GC reclaims only entries with no pins and no
// pinned descendant (see GC). Keys are stored sorted and deduplicated;
// pinning keys with no live entry is allowed (the run may predate a GC) and
// simply holds nothing.
func (s *Store) Pin(run string, keys ...string) error {
	if run == "" {
		return fmt.Errorf("store: empty run name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	set := map[string]bool{}
	for _, k := range keys {
		if k != "" {
			set[k] = true
		}
	}
	sorted := make([]string, 0, len(set))
	for k := range set {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	frame, err := encodeFrame(framePin, &pinRecord{Run: run, Keys: sorted}, nil)
	if err != nil {
		return err
	}
	if _, err := s.append(frame); err != nil {
		return err
	}
	s.setPin(run, sorted)
	return nil
}

// Unpin drops the named run's pins. Unpinning an unknown run is a no-op
// that still appends the frame, so intent is durable either way.
func (s *Store) Unpin(run string) error {
	if run == "" {
		return fmt.Errorf("store: empty run name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	frame, err := encodeFrame(frameUnpin, &pinRecord{Run: run}, nil)
	if err != nil {
		return err
	}
	if _, err := s.append(frame); err != nil {
		return err
	}
	s.dropPin(run)
	return nil
}

// Pin is one named run's pinned key set.
type Pin struct {
	Run  string
	Keys []string
}

// Pins returns every pinned run in first-pin order with its sorted key
// set. The order is append order, so it is stable and reflects run
// history — the order the trend analysis walks.
func (s *Store) Pins() []Pin {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Pin, 0, len(s.pinSeq))
	for _, run := range s.pinSeq {
		keys := append([]string(nil), s.pins[run]...)
		out = append(out, Pin{Run: run, Keys: keys})
	}
	return out
}

// Refcount reports how many runs pin key.
func (s *Store) Refcount(key string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, keys := range s.pins {
		for _, k := range keys {
			if k == key {
				n++
			}
		}
	}
	return n
}

// liveSet computes the keys GC must keep: every pinned key, plus the
// transitive parent chain of every pinned entry — an adaptive round's
// provenance stays re-derivable as long as any round of the chain is
// pinned. Caller holds at least the read lock.
func (s *Store) liveSet() map[string]bool {
	live := map[string]bool{}
	var walk func(key string)
	walk = func(key string) {
		for key != "" && !live[key] {
			live[key] = true
			ref, ok := s.entries[key]
			if !ok {
				return
			}
			key = ref.meta.Parent
		}
	}
	for _, keys := range s.pins {
		for _, k := range keys {
			walk(k)
		}
	}
	return live
}

// GC reclaims every entry that no run pins and no pinned entry's round
// chain references, appending one tombstone frame per reclaimed key. The
// reclaimed keys are returned sorted. Tombstoned bytes stay in the log
// until the next Compact; a GC'd store therefore never loses crash
// recoverability mid-collection — replaying the log reproduces exactly the
// tombstones that were appended.
func (s *Store) GC() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return nil, err
	}
	live := s.liveSet()
	var dead []string
	for key := range s.entries {
		if !live[key] {
			dead = append(dead, key)
		}
	}
	sort.Strings(dead)
	for _, key := range dead {
		frame, err := encodeFrame(frameTombstone, &tombRecord{Key: key}, nil)
		if err != nil {
			return nil, err
		}
		if _, err := s.append(frame); err != nil {
			return nil, err
		}
		s.dropEntry(key)
	}
	return dead, nil
}

// compactRename is swapped out by tests to interrupt a compaction at the
// moment of the atomic rename.
var compactRename = os.Rename

// Compact rewrites the live state into a fresh log — live entry frames in
// their original append order, then one pin frame per run — and atomically
// replaces the old log (write-temp + rename, the same discipline as the
// cache directory's entry stores). Tombstoned and superseded frames are
// dropped; payload bytes, metadata (StoredAt included) and entry order are
// preserved exactly, so every query answers identically before and after.
// If compaction is interrupted anywhere before the rename, the old log is
// untouched and fully readable.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}

	tmp, err := os.CreateTemp(dirOf(s.path), ".compact.tmp*")
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: compact: %w", err)
	}

	// Rebuild the log in memory first: header, entries (re-read from the
	// old log and re-verified, so a rotted frame aborts the compaction
	// instead of being laundered into a "fresh" one), then pins.
	out := []byte(logMagic)
	newRefs := map[string]entryRef{}
	for _, key := range s.order {
		ref := s.entries[key]
		frame := make([]byte, ref.info.end()-ref.info.off)
		if _, err := s.f.ReadAt(frame, ref.info.off); err != nil {
			return fail(fmt.Errorf("read entry %s: %w", key, err))
		}
		if _, ok := decodeFrame(frame, 0); !ok {
			return fail(fmt.Errorf("entry %s: frame at offset %d failed verification", key, ref.info.off))
		}
		info := ref.info
		info.off = int64(len(out))
		out = append(out, frame...)
		newRefs[key] = entryRef{info: info, meta: ref.meta}
	}
	for _, run := range s.pinSeq {
		frame, err := encodeFrame(framePin, &pinRecord{Run: run, Keys: s.pins[run]}, nil)
		if err != nil {
			return fail(err)
		}
		out = append(out, frame...)
	}

	if _, err := tmp.Write(out); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := compactRename(tmpName, s.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: compact: %w", err)
	}

	// The rename happened: the new log is the store. Reopen the handle and
	// swap the in-memory state to the new offsets.
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o666)
	if err != nil {
		s.broken = err
		return fmt.Errorf("store: compact: reopen: %w", err)
	}
	s.f.Close()
	s.f = f
	s.size = int64(len(out))
	s.entries = newRefs
	s.writeIndex()
	return nil
}

// VerifyReport summarizes a full-log verification pass.
type VerifyReport struct {
	// Frames is the number of intact frames in the log.
	Frames int
	// Entries, Tombstones, PinFrames and UnpinFrames count them by type
	// (Entries counts every entry frame, superseded ones included).
	Entries, Tombstones, PinFrames, UnpinFrames int
	// Live and Pinned are the live entry count and distinct pinned runs
	// after replaying the log.
	Live, Pinned int
	// Bytes is the verified log prefix length.
	Bytes int64
}

// Verify re-reads the entire log from disk, re-verifies every frame
// checksum, replays the frames into a fresh state, and cross-checks that
// state against the open store's. Any divergence — a frame that fails its
// checksum inside the valid prefix, an index that disagrees with the log —
// is an error.
func (s *Store) Verify() (VerifyReport, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var rep VerifyReport
	if s.f == nil {
		return rep, fmt.Errorf("store: closed")
	}
	buf := make([]byte, s.size)
	if _, err := s.f.ReadAt(buf, 0); err != nil {
		return rep, fmt.Errorf("store: verify: read log: %w", err)
	}
	if string(buf[:min(int64(len(buf)), int64(logHeader))]) != logMagic[:min(len(buf), logHeader)] {
		return rep, fmt.Errorf("store: verify: bad header")
	}
	fresh := &Store{entries: map[string]entryRef{}, pins: map[string][]string{}}
	off := int64(logHeader)
	for off < s.size {
		info, ok := decodeFrame(buf, off)
		if !ok {
			return rep, fmt.Errorf("store: verify: frame at offset %d failed verification", off)
		}
		if !fresh.apply(info, buf[info.metaOff():info.bodyOff()]) {
			return rep, fmt.Errorf("store: verify: frame at offset %d has unparsable metadata", off)
		}
		rep.Frames++
		switch info.typ {
		case frameEntry:
			rep.Entries++
		case frameTombstone:
			rep.Tombstones++
		case framePin:
			rep.PinFrames++
		case frameUnpin:
			rep.UnpinFrames++
		}
		off = info.end()
	}
	rep.Bytes = off
	rep.Live = len(fresh.entries)
	rep.Pinned = len(fresh.pins)

	// Cross-check the replay against the open store's state (which may
	// have come from the sidecar index).
	if len(fresh.entries) != len(s.entries) {
		return rep, fmt.Errorf("store: verify: index lists %d live entries, log replay %d", len(s.entries), len(fresh.entries))
	}
	for key, ref := range s.entries {
		fr, ok := fresh.entries[key]
		if !ok {
			return rep, fmt.Errorf("store: verify: indexed entry %s not live in the log", key)
		}
		if fr.info != ref.info {
			return rep, fmt.Errorf("store: verify: entry %s: index offset %d disagrees with log offset %d", key, ref.info.off, fr.info.off)
		}
	}
	if len(fresh.pins) != len(s.pins) {
		return rep, fmt.Errorf("store: verify: index lists %d pinned runs, log replay %d", len(s.pins), len(fresh.pins))
	}
	for run, keys := range s.pins {
		fk, ok := fresh.pins[run]
		if !ok || !equalStrings(fk, keys) {
			return rep, fmt.Errorf("store: verify: pinned run %q disagrees between index and log", run)
		}
	}
	return rep, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func dirOf(path string) string {
	return filepath.Dir(path)
}
