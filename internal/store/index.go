package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
)

// The sidecar index memoizes the open-time log scan. It is purely
// advisory: the log is always the ground truth, and any index that is
// missing, unparsable, version-skewed, or stale — its recorded log size or
// tail checksum no longer matching the log — is discarded and rebuilt by
// scanning. Staleness is checked against both the log length and the
// sha256 of the log's final bytes, so an index can never be trusted against
// a log that was rewritten (compacted) to the same length.

const indexVersion = 1

// indexTailSpan is how many trailing log bytes the staleness checksum
// covers. Any append moves the tail; any compaction rewrites it.
const indexTailSpan = 4096

type indexFile struct {
	Version int    `json:"version"`
	LogSize int64  `json:"log_size"`
	TailSum string `json:"tail_sum"`

	Entries []indexEntry `json:"entries"`
	Pins    []pinRecord  `json:"pins"`
	PinSeq  []string     `json:"pin_seq"`
}

// indexEntry is one live entry's frame location plus its metadata.
type indexEntry struct {
	Meta
	Off     int64  `json:"off"`
	MetaLen uint32 `json:"meta_len"`
	BodyLen uint32 `json:"body_len"`
}

func (s *Store) indexPath() string { return s.path + ".idx" }

// tailSum hashes the last indexTailSpan bytes of the valid log prefix.
func (s *Store) tailSum(size int64) (string, bool) {
	span := min(size, int64(indexTailSpan))
	buf := make([]byte, span)
	if _, err := s.f.ReadAt(buf, size-span); err != nil {
		return "", false
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:]), true
}

// loadIndex tries to adopt the sidecar index. It reports success only when
// the index is intact and provably fresh against the log on disk; any
// doubt means "scan instead".
func (s *Store) loadIndex(logSize int64) bool {
	data, err := os.ReadFile(s.indexPath())
	if err != nil {
		return false
	}
	var idx indexFile
	if err := json.Unmarshal(data, &idx); err != nil {
		return false
	}
	if idx.Version != indexVersion || idx.LogSize != logSize || idx.LogSize < int64(logHeader) {
		return false
	}
	sum, ok := s.tailSum(logSize)
	if !ok || sum != idx.TailSum {
		return false
	}
	entries := make(map[string]entryRef, len(idx.Entries))
	order := make([]string, 0, len(idx.Entries))
	for _, e := range idx.Entries {
		info := frameInfo{off: e.Off, typ: frameEntry, metaLen: e.MetaLen, bodyLen: e.BodyLen}
		if e.Key == "" || info.off < int64(logHeader) || info.end() > logSize {
			return false
		}
		if _, dup := entries[e.Key]; dup {
			return false
		}
		entries[e.Key] = entryRef{info: info, meta: e.Meta}
		order = append(order, e.Key)
	}
	pins := make(map[string][]string, len(idx.Pins))
	for _, p := range idx.Pins {
		if p.Run == "" {
			return false
		}
		pins[p.Run] = p.Keys
	}
	if len(idx.PinSeq) != len(pins) {
		return false
	}
	for _, run := range idx.PinSeq {
		if _, ok := pins[run]; !ok {
			return false
		}
	}
	s.entries = entries
	s.order = order
	s.pins = pins
	s.pinSeq = idx.PinSeq
	s.size = logSize
	return true
}

// writeIndex rewrites the sidecar index atomically (temp + rename). It is
// best-effort: a store whose index cannot be written still works — the
// next open simply pays for a scan.
func (s *Store) writeIndex() {
	sum, ok := s.tailSum(s.size)
	if !ok {
		return
	}
	idx := indexFile{
		Version: indexVersion,
		LogSize: s.size,
		TailSum: sum,
		Entries: make([]indexEntry, 0, len(s.order)),
		Pins:    make([]pinRecord, 0, len(s.pinSeq)),
		PinSeq:  s.pinSeq,
	}
	for _, key := range s.order {
		ref := s.entries[key]
		idx.Entries = append(idx.Entries, indexEntry{
			Meta: ref.meta, Off: ref.info.off,
			MetaLen: ref.info.metaLen, BodyLen: ref.info.bodyLen,
		})
	}
	for _, run := range s.pinSeq {
		idx.Pins = append(idx.Pins, pinRecord{Run: run, Keys: s.pins[run]})
	}
	data, err := json.Marshal(&idx)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(dirOf(s.path), ".idx.tmp*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.indexPath()); err != nil {
		os.Remove(tmp.Name())
	}
}
