// Package store is the embedded result store behind the suite's
// content-addressed cache: one append-only record log plus a sidecar index,
// stdlib only. Every record is a self-checking frame (sha256 over the whole
// frame, lengths and type included), so the store can never surface torn or
// reordered bytes: a reader either gets the exact bytes a writer appended or
// a clean error, and opening after a crash recovers to the longest valid
// frame prefix of the log.
//
// On top of the log the store keeps the state a fleet of benchmark
// campaigns needs from its history:
//
//   - entries: opaque payloads addressed by key (last append wins, like a
//     content-addressed cache directory), each carrying queryable metadata —
//     suite, campaign, engine, adaptive round, seed, environment
//     descriptors, time of run — and a provenance link to the parent round;
//   - pins: named runs holding sets of keys alive; a key's refcount is the
//     number of runs pinning it;
//   - garbage collection: Unpin plus GC reclaims every entry that no run
//     pins and no pinned entry's round chain references (tombstone frames;
//     the bytes are dropped at the next Compact);
//   - compaction: live frames are rewritten into a fresh log atomically
//     (write-temp + rename), so an interrupted compaction leaves the old
//     log fully readable.
//
// The sidecar index (path + ".idx") is advisory: it memoizes the scan so
// reopening a large store is cheap, and it is rebuilt from the log whenever
// it is missing, unparsable, or stale against the log's size and tail
// checksum. The log alone is always sufficient.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// ErrNotFound reports a key with no live entry.
var ErrNotFound = errors.New("store: entry not found")

// Meta is one entry's queryable metadata, carried in the entry frame beside
// the payload.
type Meta struct {
	// Key is the entry's address (the campaign's content-addressed cache
	// key, for suite-cache entries).
	Key string `json:"key"`
	// Suite, Campaign and Engine identify what produced the payload.
	Suite    string `json:"suite,omitempty"`
	Campaign string `json:"campaign,omitempty"`
	Engine   string `json:"engine,omitempty"`
	// Round is the 1-based adaptive round index; 0 for static campaigns.
	Round int `json:"round,omitempty"`
	// Seed is the campaign seed.
	Seed uint64 `json:"seed,omitempty"`
	// Parent is the cache key of the previous adaptive round's entry — the
	// provenance link Chain follows; empty for round seeds and static
	// campaigns.
	Parent string `json:"parent,omitempty"`
	// Env holds environment descriptors (machine, governor, toolchain …)
	// captured with the run, the surface Query.Env matches against.
	Env map[string]string `json:"env,omitempty"`
	// RanAt is the time of run — when the records were measured; the
	// zero time when the producer recorded none.
	RanAt time.Time `json:"ran_at,omitzero"`
	// StoredAt is when the entry was appended to this store.
	StoredAt time.Time `json:"stored_at"`
	// Size is the payload length in bytes.
	Size int64 `json:"size"`
}

// entryRef locates one live entry's frame inside the log.
type entryRef struct {
	info frameInfo
	meta Meta
}

// Options tunes Open.
type Options struct {
	// ReadOnly opens the log without write access: no header creation, no
	// torn-tail truncation (a torn tail is simply ignored), no index
	// rewrite, and every mutating method fails.
	ReadOnly bool
	// Now is the clock Put stamps StoredAt with; nil means time.Now. Tests
	// inject a fixed clock to make metadata deterministic.
	Now func() time.Time
}

// Store is an open result store. All methods are safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	f    *os.File
	path string
	ro   bool
	now  func() time.Time
	// broken latches the first append failure whose cleanup (truncating
	// back to the valid prefix) also failed: past that point the in-memory
	// state and the log may disagree, so every mutation refuses.
	broken error

	size    int64               // end of the valid frame prefix
	entries map[string]entryRef // live entries by key
	order   []string            // live keys in frame-offset order
	pins    map[string][]string // run → pinned keys (sorted)
	pinSeq  []string            // runs in first-pin order
}

// Open opens (creating, unless ReadOnly) the store log at path. A log with
// a torn tail — a crashed writer's partial frame — is recovered to its
// longest valid frame prefix: read-write opens truncate the tail away,
// read-only opens ignore it. The sidecar index is consulted first and
// rebuilt from the log when missing or stale.
func Open(path string, opts Options) (*Store, error) {
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	s := &Store{
		path:    path,
		ro:      opts.ReadOnly,
		now:     now,
		entries: map[string]entryRef{},
		pins:    map[string][]string{},
	}
	flag := os.O_RDWR | os.O_CREATE
	if opts.ReadOnly {
		flag = os.O_RDONLY
	}
	f, err := os.OpenFile(path, flag, 0o666)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s.f = f
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recover brings the in-memory state up from disk: header check (new files
// get one written), index load or full log scan, and torn-tail truncation
// on read-write opens.
func (s *Store) recover() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: open: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		if s.ro {
			s.size = 0
			return nil // an empty file is an empty store
		}
		if _, err := s.f.Write([]byte(logMagic)); err != nil {
			return fmt.Errorf("store: write header: %w", err)
		}
		s.size = int64(logHeader)
		return nil
	}
	head := make([]byte, min(size, int64(logHeader)))
	if _, err := s.f.ReadAt(head, 0); err != nil {
		return fmt.Errorf("store: read header: %w", err)
	}
	if string(head) != logMagic[:len(head)] {
		return fmt.Errorf("store: %s is not a store log (bad header)", s.path)
	}
	if size < int64(logHeader) {
		// A crash while the header itself was being written: the file is a
		// strict prefix of the magic, so it holds no frames. Recover it to
		// an empty store (read-only opens keep the prefix untouched).
		if s.ro {
			s.size = size
			return nil
		}
		if err := s.f.Truncate(0); err != nil {
			return fmt.Errorf("store: recover header: %w", err)
		}
		if _, err := s.f.WriteAt([]byte(logMagic), 0); err != nil {
			return fmt.Errorf("store: recover header: %w", err)
		}
		s.size = int64(logHeader)
		return nil
	}

	if s.loadIndex(size) {
		return nil
	}
	if err := s.scan(size); err != nil {
		return err
	}
	if !s.ro {
		if s.size < size {
			// Torn tail: a crashed writer's partial frame. Drop it so new
			// appends extend the valid prefix instead of burying bytes
			// after garbage.
			if err := s.f.Truncate(s.size); err != nil {
				return fmt.Errorf("store: truncate torn tail: %w", err)
			}
		}
		s.writeIndex() // best-effort memoization of the scan
	}
	return nil
}

// scan replays the whole log from disk, stopping at the first frame that
// does not verify. It is the ground truth the index memoizes.
func (s *Store) scan(size int64) error {
	buf := make([]byte, size)
	if _, err := s.f.ReadAt(buf, 0); err != nil {
		return fmt.Errorf("store: scan: %w", err)
	}
	s.entries = map[string]entryRef{}
	s.order = nil
	s.pins = map[string][]string{}
	s.pinSeq = nil
	off := int64(logHeader)
	for off < size {
		info, ok := decodeFrame(buf, off)
		if !ok {
			break // torn or corrupt: the valid prefix ends here
		}
		meta := buf[info.metaOff():info.bodyOff()]
		if !s.apply(info, meta) {
			break // intact frame, unparsable metadata: treat as corrupt
		}
		off = info.end()
	}
	s.size = off
	return nil
}

// apply folds one verified frame into the in-memory state. It reports
// whether the frame's metadata parsed; a frame that checksums but does not
// parse ends the valid prefix, exactly like a torn frame.
func (s *Store) apply(info frameInfo, metaJSON []byte) bool {
	switch info.typ {
	case frameEntry:
		var m Meta
		if err := json.Unmarshal(metaJSON, &m); err != nil || m.Key == "" {
			return false
		}
		s.setEntry(m.Key, entryRef{info: info, meta: m})
	case framePin:
		var p pinRecord
		if err := json.Unmarshal(metaJSON, &p); err != nil || p.Run == "" {
			return false
		}
		s.setPin(p.Run, p.Keys)
	case frameUnpin:
		var p pinRecord
		if err := json.Unmarshal(metaJSON, &p); err != nil || p.Run == "" {
			return false
		}
		s.dropPin(p.Run)
	case frameTombstone:
		var tr tombRecord
		if err := json.Unmarshal(metaJSON, &tr); err != nil || tr.Key == "" {
			return false
		}
		s.dropEntry(tr.Key)
	}
	return true
}

func (s *Store) setEntry(key string, ref entryRef) {
	if _, live := s.entries[key]; !live {
		s.order = append(s.order, key)
	}
	s.entries[key] = ref
}

func (s *Store) dropEntry(key string) {
	if _, live := s.entries[key]; !live {
		return
	}
	delete(s.entries, key)
	for i, k := range s.order {
		if k == key {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

func (s *Store) setPin(run string, keys []string) {
	if _, live := s.pins[run]; !live {
		s.pinSeq = append(s.pinSeq, run)
	}
	s.pins[run] = keys
}

func (s *Store) dropPin(run string) {
	if _, live := s.pins[run]; !live {
		return
	}
	delete(s.pins, run)
	for i, r := range s.pinSeq {
		if r == run {
			s.pinSeq = append(s.pinSeq[:i], s.pinSeq[i+1:]...)
			break
		}
	}
}

// Path returns the log path.
func (s *Store) Path() string { return s.path }

// Close writes the sidecar index (read-write stores) and releases the log.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	if !s.ro && s.broken == nil {
		s.writeIndex()
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Sync flushes the log to stable storage and rewrites the sidecar index.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	s.writeIndex()
	return nil
}

func (s *Store) usable() error {
	if s.f == nil {
		return errors.New("store: closed")
	}
	if s.broken != nil {
		return fmt.Errorf("store: unusable after append failure: %w", s.broken)
	}
	if s.ro {
		return errors.New("store: read-only")
	}
	return nil
}

// append writes one encoded frame at the end of the valid prefix and
// advances it. On a short or failed write it truncates back so the log
// never grows an unreadable middle; if even that fails, the store latches
// broken and refuses further mutations.
func (s *Store) append(frame []byte) (int64, error) {
	off := s.size
	n, err := s.f.WriteAt(frame, off)
	if err != nil {
		if n > 0 {
			if terr := s.f.Truncate(off); terr != nil {
				s.broken = terr
			}
		}
		return 0, fmt.Errorf("store: append: %w", err)
	}
	s.size = off + int64(len(frame))
	return off, nil
}

// Put appends one entry under key, replacing any live entry with the same
// key (last append wins, the same overwrite semantics as a cache
// directory). The meta's Key, StoredAt and Size fields are stamped by the
// store; everything else is the caller's.
func (s *Store) Put(key string, payload []byte, m Meta) error {
	if key == "" {
		return errors.New("store: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usable(); err != nil {
		return err
	}
	m.Key = key
	m.StoredAt = s.now().UTC()
	m.Size = int64(len(payload))
	frame, err := encodeFrame(frameEntry, &m, payload)
	if err != nil {
		return err
	}
	off, err := s.append(frame)
	if err != nil {
		return err
	}
	info, ok := decodeFrame(frame, 0)
	if !ok {
		return errors.New("store: internal: encoded frame does not verify")
	}
	info.off = off
	s.setEntry(key, entryRef{info: info, meta: m})
	return nil
}

// Get returns the payload stored under key. The frame is re-read from disk
// and its checksum re-verified on every call, so bytes that rotted or were
// overwritten out-of-band surface as an error, never as silent corruption.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.f == nil {
		return nil, errors.New("store: closed")
	}
	ref, ok := s.entries[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	frame := make([]byte, ref.info.end()-ref.info.off)
	if _, err := s.f.ReadAt(frame, ref.info.off); err != nil {
		return nil, fmt.Errorf("store: read %s: %w", key, err)
	}
	info, ok := decodeFrame(frame, 0)
	if !ok || info.typ != frameEntry {
		return nil, fmt.Errorf("store: entry %s: frame at offset %d failed verification", key, ref.info.off)
	}
	return frame[info.bodyOff() : info.bodyOff()+int64(info.bodyLen)], nil
}

// Has reports whether a live entry exists for key.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.entries[key]
	return ok
}

// Stat returns the metadata of the live entry for key.
func (s *Store) Stat(key string) (Meta, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ref, ok := s.entries[key]
	if !ok {
		return Meta{}, false
	}
	return ref.meta.clone(), true
}

// Keys returns every live entry key, sorted.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len reports the number of live entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// LogSize reports the valid log prefix length in bytes.
func (s *Store) LogSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}

func (m Meta) clone() Meta {
	if m.Env != nil {
		env := make(map[string]string, len(m.Env))
		for k, v := range m.Env {
			env[k] = v
		}
		m.Env = env
	}
	return m
}
