package store

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
	"unicode/utf8"
)

// corpusEmpty, corpusTruncatedChecksum and corpusDuplicateKey build the
// three named seed corpora deterministically; they are also checked in
// under testdata/fuzz/FuzzStoreOpen so `go test` exercises them even
// without -fuzz.
func corpusEmpty() []byte { return nil }

func corpusValid(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	path := filepath.Join(dir, "seed.store")
	s, err := Open(path, Options{Now: func() time.Time { return time.Unix(0, 0).UTC() }})
	if err != nil {
		tb.Fatal(err)
	}
	key, payload, m := testEntry(0)
	if err := s.Put(key, payload, m); err != nil {
		tb.Fatal(err)
	}
	if err := s.Pin("run", key); err != nil {
		tb.Fatal(err)
	}
	s.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

func corpusTruncatedChecksum(tb testing.TB) []byte {
	data := corpusValid(tb)
	return data[:len(data)-sumSize/2] // half the final frame's checksum gone
}

func corpusDuplicateKey(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	path := filepath.Join(dir, "dup.store")
	s, err := Open(path, Options{Now: func() time.Time { return time.Unix(0, 0).UTC() }})
	if err != nil {
		tb.Fatal(err)
	}
	key, payload, m := testEntry(0)
	if err := s.Put(key, payload, m); err != nil {
		tb.Fatal(err)
	}
	if err := s.Put(key, append(payload, '!'), m); err != nil {
		tb.Fatal(err)
	}
	s.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// writeFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzStoreOpen. Run with
//
//	go test ./internal/store -run TestWriteFuzzCorpus -write-fuzz-corpus
//
// after changing the log format. The builders are deterministic (fixed
// clock), so regeneration is reproducible.
var writeFuzzCorpus = flag.Bool("write-fuzz-corpus", false, "regenerate testdata/fuzz seed corpora")

func TestWriteFuzzCorpus(t *testing.T) {
	if !*writeFuzzCorpus {
		t.Skip("run with -write-fuzz-corpus to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzStoreOpen")
	if err := os.MkdirAll(dir, 0o777); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"empty":              corpusEmpty(),
		"truncated-checksum": corpusTruncatedChecksum(t),
		"duplicate-key":      corpusDuplicateKey(t),
	} {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzStoreOpen: arbitrary bytes as a store log must never panic — every
// input yields either a clean error or a valid store whose every surfaced
// entry round-trips its checksum.
func FuzzStoreOpen(f *testing.F) {
	f.Add(corpusEmpty())
	f.Add([]byte(logMagic))
	f.Add([]byte(logMagic[:5]))
	f.Add(corpusValid(f))
	f.Add(corpusTruncatedChecksum(f))
	f.Add(corpusDuplicateKey(f))
	f.Add(append([]byte(logMagic), frameMagic[0], frameMagic[1], frameMagic[2], frameMagic[3], frameEntry, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.store")
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Skip()
		}
		for _, ro := range []bool{true, false} {
			// Each mode gets its own copy: the read-write open may truncate.
			p := filepath.Join(dir, map[bool]string{true: "ro.store", false: "rw.store"}[ro])
			if err := os.WriteFile(p, data, 0o666); err != nil {
				t.Skip()
			}
			s, err := Open(p, Options{ReadOnly: ro})
			if err != nil {
				continue // clean error is a valid outcome
			}
			for _, key := range s.Keys() {
				if _, err := s.Get(key); err != nil {
					t.Errorf("ro=%v: surfaced entry %q does not verify: %v", ro, key, err)
				}
				if m, ok := s.Stat(key); !ok || m.Key != key {
					t.Errorf("ro=%v: Stat(%q) inconsistent: %+v %v", ro, key, m, ok)
				}
			}
			if _, err := s.Verify(); err != nil {
				t.Errorf("ro=%v: opened store fails Verify: %v", ro, err)
			}
			s.Close()
		}
	})
}

// FuzzFrameRoundTrip: encode→decode is a fixed point for every
// representable frame, and decoding arbitrary mutations never panics.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add("somekey", []byte(`{"x":1}`), byte(0), byte(0))
	f.Add("", []byte{}, byte(1), byte(0xff))
	f.Add("k", bytes.Repeat([]byte{0}, 1024), byte(2), byte(7))
	f.Add("run", []byte("payload"), byte(3), byte(128))

	types := []byte{frameEntry, framePin, frameUnpin, frameTombstone}
	f.Fuzz(func(t *testing.T, key string, body []byte, typSel, flip byte) {
		if !utf8.ValidString(key) {
			t.Skip() // JSON round-trips only valid UTF-8 strings verbatim
		}
		typ := types[int(typSel)%len(types)]
		var metaRec any
		switch typ {
		case frameEntry:
			metaRec = &Meta{Key: key, Campaign: "c", Size: int64(len(body))}
		case framePin:
			metaRec = &pinRecord{Run: key, Keys: []string{"a", "b"}}
		case frameUnpin:
			metaRec = &pinRecord{Run: key}
		case frameTombstone:
			metaRec = &tombRecord{Key: key}
			body = nil // tombstones carry no payload
		}
		frame, err := encodeFrame(typ, metaRec, body)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}

		info, ok := decodeFrame(frame, 0)
		if !ok {
			t.Fatalf("freshly encoded frame does not decode (typ %c, key %q, %d body bytes)", typ, key, len(body))
		}
		if info.typ != typ || int(info.bodyLen) != len(body) || info.end() != int64(len(frame)) {
			t.Fatalf("decode mismatch: %+v vs typ %c body %d len %d", info, typ, len(body), len(frame))
		}
		gotBody := frame[info.bodyOff() : info.bodyOff()+int64(info.bodyLen)]
		if !bytes.Equal(gotBody, body) {
			t.Fatal("body bytes not a fixed point")
		}
		gotMeta := frame[info.metaOff():info.bodyOff()]
		reenc, err := json.Marshal(metaRec)
		if err != nil || !bytes.Equal(gotMeta, reenc) {
			t.Fatalf("meta bytes not a fixed point: %q vs %q (%v)", gotMeta, reenc, err)
		}

		// A single flipped byte anywhere in the frame must kill it — the
		// checksum covers every byte. (flip==0 would be a no-op; force a
		// real flip.)
		mut := append([]byte(nil), frame...)
		pos := int(typSel) % len(mut)
		bit := flip
		if bit == 0 {
			bit = 1
		}
		mut[pos] ^= bit
		if _, ok := decodeFrame(mut, 0); ok {
			t.Fatalf("frame with byte %d xor %#x still decodes", pos, bit)
		}

		// Decoding at every offset of the mutated frame must not panic and
		// never yields a frame extending past the buffer.
		for off := int64(0); off <= int64(len(mut)); off++ {
			if in, ok := decodeFrame(mut, off); ok && in.end() > int64(len(mut)) {
				t.Fatalf("decode at %d overruns the buffer", off)
			}
		}
	})
}
