package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// buildCrashFixture writes a multi-entry store and returns its log bytes
// plus the cumulative frame-end offsets (the legal recovery points): after
// the header, each element of ends[i] is the end of the i-th frame. The
// fixture mixes every frame type so recovery is proven for all of them:
// three entries, a pin, an overwrite of entry 1, a tombstone for entry 2,
// and an unpin.
func buildCrashFixture(t *testing.T) (log []byte, ends []int64, keys []string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "fixture.store")
	s := openTest(t, path)

	sizeAfter := func() int64 { return s.LogSize() }
	mark := func() { ends = append(ends, sizeAfter()) }

	for i := 0; i < 3; i++ {
		key, payload, m := testEntry(i)
		if err := s.Put(key, payload, m); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
		mark()
	}
	if err := s.Pin("run-a", keys[0], keys[1]); err != nil {
		t.Fatal(err)
	}
	mark()
	if err := s.Put(keys[1], []byte(`{"records":[],"rewritten":true}`), Meta{Campaign: "rewrite"}); err != nil {
		t.Fatal(err)
	}
	mark()
	// Tombstone keys[2] the way GC would: unpinned and unreferenced, it is
	// the only reclaimable entry.
	dead, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 || dead[0] != keys[2] {
		t.Fatalf("GC reclaimed %v, want [%s]", dead, keys[2])
	}
	mark()
	if err := s.Unpin("run-a"); err != nil {
		t.Fatal(err)
	}
	mark()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	log, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ends[len(ends)-1] != int64(len(log)) {
		t.Fatalf("fixture bookkeeping: last frame ends at %d, log is %d bytes", ends[len(ends)-1], len(log))
	}
	return log, ends, keys
}

// expectedState computes the state a reader must see when only the first n
// frames of the fixture survive.
func expectedState(keys []string, frames int) (live []string, pins int) {
	switch {
	case frames == 0:
		return nil, 0
	case frames <= 3: // entries 0..frames-1
		return keys[:frames], 0
	case frames == 4: // + pin run-a
		return keys, 1
	case frames == 5: // + overwrite of keys[1]
		return keys, 1
	case frames == 6: // + tombstone keys[2]
		return keys[:2], 1
	default: // + unpin
		return keys[:2], 0
	}
}

// TestCrashTruncationEveryOffset is the crash-injection battery: the log is
// truncated at every byte offset, reopened read-write, and the recovered
// state must be exactly the longest valid frame prefix — never a torn
// entry, never a frame beyond the cut, and the file must be usable for
// appends afterwards.
func TestCrashTruncationEveryOffset(t *testing.T) {
	log, ends, keys := buildCrashFixture(t)
	dir := t.TempDir()

	// frame ends as recovery points: framesAt(cut) = number of whole
	// frames within the first cut bytes.
	framesAt := func(cut int64) int {
		n := 0
		for _, e := range ends {
			if e <= cut {
				n++
			}
		}
		return n
	}

	for cut := int64(0); cut <= int64(len(log)); cut++ {
		path := filepath.Join(dir, "cut.store") // reused; each iteration rewrites it
		if err := os.WriteFile(path, log[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		os.Remove(path + ".idx") // no index: force the scan path every time
		s, err := Open(path, Options{Now: fixedClock()})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		frames := framesAt(cut)
		wantLive, wantPins := expectedState(keys, frames)

		gotKeys := s.Keys()
		if len(gotKeys) != len(wantLive) {
			t.Fatalf("cut %d (%d frames): %d live entries %v, want %d", cut, frames, len(gotKeys), gotKeys, len(wantLive))
		}
		for _, k := range wantLive {
			if !s.Has(k) {
				t.Fatalf("cut %d (%d frames): entry %s missing", cut, frames, k)
			}
			// The payload must be intact — a torn entry surfacing would
			// fail here.
			if _, err := s.Get(k); err != nil {
				t.Fatalf("cut %d: Get(%s): %v", cut, k, err)
			}
		}
		if got := len(s.Pins()); got != wantPins {
			t.Fatalf("cut %d (%d frames): %d pinned runs, want %d", cut, frames, got, wantPins)
		}
		if _, err := s.Verify(); err != nil {
			t.Fatalf("cut %d: Verify after recovery: %v", cut, err)
		}

		// Recovery must leave the log appendable: a fresh entry lands after
		// the valid prefix and survives another reopen.
		key, payload, m := testEntry(9)
		if err := s.Put(key, payload, m); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		s2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		got, err := s2.Get(key)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("cut %d: appended entry after recovery: %q, %v", cut, got, err)
		}
		s2.Close()
	}
}

// TestTornTailTruncatedOnOpen pins down the repair semantics: a read-write
// open physically truncates a torn tail, a read-only open leaves the file
// bytes untouched.
func TestTornTailTruncatedOnOpen(t *testing.T) {
	log, ends, _ := buildCrashFixture(t)
	cut := ends[2] + 7 // mid-frame: inside the pin frame
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.store")
	if err := os.WriteFile(path, log[:cut], 0o666); err != nil {
		t.Fatal(err)
	}

	ro, err := Open(path, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := ro.LogSize(); got != ends[2] {
		t.Errorf("read-only valid prefix = %d, want %d", got, ends[2])
	}
	ro.Close()
	if fi, _ := os.Stat(path); fi.Size() != cut {
		t.Errorf("read-only open modified the file: %d bytes, want %d", fi.Size(), cut)
	}

	rw, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rw.Close()
	if fi, _ := os.Stat(path); fi.Size() != ends[2] {
		t.Errorf("read-write open left %d bytes, want the torn tail truncated to %d", fi.Size(), ends[2])
	}
}
