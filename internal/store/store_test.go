package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fixedClock returns a deterministic strictly increasing clock starting at
// a fixed instant, so StoredAt metadata is reproducible across runs.
func fixedClock() func() time.Time {
	t := time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func openTest(t *testing.T, path string) *Store {
	t.Helper()
	s, err := Open(path, Options{Now: fixedClock()})
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// testEntry is a small deterministic payload/metadata pair.
func testEntry(i int) (string, []byte, Meta) {
	key := fmt.Sprintf("%064x", i+1)
	payload := []byte(fmt.Sprintf(`{"records":[{"seq":%d,"value":%d.5}]}`, i, i))
	m := Meta{
		Suite:    "s",
		Campaign: fmt.Sprintf("c%02d", i),
		Engine:   "membench",
		Seed:     uint64(100 + i),
		Env:      map[string]string{"machine": "i7"},
		RanAt:    time.Date(2026, 8, 1, 0, 0, i, 0, time.UTC),
	}
	return key, payload, m
}

func TestPutGetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.store")
	s := openTest(t, path)
	var keys []string
	for i := 0; i < 5; i++ {
		key, payload, m := testEntry(i)
		if err := s.Put(key, payload, m); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		keys = append(keys, key)
	}
	for i, key := range keys {
		_, want, _ := testEntry(i)
		got, err := s.Get(key)
		if err != nil {
			t.Fatalf("Get %s: %v", key, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("entry %d: payload %q, want %q", i, got, want)
		}
		m, ok := s.Stat(key)
		if !ok || m.Campaign != fmt.Sprintf("c%02d", i) || m.Size != int64(len(want)) {
			t.Errorf("entry %d: meta %+v", i, m)
		}
		if m.StoredAt.IsZero() {
			t.Errorf("entry %d: StoredAt not stamped", i)
		}
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d, want 5", s.Len())
	}
	if _, err := s.Get("doesnotexist"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key: err = %v, want ErrNotFound", err)
	}
}

func TestDuplicateKeyLastWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.store")
	s := openTest(t, path)
	key, p1, m := testEntry(0)
	if err := s.Put(key, p1, m); err != nil {
		t.Fatal(err)
	}
	p2 := []byte(`{"records":[],"v":2}`)
	m.Campaign = "rewritten"
	if err := s.Put(key, p2, m); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil || !bytes.Equal(got, p2) {
		t.Fatalf("after overwrite: %q, %v; want %q", got, err, p2)
	}
	if s.Len() != 1 || len(s.Keys()) != 1 {
		t.Errorf("Len=%d Keys=%v, want one live entry", s.Len(), s.Keys())
	}
	if sm, _ := s.Stat(key); sm.Campaign != "rewritten" {
		t.Errorf("meta not replaced: %+v", sm)
	}
	// Reopen replays the same last-wins state from the log.
	s.Close()
	s2 := openTest(t, path)
	got, err = s2.Get(key)
	if err != nil || !bytes.Equal(got, p2) {
		t.Fatalf("after reopen: %q, %v; want %q", got, err, p2)
	}
}

func TestReopenUsesIndexAndRebuildsWhenStale(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.store")
	s := openTest(t, path)
	for i := 0; i < 3; i++ {
		key, payload, m := testEntry(i)
		if err := s.Put(key, payload, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Pin("run-a", s.Keys()...); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".idx"); err != nil {
		t.Fatalf("no sidecar index after Close: %v", err)
	}

	// A fresh open adopts the index (same state either way; prove it by a
	// full Verify, which cross-checks index against log).
	s2 := openTest(t, path)
	if got := s2.Len(); got != 3 {
		t.Fatalf("reopen: %d entries, want 3", got)
	}
	if _, err := s2.Verify(); err != nil {
		t.Fatalf("Verify after index load: %v", err)
	}
	// Appending moves the tail; the on-disk index is now stale.
	key, payload, m := testEntry(7)
	if err := s2.Put(key, payload, m); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	// Corrupt the index outright: open must fall back to the scan.
	if err := os.WriteFile(path+".idx", []byte("garbage"), 0o666); err != nil {
		t.Fatal(err)
	}
	s3 := openTest(t, path)
	if got := s3.Len(); got != 4 {
		t.Fatalf("after corrupt index: %d entries, want 4", got)
	}
	if _, err := s3.Verify(); err != nil {
		t.Fatalf("Verify after index rebuild: %v", err)
	}
	pins := s3.Pins()
	if len(pins) != 1 || pins[0].Run != "run-a" || len(pins[0].Keys) != 3 {
		t.Fatalf("pins lost across rebuild: %+v", pins)
	}
}

// TestStaleIndexSameSizeDetected: an index whose recorded size matches but
// whose log bytes changed (the compaction scenario) is rejected by the
// tail checksum.
func TestStaleIndexSameSizeDetected(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.store"), filepath.Join(dir, "b.store")
	for i, path := range []string{a, b} {
		s := openTest(t, path)
		key, payload, m := testEntry(i) // different entry per store, same frame sizes? not guaranteed
		_ = key
		if err := s.Put(fmt.Sprintf("%064x", 99), payload, m); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
	// Same key, same payload lengths → same log size, different bytes
	// (campaign differs). Swap b's log under a's index.
	la, _ := os.ReadFile(a)
	lb, _ := os.ReadFile(b)
	if len(la) != len(lb) {
		t.Skipf("fixture logs differ in size (%d vs %d); tail-sum path not exercisable here", len(la), len(lb))
	}
	if err := os.WriteFile(a, lb, 0o666); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, a)
	m, ok := s.Stat(fmt.Sprintf("%064x", 99))
	if !ok {
		t.Fatal("entry lost")
	}
	if m.Campaign != "c01" {
		t.Errorf("stale same-size index was trusted: campaign %q, want c01 (from the swapped log)", m.Campaign)
	}
	if _, err := s.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestReadOnlyOpenRefusesMutation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.store")
	s := openTest(t, path)
	key, payload, m := testEntry(0)
	if err := s.Put(key, payload, m); err != nil {
		t.Fatal(err)
	}
	s.Close()

	ro, err := Open(path, Options{ReadOnly: true})
	if err != nil {
		t.Fatalf("read-only open: %v", err)
	}
	defer ro.Close()
	if got, err := ro.Get(key); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read-only Get: %q, %v", got, err)
	}
	if err := ro.Put("ff", []byte("x"), Meta{}); err == nil {
		t.Error("read-only Put succeeded")
	}
	if err := ro.Pin("r", key); err == nil {
		t.Error("read-only Pin succeeded")
	}
	if _, err := ro.GC(); err == nil {
		t.Error("read-only GC succeeded")
	}
	if err := ro.Compact(); err == nil {
		t.Error("read-only Compact succeeded")
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-store")
	if err := os.WriteFile(path, []byte("this is just some text file\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("read-write open of a foreign file succeeded; it must refuse rather than clobber")
	}
	if _, err := Open(path, Options{ReadOnly: true}); err == nil {
		t.Fatal("read-only open of a foreign file succeeded")
	}
	data, _ := os.ReadFile(path)
	if string(data) != "this is just some text file\n" {
		t.Fatalf("foreign file was modified: %q", data)
	}
}

func TestVerifyDetectsBitRot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.store")
	s := openTest(t, path)
	for i := 0; i < 3; i++ {
		key, payload, m := testEntry(i)
		if err := s.Put(key, payload, m); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Verify(); err != nil {
		t.Fatalf("clean Verify: %v", err)
	}
	// Flip one payload byte in the middle of the log, out-of-band.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := s.LogSize() / 2
	buf := []byte{0}
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xff
	if _, err := f.WriteAt(buf, off); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := s.Verify(); err == nil {
		t.Fatal("Verify missed a flipped byte")
	}
	// And Get must refuse to serve the rotted entry rather than hand back
	// corrupt bytes — whichever entry the flipped byte landed in.
	rotted := 0
	for i := 0; i < 3; i++ {
		key, want, _ := testEntry(i)
		got, err := s.Get(key)
		if err != nil {
			rotted++
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("entry %d: served corrupt bytes", i)
		}
	}
	if rotted == 0 {
		t.Error("no Get reported the rot (flip may have hit a checksum byte of a frame that still fails — expected at least one error)")
	}
}
