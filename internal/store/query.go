package store

import (
	"fmt"
	"time"
)

// Query selects live entries by metadata. Zero-valued fields do not
// filter; set fields must all match (conjunction).
type Query struct {
	// Suite, Campaign and Engine match exactly when non-empty.
	Suite    string
	Campaign string
	Engine   string
	// KeyPrefix matches keys by prefix — the CLI's short-hash ergonomics.
	KeyPrefix string
	// Round, when non-nil, matches the adaptive round index exactly
	// (0 selects static entries).
	Round *int
	// Run restricts to keys pinned by the named run.
	Run string
	// Since and Until bound the time of run: Since ≤ RanAt < Until. Either
	// side may be zero. Entries with no recorded RanAt fall back to their
	// StoredAt, so imported legacy entries stay addressable by time.
	Since, Until time.Time
	// Env requires every given descriptor to be present with the given
	// value ("machine" = "i7", …).
	Env map[string]string
}

// When is the instant time filters run against: the time of run when the
// producer recorded one, else the time the entry entered the store.
func (m *Meta) When() time.Time {
	if !m.RanAt.IsZero() {
		return m.RanAt
	}
	return m.StoredAt
}

func (q *Query) matches(m *Meta, pinned map[string]bool) bool {
	if q.Suite != "" && m.Suite != q.Suite {
		return false
	}
	if q.Campaign != "" && m.Campaign != q.Campaign {
		return false
	}
	if q.Engine != "" && m.Engine != q.Engine {
		return false
	}
	if q.KeyPrefix != "" && (len(m.Key) < len(q.KeyPrefix) || m.Key[:len(q.KeyPrefix)] != q.KeyPrefix) {
		return false
	}
	if q.Round != nil && m.Round != *q.Round {
		return false
	}
	if pinned != nil && !pinned[m.Key] {
		return false
	}
	when := m.When()
	if !q.Since.IsZero() && when.Before(q.Since) {
		return false
	}
	if !q.Until.IsZero() && !when.Before(q.Until) {
		return false
	}
	for k, v := range q.Env {
		if m.Env[k] != v {
			return false
		}
	}
	return true
}

// Query returns the metadata of every live entry the query selects, in log
// append order — the store's deterministic notion of history (compaction
// preserves it). Returned metas are independent copies.
func (s *Store) Query(q Query) []Meta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var pinned map[string]bool
	if q.Run != "" {
		pinned = map[string]bool{}
		for _, k := range s.pins[q.Run] {
			pinned[k] = true
		}
	}
	var out []Meta
	for _, key := range s.order {
		ref := s.entries[key]
		if q.matches(&ref.meta, pinned) {
			out = append(out, ref.meta.clone())
		}
	}
	return out
}

// Chain returns the provenance chain ending at key — the entry's metadata
// preceded by its transitive parents, oldest (the seed round) first. A
// parent link pointing at a reclaimed or never-stored key ends the chain
// there; a cycle (only constructible by hand-crafted metadata) is an
// error.
func (s *Store) Chain(key string) ([]Meta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ref, ok := s.entries[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	var rev []Meta
	seen := map[string]bool{}
	for {
		if seen[ref.meta.Key] {
			return nil, fmt.Errorf("store: provenance cycle through %s", ref.meta.Key)
		}
		seen[ref.meta.Key] = true
		rev = append(rev, ref.meta.clone())
		parent := ref.meta.Parent
		if parent == "" {
			break
		}
		ref, ok = s.entries[parent]
		if !ok {
			break
		}
	}
	out := make([]Meta, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out, nil
}
