package store

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildQueryFixture populates a store with a varied population:
//
//	k0  suite=alpha campaign=stream engine=membench round=0 env{machine:i7}  ran 10:00
//	k1  suite=alpha campaign=stream engine=sleep    round=0 env{machine:i7}  ran 11:00
//	k2  suite=alpha campaign=adapt  engine=membench round=1 env{machine:arm} ran 12:00
//	k3  suite=alpha campaign=adapt  engine=membench round=2 env{machine:arm} ran 13:00  parent=k2
//	k4  suite=beta  campaign=other  engine=membench round=0 env{}            (no RanAt)
//
// plus pins: run "first" over {k0,k1}, run "second" over {k2,k3}.
func buildQueryFixture(t *testing.T) (*Store, []string) {
	t.Helper()
	s := openTest(t, filepath.Join(t.TempDir(), "q.store"))
	day := time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC)
	metas := []Meta{
		{Suite: "alpha", Campaign: "stream", Engine: "membench", Env: map[string]string{"machine": "i7"}, RanAt: day.Add(10 * time.Hour)},
		{Suite: "alpha", Campaign: "stream", Engine: "sleep", Env: map[string]string{"machine": "i7"}, RanAt: day.Add(11 * time.Hour)},
		{Suite: "alpha", Campaign: "adapt", Engine: "membench", Round: 1, Env: map[string]string{"machine": "arm"}, RanAt: day.Add(12 * time.Hour)},
		{Suite: "alpha", Campaign: "adapt", Engine: "membench", Round: 2, Env: map[string]string{"machine": "arm"}, RanAt: day.Add(13 * time.Hour)},
		{Suite: "beta", Campaign: "other", Engine: "membench"},
	}
	keys := make([]string, len(metas))
	for i, m := range metas {
		keys[i] = fmt.Sprintf("%02x%s", i, strings.Repeat("ab", 31))
		if i == 3 {
			m.Parent = keys[2]
		}
		if err := s.Put(keys[i], []byte(fmt.Sprintf(`{"i":%d}`, i)), m); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Pin("first", keys[0], keys[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Pin("second", keys[2], keys[3]); err != nil {
		t.Fatal(err)
	}
	return s, keys
}

func queryKeys(s *Store, q Query) []string {
	var out []string
	for _, m := range s.Query(q) {
		out = append(out, m.Key)
	}
	return out
}

func TestQueryFilters(t *testing.T) {
	s, k := buildQueryFixture(t)
	day := time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC)
	round2 := 2
	static := 0

	cases := []struct {
		name string
		q    Query
		want []string
	}{
		{"all, in append order", Query{}, []string{k[0], k[1], k[2], k[3], k[4]}},
		{"by suite", Query{Suite: "beta"}, []string{k[4]}},
		{"by campaign", Query{Campaign: "adapt"}, []string{k[2], k[3]}},
		{"by engine", Query{Engine: "sleep"}, []string{k[1]}},
		{"by key prefix", Query{KeyPrefix: "03"}, []string{k[3]}},
		{"by round", Query{Round: &round2}, []string{k[3]}},
		{"round zero means static", Query{Round: &static}, []string{k[0], k[1], k[4]}},
		{"by pinning run", Query{Run: "second"}, []string{k[2], k[3]}},
		{"unknown run matches nothing", Query{Run: "nope"}, nil},
		{"env subset", Query{Env: map[string]string{"machine": "arm"}}, []string{k[2], k[3]}},
		{"env value mismatch", Query{Env: map[string]string{"machine": "m1"}}, nil},
		{"since is inclusive", Query{Since: day.Add(12 * time.Hour)}, []string{k[2], k[3], k[4]}}, // k4 falls back to StoredAt (2026-08-07 clock)
		{"until is exclusive", Query{Until: day.Add(12 * time.Hour)}, []string{k[0], k[1]}},
		{"window", Query{Since: day.Add(11 * time.Hour), Until: day.Add(13 * time.Hour)}, []string{k[1], k[2]}},
		{"conjunction", Query{Suite: "alpha", Engine: "membench", Env: map[string]string{"machine": "i7"}}, []string{k[0]}},
		{"conjunction excludes", Query{Campaign: "stream", Run: "second"}, nil},
	}
	for _, tc := range cases {
		got := queryKeys(s, tc.q)
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
				break
			}
		}
	}
}

// TestQueryWhenFallsBackToStoredAt: entries with no recorded run time stay
// addressable by time filters through their StoredAt.
func TestQueryWhenFallsBackToStoredAt(t *testing.T) {
	s, k := buildQueryFixture(t)
	m, ok := s.Stat(k[4])
	if !ok {
		t.Fatal("fixture entry missing")
	}
	if m.When() != m.StoredAt {
		t.Fatalf("When() = %v, want StoredAt %v", m.When(), m.StoredAt)
	}
	got := queryKeys(s, Query{Since: m.StoredAt, Until: m.StoredAt.Add(time.Second)})
	if len(got) != 1 || got[0] != k[4] {
		t.Errorf("time window around StoredAt selected %v, want [%s]", got, k[4])
	}
}

// TestQueryResultsAreCopies: mutating returned metadata must not leak into
// the store.
func TestQueryResultsAreCopies(t *testing.T) {
	s, k := buildQueryFixture(t)
	res := s.Query(Query{KeyPrefix: "00"})
	if len(res) != 1 {
		t.Fatalf("got %d results", len(res))
	}
	res[0].Env["machine"] = "tampered"
	m, _ := s.Stat(k[0])
	if m.Env["machine"] != "i7" {
		t.Error("query result aliases store metadata")
	}
}

func TestChain(t *testing.T) {
	s, k := buildQueryFixture(t)

	// k3's parent is k2; k2 has none.
	chain, err := s.Chain(k[3])
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || chain[0].Key != k[2] || chain[1].Key != k[3] {
		t.Fatalf("Chain(k3) = %+v, want [k2 k3] oldest first", chain)
	}
	chain, err = s.Chain(k[0])
	if err != nil || len(chain) != 1 || chain[0].Key != k[0] {
		t.Fatalf("Chain(k0) = %+v, %v; want just k0", chain, err)
	}
	if _, err := s.Chain("unknown"); err == nil {
		t.Error("Chain of a missing key succeeded")
	}

	// A parent pointing at a reclaimed/never-stored key ends the chain there.
	orphan := strings.Repeat("cd", 32)
	if err := s.Put(orphan, []byte(`{}`), Meta{Parent: strings.Repeat("00", 32)}); err != nil {
		t.Fatal(err)
	}
	chain, err = s.Chain(orphan)
	if err != nil || len(chain) != 1 {
		t.Fatalf("Chain with dangling parent = %+v, %v; want the entry alone", chain, err)
	}

	// A hand-crafted cycle is an error, not a hang.
	a, b := strings.Repeat("0a", 32), strings.Repeat("0b", 32)
	if err := s.Put(a, []byte(`{}`), Meta{Parent: b}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b, []byte(`{}`), Meta{Parent: a}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Chain(a); err == nil {
		t.Error("provenance cycle not detected")
	}
}
