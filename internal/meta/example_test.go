package meta_test

import (
	"fmt"

	"opaquebench/internal/meta"
)

// An Environment is a flat set of descriptors recorded with every
// campaign; String renders it sorted, and Diff supports the paper's
// "similar inputs, completely different outputs" comparison. (meta.New
// additionally pre-populates host toolchain facts, which would make this
// example's output machine-dependent.)
func ExampleEnvironment() {
	env := (&meta.Environment{}).
		Set("governor", "ondemand").
		Setf("design/trials", "%d", 168)
	fmt.Print(env)

	rerun := env.Clone().Set("governor", "performance")
	fmt.Println(env.Diff(rerun))
	// Output:
	// design/trials=168
	// governor=ondemand
	// [governor]
}
