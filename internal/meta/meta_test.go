package meta

import (
	"bytes"
	"strings"
	"testing"
)

func TestNewHasToolchain(t *testing.T) {
	e := New()
	if e.Get("toolchain") == "" {
		t.Fatal("missing toolchain")
	}
	if e.CapturedAt.IsZero() {
		t.Fatal("missing capture time")
	}
}

func TestSetGet(t *testing.T) {
	e := New().Set("machine", "i7-2600").Setf("freq_mhz", "%d", 3400)
	if e.Get("machine") != "i7-2600" {
		t.Fatalf("machine = %q", e.Get("machine"))
	}
	if e.Get("freq_mhz") != "3400" {
		t.Fatalf("freq = %q", e.Get("freq_mhz"))
	}
	if e.Get("absent") != "" {
		t.Fatal("absent key should be empty")
	}
}

func TestSetOnNilMap(t *testing.T) {
	e := &Environment{}
	e.Set("a", "b")
	if e.Get("a") != "b" {
		t.Fatal("Set on zero-value Environment failed")
	}
}

func TestKeysSorted(t *testing.T) {
	e := &Environment{}
	e.Set("zz", "1").Set("aa", "2").Set("mm", "3")
	ks := e.Keys()
	if len(ks) != 3 || ks[0] != "aa" || ks[2] != "zz" {
		t.Fatalf("keys = %v", ks)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	e := New().Set("governor", "ondemand").Set("policy", "rt")
	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Get("governor") != "ondemand" || got.Get("policy") != "rt" {
		t.Fatalf("round trip lost fields: %v", got.Fields)
	}
}

func TestReadJSONBad(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("want decode error")
	}
}

func TestStringFormat(t *testing.T) {
	e := &Environment{}
	e.Set("b", "2").Set("a", "1")
	s := e.String()
	if !strings.Contains(s, "a=1\n") || !strings.Contains(s, "b=2\n") {
		t.Fatalf("string = %q", s)
	}
	if strings.Index(s, "a=1") > strings.Index(s, "b=2") {
		t.Fatal("not sorted")
	}
}

func TestDiff(t *testing.T) {
	a := &Environment{}
	a.Set("governor", "ondemand").Set("machine", "arm").Set("same", "x")
	b := &Environment{}
	b.Set("governor", "performance").Set("machine", "arm").Set("same", "x").Set("extra", "y")
	d := a.Diff(b)
	if len(d) != 2 || d[0] != "extra" || d[1] != "governor" {
		t.Fatalf("diff = %v", d)
	}
	if len(a.Diff(a)) != 0 {
		t.Fatal("self-diff should be empty")
	}
}
