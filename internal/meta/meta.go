// Package meta implements the environment-capture half of the paper's second
// methodology stage: every campaign's output carries "a lot of meta-data
// about the measurements and the environment (machine information, operating
// system and compiler versions, compilation command, benchmark parameters,
// network configuration, etc.)".
//
// Because the substrate here is simulated, the captured environment describes
// the simulated machine configuration exactly; comparing the metadata of two
// campaigns with "similar inputs and completely different outputs" is what
// lets an analyst spot, e.g., a governor or scheduling-policy difference.
package meta

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Environment is a flat, ordered set of key/value descriptors recorded with
// every campaign.
type Environment struct {
	// CapturedAt is the wall-clock capture time.
	CapturedAt time.Time `json:"captured_at"`
	// Fields holds the descriptors.
	Fields map[string]string `json:"fields"`
}

// New returns an Environment pre-populated with the host toolchain facts
// that a real campaign would record (Go version stands in for the compiler
// version the paper logs).
func New() *Environment {
	return &Environment{
		CapturedAt: time.Now().UTC(),
		Fields: map[string]string{
			"toolchain": runtime.Version(),
			"goos":      runtime.GOOS,
			"goarch":    runtime.GOARCH,
		},
	}
}

// Set records one descriptor, overwriting any previous value.
func (e *Environment) Set(key, value string) *Environment {
	if e.Fields == nil {
		e.Fields = make(map[string]string)
	}
	e.Fields[key] = value
	return e
}

// Setf records one formatted descriptor.
func (e *Environment) Setf(key, format string, args ...any) *Environment {
	return e.Set(key, fmt.Sprintf(format, args...))
}

// Clone returns an independent copy of the environment. Consumers that
// replay a stored environment and annotate it with run-specific facts (the
// suite orchestrator stamps cache verdicts onto cached campaign
// environments) clone first so the stored original stays untouched.
func (e *Environment) Clone() *Environment {
	out := &Environment{CapturedAt: e.CapturedAt}
	if e.Fields != nil {
		out.Fields = make(map[string]string, len(e.Fields))
		for k, v := range e.Fields {
			out.Fields[k] = v
		}
	}
	return out
}

// Get returns the value for key, or "".
func (e *Environment) Get(key string) string {
	return e.Fields[key]
}

// Keys returns the descriptor keys in sorted order.
func (e *Environment) Keys() []string {
	ks := make([]string, 0, len(e.Fields))
	for k := range e.Fields {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// WriteJSON serializes the environment.
func (e *Environment) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// ReadJSON parses an environment written by WriteJSON.
func ReadJSON(r io.Reader) (*Environment, error) {
	var e Environment
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return nil, fmt.Errorf("meta: decode: %w", err)
	}
	return &e, nil
}

// String renders "key=value" pairs, one per line, sorted by key.
func (e *Environment) String() string {
	var b strings.Builder
	for _, k := range e.Keys() {
		fmt.Fprintf(&b, "%s=%s\n", k, e.Fields[k])
	}
	return b.String()
}

// Diff returns the keys whose values differ between e and other (including
// keys present in only one of them), sorted. This supports the paper's
// use-case of "comparing two experimental campaigns that have similar inputs
// and completely different outputs".
func (e *Environment) Diff(other *Environment) []string {
	seen := map[string]bool{}
	var out []string
	for k, v := range e.Fields {
		seen[k] = true
		if other.Fields[k] != v {
			out = append(out, k)
		}
	}
	for k := range other.Fields {
		if !seen[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
