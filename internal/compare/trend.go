package compare

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"opaquebench/internal/engine"
	"opaquebench/internal/stats"
)

// Trend state taxonomy. Every campaign of a trend analysis lands in
// exactly one class.
const (
	// TrendDrifting: the per-run medians move monotonically across the
	// whole window AND the first-vs-last bootstrap CI excludes zero AND
	// the relative shift clears the practical-significance floor — a
	// sustained, statistically backed drift, not run-to-run noise.
	TrendDrifting = "drifting"
	// TrendStable: judged, but at least one drift condition fails.
	TrendStable = "stable"
	// TrendUnjudged: the campaign cannot be judged — present in fewer
	// than two runs, ambiguously cached in a run, engine changed or
	// unknown, a run has no records, or the first median is zero.
	// Loud, like the comparator's incomparable verdict.
	TrendUnjudged = "unjudged"
)

// TrendPoint is one run's position on a campaign's trajectory.
type TrendPoint struct {
	// Run is the pin name of the run.
	Run string `json:"run"`
	// Key is the sample's content-addressed identity ("+"-joined for
	// reassembled round chains).
	Key string `json:"key,omitempty"`
	// Median is the run's median primary-metric value; N its record count.
	Median float64 `json:"median"`
	N      int     `json:"n"`
}

// CampaignTrend is one campaign's judgement across the run window.
type CampaignTrend struct {
	Campaign string `json:"campaign"`
	Engine   string `json:"engine,omitempty"`
	State    string `json:"state"`
	// Reason explains an unjudged state.
	Reason         string `json:"reason,omitempty"`
	HigherIsBetter bool   `json:"higher_is_better,omitempty"`
	// Points is the median trajectory over the runs carrying the
	// campaign, oldest first.
	Points []TrendPoint `json:"points,omitempty"`
	// Monotone is "increasing" or "decreasing" when the medians move in
	// one direction across every consecutive run pair (ties allowed, net
	// change required), else empty.
	Monotone string `json:"monotone,omitempty"`
	// Direction orients a drifting trend by the engine's metric
	// direction: "improving" or "worsening".
	Direction string `json:"direction,omitempty"`
	// Identical marks the determinism fast path: first and last runs
	// carry byte-identical record values, so the net effect is exactly
	// zero.
	Identical bool `json:"identical,omitempty"`
	// Shift is last-run median minus first-run median in metric units;
	// RelShift the shift relative to |first median|.
	Shift    float64 `json:"shift"`
	RelShift float64 `json:"rel_shift"`
	// CILo and CIHi bound the bootstrap CI on the first-vs-last median
	// shift at CILevel.
	CILo    float64 `json:"ci_lo"`
	CIHi    float64 `json:"ci_hi"`
	CILevel float64 `json:"ci_level,omitempty"`
}

// Trend is a whole N-run trend analysis: the gate parameters, the run
// window, the per-campaign trends in name order, and the class totals.
type Trend struct {
	Level       float64 `json:"level"`
	Reps        int     `json:"reps"`
	Seed        uint64  `json:"seed"`
	MinRelShift float64 `json:"min_rel_shift"`

	// Runs is the run window in pin order, oldest first.
	Runs []string `json:"runs"`

	Campaigns []CampaignTrend `json:"campaigns"`

	Drifting int `json:"drifting"`
	Stable   int `json:"stable"`
	Unjudged int `json:"unjudged"`
}

// Clean reports whether the trend gates green: nothing drifting in the
// worse direction and nothing unjudged. An improving drift does not fail
// the gate — it is the point of performance work — but it stays visible
// in the report.
func (t *Trend) Clean() bool {
	if t.Unjudged > 0 {
		return false
	}
	for _, ct := range t.Campaigns {
		if ct.State == TrendDrifting && ct.Direction == "worsening" {
			return false
		}
	}
	return true
}

// Summary renders the one-line totals.
func (t *Trend) Summary() string {
	return fmt.Sprintf("%d campaigns over %d runs: %d drifting, %d stable, %d unjudged",
		len(t.Campaigns), len(t.Runs), t.Drifting, t.Stable, t.Unjudged)
}

// TrendAcrossRuns judges every campaign's trajectory across the run
// window: the per-run median trajectory, a monotone-direction probe, and
// — reusing the comparator's bootstrap machinery — a first-vs-last
// median-shift CI gated by the same practical-significance floor. The
// result is deterministic: runs keep pin order, campaigns sort by name,
// and all resampling is seeded per campaign.
func TrendAcrossRuns(runs []Run, g Gate) (*Trend, error) {
	if len(runs) < 2 {
		return nil, fmt.Errorf("compare: trend needs at least 2 runs, got %d", len(runs))
	}
	g = g.withDefaults()
	t := &Trend{
		Level:       g.Level,
		Reps:        g.Reps,
		Seed:        g.Seed,
		MinRelShift: g.MinRelShift,
	}
	names := map[string]bool{}
	for _, r := range runs {
		t.Runs = append(t.Runs, r.Name)
		for n := range r.Samples {
			names[n] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		ct := trendCampaign(name, runs, g)
		t.Campaigns = append(t.Campaigns, ct)
		switch ct.State {
		case TrendDrifting:
			t.Drifting++
		case TrendStable:
			t.Stable++
		default:
			t.Unjudged++
		}
	}
	return t, nil
}

// trendCampaign judges one campaign across the window.
func trendCampaign(name string, runs []Run, g Gate) CampaignTrend {
	ct := CampaignTrend{Campaign: name, State: TrendUnjudged}
	var samples []Sample
	for _, r := range runs {
		group := r.Samples[name]
		if len(group) == 0 {
			continue // a run without the campaign narrows the window, loudly visible in Points
		}
		if len(group) > 1 {
			ct.Reason = fmt.Sprintf("run %q holds %d entries named %q — ambiguous; re-pin from a clean run", r.Name, len(group), name)
			return ct
		}
		s := group[0]
		if len(s.Records) == 0 {
			ct.Reason = fmt.Sprintf("run %q has no records for %q", r.Name, name)
			return ct
		}
		samples = append(samples, s)
		ct.Points = append(ct.Points, TrendPoint{
			Run: r.Name, Key: s.Key, Median: stats.Median(s.Values()), N: len(s.Records),
		})
	}
	if len(samples) < 2 {
		ct.Reason = fmt.Sprintf("present in %d run(s); a trend needs at least 2", len(samples))
		return ct
	}
	eng := samples[0].Engine
	for _, s := range samples[1:] {
		if s.Engine != eng {
			ct.Reason = fmt.Sprintf("engine changed across runs: %s vs %s", eng, s.Engine)
			return ct
		}
	}
	ct.Engine = eng
	def, known := engine.Lookup(eng)
	if !known {
		ct.Reason = fmt.Sprintf("unknown engine %q: metric direction undefined", eng)
		return ct
	}
	ct.HigherIsBetter = def.HigherIsBetter()
	ct.Monotone = monotoneDirection(ct.Points)

	first, last := samples[0], samples[len(samples)-1]
	firstVals, lastVals := first.Values(), last.Values()
	firstMedian := ct.Points[0].Median
	lastMedian := ct.Points[len(ct.Points)-1].Median
	if equalValues(firstVals, lastVals) {
		// The determinism fast path: identical record values (always the
		// case when the keys match) mean exactly zero net effect — no
		// resampling needed, and no monotone drift is possible since the
		// trajectory returns to its start.
		ct.State = TrendStable
		ct.Identical = true
		ct.CILevel = g.Level
		return ct
	}
	if firstMedian == 0 {
		ct.Reason = "first run's median is zero: relative shift undefined"
		return ct
	}
	ci, err := stats.MedianShiftCI(firstVals, lastVals, g.Level, g.Reps, pairSeed(g.Seed, name))
	if err != nil {
		ct.Reason = fmt.Sprintf("bootstrap failed: %v", err)
		return ct
	}
	ct.Shift = lastMedian - firstMedian
	ct.RelShift = ct.Shift / math.Abs(firstMedian)
	ct.CILo, ct.CIHi, ct.CILevel = ci.Lo, ci.Hi, ci.Level

	backed := ci.Hi < 0 || ci.Lo > 0 // the whole interval is on one side of zero
	practical := math.Abs(ct.RelShift) >= g.MinRelShift
	if ct.Monotone != "" && backed && practical {
		ct.State = TrendDrifting
		if (ct.Shift > 0) == ct.HigherIsBetter {
			ct.Direction = "improving"
		} else {
			ct.Direction = "worsening"
		}
	} else {
		ct.State = TrendStable
	}
	return ct
}

// monotoneDirection reports the trajectory's direction when every
// consecutive step moves the same way (ties allowed) and the net change is
// nonzero: "increasing", "decreasing", or "" for anything mixed or flat.
func monotoneDirection(points []TrendPoint) string {
	up, down := true, true
	for i := 1; i < len(points); i++ {
		if points[i].Median < points[i-1].Median {
			up = false
		}
		if points[i].Median > points[i-1].Median {
			down = false
		}
	}
	first, last := points[0].Median, points[len(points)-1].Median
	switch {
	case up && last > first:
		return "increasing"
	case down && last < first:
		return "decreasing"
	}
	return ""
}

// WriteJSON serializes the trend as a canonical report: indented JSON with
// struct-ordered keys, name-sorted campaigns and no timestamps, so two
// analyses of the same store are byte-identical.
func (t *Trend) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// WriteJSONFile writes the canonical trend report to path.
func (t *Trend) WriteJSONFile(path string) error {
	return writeFile(path, t.WriteJSON)
}

// WriteText renders the human per-campaign trend lines.
func (t *Trend) WriteText(w io.Writer) {
	for _, ct := range t.Campaigns {
		switch {
		case ct.State == TrendUnjudged:
			fmt.Fprintf(w, "  %-20s %-9s %-9s %s\n", ct.Campaign, ct.Engine, ct.State, ct.Reason)
		case ct.Identical:
			fmt.Fprintf(w, "  %-20s %-9s %-9s identical records across %d runs\n",
				ct.Campaign, ct.Engine, ct.State, len(ct.Points))
		default:
			state := ct.State
			if ct.Direction != "" {
				state += " (" + ct.Direction + ")"
			}
			fmt.Fprintf(w, "  %-20s %-9s %-21s medians %s, shift %+.6g (%+.2f%%), CI [%.6g, %.6g]\n",
				ct.Campaign, ct.Engine, state, trajectory(ct.Points), ct.Shift, ct.RelShift*100, ct.CILo, ct.CIHi)
		}
	}
}

// trajectory renders the median trajectory as "a -> b -> c".
func trajectory(points []TrendPoint) string {
	parts := make([]string, len(points))
	for i, p := range points {
		parts[i] = fmt.Sprintf("%.6g", p.Median)
	}
	return strings.Join(parts, " -> ")
}

// ReadTrendJSON parses a trend report written by WriteJSON.
func ReadTrendJSON(r io.Reader) (*Trend, error) {
	var t Trend
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("compare: decode trend: %w", err)
	}
	return &t, nil
}
