package compare

import (
	"fmt"

	"opaquebench/internal/suite"
)

// LoadStore reads every live entry of an embedded result store
// (internal/store) and groups the samples by campaign name — the store
// counterpart of LoadCacheDir, sharing its round-chain reassembly and
// ambiguity preservation. The store is opened read-only, so a comparison
// never mutates the history it judges.
func LoadStore(path string) (map[string][]Sample, error) {
	cache, err := suite.ReadCacheStore(path)
	if err != nil {
		return nil, err
	}
	defer cache.Close()
	return loadSamples(cache)
}

// Run is one pinned run of a result store: the run name it was pinned
// under and its campaign samples, grouped exactly as LoadStore groups a
// whole store. Runs are the unit the trend analysis walks.
type Run struct {
	// Name is the pin name (cmd/suite store import -run, or store.Pin).
	Name string
	// Samples maps campaign name to that run's samples.
	Samples map[string][]Sample
}

// LoadStoreRuns loads every pinned run of a result store, in the order the
// runs were first pinned — the store's native notion of history, which the
// trend analysis treats as oldest-to-newest. Each run's samples are built
// from exactly the entries its pin references, so overlapping runs (two
// runs sharing an unchanged campaign's entry, the common case under
// content addressing) each see the full record set.
func LoadStoreRuns(path string) ([]Run, error) {
	cache, err := suite.ReadCacheStore(path)
	if err != nil {
		return nil, err
	}
	defer cache.Close()
	st := cache.Backing()
	pins := st.Pins()
	runs := make([]Run, 0, len(pins))
	for _, pin := range pins {
		loaded := make([]loadedEntry, 0, len(pin.Keys))
		for _, key := range pin.Keys {
			entry, err := cache.Load(key)
			if err != nil {
				return nil, fmt.Errorf("compare: run %q: %w", pin.Run, err)
			}
			loaded = append(loaded, loadedEntry{key, entry})
		}
		samples, err := samplesFromEntries(loaded)
		if err != nil {
			return nil, fmt.Errorf("compare: run %q: %w", pin.Run, err)
		}
		runs = append(runs, Run{Name: pin.Run, Samples: samples})
	}
	return runs, nil
}
