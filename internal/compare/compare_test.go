package compare

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand/v2"
	"strings"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/engine"
	"opaquebench/internal/meta"
	"opaquebench/internal/suite"
)

// mk builds a one-campaign sample map with the given pooled values (no
// factors, so the piecewise probe stays out of gate-logic tests).
func mk(name, engine, key string, values []float64) map[string][]Sample {
	recs := make([]core.RawRecord, len(values))
	for i, v := range values {
		recs[i] = core.RawRecord{Seq: i, Value: v}
	}
	return map[string][]Sample{name: {{Campaign: name, Engine: engine, Key: key, Records: recs}}}
}

func constant(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func noisy(n int, center, sigma float64, seed uint64) []float64 {
	r := rand.New(rand.NewPCG(seed, seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = center + sigma*r.NormFloat64()
	}
	return out
}

func one(t *testing.T, c *Comparison) CampaignVerdict {
	t.Helper()
	if len(c.Campaigns) != 1 {
		t.Fatalf("%d verdicts, want 1", len(c.Campaigns))
	}
	return c.Campaigns[0]
}

func TestGateDirectionPerEngine(t *testing.T) {
	cases := []struct {
		name    string
		engine  string
		base    []float64
		cand    []float64
		verdict string
	}{
		// membench bandwidth: a drop regresses, a rise improves.
		{"bandwidth drop", "membench", noisy(60, 1000, 5, 1), noisy(60, 800, 5, 2), VerdictRegressed},
		{"bandwidth rise", "membench", noisy(60, 1000, 5, 1), noisy(60, 1200, 5, 2), VerdictImproved},
		// netbench duration: lower is better, so a rise regresses.
		{"latency rise", "netbench", noisy(60, 1.0, 0.01, 3), noisy(60, 1.2, 0.01, 4), VerdictRegressed},
		{"latency drop", "netbench", noisy(60, 1.0, 0.01, 3), noisy(60, 0.8, 0.01, 4), VerdictImproved},
		// cpubench effective MHz: a drop regresses.
		{"mhz drop", "cpubench", noisy(60, 2600, 10, 5), noisy(60, 2000, 10, 6), VerdictRegressed},
		// No real shift: noise alone must not gate.
		{"no shift", "membench", noisy(60, 1000, 5, 7), noisy(60, 1000, 5, 8), VerdictPass},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Compare(mk("c", tc.engine, "k1", tc.base), mk("c", tc.engine, "k2", tc.cand), Gate{})
			v := one(t, c)
			if v.Verdict != tc.verdict {
				t.Fatalf("verdict %s (shift %+g, CI [%g, %g]), want %s",
					v.Verdict, v.Shift, v.CILo, v.CIHi, tc.verdict)
			}
			if v.Verdict == VerdictRegressed && v.RelShift == 0 {
				t.Fatal("regression with zero effect size")
			}
		})
	}
}

// TestGatePracticalSignificanceFloor: a statistically certain but tiny
// shift (here 0.4% with a degenerate CI excluding zero) must not gate.
func TestGatePracticalSignificanceFloor(t *testing.T) {
	c := Compare(
		mk("c", "membench", "k1", constant(40, 1000)),
		mk("c", "membench", "k2", constant(40, 996)),
		Gate{})
	v := one(t, c)
	if v.Verdict != VerdictPass {
		t.Fatalf("0.4%% shift gated: %s (CI [%g, %g])", v.Verdict, v.CILo, v.CIHi)
	}
	if v.Shift != -4 || v.CILo != -4 || v.CIHi != -4 {
		t.Fatalf("degenerate shift mangled: %+v", v)
	}
	// The same shift clears a lowered floor.
	c = Compare(
		mk("c", "membench", "k1", constant(40, 1000)),
		mk("c", "membench", "k2", constant(40, 996)),
		Gate{MinRelShift: 0.001})
	if v := one(t, c); v.Verdict != VerdictRegressed {
		t.Fatalf("shift above the floor did not gate: %s", v.Verdict)
	}
}

func TestIdenticalValuesFastPath(t *testing.T) {
	vals := noisy(30, 500, 20, 9)
	c := Compare(mk("c", "cpubench", "k", vals), mk("c", "cpubench", "k", vals), Gate{})
	v := one(t, c)
	if v.Verdict != VerdictPass || !v.Identical {
		t.Fatalf("identical records: %+v", v)
	}
	if v.Shift != 0 || v.RelShift != 0 || v.CILo != 0 || v.CIHi != 0 {
		t.Fatalf("identical records with nonzero effect: %+v", v)
	}
}

func TestIncomparableCases(t *testing.T) {
	base := mk("c", "membench", "k1", constant(10, 1))
	cases := []struct {
		name       string
		baseline   map[string][]Sample
		candidate  map[string][]Sample
		wantReason string
	}{
		{"missing candidate", base, map[string][]Sample{}, "absent from the candidate"},
		{"missing baseline", map[string][]Sample{}, base, "absent from the baseline"},
		{"engine change", base, mk("c", "netbench", "k2", constant(10, 1)), "engine changed"},
		{"unknown engine", mk("c", "gpubench", "k1", constant(10, 1)),
			mk("c", "gpubench", "k2", constant(10, 1)), "unknown engine"},
		{"empty records", base, mk("c", "membench", "k2", nil), "no records"},
		{"ambiguous cache", map[string][]Sample{"c": {base["c"][0], base["c"][0]}}, base,
			"2 baseline cache entries"},
		// A zero baseline median makes the relative floor undefined; the
		// gate must refuse rather than silently pass a real regression.
		{"zero baseline median", mk("c", "netbench", "k1", constant(10, 0)),
			mk("c", "netbench", "k2", constant(10, 100)), "baseline median is zero"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Compare(tc.baseline, tc.candidate, Gate{})
			v := one(t, c)
			if v.Verdict != VerdictIncomparable {
				t.Fatalf("verdict %s, want incomparable", v.Verdict)
			}
			if !strings.Contains(v.Reason, tc.wantReason) {
				t.Fatalf("reason %q does not mention %q", v.Reason, tc.wantReason)
			}
			if c.Incomparable != 1 || c.Clean() {
				t.Fatalf("totals wrong: %s", c.Summary())
			}
		})
	}
}

// TestDirectionComesFromRegistry pins the registry routing of metric
// direction: an unregistered engine is incomparable with the
// direction-undefined reason even when both sides carry byte-identical
// records (the identical-records fast path must not outrank the lookup),
// while every registered engine resolves exactly the direction its
// definition declares — no per-engine knowledge lives in this package.
func TestDirectionComesFromRegistry(t *testing.T) {
	vals := constant(10, 5)
	c := Compare(mk("c", "gpubench", "k", vals), mk("c", "gpubench", "k", vals), Gate{})
	v := one(t, c)
	if v.Verdict != VerdictIncomparable {
		t.Fatalf("verdict %s, want incomparable", v.Verdict)
	}
	if want := `unknown engine "gpubench": metric direction undefined`; v.Reason != want {
		t.Fatalf("reason %q, want %q", v.Reason, want)
	}
	if v.Identical {
		t.Fatalf("identical-records fast path outranked the direction lookup: %+v", v)
	}

	for _, name := range engine.Names() {
		def, ok := engine.Lookup(name)
		if !ok {
			t.Fatalf("Names() lists %q but Lookup rejects it", name)
		}
		c := Compare(mk("c", name, "k1", vals), mk("c", name, "k2", vals), Gate{})
		v := one(t, c)
		if v.Verdict != VerdictPass {
			t.Fatalf("%s: verdict %s, want pass", name, v.Verdict)
		}
		if v.HigherIsBetter != def.HigherIsBetter() {
			t.Errorf("%s: verdict direction %v, definition declares %v",
				name, v.HigherIsBetter, def.HigherIsBetter())
		}
	}
}

// TestModeChangeFlagged: a bimodality appearing in the candidate raises the
// modes-changed flag — annotation, regardless of the location verdict.
func TestModeChangeFlagged(t *testing.T) {
	bimodal := append(noisy(30, 1000, 2, 10), noisy(10, 200, 2, 11)...)
	c := Compare(
		mk("c", "cpubench", "k1", noisy(40, 1000, 2, 12)),
		mk("c", "cpubench", "k2", bimodal),
		Gate{})
	v := one(t, c)
	if v.BaselineModes != 1 || v.CandidateModes != 2 {
		t.Fatalf("mode counts %d -> %d, want 1 -> 2", v.BaselineModes, v.CandidateModes)
	}
	if !hasFlag(v, FlagModesChanged) {
		t.Fatalf("modes-changed flag missing: %v", v.Flags)
	}
}

func hasFlag(v CampaignVerdict, flag string) bool {
	for _, f := range v.Flags {
		if f == flag {
			return true
		}
	}
	return false
}

// --- Suite integration: the acceptance-criteria fixtures -----------------

const baselineSpec = `{
  "suite": "gate",
  "workers": 4,
  "campaigns": [
    {"name": "mem", "engine": "membench", "seed": 7,
     "config": {"machine": "snowball", "sizes": [1024, 8192], "reps": 2},
     "out": "mem.csv"},
    {"name": "net", "engine": "netbench", "seed": 7,
     "config": {"profile": "taurus", "n": 12, "reps": 2},
     "out": "net.csv"},
    {"name": "cpu", "engine": "cpubench", "seed": 7,
     "config": {"governor": "performance", "nloops": [200, 2000], "reps": 3},
     "out": "cpu.csv"}
  ]
}`

// slowdownSpec is baselineSpec with one seeded, injected slowdown: the
// cpubench campaign duty-cycles at 0.6, stretching every measurement and
// cutting the effective frequency by ~40%.
var slowdownSpec = strings.Replace(baselineSpec,
	`"governor": "performance",`, `"governor": "performance", "duty": 0.6,`, 1)

// runInto executes the spec cold into cacheDir with the given worker count
// and returns the campaign samples loaded back from the cache.
func runInto(t *testing.T, specJSON, cacheDir string, workers int) map[string][]Sample {
	t.Helper()
	spec, err := suite.Parse([]byte(specJSON), "spec.json")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	for i := range spec.Campaigns {
		spec.Campaigns[i].Workers = workers
	}
	if _, err := suite.Run(context.Background(), spec, suite.Options{
		CacheDir: cacheDir, BaseDir: t.TempDir(), Workers: workers,
	}); err != nil {
		t.Fatalf("suite run: %v", err)
	}
	samples, err := LoadCacheDir(cacheDir)
	if err != nil {
		t.Fatalf("LoadCacheDir: %v", err)
	}
	return samples
}

// TestSelfComparisonAllPassByteIdentical is the acceptance fixture: a suite
// compared against its own cache yields zero regressions, and the verdict
// file is byte-identical at workers 1, 4 and 8.
func TestSelfComparisonAllPassByteIdentical(t *testing.T) {
	var verdictFiles [][]byte
	for _, workers := range []int{1, 4, 8} {
		samples := runInto(t, baselineSpec, t.TempDir(), workers)
		c := Compare(samples, samples, Gate{})
		if !c.Clean() || c.Pass != 3 || c.Regressed != 0 {
			t.Fatalf("workers %d: self-comparison not all-pass: %s", workers, c.Summary())
		}
		for _, v := range c.Campaigns {
			if !v.Identical || v.Shift != 0 {
				t.Fatalf("workers %d: %s not identical in self-comparison: %+v", workers, v.Campaign, v)
			}
		}
		var buf bytes.Buffer
		if err := c.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		verdictFiles = append(verdictFiles, buf.Bytes())
	}
	for i := 1; i < len(verdictFiles); i++ {
		if !bytes.Equal(verdictFiles[0], verdictFiles[i]) {
			t.Fatalf("verdict files differ between worker counts:\n%s\nvs\n%s",
				verdictFiles[0], verdictFiles[i])
		}
	}
	// And the file round-trips.
	parsed, err := ReadJSON(bytes.NewReader(verdictFiles[0]))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Pass != 3 || len(parsed.Campaigns) != 3 {
		t.Fatalf("round trip lost verdicts: %s", parsed.Summary())
	}
}

// TestInjectedSlowdownFlaggedRegressed is the other acceptance fixture: a
// seeded duty-cycle shift in the cpubench campaign must be flagged as
// regressed with a nonzero effect size, while the untouched campaigns
// replay identically and pass.
func TestInjectedSlowdownFlaggedRegressed(t *testing.T) {
	baseline := runInto(t, baselineSpec, t.TempDir(), 4)
	candidate := runInto(t, slowdownSpec, t.TempDir(), 4)
	c := Compare(baseline, candidate, Gate{})
	if c.Regressed != 1 || c.Pass != 2 || c.Incomparable != 0 {
		t.Fatalf("verdict totals: %s", c.Summary())
	}
	var cpu CampaignVerdict
	for _, v := range c.Campaigns {
		switch v.Campaign {
		case "cpu":
			cpu = v
		default:
			if v.Verdict != VerdictPass || !v.Identical {
				t.Errorf("%s: verdict %s identical=%v, want identical pass", v.Campaign, v.Verdict, v.Identical)
			}
		}
	}
	if cpu.Verdict != VerdictRegressed {
		t.Fatalf("cpu verdict %s (shift %+g, CI [%g, %g]), want regressed",
			cpu.Verdict, cpu.Shift, cpu.CILo, cpu.CIHi)
	}
	if cpu.Shift >= 0 || cpu.RelShift >= -0.1 {
		t.Fatalf("cpu effect size too small for a 0.6 duty cycle: shift %+g rel %+g", cpu.Shift, cpu.RelShift)
	}
	if cpu.CIHi >= 0 {
		t.Fatalf("cpu CI does not exclude zero: [%g, %g]", cpu.CILo, cpu.CIHi)
	}
	if cpu.BaselineKey == cpu.CandidateKey {
		t.Fatal("config edit did not move the cache key")
	}

	// The environment stamp and the markdown report both carry the verdict.
	env := meta.New()
	c.Stamp(env)
	if env.Get("compare/campaign/cpu/verdict") != VerdictRegressed || env.Get("compare/regressed") != "1" {
		t.Fatalf("env stamp wrong:\n%s", env.String())
	}
	md := c.Markdown()
	for _, want := range []string{"**regressed**", "cpu", "3 campaigns", "CI"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestLoadCacheDirMissing(t *testing.T) {
	if _, err := LoadCacheDir("/nonexistent/cache/dir"); err == nil {
		t.Fatal("missing baseline directory accepted")
	}
}

// TestAdaptiveRoundChainLoadsAsOneSample: an adaptive campaign is cached
// one entry per round; LoadCacheDir must reassemble the chain into a
// single sample (records concatenated in round order, keys joined) rather
// than reporting an ambiguous cache — and a self-comparison of such a
// cache must pass through the identical-records fast path.
func TestAdaptiveRoundChainLoadsAsOneSample(t *testing.T) {
	dir := t.TempDir()
	cache, err := suite.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	rounds := []struct {
		key    string
		round  int
		values []float64
	}{
		{"k-round1", 1, []float64{10, 11, 12}},
		{"k-round2", 2, []float64{20, 21}},
	}
	for _, r := range rounds {
		res := &core.Results{}
		for i, v := range r.values {
			res.Records = append(res.Records, core.RawRecord{
				Seq: i, Point: doe.Point{"size": "64"}, Value: v,
			})
		}
		entry := &suite.Entry{Campaign: "zoom", Engine: "membench", Round: r.round, Seed: 1}
		entryFromResults(t, entry, res)
		if err := cache.Store(r.key, entry); err != nil {
			t.Fatal(err)
		}
	}
	loaded, err := LoadCacheDir(dir)
	if err != nil {
		t.Fatalf("LoadCacheDir: %v", err)
	}
	samples := loaded["zoom"]
	if len(samples) != 1 {
		t.Fatalf("round chain loaded as %d samples, want 1", len(samples))
	}
	s := samples[0]
	if s.Key != "k-round1+k-round2" {
		t.Errorf("merged key %q", s.Key)
	}
	want := []float64{10, 11, 12, 20, 21}
	got := s.Values()
	if len(got) != len(want) {
		t.Fatalf("merged %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged values %v, want %v (round order)", got, want)
		}
	}
	cmp := Compare(loaded, loaded, Gate{})
	if cmp.Pass != 1 || !cmp.Clean() {
		t.Errorf("adaptive self-comparison: %s", cmp.Summary())
	}
	if !cmp.Campaigns[0].Identical {
		t.Error("self-comparison missed the identical-records fast path")
	}
}

// entryFromResults fills entry.Records through the cache's JSON schema —
// the record slice's element type is unexported, so tests outside
// internal/suite construct entries the way the cache files do.
func entryFromResults(t *testing.T, entry *suite.Entry, res *core.Results) {
	t.Helper()
	recs := make([]map[string]any, 0, len(res.Records))
	for _, r := range res.Records {
		point := map[string]string{}
		for k, v := range r.Point {
			point[k] = string(v)
		}
		recs = append(recs, map[string]any{
			"seq": r.Seq, "rep": r.Rep, "value": r.Value,
			"seconds": r.Seconds, "at": r.At, "point": point,
		})
	}
	blob, err := json.Marshal(map[string]any{"records": recs})
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, entry); err != nil {
		t.Fatal(err)
	}
}

// TestStaticSeedEntryUpgradesToRoundChain: a campaign run static first
// stores its entry without a round index; when the same campaign later
// runs adaptively, the seed round hits that entry by content address and
// must refresh the round index in place — otherwise the cache holds a
// {0, 2} group that can never reassemble and every baseline comparison
// of the campaign is spuriously ambiguous.
func TestStaticSeedEntryUpgradesToRoundChain(t *testing.T) {
	const common = `{"name": "mem-zoom", "engine": "membench", "seed": 20170529, "workers": 2,
     "config": {"machine": "i7", "governor": "performance",
                "sizes": [4096, 16384, 65536, 262144, 1048576, 4194304],
                "strides": [16], "reps": 6},%s
     "out": "mem-zoom.csv"}`
	mkSpec := func(t *testing.T, extra string) *suite.Spec {
		t.Helper()
		src := `{"suite": "upgrade", "workers": 2, "campaigns": [` + strings.Replace(common, "%s", extra, 1) + `]}`
		spec, err := suite.Parse([]byte(src), "spec.json")
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		return spec
	}
	cacheDir := t.TempDir()
	if _, err := suite.Run(context.Background(), mkSpec(t, ""), suite.Options{
		CacheDir: cacheDir, BaseDir: t.TempDir(),
	}); err != nil {
		t.Fatalf("static run: %v", err)
	}
	adaptive := `
     "adaptive": {"rounds": 2, "budget": 150, "target_rel_ci": 0.02,
                  "top_points": 3, "extra_reps": 4, "zoom_per_break": 4, "min_seg": 10},`
	res, err := suite.Run(context.Background(), mkSpec(t, adaptive), suite.Options{
		CacheDir: cacheDir, BaseDir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("adaptive run: %v", err)
	}
	if rounds := res.Campaigns[0].Rounds; len(rounds) != 2 || !rounds[0].Hit {
		t.Fatalf("adaptive run: %d rounds, seed hit=%v", len(rounds), rounds[0].Hit)
	}
	loaded, err := LoadCacheDir(cacheDir)
	if err != nil {
		t.Fatalf("LoadCacheDir: %v", err)
	}
	if n := len(loaded["mem-zoom"]); n != 1 {
		t.Fatalf("cache loaded as %d samples, want 1 reassembled chain", n)
	}
	cmp := Compare(loaded, loaded, Gate{})
	if !cmp.Clean() || cmp.Pass != 1 {
		t.Errorf("self-comparison after upgrade: %s", cmp.Summary())
	}
}
