package compare

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/suite"
)

// mkRun builds a one-campaign Run from pooled values, reusing the mk
// sample helper.
func mkRun(run, campaign, engine, key string, values []float64) Run {
	return Run{Name: run, Samples: mk(campaign, engine, key, values)}
}

// window builds an N-run window of one campaign whose run medians follow
// centers, with seeded noise so the bootstrap has something to resample.
func window(campaign, engine string, centers []float64, sigma float64) []Run {
	runs := make([]Run, len(centers))
	for i, c := range centers {
		name := "r" + string(rune('1'+i))
		runs[i] = mkRun(name, campaign, engine, "k-"+name, noisy(60, c, sigma, uint64(i+1)))
	}
	return runs
}

func oneTrend(t *testing.T, tr *Trend) CampaignTrend {
	t.Helper()
	if len(tr.Campaigns) != 1 {
		t.Fatalf("%d campaign trends, want 1", len(tr.Campaigns))
	}
	return tr.Campaigns[0]
}

func TestTrendNeedsTwoRuns(t *testing.T) {
	if _, err := TrendAcrossRuns(nil, Gate{}); err == nil {
		t.Fatal("empty run window accepted")
	}
	if _, err := TrendAcrossRuns(window("c", "membench", []float64{1000}, 5), Gate{}); err == nil {
		t.Fatal("single-run window accepted")
	}
}

func TestTrendDriftDirections(t *testing.T) {
	cases := []struct {
		name      string
		engine    string
		centers   []float64
		state     string
		monotone  string
		direction string
	}{
		// membench bandwidth: a sustained drop worsens, a sustained rise improves.
		{"bandwidth decay", "membench", []float64{1000, 950, 900}, TrendDrifting, "decreasing", "worsening"},
		{"bandwidth gain", "membench", []float64{900, 950, 1000}, TrendDrifting, "increasing", "improving"},
		// netbench duration: lower is better, so a sustained rise worsens.
		{"latency creep", "netbench", []float64{1.0, 1.1, 1.2, 1.3}, TrendDrifting, "increasing", "worsening"},
		{"latency melt", "netbench", []float64{1.3, 1.2, 1.0}, TrendDrifting, "decreasing", "improving"},
		// A bounce is not a drift, however large the first-vs-last shift.
		{"bounce", "membench", []float64{1000, 1200, 1100}, TrendStable, "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sigma := tc.centers[0] / 200
			tr, err := TrendAcrossRuns(window("c", tc.engine, tc.centers, sigma), Gate{})
			if err != nil {
				t.Fatal(err)
			}
			ct := oneTrend(t, tr)
			if ct.State != tc.state || ct.Monotone != tc.monotone || ct.Direction != tc.direction {
				t.Fatalf("state %s/%s/%s (shift %+g, CI [%g, %g]), want %s/%s/%s",
					ct.State, ct.Monotone, ct.Direction, ct.Shift, ct.CILo, ct.CIHi,
					tc.state, tc.monotone, tc.direction)
			}
			if len(ct.Points) != len(tc.centers) {
				t.Fatalf("%d trajectory points, want %d", len(ct.Points), len(tc.centers))
			}
			if tc.state == TrendDrifting && ct.RelShift == 0 {
				t.Fatal("drift with zero effect size")
			}
		})
	}
}

// TestTrendPracticalFloor: a monotone, statistically certain but tiny
// drift (0.4% over the window, degenerate CI) must stay stable — and must
// drift once the floor is lowered.
func TestTrendPracticalFloor(t *testing.T) {
	runs := []Run{
		mkRun("r1", "c", "membench", "k1", constant(40, 1000)),
		mkRun("r2", "c", "membench", "k2", constant(40, 998)),
		mkRun("r3", "c", "membench", "k3", constant(40, 996)),
	}
	tr, err := TrendAcrossRuns(runs, Gate{})
	if err != nil {
		t.Fatal(err)
	}
	if ct := oneTrend(t, tr); ct.State != TrendStable || ct.Monotone != "decreasing" {
		t.Fatalf("0.4%% drift gated: %s/%s", ct.State, ct.Monotone)
	}
	tr, err = TrendAcrossRuns(runs, Gate{MinRelShift: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if ct := oneTrend(t, tr); ct.State != TrendDrifting || ct.Direction != "worsening" {
		t.Fatalf("drift above the floor not flagged: %s/%s", ct.State, ct.Direction)
	}
	if tr.Clean() {
		t.Fatal("worsening drift reported clean")
	}
}

// TestTrendImprovingIsClean: an improving drift stays visible but does not
// fail the gate.
func TestTrendImprovingIsClean(t *testing.T) {
	tr, err := TrendAcrossRuns(window("c", "membench", []float64{900, 950, 1000}, 4), Gate{})
	if err != nil {
		t.Fatal(err)
	}
	if ct := oneTrend(t, tr); ct.Direction != "improving" {
		t.Fatalf("direction %q, want improving", ct.Direction)
	}
	if !tr.Clean() || tr.Drifting != 1 {
		t.Fatalf("improving drift: clean=%v, %s", tr.Clean(), tr.Summary())
	}
}

// TestTrendIdenticalFastPath: a campaign whose first and last runs carry
// byte-identical values takes the zero-effect fast path, whatever happened
// in between.
func TestTrendIdenticalFastPath(t *testing.T) {
	vals := noisy(30, 500, 20, 9)
	runs := []Run{
		mkRun("r1", "c", "cpubench", "k", vals),
		mkRun("r2", "c", "cpubench", "k2", noisy(30, 480, 20, 10)),
		mkRun("r3", "c", "cpubench", "k", vals),
	}
	tr, err := TrendAcrossRuns(runs, Gate{})
	if err != nil {
		t.Fatal(err)
	}
	ct := oneTrend(t, tr)
	if ct.State != TrendStable || !ct.Identical || ct.Shift != 0 {
		t.Fatalf("identical first/last: %+v", ct)
	}
}

// TestTrendMonotoneAllowsTies: a plateau inside a one-direction trajectory
// still counts as monotone.
func TestTrendMonotoneAllowsTies(t *testing.T) {
	runs := []Run{
		mkRun("r1", "c", "membench", "k1", constant(40, 1000)),
		mkRun("r2", "c", "membench", "k2", constant(40, 900)),
		mkRun("r3", "c", "membench", "k3", constant(40, 900)),
		mkRun("r4", "c", "membench", "k4", constant(40, 800)),
	}
	tr, err := TrendAcrossRuns(runs, Gate{})
	if err != nil {
		t.Fatal(err)
	}
	ct := oneTrend(t, tr)
	if ct.Monotone != "decreasing" || ct.State != TrendDrifting || ct.Direction != "worsening" {
		t.Fatalf("tied plateau broke monotone: %s/%s/%s", ct.State, ct.Monotone, ct.Direction)
	}
}

func TestTrendUnjudgedCases(t *testing.T) {
	base := window("c", "membench", []float64{1000, 950, 900}, 5)
	cases := []struct {
		name       string
		mutate     func([]Run) []Run
		wantReason string
	}{
		{"single run", func(rs []Run) []Run {
			rs[0].Samples = map[string][]Sample{}
			rs[1].Samples = map[string][]Sample{}
			return rs
		}, "present in 1 run(s)"},
		{"ambiguous run", func(rs []Run) []Run {
			s := rs[1].Samples["c"][0]
			rs[1].Samples["c"] = []Sample{s, s}
			return rs
		}, "ambiguous"},
		{"engine change", func(rs []Run) []Run {
			rs[2].Samples["c"][0].Engine = "netbench"
			return rs
		}, "engine changed"},
		{"unknown engine", func(rs []Run) []Run {
			for _, r := range rs {
				r.Samples["c"][0].Engine = "gpubench"
			}
			return rs
		}, "unknown engine"},
		{"empty records", func(rs []Run) []Run {
			rs[1].Samples["c"][0].Records = nil
			return rs
		}, "no records"},
		{"zero first median", func(rs []Run) []Run {
			rs[0].Samples["c"] = mk("c", "membench", "k0", constant(40, 0))["c"]
			return rs
		}, "median is zero"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runs := tc.mutate(window("c", "membench", []float64{1000, 950, 900}, 5))
			tr, err := TrendAcrossRuns(runs, Gate{})
			if err != nil {
				t.Fatal(err)
			}
			ct := oneTrend(t, tr)
			if ct.State != TrendUnjudged {
				t.Fatalf("state %s, want unjudged", ct.State)
			}
			if !strings.Contains(ct.Reason, tc.wantReason) {
				t.Fatalf("reason %q does not mention %q", ct.Reason, tc.wantReason)
			}
			if tr.Unjudged != 1 || tr.Clean() {
				t.Fatalf("totals wrong: %s", tr.Summary())
			}
		})
	}
	_ = base
}

// TestTrendGapNarrowsWindow: a run missing the campaign shrinks that
// campaign's trajectory instead of unjudging it — histories accumulate
// campaigns over time.
func TestTrendGapNarrowsWindow(t *testing.T) {
	runs := window("c", "membench", []float64{1000, 950, 900}, 5)
	runs[1].Samples = map[string][]Sample{}
	tr, err := TrendAcrossRuns(runs, Gate{})
	if err != nil {
		t.Fatal(err)
	}
	ct := oneTrend(t, tr)
	if ct.State != TrendDrifting || len(ct.Points) != 2 {
		t.Fatalf("gapped window: %s with %d points, want drifting with 2", ct.State, len(ct.Points))
	}
	if ct.Points[0].Run != "r1" || ct.Points[1].Run != "r3" {
		t.Fatalf("points %v", ct.Points)
	}
}

// TestTrendReportDeterministicRoundTrip: the JSON report is byte-identical
// across analyses and round-trips.
func TestTrendReportDeterministicRoundTrip(t *testing.T) {
	runs := func() []Run {
		rs := window("c", "membench", []float64{1000, 950, 900}, 5)
		for k, v := range window("z", "netbench", []float64{1.0, 1.0, 1.0}, 0.01)[0].Samples {
			rs[0].Samples[k] = v
		}
		return rs
	}
	var files [][]byte
	for i := 0; i < 2; i++ {
		tr, err := TrendAcrossRuns(runs(), Gate{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		files = append(files, buf.Bytes())
	}
	if !bytes.Equal(files[0], files[1]) {
		t.Fatalf("trend reports differ across analyses:\n%s\nvs\n%s", files[0], files[1])
	}
	parsed, err := ReadTrendJSON(bytes.NewReader(files[0]))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Campaigns) != 2 || len(parsed.Runs) != 3 {
		t.Fatalf("round trip lost state: %s", parsed.Summary())
	}
	var text bytes.Buffer
	parsed.WriteText(&text)
	for _, want := range []string{"drifting (worsening)", "medians", "->"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, text.String())
		}
	}
}

// --- Store loaders -------------------------------------------------------

// storeEntry builds a suite cache entry carrying the given values.
func storeEntry(t *testing.T, campaign, engine string, round int, values []float64) *suite.Entry {
	t.Helper()
	res := &core.Results{}
	for i, v := range values {
		res.Records = append(res.Records, core.RawRecord{
			Seq: i, Point: doe.Point{"size": "64"}, Value: v,
		})
	}
	entry := &suite.Entry{Campaign: campaign, Engine: engine, Round: round, Seed: 1}
	entryFromResults(t, entry, res)
	return entry
}

// TestLoadStoreMatchesCacheDir: the same entries loaded through a store
// and a directory produce deeply equal sample maps, round-chain
// reassembly included.
func TestLoadStoreMatchesCacheDir(t *testing.T) {
	dir := t.TempDir()
	dirCache, err := suite.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	storePath := t.TempDir() + "/results.store"
	stCache, err := suite.OpenCacheStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	entries := map[string]*suite.Entry{
		"k-static": storeEntry(t, "flat", "cpubench", 0, []float64{5, 6, 7}),
		"k-round1": storeEntry(t, "zoom", "membench", 1, []float64{10, 11, 12}),
		"k-round2": storeEntry(t, "zoom", "membench", 2, []float64{20, 21}),
	}
	for key, e := range entries {
		if err := dirCache.Store(key, e); err != nil {
			t.Fatal(err)
		}
		if err := stCache.Store(key, e); err != nil {
			t.Fatal(err)
		}
	}
	if err := stCache.Close(); err != nil {
		t.Fatal(err)
	}
	fromDir, err := LoadCacheDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fromStore, err := LoadStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromDir, fromStore) {
		t.Fatalf("backends disagree:\ndir:   %+v\nstore: %+v", fromDir, fromStore)
	}
	if len(fromStore["zoom"]) != 1 || fromStore["zoom"][0].Key != "k-round1+k-round2" {
		t.Fatalf("store load did not reassemble the round chain: %+v", fromStore["zoom"])
	}
	// LoadCacheDir auto-detects a store path, too.
	auto, err := LoadCacheDir(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(auto, fromStore) {
		t.Fatal("LoadCacheDir(store path) disagrees with LoadStore")
	}
}

// TestLoadStoreRunsTrend is the end-to-end store path: three pinned runs
// with a drifting campaign (overlapping on an unchanged one) load in pin
// order and the trend analysis flags exactly the drift.
func TestLoadStoreRunsTrend(t *testing.T) {
	storePath := t.TempDir() + "/history.store"
	cache, err := suite.OpenCacheStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	centers := []float64{1000, 950, 900}
	sharedKey := "k-flat"
	if err := cache.Store(sharedKey, storeEntry(t, "flat", "netbench", 0, constant(30, 2))); err != nil {
		t.Fatal(err)
	}
	st := cache.Backing()
	for i, c := range centers {
		run := "run" + string(rune('1'+i))
		key := "k-" + run
		if err := cache.Store(key, storeEntry(t, "mem", "membench", 0, noisy(60, c, 4, uint64(i+1)))); err != nil {
			t.Fatal(err)
		}
		if err := st.Pin(run, key, sharedKey); err != nil {
			t.Fatal(err)
		}
	}
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}

	runs, err := LoadStoreRuns(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("%d runs, want 3", len(runs))
	}
	for i, want := range []string{"run1", "run2", "run3"} {
		if runs[i].Name != want {
			t.Fatalf("run order %v, want pin order", []string{runs[0].Name, runs[1].Name, runs[2].Name})
		}
		if len(runs[i].Samples["mem"]) != 1 || len(runs[i].Samples["flat"]) != 1 {
			t.Fatalf("run %s samples incomplete: %+v", runs[i].Name, runs[i].Samples)
		}
	}
	tr, err := TrendAcrossRuns(runs, Gate{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Drifting != 1 || tr.Stable != 1 || tr.Unjudged != 0 {
		t.Fatalf("trend totals: %s", tr.Summary())
	}
	for _, ct := range tr.Campaigns {
		switch ct.Campaign {
		case "mem":
			if ct.State != TrendDrifting || ct.Direction != "worsening" {
				t.Fatalf("mem: %s/%s, want drifting/worsening", ct.State, ct.Direction)
			}
		case "flat":
			if ct.State != TrendStable || !ct.Identical {
				t.Fatalf("flat: %s identical=%v, want stable identical", ct.State, ct.Identical)
			}
		}
	}
	if tr.Clean() {
		t.Fatal("worsening drift reported clean")
	}
}
