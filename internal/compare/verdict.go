package compare

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"opaquebench/internal/meta"
)

// The verdict taxonomy. Every campaign pair lands in exactly one class;
// DESIGN.md section 9 records the semantics.
const (
	// VerdictPass: no statistically backed, practically significant shift
	// in the worse direction (includes the identical-records fast path).
	VerdictPass = "pass"
	// VerdictRegressed: the shift CI excludes zero on the worse side and
	// the relative shift clears the practical-significance floor.
	VerdictRegressed = "regressed"
	// VerdictImproved: the mirror image — the whole CI is on the better
	// side and the shift is practically significant.
	VerdictImproved = "improved"
	// VerdictIncomparable: the pair cannot be judged — a side is missing,
	// the engine changed, a cache is ambiguous, a side has no records, or
	// the baseline median is zero (the relative floor is undefined).
	// Incomparable is a loud state on purpose: a gate that silently skips
	// what it cannot judge is not a gate.
	VerdictIncomparable = "incomparable"
)

// Structural diagnosis flags. Flags annotate a verdict, they never decide
// it: a mode appearing or a breakpoint drifting is an analysis lead, not
// pass/fail evidence.
const (
	// FlagModesChanged: the pooled values changed mode count (a bimodality
	// appeared or vanished — the Figure 10/11 diagnosis).
	FlagModesChanged = "modes-changed"
	// FlagBreakCountChanged: the neutral piecewise fit found a different
	// number of breakpoints (a protocol/regime change appeared or vanished).
	FlagBreakCountChanged = "break-count-changed"
	// FlagBreakDrift: breakpoint positions moved beyond the tolerance.
	FlagBreakDrift = "break-drift"
)

// CampaignVerdict is one campaign pair's judgement. Fields are plain
// finite numbers only — the file must round-trip as strict JSON.
type CampaignVerdict struct {
	Campaign string `json:"campaign"`
	Engine   string `json:"engine,omitempty"`
	Verdict  string `json:"verdict"`
	// Reason explains an incomparable verdict.
	Reason string `json:"reason,omitempty"`
	// BaselineKey and CandidateKey are the content-addressed config
	// identities; equal keys imply identical records.
	BaselineKey  string `json:"baseline_key,omitempty"`
	CandidateKey string `json:"candidate_key,omitempty"`
	BaselineN    int    `json:"baseline_n,omitempty"`
	CandidateN   int    `json:"candidate_n,omitempty"`
	// Identical marks the determinism fast path: the two record value
	// series are equal, so the effect is exactly zero.
	Identical      bool `json:"identical,omitempty"`
	HigherIsBetter bool `json:"higher_is_better,omitempty"`
	// BaselineMedian and CandidateMedian locate the two runs; Shift is
	// candidate minus baseline in metric units, RelShift the shift
	// relative to |baseline median| — the comparator's effect size.
	BaselineMedian  float64 `json:"baseline_median,omitempty"`
	CandidateMedian float64 `json:"candidate_median,omitempty"`
	Shift           float64 `json:"shift"`
	RelShift        float64 `json:"rel_shift"`
	// CILo and CIHi bound the bootstrap CI on the median shift at CILevel.
	CILo    float64 `json:"ci_lo"`
	CIHi    float64 `json:"ci_hi"`
	CILevel float64 `json:"ci_level,omitempty"`
	// Flags carries the structural diagnosis annotations.
	Flags []string `json:"flags,omitempty"`
	// BaselineModes and CandidateModes are the pooled mode counts (1 or 2).
	BaselineModes  int `json:"baseline_modes,omitempty"`
	CandidateModes int `json:"candidate_modes,omitempty"`
	// BaselineBreaks and CandidateBreaks are the neutral piecewise fits'
	// interior breakpoints; BreakDrift the largest relative position move.
	BaselineBreaks  []float64 `json:"baseline_breaks,omitempty"`
	CandidateBreaks []float64 `json:"candidate_breaks,omitempty"`
	BreakDrift      float64   `json:"break_drift,omitempty"`
}

// Comparison is a whole suite-vs-suite judgement: the gate parameters, the
// per-campaign verdicts in name order, and the class totals.
type Comparison struct {
	Level       float64 `json:"level"`
	Reps        int     `json:"reps"`
	Seed        uint64  `json:"seed"`
	MinRelShift float64 `json:"min_rel_shift"`

	Campaigns []CampaignVerdict `json:"campaigns"`

	Pass         int `json:"pass"`
	Regressed    int `json:"regressed"`
	Improved     int `json:"improved"`
	Incomparable int `json:"incomparable"`
}

// Clean reports whether the comparison gates green: nothing regressed and
// nothing was incomparable.
func (c *Comparison) Clean() bool {
	return c.Regressed == 0 && c.Incomparable == 0
}

// Summary renders the one-line totals.
func (c *Comparison) Summary() string {
	return fmt.Sprintf("%d campaigns: %d pass, %d regressed, %d improved, %d incomparable",
		len(c.Campaigns), c.Pass, c.Regressed, c.Improved, c.Incomparable)
}

// WriteJSON serializes the comparison as the canonical verdict file:
// indented JSON with struct-ordered keys and name-sorted campaigns, so two
// comparisons of the same records are byte-identical however they were
// produced.
func (c *Comparison) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// WriteText renders the human per-campaign verdict lines — the shared
// stdout rendering of cmd/compare and cmd/suite run -baseline.
func (c *Comparison) WriteText(w io.Writer) {
	for _, v := range c.Campaigns {
		switch {
		case v.Verdict == VerdictIncomparable:
			fmt.Fprintf(w, "  %-20s %-9s %-12s %s\n", v.Campaign, v.Engine, v.Verdict, v.Reason)
		case v.Identical:
			fmt.Fprintf(w, "  %-20s %-9s %-12s identical records\n", v.Campaign, v.Engine, v.Verdict)
		default:
			fmt.Fprintf(w, "  %-20s %-9s %-12s shift %+.6g (%+.2f%%), CI [%.6g, %.6g]\n",
				v.Campaign, v.Engine, v.Verdict, v.Shift, v.RelShift*100, v.CILo, v.CIHi)
		}
	}
}

// WriteJSONFile writes the canonical verdict file to path.
func (c *Comparison) WriteJSONFile(path string) error {
	return writeFile(path, c.WriteJSON)
}

// WriteMarkdownFile writes the markdown comparison report to path.
func (c *Comparison) WriteMarkdownFile(path string) error {
	return writeFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, c.Markdown())
		return err
	})
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadJSON parses a verdict file written by WriteJSON.
func ReadJSON(r io.Reader) (*Comparison, error) {
	var c Comparison
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("compare: decode verdicts: %w", err)
	}
	return &c, nil
}

// Stamp records the comparison in environment metadata, making comparator
// verdicts part of a run's provenance the way cache verdicts already are.
func (c *Comparison) Stamp(env *meta.Environment) {
	env.Setf("compare/level", "%g", c.Level)
	env.Setf("compare/min_rel_shift", "%g", c.MinRelShift)
	env.Setf("compare/campaigns", "%d", len(c.Campaigns))
	env.Setf("compare/pass", "%d", c.Pass)
	env.Setf("compare/regressed", "%d", c.Regressed)
	env.Setf("compare/improved", "%d", c.Improved)
	env.Setf("compare/incomparable", "%d", c.Incomparable)
	for _, v := range c.Campaigns {
		prefix := "compare/campaign/" + v.Campaign + "/"
		env.Set(prefix+"verdict", v.Verdict)
		if v.Verdict == VerdictIncomparable {
			env.Set(prefix+"reason", v.Reason)
			continue
		}
		env.Setf(prefix+"shift", "%g", v.Shift)
		env.Setf(prefix+"rel_shift", "%g", v.RelShift)
		if len(v.Flags) > 0 {
			env.Set(prefix+"flags", strings.Join(v.Flags, ","))
		}
	}
}
