package compare

import (
	"fmt"
	"strconv"
	"strings"

	"opaquebench/internal/report"
)

// Markdown renders the comparison as a GitHub-flavored markdown report —
// the human half of the verdict artifact, composed from the report
// package's primitives. The table carries the gate outcome; the details
// section expands every campaign that regressed, improved, or could not be
// compared.
func (c *Comparison) Markdown() string {
	var b strings.Builder
	b.WriteString(report.MarkdownHeading(1, "Differential campaign comparison"))
	fmt.Fprintf(&b, "%s. Gate: %g%% bootstrap CI on the median shift, %d reps, ≥ %g%% relative shift to act.\n\n",
		c.Summary(), c.Level*100, c.Reps, c.MinRelShift*100)

	rows := make([][]string, 0, len(c.Campaigns))
	for _, v := range c.Campaigns {
		rows = append(rows, []string{
			v.Campaign,
			v.Engine,
			verdictCell(v.Verdict),
			shiftCell(v),
			ciCell(v),
			strings.Join(v.Flags, ", "),
		})
	}
	b.WriteString(report.MarkdownTable(
		[]string{"campaign", "engine", "verdict", "shift", "CI", "flags"}, rows))

	var details []CampaignVerdict
	for _, v := range c.Campaigns {
		if v.Verdict != VerdictPass || len(v.Flags) > 0 {
			details = append(details, v)
		}
	}
	if len(details) == 0 {
		return b.String()
	}
	b.WriteString("\n")
	b.WriteString(report.MarkdownHeading(2, "Details"))
	for _, v := range details {
		b.WriteString(report.MarkdownHeading(3, v.Campaign))
		if v.Verdict == VerdictIncomparable {
			fmt.Fprintf(&b, "Incomparable: %s.\n\n", v.Reason)
			continue
		}
		dir := "higher is better"
		if !v.HigherIsBetter {
			dir = "lower is better"
		}
		fmt.Fprintf(&b, "- verdict **%s** (%s); median %.6g → %.6g, shift %+.6g (%+.2f%%)\n",
			v.Verdict, dir, v.BaselineMedian, v.CandidateMedian, v.Shift, v.RelShift*100)
		fmt.Fprintf(&b, "- %g%% CI on the median shift: [%.6g, %.6g]\n", v.CILevel*100, v.CILo, v.CIHi)
		if v.BaselineModes != 0 {
			fmt.Fprintf(&b, "- modes: %d → %d\n", v.BaselineModes, v.CandidateModes)
		}
		if len(v.BaselineBreaks) > 0 || len(v.CandidateBreaks) > 0 {
			fmt.Fprintf(&b, "- breakpoints: %s → %s (max drift %.3g of the x-span)\n",
				breaksCell(v.BaselineBreaks), breaksCell(v.CandidateBreaks), v.BreakDrift)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func verdictCell(verdict string) string {
	if verdict == VerdictRegressed || verdict == VerdictIncomparable {
		return "**" + verdict + "**"
	}
	return verdict
}

func shiftCell(v CampaignVerdict) string {
	if v.Verdict == VerdictIncomparable {
		return ""
	}
	if v.Identical {
		return "0 (identical)"
	}
	return fmt.Sprintf("%+.6g (%+.2f%%)", v.Shift, v.RelShift*100)
}

func ciCell(v CampaignVerdict) string {
	if v.Verdict == VerdictIncomparable || v.Identical {
		return ""
	}
	return fmt.Sprintf("[%.6g, %.6g]", v.CILo, v.CIHi)
}

func breaksCell(breaks []float64) string {
	if len(breaks) == 0 {
		return "none"
	}
	parts := make([]string, len(breaks))
	for i, b := range breaks {
		parts[i] = strconv.FormatFloat(b, 'g', 4, 64)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
