// Package compare is the differential campaign comparator: it pairs the
// campaigns of two suite runs — live results or replayed cache entries —
// and decides, with statistical backing, whether each campaign regressed,
// improved, or held. It closes the loop the paper's offline-analysis stage
// opens: because every run keeps its full raw record set (the suite cache
// stores campaigns whole, in design order), two runs can be compared by
// resampling the actual observations instead of trusting reported
// aggregates — the comparison an aggregate-only benchmark cannot support.
//
// Pairing is by campaign name, cross-checked by engine, with the
// content-addressed cache key as the config identity: identical keys mean
// identical (engine, config, design, seed, code) and therefore — by the
// suite's determinism guarantee — identical records, which short-circuits
// to a pass with zero effect. Differing keys trigger the statistical gate:
// a percentile-bootstrap confidence interval on the shift of medians
// (stats.ShiftCI over the raw values), oriented by the metric direction the
// engine's registry definition declares (internal/engine): bandwidth and
// effective MHz are higher-better, operation latency is lower-better. A
// campaign regresses only when the interval
// excludes zero on the worse side AND the relative shift clears a
// practical-significance floor, so resampling noise and irrelevantly tiny
// drifts both stay quiet. Structural probes — mode-count changes
// (stats.SplitModes) and piecewise-breakpoint drift (stats.SelectSegmented)
// — annotate the verdict with flags but do not gate it: they are diagnosis
// leads for the analyst, not pass/fail evidence.
//
// Every product is deterministic: the bootstrap seed derives from the gate
// seed and the campaign name, campaigns sort by name, and the verdict file
// is canonical JSON — two comparisons of the same records are
// byte-identical regardless of worker counts or directory layout.
package compare

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"opaquebench/internal/core"
	"opaquebench/internal/engine"
	"opaquebench/internal/runner"
	"opaquebench/internal/stats"
	"opaquebench/internal/suite"
)

// Sample is one campaign's raw record set from one suite run.
type Sample struct {
	// Campaign and Engine identify the campaign.
	Campaign string
	Engine   string
	// Seed is the campaign seed the records were produced under.
	Seed uint64
	// Key is the content-addressed cache key — the campaign's config
	// identity. Empty for samples not taken from a cache.
	Key string
	// Records is the full raw record set in design order.
	Records []core.RawRecord
}

// Values returns the primary metric of every record, in design order.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.Records))
	for i, rec := range s.Records {
		out[i] = rec.Value
	}
	return out
}

// SampleFromEntry rebuilds a campaign sample from a cached suite entry by
// replaying it into memory — the same record sequence the file sinks see.
func SampleFromEntry(key string, e *suite.Entry) (Sample, error) {
	var m runner.MemorySink
	if err := e.Replay(&m); err != nil {
		return Sample{}, fmt.Errorf("compare: replay %s: %w", key, err)
	}
	return Sample{
		Campaign: e.Campaign,
		Engine:   e.Engine,
		Seed:     e.Seed,
		Key:      key,
		Records:  m.Records,
	}, nil
}

// SampleFromRounds rebuilds one adaptive campaign's sample from its
// per-round cache entries, given in round order: the records concatenate
// into the single stream the campaign's sinks saw, and the sample key
// joins the round keys — so two runs whose round chains are identical
// entry for entry still short-circuit through the identical-records fast
// path.
func SampleFromRounds(keys []string, entries []*suite.Entry) (Sample, error) {
	if len(entries) == 0 || len(keys) != len(entries) {
		return Sample{}, fmt.Errorf("compare: want matched round keys and entries, got %d/%d", len(keys), len(entries))
	}
	var out Sample
	for i, e := range entries {
		s, err := SampleFromEntry(keys[i], e)
		if err != nil {
			return Sample{}, err
		}
		if i == 0 {
			out = s
			continue
		}
		if s.Campaign != out.Campaign || s.Engine != out.Engine {
			return Sample{}, fmt.Errorf("compare: round entries disagree: %s/%s vs %s/%s",
				out.Campaign, out.Engine, s.Campaign, s.Engine)
		}
		out.Key += "+" + s.Key
		out.Records = append(out.Records, s.Records...)
	}
	return out, nil
}

// LoadCacheDir reads every entry of a suite cache — a cache directory or,
// when dir names a store file, an embedded result store — and groups the
// samples by campaign name. More than one entry per name (a cache that
// accumulated entries across edited runs) is preserved so the comparator
// can refuse the ambiguity instead of silently picking one.
func LoadCacheDir(dir string) (map[string][]Sample, error) {
	cache, err := suite.ReadCache(dir)
	if err != nil {
		return nil, err
	}
	defer cache.Close()
	return loadSamples(cache)
}

// loadSamples reads every entry of an open cache, whichever backend it is,
// and groups the samples by campaign name.
func loadSamples(cache *suite.Cache) (map[string][]Sample, error) {
	keys, err := cache.Keys()
	if err != nil {
		return nil, err
	}
	loaded := make([]loadedEntry, 0, len(keys))
	for _, key := range keys {
		entry, err := cache.Load(key)
		if err != nil {
			return nil, err
		}
		loaded = append(loaded, loadedEntry{key, entry})
	}
	return samplesFromEntries(loaded)
}

// samplesFromEntries groups loaded cache entries into per-campaign samples
// — the shared grouping behind the directory, store and per-run loaders.
func samplesFromEntries(loaded []loadedEntry) (map[string][]Sample, error) {
	byCampaign := make(map[string][]loadedEntry, len(loaded))
	var order []string
	for _, l := range loaded {
		if _, seen := byCampaign[l.entry.Campaign]; !seen {
			order = append(order, l.entry.Campaign)
		}
		byCampaign[l.entry.Campaign] = append(byCampaign[l.entry.Campaign], l)
	}
	out := make(map[string][]Sample, len(byCampaign))
	for _, campaign := range order {
		group := byCampaign[campaign]
		// The rounds of one adaptive campaign are a chain, not an
		// ambiguity: when every entry carries a distinct positive round
		// index, reassemble them into the single record stream the
		// campaign produced. Anything else (static duplicates, a mix of
		// round and non-round entries) keeps the per-entry samples and is
		// judged ambiguous downstream.
		if rounds, ok := roundChain(group); ok {
			roundKeys := make([]string, len(rounds))
			entries := make([]*suite.Entry, len(rounds))
			for i, l := range rounds {
				roundKeys[i] = l.key
				entries[i] = l.entry
			}
			s, err := SampleFromRounds(roundKeys, entries)
			if err != nil {
				return nil, err
			}
			out[campaign] = append(out[campaign], s)
			continue
		}
		for _, l := range group {
			s, err := SampleFromEntry(l.key, l.entry)
			if err != nil {
				return nil, err
			}
			out[campaign] = append(out[campaign], s)
		}
	}
	return out, nil
}

// loadedEntry pairs a cache entry with the key it was stored under.
type loadedEntry struct {
	key   string
	entry *suite.Entry
}

// roundChain reports whether the group is the complete round chain of one
// adaptive campaign — more than one entry, round indices exactly 1..N —
// and returns it sorted by round. The contiguity requirement keeps stale
// partial chains (a lingering round-2 entry whose round-1 sibling was
// since overwritten) out of the merge: those fall back to per-entry
// samples and are judged ambiguous downstream, the loud path. A complete
// chain always merges, even when the spec has since stopped running those
// rounds — the cache faithfully records what that study measured, and
// comparing it against a differently-designed candidate is the ordinary
// statistical gate over differing keys, exactly as when a static
// campaign's design is edited between runs.
func roundChain(group []loadedEntry) ([]loadedEntry, bool) {
	if len(group) < 2 {
		return nil, false
	}
	seen := map[int]bool{}
	for _, l := range group {
		if l.entry.Round < 1 || l.entry.Round > len(group) || seen[l.entry.Round] {
			return nil, false
		}
		seen[l.entry.Round] = true
	}
	sorted := append([]loadedEntry(nil), group...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].entry.Round < sorted[j].entry.Round })
	return sorted, true
}

// Gate tunes the statistical regression gate.
type Gate struct {
	// Level is the bootstrap confidence level (default 0.99: a perf gate
	// should be slow to cry wolf).
	Level float64
	// Reps is the bootstrap replication count (default 2000).
	Reps int
	// Seed drives the bootstrap resampling; the per-campaign seed derives
	// from it and the campaign name, so verdicts are deterministic and
	// campaigns independent (default 1).
	Seed uint64
	// MinRelShift is the practical-significance floor: a shift whose
	// relative magnitude stays below it never gates, however tight the CI
	// (default 0.01 — one percent).
	MinRelShift float64
	// MaxBreaks bounds the piecewise probe's neutral segmented search;
	// 0 keeps the default 3, negative disables the probe.
	MaxBreaks int
	// MinSeg is the minimum observations per fitted segment (default 10).
	MinSeg int
	// BreakDriftTol is the relative breakpoint-position drift (against the
	// baseline x-span) above which the drift flag raises (default 0.1).
	BreakDriftTol float64
}

func (g Gate) withDefaults() Gate {
	if g.Level <= 0 || g.Level >= 1 {
		g.Level = 0.99
	}
	if g.Reps < 10 {
		g.Reps = 2000
	}
	if g.Seed == 0 {
		g.Seed = 1
	}
	if g.MinRelShift <= 0 {
		g.MinRelShift = 0.01
	}
	if g.MaxBreaks == 0 {
		g.MaxBreaks = 3
	}
	if g.MinSeg < 2 {
		g.MinSeg = 10
	}
	if g.BreakDriftTol <= 0 {
		g.BreakDriftTol = 0.1
	}
	return g
}

// pairSeed derives the campaign's bootstrap seed from the gate seed, so
// adding or removing campaigns cannot move another campaign's verdict.
func pairSeed(seed uint64, campaign string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(campaign))
	return seed ^ h.Sum64()
}

// Compare pairs every campaign of the two runs by name and applies the
// statistical gate to each pair. Campaigns missing on one side, paired
// across engines, or cached ambiguously are verdicted incomparable rather
// than guessed at. The result is deterministic: campaigns sort by name and
// all resampling is seeded.
func Compare(baseline, candidate map[string][]Sample, g Gate) *Comparison {
	g = g.withDefaults()
	names := map[string]bool{}
	for n := range baseline {
		names[n] = true
	}
	for n := range candidate {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	c := &Comparison{
		Level:       g.Level,
		Reps:        g.Reps,
		Seed:        g.Seed,
		MinRelShift: g.MinRelShift,
	}
	for _, name := range sorted {
		v := comparePair(name, baseline[name], candidate[name], g)
		c.Campaigns = append(c.Campaigns, v)
		switch v.Verdict {
		case VerdictPass:
			c.Pass++
		case VerdictRegressed:
			c.Regressed++
		case VerdictImproved:
			c.Improved++
		default:
			c.Incomparable++
		}
	}
	return c
}

// comparePair gates one campaign pair.
func comparePair(name string, base, cand []Sample, g Gate) CampaignVerdict {
	v := CampaignVerdict{Campaign: name, Verdict: VerdictIncomparable}
	switch {
	case len(base) == 0:
		v.Reason = "absent from the baseline run"
		return v
	case len(cand) == 0:
		v.Reason = "absent from the candidate run"
		return v
	case len(base) > 1:
		v.Reason = fmt.Sprintf("%d baseline cache entries named %q — stale entries from edited runs; use a fresh cache directory", len(base), name)
		return v
	case len(cand) > 1:
		v.Reason = fmt.Sprintf("%d candidate cache entries named %q — stale entries from edited runs; use a fresh cache directory", len(cand), name)
		return v
	}
	b, a := base[0], cand[0]
	v.Engine = b.Engine
	v.BaselineKey = b.Key
	v.CandidateKey = a.Key
	v.BaselineN = len(b.Records)
	v.CandidateN = len(a.Records)
	if b.Engine != a.Engine {
		v.Engine = ""
		v.Reason = fmt.Sprintf("engine changed: %s vs %s", b.Engine, a.Engine)
		return v
	}
	def, known := engine.Lookup(b.Engine)
	if !known {
		v.Reason = fmt.Sprintf("unknown engine %q: metric direction undefined", b.Engine)
		return v
	}
	higher := def.HigherIsBetter()
	v.HigherIsBetter = higher
	if len(b.Records) == 0 || len(a.Records) == 0 {
		v.Reason = "a side has no records"
		return v
	}

	bv, av := b.Values(), a.Values()
	v.BaselineMedian = stats.Median(bv)
	v.CandidateMedian = stats.Median(av)

	if equalValues(bv, av) {
		// The suite determinism guarantee's fast path: identical records
		// (always the case when the cache keys match) compare to a pass
		// with exactly zero effect — no resampling, no structural probes,
		// since identical series cannot drift from themselves. This is
		// the path every cache-hit campaign of a gated run takes.
		v.Verdict = VerdictPass
		v.Identical = true
		v.CILevel = g.Level
		return v
	}
	if v.BaselineMedian == 0 {
		// The practical-significance floor is relative to the baseline
		// median; against a zero baseline it is undefined, and silently
		// passing would let any regression through. Loud, like every
		// other unjudgeable pair.
		v.Reason = "baseline median is zero: relative shift undefined"
		return v
	}
	probeStructure(&v, &b, &a, g)

	ci, err := stats.MedianShiftCI(bv, av, g.Level, g.Reps, pairSeed(g.Seed, name))
	if err != nil {
		v.Reason = fmt.Sprintf("bootstrap failed: %v", err)
		return v
	}
	v.Shift = v.CandidateMedian - v.BaselineMedian
	v.RelShift = v.Shift / math.Abs(v.BaselineMedian)
	v.CILo, v.CIHi, v.CILevel = ci.Lo, ci.Hi, ci.Level

	worse := ci.Hi < 0  // the whole interval is a drop
	better := ci.Lo > 0 // the whole interval is a rise
	if !higher {
		worse, better = better, worse
	}
	practical := math.Abs(v.RelShift) >= g.MinRelShift
	switch {
	case worse && practical:
		v.Verdict = VerdictRegressed
	case better && practical:
		v.Verdict = VerdictImproved
	default:
		v.Verdict = VerdictPass
	}
	return v
}

// probeStructure runs the non-gating diagnosis probes: mode counts on the
// pooled values and breakpoint drift of the neutral piecewise fit over the
// primary numeric factor.
func probeStructure(v *CampaignVerdict, base, cand *Sample, g Gate) {
	v.BaselineModes = modeCount(base.Values())
	v.CandidateModes = modeCount(cand.Values())
	if v.BaselineModes != v.CandidateModes {
		v.Flags = append(v.Flags, FlagModesChanged)
	}
	if g.MaxBreaks < 0 {
		return
	}
	factor := primaryFactor(base.Records)
	if factor == "" || factor != primaryFactor(cand.Records) {
		return
	}
	bb, span, okB := fitBreaks(base.Records, factor, g)
	cb, _, okC := fitBreaks(cand.Records, factor, g)
	if !okB || !okC {
		return
	}
	v.BaselineBreaks = bb
	v.CandidateBreaks = cb
	if len(bb) != len(cb) {
		v.Flags = append(v.Flags, FlagBreakCountChanged)
		return
	}
	drift := 0.0
	for i := range bb {
		if d := math.Abs(cb[i]-bb[i]) / span; d > drift {
			drift = d
		}
	}
	v.BreakDrift = drift
	if drift > g.BreakDriftTol {
		v.Flags = append(v.Flags, FlagBreakDrift)
	}
}

// modeCount reports 2 when the pooled values split into genuine modes
// (the Figure 10/11 bimodality diagnosis), else 1.
func modeCount(vals []float64) int {
	split, err := stats.SplitModes(vals)
	if err == nil && split.Bimodal(0.05, 3) {
		return 2
	}
	return 1
}

// primaryFactor picks the numeric factor the piecewise probe runs over:
// the conventional names first ("size", then "nloops"), else the first
// factor, in sorted order, with at least two distinct parseable levels.
func primaryFactor(recs []core.RawRecord) string {
	distinct := map[string]map[float64]bool{}
	for _, rec := range recs {
		for k := range rec.Point {
			x, err := rec.Point.Float(k)
			if err != nil {
				continue
			}
			if distinct[k] == nil {
				distinct[k] = map[float64]bool{}
			}
			distinct[k][x] = true
		}
	}
	for _, preferred := range []string{"size", "nloops"} {
		if len(distinct[preferred]) >= 2 {
			return preferred
		}
	}
	names := make([]string, 0, len(distinct))
	for k, levels := range distinct {
		if len(levels) >= 2 {
			names = append(names, k)
		}
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	return names[0]
}

// fitBreaks runs the neutral relative-error segmented search over (factor,
// value) and returns the interior breakpoints plus the x-span drift is
// measured against. ok is false when no feasible fit exists — small
// campaigns simply skip the probe.
func fitBreaks(recs []core.RawRecord, factor string, g Gate) (breaks []float64, span float64, ok bool) {
	var xs, ys []float64
	for _, rec := range recs {
		x, err := rec.Point.Float(factor)
		if err != nil {
			continue
		}
		xs = append(xs, x)
		ys = append(ys, rec.Value)
	}
	if len(xs) < 2*g.MinSeg {
		return nil, 0, false
	}
	pf, err := stats.SelectSegmentedRelative(xs, ys, g.MaxBreaks, g.MinSeg)
	if err != nil {
		return nil, 0, false
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if hi == lo {
		return nil, 0, false
	}
	// Breaks is non-nil even for k=0 fits; normalize nil so JSON stays
	// canonical across paths.
	if len(pf.Breaks) == 0 {
		return nil, hi - lo, true
	}
	return pf.Breaks, hi - lo, true
}

func equalValues(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
