package runner

import (
	"io"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
)

// benchRecord is a representative hot-path record: a two-factor point plus
// the extras the simulator engines attach to every trial.
func benchRecord() core.RawRecord {
	return core.RawRecord{
		Seq:     42,
		Rep:     3,
		Value:   1234.5678,
		Seconds: 0.00123,
		At:      9.875,
		Point: doe.Point{
			"size_bytes": "65536",
			"stride":     "4",
		},
		Extra: map[string]string{
			"bound_by": "L2",
			"slowdown": "1.0312",
		},
	}
}

// BenchmarkCSVSinkEncodeRecord measures the per-record cost of the CSV
// streaming sink. After the first record fixes the header and warms the
// scratch buffers, the encode path must be allocation-free — CI asserts
// 0 allocs/op on every *EncodeRecord* benchmark via cmd/bench.
func BenchmarkCSVSinkEncodeRecord(b *testing.B) {
	s := NewCSVSink(io.Discard)
	rec := benchRecord()
	if err := s.Write(rec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJSONLSinkEncodeRecord measures the per-record cost of the JSONL
// streaming sink; same allocation budget as the CSV sink.
func BenchmarkJSONLSinkEncodeRecord(b *testing.B) {
	s := NewJSONLSink(io.Discard)
	rec := benchRecord()
	if err := s.Write(rec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSinkEncodeAllocationFree pins the tentpole invariant directly: once a
// sink's header and scratch buffers are warm, writing a record performs no
// heap allocations. AllocsPerRun catches regressions even when the CI
// benchmark job is skipped.
func TestSinkEncodeAllocationFree(t *testing.T) {
	rec := benchRecord()
	sinks := map[string]RecordSink{
		"csv":   NewCSVSink(io.Discard),
		"jsonl": NewJSONLSink(io.Discard),
	}
	for name, s := range sinks {
		if err := s.Write(rec); err != nil {
			t.Fatalf("%s: warmup write: %v", name, err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if err := s.Write(rec); err != nil {
				t.Fatalf("%s: write: %v", name, err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s sink: %v allocs per record, want 0", name, allocs)
		}
	}
}
