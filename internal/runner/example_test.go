package runner_test

import (
	"os"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/runner"
)

// FileSinks opens the conventional command-line sink set. With both paths
// empty no file is touched and the CSV sink streams to the given writer —
// the arrangement the engine CLIs use for stdout output.
func ExampleFileSinks() {
	sinks, closers, err := runner.FileSinks(os.Stdout, "", "")
	if err != nil {
		panic(err)
	}
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()

	rec := core.RawRecord{
		Seq:     0,
		Rep:     0,
		Value:   1200,
		Seconds: 0.004,
		Point:   doe.Point{"size": "1024"},
	}
	for _, s := range sinks {
		if err := s.Write(rec); err != nil {
			panic(err)
		}
		if err := s.Flush(); err != nil {
			panic(err)
		}
	}
	// Output:
	// seq,rep,value,seconds,at,size
	// 0,0,1200,0.004,0,1024
}
