package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
)

func sampleRecords() []core.RawRecord {
	recs := make([]core.RawRecord, 3)
	for i := range recs {
		recs[i] = core.RawRecord{
			Seq:     i,
			Rep:     i % 2,
			Value:   float64(i) * 1.5,
			Seconds: 0.25,
			At:      float64(i),
			Point:   doe.Point{"size": doe.Level("4096"), "op": doe.Level("send")},
		}
		recs[i].Annotate("perturbed", "false")
	}
	return recs
}

// TestFileSinks covers the shared CLI sink-opening helper: stdout-only,
// file redirection with an extra JSONL sink, and the no-dangling-files
// error path.
func TestFileSinks(t *testing.T) {
	sinks, closers, err := FileSinks(&bytes.Buffer{}, "", "")
	if err != nil || len(sinks) != 1 || len(closers) != 0 {
		t.Fatalf("stdout-only: sinks=%d closers=%d err=%v", len(sinks), len(closers), err)
	}
	dir := t.TempDir()
	outPath := dir + "/out.csv"
	jsonlPath := dir + "/out.jsonl"
	sinks, closers, err = FileSinks(&bytes.Buffer{}, outPath, jsonlPath)
	if err != nil || len(sinks) != 2 || len(closers) != 2 {
		t.Fatalf("files: sinks=%d closers=%d err=%v", len(sinks), len(closers), err)
	}
	for _, rec := range sampleRecords() {
		for _, s := range sinks {
			if err := s.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, s := range sinks {
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range closers {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []string{outPath, jsonlPath} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s: empty output", p)
		}
	}
	// A JSONL path that cannot be created must close the CSV file already
	// opened, return nothing — and leave the existing CSV's previous
	// contents untouched (truncation only happens once every output is
	// open).
	if err := os.WriteFile(outPath, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := FileSinks(&bytes.Buffer{}, outPath, dir+"/nope/out.jsonl"); err == nil {
		t.Fatal("uncreatable jsonl path accepted")
	}
	if data, err := os.ReadFile(outPath); err != nil || string(data) != "precious" {
		t.Fatalf("failed FileSinks clobbered the existing CSV: %q, %v", data, err)
	}
	// Reopening over previous longer contents truncates before streaming.
	sinks, closers, err = FileSinks(&bytes.Buffer{}, outPath, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := sinks[0].Flush(); err != nil {
		t.Fatal(err)
	}
	closers[0].Close()
	if data, _ := os.ReadFile(outPath); strings.Contains(string(data), "precious") {
		t.Fatalf("stale contents survived a successful reopen: %q", data)
	}
}

func TestCSVSinkMatchesWriteCSV(t *testing.T) {
	recs := sampleRecords()
	res := &core.Results{Records: recs}
	var want bytes.Buffer
	if err := res.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := WriteAll(res, NewCSVSink(&got)); err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Fatalf("CSV mismatch:\nwant:\n%s\ngot:\n%s", want.String(), got.String())
	}
	// And the stream parses back to the same records.
	parsed, err := core.ReadCSV(&got)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != len(recs) {
		t.Fatalf("round trip lost records: %d vs %d", parsed.Len(), len(recs))
	}
}

func TestCSVSinkEmptyCampaignHeaderOnly(t *testing.T) {
	var got bytes.Buffer
	s := NewCSVSink(&got)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := (&core.Results{}).WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("empty CSV: got %q want %q", got.String(), want.String())
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for _, r := range recs {
		if err := sink.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		line := sc.Text()
		var obj struct {
			Seq     int               `json:"seq"`
			Rep     int               `json:"rep"`
			Value   float64           `json:"value"`
			Seconds float64           `json:"seconds"`
			At      float64           `json:"at"`
			Point   map[string]string `json:"point"`
			Extra   map[string]string `json:"extra"`
		}
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		want := recs[n]
		if obj.Seq != want.Seq || obj.Rep != want.Rep || obj.Value != want.Value ||
			obj.Seconds != want.Seconds || obj.At != want.At {
			t.Fatalf("line %d: %+v vs %+v", n, obj, want)
		}
		if obj.Point["size"] != "4096" || obj.Point["op"] != "send" {
			t.Fatalf("line %d point: %v", n, obj.Point)
		}
		if obj.Extra["perturbed"] != "false" {
			t.Fatalf("line %d extra: %v", n, obj.Extra)
		}
		n++
	}
	if n != len(recs) {
		t.Fatalf("%d JSONL lines, want %d", n, len(recs))
	}
}

func TestJSONLSinkOmitsEmptyPoint(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	if err := sink.Write(core.RawRecord{Seq: 0, Value: 1}); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if strings.Contains(line, "point") || strings.Contains(line, "extra") {
		t.Fatalf("empty maps serialized: %s", line)
	}
}

// brokenWriter fails every write after the first `allow` calls, simulating
// a short write (half the payload lands, then the error) — the disk-full
// shape that tears a line.
type brokenWriter struct {
	allow    int
	attempts int
	buf      bytes.Buffer
}

func (w *brokenWriter) Write(p []byte) (int, error) {
	w.attempts++
	if w.attempts > w.allow {
		n := len(p) / 2
		w.buf.Write(p[:n])
		return n, os.ErrClosed
	}
	w.buf.Write(p)
	return len(p), nil
}

// TestJSONLSinkLatchesWriteError: after a torn write, no further byte may
// ever reach the file — appending after the tear would corrupt the middle
// of the stream instead of truncating its end. The sink buffers, so the
// underlying writer is only touched at flush (or when the buffer spills);
// the test drives a flush per record to force each record down separately.
func TestJSONLSinkLatchesWriteError(t *testing.T) {
	w := &brokenWriter{allow: 1}
	s := NewJSONLSink(w)
	recs := sampleRecords()
	if err := s.Write(recs[0]); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("first flush: %v", err)
	}
	if err := s.Write(recs[1]); err != nil {
		t.Fatalf("buffered write: %v", err)
	}
	first := s.Flush()
	if first == nil {
		t.Fatal("torn flush reported success")
	}
	tornLen := w.buf.Len()
	if err := s.Write(recs[2]); err != first {
		t.Fatalf("write after tear: %v, want the latched %v", err, first)
	}
	if err := s.Flush(); err != first {
		t.Fatalf("flush after tear: %v, want the latched %v", err, first)
	}
	if w.buf.Len() != tornLen || w.attempts != 2 {
		t.Fatalf("bytes written after the tear: %d -> %d bytes, %d attempts",
			tornLen, w.buf.Len(), w.attempts)
	}
}

// TestJSONLSinkLatchesMidStreamSpill: when the buffer spills mid-campaign
// (the steady state of a large run) and the spill tears, later records must
// not reach the writer either — the latch catches errors surfaced by Write
// itself, not only by Flush.
func TestJSONLSinkLatchesMidStreamSpill(t *testing.T) {
	w := &brokenWriter{allow: 0}
	s := NewJSONLSink(w)
	rec := sampleRecords()[0]
	rec.Annotate("pad", strings.Repeat("x", 2*sinkBufBytes))
	first := s.Write(rec) // bigger than the buffer: spills, tears, latches
	if first == nil {
		t.Fatal("torn spill reported success")
	}
	tornLen := w.buf.Len()
	if err := s.Write(sampleRecords()[0]); err != first {
		t.Fatalf("write after tear: %v, want the latched %v", err, first)
	}
	if err := s.Flush(); err != first {
		t.Fatalf("flush after tear: %v, want the latched %v", err, first)
	}
	if w.buf.Len() != tornLen {
		t.Fatalf("bytes written after the tear: %d -> %d bytes", tornLen, w.buf.Len())
	}
}

// TestCSVSinkLatchesFlushError: once a flush has failed, later writes and
// flushes return the latched error and push nothing more at the writer.
func TestCSVSinkLatchesFlushError(t *testing.T) {
	w := &brokenWriter{allow: 0}
	s := NewCSVSink(w)
	recs := sampleRecords()
	if err := s.Write(recs[0]); err != nil {
		// Small rows buffer inside csv.Writer; no underlying write yet.
		t.Fatalf("buffered write: %v", err)
	}
	first := s.Flush()
	if first == nil {
		t.Fatal("flush over a broken writer reported success")
	}
	attempts := w.attempts
	if err := s.Write(recs[1]); err != first {
		t.Fatalf("write after failed flush: %v, want the latched %v", err, first)
	}
	if err := s.Flush(); err != first {
		t.Fatalf("second flush: %v, want the latched %v", err, first)
	}
	if w.attempts != attempts {
		t.Fatalf("writer attempted again after the latch: %d -> %d", attempts, w.attempts)
	}
}

func TestMemorySinkCapturesStream(t *testing.T) {
	recs := sampleRecords()
	var m MemorySink
	if err := WriteAll(&core.Results{Records: recs}, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Records) != len(recs) {
		t.Fatalf("%d records captured, want %d", len(m.Records), len(recs))
	}
	for i, rec := range recs {
		if m.Records[i].Seq != rec.Seq || m.Records[i].Value != rec.Value {
			t.Fatalf("record %d: seq %d value %v, want %d %v",
				i, m.Records[i].Seq, m.Records[i].Value, rec.Seq, rec.Value)
		}
	}
}

// TestCSVSinkValidationRejectionDoesNotLatch: a record that does not fit
// the frozen header writes zero bytes, so it must not poison the sink —
// later valid records still stream and Flush still delivers the full valid
// prefix.
func TestCSVSinkValidationRejectionDoesNotLatch(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSVSink(&buf)
	recs := sampleRecords()
	if err := s.Write(recs[0]); err != nil {
		t.Fatal(err)
	}
	bad := core.RawRecord{Seq: 99, Point: doe.Point{"surprise": "1"}}
	if err := s.Write(bad); err == nil {
		t.Fatal("heterogeneous record accepted")
	}
	if err := s.Write(recs[1]); err != nil {
		t.Fatalf("valid record after a validation rejection: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush after a validation rejection: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + the two valid rows
		t.Fatalf("flushed %d lines, want 3:\n%s", len(lines), buf.String())
	}
}

func TestCSVSinkRejectsLateNewColumns(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSVSink(&buf)
	first := core.RawRecord{Seq: 0, Point: doe.Point{"size": "1"}}
	if err := s.Write(first); err != nil {
		t.Fatal(err)
	}
	// A missing key serializes as an empty cell, like WriteCSV.
	if err := s.Write(core.RawRecord{Seq: 1, Point: doe.Point{}}); err != nil {
		t.Fatalf("record missing a factor rejected: %v", err)
	}
	// A new factor cannot join a streamed header: that would silently
	// drop raw data.
	newFactor := core.RawRecord{Seq: 2, Point: doe.Point{"size": "1", "op": "send"}}
	if err := s.Write(newFactor); err == nil {
		t.Fatal("record with a new factor accepted after the header froze")
	}
	newExtra := core.RawRecord{Seq: 3, Point: doe.Point{"size": "1"}}
	newExtra.Annotate("surprise", "1")
	if err := s.Write(newExtra); err == nil {
		t.Fatal("record with a new extra accepted after the header froze")
	}
}
