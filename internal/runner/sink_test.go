package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
)

func sampleRecords() []core.RawRecord {
	recs := make([]core.RawRecord, 3)
	for i := range recs {
		recs[i] = core.RawRecord{
			Seq:     i,
			Rep:     i % 2,
			Value:   float64(i) * 1.5,
			Seconds: 0.25,
			At:      float64(i),
			Point:   doe.Point{"size": doe.Level("4096"), "op": doe.Level("send")},
		}
		recs[i].Annotate("perturbed", "false")
	}
	return recs
}

// TestFileSinks covers the shared CLI sink-opening helper: stdout-only,
// file redirection with an extra JSONL sink, and the no-dangling-files
// error path.
func TestFileSinks(t *testing.T) {
	sinks, closers, err := FileSinks(&bytes.Buffer{}, "", "")
	if err != nil || len(sinks) != 1 || len(closers) != 0 {
		t.Fatalf("stdout-only: sinks=%d closers=%d err=%v", len(sinks), len(closers), err)
	}
	dir := t.TempDir()
	outPath := dir + "/out.csv"
	jsonlPath := dir + "/out.jsonl"
	sinks, closers, err = FileSinks(&bytes.Buffer{}, outPath, jsonlPath)
	if err != nil || len(sinks) != 2 || len(closers) != 2 {
		t.Fatalf("files: sinks=%d closers=%d err=%v", len(sinks), len(closers), err)
	}
	for _, rec := range sampleRecords() {
		for _, s := range sinks {
			if err := s.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, s := range sinks {
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range closers {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []string{outPath, jsonlPath} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s: empty output", p)
		}
	}
	// A JSONL path that cannot be created must close the CSV file already
	// opened, return nothing — and leave the existing CSV's previous
	// contents untouched (truncation only happens once every output is
	// open).
	if err := os.WriteFile(outPath, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := FileSinks(&bytes.Buffer{}, outPath, dir+"/nope/out.jsonl"); err == nil {
		t.Fatal("uncreatable jsonl path accepted")
	}
	if data, err := os.ReadFile(outPath); err != nil || string(data) != "precious" {
		t.Fatalf("failed FileSinks clobbered the existing CSV: %q, %v", data, err)
	}
	// Reopening over previous longer contents truncates before streaming.
	sinks, closers, err = FileSinks(&bytes.Buffer{}, outPath, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := sinks[0].Flush(); err != nil {
		t.Fatal(err)
	}
	closers[0].Close()
	if data, _ := os.ReadFile(outPath); strings.Contains(string(data), "precious") {
		t.Fatalf("stale contents survived a successful reopen: %q", data)
	}
}

func TestCSVSinkMatchesWriteCSV(t *testing.T) {
	recs := sampleRecords()
	res := &core.Results{Records: recs}
	var want bytes.Buffer
	if err := res.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := WriteAll(res, NewCSVSink(&got)); err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Fatalf("CSV mismatch:\nwant:\n%s\ngot:\n%s", want.String(), got.String())
	}
	// And the stream parses back to the same records.
	parsed, err := core.ReadCSV(&got)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != len(recs) {
		t.Fatalf("round trip lost records: %d vs %d", parsed.Len(), len(recs))
	}
}

func TestCSVSinkEmptyCampaignHeaderOnly(t *testing.T) {
	var got bytes.Buffer
	s := NewCSVSink(&got)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := (&core.Results{}).WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("empty CSV: got %q want %q", got.String(), want.String())
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for _, r := range recs {
		if err := sink.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		line := sc.Text()
		var obj struct {
			Seq     int               `json:"seq"`
			Rep     int               `json:"rep"`
			Value   float64           `json:"value"`
			Seconds float64           `json:"seconds"`
			At      float64           `json:"at"`
			Point   map[string]string `json:"point"`
			Extra   map[string]string `json:"extra"`
		}
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		want := recs[n]
		if obj.Seq != want.Seq || obj.Rep != want.Rep || obj.Value != want.Value ||
			obj.Seconds != want.Seconds || obj.At != want.At {
			t.Fatalf("line %d: %+v vs %+v", n, obj, want)
		}
		if obj.Point["size"] != "4096" || obj.Point["op"] != "send" {
			t.Fatalf("line %d point: %v", n, obj.Point)
		}
		if obj.Extra["perturbed"] != "false" {
			t.Fatalf("line %d extra: %v", n, obj.Extra)
		}
		n++
	}
	if n != len(recs) {
		t.Fatalf("%d JSONL lines, want %d", n, len(recs))
	}
}

func TestJSONLSinkOmitsEmptyPoint(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	if err := sink.Write(core.RawRecord{Seq: 0, Value: 1}); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if strings.Contains(line, "point") || strings.Contains(line, "extra") {
		t.Fatalf("empty maps serialized: %s", line)
	}
}

func TestCSVSinkRejectsLateNewColumns(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSVSink(&buf)
	first := core.RawRecord{Seq: 0, Point: doe.Point{"size": "1"}}
	if err := s.Write(first); err != nil {
		t.Fatal(err)
	}
	// A missing key serializes as an empty cell, like WriteCSV.
	if err := s.Write(core.RawRecord{Seq: 1, Point: doe.Point{}}); err != nil {
		t.Fatalf("record missing a factor rejected: %v", err)
	}
	// A new factor cannot join a streamed header: that would silently
	// drop raw data.
	newFactor := core.RawRecord{Seq: 2, Point: doe.Point{"size": "1", "op": "send"}}
	if err := s.Write(newFactor); err == nil {
		t.Fatal("record with a new factor accepted after the header froze")
	}
	newExtra := core.RawRecord{Seq: 3, Point: doe.Point{"size": "1"}}
	newExtra.Annotate("surprise", "1")
	if err := s.Write(newExtra); err == nil {
		t.Fatal("record with a new extra accepted after the header froze")
	}
}
