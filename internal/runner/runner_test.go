package runner

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"opaquebench/internal/core"
	"opaquebench/internal/cpubench"
	"opaquebench/internal/cpusim"
	"opaquebench/internal/doe"
	"opaquebench/internal/membench"
	"opaquebench/internal/memsim"
	"opaquebench/internal/meta"
	"opaquebench/internal/netbench"
	"opaquebench/internal/netsim"
	"opaquebench/internal/ossim"
)

// stubEngine is a trial-indexed engine: the record is a pure function of
// the trial, with an optional artificial delay and failure injection.
type stubEngine struct {
	delay  func(seq int) time.Duration
	failAt int // Seq that errors; -1 for never
	mu     *sync.Mutex
	calls  *[]int // execution order capture, shared across instances
}

func (s *stubEngine) Execute(t doe.Trial) (core.RawRecord, error) {
	if s.delay != nil {
		time.Sleep(s.delay(t.Seq))
	}
	if s.calls != nil {
		s.mu.Lock()
		*s.calls = append(*s.calls, t.Seq)
		s.mu.Unlock()
	}
	if t.Seq == s.failAt {
		return core.RawRecord{}, fmt.Errorf("boom")
	}
	rec := core.RawRecord{Value: float64(t.Seq) * 2, Seconds: 1, At: float64(t.Seq)}
	rec.Annotate("w", strconv.Itoa(t.Seq))
	return rec, nil
}

func (s *stubEngine) Environment() *meta.Environment { return meta.New() }

func stubFactory(e *stubEngine) core.EngineFactory {
	return core.EngineFactoryFunc(func() (core.Engine, error) {
		c := *e
		return &c, nil
	})
}

func stubDesign(t *testing.T, n int) *doe.Design {
	t.Helper()
	levels := make([]int, n)
	for i := range levels {
		levels[i] = i + 1
	}
	d, err := doe.FullFactorial([]doe.Factor{doe.IntFactor("f", levels...)},
		doe.Options{Seed: 3, Randomize: true})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunFillsDesignOrder(t *testing.T) {
	d := stubDesign(t, 37)
	for _, workers := range []int{1, 3, 8, 64} {
		res, err := Run(context.Background(), d, stubFactory(&stubEngine{failAt: -1}), Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Len() != d.Size() {
			t.Fatalf("workers=%d: %d records, want %d", workers, res.Len(), d.Size())
		}
		for i, rec := range res.Records {
			if rec.Seq != i {
				t.Fatalf("workers=%d: record %d has Seq %d", workers, i, rec.Seq)
			}
			if rec.Value != float64(i)*2 {
				t.Fatalf("workers=%d: record %d has Value %v", workers, i, rec.Value)
			}
			if rec.Rep != d.Trials[i].Rep || rec.Point.Key() != d.Trials[i].Point.Key() {
				t.Fatalf("workers=%d: record %d rep/point mismatch", workers, i)
			}
		}
		if got := res.Env.Get("runner/workers"); got == "" {
			t.Fatalf("workers=%d: missing runner/workers env", workers)
		}
	}
}

func TestRunDefaultsAndEdges(t *testing.T) {
	if _, err := Run(context.Background(), nil, stubFactory(&stubEngine{failAt: -1}), Config{}); err == nil {
		t.Fatal("nil design accepted")
	}
	if _, err := Run(context.Background(), stubDesign(t, 3), nil, Config{}); err == nil {
		t.Fatal("nil factory accepted")
	}
	// Workers <= 0 falls back to GOMAXPROCS; more workers than trials clamps.
	res, err := Run(context.Background(), stubDesign(t, 2), stubFactory(&stubEngine{failAt: -1}), Config{Workers: -1})
	if err != nil || res.Len() != 2 {
		t.Fatalf("defaulted workers: res=%v err=%v", res, err)
	}
	empty := &doe.Design{Factors: []doe.Factor{doe.IntFactor("f", 1)}}
	res, err = Run(context.Background(), empty, stubFactory(&stubEngine{failAt: -1}), Config{Workers: 4})
	if err != nil || res.Len() != 0 {
		t.Fatalf("empty design: res=%v err=%v", res, err)
	}
}

func TestRunFirstErrorWins(t *testing.T) {
	d := stubDesign(t, 50)
	_, err := Run(context.Background(), d, stubFactory(&stubEngine{failAt: 17}), Config{Workers: 4})
	if err == nil {
		t.Fatal("expected error")
	}
	want := fmt.Sprintf("runner: trial 17 (%s): boom", d.Trials[17].Point.Key())
	if err.Error() != want {
		t.Fatalf("err = %q, want %q", err, want)
	}
}

func TestRunFactoryErrorSurfaces(t *testing.T) {
	factory := core.EngineFactoryFunc(func() (core.Engine, error) {
		return nil, fmt.Errorf("no engine for you")
	})
	if _, err := Run(context.Background(), stubDesign(t, 3), factory, Config{Workers: 2}); err == nil {
		t.Fatal("expected factory error")
	}
}

func TestRunContextCancellation(t *testing.T) {
	d := stubDesign(t, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	eng := &stubEngine{failAt: -1, delay: func(int) time.Duration { return time.Millisecond }}
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, d, stubFactory(eng), Config{Workers: 2})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled run returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not stop after cancellation")
	}
}

func TestRunProgressMonotonic(t *testing.T) {
	d := stubDesign(t, 23)
	var seen []int
	_, err := Run(context.Background(), d, stubFactory(&stubEngine{failAt: -1}), Config{
		Workers: 4,
		Progress: func(done, total int) {
			if total != 23 {
				t.Errorf("total = %d, want 23", total)
			}
			seen = append(seen, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 23 {
		t.Fatalf("progress called %d times, want 23", len(seen))
	}
	for i, v := range seen {
		if v != i+1 {
			t.Fatalf("progress[%d] = %d, want %d", i, v, i+1)
		}
	}
}

// TestRunSinkSeesDesignOrder forces out-of-order completion (early trials
// sleep longest) and asserts the sink still observes records 0, 1, 2, ...
func TestRunSinkSeesDesignOrder(t *testing.T) {
	d := stubDesign(t, 24)
	eng := &stubEngine{
		failAt: -1,
		delay: func(seq int) time.Duration {
			return time.Duration(24-seq) * 200 * time.Microsecond
		},
	}
	var got []int
	sink := sinkFunc(func(rec core.RawRecord) error {
		got = append(got, rec.Seq)
		return nil
	})
	if _, err := Run(context.Background(), d, stubFactory(eng), Config{Workers: 6, Sinks: []RecordSink{sink}}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 24 {
		t.Fatalf("sink saw %d records, want 24", len(got))
	}
	for i, seq := range got {
		if seq != i {
			t.Fatalf("sink order broken at %d: got seq %d", i, seq)
		}
	}
}

func TestRunSinkErrorAborts(t *testing.T) {
	d := stubDesign(t, 40)
	n := 0
	sink := sinkFunc(func(core.RawRecord) error {
		n++
		if n == 5 {
			return fmt.Errorf("disk full")
		}
		return nil
	})
	_, err := Run(context.Background(), d, stubFactory(&stubEngine{failAt: -1}), Config{Workers: 4, Sinks: []RecordSink{sink}})
	if err == nil {
		t.Fatal("expected sink error")
	}
}

// sinkFunc adapts a function to RecordSink for tests.
type sinkFunc func(core.RawRecord) error

func (f sinkFunc) Write(rec core.RawRecord) error { return f(rec) }
func (f sinkFunc) Flush() error                   { return nil }

// --- Equivalence with serial core.Campaign.Run -------------------------

func membenchFixture(t *testing.T) (*doe.Design, membench.Config) {
	t.Helper()
	d, err := doe.FullFactorial(
		membench.Factors([]int{4 << 10, 64 << 10, 1 << 20}, []int{1, 4}, nil, []int{50}, nil),
		doe.Options{Replicates: 3, Seed: 7, Randomize: true})
	if err != nil {
		t.Fatal(err)
	}
	return d, membench.Config{Machine: memsim.CoreI7(), Seed: 7}
}

func netbenchFixture(t *testing.T) (*doe.Design, netbench.Config) {
	t.Helper()
	d, err := netbench.Design(11, 60, 64, 1<<20, 3, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	return d, netbench.Config{
		Profile:   netsim.Taurus(),
		Seed:      11,
		Perturber: netsim.NewPerturber(4, netsim.Window{Start: 0.004, End: 0.02}),
	}
}

// assertRecordsIdentical checks the full record payload: Seq, Rep, the
// factor combination, the primary metric, and the raw timing columns.
func assertRecordsIdentical(t *testing.T, label string, serial, parallel *core.Results) {
	t.Helper()
	if parallel.Len() != serial.Len() {
		t.Fatalf("%s: %d records, want %d", label, parallel.Len(), serial.Len())
	}
	for i := range serial.Records {
		a, b := serial.Records[i], parallel.Records[i]
		if a.Seq != b.Seq || a.Rep != b.Rep {
			t.Fatalf("%s: record %d seq/rep: serial (%d,%d) parallel (%d,%d)",
				label, i, a.Seq, a.Rep, b.Seq, b.Rep)
		}
		if a.Point.Key() != b.Point.Key() {
			t.Fatalf("%s: record %d point: %q vs %q", label, i, a.Point.Key(), b.Point.Key())
		}
		if a.Value != b.Value || a.Seconds != b.Seconds || a.At != b.At {
			t.Fatalf("%s: record %d payload: serial (%v,%v,%v) parallel (%v,%v,%v)",
				label, i, a.Value, a.Seconds, a.At, b.Value, b.Seconds, b.At)
		}
		if len(a.Extra) != len(b.Extra) {
			t.Fatalf("%s: record %d extras differ", label, i)
		}
		for k, v := range a.Extra {
			if b.Extra[k] != v {
				t.Fatalf("%s: record %d extra %q: %q vs %q", label, i, k, v, b.Extra[k])
			}
		}
	}
}

func TestMembenchParallelMatchesSerial(t *testing.T) {
	d, cfg := membenchFixture(t)
	factory := membench.Factory(cfg)
	eng, err := factory.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := (&core.Campaign{Design: d, Engine: eng}).Run()
	if err != nil {
		t.Fatal(err)
	}
	var serialCSV bytes.Buffer
	if err := serial.WriteCSV(&serialCSV); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		var parCSV bytes.Buffer
		par, err := Run(context.Background(), d, factory,
			Config{Workers: workers, Sinks: []RecordSink{NewCSVSink(&parCSV)}})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertRecordsIdentical(t, fmt.Sprintf("membench workers=%d", workers), serial, par)
		if !bytes.Equal(serialCSV.Bytes(), parCSV.Bytes()) {
			t.Fatalf("workers=%d: streamed CSV differs from serial WriteCSV", workers)
		}
	}
}

func TestNetbenchParallelMatchesSerial(t *testing.T) {
	d, cfg := netbenchFixture(t)
	factory := netbench.Factory(cfg)
	eng, err := factory.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := (&core.Campaign{Design: d, Engine: eng}).Run()
	if err != nil {
		t.Fatal(err)
	}
	var serialCSV bytes.Buffer
	if err := serial.WriteCSV(&serialCSV); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		var parCSV bytes.Buffer
		par, err := Run(context.Background(), d, factory,
			Config{Workers: workers, Sinks: []RecordSink{NewCSVSink(&parCSV)}})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertRecordsIdentical(t, fmt.Sprintf("netbench workers=%d", workers), serial, par)
		if !bytes.Equal(serialCSV.Bytes(), parCSV.Bytes()) {
			t.Fatalf("workers=%d: streamed CSV differs from serial WriteCSV", workers)
		}
	}
}

func cpubenchFixture(t *testing.T) (*doe.Design, cpubench.Config) {
	t.Helper()
	d, err := doe.FullFactorial(
		cpubench.Factors([]int{20, 2000}, []int{100_000}, []float64{0.5, 1}),
		doe.Options{Replicates: 3, Seed: 13, Randomize: true})
	if err != nil {
		t.Fatal(err)
	}
	// The RT-policy daemon exercises the interference windows in indexed
	// mode: window materialization is lazy, so out-of-order SlowdownAt
	// queries across sharded workers are exactly what this guards.
	return d, cpubench.Config{
		Seed:     13,
		Governor: cpusim.Userspace{TargetHz: 2.6e9},
		Sched:    ossim.Config{Policy: ossim.PolicyRT, DaemonPeriodSec: 0.5},
	}
}

func TestCpubenchParallelMatchesSerial(t *testing.T) {
	d, cfg := cpubenchFixture(t)
	factory := cpubench.Factory(cfg)
	eng, err := factory.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := (&core.Campaign{Design: d, Engine: eng}).Run()
	if err != nil {
		t.Fatal(err)
	}
	var serialCSV bytes.Buffer
	if err := serial.WriteCSV(&serialCSV); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		var parCSV bytes.Buffer
		par, err := Run(context.Background(), d, factory,
			Config{Workers: workers, Sinks: []RecordSink{NewCSVSink(&parCSV)}})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertRecordsIdentical(t, fmt.Sprintf("cpubench workers=%d", workers), serial, par)
		if !bytes.Equal(serialCSV.Bytes(), parCSV.Bytes()) {
			t.Fatalf("workers=%d: streamed CSV differs from serial WriteCSV", workers)
		}
	}
}

// TestParallelRunsAreReproducible reruns the same sharded campaign and
// demands bit-identical output — the determinism guarantee of DESIGN.md.
func TestParallelRunsAreReproducible(t *testing.T) {
	d, cfg := membenchFixture(t)
	factory := membench.Factory(cfg)
	first, err := Run(context.Background(), d, factory, Config{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(context.Background(), d, factory, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertRecordsIdentical(t, "rerun", first, second)
}

// TestRunOrSerial covers the command-line dispatch helper: both branches
// drain the same sinks and return full results.
func TestRunOrSerial(t *testing.T) {
	d := stubDesign(t, 12)
	factory := stubFactory(&stubEngine{failAt: -1})
	serialEng, err := factory.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	var serialCSV, parCSV bytes.Buffer
	serial, err := RunOrSerial(context.Background(), d, nil, serialEng, 1,
		func() ([]RecordSink, error) { return []RecordSink{NewCSVSink(&serialCSV)}, nil })
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunOrSerial(context.Background(), d, factory, nil, 4,
		func() ([]RecordSink, error) { return []RecordSink{NewCSVSink(&parCSV)}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if serial.Len() != 12 || par.Len() != 12 {
		t.Fatalf("lens %d, %d, want 12", serial.Len(), par.Len())
	}
	if serialCSV.String() != parCSV.String() {
		t.Fatal("dispatch branches produced different CSV for a trial-indexed stub")
	}
	// nil openSinks means no sinks.
	if _, err := RunOrSerial(context.Background(), d, factory, nil, 4, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRunOrSerialNeverOpensSinksOnFailure pins the output-preservation
// contract: a serial run that fails mid-campaign, or a parallel run whose
// configuration is rejected, must not touch the output files at all.
func TestRunOrSerialNeverOpensSinksOnFailure(t *testing.T) {
	d := stubDesign(t, 10)
	opened := 0
	openSinks := func() ([]RecordSink, error) {
		opened++
		return nil, nil
	}
	failing, err := stubFactory(&stubEngine{failAt: 4}).NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunOrSerial(context.Background(), d, nil, failing, 1, openSinks); err == nil {
		t.Fatal("failing serial campaign reported success")
	}
	badFactory := core.EngineFactoryFunc(func() (core.Engine, error) {
		return nil, fmt.Errorf("bad config")
	})
	if _, err := RunOrSerial(context.Background(), d, badFactory, nil, 4, openSinks); err == nil {
		t.Fatal("failing factory reported success")
	}
	if opened != 0 {
		t.Fatalf("sinks opened %d times on failing runs, want 0", opened)
	}
}

// TestRunFlushesPrefixOnFailure pins the crash-durability promise: when a
// trial fails mid-campaign, the records already streamed in design order
// must reach the sink's underlying writer, not die in a csv buffer.
func TestRunFlushesPrefixOnFailure(t *testing.T) {
	d := stubDesign(t, 10)
	var buf bytes.Buffer
	// One worker executes 0,1,2,... in order and fails at 5, so exactly
	// the header and rows 0-4 form the flushed prefix.
	_, err := Run(context.Background(), d, stubFactory(&stubEngine{failAt: 5}),
		Config{Workers: 1, Sinks: []RecordSink{NewCSVSink(&buf)}})
	if err == nil {
		t.Fatal("failing campaign reported success")
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("flushed %d CSV lines, want header+5 rows:\n%s", len(lines), buf.String())
	}
	parsed, perr := core.ReadCSV(&buf)
	if perr != nil {
		t.Fatalf("flushed prefix does not parse: %v", perr)
	}
	for i, rec := range parsed.Records {
		if rec.Seq != i {
			t.Fatalf("prefix record %d has seq %d", i, rec.Seq)
		}
	}
}
