package runner

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
	"opaquebench/internal/meta"
)

// cancelingEngine is a trial-indexed stub that cancels the campaign context
// after a fixed number of executions across all workers — the shape of an
// operator interrupt or a suite-level abort landing mid-campaign.
type cancelingEngine struct {
	cancel  context.CancelFunc
	after   int64
	counter *int64
}

func (e *cancelingEngine) Execute(t doe.Trial) (core.RawRecord, error) {
	if atomic.AddInt64(e.counter, 1) == e.after {
		e.cancel()
	}
	rec := core.RawRecord{Value: float64(t.Seq) * 2, Seconds: 1, At: float64(t.Seq)}
	rec.Annotate("w", "x")
	return rec, nil
}

func (e *cancelingEngine) Environment() *meta.Environment { return meta.New() }

// TestCancellationLeavesNoTornLines is the runner error-path guarantee: a
// campaign canceled mid-flight must leave its CSV and JSONL files holding
// complete records only — a byte prefix of the full run, every line intact —
// at realistic worker counts, under the race detector.
func TestCancellationLeavesNoTornLines(t *testing.T) {
	d := stubDesign(t, 400)

	// Full-run references for the prefix checks, from an engine producing
	// the same records but never canceling (after: -1 never matches).
	refEng := &cancelingEngine{cancel: func() {}, after: -1, counter: new(int64)}
	full, err := (&core.Campaign{Design: d, Engine: refEng}).Run()
	if err != nil {
		t.Fatal(err)
	}
	var refCSV, refJSONL bytes.Buffer
	if err := full.WriteCSV(&refCSV); err != nil {
		t.Fatal(err)
	}
	if err := WriteAll(full, NewJSONLSink(&refJSONL)); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{4, 8} {
		dir := t.TempDir()
		csvPath := filepath.Join(dir, "out.csv")
		jsonlPath := filepath.Join(dir, "out.jsonl")
		sinks, closers, err := FileSinks(&bytes.Buffer{}, csvPath, jsonlPath)
		if err != nil {
			t.Fatal(err)
		}

		ctx, cancel := context.WithCancel(context.Background())
		var counter int64
		factory := core.EngineFactoryFunc(func() (core.Engine, error) {
			return &cancelingEngine{cancel: cancel, after: 37, counter: &counter}, nil
		})
		_, runErr := Run(ctx, d, factory, Config{Workers: workers, Sinks: sinks})
		cancel()
		for _, c := range closers {
			c.Close()
		}
		if runErr == nil {
			t.Fatalf("workers=%d: canceled run reported success", workers)
		}

		gotCSV, err := os.ReadFile(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotCSV) == 0 || gotCSV[len(gotCSV)-1] != '\n' {
			t.Fatalf("workers=%d: CSV does not end on a line boundary (%d bytes)", workers, len(gotCSV))
		}
		if !bytes.HasPrefix(refCSV.Bytes(), gotCSV) {
			t.Fatalf("workers=%d: CSV is not a byte prefix of the full run (%d bytes)", workers, len(gotCSV))
		}
		parsed, err := core.ReadCSV(bytes.NewReader(gotCSV))
		if err != nil {
			t.Fatalf("workers=%d: flushed CSV does not parse: %v", workers, err)
		}
		for i, rec := range parsed.Records {
			if rec.Seq != i {
				t.Fatalf("workers=%d: CSV record %d has seq %d — the design-order prefix broke", workers, i, rec.Seq)
			}
		}

		gotJSONL, err := os.ReadFile(jsonlPath)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotJSONL) > 0 && gotJSONL[len(gotJSONL)-1] != '\n' {
			t.Fatalf("workers=%d: JSONL does not end on a line boundary", workers)
		}
		if !bytes.HasPrefix(refJSONL.Bytes(), gotJSONL) {
			t.Fatalf("workers=%d: JSONL is not a byte prefix of the full run", workers)
		}
		sc := bufio.NewScanner(bytes.NewReader(gotJSONL))
		seq := 0
		for sc.Scan() {
			var obj struct {
				Seq int `json:"seq"`
			}
			if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
				t.Fatalf("workers=%d: JSONL line %d torn: %v", workers, seq, err)
			}
			if obj.Seq != seq {
				t.Fatalf("workers=%d: JSONL line %d has seq %d", workers, seq, obj.Seq)
			}
			seq++
		}
		if parsed.Len() != seq {
			t.Fatalf("workers=%d: CSV has %d records but JSONL %d — the sinks disagree", workers, parsed.Len(), seq)
		}
	}
}
