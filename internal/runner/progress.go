package runner

import "sync"

// ProgressUpdate is one progress observation: Done trials completed out of
// Total.
type ProgressUpdate struct {
	Done  int
	Total int
}

// ProgressChan is a bounded, non-blocking bridge between the runner's
// Progress callback and a consumer that may be slow, bursty, or absent — a
// streaming HTTP client, a UI, a log follower.
//
// The Progress callback runs on the runner's collector goroutine while it
// holds the campaign's ordering state (see Config.Progress): a callback
// that blocks stalls sink delivery and, once the workers' completion
// channel fills, the whole campaign. ProgressChan.Send never blocks — when
// the buffer is full the oldest buffered update is dropped, so the newest
// observation always wins and a wedged consumer can only make progress
// reporting coarser, never slower.
//
// One goroutine produces (the runner's collector, via Send) and any one
// goroutine consumes (via Updates). Close after the run returns; the runner
// guarantees Progress is never called after Run returns, and Send must not
// be called after Close.
type ProgressChan struct {
	ch   chan ProgressUpdate
	once sync.Once
}

// NewProgressChan returns a fan-out with the given buffer capacity (values
// < 1 are clamped to 1; capacity 1 keeps exactly the latest update).
func NewProgressChan(buf int) *ProgressChan {
	if buf < 1 {
		buf = 1
	}
	return &ProgressChan{ch: make(chan ProgressUpdate, buf)}
}

// Send records an update without ever blocking; it has the Config.Progress
// shape, so a ProgressChan plugs in as cfg.Progress = pc.Send.
func (p *ProgressChan) Send(done, total int) {
	u := ProgressUpdate{Done: done, Total: total}
	for {
		select {
		case p.ch <- u:
			return
		default:
		}
		// Buffer full: drop the oldest buffered update to make room. Only
		// Send ever writes the channel, so this loop terminates as soon as
		// a slot frees — immediately here, or because the consumer drained
		// one concurrently.
		select {
		case <-p.ch:
		default:
		}
	}
}

// Updates is the consumer side. The channel carries updates in send order
// (minus any dropped under pressure) and closes after Close, so a consumer
// can simply range over it.
func (p *ProgressChan) Updates() <-chan ProgressUpdate { return p.ch }

// Close closes the update channel, letting a ranging consumer terminate
// after draining what is buffered. Close is idempotent; Send must not be
// called afterwards.
func (p *ProgressChan) Close() { p.once.Do(func() { close(p.ch) }) }
