package runner

import (
	"context"
	"testing"
	"time"
)

// TestProgressChanNeverStallsCampaign is the non-blocking guarantee the
// Config.Progress contract demands: a campaign whose progress updates are
// fanned out through a ProgressChan that nobody reads must still complete,
// and the buffer must hold the newest observation — the final (n, n) —
// because Send drops oldest under pressure.
func TestProgressChanNeverStallsCampaign(t *testing.T) {
	d := stubDesign(t, 53)
	pc := NewProgressChan(1)

	done := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), d, stubFactory(&stubEngine{failAt: -1}),
			Config{Workers: 4, Progress: pc.Send})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("campaign stalled behind an unread ProgressChan")
	}
	pc.Close()

	var last ProgressUpdate
	var got bool
	for u := range pc.Updates() {
		last, got = u, true
	}
	if !got {
		t.Fatal("no update buffered")
	}
	if last.Done != d.Size() || last.Total != d.Size() {
		t.Fatalf("last buffered update %+v, want {%d %d} (newest must win)", last, d.Size(), d.Size())
	}
}

// TestProgressChanCoalesces: under producer pressure the channel keeps at
// most its buffer's worth of updates, in order, ending at the newest.
func TestProgressChanCoalesces(t *testing.T) {
	pc := NewProgressChan(4)
	const total = 1000
	for done := 1; done <= total; done++ {
		pc.Send(done, total)
	}
	pc.Close()

	var seen []ProgressUpdate
	for u := range pc.Updates() {
		seen = append(seen, u)
	}
	if len(seen) == 0 || len(seen) > 4 {
		t.Fatalf("drained %d updates, want 1..4", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].Done <= seen[i-1].Done {
			t.Fatalf("updates out of order: %+v", seen)
		}
	}
	if last := seen[len(seen)-1]; last.Done != total {
		t.Fatalf("newest update lost: last drained %+v", last)
	}
}

// TestProgressChanLiveConsumer: with a consumer keeping up, every campaign
// milestone flows through and the final update is the completed count.
func TestProgressChanLiveConsumer(t *testing.T) {
	d := stubDesign(t, 17)
	pc := NewProgressChan(64)

	consumed := make(chan []ProgressUpdate, 1)
	go func() {
		var got []ProgressUpdate
		for u := range pc.Updates() {
			got = append(got, u)
		}
		consumed <- got
	}()

	if _, err := Run(context.Background(), d, stubFactory(&stubEngine{failAt: -1}),
		Config{Workers: 3, Progress: pc.Send}); err != nil {
		t.Fatalf("run: %v", err)
	}
	pc.Close()
	got := <-consumed
	if len(got) == 0 {
		t.Fatal("consumer saw no updates")
	}
	last := got[len(got)-1]
	if last.Done != d.Size() || last.Total != d.Size() {
		t.Fatalf("final update %+v, want {%d %d}", last, d.Size(), d.Size())
	}
	for i := 1; i < len(got); i++ {
		if got[i].Done <= got[i-1].Done {
			t.Fatalf("non-monotonic progress at %d: %+v", i, got)
		}
	}
}
