// Package runner executes a campaign's design in parallel without giving up
// the methodology's guarantees: the design still dictates the schedule, every
// raw record is still logged un-aggregated, and the output is record-for-
// record identical to a serial core.Campaign.Run of the same design.
//
// The construction relies on trial-indexed engines (see core.EngineFactory):
// every stochastic and temporal quantity of a trial derives from the
// campaign seed and the trial's Seq, never from which trials ran before it.
// Under that property execution order is immaterial, so trials can be
// sharded across workers — each worker driving its own engine instance,
// because simulator engines carry per-campaign substrate state — and the
// records reassembled into design order afterwards. Satellite consumers see
// the campaign stream through RecordSink in design order as a growing
// prefix, so results can be persisted incrementally instead of buffered
// whole.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
)

// Config tunes a parallel campaign run.
type Config struct {
	// Workers is the number of concurrent engine instances. Values < 1
	// mean runtime.GOMAXPROCS(0). One worker degenerates to a serial run.
	Workers int
	// Sinks receive every record, in design order, as soon as the ordered
	// prefix of the campaign extends over it. Sinks are driven from a
	// single goroutine; they need not be safe for concurrent use.
	Sinks []RecordSink
	// Progress, when non-nil, is called after each trial completes (in
	// completion order, from a single goroutine) with the number of
	// completed trials and the design size.
	//
	// The callback runs on the collector goroutine while it holds the
	// campaign's ordering state: until it returns, no further record
	// reaches the sinks, and once the workers' completion channel fills the
	// workers stall too. Callbacks must therefore never block — bridge to a
	// slow or absent consumer through ProgressChan, whose Send drops the
	// oldest buffered update instead of waiting.
	Progress func(done, total int)
}

// Run executes every trial of the design across cfg.Workers workers, each
// with its own engine from the factory, and returns the full raw results in
// design order. The first trial error cancels the remaining work and is
// returned; a canceled ctx aborts the run with the cancellation cause.
func Run(ctx context.Context, design *doe.Design, factory core.EngineFactory, cfg Config) (*core.Results, error) {
	if design == nil || factory == nil {
		return nil, fmt.Errorf("runner: campaign needs both a design and an engine factory")
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := design.Size()
	if workers > n && n > 0 {
		workers = n
	}

	// Engines are created up front, serially: factories need not be safe
	// for concurrent use, and a configuration error surfaces before any
	// trial runs.
	engines := make([]core.Engine, workers)
	for i := range engines {
		e, err := factory.NewEngine()
		if err != nil {
			return nil, fmt.Errorf("runner: worker %d engine: %w", i, err)
		}
		engines[i] = e
	}

	res := core.NewResults(design, engines[0])
	res.Env.Setf("runner/workers", "%d", workers)
	if n == 0 {
		return res, flushSinks(cfg.Sinks)
	}

	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	// The reorder storage is preallocated once and written in place:
	// workers own disjoint stride classes of the design, so each worker
	// stores its finished records directly at their design position and
	// only the trial's seq crosses the channel. The channel send/receive
	// pair orders the record write before the collector's read.
	records := make([]core.RawRecord, n)
	doneSeqs := make(chan int, workers)
	var wg sync.WaitGroup
	// Workers shard the design by striding: worker w runs trials w, w+W,
	// w+2W, ... Trial-indexed engines make the assignment immaterial for
	// the records; striding keeps workers in rough lockstep so the
	// collector's reorder window stays small.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, eng core.Engine) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if ctx.Err() != nil {
					return
				}
				t := design.Trials[i]
				rec, err := eng.Execute(t)
				if err != nil {
					cancel(fmt.Errorf("runner: trial %d (%s): %w", t.Seq, t.Point.Key(), err))
					return
				}
				rec.Seq = t.Seq
				rec.Rep = t.Rep
				if rec.Point == nil {
					rec.Point = t.Point
				}
				records[i] = rec
				select {
				case doneSeqs <- i:
				case <-ctx.Done():
					return
				}
			}
		}(w, engines[w])
	}
	go func() {
		wg.Wait()
		close(doneSeqs)
	}()

	// Collect: records already sit at their design position; sinks and the
	// progress callback observe the ordered prefix as it extends.
	filled := make([]bool, n)
	next, done := 0, 0
	var sinkErr error
	for seq := range doneSeqs {
		filled[seq] = true
		done++
		if cfg.Progress != nil {
			cfg.Progress(done, n)
		}
		if sinkErr != nil {
			continue
		}
		for next < n && filled[next] {
			if err := writeSinks(cfg.Sinks, records[next]); err != nil {
				sinkErr = err
				cancel(fmt.Errorf("runner: sink: %w", err))
				break
			}
			next++
		}
	}

	if err := context.Cause(ctx); err != nil {
		// Best-effort flush so the completed ordered prefix already handed
		// to the sinks survives the failure — the streaming sinks'
		// crash-durability promise. The run error stays primary.
		flushSinks(cfg.Sinks)
		return nil, err
	}
	res.Records = records
	return res, flushSinks(cfg.Sinks)
}

func writeSinks(sinks []RecordSink, rec core.RawRecord) error {
	for _, s := range sinks {
		if err := s.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

func flushSinks(sinks []RecordSink) error {
	for _, s := range sinks {
		if err := s.Flush(); err != nil {
			return fmt.Errorf("runner: sink: %w", err)
		}
	}
	return nil
}
