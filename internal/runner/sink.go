package runner

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"unicode/utf8"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
)

// RecordSink consumes a campaign's raw records one at a time, in design
// order, as the runner's ordered prefix extends. Implementations are driven
// from a single goroutine and need not be safe for concurrent use.
//
// The file-backed sinks latch their first I/O error: once a write or flush
// has failed at the writer, every subsequent call returns that error
// without emitting another byte. The latch is what keeps a failed
// campaign's output merely truncated — a torn tail after a short write can
// never be followed by further records, which would corrupt the middle of
// the file instead of its end. Validation rejections (a record that does
// not fit the frozen CSV header) write nothing and do not latch; the valid
// prefix remains flushable.
type RecordSink interface {
	// Write appends one record.
	Write(rec core.RawRecord) error
	// Flush forces any buffered output down; the runner calls it once
	// after the last record.
	Flush() error
}

// sinkBufBytes is the write-buffer size of the file-backed sinks — the same
// 4 KB encoding/csv uses internally, so CSV output batches into identical
// syscall granularity as before the hand-rolled encoders.
const sinkBufBytes = 4096

// CSVSink streams records as CSV, row by row, producing byte-identical
// output to core.Results.WriteCSV for campaigns whose records share one
// factor and extra key set (as engine-generated records do). The header is
// derived from the first record; an empty campaign flushes the fixed
// columns only.
//
// Rows are encoded with core.AppendCSVRow into a buffer owned by the sink,
// so the per-record path allocates nothing once the buffer has grown to the
// campaign's row size.
type CSVSink struct {
	bw      *bufio.Writer
	row     []byte
	factors []string
	extras  []string
	knownF  map[string]bool
	knownX  map[string]bool
	started bool
	err     error
}

// NewCSVSink returns a sink writing to w.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{bw: bufio.NewWriterSize(w, sinkBufBytes)}
}

// Write implements RecordSink. A record carrying a factor or extra key
// absent from the first record's column set is an error: a streamed header
// cannot grow, and silently dropping the column would lose raw data — the
// one thing the methodology forbids. (Keys *missing* from a record are
// fine; they serialize as empty cells, as Results.WriteCSV does.)
func (s *CSVSink) Write(rec core.RawRecord) error {
	if s.err != nil {
		return s.err
	}
	if !s.started {
		s.factors = sortedKeys(rec.Point)
		s.extras = sortedKeys(rec.Extra)
		s.knownF = make(map[string]bool, len(s.factors))
		s.knownX = make(map[string]bool, len(s.extras))
		for _, f := range s.factors {
			s.knownF[f] = true
		}
		for _, e := range s.extras {
			s.knownX[e] = true
		}
		if err := s.writeHeader(); err != nil {
			return err
		}
	}
	// Validation rejections are NOT latched: they write zero bytes, so the
	// sink stays healthy and a later Flush still delivers the valid
	// buffered prefix — the error-path guarantee of DESIGN.md section 8.
	for k := range rec.Point {
		if !s.knownF[k] {
			return fmt.Errorf("runner: record %d carries factor %q absent from the CSV header; use a JSONL sink for heterogeneous records", rec.Seq, k)
		}
	}
	for k := range rec.Extra {
		if !s.knownX[k] {
			return fmt.Errorf("runner: record %d carries extra %q absent from the CSV header; use a JSONL sink for heterogeneous records", rec.Seq, k)
		}
	}
	s.row = core.AppendCSVRow(s.row[:0], rec, s.factors, s.extras)
	if _, err := s.bw.Write(s.row); err != nil {
		return s.latch(fmt.Errorf("runner: write csv row: %w", err))
	}
	return nil
}

// latch records the sink's first I/O error; every later Write/Flush
// returns it without touching the writer again.
func (s *CSVSink) latch(err error) error {
	if s.err == nil {
		s.err = err
	}
	return s.err
}

func (s *CSVSink) writeHeader() error {
	header, err := core.CSVHeader(s.factors, s.extras)
	if err != nil {
		// A reserved factor name is a validation rejection, not an I/O
		// failure: nothing was written, so the sink is not latched, but
		// the header cannot freeze either.
		return err
	}
	s.started = true
	s.row = core.AppendCSVStrings(s.row[:0], header)
	if _, err := s.bw.Write(s.row); err != nil {
		return s.latch(fmt.Errorf("runner: write csv header: %w", err))
	}
	return nil
}

// Flush implements RecordSink. After a failed I/O write it returns the
// latched error without flushing: the buffer may hold a partial row, and
// pushing it down would tear a line in the output.
func (s *CSVSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	if !s.started {
		if err := s.writeHeader(); err != nil {
			return err
		}
	}
	if err := s.bw.Flush(); err != nil {
		return s.latch(fmt.Errorf("runner: flush csv: %w", err))
	}
	return nil
}

// JSONLSink streams records as JSON Lines: one self-describing object per
// record, so heterogeneous factor sets and late schema growth need no
// header coordination.
//
// The fixed schema — seq, rep, value, seconds, at, then optional point and
// extra objects with sorted keys — is encoded by hand into a buffer owned
// by the sink, byte-identical to encoding/json's output for the same
// record, and written through a bufio.Writer so a million-trial campaign
// batches its records into page-sized writes instead of one syscall per
// record.
type JSONLSink struct {
	bw   *bufio.Writer
	buf  []byte
	keys []string
	err  error
}

// NewJSONLSink returns a sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{bw: bufio.NewWriterSize(w, sinkBufBytes)}
}

// Write implements RecordSink. Output is buffered; a failed (possibly
// short) write can leave a torn final line, and the error is latched so no
// later record is ever appended after the tear.
func (s *JSONLSink) Write(rec core.RawRecord) error {
	if s.err != nil {
		return s.err
	}
	buf, err := s.appendRecord(s.buf[:0], rec)
	if err != nil {
		// An unencodable value (NaN/Inf) latches like encoding/json's
		// encoder error did: zero bytes reached the writer, but the record
		// stream now has a hole, so continuing would misrepresent the
		// campaign.
		s.err = fmt.Errorf("runner: write jsonl: %w", err)
		return s.err
	}
	s.buf = buf
	if _, err := s.bw.Write(s.buf); err != nil {
		s.err = fmt.Errorf("runner: write jsonl: %w", err)
		return s.err
	}
	return nil
}

// appendRecord encodes one record in the fixed JSONL schema.
func (s *JSONLSink) appendRecord(dst []byte, rec core.RawRecord) ([]byte, error) {
	var err error
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendInt(dst, int64(rec.Seq), 10)
	dst = append(dst, `,"rep":`...)
	dst = strconv.AppendInt(dst, int64(rec.Rep), 10)
	dst = append(dst, `,"value":`...)
	if dst, err = appendJSONFloat(dst, rec.Value); err != nil {
		return nil, err
	}
	dst = append(dst, `,"seconds":`...)
	if dst, err = appendJSONFloat(dst, rec.Seconds); err != nil {
		return nil, err
	}
	dst = append(dst, `,"at":`...)
	if dst, err = appendJSONFloat(dst, rec.At); err != nil {
		return nil, err
	}
	if len(rec.Point) > 0 {
		dst = append(dst, `,"point":`...)
		s.keys = s.keys[:0]
		for k := range rec.Point {
			s.keys = append(s.keys, k)
		}
		sort.Strings(s.keys)
		for i, k := range s.keys {
			if i == 0 {
				dst = append(dst, '{')
			} else {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, k)
			dst = append(dst, ':')
			dst = appendJSONString(dst, string(rec.Point[k]))
		}
		dst = append(dst, '}')
	}
	if len(rec.Extra) > 0 {
		dst = append(dst, `,"extra":`...)
		s.keys = s.keys[:0]
		for k := range rec.Extra {
			s.keys = append(s.keys, k)
		}
		sort.Strings(s.keys)
		for i, k := range s.keys {
			if i == 0 {
				dst = append(dst, '{')
			} else {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, k)
			dst = append(dst, ':')
			dst = appendJSONString(dst, rec.Extra[k])
		}
		dst = append(dst, '}')
	}
	return append(dst, '}', '\n'), nil
}

// Flush implements RecordSink, pushing the buffered tail down; only a
// latched error suppresses it.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	if err := s.bw.Flush(); err != nil {
		s.err = fmt.Errorf("runner: flush jsonl: %w", err)
		return s.err
	}
	return nil
}

// appendJSONFloat appends a float exactly as encoding/json encodes it:
// shortest 'f' form, switching to 'e' with a trimmed exponent for very
// small or very large magnitudes. Non-finite values are an error, as they
// are for encoding/json.
func appendJSONFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return nil, fmt.Errorf("json: unsupported value: %s", strconv.FormatFloat(f, 'g', -1, 64))
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

const jsonHex = "0123456789abcdef"

// appendJSONString appends a quoted string exactly as encoding/json escapes
// it with HTML escaping on (the Encoder default): quotes and backslashes
// escaped, control characters as \b \f \n \r \t or \u00xx, <, > and & as
// \u00xx, invalid UTF-8 bytes as �, and U+2028/U+2029 escaped.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', jsonHex[b>>4], jsonHex[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `�`...)
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', jsonHex[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// MemorySink buffers the record stream in memory — the replay-to-memory
// counterpart of the file sinks. The differential comparator
// (internal/compare) drives cached suite entries through it to rebuild a
// campaign's value series without touching the filesystem; anything that
// consumes the RecordSink stream can use it to capture a campaign whole.
type MemorySink struct {
	// Records accumulates every written record in stream (design) order.
	Records []core.RawRecord
}

// Write implements RecordSink.
func (s *MemorySink) Write(rec core.RawRecord) error {
	s.Records = append(s.Records, rec)
	return nil
}

// Flush implements RecordSink.
func (s *MemorySink) Flush() error { return nil }

// FileSinks opens the conventional command-line sink set: a streaming CSV
// sink on w — redirected to outPath when non-empty — plus an optional JSONL
// sink on jsonlPath. The returned closers own the files opened; the caller
// closes them after the campaign.
//
// The two paths must name different files: opening the same file twice
// would interleave CSV and JSONL bytes into one corrupt stream, so the
// collision is rejected before anything is opened or truncated.
//
// Truncation happens only after every output opened successfully, so an
// invocation that fails on one path cannot destroy another file's previous
// results — the same preservation guarantee the CLIs' lazy sink opening
// gives against campaign-validation failures. On error any file already
// opened is closed and nothing is returned.
func FileSinks(w io.Writer, outPath, jsonlPath string) ([]RecordSink, []io.Closer, error) {
	if outPath != "" && jsonlPath != "" && filepath.Clean(outPath) == filepath.Clean(jsonlPath) {
		return nil, nil, fmt.Errorf("runner: CSV and JSONL outputs both point at %q; one file cannot carry both streams", outPath)
	}
	var files []*os.File
	fail := func(err error) ([]RecordSink, []io.Closer, error) {
		for _, f := range files {
			f.Close()
		}
		return nil, nil, err
	}
	open := func(path string) (*os.File, error) {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o666)
		if err == nil {
			files = append(files, f)
		}
		return f, err
	}
	var csvFile, jsonlFile *os.File
	var err error
	if outPath != "" {
		if csvFile, err = open(outPath); err != nil {
			return fail(err)
		}
	}
	if jsonlPath != "" {
		if jsonlFile, err = open(jsonlPath); err != nil {
			return fail(err)
		}
	}
	for _, f := range files {
		if err := f.Truncate(0); err != nil {
			return fail(err)
		}
	}
	if csvFile != nil {
		w = csvFile
	}
	sinks := []RecordSink{NewCSVSink(w)}
	if jsonlFile != nil {
		sinks = append(sinks, NewJSONLSink(jsonlFile))
	}
	closers := make([]io.Closer, len(files))
	for i, f := range files {
		closers[i] = f
	}
	return sinks, closers, nil
}

// WriteAll drains a fully-materialized result set through a sink — the
// serial path's way of reusing the streaming writers.
func WriteAll(res *core.Results, sink RecordSink) error {
	for _, rec := range res.Records {
		if err := sink.Write(rec); err != nil {
			return err
		}
	}
	return sink.Flush()
}

// RunOrSerial is the command-line dispatch: workers > 1 shards the design
// through Run with the factory's trial-indexed engines; otherwise the
// campaign runs serially on engine (preserving stateful sequential
// semantics) and the buffered records drain through the same sinks.
//
// Sinks are opened lazily through openSinks (nil means no sinks) so output
// files are never touched by an invocation that fails validation. The
// serial path opens them only after the campaign succeeds, preserving the
// classic "a failed run never clobbers previous results" guarantee; the
// parallel path must open them up front to stream, so a failed sharded run
// leaves the completed prefix behind — which is the streaming sinks'
// crash-durability value, not a loss.
func RunOrSerial(ctx context.Context, design *doe.Design, factory core.EngineFactory,
	engine core.Engine, workers int, openSinks func() ([]RecordSink, error)) (*core.Results, error) {
	if openSinks == nil {
		openSinks = func() ([]RecordSink, error) { return nil, nil }
	}
	if workers > 1 {
		// Surface configuration errors before any output file is opened.
		// The probe engine is discarded — a deliberate trade: one extra
		// engine construction (microseconds, transient) buys file-untouched
		// failure for every bad invocation.
		if _, err := factory.NewEngine(); err != nil {
			return nil, err
		}
		sinks, err := openSinks()
		if err != nil {
			return nil, err
		}
		return Run(ctx, design, factory, Config{Workers: workers, Sinks: sinks})
	}
	res, err := (&core.Campaign{Design: design, Engine: engine}).Run()
	if err != nil {
		return nil, err
	}
	sinks, err := openSinks()
	if err != nil {
		return nil, err
	}
	for _, s := range sinks {
		if err := WriteAll(res, s); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
