package runner

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
)

// RecordSink consumes a campaign's raw records one at a time, in design
// order, as the runner's ordered prefix extends. Implementations are driven
// from a single goroutine and need not be safe for concurrent use.
//
// The file-backed sinks latch their first I/O error: once a write or flush
// has failed at the writer, every subsequent call returns that error
// without emitting another byte. The latch is what keeps a failed
// campaign's output merely truncated — a torn tail after a short write can
// never be followed by further records, which would corrupt the middle of
// the file instead of its end. Validation rejections (a record that does
// not fit the frozen CSV header) write nothing and do not latch; the valid
// prefix remains flushable.
type RecordSink interface {
	// Write appends one record.
	Write(rec core.RawRecord) error
	// Flush forces any buffered output down; the runner calls it once
	// after the last record.
	Flush() error
}

// CSVSink streams records as CSV, row by row, producing byte-identical
// output to core.Results.WriteCSV for campaigns whose records share one
// factor and extra key set (as engine-generated records do). The header is
// derived from the first record; an empty campaign flushes the fixed
// columns only.
type CSVSink struct {
	w       *csv.Writer
	factors []string
	extras  []string
	known   map[string]bool
	started bool
	err     error
}

// NewCSVSink returns a sink writing to w.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{w: csv.NewWriter(w)}
}

// Write implements RecordSink. A record carrying a factor or extra key
// absent from the first record's column set is an error: a streamed header
// cannot grow, and silently dropping the column would lose raw data — the
// one thing the methodology forbids. (Keys *missing* from a record are
// fine; they serialize as empty cells, as Results.WriteCSV does.)
func (s *CSVSink) Write(rec core.RawRecord) error {
	if s.err != nil {
		return s.err
	}
	if !s.started {
		s.factors = sortedKeys(rec.Point)
		s.extras = sortedKeys(rec.Extra)
		s.known = make(map[string]bool, len(s.factors)+len(s.extras))
		for _, f := range s.factors {
			s.known["f:"+f] = true
		}
		for _, e := range s.extras {
			s.known["x:"+e] = true
		}
		if err := s.writeHeader(); err != nil {
			return err
		}
	}
	// Validation rejections are NOT latched: they write zero bytes, so the
	// sink stays healthy and a later Flush still delivers the valid
	// buffered prefix — the error-path guarantee of DESIGN.md section 8.
	for k := range rec.Point {
		if !s.known["f:"+k] {
			return fmt.Errorf("runner: record %d carries factor %q absent from the CSV header; use a JSONL sink for heterogeneous records", rec.Seq, k)
		}
	}
	for k := range rec.Extra {
		if !s.known["x:"+k] {
			return fmt.Errorf("runner: record %d carries extra %q absent from the CSV header; use a JSONL sink for heterogeneous records", rec.Seq, k)
		}
	}
	if err := s.w.Write(core.CSVRow(rec, s.factors, s.extras)); err != nil {
		return s.latch(fmt.Errorf("runner: write csv row: %w", err))
	}
	return s.latch(s.w.Error())
}

// latch records the sink's first I/O error; every later Write/Flush
// returns it without touching the writer again.
func (s *CSVSink) latch(err error) error {
	if s.err == nil {
		s.err = err
	}
	return s.err
}

func (s *CSVSink) writeHeader() error {
	s.started = true
	if err := s.w.Write(core.CSVHeader(s.factors, s.extras)); err != nil {
		return s.latch(fmt.Errorf("runner: write csv header: %w", err))
	}
	return nil
}

// Flush implements RecordSink. After a failed I/O write it returns the
// latched error without flushing: the csv writer may hold a partial row,
// and pushing it down would tear a line in the output.
func (s *CSVSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	if !s.started {
		if err := s.writeHeader(); err != nil {
			return err
		}
	}
	s.w.Flush()
	return s.latch(s.w.Error())
}

// JSONLSink streams records as JSON Lines: one self-describing object per
// record, so heterogeneous factor sets and late schema growth need no
// header coordination.
type JSONLSink struct {
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// jsonlRecord fixes the field names of the JSONL schema independently of
// the core.RawRecord Go struct.
type jsonlRecord struct {
	Seq     int               `json:"seq"`
	Rep     int               `json:"rep"`
	Value   float64           `json:"value"`
	Seconds float64           `json:"seconds"`
	At      float64           `json:"at"`
	Point   map[string]string `json:"point,omitempty"`
	Extra   map[string]string `json:"extra,omitempty"`
}

// Write implements RecordSink. The encoder writes straight through with no
// buffer, so a failed (possibly short) write can leave a torn final line;
// the error is latched so no later record is ever appended after the tear.
func (s *JSONLSink) Write(rec core.RawRecord) error {
	if s.err != nil {
		return s.err
	}
	out := jsonlRecord{
		Seq:     rec.Seq,
		Rep:     rec.Rep,
		Value:   rec.Value,
		Seconds: rec.Seconds,
		At:      rec.At,
		Extra:   rec.Extra,
	}
	if len(rec.Point) > 0 {
		out.Point = make(map[string]string, len(rec.Point))
		for k, v := range rec.Point {
			out.Point[k] = string(v)
		}
	}
	if err := s.enc.Encode(out); err != nil {
		s.err = fmt.Errorf("runner: write jsonl: %w", err)
		return s.err
	}
	return nil
}

// Flush implements RecordSink. The encoder writes through, so there is
// nothing buffered; only a latched write error is reported.
func (s *JSONLSink) Flush() error { return s.err }

// MemorySink buffers the record stream in memory — the replay-to-memory
// counterpart of the file sinks. The differential comparator
// (internal/compare) drives cached suite entries through it to rebuild a
// campaign's value series without touching the filesystem; anything that
// consumes the RecordSink stream can use it to capture a campaign whole.
type MemorySink struct {
	// Records accumulates every written record in stream (design) order.
	Records []core.RawRecord
}

// Write implements RecordSink.
func (s *MemorySink) Write(rec core.RawRecord) error {
	s.Records = append(s.Records, rec)
	return nil
}

// Flush implements RecordSink.
func (s *MemorySink) Flush() error { return nil }

// FileSinks opens the conventional command-line sink set: a streaming CSV
// sink on w — redirected to outPath when non-empty — plus an optional JSONL
// sink on jsonlPath. The returned closers own the files opened; the caller
// closes them after the campaign.
//
// Truncation happens only after every output opened successfully, so an
// invocation that fails on one path cannot destroy another file's previous
// results — the same preservation guarantee the CLIs' lazy sink opening
// gives against campaign-validation failures. On error any file already
// opened is closed and nothing is returned.
func FileSinks(w io.Writer, outPath, jsonlPath string) ([]RecordSink, []io.Closer, error) {
	var files []*os.File
	fail := func(err error) ([]RecordSink, []io.Closer, error) {
		for _, f := range files {
			f.Close()
		}
		return nil, nil, err
	}
	open := func(path string) (*os.File, error) {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o666)
		if err == nil {
			files = append(files, f)
		}
		return f, err
	}
	var csvFile, jsonlFile *os.File
	var err error
	if outPath != "" {
		if csvFile, err = open(outPath); err != nil {
			return fail(err)
		}
	}
	if jsonlPath != "" {
		if jsonlFile, err = open(jsonlPath); err != nil {
			return fail(err)
		}
	}
	for _, f := range files {
		if err := f.Truncate(0); err != nil {
			return fail(err)
		}
	}
	if csvFile != nil {
		w = csvFile
	}
	sinks := []RecordSink{NewCSVSink(w)}
	if jsonlFile != nil {
		sinks = append(sinks, NewJSONLSink(jsonlFile))
	}
	closers := make([]io.Closer, len(files))
	for i, f := range files {
		closers[i] = f
	}
	return sinks, closers, nil
}

// WriteAll drains a fully-materialized result set through a sink — the
// serial path's way of reusing the streaming writers.
func WriteAll(res *core.Results, sink RecordSink) error {
	for _, rec := range res.Records {
		if err := sink.Write(rec); err != nil {
			return err
		}
	}
	return sink.Flush()
}

// RunOrSerial is the command-line dispatch: workers > 1 shards the design
// through Run with the factory's trial-indexed engines; otherwise the
// campaign runs serially on engine (preserving stateful sequential
// semantics) and the buffered records drain through the same sinks.
//
// Sinks are opened lazily through openSinks (nil means no sinks) so output
// files are never touched by an invocation that fails validation. The
// serial path opens them only after the campaign succeeds, preserving the
// classic "a failed run never clobbers previous results" guarantee; the
// parallel path must open them up front to stream, so a failed sharded run
// leaves the completed prefix behind — which is the streaming sinks'
// crash-durability value, not a loss.
func RunOrSerial(ctx context.Context, design *doe.Design, factory core.EngineFactory,
	engine core.Engine, workers int, openSinks func() ([]RecordSink, error)) (*core.Results, error) {
	if openSinks == nil {
		openSinks = func() ([]RecordSink, error) { return nil, nil }
	}
	if workers > 1 {
		// Surface configuration errors before any output file is opened.
		// The probe engine is discarded — a deliberate trade: one extra
		// engine construction (microseconds, transient) buys file-untouched
		// failure for every bad invocation.
		if _, err := factory.NewEngine(); err != nil {
			return nil, err
		}
		sinks, err := openSinks()
		if err != nil {
			return nil, err
		}
		return Run(ctx, design, factory, Config{Workers: workers, Sinks: sinks})
	}
	res, err := (&core.Campaign{Design: design, Engine: engine}).Run()
	if err != nil {
		return nil, err
	}
	sinks, err := openSinks()
	if err != nil {
		return nil, err
	}
	for _, s := range sinks {
		if err := WriteAll(res, s); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
