package runner

import (
	"strconv"

	"opaquebench/internal/core"
)

// RoundSink adapts the campaign sinks to a multi-round adaptive study
// (internal/adapt): the rounds of one campaign stream into a single record
// stream through the same underlying sinks, each record re-based to a
// globally unique sequence number and annotated with its round index.
//
// Within a round the runner delivers records with the round design's own
// Seq (0-based); the RoundSink shifts them by the number of records the
// previous rounds streamed, so the combined stream's seq column is again a
// permutation of [0, n) — the invariant every downstream consumer of a
// record stream assumes. The annotation ("round" extra, 1-based) preserves
// round provenance in the raw data without a schema fork: CSV output gains
// one x_round column, JSONL one extra key.
//
// A RoundSink is driven from a single goroutine like any other sink. The
// zero value is not useful; use NewRoundSink.
type RoundSink struct {
	sinks []RecordSink
	round int
	base  int
	count int
}

// NewRoundSink wraps the given sinks for round-scoped streaming, starting
// at round 1 with no offset.
func NewRoundSink(sinks ...RecordSink) *RoundSink {
	return &RoundSink{sinks: sinks, round: 1}
}

// Round returns the current (1-based) round index.
func (s *RoundSink) Round() int { return s.round }

// Streamed returns the total number of records written across all rounds.
func (s *RoundSink) Streamed() int { return s.base + s.count }

// NextRound advances to the next round: subsequent records are re-based
// past everything streamed so far and annotated with the new round index.
func (s *RoundSink) NextRound() {
	s.round++
	s.base += s.count
	s.count = 0
}

// Write implements RecordSink. The record is forwarded with its sequence
// number shifted by the prior rounds' record count and a "round" extra
// annotation; the caller's record (and its Extra map) is never mutated.
func (s *RoundSink) Write(rec core.RawRecord) error {
	out := rec
	out.Seq = s.base + rec.Seq
	out.Extra = make(map[string]string, len(rec.Extra)+1)
	for k, v := range rec.Extra {
		out.Extra[k] = v
	}
	out.Extra["round"] = strconv.Itoa(s.round)
	s.count++
	for _, sink := range s.sinks {
		if err := sink.Write(out); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements RecordSink, flushing every underlying sink. The runner
// calls it at the end of each round; flushing between rounds is what makes
// the growing multi-round stream durable round by round.
func (s *RoundSink) Flush() error {
	for _, sink := range s.sinks {
		if err := sink.Flush(); err != nil {
			return err
		}
	}
	return nil
}
