package runner

import (
	"bytes"
	"strings"
	"testing"

	"opaquebench/internal/core"
	"opaquebench/internal/doe"
)

func roundRec(seq int, size string, value float64) core.RawRecord {
	return core.RawRecord{
		Seq:   seq,
		Point: doe.Point{"size": doe.Level(size)},
		Value: value,
		Extra: map[string]string{"bound_by": "L1"},
	}
}

// TestRoundSinkRebasesAndAnnotates: records of later rounds continue the
// stream's sequence numbering and carry their round index, so the combined
// stream stays a single well-formed record stream.
func TestRoundSinkRebasesAndAnnotates(t *testing.T) {
	mem := &MemorySink{}
	rs := NewRoundSink(mem)
	for seq := 0; seq < 3; seq++ {
		if err := rs.Write(roundRec(seq, "1024", 1)); err != nil {
			t.Fatal(err)
		}
	}
	rs.NextRound()
	for seq := 0; seq < 2; seq++ {
		if err := rs.Write(roundRec(seq, "2048", 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := mem.Records
	if len(recs) != 5 {
		t.Fatalf("streamed %d records, want 5", len(recs))
	}
	if got := rs.Streamed(); got != 5 {
		t.Fatalf("Streamed() = %d, want 5", got)
	}
	for i, rec := range recs {
		if rec.Seq != i {
			t.Errorf("record %d has Seq %d", i, rec.Seq)
		}
		wantRound := "1"
		if i >= 3 {
			wantRound = "2"
		}
		if rec.Extra["round"] != wantRound {
			t.Errorf("record %d round = %q, want %q", i, rec.Extra["round"], wantRound)
		}
		if rec.Extra["bound_by"] != "L1" {
			t.Errorf("record %d lost engine extras", i)
		}
	}
}

// TestRoundSinkDoesNotMutateCaller: annotation happens on a copy; the
// engine's record and Extra map stay untouched (they may be shared with
// the results slice the caller is accumulating).
func TestRoundSinkDoesNotMutateCaller(t *testing.T) {
	rs := NewRoundSink(&MemorySink{})
	rs.NextRound()
	rec := roundRec(7, "1024", 1)
	if err := rs.Write(rec); err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 7 {
		t.Errorf("caller's Seq mutated to %d", rec.Seq)
	}
	if _, ok := rec.Extra["round"]; ok {
		t.Error("caller's Extra map gained a round annotation")
	}
	if len(rec.Extra) != 1 || rec.Extra["bound_by"] != "L1" {
		t.Errorf("caller's Extra map changed: %v", rec.Extra)
	}
}

// TestRoundSinkCSVStreamStaysWellFormed: a multi-round stream through a
// CSV sink keeps one header and gains exactly one x_round column; every
// row parses back with the right round annotation.
func TestRoundSinkCSVStreamStaysWellFormed(t *testing.T) {
	var buf bytes.Buffer
	csv := NewCSVSink(&buf)
	rs := NewRoundSink(csv)
	for seq := 0; seq < 2; seq++ {
		if err := rs.Write(roundRec(seq, "1024", 1)); err != nil {
			t.Fatal(err)
		}
	}
	rs.NextRound()
	if err := rs.Write(roundRec(0, "4096", 2)); err != nil {
		t.Fatal(err)
	}
	if err := rs.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want header + 3 rows:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "x_round") {
		t.Fatalf("CSV header lacks x_round: %s", lines[0])
	}
	res, err := core.ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got := res.Records[2].Extra["round"]; got != "2" {
		t.Errorf("third record round = %q, want 2", got)
	}
	if got := res.Records[2].Seq; got != 2 {
		t.Errorf("third record Seq = %d, want 2", got)
	}
}
