// Package benchtrack maintains the repository's own performance trajectory:
// it parses `go test -bench` output, condenses each run into one trajectory
// entry (ns/op, B/op, allocs/op, and campaign trials/sec per benchmark),
// appends entries to a checked-in JSONL file, and gates new runs against the
// recorded history — the same treat-yourself-as-a-benchmark discipline the
// paper applies to opaque benchmarks, pointed at this repo's hot path.
package benchtrack

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark's condensed result within an entry.
type Bench struct {
	// NsPerOp is the reported wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp come from -benchmem; -1 means the run
	// was not measured for allocations (0 is a real, load-bearing value:
	// the record-encode hot path asserts it).
	BytesPerOp  int64 `json:"b_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// TrialsPerSec is the campaign throughput for benchmarks that execute
	// a known number of trials per op; 0 for non-campaign benchmarks.
	TrialsPerSec float64 `json:"trials_per_sec,omitempty"`
}

// Entry is one trajectory datapoint: one benchmark run of one commit.
type Entry struct {
	// Label identifies the run (e.g. a PR or commit tag).
	Label string `json:"label"`
	// When is the run date, RFC3339 or YYYY-MM-DD.
	When string `json:"when,omitempty"`
	// CPU echoes the benchmark banner's cpu line, because trajectory
	// points from different hardware are not comparable.
	CPU string `json:"cpu,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// condensed result.
	Benchmarks map[string]Bench `json:"benchmarks"`
}

// gomaxprocsSuffix strips the -N procs suffix go test appends to parallel
// benchmark names, so trajectory keys stay stable across machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads plain `go test -bench` text output (any number of package
// sections) and returns the condensed entry. Lines that are not benchmark
// results or the cpu banner are ignored, so the full test output can be
// piped through unfiltered.
func Parse(r io.Reader) (Entry, error) {
	e := Entry{Benchmarks: map[string]Bench{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			e.CPU = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // e.g. "BenchmarkFoo" alone on a line
		}
		b := Bench{BytesPerOp: -1, AllocsPerOp: -1}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
				ok = true
			case "B/op":
				b.BytesPerOp = int64(v)
			case "allocs/op":
				b.AllocsPerOp = int64(v)
			}
		}
		if !ok {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		if _, dup := e.Benchmarks[name]; dup {
			return e, fmt.Errorf("benchtrack: duplicate benchmark %q in input", name)
		}
		e.Benchmarks[name] = b
	}
	if err := sc.Err(); err != nil {
		return e, fmt.Errorf("benchtrack: read: %w", err)
	}
	if len(e.Benchmarks) == 0 {
		return e, fmt.Errorf("benchtrack: no benchmark results in input")
	}
	return e, nil
}

// AttachTrialRate fills TrialsPerSec for every benchmark matching the
// pattern, interpreting each op as trials trials — e.g. the 10k-trial
// campaign benchmarks. Returns how many benchmarks matched.
func AttachTrialRate(e Entry, pattern *regexp.Regexp, trials int) int {
	n := 0
	for name, b := range e.Benchmarks {
		if !pattern.MatchString(name) || b.NsPerOp <= 0 {
			continue
		}
		b.TrialsPerSec = float64(trials) / (b.NsPerOp / 1e9)
		e.Benchmarks[name] = b
		n++
	}
	return n
}

// ReadTrajectory loads a JSONL trajectory file; a missing file is an empty
// trajectory, so the first append bootstraps it.
func ReadTrajectory(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("benchtrack: %w", err)
	}
	defer f.Close()
	var out []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("benchtrack: %s line %d: %w", path, len(out)+1, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchtrack: %s: %w", path, err)
	}
	return out, nil
}

// AppendEntry appends one entry to the JSONL trajectory file, creating it
// if needed. Entries are single lines so the file diffs one run per line.
func AppendEntry(path string, e Entry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("benchtrack: encode: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("benchtrack: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("benchtrack: append %s: %w", path, err)
	}
	return f.Close()
}

// Gate compares a fresh entry against the recorded trajectory and returns
// one message per gated regression. For every benchmark matching the
// pattern that carries a trials/sec rate, the baseline is the median rate
// over the last window entries that measured it; the gate trips when the
// fresh rate falls more than tolerance below that baseline. The median
// over a window absorbs single-shot noise the way one-point deltas cannot;
// benchmarks with no history pass (they are the bootstrap).
func Gate(traj []Entry, e Entry, pattern *regexp.Regexp, window int, tolerance float64) []string {
	if window < 1 {
		window = 5
	}
	var problems []string
	names := make([]string, 0, len(e.Benchmarks))
	for name := range e.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := e.Benchmarks[name]
		if !pattern.MatchString(name) || b.TrialsPerSec <= 0 {
			continue
		}
		var history []float64
		for _, past := range traj {
			if pb, ok := past.Benchmarks[name]; ok && pb.TrialsPerSec > 0 {
				history = append(history, pb.TrialsPerSec)
			}
		}
		if len(history) > window {
			history = history[len(history)-window:]
		}
		if len(history) == 0 {
			continue
		}
		baseline := median(history)
		floor := baseline * (1 - tolerance)
		if b.TrialsPerSec < floor {
			problems = append(problems, fmt.Sprintf(
				"%s: %.0f trials/sec is %.1f%% below the trajectory median %.0f (floor %.0f over last %d entries)",
				name, b.TrialsPerSec, 100*(1-b.TrialsPerSec/baseline), baseline, floor, len(history)))
		}
	}
	return problems
}

// AssertMaxAllocs returns one message per benchmark matching the pattern
// whose allocs/op exceeds max — or was not measured at all, since a gate
// that silently skips unmeasured runs is no gate.
func AssertMaxAllocs(e Entry, pattern *regexp.Regexp, max int64) []string {
	var problems []string
	names := make([]string, 0, len(e.Benchmarks))
	for name := range e.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	matched := false
	for _, name := range names {
		if !pattern.MatchString(name) {
			continue
		}
		matched = true
		b := e.Benchmarks[name]
		if b.AllocsPerOp < 0 {
			problems = append(problems, fmt.Sprintf("%s: allocations not measured (run with -benchmem)", name))
		} else if b.AllocsPerOp > max {
			problems = append(problems, fmt.Sprintf("%s: %d allocs/op exceeds the budget of %d", name, b.AllocsPerOp, max))
		}
	}
	if !matched {
		problems = append(problems, fmt.Sprintf("no benchmark matches %q — the allocation budget was not exercised", pattern))
	}
	return problems
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
