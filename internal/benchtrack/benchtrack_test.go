package benchtrack

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: opaquebench
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCampaign10kSerial       	       1	3820268156 ns/op	 5016000 B/op	   90123 allocs/op
BenchmarkCampaign10kParallel8-8  	       1	4028382394 ns/op	 6300000 B/op	   90456 allocs/op
BenchmarkCSVSinkEncodeRecord     	 2000000	       528.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMem                   	     100	     12345 ns/op
PASS
ok  	opaquebench	9.1s
`

func parseSample(t *testing.T) Entry {
	t.Helper()
	e, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return e
}

func TestParse(t *testing.T) {
	e := parseSample(t)
	if e.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("CPU = %q", e.CPU)
	}
	if len(e.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4: %v", len(e.Benchmarks), e.Benchmarks)
	}
	// The GOMAXPROCS suffix is stripped so trajectory keys are stable.
	par, ok := e.Benchmarks["BenchmarkCampaign10kParallel8"]
	if !ok {
		t.Fatal("parallel benchmark missing or suffix not stripped")
	}
	if par.NsPerOp != 4028382394 || par.AllocsPerOp != 90456 {
		t.Errorf("parallel = %+v", par)
	}
	if enc := e.Benchmarks["BenchmarkCSVSinkEncodeRecord"]; enc.AllocsPerOp != 0 || enc.BytesPerOp != 0 {
		t.Errorf("encode = %+v, want measured zeros", enc)
	}
	// A run without -benchmem is unmeasured (-1), distinct from 0.
	if nm := e.Benchmarks["BenchmarkNoMem"]; nm.AllocsPerOp != -1 || nm.BytesPerOp != -1 {
		t.Errorf("no-mem = %+v, want -1 sentinels", nm)
	}
}

func TestParseRejectsEmptyAndDuplicates(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Error("want error for input without benchmarks")
	}
	dup := "BenchmarkA-2 \t 1 \t 10 ns/op\nBenchmarkA-4 \t 1 \t 20 ns/op\n"
	if _, err := Parse(strings.NewReader(dup)); err == nil {
		t.Error("want error for duplicate benchmark name after suffix stripping")
	}
}

func TestAttachTrialRate(t *testing.T) {
	e := parseSample(t)
	n := AttachTrialRate(e, regexp.MustCompile(`Campaign10k`), 10000)
	if n != 2 {
		t.Fatalf("matched %d benchmarks, want 2", n)
	}
	got := e.Benchmarks["BenchmarkCampaign10kSerial"].TrialsPerSec
	want := 10000 / (3820268156.0 / 1e9)
	if got != want {
		t.Errorf("serial trials/sec = %v, want %v", got, want)
	}
	if e.Benchmarks["BenchmarkCSVSinkEncodeRecord"].TrialsPerSec != 0 {
		t.Error("non-matching benchmark gained a trial rate")
	}
}

func TestTrajectoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	// Missing file is an empty trajectory, not an error.
	traj, err := ReadTrajectory(path)
	if err != nil || traj != nil {
		t.Fatalf("missing file: traj=%v err=%v", traj, err)
	}
	e := parseSample(t)
	e.Label, e.When = "pr6", "2026-08-07"
	AttachTrialRate(e, regexp.MustCompile(`Campaign10k`), 10000)
	if err := AppendEntry(path, e); err != nil {
		t.Fatalf("AppendEntry: %v", err)
	}
	if err := AppendEntry(path, e); err != nil {
		t.Fatalf("AppendEntry 2: %v", err)
	}
	traj, err = ReadTrajectory(path)
	if err != nil {
		t.Fatalf("ReadTrajectory: %v", err)
	}
	if len(traj) != 2 {
		t.Fatalf("got %d entries, want 2", len(traj))
	}
	if traj[0].Label != "pr6" || traj[0].CPU != e.CPU {
		t.Errorf("entry 0 = %+v", traj[0])
	}
	got := traj[1].Benchmarks["BenchmarkCampaign10kSerial"]
	if got.TrialsPerSec != e.Benchmarks["BenchmarkCampaign10kSerial"].TrialsPerSec {
		t.Errorf("trials/sec lost in round trip: %+v", got)
	}
}

// gateFixture builds a trajectory of identical entries at rate trials/sec.
func gateFixture(rate float64, n int) []Entry {
	traj := make([]Entry, n)
	for i := range traj {
		traj[i] = Entry{Benchmarks: map[string]Bench{
			"BenchmarkCampaign10kSerial": {NsPerOp: 1, TrialsPerSec: rate},
		}}
	}
	return traj
}

func freshEntry(rate float64) Entry {
	return Entry{Benchmarks: map[string]Bench{
		"BenchmarkCampaign10kSerial": {NsPerOp: 1, TrialsPerSec: rate},
	}}
}

func TestGate(t *testing.T) {
	re := regexp.MustCompile(`Campaign10k`)
	traj := gateFixture(1000, 8)

	// Within tolerance: 30% floor, a 20% drop passes.
	if p := Gate(traj, freshEntry(800), re, 5, 0.30); len(p) != 0 {
		t.Errorf("20%% drop tripped the 30%% gate: %v", p)
	}
	// Below the floor: a 40% drop fails.
	if p := Gate(traj, freshEntry(600), re, 5, 0.30); len(p) != 1 {
		t.Errorf("40%% drop did not trip: %v", p)
	}
	// No history passes — that is the bootstrap.
	if p := Gate(nil, freshEntry(1), re, 5, 0.30); len(p) != 0 {
		t.Errorf("bootstrap entry tripped the gate: %v", p)
	}
	// The baseline medians over the window, so one outlier entry in the
	// history does not move the floor.
	outlier := append(gateFixture(1000, 4), freshEntry(50))
	outlier = append(outlier, gateFixture(1000, 2)...)
	if p := Gate(outlier, freshEntry(800), re, 5, 0.30); len(p) != 0 {
		t.Errorf("median baseline moved by a single outlier: %v", p)
	}
}

func TestAssertMaxAllocs(t *testing.T) {
	e := parseSample(t)
	re := regexp.MustCompile(`EncodeRecord`)
	if p := AssertMaxAllocs(e, re, 0); len(p) != 0 {
		t.Errorf("0 allocs/op failed the 0 budget: %v", p)
	}
	// Exceeding the budget fails.
	if p := AssertMaxAllocs(e, regexp.MustCompile(`Campaign10kSerial`), 0); len(p) != 1 {
		t.Errorf("90123 allocs/op passed the 0 budget: %v", p)
	}
	// Unmeasured (-1) fails: a gate that skips unmeasured runs is no gate.
	if p := AssertMaxAllocs(e, regexp.MustCompile(`NoMem`), 0); len(p) != 1 || !strings.Contains(p[0], "not measured") {
		t.Errorf("unmeasured benchmark passed: %v", p)
	}
	// No matching benchmark at all fails too.
	if p := AssertMaxAllocs(e, regexp.MustCompile(`Nonexistent`), 0); len(p) != 1 {
		t.Errorf("empty match set passed: %v", p)
	}
}
