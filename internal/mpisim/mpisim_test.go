package mpisim

import (
	"math"
	"testing"

	"opaquebench/internal/netsim"
	"opaquebench/internal/stats"
)

func newComm(t *testing.T, p *netsim.Profile) *Comm {
	t.Helper()
	c, err := NewComm(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCommValidates(t *testing.T) {
	if _, err := NewComm(nil, 1); err == nil {
		t.Fatal("nil profile accepted")
	}
	bad := &netsim.Profile{Name: "x"}
	if _, err := NewComm(bad, 1); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestSendAdvancesSenderOnly(t *testing.T) {
	c := newComm(t, netsim.Taurus())
	cpu, err := c.Send(Rank0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if cpu <= 0 {
		t.Fatalf("cpu = %v", cpu)
	}
	if c.Now(Rank0) != cpu {
		t.Fatalf("sender clock = %v, want %v", c.Now(Rank0), cpu)
	}
	if c.Now(Rank1) != 0 {
		t.Fatal("receiver clock moved on a send")
	}
	if c.Pending(Rank1) != 1 {
		t.Fatalf("pending = %d", c.Pending(Rank1))
	}
}

func TestRecvWithoutMessageErrors(t *testing.T) {
	c := newComm(t, netsim.Taurus())
	if _, _, err := c.Recv(Rank1); err == nil {
		t.Fatal("recv on empty queue accepted")
	}
}

func TestRecvWaitsForArrival(t *testing.T) {
	c := newComm(t, netsim.Taurus())
	if _, err := c.Send(Rank0, 4000); err != nil {
		t.Fatal(err)
	}
	_, wait, err := c.Recv(Rank1)
	if err != nil {
		t.Fatal(err)
	}
	if wait <= 0 {
		t.Fatal("immediate recv should have waited for the wire")
	}
}

func TestRecvAfterArrivalNoWait(t *testing.T) {
	c := newComm(t, netsim.Taurus())
	if _, err := c.Send(Rank0, 4000); err != nil {
		t.Fatal(err)
	}
	c.Advance(Rank1, 1) // a full second: certainly arrived
	_, wait, err := c.Recv(Rank1)
	if err != nil {
		t.Fatal(err)
	}
	if wait != 0 {
		t.Fatalf("wait = %v, want 0", wait)
	}
}

func TestNegativeSizeRejected(t *testing.T) {
	c := newComm(t, netsim.Taurus())
	if _, err := c.Send(Rank0, -1); err == nil {
		t.Fatal("negative size accepted")
	}
}

// The central consistency check: the protocol-level simulation reproduces
// the closed-form regime costs used by netsim/netbench.
func TestSendOverheadMatchesClosedForm(t *testing.T) {
	p := netsim.Taurus()
	c := newComm(t, p)
	for _, size := range []int{100, 2000, 20000, 200000} {
		want := p.RegimeFor(size).SendOverhead(size)
		got, err := c.MeasureSendOverhead(size)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want)/want > 1e-9 {
			t.Fatalf("size %d: send overhead %v, closed form %v", size, got, want)
		}
	}
}

func TestRecvOverheadMatchesClosedForm(t *testing.T) {
	p := netsim.Taurus()
	c := newComm(t, p)
	for _, size := range []int{100, 2000, 20000, 200000} {
		want := p.RegimeFor(size).RecvOverhead(size)
		got, err := c.MeasureRecvOverhead(size)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want)/want > 1e-9 {
			t.Fatalf("size %d: recv overhead %v, closed form %v", size, got, want)
		}
	}
}

func TestPingPongMatchesClosedForm(t *testing.T) {
	p := netsim.Taurus()
	for _, size := range []int{100, 2000, 20000, 200000} {
		c := newComm(t, p)
		want := p.RegimeFor(size).RTT(size)
		got, err := c.PingPong(size)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want)/want > 1e-9 {
			t.Fatalf("size %d: RTT %v, closed form %v", size, got, want)
		}
	}
}

func TestPingPongMonotoneInSize(t *testing.T) {
	c := newComm(t, netsim.MyrinetGM())
	prev := 0.0
	for _, size := range []int{64, 512, 4096, 32768, 262144} {
		rtt, err := c.PingPong(size)
		if err != nil {
			t.Fatal(err)
		}
		if rtt <= prev {
			t.Fatalf("RTT not increasing at %d: %v <= %v", size, rtt, prev)
		}
		prev = rtt
	}
}

func TestRendezvousCostsMoreThanEager(t *testing.T) {
	// Same payload cost parameters, different protocol: the handshake must
	// show up in the sender's time.
	p := netsim.Taurus()
	c := newComm(t, p)
	eagerSize := 1000
	rdvSize := 100000
	eagerCPU, err := c.MeasureSendOverhead(eagerSize)
	if err != nil {
		t.Fatal(err)
	}
	rdvCPU, err := c.MeasureSendOverhead(rdvSize)
	if err != nil {
		t.Fatal(err)
	}
	rdvReg := p.RegimeFor(rdvSize)
	if rdvCPU < 2*rdvReg.Latency {
		t.Fatalf("rendezvous send %v should include the %v handshake", rdvCPU, 2*rdvReg.Latency)
	}
	if rdvCPU <= eagerCPU {
		t.Fatal("rendezvous should cost more than eager here")
	}
}

func TestNoisyMode(t *testing.T) {
	p := netsim.Taurus()
	c := newComm(t, p)
	c.Noisy = true
	var vals []float64
	for i := 0; i < 50; i++ {
		v, err := c.MeasureSendOverhead(2000)
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
	}
	if stats.CV(vals) <= 0 {
		t.Fatal("noisy mode produced constant values")
	}
	for _, v := range vals {
		if v <= 0 {
			t.Fatalf("non-positive noisy cost %v", v)
		}
	}
}

func TestFIFOOrder(t *testing.T) {
	c := newComm(t, netsim.Taurus())
	if _, err := c.Send(Rank0, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send(Rank0, 50000); err != nil {
		t.Fatal(err)
	}
	c.Advance(Rank1, 1)
	// First recv must match the first (small) send.
	cpu1, _, err := c.Recv(Rank1)
	if err != nil {
		t.Fatal(err)
	}
	cpu2, _, err := c.Recv(Rank1)
	if err != nil {
		t.Fatal(err)
	}
	if cpu1 >= cpu2 {
		t.Fatalf("FIFO violated: first recv cost %v >= second %v", cpu1, cpu2)
	}
}

func TestAdvanceNegativeIgnored(t *testing.T) {
	c := newComm(t, netsim.Taurus())
	c.Advance(Rank0, -5)
	if c.Now(Rank0) != 0 {
		t.Fatal("negative advance moved the clock")
	}
}
