package mpisim

import (
	"math"
	"testing"

	"opaquebench/internal/netsim"
)

func newGroup(t *testing.T, n int) *Group {
	t.Helper()
	g, err := NewGroup(netsim.MyrinetGM(), n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGroupValidates(t *testing.T) {
	if _, err := NewGroup(nil, 4, 1); err == nil {
		t.Fatal("nil profile accepted")
	}
	if _, err := NewGroup(netsim.MyrinetGM(), 1, 1); err == nil {
		t.Fatal("1-rank group accepted")
	}
}

func TestBcastReachesEveryRank(t *testing.T) {
	g := newGroup(t, 8)
	d, err := g.Bcast(0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("duration = %v", d)
	}
	// Every non-root rank's clock must have advanced (it received data).
	for r := 1; r < g.Size(); r++ {
		if g.Now(r) <= 0 {
			t.Fatalf("rank %d never received", r)
		}
	}
}

func TestBcastLogarithmicRounds(t *testing.T) {
	// A binomial tree completes in ceil(log2(n)) rounds: doubling the rank
	// count should add roughly one one-way time, not double the duration.
	dur := func(n int) float64 {
		g := newGroup(t, n)
		d, err := g.Bcast(0, 8192)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d4, d8, d16 := dur(4), dur(8), dur(16)
	oneWay := netsim.MyrinetGM().RegimeFor(8192).OneWay(8192)
	if inc := d8 - d4; inc < oneWay*0.5 || inc > oneWay*1.5 {
		t.Fatalf("4->8 ranks added %v, want ~%v (one round)", inc, oneWay)
	}
	if inc := d16 - d8; inc < oneWay*0.5 || inc > oneWay*1.5 {
		t.Fatalf("8->16 ranks added %v, want ~%v (one round)", inc, oneWay)
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	g := newGroup(t, 6)
	if _, err := g.Bcast(3, 1024); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < g.Size(); r++ {
		if r != 3 && g.Now(r) <= 0 {
			t.Fatalf("rank %d missed the broadcast from root 3", r)
		}
	}
	if _, err := g.Bcast(99, 1024); err == nil {
		t.Fatal("bad root accepted")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	g := newGroup(t, 5)
	g.Jitter(0.001) // skewed start
	if _, err := g.Barrier(); err != nil {
		t.Fatal(err)
	}
	ref := g.Now(0)
	for r := 1; r < g.Size(); r++ {
		if math.Abs(g.Now(r)-ref) > 1e-12 {
			t.Fatalf("rank %d clock %v != %v after barrier", r, g.Now(r), ref)
		}
	}
}

func TestRingAllreduceBandwidthOptimal(t *testing.T) {
	// For large messages the ring moves 2*(n-1)/n of the data per rank:
	// duration should grow far slower than linearly with n, and scale
	// roughly linearly with size.
	dur := func(n, size int) float64 {
		g := newGroup(t, n)
		d, err := g.RingAllreduce(size)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d1M4 := dur(4, 1<<20)
	d1M8 := dur(8, 1<<20)
	if d1M8 > d1M4*1.6 {
		t.Fatalf("ring allreduce not bandwidth-optimal: n=4 %v, n=8 %v", d1M4, d1M8)
	}
	d2M4 := dur(4, 2<<20)
	if r := d2M4 / d1M4; r < 1.6 || r > 2.4 {
		t.Fatalf("size scaling ratio = %v, want ~2", r)
	}
}

func TestRingAllreduceTinyMessageIsExplicitError(t *testing.T) {
	// The old behavior silently clamped size up to the rank count; the
	// model now refuses to invent bytes and leaves the rounding (plus its
	// annotation) to the engine layer.
	g := newGroup(t, 4)
	if _, err := g.RingAllreduce(1); err == nil {
		t.Fatal("undersized allreduce accepted")
	}
	if _, err := g.RingAllreduce(4); err != nil {
		t.Fatalf("size == ranks rejected: %v", err)
	}
}

func TestGroupSendRecvErrors(t *testing.T) {
	g := newGroup(t, 3)
	if err := g.send(0, 0, 10); err == nil {
		t.Fatal("self-send accepted")
	}
	if err := g.send(0, 9, 10); err == nil {
		t.Fatal("bad destination accepted")
	}
	if err := g.recv(1, 0); err == nil {
		t.Fatal("recv without send accepted")
	}
}

func TestGroupMaxClock(t *testing.T) {
	g := newGroup(t, 3)
	if g.MaxClock() != 0 {
		t.Fatal("fresh group clock")
	}
	if err := g.send(0, 1, 100); err != nil {
		t.Fatal(err)
	}
	if g.MaxClock() <= 0 {
		t.Fatal("clock did not advance")
	}
}
