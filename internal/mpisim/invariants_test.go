package mpisim

import (
	"math"
	"testing"

	"opaquebench/internal/netsim"
)

// TestRingAllreduceModelsFullVolume is the regression test for the chunk
// truncation bug: chunk := size/n dropped the remainder, so size=1000 over
// n=3 modeled only 999 bytes per ring rotation (and regime selection saw
// undersized chunks). The fixed algorithm gives the final chunk
// size-(n-1)*chunk bytes, so every rotation moves exactly size bytes and
// the total modeled volume is 2*(n-1)*size.
func TestRingAllreduceModelsFullVolume(t *testing.T) {
	cases := []struct{ n, size int }{
		{3, 1000},  // the issue's example: 1000 % 3 == 1
		{8, 1001},  // remainder 1 across many ranks
		{4, 997},   // prime size
		{5, 16384}, // power of two over odd ranks
		{4, 4096},  // divisible: the fix must not change exact splits
	}
	for _, c := range cases {
		g, err := NewGroup(netsim.MyrinetGM(), c.n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.RingAllreduce(c.size); err != nil {
			t.Fatalf("n=%d size=%d: %v", c.n, c.size, err)
		}
		want := 2 * (c.n - 1) * c.size
		if got := g.TotalBytesSent(); got != want {
			t.Fatalf("n=%d size=%d: modeled %d bytes, want %d (remainder dropped)", c.n, c.size, got, want)
		}
	}
}

// TestBcastRootRelabelingInvariant asserts a broadcast's duration does not
// depend on which rank is the root: the binomial tree is built in relabeled
// rank space, so on a skew-free group every root spans exactly the same
// duration, and under random start skew the duration distribution over
// seeds matches between roots.
func TestBcastRootRelabelingInvariant(t *testing.T) {
	const n, size = 6, 8192
	dur := func(root int, seed uint64, skew float64) float64 {
		g, err := NewGroup(netsim.MyrinetGM(), n, seed)
		if err != nil {
			t.Fatal(err)
		}
		if skew > 0 {
			g.Jitter(skew)
		}
		d, err := g.Bcast(root, size)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	ref := dur(0, 1, 0)
	for root := 1; root < n; root++ {
		if d := dur(root, 1, 0); math.Abs(d-ref) > 1e-15 {
			t.Fatalf("skew-free bcast from root %d spans %v, root 0 spans %v", root, d, ref)
		}
	}
	// With start skew the durations are root-dependent per seed, but the
	// distribution over seeds must agree under relabeling.
	const seeds, skew = 400, 5e-6
	var sum0, sum3 float64
	for s := uint64(1); s <= seeds; s++ {
		sum0 += dur(0, s, skew)
		sum3 += dur(3, s, skew)
	}
	m0, m3 := sum0/seeds, sum3/seeds
	if math.Abs(m0-m3)/m0 > 0.02 {
		t.Fatalf("skewed bcast mean duration: root 0 %v, root 3 %v (should agree under relabeling)", m0, m3)
	}
}

// TestBarrierZeroByteRegime asserts the barrier's zero-byte control
// messages are costed by RegimeFor(0) — the first (eager) regime — and
// never by the regimes larger payloads select: two profiles that differ
// only in their large-size regime must produce identical barriers.
func TestBarrierZeroByteRegime(t *testing.T) {
	small := netsim.Regime{
		Protocol: netsim.Eager, MaxSize: 1024,
		SendBase: 2e-6, SendPerByte: 0.4e-9,
		RecvBase: 2e-6, RecvPerByte: 0.4e-9,
		Latency: 6e-6, GapPerByte: 3.3e-9,
	}
	big := netsim.Regime{
		Protocol: netsim.Rendezvous,
		SendBase: 50e-6, SendPerByte: 9e-9,
		RecvBase: 50e-6, RecvPerByte: 9e-9,
		Latency: 60e-6, GapPerByte: 33e-9,
	}
	bigger := big
	bigger.SendBase *= 100
	bigger.Latency *= 100
	pA := &netsim.Profile{Name: "barrier-a", Regimes: []netsim.Regime{small, big}}
	pB := &netsim.Profile{Name: "barrier-b", Regimes: []netsim.Regime{small, bigger}}
	barrier := func(p *netsim.Profile) float64 {
		g, err := NewGroup(p, 7, 1)
		if err != nil {
			t.Fatal(err)
		}
		g.Jitter(2e-6)
		d, err := g.Barrier()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	dA, dB := barrier(pA), barrier(pB)
	if dA <= 0 {
		t.Fatalf("barrier duration %v", dA)
	}
	if dA != dB {
		t.Fatalf("barrier durations differ (%v vs %v): zero-byte sends leaked into the large-size regime", dA, dB)
	}
}

// TestRingAllreduceMonotoneAcrossRegimeBoundary asserts duration is
// monotone in size as the per-chunk size crosses a protocol switchover —
// the shape the breakpoint detectors localize. Sizes are multiples of the
// rank count so chunks split exactly, and the ladder straddles both
// MyrinetOpenMPI boundaries (16 KB and 32 KB) in chunk space.
func TestRingAllreduceMonotoneAcrossRegimeBoundary(t *testing.T) {
	const n = 4
	profile := netsim.MyrinetOpenMPI()
	chunks := []int{4096, 8192, 12288, 16384, 20480, 28672, 32768, 40960, 65536, 131072}
	var prev float64
	for i, c := range chunks {
		g, err := NewGroup(profile, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		d, err := g.RingAllreduce(n * c)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && d <= prev {
			t.Fatalf("duration not monotone: chunk %d -> %v, chunk %d -> %v", chunks[i-1], prev, c, d)
		}
		prev = d
	}
}

// TestAllreduceAlgorithmSwitch asserts the Allreduce selector dispatches by
// size exactly at the switch threshold, that each branch matches the
// underlying algorithm, and that the tree's whole-payload rounds make it
// the costlier choice for large payloads — the crossover real MPI
// libraries tune switchBytes around.
func TestAllreduceAlgorithmSwitch(t *testing.T) {
	const n, sw = 8, 16384
	profile := netsim.MyrinetGM()
	run := func(f func(g *Group) (float64, error)) float64 {
		g, err := NewGroup(profile, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		d, err := f(g)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	below, at := sw/2, sw
	if got, want := run(func(g *Group) (float64, error) { return g.Allreduce(below, sw) }),
		run(func(g *Group) (float64, error) { return g.TreeAllreduce(below) }); got != want {
		t.Fatalf("below switch: Allreduce %v != TreeAllreduce %v", got, want)
	}
	if got, want := run(func(g *Group) (float64, error) { return g.Allreduce(at, sw) }),
		run(func(g *Group) (float64, error) { return g.RingAllreduce(at) }); got != want {
		t.Fatalf("at switch: Allreduce %v != RingAllreduce %v", got, want)
	}
	if got, want := run(func(g *Group) (float64, error) { return g.Allreduce(at, 0) }),
		run(func(g *Group) (float64, error) { return g.RingAllreduce(at) }); got != want {
		t.Fatalf("switch disabled: Allreduce %v != RingAllreduce %v", got, want)
	}
	const large = 1 << 20
	tree := run(func(g *Group) (float64, error) { return g.TreeAllreduce(large) })
	ring := run(func(g *Group) (float64, error) { return g.RingAllreduce(large) })
	if tree <= ring {
		t.Fatalf("1 MB: tree %v should cost more than ring %v", tree, ring)
	}
}
