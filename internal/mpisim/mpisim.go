// Package mpisim is a protocol-level two-rank message-passing simulator on
// top of the netsim regime parameters: per-rank virtual clocks, in-flight
// message queues, and explicit eager / detached / rendezvous semantics.
//
// netsim.Network produces operation timings from closed-form regime
// formulas; mpisim *derives* the same quantities from an actual simulation
// of the synchronization protocol (handshakes, buffer copies, waiting).
// The agreement between the two is asserted in tests, so the closed forms
// used by the benchmark engine are backed by a mechanistic model — the
// Section V.A claim that blocking receive + asynchronous send + ping-pong
// suffice to instantiate any LogP-family model is exercised literally here.
package mpisim

import (
	"fmt"
	"math/rand/v2"

	"opaquebench/internal/netsim"
	"opaquebench/internal/xrand"
)

// Rank identifies one of the two endpoints of a Comm. Only Rank0 and Rank1
// are valid; collective communicators (Group) index ranks as plain ints.
type Rank int

const (
	// Rank0 is the conventional sender in the benchmark patterns.
	Rank0 Rank = 0
	// Rank1 is the conventional receiver.
	Rank1 Rank = 1
)

func (r Rank) other() Rank { return 1 - r }

// message is an in-flight transfer.
type message struct {
	from     Rank
	size     int
	arriveAt float64 // when the payload is available at the receiver
}

// Comm is a two-rank communicator over a simulated network profile.
type Comm struct {
	profile *netsim.Profile
	r       *rand.Rand
	clock   [2]float64
	queues  [2][]message // queues[r] = messages destined to rank r
	// Noisy controls whether regime noise models perturb operation costs.
	Noisy bool
}

// NewComm builds a communicator; seed drives the noise streams.
func NewComm(profile *netsim.Profile, seed uint64) (*Comm, error) {
	if profile == nil {
		return nil, fmt.Errorf("mpisim: nil profile")
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	return &Comm{
		profile: profile,
		r:       xrand.NewDerived(seed, "mpisim/"+profile.Name),
	}, nil
}

// Now returns a rank's virtual time.
func (c *Comm) Now(r Rank) float64 { return c.clock[r] }

// Advance idles a rank forward by d seconds.
func (c *Comm) Advance(r Rank, d float64) {
	if d > 0 {
		c.clock[r] += d
	}
}

// noise applies a regime noise model if enabled.
func (c *Comm) noise(n netsim.NoiseModel, v float64) float64 {
	if !c.Noisy {
		return v
	}
	return n.Apply(c.r, v)
}

// Send performs a (completed) send of size bytes from rank `from` and
// returns the CPU time the sender spent — the o_s measurement.
//
// Protocol semantics:
//   - eager: the sender copies into the network buffer and returns; the
//     payload arrives L + G*s later.
//   - detached: an intermediate copy plus an asynchronous notification that
//     costs the sender one extra latency.
//   - rendezvous: the sender issues a request-to-send, waits for the
//     clear-to-send (one round trip), then streams the payload.
func (c *Comm) Send(from Rank, size int) (float64, error) {
	if size < 0 {
		return 0, fmt.Errorf("mpisim: negative size %d", size)
	}
	reg := c.profile.RegimeFor(size)
	copyCost := reg.SendBase + reg.SendPerByte*float64(size)

	var cpu float64
	switch reg.Protocol {
	case netsim.Eager:
		cpu = copyCost
	case netsim.Detached:
		cpu = copyCost + reg.Latency
	case netsim.Rendezvous:
		// RTS -> CTS handshake: the benchmark condition guarantees the
		// receiver has pre-posted, so the wait is exactly one round trip.
		cpu = copyCost + 2*reg.Latency
	default:
		return 0, fmt.Errorf("mpisim: unknown protocol %q", reg.Protocol)
	}
	cpu = c.noise(reg.SendNoise, cpu)

	sendEnd := c.clock[from] + cpu
	arrive := sendEnd + reg.Latency + reg.GapPerByte*float64(size)
	c.queues[from.other()] = append(c.queues[from.other()], message{
		from: from, size: size, arriveAt: arrive,
	})
	c.clock[from] = sendEnd
	return cpu, nil
}

// Recv performs a blocking receive at rank `to` of the oldest queued message
// and returns (cpuTime, waitTime): cpu is the software receive overhead o_r,
// wait is how long the rank blocked for the payload to arrive (zero when the
// message was already there — the Section V.A measurement condition).
func (c *Comm) Recv(to Rank) (cpu, wait float64, err error) {
	if len(c.queues[to]) == 0 {
		return 0, 0, fmt.Errorf("mpisim: rank %d has no message to receive", to)
	}
	msg := c.queues[to][0]
	c.queues[to] = c.queues[to][1:]

	if msg.arriveAt > c.clock[to] {
		wait = msg.arriveAt - c.clock[to]
		c.clock[to] = msg.arriveAt
	}
	reg := c.profile.RegimeFor(msg.size)
	cpu = c.noise(reg.RecvNoise, reg.RecvBase+reg.RecvPerByte*float64(msg.size))
	c.clock[to] += cpu
	return cpu, wait, nil
}

// Pending returns the number of undelivered messages destined to a rank:
// sent, but not yet consumed by a Recv. Tests use it to assert the
// communicator is drained between measurement patterns.
func (c *Comm) Pending(to Rank) int { return len(c.queues[to]) }

// PingPong runs the full pattern — rank0 sends, rank1 receives and echoes,
// rank0 receives — and returns the round-trip time observed by rank0.
func (c *Comm) PingPong(size int) (float64, error) {
	start := c.clock[Rank0]
	// Synchronize rank1 so it is ready (the benchmark's warm-up barrier).
	if c.clock[Rank1] < start {
		c.clock[Rank1] = start
	}
	if _, err := c.Send(Rank0, size); err != nil {
		return 0, err
	}
	if _, _, err := c.Recv(Rank1); err != nil {
		return 0, err
	}
	if _, err := c.Send(Rank1, size); err != nil {
		return 0, err
	}
	if _, _, err := c.Recv(Rank0); err != nil {
		return 0, err
	}
	return c.clock[Rank0] - start, nil
}

// MeasureSendOverhead reproduces the benchmark's asynchronous-send
// measurement: the receiver is ready, the sender's CPU time is returned,
// and the message is drained so the communicator stays balanced.
func (c *Comm) MeasureSendOverhead(size int) (float64, error) {
	cpu, err := c.Send(Rank0, size)
	if err != nil {
		return 0, err
	}
	if _, _, err := c.Recv(Rank1); err != nil {
		return 0, err
	}
	return cpu, nil
}

// MeasureRecvOverhead reproduces the benchmark's blocking-receive
// measurement: the engine "guarantees that the message has already arrived
// in the receiver when the receive operation is called", so the receiver is
// idled past the arrival and only the software overhead is returned.
func (c *Comm) MeasureRecvOverhead(size int) (float64, error) {
	if _, err := c.Send(Rank0, size); err != nil {
		return 0, err
	}
	// Idle the receiver until the payload has certainly arrived.
	reg := c.profile.RegimeFor(size)
	c.Advance(Rank1, 10*(reg.Latency+reg.GapPerByte*float64(size))+c.lagOf(Rank1))
	cpu, wait, err := c.Recv(Rank1)
	if err != nil {
		return 0, err
	}
	if wait > 0 {
		return 0, fmt.Errorf("mpisim: receiver waited %.3g s despite pre-arrival guarantee", wait)
	}
	return cpu, nil
}

// lagOf returns how far a rank's clock trails the other rank's.
func (c *Comm) lagOf(r Rank) float64 {
	d := c.clock[r.other()] - c.clock[r]
	if d < 0 {
		return 0
	}
	return d
}
