package mpisim

import (
	"fmt"

	"opaquebench/internal/netsim"
	"opaquebench/internal/xrand"
)

// Group is an N-rank communicator for collective operations, generalizing
// the two-rank Comm. PMB — the opaque suite of Section II.B — measures
// exactly such collectives; implementing them over the same regime
// parameters lets campaigns characterize them white-box style.
type Group struct {
	profile *netsim.Profile
	clocks  []float64
	queues  map[[2]int][]message
	noisy   bool
	seed    uint64
}

// NewGroup builds an n-rank communicator.
func NewGroup(profile *netsim.Profile, n int, seed uint64) (*Group, error) {
	if profile == nil {
		return nil, fmt.Errorf("mpisim: nil profile")
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("mpisim: group needs >= 2 ranks, got %d", n)
	}
	return &Group{
		profile: profile,
		clocks:  make([]float64, n),
		queues:  map[[2]int][]message{},
		seed:    seed,
	}, nil
}

// Size returns the number of ranks.
func (g *Group) Size() int { return len(g.clocks) }

// Now returns a rank's virtual clock.
func (g *Group) Now(rank int) float64 { return g.clocks[rank] }

// MaxClock returns the latest rank clock (the makespan so far).
func (g *Group) MaxClock() float64 {
	m := g.clocks[0]
	for _, c := range g.clocks[1:] {
		if c > m {
			m = c
		}
	}
	return m
}

// send moves size bytes from -> to using the regime protocol semantics.
func (g *Group) send(from, to, size int) error {
	if from < 0 || from >= len(g.clocks) || to < 0 || to >= len(g.clocks) || from == to {
		return fmt.Errorf("mpisim: bad endpoints %d -> %d", from, to)
	}
	reg := g.profile.RegimeFor(size)
	cpu := reg.SendOverhead(size)
	sendEnd := g.clocks[from] + cpu
	arrive := sendEnd + reg.Latency + reg.GapPerByte*float64(size)
	k := [2]int{from, to}
	g.queues[k] = append(g.queues[k], message{from: Rank(from), size: size, arriveAt: arrive})
	g.clocks[from] = sendEnd
	return nil
}

// recv blocks rank `to` on the oldest message from `from`.
func (g *Group) recv(to, from int) error {
	k := [2]int{from, to}
	q := g.queues[k]
	if len(q) == 0 {
		return fmt.Errorf("mpisim: rank %d has no message from %d", to, from)
	}
	msg := q[0]
	g.queues[k] = q[1:]
	if msg.arriveAt > g.clocks[to] {
		g.clocks[to] = msg.arriveAt
	}
	reg := g.profile.RegimeFor(msg.size)
	g.clocks[to] += reg.RecvOverhead(msg.size)
	return nil
}

// syncClocks raises every rank clock to the maximum — the state after a
// semantically synchronizing collective.
func (g *Group) syncClocks() {
	m := g.MaxClock()
	for i := range g.clocks {
		g.clocks[i] = m
	}
}

// Bcast broadcasts size bytes from root to every rank along a binomial
// tree (the classic MPI implementation) and returns the collective's
// completion time span: max clock advance over all ranks.
func (g *Group) Bcast(root, size int) (float64, error) {
	n := len(g.clocks)
	if root < 0 || root >= n {
		return 0, fmt.Errorf("mpisim: bad root %d", root)
	}
	start := g.MaxClock()
	// Relabel so the root is rank 0 in tree space.
	abs := func(r int) int { return (r + root) % n }
	// Binomial tree: in round k, ranks < 2^k send to rank + 2^k.
	for stride := 1; stride < n; stride *= 2 {
		for r := 0; r < stride && r+stride < n; r++ {
			if err := g.send(abs(r), abs(r+stride), size); err != nil {
				return 0, err
			}
			if err := g.recv(abs(r+stride), abs(r)); err != nil {
				return 0, err
			}
		}
	}
	return g.MaxClock() - start, nil
}

// Barrier synchronizes all ranks with a zero-byte gather to rank 0 followed
// by a zero-byte broadcast, and returns its duration.
func (g *Group) Barrier() (float64, error) {
	n := len(g.clocks)
	start := g.MaxClock()
	for r := 1; r < n; r++ {
		if err := g.send(r, 0, 0); err != nil {
			return 0, err
		}
		if err := g.recv(0, r); err != nil {
			return 0, err
		}
	}
	if _, err := g.Bcast(0, 0); err != nil {
		return 0, err
	}
	g.syncClocks()
	return g.MaxClock() - start, nil
}

// RingAllreduce reduces size bytes across all ranks with the bandwidth-
// optimal ring algorithm (2*(n-1) steps of size/n-byte chunks) and returns
// its duration.
func (g *Group) RingAllreduce(size int) (float64, error) {
	n := len(g.clocks)
	if size < n {
		size = n
	}
	chunk := size / n
	start := g.MaxClock()
	for step := 0; step < 2*(n-1); step++ {
		for r := 0; r < n; r++ {
			if err := g.send(r, (r+1)%n, chunk); err != nil {
				return 0, err
			}
		}
		for r := 0; r < n; r++ {
			if err := g.recv(r, (r-1+n)%n); err != nil {
				return 0, err
			}
		}
	}
	return g.MaxClock() - start, nil
}

// Jitter perturbs every rank clock with small independent offsets, modelling
// the process skew real collectives start from. It uses the group's seed so
// experiments stay reproducible.
func (g *Group) Jitter(scale float64) {
	r := xrand.NewDerived(g.seed, "mpisim/group-jitter")
	for i := range g.clocks {
		g.clocks[i] += r.Float64() * scale
	}
}
